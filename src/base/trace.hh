/**
 * @file
 * Lightweight category-gated tracing, in the spirit of gem5's DPRINTF.
 *
 * Tracing is off by default and costs one mask test per site when
 * disabled. Enable categories programmatically (tests, examples) or
 * via the MACH_TRACE environment variable, e.g.
 *
 *   MACH_TRACE=shootdown,vm ./build/examples/quickstart
 *
 * Each line carries the simulated timestamp the caller passes in, so
 * traces from a deterministic run are themselves deterministic.
 */

#ifndef MACH_BASE_TRACE_HH
#define MACH_BASE_TRACE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "base/types.hh"

namespace mach::trace
{

/** Trace categories; combine as a bit mask. */
enum Category : std::uint32_t
{
    None = 0,
    Shootdown = 1u << 0, ///< Initiator/responder phases.
    Pmap = 1u << 1,      ///< pmap operations and lazy decisions.
    Vm = 1u << 2,        ///< Faults and address-space operations.
    Sched = 1u << 3,     ///< Dispatch, idle transitions.
    Intr = 1u << 4,      ///< Interrupt posts and dispatches.
    All = ~0u,
};

/** Enable the given categories (OR into the mask). */
void enable(std::uint32_t categories);

/** Disable the given categories. */
void disable(std::uint32_t categories);

/** Replace the mask wholesale. */
void setMask(std::uint32_t categories);

/** Current mask. */
std::uint32_t mask();

/**
 * Is any of @p categories enabled? (The cheap inline gate.) The mask
 * is atomic so run-farm worker threads can trace concurrently; the
 * relaxed load compiles to the same plain read as before.
 */
inline bool
enabled(std::uint32_t categories)
{
    extern std::atomic<std::uint32_t> g_mask;
    return (g_mask.load(std::memory_order_relaxed) & categories) != 0;
}

/**
 * Redirect trace output; the default sink writes to stderr. Passing a
 * null function restores the default. Used by tests to capture lines.
 */
void setSink(std::function<void(const std::string &)> sink);

/**
 * Prepend @p prefix to every emitted line. farm::forkMany children set
 * "[child N] " so interleaved lines from concurrent runs stay
 * attributable; empty (the default) adds nothing.
 */
void setLinePrefix(std::string prefix);

/** Parse a comma-separated category list ("shootdown,vm", "all"). */
std::uint32_t parseCategories(const std::string &spec);

/** Initialize the mask from the MACH_TRACE environment variable. */
void initFromEnvironment();

/** Emit one line (no gating; call via the MACH_TRACE_LOG macro). */
void log(Category category, Tick now, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** The standard trace site: gate, then format. */
#define MACH_TRACE_LOG(category, now, ...)                              \
    do {                                                                \
        if (::mach::trace::enabled(::mach::trace::category)) {          \
            ::mach::trace::log(::mach::trace::category, (now),          \
                               __VA_ARGS__);                            \
        }                                                               \
    } while (0)

} // namespace mach::trace

#endif // MACH_BASE_TRACE_HH
