/**
 * @file
 * The "Mach" evaluation application: a parallel build of the kernel
 * from sources (Section 5.2).
 *
 * The build uses multiple processors only for throughput; it does not
 * share memory among user tasks, so it causes no user-pmap shootdowns
 * at all. Its kernel-pmap shootdowns come from the kernel buffers each
 * compile job allocates, touches (or not), and frees: freeing a
 * touched buffer invalidates live kernel mappings machine-wide, while
 * freeing a never-touched buffer is exactly what the lazy-evaluation
 * check elides (Table 1).
 *
 * A single Unix-compatibility mutex serializes part of every job,
 * modelling the not-yet-parallelized Unix code that limited the
 * paper's build speedup.
 */

#ifndef MACH_APPS_MACH_BUILD_HH
#define MACH_APPS_MACH_BUILD_HH

#include "apps/workload.hh"
#include "base/rng.hh"

namespace mach::apps
{

/** Parallel kernel build model. */
class MachBuild : public Workload
{
  public:
    struct Params
    {
        /** Number of compile jobs. */
        unsigned jobs = 48;
        /** Maximum jobs in flight (make -j). */
        unsigned concurrency = 14;
        /** Workload RNG seed. */
        std::uint64_t seed = 0xbadc0de;
    };

    explicit MachBuild(Params params) : params_(params) {}

    std::string name() const override { return "mach-build"; }

    void run(vm::Kernel &kernel, kern::Thread &driver) override;

    std::uint64_t jobs_completed = 0;

  private:
    void job(vm::Kernel &kernel, kern::Thread &self, std::uint64_t seed,
             kern::Mutex &unix_server);

    Params params_;
};

} // namespace mach::apps

#endif // MACH_APPS_MACH_BUILD_HH
