#include "hw/phys_mem.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"

namespace mach::hw
{

PhysMem::PhysMem(std::uint32_t frames)
    : total_frames_(frames), frames_(frames)
{
    MACH_ASSERT(frames >= 2);
    free_list_.reserve(frames - 1);
    // Push high frames first so allocation hands out low PFNs first,
    // which keeps test output stable and readable.
    for (Pfn pfn = frames - 1; pfn >= 1; --pfn)
        free_list_.push_back(pfn);
}

std::uint32_t
PhysMem::freeFrames() const
{
    return static_cast<std::uint32_t>(free_list_.size());
}

Pfn
PhysMem::allocFrame()
{
    if (free_list_.empty())
        panic("PhysMem: out of physical frames (%u total)", total_frames_);
    Pfn pfn = free_list_.back();
    free_list_.pop_back();
    zeroFrame(pfn);
    return pfn;
}

void
PhysMem::freeFrame(Pfn pfn)
{
    MACH_ASSERT(validPfn(pfn));
    frames_[pfn].reset();
    free_list_.push_back(pfn);
}

bool
PhysMem::validPfn(Pfn pfn) const
{
    return pfn >= 1 && pfn < total_frames_;
}

PhysMem::Frame &
PhysMem::frameFor(PAddr addr)
{
    const Pfn pfn = addr >> kPageShift;
    MACH_ASSERT(pfn < total_frames_);
    auto &slot = frames_[pfn];
    if (!slot)
        slot = std::make_unique<Frame>(kPageSize, 0);
    return *slot;
}

const PhysMem::Frame &
PhysMem::frameFor(PAddr addr) const
{
    const Pfn pfn = addr >> kPageShift;
    MACH_ASSERT(pfn < total_frames_);
    auto &slot = frames_[pfn];
    if (!slot)
        slot = std::make_unique<Frame>(kPageSize, 0);
    return *slot;
}

std::uint32_t
PhysMem::read32(PAddr addr) const
{
    MACH_ASSERT((addr & 3) == 0);
    const Frame &frame = frameFor(addr);
    std::uint32_t value = 0;
    std::memcpy(&value, frame.data() + (addr & kPageMask), 4);
    return value;
}

void
PhysMem::write32(PAddr addr, std::uint32_t value)
{
    MACH_ASSERT((addr & 3) == 0);
    Frame &frame = frameFor(addr);
    std::memcpy(frame.data() + (addr & kPageMask), &value, 4);
}

std::uint8_t
PhysMem::read8(PAddr addr) const
{
    return frameFor(addr)[addr & kPageMask];
}

void
PhysMem::write8(PAddr addr, std::uint8_t value)
{
    frameFor(addr)[addr & kPageMask] = value;
}

void
PhysMem::copyFrame(Pfn dst, Pfn src)
{
    MACH_ASSERT(validPfn(dst) && validPfn(src) && dst != src);
    Frame &d = frameFor(dst << kPageShift);
    const Frame &s = frameFor(src << kPageShift);
    std::copy(s.begin(), s.end(), d.begin());
}

void
PhysMem::zeroFrame(Pfn pfn)
{
    MACH_ASSERT(pfn < total_frames_);
    auto &slot = frames_[pfn];
    if (slot)
        std::fill(slot->begin(), slot->end(), 0);
}

} // namespace mach::hw
