/**
 * @file
 * Section 9: physical TLBs vs a VMP-style virtual-address cache.
 *
 * "Another alternative is to use virtual address caches. This
 * completely eliminates the TLB consistency problem by eliminating
 * the TLBs. Unfortunately it substitutes a mapping consistency
 * problem that is more difficult to solve; invalidating a page
 * mapping can require that the page be flushed from all virtual
 * caches. The designers of VMP ... have chosen to implement this
 * flush by 'an exhaustive search of the cache directory for [entries]
 * in the specified range, with a few optimizations' in software on
 * every processor that has the page mapped. ... The resulting
 * increase in invalidation overhead should be considered by
 * multiprocessor designers when choosing between virtual and physical
 * cache designs."
 *
 * The virtual-cache machine embeds translations in a 512-line cache
 * directory; every mapping invalidation pays an exhaustive software
 * directory search per responding processor, where the baseline TLB
 * pays a few entry invalidates or one cheap buffer flush.
 */

#include "bench_common.hh"

#include "apps/consistency_tester.hh"
#include "pmap/shootdown.hh"

using namespace mach;
using namespace mach::bench;

namespace
{

struct CacheDesign
{
    const char *name;
    double initiator_usec;
    double responder_usec;
    bool consistent;
};

CacheDesign
measure(bool virtual_cache, unsigned k)
{
    hw::MachineConfig config;
    config.seed = 0x7ca0e + k;
    // Both designs are software-managed (no ref/mod writeback), so
    // the only difference measured is the invalidation mechanism
    // itself: per-entry invalidates vs exhaustive directory search.
    config.tlb_no_refmod_writeback = true;
    if (virtual_cache) {
        config.virtual_cache = true;
        config.tlb_entries = 512; // Cache-directory scale.
    }
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester(
        {.children = k, .warmup = 25 * kMsec});
    const apps::WorkloadResult result = tester.execute(kernel);
    CacheDesign out;
    out.name = virtual_cache ? "virtual cache (VMP)" : "physical TLB";
    out.initiator_usec =
        result.analysis.user_initiator.time_usec.mean();
    out.responder_usec =
        result.analysis.responder.events
            ? result.analysis.responder.time_usec.mean()
            : 0.0;
    out.consistent = tester.consistent();
    return out;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    std::printf("Section 9: invalidation overhead, physical TLB vs "
                "virtual-address cache\n");
    std::printf("(one page-mapping invalidation involving k "
                "processors)\n\n");
    std::printf("%-22s %4s %16s %16s %12s\n", "design", "k",
                "initiator(us)", "responder(us)", "consistent");

    bool all_ok = true;
    for (unsigned k : {4u, 10u}) {
        for (bool vc : {false, true}) {
            const CacheDesign design = measure(vc, k);
            all_ok = all_ok && design.consistent;
            std::printf("%-22s %4u %16.0f %16.0f %12s\n", design.name,
                        k, design.initiator_usec,
                        design.responder_usec,
                        design.consistent ? "yes" : "NO");
        }
    }

    std::printf("\nthe virtual cache eliminates TLBs but each mapping "
                "invalidation becomes an\nexhaustive software "
                "directory search on every processor with the page "
                "mapped --\nthe increased invalidation overhead the "
                "paper warns designers to weigh.\n");
    return all_ok ? 0 : 1;
}
