/**
 * @file
 * The xpr instrumentation package (Section 6).
 *
 * A circular buffer of timestamped event records with data arguments,
 * event identifiers and processor numbers. Two event kinds matter for
 * the evaluation:
 *
 *  - Initiator records: whether the shootdown was on the kernel pmap or
 *    a user pmap, the number of Mach VM pages involved, the number of
 *    processors being shot at, and the elapsed time from invoking the
 *    shootdown algorithm until the initiator could begin its pmap
 *    changes.
 *  - Responder records: the elapsed time in the interrupt service
 *    routine (recorded only on a configurable subset of processors to
 *    avoid lock contention in the instrumentation itself).
 *
 * Recording costs simulated time (the measurement-validation experiment
 * of Section 6.1 quantifies that perturbation), controlled by the
 * enable flag.
 */

#ifndef MACH_XPR_XPR_HH
#define MACH_XPR_XPR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace mach::xpr
{

/** Identifiers for recorded events. */
enum class EventKind : std::uint8_t
{
    ShootInitiator,
    ShootResponder,
};

/** One record in the circular buffer. */
struct Event
{
    EventKind kind;
    CpuId cpu;
    Tick timestamp;      ///< Machine time when recorded.
    bool kernel_pmap;    ///< Initiator: shootdown on the kernel pmap?
    std::uint32_t pages; ///< Initiator: VM pages involved.
    std::uint32_t procs; ///< Initiator: processors being shot at.
    Tick elapsed;        ///< Initiator: sync time; responder: ISR time.
};

/** Circular event buffer with on/off/reset control. */
class Buffer
{
  public:
    explicit Buffer(std::size_t capacity);

    /** Enable or disable recording (utility-program control surface). */
    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    /** Drop all recorded events. */
    void reset();

    /** Append an event (no-op while disabled). */
    void record(const Event &event);

    /**
     * Events in recording order. If the buffer wrapped, only the most
     * recent `capacity` events survive -- size it so that it never
     * overflows during a run, as the paper did.
     */
    std::vector<Event> events() const;

    /** True when records were lost to wraparound. */
    bool overflowed() const { return overflowed_; }

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }

  private:
    /**
     * Backing store, grown lazily toward capacity_: the common run
     * records far fewer events than the configured capacity, so the
     * tail is never written (or zero-filled at construction).
     */
    std::vector<Event> ring_;
    std::size_t capacity_ = 0;
    std::size_t head_ = 0;  ///< Next write position.
    std::size_t count_ = 0; ///< Valid records (<= capacity).
    bool enabled_ = true;
    bool overflowed_ = false;
};

} // namespace mach::xpr

#endif // MACH_XPR_XPR_HH
