#include "pmap/shootdown.hh"

#include "base/logging.hh"
#include "base/trace.hh"
#include "hw/bus.hh"
#include "kern/cpu.hh"
#include "kern/machine.hh"
#include "kern/sched.hh"
#include "obs/recorder.hh"
#include "obs/request.hh"
#include "pmap/pmap.hh"
#include "pmap/policy.hh"
#include "pmap/responder.hh"
#include "xpr/xpr.hh"

namespace mach::pmap
{

ShootdownController::ShootdownController(PmapSystem &sys)
    : sys_(sys), machine_(sys.machine()),
      forward_pending_(sys.machine().numaNodes())
{
    state_.reserve(machine_.ncpus());
    for (CpuId id = 0; id < machine_.ncpus(); ++id)
        state_.push_back(std::make_unique<CpuShootState>());
    policy_ = makeShootdownPolicy(*this, machine_);

    machine_.setIrqHandler(hw::Irq::Shootdown,
                           [this](kern::Cpu &cpu) { respond(cpu); });
    machine_.sched().setIdleExitHook(
        [this](kern::Cpu &cpu) { idleExit(cpu); });
}

ShootdownController::~ShootdownController() = default;

void
ShootdownController::registerResponder(TlbResponder *responder)
{
    // Devices claim the id space tail in registration order so the
    // state_ vector stays index-by-id for CPUs and devices alike.
    MACH_ASSERT(responder->id() ==
                machine_.ncpus() + responders_.size());
    responders_.push_back(responder);
    state_.push_back(std::make_unique<CpuShootState>());
}

bool
ShootdownController::invalidateAfterChange() const
{
    const hw::MachineConfig &cfg = machine_.cfg();
    const bool writeback_safe =
        cfg.tlb_no_refmod_writeback || cfg.tlb_interlocked_refmod;
    return cfg.tlb_remote_invalidate ||
           (writeback_safe && !cfg.tlb_software_reload);
}

bool
ShootdownController::responderMustStall() const
{
    // The stall exists because hardware reload can re-cache entries
    // mid-update and because the TLB writes ref/mod bits back to the
    // PTE. Either Section 9 remedy removes the need for it.
    const hw::MachineConfig &cfg = machine_.cfg();
    if (cfg.chk_skip_responder_stall)
        return false; // Planted bug for the checker's golden test.
    return !(cfg.tlb_software_reload || cfg.tlb_no_refmod_writeback ||
             cfg.tlb_interlocked_refmod);
}

void
ShootdownController::invalidateLocal(kern::Cpu &cpu, hw::SpaceId space,
                                     Vpn start, Vpn end)
{
    if (policy_->invalidate(cpu, space, start, end))
        return;
    const hw::MachineConfig &cfg = machine_.cfg();
    const unsigned npages = end - start;
    if (cfg.virtual_cache) {
        // VMP-style mapping invalidation: an exhaustive software
        // search of the whole cache directory, whatever the range.
        cpu.tlb().invalidateRange(space, start, end);
        cpu.advanceNoPoll(cfg.vc_search_cost_per_line *
                          cfg.tlb_entries);
        return;
    }
    if (npages > cfg.tlb_flush_threshold) {
        // Beyond the threshold a full buffer flush is cheaper than
        // individual invalidates (Section 4, omitted detail 1).
        cpu.tlb().flushAll();
        cpu.advanceNoPoll(cfg.tlb_flush_cost);
    } else {
        cpu.tlb().invalidateRange(space, start, end);
        cpu.advanceNoPoll(cfg.tlb_invalidate_cost * npages);
    }
}

void
ShootdownController::queueAction(kern::Cpu &self, CpuId target,
                                 Pmap &pmap, Vpn start, Vpn end)
{
    const hw::MachineConfig &cfg = machine_.cfg();
    CpuShootState &st = *state_[target];
    st.action_lock.rawLock(self);
    if (policy_->mergeQueued(st.queue, pmap, start, end)) {
        // Coalesced into an already-queued range (Batched policy).
        st.action_needed = true;
        self.memAccess(2);
        st.action_lock.rawUnlock(self);
        return;
    }
    if (st.queue.size() >= cfg.action_queue_size) {
        // Overflowing queues escalate to a full TLB flush; the queue is
        // sized so this only happens when the responder would flush the
        // whole buffer anyway (Section 4, omitted detail 2).
        st.overflow = true;
        ++queue_overflows;
        obs::Recorder &rec = machine_.recorder();
        if (rec.enabled()) {
            rec.instant(rec.cpuTrack(target), "shoot.queue_overflow",
                        "shoot", obs::Arg{"by", self.id()});
        }
    } else {
        st.queue.push_back({&pmap, start, end});
    }
    st.action_needed = true;
    self.memAccess(2);
    st.action_lock.rawUnlock(self);
}

void
ShootdownController::shoot(kern::Cpu &self, Pmap &pmap, Vpn start,
                           Vpn end, unsigned mapped_pages)
{
    const hw::MachineConfig &cfg = machine_.cfg();
    hw::InterruptController &intr = machine_.intr();
    const Tick t_begin = machine_.now();
    ++initiated;

    obs::Recorder &rec = machine_.recorder();
    obs::SpanGuard initiate_span(
        rec, rec.cpuTrack(self.id()), "shoot.initiate", "shoot",
        "shoot.initiator_us", obs::Arg{"pages", mapped_pages},
        obs::Arg{"npages", end - start});
    if (rec.enabled() && cfg.obs_record_cost > 0)
        self.advanceNoPoll(cfg.obs_record_cost);

    self.advanceNoPoll(cfg.shootdown_setup_cost);

    // ---- Section 9 option: TLBs supporting remote invalidation ------
    // The initiator shoots the entries directly out of the responders'
    // TLBs; no interrupts, no synchronization, no responder overhead.
    if (cfg.tlb_remote_invalidate) {
        int remote_pool = -1;
        if (pmap.isKernel() && cfg.kernel_pools > 1) {
            const int lo_pool = machine_.poolOfKernelVpn(start);
            if (lo_pool >= 0 &&
                lo_pool == machine_.poolOfKernelVpn(end - 1)) {
                remote_pool = lo_pool;
            }
        }
        unsigned shot = 0;
        for (CpuId id = 0; id < machine_.ncpus(); ++id) {
            if (id == self.id() || !pmap.inUse(id))
                continue;
            if (remote_pool >= 0 &&
                machine_.poolOfCpu(id) !=
                    static_cast<unsigned>(remote_pool)) {
                continue;
            }
            self.advanceNoPoll(cfg.remote_invalidate_cost);
            hw::Tlb &remote = machine_.cpu(id).tlb();
            if (end - start > cfg.tlb_flush_threshold)
                remote.flushSpace(pmap.space());
            else
                remote.invalidateRange(pmap.space(), start, end);
            ++remote_invalidates;
            ++shot;
        }
        for (TlbResponder *dev : responders_) {
            const CpuId id = dev->id();
            if (!pmap.inUse(id))
                continue;
            Tick cost = cfg.remote_invalidate_cost;
            if (dev->node() != self.node()) {
                cost += machine_.topo().remoteCost(
                    self.node(), dev->node(),
                    cfg.remote_invalidate_cost);
                ++cross_node_device_commands;
            }
            self.advanceNoPoll(cost);
            if (dev->inFlight()) {
                // Even MC88200-style direct invalidation cannot pull a
                // translation out from under a transfer already on the
                // wire: bound the remaining transfer time and wait it
                // out before shooting the IOTLB entry.
                dev->requestDrain();
                ++device_sync_waits;
                hw::Bus::User bus_user(self.bus());
                while (dev->inFlight())
                    self.spinOnce();
            }
            hw::Tlb &iotlb = dev->tlb();
            if (end - start > cfg.tlb_flush_threshold)
                iotlb.flushSpace(pmap.space());
            else
                iotlb.invalidateRange(pmap.space(), start, end);
            ++remote_invalidates;
            ++device_commands;
            ++shot;
        }
        if (cfg.xpr_enabled) {
            const Tick elapsed = machine_.now() - t_begin;
            self.advanceNoPoll(cfg.xpr_record_cost);
            machine_.xpr().record({xpr::EventKind::ShootInitiator,
                                   self.id(), machine_.now(),
                                   pmap.isKernel(), mapped_pages, shot,
                                   elapsed});
        }
        return;
    }

    // Section 8 pool restructuring: a kernel-pmap shootdown whose
    // range lies entirely inside one pool's kmem slice only concerns
    // that pool's processors (pool-local kernel memory is not shared
    // between pools). Anything else remains machine-global.
    int pool = -1;
    if (pmap.isKernel() && cfg.kernel_pools > 1) {
        const int lo_pool = machine_.poolOfKernelVpn(start);
        const int hi_pool = machine_.poolOfKernelVpn(end - 1);
        if (lo_pool >= 0 && lo_pool == hi_pool)
            pool = lo_pool;
    }

    // ---- Phase 1: queue actions, interrupt, wait ---------------------
    std::vector<CpuId> sync_list;
    std::vector<CpuId> send_list;
    for (CpuId id = 0; id < machine_.ncpus(); ++id) {
        if (id == self.id() || !pmap.inUse(id))
            continue;
        if (pool >= 0 && machine_.poolOfCpu(id) !=
            static_cast<unsigned>(pool)) {
            continue;
        }
        if (policy_->deferTarget(self, id, pmap, start, end)) {
            // The policy proved this target can settle up later (lazy
            // ASID): no queued action, no IPI, no synchronization.
            continue;
        }
        queueAction(self, id, pmap, start, end);
        kern::Cpu &target = machine_.cpu(id);
        if (target.idle) {
            // Idle processors get no interrupts and no synchronization;
            // they drain their queues before leaving the idle set.
            continue;
        }
        sync_list.push_back(id);
        // Skip the interrupt if one is already pending there
        // (Section 4, omitted detail 3); synchronization still occurs.
        if (!intr.pending(id, hw::Irq::Shootdown))
            send_list.push_back(id);
    }

    // ---- Device responders (IOTLB shootdown) -------------------------
    // Devices take no interrupts; the initiator posts an invalidate
    // command over the (possibly remote) bus instead of an IPI, and
    // the device fiber drains its action queue at its next operation
    // boundary. Only an in-flight DMA forces the initiator to wait --
    // the transfer would otherwise commit through the revoked
    // translation -- and requestDrain() bounds that wait to
    // dev_drain_bound. The avoidance policies are not consulted:
    // device invalidations are always eager (a deferred IOTLB entry
    // has no context-switch flush to settle it later).
    std::vector<TlbResponder *> dev_sync;
    for (TlbResponder *dev : responders_) {
        const CpuId dev_id = dev->id();
        if (!pmap.inUse(dev_id))
            continue;
        queueAction(self, dev_id, pmap, start, end);
        Tick cmd = cfg.dev_cmd_cost;
        if (dev->node() != self.node()) {
            cmd += machine_.topo().remoteCost(self.node(), dev->node(),
                                              cfg.dev_cmd_cost);
            ++cross_node_device_commands;
        }
        self.advanceNoPoll(cmd);
        ++device_commands;
        if (dev->inFlight()) {
            dev->requestDrain();
            dev_sync.push_back(dev);
        }
    }

    MACH_TRACE_LOG(Shootdown, machine_.now(),
                   "cpu%u initiates on %s pmap vpn [0x%x,0x%x): "
                   "%zu to sync, %zu to interrupt",
                   self.id(), pmap.isKernel() ? "kernel" : "user",
                   start, end, sync_list.size(), send_list.size());

    // Attribution: the initiating thread's request (if one is in
    // flight) pays for posting the IPIs and then for the sync spin,
    // as two distinct components.
    obs::RequestSlot *const req =
        self.cur_thread != nullptr ? self.cur_thread->obs_request
                                   : nullptr;

    if (!sync_list.empty()) {
        {
            obs::SpanGuard ipi_span(rec, rec.cpuTrack(self.id()),
                                    "shoot.ipi", "shoot", nullptr,
                                    obs::Arg{"targets",
                                             send_list.size()});
            obs::ReqScope ipi_scope(rec, req,
                                    obs::ReqComponent::IpiPost);
            if (cfg.multicast_ipi) {
                // One bit-vector load triggers every target at fixed
                // cost.
                self.advanceNoPoll(cfg.multicast_send_cost);
                for (CpuId id : send_list) {
                    intr.post(id, hw::Irq::Shootdown, machine_.now());
                    ++interrupts_sent;
                }
            } else if (cfg.broadcast_ipi) {
                // Interrupt everyone (including innocent bystanders,
                // who pay a dispatch with nothing queued) at fixed
                // cost.
                self.advanceNoPoll(cfg.broadcast_send_cost);
                for (CpuId id = 0; id < machine_.ncpus(); ++id) {
                    if (id == self.id() ||
                        intr.pending(id, hw::Irq::Shootdown)) {
                        continue;
                    }
                    intr.post(id, hw::Irq::Shootdown, machine_.now());
                    ++interrupts_sent;
                }
            } else if (machine_.numaNodes() > 1) {
                // Two-phase distributed shootdown: directed IPIs stay
                // on this node; each remote node gets exactly one
                // cross-interconnect IPI, aimed at a delegate (the
                // node's lowest-numbered target), which re-broadcasts
                // to its node-mates locally. All forwarding sets are
                // filled before the first send leaves, so no delegate
                // can respond and miss its fan-out duty.
                constexpr CpuId kNone = ~CpuId{0};
                std::vector<CpuId> delegates(machine_.numaNodes(),
                                             kNone);
                std::vector<CpuId> local_targets;
                for (CpuId id : send_list) {
                    const unsigned node = machine_.nodeOfCpu(id);
                    if (node == self.node())
                        local_targets.push_back(id);
                    else if (delegates[node] == kNone)
                        delegates[node] = id;
                    else
                        forward_pending_[node].set(id);
                }
                for (CpuId id : local_targets) {
                    if (policy_->elideIpi(self, id))
                        continue;
                    Tick send = cfg.ipi_send_cost;
                    if (cfg.ipi_send_jitter > 0)
                        send +=
                            machine_.rng().below(cfg.ipi_send_jitter);
                    self.advanceNoPoll(send);
                    intr.post(id, hw::Irq::Shootdown, machine_.now());
                    ++interrupts_sent;
                }
                for (unsigned node = 0; node < delegates.size();
                     ++node) {
                    if (delegates[node] == kNone)
                        continue;
                    Tick send = cfg.ipi_send_cost +
                                machine_.topo().remoteCost(
                                    self.node(), node,
                                    cfg.ipi_send_cost);
                    if (cfg.ipi_send_jitter > 0)
                        send +=
                            machine_.rng().below(cfg.ipi_send_jitter);
                    self.advanceNoPoll(send);
                    intr.post(delegates[node], hw::Irq::Shootdown,
                              machine_.now());
                    ++interrupts_sent;
                    ++cross_node_ipis;
                }
            } else {
                // Baseline: iterate down the list one directed IPI at
                // a time.
                for (CpuId id : send_list) {
                    if (policy_->elideIpi(self, id))
                        continue;
                    Tick send = cfg.ipi_send_cost;
                    if (cfg.ipi_send_jitter > 0)
                        send +=
                            machine_.rng().below(cfg.ipi_send_jitter);
                    self.advanceNoPoll(send);
                    intr.post(id, hw::Irq::Shootdown, machine_.now());
                    ++interrupts_sent;
                }
            }
        }

        // Wait for every synchronized processor to acknowledge (leave
        // the active set), drain its queued actions, or cease using
        // the pmap. The action-needed term matters on hardware whose
        // responders do not stall (software reload / no writeback):
        // such a responder acknowledges and rejoins the active set in
        // one quick motion, and the initiator would otherwise miss the
        // transient. Spinning processors are bus users; this is where
        // large shootdowns congest the bus (Figure 2's knee).
        obs::SpanGuard sync_span(rec, rec.cpuTrack(self.id()),
                                 "shoot.sync", "shoot",
                                 "shoot.sync_us",
                                 obs::Arg{"waiting_on",
                                          sync_list.size()});
        obs::ReqScope sync_scope(rec, req,
                                 obs::ReqComponent::ResponderWait);
        hw::Bus::User bus_user(self.bus());
        for (CpuId id : sync_list) {
            kern::Cpu &target = machine_.cpu(id);
            CpuShootState &st = *state_[id];
            while (st.action_needed && target.active && pmap.inUse(id))
                self.spinOnce();
        }
    }

    if (!dev_sync.empty()) {
        // Wait out in-flight DMA. A transfer already on the wire
        // commits (or aborts) through the pre-change translation, so
        // the pmap change must not land before the wire is quiet; the
        // drain requests above bounded each wait. A device that
        // finishes its transfer drains its action queue at the same
        // instant, so exiting this spin means the IOTLB entry is gone
        // too (unless the planted chk_skip_iotlb_invalidate bug left
        // it behind -- the stale-translation oracle's catch).
        obs::SpanGuard dev_span(rec, rec.cpuTrack(self.id()),
                                "shoot.device_sync", "shoot",
                                "shoot.device_sync_us",
                                obs::Arg{"devices", dev_sync.size()});
        obs::ReqScope dev_scope(rec, req,
                                obs::ReqComponent::ResponderWait);
        hw::Bus::User bus_user(self.bus());
        for (TlbResponder *dev : dev_sync) {
            CpuShootState &st = *state_[dev->id()];
            ++device_sync_waits;
            while (st.action_needed && dev->inFlight() &&
                   pmap.inUse(dev->id())) {
                self.spinOnce();
            }
        }
    }

    const Tick elapsed = machine_.now() - t_begin;
    MACH_TRACE_LOG(Shootdown, machine_.now(),
                   "cpu%u synchronized after %llu us; pmap changes "
                   "may begin",
                   self.id(),
                   static_cast<unsigned long long>(elapsed / kUsec));
    if (cfg.xpr_enabled) {
        self.advanceNoPoll(cfg.xpr_record_cost);
        machine_.xpr().record({xpr::EventKind::ShootInitiator, self.id(),
                               machine_.now(), pmap.isKernel(),
                               mapped_pages,
                               static_cast<std::uint32_t>(
                                   sync_list.size()),
                               elapsed});
    }
}

void
ShootdownController::drainActions(kern::Cpu &cpu)
{
    const hw::MachineConfig &cfg = machine_.cfg();
    CpuShootState &st = *state_[cpu.id()];

    obs::SpanGuard drain_span(machine_.recorder(),
                              machine_.recorder().cpuTrack(cpu.id()),
                              "shoot.drain", "shoot", nullptr,
                              obs::Arg{"queued", st.queue.size()});

    st.action_lock.rawLock(cpu);
    if (st.overflow) {
        cpu.tlb().flushAll();
        cpu.advanceNoPoll(cfg.tlb_flush_cost);
        st.overflow = false;
    } else {
        // By index, not iterators: invalidateLocal advances sim time,
        // so a pmap teardown can run mid-loop. purgePmap sees our held
        // action_lock and nulls entries in place instead of erasing,
        // which keeps the index valid; skip the nulled ones.
        for (std::size_t i = 0; i < st.queue.size(); ++i) {
            const ShootAction &action = st.queue[i];
            if (action.pmap == nullptr)
                continue;
            invalidateLocal(cpu, action.pmap->space(), action.start,
                            action.end);
            // invalidateLocal advanced time; the pmap may have been
            // torn down (and this entry nulled) meanwhile. Re-read
            // before dereferencing it again.
            Pmap *const pmap = st.queue[i].pmap;
            if (pmap != nullptr && cfg.tlb_asid_tags &&
                !pmap->isKernel() && pmap != cpu.cur_pmap) {
                // Section 10 experiment: completely flush entries for
                // an address space that required an invalidation but is
                // not current here, then drop the in-use bit so future
                // shootdowns skip this processor.
                cpu.tlb().flushSpace(pmap->space());
                pmap->clearInUse(cpu.id());
            }
        }
    }
    st.queue.clear();
    st.action_needed = false;
    st.action_lock.rawUnlock(cpu);
}

void
ShootdownController::drainForwards(kern::Cpu &cpu)
{
    CpuSet &pending = forward_pending_[cpu.node()];
    if (pending.empty())
        return;
    // Claim the whole set at one instant (no time passes between the
    // copy and the clear), so a concurrent same-node responder cannot
    // double-forward.
    const CpuSet claimed = pending;
    pending.clearAll();
    MACH_TRACE_LOG(Shootdown, machine_.now(),
                   "cpu%u forwards local shootdown IPIs to %s",
                   cpu.id(), claimed.format().c_str());

    const hw::MachineConfig &cfg = machine_.cfg();
    hw::InterruptController &intr = machine_.intr();
    claimed.forEach([&](CpuId id) {
        kern::Cpu &target = machine_.cpu(id);
        // The initiator already queued the action; skip targets that
        // drained it meanwhile (idle exit) or already have an IPI
        // pending.
        if (!state_[id]->action_needed || target.idle ||
            intr.pending(id, hw::Irq::Shootdown)) {
            return;
        }
        if (policy_->elideIpi(cpu, id))
            return;
        Tick send = cfg.ipi_send_cost;
        if (cfg.ipi_send_jitter > 0)
            send += machine_.rng().below(cfg.ipi_send_jitter);
        cpu.advanceNoPoll(send);
        intr.post(id, hw::Irq::Shootdown, machine_.now());
        ++interrupts_sent;
        ++forwarded_ipis;
    });
}

void
ShootdownController::respond(kern::Cpu &cpu)
{
    const hw::MachineConfig &cfg = machine_.cfg();
    const Tick t_begin = machine_.now();

    // Disable all interrupts for the duration: a device interrupt at
    // the wrong point could stall the whole machine (Section 4).
    const hw::Spl saved = cpu.setSpl(hw::SplHigh);
    drainForwards(cpu);
    CpuShootState &st = *state_[cpu.id()];
    const bool had_work = st.action_needed;

    obs::Recorder &rec = machine_.recorder();
    obs::SpanGuard respond_span(
        rec, rec.cpuTrack(cpu.id()), "shoot.respond", "shoot",
        "shoot.responder_us", obs::Arg{"had_work", had_work ? 1 : 0});
    // The interrupt runs on whatever thread was dispatched here; if
    // that thread had a request in flight, the stall + drain time is
    // the request's Drain component (tail latency stolen by *other*
    // initiators' consistency work).
    obs::ReqScope drain_scope(rec,
                              cpu.cur_thread != nullptr
                                  ? cpu.cur_thread->obs_request
                                  : nullptr,
                              obs::ReqComponent::Drain);
    if (rec.enabled() && cfg.obs_record_cost > 0)
        cpu.advanceNoPoll(cfg.obs_record_cost);

    MACH_TRACE_LOG(Shootdown, machine_.now(),
                   "cpu%u responds (action_needed=%d)", cpu.id(),
                   st.action_needed ? 1 : 0);

    // One pass of this loop services every shootdown in progress. The
    // servicing flag brackets the loop exactly: an initiator that sees
    // it set knows its freshly-queued action precedes a future check
    // of this condition (the Batched policy's IPI-elision invariant).
    st.servicing = true;
    st.service_entered = machine_.now();
    while (st.action_needed) {
        ++responder_passes;

        // Phase 2: acknowledge by leaving the active set, then stall
        // until no relevant pmap is mid-update. (The responder must
        // neither read nor write the pmap -- including through TLB
        // reloads and ref/mod writebacks -- while the update is in
        // progress.)
        cpu.active = false;
        cpu.memAccess(1);
        if (responderMustStall()) {
            obs::SpanGuard stall_span(rec, rec.cpuTrack(cpu.id()),
                                      "shoot.stall", "shoot");
            hw::Bus::User bus_user(cpu.bus());
            Pmap *kernel = &sys_.kernelPmap();
            Pmap *user = cpu.cur_pmap;
            while (kernel->locked() || (user != nullptr &&
                                        user->locked())) {
                cpu.spinOnce();
            }
        }

        // Phase 4: perform the queued invalidations and rejoin the
        // active set.
        drainActions(cpu);
        cpu.active = true;
    }
    st.servicing = false;

    if (had_work && cfg.xpr_enabled &&
        cpu.id() < cfg.xpr_responder_cpus) {
        // Responder events are recorded on a few selected processors
        // only, to avoid lock contention in the instrumentation
        // (Section 6).
        const Tick elapsed = machine_.now() - t_begin;
        cpu.advanceNoPoll(cfg.xpr_record_cost);
        machine_.xpr().record({xpr::EventKind::ShootResponder, cpu.id(),
                               machine_.now(), false, 0, 0, elapsed});
    }
    cpu.setSpl(saved);
}

void
ShootdownController::idleExit(kern::Cpu &cpu)
{
    if (!forward_pending_[cpu.node()].empty()) {
        // Pick up fan-out work a slow (or since-idled) delegate left
        // behind; liveness must not depend on any single processor.
        const hw::Spl fwd_saved = cpu.setSpl(hw::SplHigh);
        drainForwards(cpu);
        cpu.setSpl(fwd_saved);
    }
    CpuShootState &st = *state_[cpu.id()];
    if (!st.action_needed)
        return;
    ++idle_drains;
    MACH_TRACE_LOG(Shootdown, machine_.now(),
                   "cpu%u drains queued actions before leaving idle",
                   cpu.id());
    obs::Recorder &rec = machine_.recorder();
    if (rec.enabled()) {
        rec.instant(rec.cpuTrack(cpu.id()), "shoot.idle_drain",
                    "shoot", obs::Arg{"queued", st.queue.size()});
    }

    const hw::Spl saved = cpu.setSpl(hw::SplHigh);
    st.servicing = true;
    st.service_entered = machine_.now();
    while (st.action_needed) {
        if (responderMustStall()) {
            hw::Bus::User bus_user(cpu.bus());
            Pmap *kernel = &sys_.kernelPmap();
            while (kernel->locked())
                cpu.spinOnce();
        }
        drainActions(cpu);
    }
    st.servicing = false;
    cpu.setSpl(saved);
}

ShootdownController::FlushSnapshot
ShootdownController::snapshotFlushes(kern::Cpu &self, Pmap &pmap) const
{
    FlushSnapshot snapshot;
    for (CpuId id = 0; id < machine_.ncpus(); ++id) {
        if (id == self.id() || !pmap.inUse(id))
            continue;
        snapshot.emplace_back(id,
                              machine_.cpu(id).tlb().full_flushes);
    }
    return snapshot;
}

void
ShootdownController::delayedFlushWait(kern::Thread &thread, Pmap &pmap,
                                      const FlushSnapshot &snapshot,
                                      unsigned mapped_pages)
{
    const hw::MachineConfig &cfg = machine_.cfg();
    const Tick t_begin = machine_.now();
    ++delayed_waits;

    for (;;) {
        bool all_clean = true;
        for (const auto &[id, epoch] : snapshot) {
            kern::Cpu &cpu = machine_.cpu(id);
            if (!pmap.inUse(id))
                continue; // Its entries were flushed on the switch.
            if (cpu.idle)
                continue; // Idle TLBs are flushed at idle entry/exit.
            if (cpu.tlb().full_flushes > epoch)
                continue;
            all_clean = false;
            break;
        }
        if (all_clean)
            break;
        thread.sleep(1 * kMsec);
    }

    // An instant, not a span: the waiting thread sleeps and may resume
    // on a different CPU, which would split a span across tracks.
    obs::Recorder &rec = machine_.recorder();
    if (rec.enabled()) {
        const Tick waited = machine_.now() - t_begin;
        rec.instant(rec.cpuTrack(thread.cpu().id()),
                    "shoot.delayed_flush_wait", "shoot",
                    obs::Arg{"waited_us", waited / kUsec},
                    obs::Arg{"pages", mapped_pages});
        rec.metrics().histogram("shoot.delayed_wait_us").record(
            waited / kUsec);
    }

    if (cfg.xpr_enabled) {
        const Tick elapsed = machine_.now() - t_begin;
        kern::Cpu &cpu = thread.cpu();
        cpu.advanceNoPoll(cfg.xpr_record_cost);
        machine_.xpr().record({xpr::EventKind::ShootInitiator,
                               cpu.id(), machine_.now(),
                               pmap.isKernel(), mapped_pages,
                               static_cast<std::uint32_t>(
                                   snapshot.size()),
                               elapsed});
    }
}

void
ShootdownController::purgePmap(Pmap *pmap)
{
    for (auto &st : state_) {
        auto &queue = st->queue;
        bool purged = false;
        if (st->action_lock.locked()) {
            // A responder fiber is suspended mid-drain holding the
            // action lock, with an index into this queue live across a
            // sim-time advance. Null the pmap pointers in place --
            // no structural mutation, so the drainer's position stays
            // valid and it skips the dead entries.
            for (ShootAction &action : queue) {
                if (action.pmap == pmap) {
                    action.pmap = nullptr;
                    purged = true;
                }
            }
        } else {
            purged = std::erase_if(queue,
                                   [pmap](const ShootAction &action) {
                                       return action.pmap == pmap;
                                   }) > 0;
        }
        if (purged)
            st->overflow = true; // Escalate to a conservative full flush.
    }
}

} // namespace mach::pmap
