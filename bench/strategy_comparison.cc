/**
 * @file
 * Consistency-strategy comparison: the paper's Section 3 choice
 * (shootdown vs timer-driven delayed flush) plus the post-1989
 * shootdown-avoidance policies measured against the Figure 1 baseline.
 *
 * Part 1 reproduces the Section 3 argument: the kernel "relies on the
 * first technique [shootdown] because the additional buffer flushes
 * required by the second technique can be expensive on some
 * architectures". Both strategies run the Section 5.1 tester (latency)
 * and Agora (machine-wide TLB effectiveness).
 *
 * Part 2 is the policy x application matrix for the pluggable
 * avoidance policies (--shootdown-policy, src/pmap/policy.hh): every
 * policy runs the four Section 5.2 applications, a multiprogramming
 * mix, and the same mix on a 2-node NUMA shape, reporting total IPIs
 * (and the saving vs the Figure 1 baseline), per-operation initiator
 * latency, and the policy's own avoidance counters. The mix is built
 * so each avoidance mechanism has honest work to do:
 *
 *  - more runnable threads than processors, with sleeps, so address
 *    spaces context-switch constantly (LazyAsid's deferred flushes,
 *    Batched's mid-service merges);
 *  - wired DMA-style buffers that are faulted in by vmWire but never
 *    touched by any processor, then freed -- valid PTEs whose
 *    reference bits are still clear, the provably-uncached case
 *    ReuseElide can skip (arXiv 2409.10946's reused-mmap shape);
 *  - write-revocations on hot pages that every policy must still
 *    shoot down, keeping the elision honest.
 *
 * Part 2 closes with the serving tier's per-request attribution
 * (obs/request.hh) replayed under every policy: of the mean request's
 * microseconds, how many went to compute, faults, TLB-refill walks,
 * posting shootdown IPIs, spinning on responders, and servicing other
 * initiators' shootdowns? The avoidance policies should shrink the
 * shootdown components while leaving compute untouched -- the
 * per-request view of the same saving the IPI counters report in
 * aggregate.
 *
 * Simulated numbers are deterministic for a given scale, so the JSON
 * written to BENCH_strategy.json is a committable baseline; CI
 * archives it per run.
 */

#include "bench_common.hh"

#include "apps/consistency_tester.hh"
#include "apps/serving.hh"
#include "base/rng.hh"
#include "hw/machine_config.hh"
#include "obs/metrics.hh"
#include "obs/recorder.hh"
#include "pmap/shootdown.hh"
#include "xpr/machine_stats.hh"

using namespace mach;
using namespace mach::bench;

namespace
{

// ---- Part 1: Section 3, shootdown vs delayed flush -------------------

struct StrategyResult
{
    bool consistent = false;
    double op_latency_usec = 0.0;
    double agora_runtime_ms = 0.0;
    std::uint64_t tlb_misses = 0;
    std::uint64_t full_flushes = 0;
};

StrategyResult
measure(hw::ConsistencyStrategy strategy)
{
    StrategyResult out;

    // Per-operation latency: the Section 5.1 tester's single
    // reprotect, 8 processors involved.
    {
        hw::MachineConfig config;
        config.consistency_strategy = strategy;
        if (strategy == hw::ConsistencyStrategy::DelayedFlush)
            config.tlb_no_refmod_writeback = true;
        config.seed = 0x57a7e6;
        vm::Kernel kernel(config);
        apps::ConsistencyTester tester(
            {.children = 8, .warmup = 30 * kMsec});
        const apps::WorkloadResult result = tester.execute(kernel);
        out.consistent = tester.consistent();
        out.op_latency_usec =
            result.analysis.user_initiator.time_usec.mean();
    }

    // Whole-application effect: Agora re-reads its shared regions, so
    // the periodic whole-buffer flushes of technique 2 show up as
    // extra TLB misses (refill traffic) on top of the flush cost.
    {
        hw::MachineConfig config;
        config.consistency_strategy = strategy;
        if (strategy == hw::ConsistencyStrategy::DelayedFlush)
            config.tlb_no_refmod_writeback = true;
        config.seed = 0x57a7e6;
        vm::Kernel kernel(config);
        apps::Agora app(apps::Agora::Params{});
        const apps::WorkloadResult result = app.execute(kernel);
        out.agora_runtime_ms =
            static_cast<double>(result.virtual_runtime) / kMsec;
        for (CpuId id = 0; id < kernel.machine().ncpus(); ++id) {
            out.tlb_misses += kernel.machine().cpu(id).tlb().misses;
            out.full_flushes +=
                kernel.machine().cpu(id).tlb().full_flushes;
        }
    }
    return out;
}

int
runStrategyPart()
{
    // The two strategies are independent machines: measure both on
    // the bench farm, then print in fixed order.
    StrategyResult shoot;
    StrategyResult delayed;
    runFarmed(
        {[&] { shoot = measure(hw::ConsistencyStrategy::Shootdown); },
         [&] {
             delayed = measure(hw::ConsistencyStrategy::DelayedFlush);
         }});

    std::printf("Section 3: shootdown vs timer-driven delayed "
                "flush\n\n");
    std::printf("%-16s %10s %14s %12s %12s %12s\n", "strategy",
                "consistent", "reprotect(us)", "agora(ms)",
                "TLB misses", "full flushes");
    std::printf("%-16s %10s %14.0f %12.0f %12llu %12llu\n",
                "shootdown", shoot.consistent ? "yes" : "NO",
                shoot.op_latency_usec, shoot.agora_runtime_ms,
                static_cast<unsigned long long>(shoot.tlb_misses),
                static_cast<unsigned long long>(shoot.full_flushes));
    std::printf("%-16s %10s %14.0f %12.0f %12llu %12llu\n",
                "delayed-flush", delayed.consistent ? "yes" : "NO",
                delayed.op_latency_usec, delayed.agora_runtime_ms,
                static_cast<unsigned long long>(delayed.tlb_misses),
                static_cast<unsigned long long>(delayed.full_flushes));

    if (!shoot.consistent || !delayed.consistent)
        return 1;
    std::printf("\nmapping-change latency penalty of delayed flush: "
                "%.1fx\n",
                delayed.op_latency_usec /
                    std::max(1.0, shoot.op_latency_usec));
    std::printf("(the paper, Section 3: Mach relies on shootdown "
                "because the additional buffer\nflushes required by "
                "the delay technique can be expensive)\n");
    return 0;
}

// ---- Part 2: shootdown-avoidance policy matrix -----------------------

/**
 * Multiprogramming mix: params_.tasks address spaces, each with
 * params_.threads unpinned threads, oversubscribing the processors so
 * spaces context-switch constantly. Every thread keeps a private
 * working set hot; thread 0 of each task additionally cycles a wired
 * never-touched DMA buffer (wire, "device fills it", unwire, free)
 * and revokes/restores write access on a hot page each round.
 */
class MultiMix : public apps::Workload
{
  public:
    struct Params
    {
        unsigned tasks = 6;
        unsigned threads = 3;
        unsigned rounds = 6;
        std::uint64_t seed = 0x4d495821ull;
    };

    explicit MultiMix(Params params) : params_(params) {}

    std::string name() const override { return "mix"; }

    void
    run(vm::Kernel &kernel, kern::Thread &driver) override
    {
        std::vector<vm::Task *> tasks;
        std::vector<kern::Thread *> mappers;
        std::vector<kern::Thread *> siblings;
        for (unsigned t = 0; t < params_.tasks; ++t) {
            vm::Task *task =
                kernel.createTask("mix" + std::to_string(t));
            tasks.push_back(task);
            mappers.push_back(kernel.spawnThread(
                task, "mix" + std::to_string(t) + ".map",
                [this, &kernel, t](kern::Thread &self) {
                    mapper(kernel, self, t);
                }));
            for (unsigned w = 1; w < params_.threads; ++w) {
                siblings.push_back(kernel.spawnThread(
                    task,
                    "mix" + std::to_string(t) + "." +
                        std::to_string(w),
                    [this, &kernel, t, w](kern::Thread &self) {
                        sibling(kernel, self, t, w);
                    }));
            }
        }
        // Siblings spin until every mapper has issued its last
        // mapping change, so the changes always have live remote
        // users of the space to shoot down (or avoid).
        for (kern::Thread *thread : mappers)
            driver.join(*thread);
        stop_ = true;
        for (kern::Thread *thread : siblings)
            driver.join(*thread);
        for (vm::Task *task : tasks)
            kernel.destroyTask(driver, task);
    }

  private:
    /**
     * Worker threads 1..threads-1 of each task: keep the space's
     * translations hot and the space in use on other processors,
     * with occasional sleeps so spaces still context-switch.
     */
    void
    sibling(vm::Kernel &kernel, kern::Thread &self,
            unsigned task_index, unsigned thread_index)
    {
        Rng rng(params_.seed + task_index * 7919 +
                thread_index * 131);
        VAddr ws = allocWorkingSet(kernel, self);
        unsigned round = 0;
        while (!stop_) {
            touchWorkingSet(self, ws, round++);
            self.compute(Tick(rng.exponential(1.5) * kMsec));
            if (rng.chance(0.25))
                self.sleep(Tick(rng.exponential(2.0) * kMsec));
        }
    }

    /** Thread 0 of each task: the mapping-change traffic. */
    void
    mapper(vm::Kernel &kernel, kern::Thread &self,
           unsigned task_index)
    {
        Rng rng(params_.seed + task_index * 7919);
        vm::Task &task = *self.task();
        VAddr ws = allocWorkingSet(kernel, self);

        for (unsigned round = 0; round < params_.rounds; ++round) {
            touchWorkingSet(self, ws, round);
            self.compute(Tick(rng.exponential(1.0) * kMsec));

            // DMA-style buffers: vmWire faults the pages in without
            // any processor touching them (reference bits stay
            // clear), the device "fills" them, and the free is the
            // provably-uncached consistency action ReuseElide can
            // skip. Under the baseline each free is a full shootdown
            // of every processor running this space.
            for (unsigned io = 0; io < 2; ++io) {
                VAddr buf = 0;
                bool ok = kernel.vmAllocate(self, task, &buf,
                                            kDmaPages * kPageSize,
                                            true);
                MACH_ASSERT(ok);
                ok = kernel.vmWire(self, task, buf,
                                   kDmaPages * kPageSize, true);
                MACH_ASSERT(ok);
                self.compute(Tick(rng.exponential(0.5) * kMsec));
                ok = kernel.vmWire(self, task, buf,
                                   kDmaPages * kPageSize, false);
                MACH_ASSERT(ok);
                ok = kernel.vmDeallocate(self, task, buf,
                                         kDmaPages * kPageSize);
                MACH_ASSERT(ok);
            }

            // Write revocation on a hot page: referenced in every
            // sibling's TLB, so no policy may elide it.
            const bool ok =
                kernel.vmProtect(self, task, ws, kPageSize,
                                 ProtRead) &&
                kernel.vmProtect(self, task, ws, kPageSize,
                                 ProtReadWrite);
            MACH_ASSERT(ok);

            // Sleep off the processor so other tasks' spaces get
            // context-loaded over this one (LazyAsid's deferral and
            // context-load-flush material).
            self.sleep(Tick(rng.exponential(2.0) * kMsec));
        }
    }

    VAddr
    allocWorkingSet(vm::Kernel &kernel, kern::Thread &self)
    {
        VAddr ws = 0;
        const bool ok = kernel.vmAllocate(self, *self.task(), &ws,
                                          kWsPages * kPageSize, true);
        MACH_ASSERT(ok);
        return ws;
    }

    void
    touchWorkingSet(kern::Thread &self, VAddr ws, unsigned round)
    {
        for (unsigned p = 0; p < kWsPages; ++p) {
            MACH_ASSERT(
                self.store32(ws + p * kPageSize, 0x6d690000 + round));
        }
    }

    static constexpr unsigned kWsPages = 8;
    static constexpr unsigned kDmaPages = 16;

    Params params_;
    bool stop_ = false;
};

constexpr hw::ShootdownPolicy kPolicies[] = {
    hw::ShootdownPolicy::Baseline,
    hw::ShootdownPolicy::LazyAsid,
    hw::ShootdownPolicy::Batched,
    hw::ShootdownPolicy::RangeFlush,
    hw::ShootdownPolicy::ReuseElide,
};
constexpr unsigned kNumPolicies = std::size(kPolicies);

/** Matrix columns: the four Section 5.2 applications plus the mixes. */
constexpr unsigned kNumShapes = 6;
constexpr unsigned kShapeMix = 4;
constexpr unsigned kShapeNumaMix = 5;

const char *
shapeLabel(unsigned shape)
{
    static const char *labels[] = {"Mach",    "Parthenon", "Agora",
                                   "Camelot", "Mix",       "NUMA-Mix"};
    return labels[shape];
}

/** Machine shape for a matrix column (policy not yet applied). */
hw::MachineConfig
shapeConfig(unsigned shape)
{
    hw::MachineConfig config;
    config.seed = 0x57a7e6;
    if (shape >= kShapeMix) {
        // Oversubscribed small machine: 6 tasks x 3 threads on 8
        // processors forces the context switching the mix is about.
        config.ncpus = 8;
    }
    if (shape == kShapeNumaMix)
        config.numa_nodes = 2;
    return config;
}

/** Apply @p policy and its implied hardware knobs to @p config. */
hw::MachineConfig
policyConfig(hw::ShootdownPolicy policy, hw::MachineConfig config)
{
    config.shootdown_policy = policy;
    if (policy == hw::ShootdownPolicy::LazyAsid)
        config.tlb_asid_tags = true;
    if (policy == hw::ShootdownPolicy::ReuseElide)
        config.tlb_software_reload = true;
    return config;
}

/** One policy x shape measurement. */
struct Cell
{
    xpr::MachineStats stats;
    double latency_usec = 0.0;
    /** Initiator-latency tail from the shoot.initiator_us histogram
     *  (stats-only recording; timing-neutral, so the mean above is
     *  unchanged by measuring it). */
    std::uint64_t latency_p99_usec = 0;
    std::uint64_t latency_p999_usec = 0;
    double runtime_ms = 0.0;
};

Cell
runCell(unsigned shape, const hw::MachineConfig &config)
{
    vm::Kernel kernel(config);
    kernel.machine().recorder().enableStats();
    std::unique_ptr<apps::Workload> app;
    if (shape < 4) {
        app = makeApp(shape);
    } else {
        MultiMix::Params params;
        params.rounds *= benchScale();
        app = std::make_unique<MultiMix>(params);
    }
    const apps::WorkloadResult result = app->execute(kernel);

    Cell cell;
    cell.stats = xpr::MachineStats::capture(kernel);
    obs::Histogram &initiator =
        kernel.machine().recorder().metrics().histogram(
            "shoot.initiator_us");
    cell.latency_p99_usec = initiator.percentileMille(990);
    cell.latency_p999_usec = initiator.percentileMille(999);
    cell.runtime_ms =
        static_cast<double>(result.virtual_runtime) / kMsec;
    // Initiator latency: user operations where the workload has
    // them, kernel-pmap operations otherwise (Mach build's kmem
    // frees).
    const Sample &user = result.analysis.user_initiator.time_usec;
    cell.latency_usec =
        !user.empty()
            ? user.mean()
            : result.analysis.kernel_initiator.time_usec.mean();
    return cell;
}

/** Per-policy Section 5.1 tester run: safety smoke + reprotect cost. */
struct TesterCell
{
    bool consistent = false;
    double reprotect_usec = 0.0;
};

TesterCell
runTester(hw::ShootdownPolicy policy)
{
    hw::MachineConfig config =
        policyConfig(policy, hw::MachineConfig{});
    config.seed = 0x57a7e6;
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester(
        {.children = 8, .warmup = 30 * kMsec});
    const apps::WorkloadResult result = tester.execute(kernel);
    TesterCell cell;
    cell.consistent = tester.consistent();
    cell.reprotect_usec =
        result.analysis.user_initiator.time_usec.mean();
    return cell;
}

// ---- Part 2b: per-request attribution by policy ----------------------

/** One policy's serving-tier run, decomposed per request. */
struct ServingCell
{
    std::uint64_t requests = 0;
    double mean_usec = 0.0;
    std::uint64_t p99_usec = 0;
    /** Mean us/request banked to each obs::ReqComponent. */
    double component_usec[obs::kReqComponents] = {};
};

ServingCell
runServing(hw::ShootdownPolicy policy)
{
    hw::MachineConfig config =
        policyConfig(policy, hw::MachineConfig{});
    config.seed = 0x5e12e;
    config.ncpus = 8;
    vm::Kernel kernel(config);
    kernel.machine().recorder().enableStats();
    apps::Serving::Params params;
    params.requests_per_tenant *= benchScale();
    apps::Serving app(params);
    app.execute(kernel);

    ServingCell cell;
    cell.requests = app.requests_completed;
    if (cell.requests == 0)
        return cell;
    const double n = static_cast<double>(cell.requests);
    cell.mean_usec =
        static_cast<double>(app.request_ticks) / n / kUsec;
    cell.p99_usec = kernel.machine()
                        .recorder()
                        .metrics()
                        .histogram("serve.request_us")
                        .percentileMille(990);
    for (unsigned c = 0; c < obs::kReqComponents; ++c) {
        cell.component_usec[c] =
            static_cast<double>(app.component_ticks[c]) / n / kUsec;
    }
    return cell;
}

double
savedPct(std::uint64_t baseline, std::uint64_t got)
{
    if (baseline == 0)
        return 0.0;
    return 100.0 *
           (static_cast<double>(baseline) -
            static_cast<double>(got)) /
           static_cast<double>(baseline);
}

void
writeJson(const Cell cells[][kNumShapes], const TesterCell *testers,
          const ServingCell *servings, unsigned scale)
{
    std::FILE *out = std::fopen("BENCH_strategy.json", "w");
    if (out == nullptr)
        fatal("strategy_comparison: cannot write "
              "BENCH_strategy.json");
    std::fprintf(out,
                 "{\n  \"bench\": \"strategy_comparison\",\n"
                 "  \"scale\": %u,\n  \"results\": {\n",
                 scale);
    for (unsigned p = 0; p < kNumPolicies; ++p) {
        const char *policy = hw::shootdownPolicyName(kPolicies[p]);
        std::fprintf(out,
                     "    \"%s__tester\": {\"consistent\": %d, "
                     "\"reprotect_usec\": %.3f},\n",
                     policy, testers[p].consistent ? 1 : 0,
                     testers[p].reprotect_usec);
        for (unsigned s = 0; s < kNumShapes; ++s) {
            const Cell &cell = cells[p][s];
            const xpr::MachineStats &st = cell.stats;
            std::fprintf(
                out,
                "    \"%s__%s\": {\"ipis\": %llu, "
                "\"ipis_saved_pct\": %.3f, \"shootdowns\": %llu, "
                "\"latency_usec\": %.3f, \"latency_p99_us\": %llu, "
                "\"latency_p999_us\": %llu, \"runtime_ms\": %.3f, "
                "\"ipis_elided\": %llu, \"flushes_deferred\": %llu, "
                "\"actions_merged\": %llu, \"range_invalidates\": "
                "%llu, \"full_space_flushes\": %llu, "
                "\"reuse_elisions\": %llu}%s\n",
                policy, shapeLabel(s),
                static_cast<unsigned long long>(st.ipis_sent),
                savedPct(cells[0][s].stats.ipis_sent, st.ipis_sent),
                static_cast<unsigned long long>(
                    st.shootdowns_initiated),
                cell.latency_usec,
                static_cast<unsigned long long>(
                    cell.latency_p99_usec),
                static_cast<unsigned long long>(
                    cell.latency_p999_usec),
                cell.runtime_ms,
                static_cast<unsigned long long>(st.ipis_elided),
                static_cast<unsigned long long>(st.flushes_deferred),
                static_cast<unsigned long long>(st.actions_merged),
                static_cast<unsigned long long>(
                    st.range_invalidates),
                static_cast<unsigned long long>(
                    st.full_space_flushes),
                static_cast<unsigned long long>(st.reuse_elisions),
                ",");
        }
    }
    for (unsigned p = 0; p < kNumPolicies; ++p) {
        const ServingCell &serving = servings[p];
        std::fprintf(
            out,
            "    \"%s__serving\": {\"requests\": %llu, "
            "\"mean_usec\": %.3f, \"p99_us\": %llu",
            hw::shootdownPolicyName(kPolicies[p]),
            static_cast<unsigned long long>(serving.requests),
            serving.mean_usec,
            static_cast<unsigned long long>(serving.p99_usec));
        for (unsigned c = 0; c < obs::kReqComponents; ++c) {
            std::fprintf(
                out, ", \"%s_usec\": %.3f",
                obs::reqComponentName(
                    static_cast<obs::ReqComponent>(c)),
                serving.component_usec[c]);
        }
        std::fprintf(out, "}%s\n",
                     p + 1 == kNumPolicies ? "" : ",");
    }
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
}

int
runPolicyPart()
{
    const unsigned scale = benchScale();

    // One fresh machine per cell (plus one tester per policy), all
    // farmed; results land in indexed slots so tables stay ordered.
    static Cell cells[kNumPolicies][kNumShapes];
    static TesterCell testers[kNumPolicies];
    static ServingCell servings[kNumPolicies];
    std::vector<std::function<void()>> jobs;
    for (unsigned p = 0; p < kNumPolicies; ++p) {
        jobs.push_back([p] { testers[p] = runTester(kPolicies[p]); });
        jobs.push_back(
            [p] { servings[p] = runServing(kPolicies[p]); });
        for (unsigned s = 0; s < kNumShapes; ++s)
            jobs.push_back([p, s] {
                cells[p][s] = runCell(
                    s, policyConfig(kPolicies[p], shapeConfig(s)));
            });
    }
    runFarmed(std::move(jobs));

    std::printf("\n\nBeyond 1989: shootdown-avoidance policies "
                "(--shootdown-policy)\n");
    std::printf("\nIPIs sent (saving vs the Figure 1 baseline)\n");
    std::printf("%-10s", "app");
    for (unsigned p = 0; p < kNumPolicies; ++p)
        std::printf(" %17s", hw::shootdownPolicyName(kPolicies[p]));
    std::printf("\n");
    for (unsigned s = 0; s < kNumShapes; ++s) {
        std::printf("%-10s", shapeLabel(s));
        for (unsigned p = 0; p < kNumPolicies; ++p) {
            const std::uint64_t ipis = cells[p][s].stats.ipis_sent;
            if (p == 0) {
                std::printf(" %10llu       ",
                            static_cast<unsigned long long>(ipis));
            } else {
                std::printf(" %10llu %5.1f%%",
                            static_cast<unsigned long long>(ipis),
                            savedPct(cells[0][s].stats.ipis_sent,
                                     ipis));
            }
        }
        std::printf("\n");
    }

    std::printf("\nper-operation initiator latency (us)\n");
    std::printf("%-10s", "app");
    for (unsigned p = 0; p < kNumPolicies; ++p)
        std::printf(" %17s", hw::shootdownPolicyName(kPolicies[p]));
    std::printf("\n");
    for (unsigned s = 0; s < kNumShapes; ++s) {
        std::printf("%-10s", shapeLabel(s));
        for (unsigned p = 0; p < kNumPolicies; ++p)
            std::printf(" %17.0f", cells[p][s].latency_usec);
        std::printf("\n");
    }

    std::printf("\ninitiator latency tail, p99 / p999 (us, from the "
                "shoot.initiator_us histogram)\n");
    std::printf("%-10s", "app");
    for (unsigned p = 0; p < kNumPolicies; ++p)
        std::printf(" %17s", hw::shootdownPolicyName(kPolicies[p]));
    std::printf("\n");
    for (unsigned s = 0; s < kNumShapes; ++s) {
        std::printf("%-10s", shapeLabel(s));
        for (unsigned p = 0; p < kNumPolicies; ++p) {
            char tail[32];
            std::snprintf(
                tail, sizeof(tail), "%llu/%llu",
                static_cast<unsigned long long>(
                    cells[p][s].latency_p99_usec),
                static_cast<unsigned long long>(
                    cells[p][s].latency_p999_usec));
            std::printf(" %17s", tail);
        }
        std::printf("\n");
    }

    std::printf("\nSection 5.1 tester (8 processors): consistency + "
                "reprotect cost\n");
    for (unsigned p = 0; p < kNumPolicies; ++p) {
        std::printf("  %-12s %-4s %8.0f us\n",
                    hw::shootdownPolicyName(kPolicies[p]),
                    testers[p].consistent ? "yes" : "NO",
                    testers[p].reprotect_usec);
    }

    std::printf("\navoidance counters, summed over the matrix row\n");
    for (unsigned p = 1; p < kNumPolicies; ++p) {
        xpr::MachineStats sum;
        for (unsigned s = 0; s < kNumShapes; ++s) {
            const xpr::MachineStats &st = cells[p][s].stats;
            sum.ipis_elided += st.ipis_elided;
            sum.flushes_deferred += st.flushes_deferred;
            sum.deferred_flushes_applied +=
                st.deferred_flushes_applied;
            sum.actions_merged += st.actions_merged;
            sum.range_invalidates += st.range_invalidates;
            sum.full_space_flushes += st.full_space_flushes;
            sum.reuse_elisions += st.reuse_elisions;
        }
        std::printf(
            "  %-12s %llu IPIs elided, %llu flushes deferred "
            "(%llu applied), %llu actions merged, %llu range vs "
            "%llu full-space invalidates, %llu reuse elisions\n",
            hw::shootdownPolicyName(kPolicies[p]),
            static_cast<unsigned long long>(sum.ipis_elided),
            static_cast<unsigned long long>(sum.flushes_deferred),
            static_cast<unsigned long long>(
                sum.deferred_flushes_applied),
            static_cast<unsigned long long>(sum.actions_merged),
            static_cast<unsigned long long>(sum.range_invalidates),
            static_cast<unsigned long long>(sum.full_space_flushes),
            static_cast<unsigned long long>(sum.reuse_elisions));
    }

    std::printf("\nserving tier: per-request attribution (mean "
                "us/request, obs/request.hh)\n");
    std::printf("%-12s %8s %9s %8s", "policy", "requests", "mean",
                "p99");
    for (unsigned c = 0; c < obs::kReqComponents; ++c) {
        std::printf(" %14s",
                    obs::reqComponentName(
                        static_cast<obs::ReqComponent>(c)));
    }
    std::printf("\n");
    for (unsigned p = 0; p < kNumPolicies; ++p) {
        const ServingCell &serving = servings[p];
        std::printf("%-12s %8llu %9.0f %8llu",
                    hw::shootdownPolicyName(kPolicies[p]),
                    static_cast<unsigned long long>(serving.requests),
                    serving.mean_usec,
                    static_cast<unsigned long long>(serving.p99_usec));
        for (unsigned c = 0; c < obs::kReqComponents; ++c)
            std::printf(" %14.1f", serving.component_usec[c]);
        std::printf("\n");
    }

    writeJson(cells, testers, servings, scale);
    std::printf("\nwrote BENCH_strategy.json\n");

    for (unsigned p = 0; p < kNumPolicies; ++p) {
        if (!testers[p].consistent)
            return 1;
    }
    return 0;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    const int strategy_rc = runStrategyPart();
    const int policy_rc = runPolicyPart();
    return strategy_rc != 0 ? strategy_rc : policy_rc;
}
