/**
 * @file
 * Fundamental type aliases shared across the library.
 *
 * The simulated machine is a 32-bit word machine in the spirit of the
 * NS32332 Encore Multimax; virtual and physical addresses are 32 bits.
 * Simulated time is kept in nanoseconds for headroom but reported in
 * microseconds, matching the Multimax's free-running microsecond counter.
 */

#ifndef MACH_BASE_TYPES_HH
#define MACH_BASE_TYPES_HH

#include <cstdint>

namespace mach
{

/** Simulated time in nanoseconds since machine power-on. */
using Tick = std::uint64_t;

/** One microsecond in Ticks. */
constexpr Tick kUsec = 1000;
/** One millisecond in Ticks. */
constexpr Tick kMsec = 1000 * kUsec;
/** One second in Ticks. */
constexpr Tick kSec = 1000 * kMsec;

/** Virtual address on the simulated machine. */
using VAddr = std::uint32_t;
/** Physical address on the simulated machine. */
using PAddr = std::uint32_t;
/** Physical page frame number. */
using Pfn = std::uint32_t;
/** Virtual page number. */
using Vpn = std::uint32_t;

/** CPU identifier; dense small integers starting at zero. */
using CpuId = std::uint32_t;

/** Hardware page parameters (NS32382-style 4 KB pages). */
constexpr std::uint32_t kPageShift = 12;
constexpr std::uint32_t kPageSize = 1u << kPageShift;
constexpr std::uint32_t kPageMask = kPageSize - 1;

/** Round an address down/up to a page boundary. */
constexpr VAddr
pageTrunc(VAddr addr)
{
    return addr & ~kPageMask;
}

constexpr VAddr
pageRound(VAddr addr)
{
    return (addr + kPageMask) & ~kPageMask;
}

/** Convert between addresses and page numbers. */
constexpr Vpn
vaToVpn(VAddr addr)
{
    return addr >> kPageShift;
}

constexpr VAddr
vpnToVa(Vpn vpn)
{
    return vpn << kPageShift;
}

/** Memory protection values, combinable as a bit mask. */
enum Prot : std::uint8_t
{
    ProtNone = 0,
    ProtRead = 1,
    ProtWrite = 2,
    ProtReadWrite = ProtRead | ProtWrite,
};

constexpr bool
protAllows(Prot have, Prot want)
{
    return (static_cast<std::uint8_t>(have) &
            static_cast<std::uint8_t>(want)) ==
           static_cast<std::uint8_t>(want);
}

/** True when switching from @p from to @p to reduces access rights. */
constexpr bool
protReduces(Prot from, Prot to)
{
    return (static_cast<std::uint8_t>(from) &
            ~static_cast<std::uint8_t>(to)) != 0;
}

} // namespace mach

#endif // MACH_BASE_TYPES_HH
