/**
 * @file
 * Pageout/pagein tests: "even basic virtual memory management
 * functions such as pagein and pageout will not (in general) work
 * correctly unless the TLBs of all CPUs have the same image of the
 * current state of a physical page" (Section 1).
 */

#include <gtest/gtest.h>

#include "vm/kernel.hh"

namespace mach
{
namespace
{

hw::MachineConfig
tinyMemoryConfig()
{
    setLogQuiet(true);
    hw::MachineConfig config;
    config.ncpus = 4;
    // Small memory so the pageout daemon has real work: ~512 KB, with
    // the low-water mark high enough that the test workloads push the
    // free count below it.
    config.phys_frames = 128;
    config.pageout_low_frames = 80;
    // Fast backing store keeps the test quick.
    config.pagein_latency = 2 * kMsec;
    config.pageout_latency = 2 * kMsec;
    return config;
}

void
inKernel(const hw::MachineConfig &config,
         const std::function<void(vm::Kernel &, kern::Thread &)> &body)
{
    vm::Kernel kernel(config);
    kernel.start();
    kernel.enablePageout();
    bool finished = false;
    kernel.spawnThread(nullptr, "pageout-driver",
                       [&](kern::Thread &driver) {
                           body(kernel, driver);
                           finished = true;
                           kernel.machine().ctx().requestStop();
                       });
    kernel.machine().run();
    ASSERT_TRUE(finished);
}

TEST(PagerUnit, StoreRoundTrip)
{
    hw::PhysMem mem(16);
    vm::DefaultPager pager(&mem);
    const Pfn src = mem.allocFrame();
    const Pfn dst = mem.allocFrame();
    for (std::uint32_t i = 0; i < kPageSize; i += 4)
        mem.write32((src << kPageShift) + i, i ^ 0x5a5a);

    EXPECT_FALSE(pager.contains(7, 3));
    pager.pageOut(7, 3, src);
    EXPECT_TRUE(pager.contains(7, 3));
    EXPECT_EQ(pager.storedPages(), 1u);

    pager.pageIn(7, 3, dst);
    EXPECT_FALSE(pager.contains(7, 3)); // Image consumed.
    for (std::uint32_t i = 0; i < kPageSize; i += 4)
        ASSERT_EQ(mem.read32((dst << kPageShift) + i), i ^ 0x5a5a);
}

TEST(PagerUnit, ImagesAreKeyedByObjectAndOffset)
{
    hw::PhysMem mem(16);
    vm::DefaultPager pager(&mem);
    const Pfn frame = mem.allocFrame();
    mem.write32(frame << kPageShift, 111);
    pager.pageOut(1, 0, frame);
    mem.write32(frame << kPageShift, 222);
    pager.pageOut(1, 1, frame);
    mem.write32(frame << kPageShift, 333);
    pager.pageOut(2, 0, frame);

    Pfn in = mem.allocFrame();
    pager.pageIn(1, 1, in);
    EXPECT_EQ(mem.read32(in << kPageShift), 222u);
    pager.pageIn(2, 0, in);
    EXPECT_EQ(mem.read32(in << kPageShift), 333u);
    EXPECT_TRUE(pager.contains(1, 0));
}

TEST(PagerUnit, ForgetDropsOneObjectsImages)
{
    hw::PhysMem mem(16);
    vm::DefaultPager pager(&mem);
    const Pfn frame = mem.allocFrame();
    pager.pageOut(5, 0, frame);
    pager.pageOut(5, 9, frame);
    pager.pageOut(6, 0, frame);
    pager.forget(5);
    EXPECT_FALSE(pager.contains(5, 0));
    EXPECT_FALSE(pager.contains(5, 9));
    EXPECT_TRUE(pager.contains(6, 0));
    EXPECT_EQ(pager.storedPages(), 1u);
}

TEST(Pageout, DataSurvivesPageoutPageinRoundTrip)
{
    inKernel(tinyMemoryConfig(), [](vm::Kernel &kernel,
                                    kern::Thread &drv) {
        vm::Task *task = kernel.createTask("pager-victim");
        constexpr unsigned kPages = 56;
        VAddr va = 0;

        kern::Thread *worker = kernel.spawnThread(
            task, "toucher", [&](kern::Thread &self) {
                ASSERT_TRUE(kernel.vmAllocate(self, *task, &va,
                                              kPages * kPageSize,
                                              true));
                // Fill with a recognizable pattern; this pressure
                // pushes free frames below the pageout threshold.
                for (unsigned i = 0; i < kPages; ++i) {
                    ASSERT_TRUE(self.store32(va + i * kPageSize,
                                             0xbeef0000 + i));
                }
                // Give the daemon time to steal pages.
                self.sleep(400 * kMsec);
                // Everything must read back intact (pagein).
                for (unsigned i = 0; i < kPages; ++i) {
                    std::uint32_t value = 0;
                    ASSERT_TRUE(
                        self.load32(va + i * kPageSize, &value));
                    ASSERT_EQ(value, 0xbeef0000 + i) << "page " << i;
                }
            });
        drv.join(*worker);
        EXPECT_GT(kernel.pager().pageouts, 0u);
        EXPECT_GT(kernel.pager().pageins, 0u);
        EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
    });
}

TEST(Pageout, StolenPagesLoseTheirMappingsEverywhere)
{
    inKernel(tinyMemoryConfig(), [](vm::Kernel &kernel,
                                    kern::Thread &drv) {
        vm::Task *task = kernel.createTask("shared");
        constexpr unsigned kPages = 60;
        VAddr va = 0;
        bool stop = false;

        // Two threads on different CPUs share the pages while the
        // daemon steals them; the pageProtect shootdowns must keep
        // every TLB honest, so no thread ever reads stale data.
        kern::Thread *writer = kernel.spawnThread(
            task, "writer",
            [&](kern::Thread &self) {
                ASSERT_TRUE(kernel.vmAllocate(self, *task, &va,
                                              kPages * kPageSize,
                                              true));
                for (unsigned i = 0; i < kPages; ++i)
                    ASSERT_TRUE(self.store32(va + i * kPageSize,
                                             0xaa000000 + i));
                while (!stop) {
                    for (unsigned i = 0; i < kPages; i += 7) {
                        std::uint32_t value = 0;
                        ASSERT_TRUE(
                            self.load32(va + i * kPageSize, &value));
                        ASSERT_EQ(value, 0xaa000000 + i);
                    }
                    self.sleep(20 * kMsec);
                }
            },
            0);
        drv.sleep(100 * kMsec);
        kern::Thread *reader = kernel.spawnThread(
            task, "reader",
            [&](kern::Thread &self) {
                for (int round = 0; round < 10; ++round) {
                    for (unsigned i = 3; i < kPages; i += 11) {
                        std::uint32_t value = 0;
                        ASSERT_TRUE(
                            self.load32(va + i * kPageSize, &value));
                        ASSERT_EQ(value, 0xaa000000 + i);
                    }
                    self.sleep(25 * kMsec);
                }
                stop = true;
            },
            1);
        drv.join(*reader);
        drv.join(*writer);
        EXPECT_GT(kernel.pager().pageouts, 0u);
        EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
    });
}

TEST(Pageout, WiredKernelPagesAreNeverStolen)
{
    inKernel(tinyMemoryConfig(), [](vm::Kernel &kernel,
                                    kern::Thread &drv) {
        // Touch kernel memory, then create pressure from a user task;
        // the kernel page must remain resident and intact.
        const VAddr kbuf = kernel.kmemAlloc(drv, kPageSize);
        ASSERT_TRUE(drv.store32(kbuf, 0x5151));

        vm::Task *task = kernel.createTask("pressure");
        kern::Thread *worker = kernel.spawnThread(
            task, "pressure", [&](kern::Thread &self) {
                VAddr va = 0;
                ASSERT_TRUE(kernel.vmAllocate(self, *task, &va,
                                              60 * kPageSize, true));
                for (unsigned i = 0; i < 60; ++i)
                    ASSERT_TRUE(
                        self.store32(va + i * kPageSize, i));
                self.sleep(300 * kMsec);
            });
        drv.join(*worker);

        std::uint32_t value = 0;
        ASSERT_TRUE(drv.load32(kbuf, &value));
        EXPECT_EQ(value, 0x5151u);
        kernel.kmemFree(drv, kbuf, kPageSize);
    });
}

} // namespace
} // namespace mach
