/**
 * @file
 * CpuSet: the wide shoot-set / in-use-set representation.
 *
 * The original Multimax stopped at 16 processors; the NUMA topology
 * layer composes machines past that, so every set of CPUs in the tree
 * must behave identically at 17, 64, and 128 members -- the shapes
 * that cross the old 16-bit mask, fill one 64-bit word, and span
 * multiple words.
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/cpuset.hh"

namespace
{

using mach::CpuId;
using mach::CpuSet;

std::vector<CpuId>
members(const CpuSet &set)
{
    std::vector<CpuId> out;
    set.forEach([&](CpuId id) { out.push_back(id); });
    return out;
}

TEST(CpuSet, StartsEmpty)
{
    CpuSet set;
    EXPECT_TRUE(set.empty());
    EXPECT_EQ(set.count(), 0u);
    EXPECT_EQ(set.first(), CpuSet::kMaxCpus);
    EXPECT_EQ(set.format(), "{}");
}

TEST(CpuSet, SetClearTestAssign)
{
    CpuSet set;
    set.set(0);
    set.set(16); // First id beyond the paper's 16-bit mask.
    set.set(63);
    set.set(64); // First id in the second word.
    set.set(127);
    EXPECT_TRUE(set.test(0));
    EXPECT_TRUE(set.test(16));
    EXPECT_TRUE(set.test(63));
    EXPECT_TRUE(set.test(64));
    EXPECT_TRUE(set.test(127));
    EXPECT_FALSE(set.test(1));
    EXPECT_FALSE(set.test(65));
    EXPECT_EQ(set.count(), 5u);

    set.clear(64);
    EXPECT_FALSE(set.test(64));
    EXPECT_EQ(set.count(), 4u);

    set.assign(64, true);
    EXPECT_TRUE(set.test(64));
    set.assign(64, false);
    EXPECT_FALSE(set.test(64));

    set.clearAll();
    EXPECT_TRUE(set.empty());
}

TEST(CpuSet, FullMachineShapes)
{
    for (unsigned ncpus : {17u, 64u, 128u}) {
        CpuSet set;
        for (CpuId id = 0; id < ncpus; ++id)
            set.set(id);
        EXPECT_EQ(set.count(), ncpus) << "ncpus=" << ncpus;
        EXPECT_EQ(set.first(), 0u);
        for (CpuId id = 0; id < ncpus; ++id)
            EXPECT_TRUE(set.test(id)) << "ncpus=" << ncpus
                                      << " id=" << id;
        EXPECT_FALSE(set.test(ncpus));

        // Iteration order is ascending id -- the order the shootdown
        // protocol's send loops (and the determinism digests) rely on.
        const std::vector<CpuId> got = members(set);
        ASSERT_EQ(got.size(), ncpus);
        for (CpuId id = 0; id < ncpus; ++id)
            EXPECT_EQ(got[id], id);
    }
}

TEST(CpuSet, SetOperations)
{
    CpuSet a, b;
    for (CpuId id = 0; id < 128; id += 2)
        a.set(id); // evens
    for (CpuId id = 0; id < 128; id += 3)
        b.set(id); // multiples of 3

    CpuSet uni = a;
    uni |= b;
    CpuSet inter = a;
    inter &= b;

    for (CpuId id = 0; id < 128; ++id) {
        EXPECT_EQ(uni.test(id), id % 2 == 0 || id % 3 == 0);
        EXPECT_EQ(inter.test(id), id % 6 == 0);
    }

    CpuSet copy = a;
    EXPECT_TRUE(copy == a);
    copy.clear(0);
    EXPECT_FALSE(copy == a);
}

TEST(CpuSet, FirstSkipsLeadingWords)
{
    CpuSet set;
    set.set(100);
    set.set(900);
    EXPECT_EQ(set.first(), 100u);
    set.clear(100);
    EXPECT_EQ(set.first(), 900u);
}

TEST(CpuSet, FormatCollapsesRuns)
{
    CpuSet set;
    for (CpuId id = 0; id <= 3; ++id)
        set.set(id);
    set.set(8);
    for (CpuId id = 12; id <= 15; ++id)
        set.set(id);
    EXPECT_EQ(set.format(), "{0-3,8,12-15}");

    // A run of exactly two prints as a pair, not a dash range.
    CpuSet pair;
    pair.set(5);
    pair.set(6);
    EXPECT_EQ(pair.format(), "{5,6}");

    // Wide-machine ids format past the old 16-CPU ceiling.
    CpuSet wide;
    for (CpuId id = 16; id < 128; ++id)
        wide.set(id);
    EXPECT_EQ(wide.format(), "{16-127}");
}

TEST(CpuSet, BoundaryIds)
{
    CpuSet set;
    set.set(CpuSet::kMaxCpus - 1);
    EXPECT_TRUE(set.test(CpuSet::kMaxCpus - 1));
    EXPECT_EQ(set.count(), 1u);
    EXPECT_EQ(set.first(), CpuSet::kMaxCpus - 1);
    EXPECT_EQ(members(set).back(), CpuSet::kMaxCpus - 1);
}

TEST(CpuSet, PopulationOpsAtTheCapacityBoundary)
{
    // MachineConfig caps ncpus + devices at exactly kMaxCpus, so the
    // last few ids are reachable responder ids, not dead headroom:
    // every population op must work on the final word's top bits.
    CpuSet set;
    const CpuId last = CpuSet::kMaxCpus - 1;
    for (CpuId id = last - 3; id <= last; ++id)
        set.set(id);
    EXPECT_EQ(set.count(), 4u);
    EXPECT_EQ(set.format(), "{1020-1023}");

    set.clear(last - 1);
    EXPECT_EQ(set.format(), "{1020,1021,1023}");
    set.assign(last - 1, true);
    set.assign(last - 3, false);
    EXPECT_EQ(set.format(), "{1021-1023}");

    // Out-of-range probes are safely "not a member"; the union and
    // intersection of boundary-straddling sets stay in bounds.
    EXPECT_FALSE(set.test(CpuSet::kMaxCpus));
    EXPECT_FALSE(set.test(~CpuId{0}));
    CpuSet other;
    other.set(0);
    other.set(last);
    CpuSet uni = set;
    uni |= other;
    EXPECT_EQ(uni.format(), "{0,1021-1023}");
    CpuSet inter = set;
    inter &= other;
    EXPECT_EQ(inter.format(), "{" + std::to_string(last) + "}");
    EXPECT_EQ(inter.first(), last);
}

TEST(CpuSet, MixedCpuAndDeviceIdSets)
{
    // An in-use set on a device-equipped machine holds both id
    // families: CPUs at [0, ncpus) and devices at [ncpus, ncpus +
    // devices) (pmap/responder.hh). The set must not care where the
    // family boundary falls, including when it straddles a word.
    const unsigned ncpus = 62;
    const unsigned devices = 4;
    CpuSet in_use;
    for (CpuId cpu = 0; cpu < ncpus; cpu += 2)
        in_use.set(cpu);
    for (unsigned dev = 0; dev < devices; ++dev)
        in_use.set(ncpus + dev);
    EXPECT_EQ(in_use.count(), ncpus / 2 + devices);

    // Splitting by family -- what the shootdown controller does when
    // it walks CPUs and device responders in separate phases -- is a
    // mask intersection, and the two halves partition the set.
    CpuSet cpu_mask;
    for (CpuId cpu = 0; cpu < ncpus; ++cpu)
        cpu_mask.set(cpu);
    CpuSet cpus = in_use;
    cpus &= cpu_mask;
    EXPECT_EQ(cpus.count(), ncpus / 2);
    unsigned seen_devices = 0;
    in_use.forEach([&](CpuId id) {
        if (id >= ncpus) {
            ++seen_devices;
            EXPECT_LT(id, ncpus + devices);
            EXPECT_FALSE(cpus.test(id));
        }
    });
    EXPECT_EQ(seen_devices, devices);

    // The device run straddles the 62/63 -> 64 word boundary and still
    // collapses into one range next to the even-CPU singles.
    EXPECT_EQ(in_use.format().substr(
                  in_use.format().find("60")),
              "60,62-65}");
}

} // namespace
