#include "kern/timer.hh"

#include "base/logging.hh"
#include "base/rng.hh"
#include "kern/machine.hh"
#include "kern/sched.hh"

namespace mach::kern
{

IoDevice::IoDevice(Machine *machine) : machine_(machine)
{
    machine_->setIrqHandler(hw::Irq::Device,
                            [this](Cpu &cpu) { serviceInterrupt(cpu); });
}

void
IoDevice::request(Thread &thread, Tick latency)
{
    if (latency == 0)
        latency = 1;
    Machine &m = *machine_;
    // Submitting the request manipulates device queues at splbio:
    // another of the interrupt-masked kernel windows that delay
    // shootdown responses (Section 8).
    Cpu &cpu = thread.cpu();
    const hw::Spl saved = cpu.setSpl(hw::SplDevice);
    cpu.advance(80 * kUsec +
                Tick(m.rng().exponential(120.0) * kUsec));
    cpu.setSpl(saved);
    Thread *tp = &thread;
    m.ctx().scheduleCall(m.now() + latency, [this, tp] {
        completed_.push_back(tp);
        machine_->intr().post(intr_target_, hw::Irq::Device);
    });
    m.sched().blockCurrent(thread.cpu());
}

void
IoDevice::serviceInterrupt(Cpu &cpu)
{
    // The service routine runs with device (and on baseline hardware,
    // shootdown) interrupts masked -- these are exactly the "varying
    // intervals for which interrupts are disabled" that skew kernel
    // shootdown times in Section 8: many short intervals, few long
    // ones (the heavy-tailed service below).
    Rng &rng = machine_->rng();
    Tick service = 150 * kUsec + Tick(rng.exponential(180.0) * kUsec);
    if (rng.chance(0.05)) {
        // Occasionally the device needs a slow error-recovery /
        // retry pass.
        service += Tick(rng.exponential(2500.0) * kUsec);
    }
    cpu.advance(service);
    while (!completed_.empty()) {
        Thread *thread = completed_.front();
        completed_.pop_front();
        ++completions;
        cpu.advance(50 * kUsec);
        machine_->sched().wakeup(*thread);
    }
}

} // namespace mach::kern
