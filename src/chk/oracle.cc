#include "chk/oracle.hh"

#include <cstdio>

#include "hw/machine_config.hh"
#include "obs/recorder.hh"
#include "pmap/pmap.hh"
#include "vm/kernel.hh"

namespace mach::chk
{

Oracle::Oracle(vm::Kernel &kernel) : kernel_(kernel)
{
    kernel_.pmaps().setPostOpHook([this](pmap::Pmap &) {
        const hw::MachineConfig &cfg = kernel_.machine().cfg();
        if (cfg.consistency_strategy !=
            hw::ConsistencyStrategy::Shootdown) {
            // DelayedFlush holds stale entries until the next timer
            // flush by design; only finalCheck() is meaningful.
            ++ops_skipped_;
            return;
        }
        if (kernel_.pmaps().anyPmapLocked()) {
            // Another initiator is mid-change; remote TLBs may
            // legitimately be stale until its invalidation phase.
            ++ops_skipped_;
            return;
        }
        audit("post-op");
    });
}

Oracle::~Oracle()
{
    kernel_.pmaps().setPostOpHook(nullptr);
}

void
Oracle::finalCheck()
{
    if (kernel_.pmaps().anyPmapLocked()) {
        // Run was cut short with an operation in flight; any audit
        // result here would be meaningless.
        ++ops_skipped_;
        return;
    }
    audit("final");
}

void
Oracle::audit(const char *where)
{
    ++ops_audited_;
    const std::uint64_t before = violation_count_;
    for (const std::string &v : kernel_.pmaps().auditTlbConsistency()) {
        ++violation_count_;
        if (violations_.size() < kMaxStored) {
            char head[64];
            std::snprintf(head, sizeof(head), "[%s t=%llu] ", where,
                          static_cast<unsigned long long>(
                              kernel_.machine().now()));
            violations_.push_back(head + v);
        }
    }
    if (violation_count_ != before) {
        // Flight-recorder trigger: the first stale translation dumps
        // the recent-event ring (when machsim armed a dump path), so
        // the failure ships with its timeline.
        kernel_.machine().recorder().dumpOnFailure("stale translation");
    }
}

} // namespace mach::chk
