#include "hw/machine_config.hh"

#include "base/logging.hh"

namespace mach::hw
{

Spl
MachineConfig::irqPriority(Irq irq) const
{
    switch (irq) {
      case Irq::Shootdown:
        // Baseline hardware delivers the shootdown IPI below device
        // priority, so kernel code that masks devices also blocks
        // shootdowns -- the cause of the kernel-shootdown skew in
        // Section 8. The Section 9 option raises it above devices.
        return high_priority_ipi ? SplHigh : SplSoft;
      case Irq::Timer:
      case Irq::Device:
        return SplDevice;
    }
    panic("irqPriority: bad irq %u", static_cast<unsigned>(irq));
}

void
MachineConfig::validate() const
{
    if (ncpus == 0 || ncpus > 1024)
        fatal("MachineConfig: ncpus %u out of range [1,1024]", ncpus);
    if (phys_frames < 64)
        fatal("MachineConfig: need at least 64 physical frames");
    if (tlb_entries == 0)
        fatal("MachineConfig: TLB must have at least one entry");
    if (tlb_associativity > 0 &&
        tlb_entries % tlb_associativity != 0) {
        fatal("MachineConfig: tlb_associativity (%u) must evenly "
              "divide tlb_entries (%u)",
              tlb_associativity, tlb_entries);
    }
    if (tlb_l0_entries > 4)
        fatal("MachineConfig: tlb_l0_entries (%u) out of range [0,4]",
              tlb_l0_entries);
    if (action_queue_size == 0)
        fatal("MachineConfig: action queue must hold at least one entry");
    if (multicast_ipi && broadcast_ipi)
        fatal("MachineConfig: multicast and broadcast IPI are exclusive");
    if (kernel_pools == 0 || kernel_pools > ncpus ||
        ncpus % kernel_pools != 0) {
        fatal("MachineConfig: kernel_pools (%u) must evenly divide "
              "ncpus (%u)",
              kernel_pools, ncpus);
    }
    if (consistency_strategy == ConsistencyStrategy::DelayedFlush) {
        if (!tlb_no_refmod_writeback && !tlb_interlocked_refmod) {
            fatal("MachineConfig: the delayed-flush technique leaves "
                  "remote TLBs live during pmap updates, so it "
                  "requires tlb_no_refmod_writeback (cf. the MIPS "
                  "systems of Thompson et al.)");
        }
        if (timer_period == 0)
            fatal("MachineConfig: delayed-flush needs timer "
                  "interrupts to drive the buffer flushes");
    }
    if (tlb_remote_invalidate && !tlb_no_refmod_writeback &&
        !tlb_interlocked_refmod) {
        // Section 9: remote invalidation "can eliminate shootdown
        // interrupts entirely if the reference/modify bit writeback
        // problem is successfully addressed" -- without that, a
        // responder's TLB can still corrupt an in-flight pmap update.
        fatal("MachineConfig: tlb_remote_invalidate requires "
              "tlb_no_refmod_writeback or tlb_interlocked_refmod "
              "(see Section 9)");
    }
    if (virtual_cache && !tlb_no_refmod_writeback) {
        fatal("MachineConfig: the virtual-cache model is software "
              "managed; set tlb_no_refmod_writeback");
    }
    if (tlb_interlocked_refmod && tlb_no_refmod_writeback)
        fatal("MachineConfig: interlocked ref/mod updates and no "
              "writeback at all are mutually exclusive TLB designs");
    if (shootdown_policy != ShootdownPolicy::Baseline) {
        if (consistency_strategy == ConsistencyStrategy::DelayedFlush)
            fatal("MachineConfig: shootdown-avoidance policies layer "
                  "over the shootdown strategy, not delayed-flush");
        if (tlb_remote_invalidate)
            fatal("MachineConfig: tlb_remote_invalidate bypasses the "
                  "responder protocol the avoidance policies hook");
    }
    if (shootdown_policy == ShootdownPolicy::LazyAsid &&
        !tlb_asid_tags) {
        fatal("MachineConfig: the lazy-asid policy defers flushes "
              "across context switches, which only a tagged TLB "
              "survives; set tlb_asid_tags");
    }
    if (shootdown_policy == ShootdownPolicy::ReuseElide) {
        if (tlb_no_refmod_writeback) {
            fatal("MachineConfig: the reuse-elide policy proves pages "
                  "uncached via the reference bit every TLB fill sets; "
                  "tlb_no_refmod_writeback breaks that proof");
        }
        if (!tlb_software_reload) {
            fatal("MachineConfig: the reuse-elide proof is only "
                  "race-free when TLB misses stall on a locked pmap, "
                  "i.e. with software reload (a hardware walker could "
                  "re-cache a clean page mid-update, after the "
                  "reference bits were scanned); set "
                  "tlb_software_reload");
        }
    }
    if (range_flush_crossover < tlb_flush_threshold)
        fatal("MachineConfig: range_flush_crossover (%u) must be >= "
              "tlb_flush_threshold (%u)",
              range_flush_crossover, tlb_flush_threshold);
    if (chk_skip_asid_gen_check &&
        shootdown_policy != ShootdownPolicy::LazyAsid) {
        fatal("MachineConfig: chk_skip_asid_gen_check plants a bug in "
              "the lazy-asid context-load hook; set shootdown_policy "
              "to LazyAsid");
    }
    if (numa_nodes == 0 || numa_nodes > 8)
        fatal("MachineConfig: numa_nodes (%u) out of range [1,8]",
              numa_nodes);
    if (ncpus % numa_nodes != 0) {
        fatal("MachineConfig: numa_nodes (%u) must evenly divide "
              "ncpus (%u)",
              numa_nodes, ncpus);
    }
    if (numa_nodes > 1 && ncpus / numa_nodes > 16) {
        fatal("MachineConfig: a NUMA node is one bus; at most 16 CPUs "
              "per node (got %u)",
              ncpus / numa_nodes);
    }
    if (numa_nodes > 1 && phys_frames / numa_nodes < 64)
        fatal("MachineConfig: need at least 64 physical frames per "
              "NUMA node");
    if (numa_remote_distance < 10)
        fatal("MachineConfig: numa_remote_distance (%u) must be >= "
              "the local distance 10",
              numa_remote_distance);
    if (numa_pt_replicas && numa_nodes < 2)
        fatal("MachineConfig: per-node page-table replicas need "
              "numa_nodes > 1");
    if (chk_defer_replica_sync && !numa_pt_replicas)
        fatal("MachineConfig: chk_defer_replica_sync plants a bug in "
              "the replica sync path; set numa_pt_replicas");
    if (ncpus + devices > 1024) {
        fatal("MachineConfig: ncpus (%u) + devices (%u) exceed the "
              "1024-wide responder id space",
              ncpus, devices);
    }
    if (devices > 0 && iotlb_entries == 0)
        fatal("MachineConfig: an IOTLB must have at least one entry");
    if (chk_skip_iotlb_invalidate && devices == 0)
        fatal("MachineConfig: chk_skip_iotlb_invalidate plants a bug "
              "in the device drain path; set devices > 0");
    if (numa_nodes > 1 && kernel_pools > 1 &&
        kernel_pools % numa_nodes != 0 &&
        numa_nodes % kernel_pools != 0) {
        fatal("MachineConfig: kernel_pools (%u) and numa_nodes (%u) "
              "must nest",
              kernel_pools, numa_nodes);
    }
}

const char *
shootdownPolicyName(ShootdownPolicy policy)
{
    switch (policy) {
      case ShootdownPolicy::Baseline:
        return "baseline";
      case ShootdownPolicy::LazyAsid:
        return "lazy-asid";
      case ShootdownPolicy::Batched:
        return "batched";
      case ShootdownPolicy::RangeFlush:
        return "range-flush";
      case ShootdownPolicy::ReuseElide:
        return "reuse-elide";
    }
    panic("shootdownPolicyName: bad policy %u",
          static_cast<unsigned>(policy));
}

bool
parseShootdownPolicy(const std::string &name, ShootdownPolicy *out)
{
    static constexpr ShootdownPolicy kAll[] = {
        ShootdownPolicy::Baseline, ShootdownPolicy::LazyAsid,
        ShootdownPolicy::Batched, ShootdownPolicy::RangeFlush,
        ShootdownPolicy::ReuseElide};
    for (const ShootdownPolicy policy : kAll) {
        if (name == shootdownPolicyName(policy)) {
            *out = policy;
            return true;
        }
    }
    return false;
}

} // namespace mach::hw
