/**
 * @file
 * Serving-tier SLO sweep: request tail latency under multi-tenant
 * churn, across shootdown-avoidance policies and machine shapes.
 *
 * The 1989 paper reports mean shootdown costs for batch applications;
 * a serving tier lives and dies by its p99.9. This bench runs the
 * apps::Serving workload (fork/exec/exit churn, shared binary,
 * per-request mmap/munmap bursts) over a tenants x policy x NUMA-shape
 * grid and reports the request-latency and shootdown-initiator
 * percentiles from the stats-only recorder -- the numbers a
 * --stats-json consumer would scrape, produced without storing a
 * single timeline event.
 *
 * Simulated numbers are deterministic for a given scale, so the JSON
 * written to BENCH_serving.json is a committable baseline;
 * tools/perf_smoke.py regresses fresh runs against it and CI archives
 * it per run.
 */

#include "bench_common.hh"

#include "apps/serving.hh"
#include "obs/metrics.hh"
#include "obs/recorder.hh"
#include "xpr/machine_stats.hh"

using namespace mach;
using namespace mach::bench;

namespace
{

constexpr hw::ShootdownPolicy kPolicies[] = {
    hw::ShootdownPolicy::Baseline,
    hw::ShootdownPolicy::LazyAsid,
    hw::ShootdownPolicy::Batched,
    hw::ShootdownPolicy::ReuseElide,
};
constexpr unsigned kNumPolicies = std::size(kPolicies);

constexpr unsigned kTenantCounts[] = {8, 16, 24};
constexpr unsigned kNumTenantCounts = std::size(kTenantCounts);

/** Machine shapes: one flat 16-CPU node and a 4-node NUMA box. */
struct Shape
{
    const char *label;
    unsigned numa_nodes;
    unsigned ncpus;
};
constexpr Shape kShapes[] = {
    {"n1", 1, 16},
    {"n4", 4, 32},
};
constexpr unsigned kNumShapes = std::size(kShapes);

/** Percentiles of one latency histogram, in usec. */
struct Tail
{
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t p999 = 0;
    std::uint64_t count = 0;
};

Tail
tailOf(const obs::Histogram &h)
{
    Tail t;
    t.p50 = h.percentileMille(500);
    t.p99 = h.percentileMille(990);
    t.p999 = h.percentileMille(999);
    t.count = h.count();
    return t;
}

struct Cell
{
    Tail request;
    Tail shootdown;
    std::uint64_t ipis = 0;
    std::uint64_t shootdowns = 0;
    double runtime_ms = 0.0;
    bool clean = false;
};

Cell
runCell(unsigned tenants, hw::ShootdownPolicy policy,
        const Shape &shape)
{
    hw::MachineConfig config;
    config.seed = 0x5e12e;
    config.ncpus = shape.ncpus;
    config.numa_nodes = shape.numa_nodes;
    config.shootdown_policy = policy;
    if (policy == hw::ShootdownPolicy::LazyAsid)
        config.tlb_asid_tags = true;
    if (policy == hw::ShootdownPolicy::ReuseElide)
        config.tlb_software_reload = true;

    vm::Kernel kernel(config);
    kernel.machine().recorder().enableStats();

    apps::Serving::Params params;
    params.tenants = tenants;
    params.requests_per_tenant *= benchScale();
    apps::Serving app(params);
    const apps::WorkloadResult result = app.execute(kernel);

    obs::Metrics &metrics = kernel.machine().recorder().metrics();
    Cell cell;
    cell.request = tailOf(metrics.histogram("serve.request_us"));
    cell.shootdown = tailOf(metrics.histogram("shoot.initiator_us"));
    const xpr::MachineStats stats = xpr::MachineStats::capture(kernel);
    cell.ipis = stats.ipis_sent;
    cell.shootdowns = stats.shootdowns_initiated;
    cell.runtime_ms =
        static_cast<double>(result.virtual_runtime) / kMsec;
    cell.clean = kernel.pmaps().auditTlbConsistency().empty();
    return cell;
}

std::string
cellKey(hw::ShootdownPolicy policy, unsigned tenants,
        const Shape &shape)
{
    return std::string(hw::shootdownPolicyName(policy)) + "__t" +
           std::to_string(tenants) + "__" + shape.label;
}

void
writeJson(const Cell cells[][kNumTenantCounts][kNumShapes],
          unsigned scale)
{
    std::FILE *out = std::fopen("BENCH_serving.json", "w");
    if (out == nullptr)
        fatal("serving_slo: cannot write BENCH_serving.json");
    std::fprintf(out,
                 "{\n  \"bench\": \"serving_slo\",\n"
                 "  \"scale\": %u,\n  \"results\": {\n",
                 scale);
    for (unsigned p = 0; p < kNumPolicies; ++p) {
        for (unsigned t = 0; t < kNumTenantCounts; ++t) {
            for (unsigned s = 0; s < kNumShapes; ++s) {
                const Cell &cell = cells[p][t][s];
                const bool last = p + 1 == kNumPolicies &&
                                  t + 1 == kNumTenantCounts &&
                                  s + 1 == kNumShapes;
                std::fprintf(
                    out,
                    "    \"%s\": {\"request_p50_us\": %llu, "
                    "\"request_p99_us\": %llu, \"request_p999_us\": "
                    "%llu, \"shootdown_p50_us\": %llu, "
                    "\"shootdown_p99_us\": %llu, "
                    "\"shootdown_p999_us\": %llu, \"requests\": %llu, "
                    "\"shootdowns\": %llu, \"ipis\": %llu, "
                    "\"runtime_ms\": %.3f}%s\n",
                    cellKey(kPolicies[p], kTenantCounts[t],
                            kShapes[s])
                        .c_str(),
                    static_cast<unsigned long long>(cell.request.p50),
                    static_cast<unsigned long long>(cell.request.p99),
                    static_cast<unsigned long long>(
                        cell.request.p999),
                    static_cast<unsigned long long>(
                        cell.shootdown.p50),
                    static_cast<unsigned long long>(
                        cell.shootdown.p99),
                    static_cast<unsigned long long>(
                        cell.shootdown.p999),
                    static_cast<unsigned long long>(
                        cell.request.count),
                    static_cast<unsigned long long>(cell.shootdowns),
                    static_cast<unsigned long long>(cell.ipis),
                    cell.runtime_ms, last ? "" : ",");
            }
        }
    }
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
}

} // namespace

int
main()
{
    setLogQuiet(true);
    const unsigned scale = benchScale();

    // One fresh machine per cell, farmed; indexed slots keep the
    // tables ordered regardless of completion order.
    static Cell cells[kNumPolicies][kNumTenantCounts][kNumShapes];
    std::vector<std::function<void()>> jobs;
    for (unsigned p = 0; p < kNumPolicies; ++p)
        for (unsigned t = 0; t < kNumTenantCounts; ++t)
            for (unsigned s = 0; s < kNumShapes; ++s)
                jobs.push_back([p, t, s] {
                    cells[p][t][s] =
                        runCell(kTenantCounts[t], kPolicies[p],
                                kShapes[s]);
                });
    runFarmed(std::move(jobs),
              farmWidth(kNumPolicies * kNumTenantCounts * kNumShapes));

    bool all_clean = true;
    for (unsigned s = 0; s < kNumShapes; ++s) {
        std::printf("\nserving tail latency, %s (%u CPUs / %u "
                    "node(s)), usec\n",
                    kShapes[s].label, kShapes[s].ncpus,
                    kShapes[s].numa_nodes);
        std::printf("%-12s %8s %10s %10s %10s %12s %12s %8s\n",
                    "policy", "tenants", "req_p50", "req_p99",
                    "req_p999", "shoot_p99", "shoot_p999", "ipis");
        for (unsigned p = 0; p < kNumPolicies; ++p) {
            for (unsigned t = 0; t < kNumTenantCounts; ++t) {
                const Cell &cell = cells[p][t][s];
                all_clean = all_clean && cell.clean;
                std::printf(
                    "%-12s %8u %10llu %10llu %10llu %12llu %12llu "
                    "%8llu\n",
                    hw::shootdownPolicyName(kPolicies[p]),
                    kTenantCounts[t],
                    static_cast<unsigned long long>(cell.request.p50),
                    static_cast<unsigned long long>(cell.request.p99),
                    static_cast<unsigned long long>(
                        cell.request.p999),
                    static_cast<unsigned long long>(
                        cell.shootdown.p99),
                    static_cast<unsigned long long>(
                        cell.shootdown.p999),
                    static_cast<unsigned long long>(cell.ipis));
            }
        }
    }

    // The SLO headline: best policy p999 vs baseline, per shape, at
    // the largest tenant count.
    std::printf("\np999 vs baseline (t=%u):\n",
                kTenantCounts[kNumTenantCounts - 1]);
    for (unsigned s = 0; s < kNumShapes; ++s) {
        const std::uint64_t base =
            cells[0][kNumTenantCounts - 1][s].request.p999;
        for (unsigned p = 1; p < kNumPolicies; ++p) {
            const std::uint64_t got =
                cells[p][kNumTenantCounts - 1][s].request.p999;
            std::printf("  %-4s %-12s %8llu us vs %llu us (%+.1f%%)\n",
                        kShapes[s].label,
                        hw::shootdownPolicyName(kPolicies[p]),
                        static_cast<unsigned long long>(got),
                        static_cast<unsigned long long>(base),
                        base != 0 ? 100.0 *
                                        (static_cast<double>(got) -
                                         static_cast<double>(base)) /
                                        static_cast<double>(base)
                                  : 0.0);
        }
    }

    writeJson(cells, scale);
    std::printf("\nwrote BENCH_serving.json\n");

    if (!all_clean) {
        std::printf("TLB consistency audit: VIOLATIONS\n");
        return 1;
    }
    return 0;
}
