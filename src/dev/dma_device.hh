/**
 * @file
 * DMA-capable device with an IOMMU-translated IOTLB.
 *
 * The paper's consistency problem is not CPU-specific: any agent that
 * caches translations must be kept coherent with the pmap module.
 * This model adds the other common translation cache -- a device-side
 * IOTLB fed by an IOMMU page-table walker -- and makes it a
 * first-class responder in the Section 4 shootdown protocol (see
 * pmap/responder.hh).
 *
 * The device issues DMA reads and writes against a user address space
 * through its IOTLB:
 *
 *   - An IOTLB hit costs iotlb_lookup_cost and resolves immediately.
 *   - A miss invokes the IOMMU walker, which behaves like a
 *     software-reload TLB: it stalls while the target pmap is locked
 *     (so it can never re-cache a PTE mid-update), then walks the
 *     two-level table, updates the referenced (and, for writes,
 *     modified) bit interlocked at the walk instant, and fills the
 *     IOTLB. Because the walker is interlocked and stalls on the
 *     lock, devices never require the responder stall phase -- like
 *     Section 9's software-reload option.
 *
 * The device-specific wrinkle: a DMA *write* occupies the wire for
 * dev_transfer_cost and commits through the translation it consumed
 * at start. A revoke arriving mid-transfer cannot simply invalidate
 * the IOTLB entry -- the transfer would still land through the stale
 * mapping. requestDrain() bounds the conflict: the transfer either
 * completes or aborts within dev_drain_bound, and the initiator spins
 * until the wire is quiet (inFlight() false) before making its pmap
 * changes. An aborted transfer never commits its write.
 *
 * The in-flight window spans the WHOLE operation, translation
 * included, for reads as well as writes. The walk consumes the PTE at
 * its start instant but charges its latency afterwards; if the
 * operation only became visible once the transfer began, a revoke
 * landing inside that latency window would see an idle device, queue
 * its action, and complete -- and the operation would then consume
 * memory through the just-revoked translation. A drain request that
 * arrives during the translation phase instead aborts the operation
 * before anything lands (the model checker's dev-dma-race exploration
 * is what caught the narrower window).
 *
 * Consistency actions queued at the device (by the initiator, via the
 * shared CpuShootState machinery) are drained at every operation
 * boundary: the drain applies all queued invalidations at one
 * simulated instant and then sleeps the accumulated cost, which makes
 * it atomic against the initiator's time-advancing critical sections
 * without taking the action lock. An idle device may sit on queued
 * actions indefinitely -- exactly like an idle processor -- because
 * it performs no translations until the next drain.
 *
 * MachineConfig::chk_skip_iotlb_invalidate plants the checker's
 * device bug here: the drain clears the action-needed flag and
 * charges full cost but skips the invalidations, leaving stale IOTLB
 * entries the stale-translation oracle must catch.
 */

#ifndef MACH_DEV_DMA_DEVICE_HH
#define MACH_DEV_DMA_DEVICE_HH

#include <cstdint>
#include <string>

#include "base/types.hh"
#include "hw/tlb.hh"
#include "pmap/responder.hh"

namespace mach::kern
{
class Machine;
} // namespace mach::kern

namespace mach::pmap
{
class Pmap;
class PmapSystem;
} // namespace mach::pmap

namespace mach::dev
{

/** A deterministic DMA access pattern driven by the device fiber. */
struct DmaStream
{
    /** Address space the device DMAs against. */
    pmap::Pmap *pmap = nullptr;
    /** Page receiving one DMA write per beat. */
    Vpn target = 0;
    /** First of @p decoys pages swept with DMA reads each beat. */
    Vpn decoy_base = 0;
    /**
     * Pages read per beat after the target write. Sized past the
     * IOTLB capacity this evicts the target's entry between beats,
     * forcing a fresh IOMMU walk (and a fresh revocation race) every
     * beat.
     */
    unsigned decoys = 0;
    /** Idle time between beats. */
    Tick gap = 0;
    /** Number of beats; 0 = run until stop(). */
    std::uint64_t beats = 0;
};

/** One DMA-capable device; implements the shootdown responder role. */
class DmaDevice : public pmap::TlbResponder
{
  public:
    /**
     * Device @p index (0-based) gets responder id ncpus + index and
     * sits on node MachineConfig::nodeOfDevice(index). Construct
     * after the PmapSystem; the creator must call
     * ShootdownController::registerResponder(this) before the first
     * DMA operation.
     */
    DmaDevice(kern::Machine &machine, pmap::PmapSystem &pmaps,
              unsigned index);

    // ---- TlbResponder -------------------------------------------------

    CpuId id() const override { return id_; }
    unsigned node() const override { return node_; }
    hw::Tlb &tlb() override { return iotlb_; }
    const hw::Tlb &tlb() const override { return iotlb_; }
    bool inFlight() const override { return in_flight_; }
    void requestDrain() override;
    std::string describe() const override;

    unsigned index() const { return index_; }

    // ---- DMA operations (fiber context: they consume simulated
    // time, so call only from a fiber -- a device stream, a kernel
    // thread acting as the device driver, or a test fiber) -----------

    /**
     * One DMA read of page @p vpn. Returns false on a translation
     * fault (no mapping, or insufficient protection) or when a
     * concurrent revocation's drain request aborted the operation.
     */
    bool dmaRead(pmap::Pmap &pmap, Vpn vpn);

    /**
     * One DMA write of @p value into @p vpn at byte @p offset. The
     * transfer occupies the wire for dev_transfer_cost; a concurrent
     * requestDrain() may abort it (nothing is written). Returns true
     * only when the write committed.
     */
    bool dmaWrite(pmap::Pmap &pmap, Vpn vpn, unsigned offset,
                  std::uint32_t value);

    /** Enroll in @p pmap's in-use set (before the first operation). */
    void attachTo(pmap::Pmap &pmap);

    /**
     * Leave @p pmap's in-use set: drain queued actions, flush the
     * space from the IOTLB, then clear the in-use bit -- so no stale
     * state dangles once initiators stop queueing at this device.
     * Fiber context (the drain sleeps).
     */
    void detachFrom(pmap::Pmap &pmap);

    // ---- Streaming ----------------------------------------------------

    /**
     * Spawn the device fiber running @p stream (attaches to its pmap
     * first). One stream at a time.
     */
    void startStream(const DmaStream &stream);

    /** Ask a running stream to wind down at its next beat boundary. */
    void stop() { stop_ = true; }

    bool streaming() const { return streaming_; }

    /** Beats completed so far (scenario predicates key off this). */
    std::uint64_t beat() const { return beat_; }

    // ---- Statistics ---------------------------------------------------

    std::uint64_t dma_reads = 0;
    std::uint64_t dma_writes = 0;
    /** Writes whose transfer completed and landed in memory. */
    std::uint64_t writes_committed = 0;
    /** Operations aborted by a drain request before completion. */
    std::uint64_t dma_aborts = 0;
    /** Operations dropped on a translation fault. */
    std::uint64_t dma_faults = 0;
    /** IOMMU page-table walks performed (IOTLB misses). */
    std::uint64_t iommu_walks = 0;
    /** Action-queue drain passes. */
    std::uint64_t drains = 0;

  private:
    /**
     * Apply all queued consistency actions at the current instant,
     * then sleep the accumulated invalidation cost. No-op when the
     * action-needed flag is clear.
     */
    void drainPending();

    /** translate() outcome. */
    enum class Xlate
    {
        Ok,
        /** Invalid PTE or insufficient rights; a fault was counted. */
        Fault,
        /**
         * A drain request arrived mid-translation (the initiator may
         * be spinning on inFlight() while holding the pmap lock the
         * walker stalls on, so the walker must yield, not wait).
         */
        Aborted,
    };

    /**
     * Resolve @p vpn for @p write access: IOTLB probe, then the IOMMU
     * walk on a miss.
     */
    Xlate translate(pmap::Pmap &pmap, Vpn vpn, bool write, Pfn *pfn);

    /** The stream fiber body. */
    void streamBody();

    kern::Machine &machine_;
    pmap::PmapSystem &pmaps_;
    unsigned index_;
    CpuId id_;
    unsigned node_;
    hw::Tlb iotlb_;

    // In-flight transfer state (see file comment). The transfer is
    // modelled as a quantum-paced sleep toward deadline_; a drain
    // request pulls the deadline in, so the wire is quiet within
    // dev_drain_bound (+ one polling quantum) of the request.
    bool in_flight_ = false;
    bool drain_requested_ = false;
    Tick transfer_end_ = 0;
    Tick deadline_ = 0;

    // Stream state.
    DmaStream stream_;
    bool streaming_ = false;
    bool stop_ = false;
    std::uint64_t beat_ = 0;
};

} // namespace mach::dev

#endif // MACH_DEV_DMA_DEVICE_HH
