/**
 * @file
 * The "Parthenon" evaluation application: a parallel theorem prover
 * running 15-way parallel (Section 5.2).
 *
 * Worker threads remove work from a central workpile and add new work
 * as it is generated; memory is allocated as needed to hold the
 * intermediate results of the proof search and never deallocated
 * mid-run. The interesting VM behaviour is thread startup: the cthread
 * library allocates a large aligned stack region, reserves the first
 * page for private data, and reprotects the second page to no-access
 * to catch stack overflows. With lazy evaluation that reprotect is
 * free (the guard page has never been touched); without it, every
 * thread start after the first shoots the user pmap (the 70 user
 * events of Table 1, ~4/5 ms added to thread startup).
 */

#ifndef MACH_APPS_PARTHENON_HH
#define MACH_APPS_PARTHENON_HH

#include "apps/workload.hh"
#include "base/rng.hh"

namespace mach::apps
{

/** Parallel theorem prover model. */
class Parthenon : public Workload
{
  public:
    struct Params
    {
        /** Worker threads per run. */
        unsigned workers = 15;
        /** Successive runs (the paper ran it five times). */
        unsigned runs = 5;
        /** Initial workpile items per run. */
        unsigned seed_items = 22;
        /** Expansion depth of each seed item. */
        unsigned depth = 3;
        std::uint64_t seed = 0x9a27e7;
    };

    explicit Parthenon(Params params) : params_(params) {}

    std::string name() const override { return "parthenon"; }

    void run(vm::Kernel &kernel, kern::Thread &driver) override;

    /** Time spent inside thread startup, for the Section 7.2 claim. */
    Tick thread_startup_total = 0;
    std::uint64_t items_processed = 0;

  private:
    Params params_;
};

} // namespace mach::apps

#endif // MACH_APPS_PARTHENON_HH
