/**
 * @file
 * Demonstrates the Section 9 hardware-support options: the same
 * workload under seven TLB/interrupt designs, showing where the
 * initiator and responder costs go.
 *
 *   ./build/examples/hardware_options
 */

#include <cstdio>

#include "apps/consistency_tester.hh"
#include "pmap/shootdown.hh"
#include "vm/kernel.hh"

using namespace mach;

namespace
{

void
runOption(const char *label, hw::MachineConfig config)
{
    config.seed = 0x0b71085;
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester({.children = 10, .warmup = 25 * kMsec});
    const apps::WorkloadResult result = tester.execute(kernel);

    const auto &user = result.analysis.user_initiator;
    const auto &resp = result.analysis.responder;
    std::printf("%-24s init %6.0f us | responder %5.0f us x%-3llu | "
                "IPIs %2llu | consistent %s\n",
                label, user.time_usec.mean(),
                resp.events ? resp.time_usec.mean() : 0.0,
                static_cast<unsigned long long>(resp.events),
                static_cast<unsigned long long>(
                    kernel.pmaps().shoot().interrupts_sent),
                tester.consistent() ? "yes" : "NO!");
}

} // namespace

int
main()
{
    setLogQuiet(true);
    std::printf("Section 9 hardware options, 10-processor shootdown "
                "on a 16-CPU machine\n\n");

    runOption("baseline (Multimax)", {});

    hw::MachineConfig multicast;
    multicast.multicast_ipi = true;
    runOption("multicast IPI", multicast);

    hw::MachineConfig broadcast;
    broadcast.broadcast_ipi = true;
    runOption("broadcast IPI", broadcast);

    hw::MachineConfig swreload;
    swreload.tlb_software_reload = true;
    runOption("software-reload TLB", swreload);

    hw::MachineConfig nowb;
    nowb.tlb_no_refmod_writeback = true;
    runOption("no ref/mod writeback", nowb);

    hw::MachineConfig remote;
    remote.tlb_remote_invalidate = true;
    remote.tlb_no_refmod_writeback = true;
    runOption("remote invalidation", remote);

    hw::MachineConfig hipri;
    hipri.high_priority_ipi = true;
    runOption("high-priority sw intr", hipri);

    std::printf("\nreading the table: multicast/broadcast flatten the "
                "send loop; software reload and\nno-writeback TLBs "
                "let responders return without stalling; remote "
                "invalidation\nremoves interrupts and responders "
                "entirely (MC88200-style).\n");
    return 0;
}
