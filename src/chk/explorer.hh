/**
 * @file
 * Schedule exploration for the shootdown model checker.
 *
 * The simulator is deterministic: a machine seed plus a perturbation
 * list (base/perturb.hh) completely names one interleaving. The
 * explorer exploits that to model-check the shootdown algorithm the
 * way a stateless concurrency checker would:
 *
 *  1. run a scenario's unperturbed baseline and measure its event and
 *     bus-access counts (the perturbation index space);
 *  2. sweep that space with bounded-systematic single-delay probes
 *     (every stride-th event stretched by one of a ladder of deltas,
 *     realizing the same reorderings a swap-window DPOR pass would)
 *     and with randomized multi-delay probes;
 *  3. after every trial, judge three properties: bounded liveness
 *     (the workload finished inside bound + injected delay), the
 *     scenario's safety predicate (no write through a revoked
 *     mapping), and the stale-translation oracle (chk/oracle.hh);
 *  4. on failure, minimize the perturbation list to a 1-minimal,
 *     delta-shrunk reproducer whose format() string replays byte-for-
 *     byte under `machsim --schedule`.
 *
 * Every trial is a fresh vm::Kernel with the scenario's fixed config
 * seed, so exploration itself is fully deterministic: the same
 * ExploreOptions always visit the same schedules and report the same
 * first failure.
 */

#ifndef MACH_CHK_EXPLORER_HH
#define MACH_CHK_EXPLORER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/perturb.hh"
#include "base/types.hh"
#include "chk/scenario.hh"
#include "farm/farm.hh"

namespace mach::chk
{

class Corpus;

/** Everything observed about one perturbed run of a scenario. */
struct TrialResult
{
    /** Workload finished within bound + injected delay (liveness). */
    bool completed = false;
    /** Scenario safety predicate held. */
    bool predicate_ok = true;
    /** Scenario coverage fired (baseline runs only). */
    bool coverage_ok = true;
    /** Oracle violation reports (capped; count below is exact). */
    std::vector<std::string> violations;
    std::uint64_t violation_count = 0;
    std::uint64_t events_fired = 0;
    std::uint64_t bus_accesses = 0;
    Tick end_time = 0;
    /** Replay fingerprint over end state and protocol counters. */
    std::uint64_t digest = 0;
    /** First predicate/coverage failure note from the workload. */
    std::string note;
    /**
     * Per-quiescent-window interleaving signatures (the coverage
     * signal; obs/signature.hh). Only filled by signed trials --
     * runTrialSigned() or runTrials(..., with_signatures=true); a
     * plain runTrial() leaves it empty. Signed and unsigned trials of
     * the same (scenario, schedule) pair agree on every other field,
     * digest included: recording is timing-neutral.
     */
    std::vector<std::uint64_t> signatures;

    /** A safety or liveness failure (coverage is judged separately). */
    bool
    failed() const
    {
        return !completed || !predicate_ok || violation_count != 0;
    }
};

/** Knobs for one exploration campaign. */
struct ExploreOptions
{
    /** Systematic single-delay probes (stride sweep x delta ladder). */
    unsigned systematic_budget = 60;
    /** Randomized multi-delay probes after the sweep. */
    unsigned random_budget = 140;
    /** Max delay directives per random probe. */
    unsigned max_delays = 3;
    Tick min_extra = 20 * kUsec;
    Tick max_extra = 2 * kMsec;
    /** Seed for the probe generator (not the machine). */
    std::uint64_t seed = 0xC0FFEEull;
    /** Trial budget for minimizing a found failure. */
    unsigned minimize_budget = 120;
    /** Stop the campaign at the first failing schedule. */
    bool stop_at_first = true;
    /** Fail the campaign when baseline coverage did not fire. */
    bool check_coverage = true;
    /**
     * Probe index window, as fractions of the baseline index space:
     * systematic and random probes only target event sequences and
     * bus accesses in [sweep_lo, sweep_hi] x baseline count. The
     * default sweeps the whole run. Narrowing to a late window
     * focuses the campaign past a warmup prefix -- which the run
     * farm then simulates once, snapshots, and shares across every
     * probe in a wave instead of replaying it from tick 0.
     */
    double sweep_lo = 0.0;
    double sweep_hi = 1.0;
    /**
     * Coverage-guided mode: every probe trial runs signed, its
     * interleaving signatures feed the campaign's Corpus, and the
     * random phase mutates coverage-novel corpus entries (directive
     * splice, delta scale, seq shift) instead of sampling blind.
     * random_budget then counts *generated* mutation probes;
     * duplicates skipped by the dedup set consume budget without
     * running a trial.
     */
    bool coverage_guided = false;
    /**
     * The campaign's corpus: signature bucket map, tried-schedule
     * dedup, and (when the corpus has a directory) persistence.
     * Optional in coverage mode -- a private in-memory corpus is used
     * when null. In blind mode a non-null corpus still provides the
     * dedup set for satellite accounting (duplicate_probes_skipped).
     */
    Corpus *corpus = nullptr;
};

/** Bounds for exploreExhaustive(): every delay placement in a
 *  K-event window around one event sequence number (e.g. a sync
 *  point seen in a corpus entry or a minimized schedule). */
struct ExhaustiveWindow
{
    /** Window center, an e<seq> index of the baseline run. */
    std::uint64_t center = 0;
    /** Half-width K: the window is [center-K, center+K]. */
    std::uint64_t halfwidth = 8;
    /** 1 = singles only; 2 adds every ordered pair of placements. */
    unsigned max_delays = 2;
    /** Cap on enumerated probes (0 = the full enumeration). */
    unsigned budget = 0;
    bool stop_at_first = true;
    unsigned minimize_budget = 120;
};

/** Outcome of an exploration campaign. */
struct ExploreResult
{
    unsigned trials = 0;
    unsigned failures = 0;
    /** Baseline itself failed (or missed coverage): no exploration. */
    bool baseline_failed = false;
    TrialResult baseline;
    /** First failing schedule, when failures != 0. */
    SchedulePerturber first_failing;
    TrialResult first_failure;
    /** Minimized reproducer and its `--schedule` string. */
    SchedulePerturber minimized;
    std::string minimized_schedule;
    TrialResult minimized_result;
    /** Probes skipped because their exact directive set was already
     *  tried (this campaign or, via a persistent corpus, an earlier
     *  one). Zero unless a dedup set is in play. */
    unsigned duplicate_probes_skipped = 0;
    /** Trials whose signatures added >= 1 new coverage bucket. */
    unsigned coverage_novel = 0;
    /**
     * Flight-recorder timeline of the minimized reproducer's replay
     * (Chrome Trace Event JSON), captured so every found failure ships
     * with an openable timeline; empty when nothing failed.
     */
    std::string flight_trace_json;

    bool
    foundFailure() const
    {
        return baseline_failed || failures != 0;
    }
};

/** Drives trials, campaigns, and failure minimization. */
class Explorer
{
  public:
    using Log = std::function<void(const std::string &)>;

    explicit Explorer(Log log = nullptr, farm::FarmOptions farm = {})
        : log_(std::move(log)), farm_(farm)
    {
    }

    /** How this explorer farms out probe batches. */
    const farm::FarmOptions &farm() const { return farm_; }

    /**
     * One run of @p scenario under @p perturber on a fresh kernel.
     * Deterministic: equal (scenario, perturbation) pairs produce
     * equal TrialResults, digest included.
     */
    TrialResult runTrial(const Scenario &scenario,
                         const SchedulePerturber &perturber) const;

    /**
     * runTrial() with the machine's timeline recorder enabled; the
     * run's Chrome Trace Event JSON lands in @p trace_json (when
     * non-null). @p ring_capacity 0 records everything; otherwise only
     * the most recent events survive (flight-recorder mode). The
     * TrialResult -- digest included -- is identical to an unrecorded
     * runTrial() of the same pair, because recording charges no
     * simulated time unless the scenario config sets obs_record_cost.
     */
    TrialResult runTrialRecorded(const Scenario &scenario,
                                 const SchedulePerturber &perturber,
                                 std::string *trace_json,
                                 std::size_t ring_capacity = 0) const;

    /**
     * runTrial() with the interleaving-signature coverage signal
     * captured into TrialResult::signatures. Every other field --
     * digest included -- is identical to the unsigned trial of the
     * same pair (recording charges no simulated time).
     */
    TrialResult runTrialSigned(const Scenario &scenario,
                               const SchedulePerturber &perturber) const;

    /**
     * Run one trial per perturbation in @p probes and return their
     * results in probe order. Semantically identical to calling
     * runTrial() in a loop -- same TrialResults, digests included --
     * but farmed: with farm().jobs > 1 the probes run on that many
     * worker threads, and with farm().snapshots (where fork() is
     * available) the batch's shared unperturbed prefix -- everything
     * before the earliest perturbed index -- is simulated once,
     * parked, and fork-cloned per probe instead of re-run. Probes
     * whose snapshot is unusable silently fall back to full runs.
     * @p with_signatures runs every trial signed (the snapshot path
     * records the shared prefix once, so children inherit it).
     */
    std::vector<TrialResult>
    runTrials(const Scenario &scenario,
              const std::vector<SchedulePerturber> &probes,
              bool with_signatures = false) const;

    /** Full campaign: baseline, sweep, random probes, minimization. */
    ExploreResult explore(const Scenario &scenario,
                          const ExploreOptions &opt = {});

    /**
     * Exhaustive small-window mode: enumerate *every* delay placement
     * (the systematic delta ladder) for every event sequence in the
     * window, singles first, then ordered pairs when
     * window.max_delays >= 2 -- a bounded, complete enumeration
     * around one sync point, where the randomized modes only sample.
     * Accounting is as-if-serial like explore()'s, and a found
     * failure is minimized the same way.
     */
    ExploreResult exploreExhaustive(const Scenario &scenario,
                                    const ExhaustiveWindow &window);

    /**
     * Shrink a failing perturbation to a 1-minimal list (no single
     * directive can be dropped) with halving-minimized deltas. The
     * input must fail; the result is always a known-failing schedule.
     */
    SchedulePerturber minimize(const Scenario &scenario,
                               const SchedulePerturber &failing,
                               unsigned budget) const;

  private:
    void say(const std::string &msg) const
    {
        if (log_)
            log_(msg);
    }

    Log log_;
    farm::FarmOptions farm_;
};

} // namespace mach::chk

#endif // MACH_CHK_EXPLORER_HH
