/**
 * @file
 * The production serving tier: a multi-tenant request-serving workload
 * with per-request SLO attribution.
 *
 * The 1989 paper measured four batch applications and reported mean
 * shootdown costs; a production serving system cares about the tail --
 * the p99.9 request stalled behind somebody else's cross-node
 * shootdown. This workload generates the millions-of-users *shape* at
 * simulation scale, in the Virtuoso spirit of imitating OS
 * memory-management behaviour without modelling every instruction:
 *
 *  - N short-lived tenant address spaces, forked from a shared "exec
 *    server" image and destroyed after a burst of requests
 *    (fork/exec/exit churn; fork's COW write-revocations are
 *    shootdowns against the parent);
 *  - one shared read-mostly "binary" region, inherited Share by every
 *    tenant (the sharing-degree knob);
 *  - per-request mmap/munmap bursts (the munmap is a user shootdown
 *    against the tenant's sibling threads on other processors) and
 *    kernel log-buffer churn (kernel shootdowns);
 *  - a Zipf-distributed request-class mix: class k costs ~(k+1)x the
 *    base work but occurs with probability proportional to
 *    1/(k+1)^s.
 *
 * Every request runs under an obs::RequestSlot, so its latency is
 * decomposed into compute / fault / walk / ipi-post / responder-wait /
 * drain components (see obs/request.hh); totals are accumulated on
 * the workload for the attribution tests and recorded into
 * obs::Metrics histograms (serve.request_us + per-component) when the
 * recorder is enabled.
 */

#ifndef MACH_APPS_SERVING_HH
#define MACH_APPS_SERVING_HH

#include <array>

#include "apps/workload.hh"
#include "base/rng.hh"
#include "obs/request.hh"

namespace mach::apps
{

/** Multi-tenant request-serving workload generator. */
class Serving : public Workload
{
  public:
    struct Params
    {
        /** Tenant address spaces created over the run (the churn). */
        unsigned tenants = 24;
        /** Live tenants at any instant (the fork/exit pipeline depth). */
        unsigned concurrency = 8;
        /** Threads per tenant: 1 server + N-1 siblings keeping the
         *  space in use on other processors. */
        unsigned threads_per_tenant = 2;
        /** Requests each tenant serves before exiting. */
        unsigned requests_per_tenant = 6;
        /** Request classes; class k costs ~(k+1)x the base work. */
        unsigned request_classes = 4;
        /** Zipf skew s: class k has weight 1/(k+1)^s. */
        double zipf_s = 1.2;
        /** Hot per-tenant working set (pages). */
        unsigned ws_pages = 16;
        /** Shared read-mostly binary region (pages). */
        unsigned binary_pages = 64;
        /** Pages mapped (and unmapped) per request. */
        unsigned mmap_pages = 4;
        /** Work items per request for class 0. */
        unsigned work_items = 12;
        /** Mean compute per work item (usec). */
        double compute_usec = 400.0;
        /** Fraction of accesses that touch a never-touched page. */
        double fault_mix = 0.35;
        /** Fraction of accesses that read the shared binary. */
        double sharing = 0.3;
        /** Chance a request cycles a kernel log buffer (kmem churn). */
        double kmem_chance = 0.25;
        std::uint64_t seed = 0x5e12e;
    };

    explicit Serving(Params params) : params_(params) {}

    std::string name() const override { return "serving"; }

    void run(vm::Kernel &kernel, kern::Thread &driver) override;

    // ---- Aggregates (for the attribution + SLO tests) ----------------

    /** Requests completed across all tenants. */
    std::uint64_t requests_completed = 0;
    /** Sum of end-to-end request latencies (ticks). */
    Tick request_ticks = 0;
    /** Sum of per-component attributed time, indexed by
     *  obs::ReqComponent; sums to request_ticks by construction. */
    std::array<Tick, obs::kReqComponents> component_ticks{};

  private:
    void serve(vm::Kernel &kernel, kern::Thread &self, unsigned tenant,
               VAddr binary);
    void sibling(vm::Kernel &kernel, kern::Thread &self,
                 unsigned tenant, unsigned index, VAddr binary,
                 const bool *stop);

    Params params_;
};

} // namespace mach::apps

#endif // MACH_APPS_SERVING_HH
