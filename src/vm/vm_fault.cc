/**
 * @file
 * Page-fault resolution and the pageout daemon.
 *
 * The fault handler is where pmaps get lazily populated: the VM system
 * never calls pmap::enter anywhere else, so a pmap reflects exactly the
 * pages a task has touched -- the property the shootdown algorithm's
 * lazy-evaluation check exploits (Section 4).
 */

#include <algorithm>

#include "base/logging.hh"
#include "base/trace.hh"
#include "obs/recorder.hh"
#include "obs/request.hh"
#include "vm/kernel.hh"

namespace mach::vm
{

namespace
{

/**
 * Track for spans that must follow @p thread across migrations (faults
 * sleep on pageins and can resume on another CPU): one lazily-created
 * per-thread track, named after the thread.
 */
obs::TrackId
threadTrack(obs::Recorder &rec, kern::Thread &thread)
{
    if (thread.obs_track_id == obs::kNoTrack)
        thread.obs_track_id =
            rec.defineTrack("thread:" + thread.name());
    return thread.obs_track_id;
}

} // namespace

bool
Kernel::resolveSpace(kern::Thread &thread, VAddr va, VmMap **map,
                     pmap::Pmap **pmap)
{
    if (va >= kern::Machine::kKernelBase) {
        *map = &kernel_map_;
        *pmap = &pmap_sys_->kernelPmap();
        return true;
    }
    Task *task = thread.task();
    if (task == nullptr)
        return false;
    *map = &task->map();
    *pmap = &task->pmap();
    return true;
}

bool
Kernel::handleFault(kern::Thread &thread, VAddr va, Prot want)
{
    VmMap *map = nullptr;
    pmap::Pmap *pmap = nullptr;
    if (!resolveSpace(thread, va, &map, &pmap)) {
        ++faults_failed;
        return false;
    }

    obs::Recorder &rec = machine_->recorder();
    obs::SpanGuard fault_span(
        rec, rec.enabled() ? threadTrack(rec, thread) : 0, "vm.fault",
        "vm", "vm.fault_us", obs::Arg{"va", va});
    obs::ReqScope fault_scope(rec, thread.obs_request,
                              obs::ReqComponent::Fault);

    thread.cpu().advance(machine_->cfg().fault_base_cost);

    // Kernel (trap) entry runs a short stretch with interrupts masked;
    // these leaf critical sections never initiate shootdowns, so they
    // can safely mask the shootdown IPI -- and on baseline hardware
    // they are part of why kernel shootdowns are slower and more
    // skewed than user ones (Section 8).
    kernelSection(thread,
                  40 * kUsec +
                      Tick(machine_->rng().exponential(60.0) * kUsec));

    map->lock().lockRead(thread);
    const bool ok = faultLocked(thread, *map, *pmap, va, want);
    map->lock().unlockRead(thread);

    if (ok)
        ++faults_resolved;
    else
        ++faults_failed;
    MACH_TRACE_LOG(Vm, machine_->now(),
                   "cpu%u %s fault at 0x%08x (%s) -> %s",
                   thread.cpu().id(),
                   protAllows(want, ProtWrite) ? "write" : "read", va,
                   map->name().c_str(), ok ? "resolved" : "FAILED");
    return ok;
}

Pfn
Kernel::allocPlacedFrame(kern::Thread &thread, std::uint32_t key)
{
    if (machine_->numaNodes() < 2)
        return machine_->mem().allocFrame();
    unsigned node = thread.cpu().node(); // First-touch (and Migrate).
    if (machine_->cfg().numa_placement ==
        hw::PlacementPolicy::Interleave) {
        node = key % machine_->numaNodes();
    }
    return machine_->mem().allocFrame(node);
}

void
Kernel::migratePage(kern::Thread &thread, VmPage &page,
                    unsigned to_node)
{
    const hw::MachineConfig &cfg = machine_->cfg();
    // The pageout steal, aimed at another node instead of the disk:
    // mark the page busy, shoot every mapping of the old frame out of
    // every TLB, copy, then swap the frame under the page.
    page.busy = true;
    const Pfn old = page.pfn;
    pmap::Pmap::pageProtect(*pmap_sys_, thread, old, ProtNone);
    const Pfn fresh = machine_->mem().allocFrame(to_node);
    machine_->mem().copyFrame(fresh, old);
    kernelSection(thread, cfg.page_copy_cost);
    page.pfn = fresh;
    page.remote_faults = 0;
    machine_->mem().freeFrame(old);
    page.busy = false;
    ++page_migrations;

    obs::Recorder &rec = machine_->recorder();
    if (rec.enabled()) {
        rec.instant(rec.cpuTrack(thread.cpu().id()), "vm.migrate",
                    "vm", obs::Arg{"pfn", fresh},
                    obs::Arg{"to_node", to_node});
    }
    MACH_TRACE_LOG(Vm, machine_->now(),
                   "cpu%u migrates pfn %u -> %u (node %u)",
                   thread.cpu().id(), old, fresh, to_node);
}

void
Kernel::notePlacement(kern::Thread &thread, VmPage &page)
{
    if (machine_->numaNodes() < 2)
        return;
    const unsigned here = thread.cpu().node();
    if (machine_->mem().nodeOfPfn(page.pfn) == here) {
        ++local_faults;
        return;
    }
    ++remote_faults;
    if (machine_->cfg().numa_placement ==
            hw::PlacementPolicy::Migrate &&
        !page.wired && !page.busy &&
        ++page.remote_faults >= machine_->cfg().numa_migrate_threshold) {
        migratePage(thread, page, here);
    }
}

bool
Kernel::faultLocked(kern::Thread &thread, VmMap &map, pmap::Pmap &pmap,
                    VAddr va, Prot want)
{
    const hw::MachineConfig &cfg = machine_->cfg();
    const bool write = protAllows(want, ProtWrite);

    for (int tries = 0; tries < 64; ++tries) {
        VmMapEntry *entry = map.lookup(va);
        if (entry == nullptr || !protAllows(entry->cur_prot, want))
            return false; // Unrecoverable: no mapping or no rights.

        const std::uint32_t entry_page =
            (va - entry->start) >> kPageShift;
        std::uint32_t offset = entry->offset + entry_page;
        PageLookup found = entry->object->lookupChain(offset);

        if (found.page != nullptr && found.page->busy) {
            // Pageout in transit: wait for it to complete, then retry.
            map.lock().unlockRead(thread);
            thread.sleep(5 * kMsec);
            map.lock().lockRead(thread);
            continue;
        }

        // Pending copy-on-write: interpose a shadow object before a
        // write, or before instantiating a fresh page (a fresh page in
        // the shared backing object would leak into the other map).
        if (entry->needs_copy && (write || found.page == nullptr)) {
            entry->object = VmObject::makeShadow(
                entry->object, entry->offset, entry->sizePages());
            entry->offset = 0;
            entry->needs_copy = false;
            thread.cpu().advance(40 * kUsec);
            offset = entry_page;
            found = entry->object->lookupChain(offset);
        }

        VmObject *top = entry->object.get();
        Prot grant = entry->cur_prot;
        VmPage *page = nullptr;

        if (found.page != nullptr) {
            thread.cpu().advance(30 * kUsec + found.depth * 15 * kUsec);
            if (found.depth == 0) {
                page = found.page;
                if (entry->needs_copy) {
                    // Read fault through a pending copy: share the page
                    // read-only so a later write still faults.
                    grant = ProtRead;
                }
            } else if (write) {
                // Copy-on-write resolution: pull a private copy up into
                // the top object.
                const Pfn copy = allocPlacedFrame(thread, offset);
                machine_->mem().copyFrame(copy, found.page->pfn);
                // The page copy runs at splvm (interrupts masked).
                kernelSection(thread, cfg.page_copy_cost);
                if (top->lookupLocal(offset) != nullptr) {
                    // A concurrent fault on another processor resolved
                    // this page while we copied; use its result.
                    machine_->mem().freeFrame(copy);
                    continue;
                }
                page = top->insertPage(offset, copy);
                pageable_.push_back({entry->object, offset});
                ++cow_copies;
            } else {
                // Read through the chain: map the backing page with
                // write access withheld so the first write copies.
                page = found.page;
                grant = ProtRead;
            }
        } else {
            // Absent everywhere: pagein from backing store or zero-fill.
            ObjectPtr bottom = entry->object;
            std::uint32_t bottom_offset = offset;
            while (bottom->shadowRef() != nullptr) {
                bottom_offset += bottom->shadowOffset();
                bottom = bottom->shadowRef();
            }
            if (pager_->contains(bottom->id(), bottom_offset)) {
                // Pagein: drop the map lock across the I/O.
                map.lock().unlockRead(thread);
                thread.sleep(cfg.pagein_latency);
                map.lock().lockRead(thread);
                // Revalidate: the world may have changed while asleep.
                if (pager_->contains(bottom->id(), bottom_offset) &&
                    bottom->lookupLocal(bottom_offset) == nullptr) {
                    const Pfn frame =
                        allocPlacedFrame(thread, bottom_offset);
                    pager_->pageIn(bottom->id(), bottom_offset, frame);
                    bottom->insertPage(bottom_offset, frame);
                    pageable_.push_back({bottom, bottom_offset});
                }
                continue; // Retry the whole lookup.
            }

            const Pfn frame = allocPlacedFrame(thread, offset);
            // Zero-filling runs at splvm (interrupts masked).
            kernelSection(thread, cfg.zero_fill_cost);
            if (top->lookupLocal(offset) != nullptr) {
                // Lost a race with a concurrent zero-fill fault.
                machine_->mem().freeFrame(frame);
                continue;
            }
            page = top->insertPage(offset, frame);
            ++zero_fills;
            if (&map == &kernel_map_) {
                // Kernel memory is wired: the pageout daemon must never
                // steal it.
                page->wired = true;
            } else {
                pageable_.push_back({entry->object, offset});
            }
        }

        notePlacement(thread, *page);
        pmap.enter(thread, vaToVpn(va), page->pfn, grant);
        return true;
    }
    panic("vm_fault: page stayed busy/absent at va 0x%08x", va);
}

// ---------------------------------------------------------------------
// Pageout
// ---------------------------------------------------------------------

void
Kernel::enablePageout()
{
    if (pageout_enabled_)
        return;
    pageout_enabled_ = true;
    spawnThread(nullptr, "pageout",
                [this](kern::Thread &self) { pageoutDaemon(self); });
}

void
Kernel::pageoutDaemon(kern::Thread &self)
{
    const hw::MachineConfig &cfg = machine_->cfg();
    for (;;) {
        if (machine_->mem().freeFrames() >= cfg.pageout_low_frames ||
            pageable_.empty()) {
            self.sleep(50 * kMsec);
            continue;
        }

        PageRef ref = pageable_.front();
        pageable_.pop_front();
        ObjectPtr object = ref.object.lock();
        if (object == nullptr)
            continue; // Object died; nothing to steal.
        VmPage *page = object->lookupLocal(ref.offset);
        if (page == nullptr || page->wired || page->busy)
            continue;

        // Steal the page: mark it busy, invalidate every mapping of
        // the frame (a shootdown source -- "even basic virtual memory
        // management functions such as pagein and pageout will not work
        // correctly unless the TLBs of all CPUs have the same image of
        // the current state of a physical page", Section 1), then write
        // it to backing store and free the frame.
        page->busy = true;
        const Pfn pfn = page->pfn;
        pmap::Pmap::pageProtect(*pmap_sys_, self, pfn, ProtNone);
        pager_->pageOut(object->id(), ref.offset, pfn);
        self.sleep(cfg.pageout_latency);
        object->removePage(ref.offset);
        machine_->mem().freeFrame(pfn);
    }
}

} // namespace mach::vm
