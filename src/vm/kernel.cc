#include "vm/kernel.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"
#include "pmap/shootdown.hh"

namespace mach::vm
{

Kernel::Kernel(const hw::MachineConfig &config)
    : kernel_map_("kernel", kern::Machine::kKernelBase,
                  kern::Machine::kKernelHi)
{
    machine_ = std::make_unique<kern::Machine>(config);
    pmap_sys_ = std::make_unique<pmap::PmapSystem>(*machine_);
    io_ = std::make_unique<kern::IoDevice>(machine_.get());
    pager_ = std::make_unique<DefaultPager>(&machine_->mem());

    // DMA-capable devices: each gets a responder id past the CPUs and
    // enrolls its IOTLB in the shootdown protocol. With devices == 0
    // (the default) nothing here runs and the machine is bit-identical
    // to the device-less build.
    devices_.reserve(config.devices);
    for (unsigned i = 0; i < config.devices; ++i) {
        devices_.push_back(std::make_unique<dev::DmaDevice>(
            *machine_, *pmap_sys_, i));
        pmap_sys_->shoot().registerResponder(devices_.back().get());
    }

    machine_->setFaultHandler(
        [this](kern::Thread &thread, VAddr va, Prot want) {
            return handleFault(thread, va, want);
        });

    machine_->setSpaceSwitchHook([](kern::Cpu &cpu, kern::Thread &from,
                                    kern::Thread &to) {
        Task *from_task = from.task();
        Task *to_task = to.task();
        if (from_task == to_task)
            return;
        if (from_task != nullptr)
            from_task->pmap().deactivate(cpu);
        if (to_task != nullptr)
            to_task->pmap().activate(cpu);
    });
}

Kernel::~Kernel()
{
    // Tasks reference the pmap system; tear them down first.
    tasks_.clear();
}

void
Kernel::start()
{
    machine_->sched().start();
    machine_->startTimers();
}

kern::Thread *
Kernel::spawnThread(Task *task, std::string name,
                    kern::Thread::Body body, std::int64_t pin)
{
    if (task != nullptr)
        ++task->thread_count;
    return machine_->sched().spawn(task, std::move(name),
                                   std::move(body), pin);
}

Task *
Kernel::createTask(std::string name)
{
    tasks_.push_back(std::make_unique<Task>(this, std::move(name)));
    return tasks_.back().get();
}

Task *
Kernel::forkTask(kern::Thread &thread, Task &parent, std::string name)
{
    Task *child = createTask(std::move(name));
    const hw::MachineConfig &cfg = machine_->cfg();

    parent.map().lock().lockWrite(thread);
    thread.cpu().advance(cfg.vm_op_base_cost);

    for (auto &[start, entry] : parent.map().entries()) {
        switch (entry.inheritance) {
          case Inherit::None:
            break;
          case Inherit::Share: {
            if (entry.needs_copy) {
                // Sharing an entry with a pending virtual copy would
                // let parent and child silently diverge (each would
                // later resolve its own private shadow). Resolve the
                // copy now: interpose the shadow so both sides share
                // it, while the earlier copy-on-write peers keep the
                // original backing object.
                entry.object = VmObject::makeShadow(
                    entry.object, entry.offset, entry.sizePages());
                entry.offset = 0;
                entry.needs_copy = false;
            }
            entry.shared = true;
            VmMapEntry shared = entry;
            child->map().insert(shared);
            break;
          }
          case Inherit::Copy: {
            if (entry.shared) {
                // A shared object must never go copy-on-write (that
                // would detach the sharers from each other), so copy
                // inheritance of a shared entry is resolved eagerly
                // with a physical copy -- Mach's copy strategy for
                // permanent/shared memory objects.
                VmMapEntry copy = entry;
                copy.object = deepCopyObject(thread, entry);
                copy.offset = 0;
                copy.shared = false;
                copy.needs_copy = false;
                child->map().insert(copy);
                break;
            }
            VmMapEntry copy = entry;
            copy.needs_copy = true;
            child->map().insert(copy);
            if (!entry.needs_copy) {
                entry.needs_copy = true;
                // Remove write access from the parent's established
                // mappings so its next write faults and copies; this
                // protection reduction is a shootdown source when the
                // parent has threads on other processors.
                if (protAllows(entry.cur_prot, ProtWrite)) {
                    parent.pmap().protect(thread, vaToVpn(entry.start),
                                          vaToVpn(entry.end), ProtRead);
                }
            }
            break;
          }
        }
        thread.cpu().advance(20 * kUsec);
    }

    parent.map().lock().unlockWrite(thread);
    return child;
}

void
Kernel::destroyTask(kern::Thread &thread, Task *task)
{
    MACH_ASSERT(task != nullptr);

    task->map().lock().lockWrite(thread);
    deallocateLocked(thread, task->map(), task->pmap(), kUserLo,
                     kUserHi - kUserLo);
    task->map().lock().unlockWrite(thread);

    // Destroying the pmap itself is cheap: throw the page tables away;
    // they would be rebuilt by faults if the task were still alive
    // (Section 2).
    task->pmap().collect(thread);

    auto it = std::find_if(tasks_.begin(), tasks_.end(),
                           [task](const std::unique_ptr<Task> &t) {
                               return t.get() == task;
                           });
    MACH_ASSERT(it != tasks_.end());
    tasks_.erase(it);
}

// ---------------------------------------------------------------------
// Address-space operations
// ---------------------------------------------------------------------

bool
Kernel::vmAllocate(kern::Thread &thread, Task &task, VAddr *va,
                   std::uint32_t size, bool anywhere)
{
    size = pageRound(size);
    if (size == 0)
        return false;
    VmMap &map = task.map();

    kernelSection(thread,
                  30 * kUsec +
                      Tick(machine_->rng().exponential(50.0) * kUsec));
    map.lock().lockWrite(thread);
    thread.cpu().advance(machine_->cfg().vm_op_base_cost);

    VAddr start = anywhere ? map.findSpace(size) : pageTrunc(*va);
    bool ok = start != 0;
    if (ok && !anywhere) {
        // A fixed-address request fails on any overlap.
        for (VAddr probe = start; probe < start + size;
             probe += kPageSize) {
            if (map.lookup(probe) != nullptr) {
                ok = false;
                break;
            }
        }
    }
    if (ok) {
        VmMapEntry entry;
        entry.start = start;
        entry.end = start + size;
        entry.object = VmObject::create(&machine_->mem(),
                                        size >> kPageShift);
        entry.offset = 0;
        entry.cur_prot = ProtReadWrite;
        entry.max_prot = ProtReadWrite;
        entry.inheritance = Inherit::Copy;
        map.insert(entry);
        *va = start;
    }

    map.lock().unlockWrite(thread);
    return ok;
}

void
Kernel::deallocateLocked(kern::Thread &thread, VmMap &map,
                         pmap::Pmap &pmap, VAddr va, std::uint32_t size)
{
    const VAddr end = va + size;
    std::vector<VAddr> doomed;
    map.clipAndApply(va, end, [&](VmMapEntry &entry) {
        // Invalidate whatever the pmap has cached for this range (the
        // lazy-evaluation check inside decides whether any consistency
        // action is really needed).
        pmap.remove(thread, vaToVpn(entry.start), vaToVpn(entry.end));
        doomed.push_back(entry.start);
    });
    for (VAddr start : doomed)
        map.erase(start);
}

bool
Kernel::vmDeallocate(kern::Thread &thread, Task &task, VAddr va,
                     std::uint32_t size)
{
    size = pageRound(size);
    va = pageTrunc(va);
    if (size == 0)
        return false;

    kernelSection(thread,
                  30 * kUsec +
                      Tick(machine_->rng().exponential(50.0) * kUsec));
    task.map().lock().lockWrite(thread);
    thread.cpu().advance(machine_->cfg().vm_op_base_cost);
    deallocateLocked(thread, task.map(), task.pmap(), va, size);
    task.map().lock().unlockWrite(thread);
    return true;
}

bool
Kernel::vmProtect(kern::Thread &thread, Task &task, VAddr va,
                  std::uint32_t size, Prot prot)
{
    size = pageRound(size);
    va = pageTrunc(va);
    if (size == 0)
        return false;
    VmMap &map = task.map();

    kernelSection(thread,
                  30 * kUsec +
                      Tick(machine_->rng().exponential(50.0) * kUsec));
    map.lock().lockWrite(thread);
    thread.cpu().advance(machine_->cfg().vm_op_base_cost);

    map.clipAndApply(va, va + size, [&](VmMapEntry &entry) {
        const Prot old_prot = entry.cur_prot;
        const Prot new_prot = static_cast<Prot>(
            static_cast<std::uint8_t>(prot) &
            static_cast<std::uint8_t>(entry.max_prot));
        entry.cur_prot = new_prot;
        if (protReduces(old_prot, new_prot)) {
            task.pmap().protect(thread, vaToVpn(entry.start),
                                vaToVpn(entry.end), new_prot);
        }
        // Protection increases are repaired lazily by faults; leaving
        // lesser rights cached is the harmless direction (Section 3,
        // technique 3).
    });
    map.simplify(va, va + size);

    map.lock().unlockWrite(thread);
    return true;
}

bool
Kernel::vmInherit(kern::Thread &thread, Task &task, VAddr va,
                  std::uint32_t size, Inherit inheritance)
{
    size = pageRound(size);
    va = pageTrunc(va);
    if (size == 0)
        return false;

    kernelSection(thread,
                  30 * kUsec +
                      Tick(machine_->rng().exponential(50.0) * kUsec));
    task.map().lock().lockWrite(thread);
    thread.cpu().advance(machine_->cfg().vm_op_base_cost);
    task.map().clipAndApply(va, va + size, [&](VmMapEntry &entry) {
        entry.inheritance = inheritance;
    });
    task.map().simplify(va, va + size);
    task.map().lock().unlockWrite(thread);
    return true;
}

bool
Kernel::vmCopy(kern::Thread &thread, Task &task, VAddr src,
               std::uint32_t size, VAddr *dst)
{
    size = pageRound(size);
    src = pageTrunc(src);
    if (size == 0)
        return false;
    VmMap &map = task.map();

    kernelSection(thread,
                  30 * kUsec +
                      Tick(machine_->rng().exponential(50.0) * kUsec));
    map.lock().lockWrite(thread);
    thread.cpu().advance(machine_->cfg().vm_op_base_cost);

    const VAddr dst_base = map.findSpace(size);
    bool ok = dst_base != 0;
    if (ok) {
        VAddr cursor = dst_base;
        map.clipAndApply(src, src + size, [&](VmMapEntry &entry) {
            VmMapEntry copy = entry;
            copy.start = cursor;
            copy.end = cursor + (entry.end - entry.start);
            cursor = copy.end;

            if (entry.shared) {
                // Shared objects are copied eagerly (see forkTask).
                copy.object = deepCopyObject(thread, entry);
                copy.offset = 0;
                copy.shared = false;
                copy.needs_copy = false;
                map.insert(copy);
                return;
            }

            copy.needs_copy = true;
            if (!entry.needs_copy) {
                entry.needs_copy = true;
                if (protAllows(entry.cur_prot, ProtWrite)) {
                    task.pmap().protect(thread, vaToVpn(entry.start),
                                        vaToVpn(entry.end), ProtRead);
                }
            }
            map.insert(copy);
        });
        *dst = dst_base;
    }

    map.lock().unlockWrite(thread);
    return ok;
}

bool
Kernel::vmRegion(kern::Thread &thread, Task &task, VAddr *va,
                 RegionInfo *info)
{
    VmMap &map = task.map();
    map.lock().lockRead(thread);
    thread.cpu().advance(machine_->cfg().vm_op_base_cost / 2);

    bool found = false;
    for (const auto &[start, entry] : map.entries()) {
        if (entry.end <= *va)
            continue;
        info->start = entry.start;
        info->size = entry.end - entry.start;
        info->cur_prot = entry.cur_prot;
        info->max_prot = entry.max_prot;
        info->inheritance = entry.inheritance;
        info->resident_pages = 0;
        // Count pages resident anywhere in the entry's chain window.
        for (std::uint32_t p = 0; p < entry.sizePages(); ++p) {
            if (entry.object->lookupChain(entry.offset + p).page !=
                nullptr) {
                ++info->resident_pages;
            }
        }
        *va = entry.start;
        found = true;
        break;
    }

    map.lock().unlockRead(thread);
    return found;
}

bool
Kernel::vmWire(kern::Thread &thread, Task &task, VAddr va,
               std::uint32_t size, bool wire)
{
    size = pageRound(size);
    va = pageTrunc(va);
    if (size == 0)
        return false;

    VmMap &map = task.map();
    map.lock().lockWrite(thread);
    thread.cpu().advance(machine_->cfg().vm_op_base_cost);

    bool ok = true;
    for (VAddr addr = va; addr < va + size && ok;
         addr += kPageSize) {
        if (wire) {
            // Fault the page in (resident pages are a no-op), then
            // pin whatever page now backs this address.
            ok = faultLocked(thread, map, task.pmap(), addr, ProtRead);
            if (!ok)
                break;
        }
        VmMapEntry *entry = map.lookup(addr);
        if (entry == nullptr) {
            if (wire)
                ok = false;
            continue;
        }
        const std::uint32_t offset =
            entry->offset + ((addr - entry->start) >> kPageShift);
        const PageLookup found = entry->object->lookupChain(offset);
        if (found.page != nullptr)
            found.page->wired = wire;
        else if (wire)
            ok = false;
    }

    map.lock().unlockWrite(thread);
    return ok;
}

bool
Kernel::vmRead(kern::Thread &thread, Task &task, VAddr va, void *buf,
               std::uint32_t len)
{
    VmMap &map = task.map();
    auto *out = static_cast<std::uint8_t *>(buf);

    map.lock().lockWrite(thread);
    bool ok = true;
    for (std::uint32_t done = 0; done < len && ok;) {
        const VAddr addr = va + done;
        ok = faultLocked(thread, map, task.pmap(), addr, ProtRead);
        if (!ok)
            break;
        const std::uint32_t pte =
            task.pmap().table().readPte(vaToVpn(addr));
        const PAddr base = (hw::pte::pfn(pte) << kPageShift);
        const std::uint32_t in_page =
            std::min(len - done, kPageSize - (addr & kPageMask));
        for (std::uint32_t i = 0; i < in_page; ++i)
            out[done + i] = machine_->mem().read8(
                base + ((addr + i) & kPageMask));
        thread.cpu().advance((in_page / 4 + 1) *
                             machine_->cfg().mem_access_cost);
        done += in_page;
    }
    map.lock().unlockWrite(thread);
    return ok;
}

bool
Kernel::vmWrite(kern::Thread &thread, Task &task, VAddr va,
                const void *buf, std::uint32_t len)
{
    VmMap &map = task.map();
    const auto *in = static_cast<const std::uint8_t *>(buf);

    map.lock().lockWrite(thread);
    bool ok = true;
    for (std::uint32_t done = 0; done < len && ok;) {
        const VAddr addr = va + done;
        ok = faultLocked(thread, map, task.pmap(), addr, ProtWrite);
        if (!ok)
            break;
        const std::uint32_t pte =
            task.pmap().table().readPte(vaToVpn(addr));
        const PAddr base = (hw::pte::pfn(pte) << kPageShift);
        const std::uint32_t in_page =
            std::min(len - done, kPageSize - (addr & kPageMask));
        for (std::uint32_t i = 0; i < in_page; ++i)
            machine_->mem().write8(base + ((addr + i) & kPageMask),
                                   in[done + i]);
        thread.cpu().advance((in_page / 4 + 1) *
                             machine_->cfg().mem_access_cost);
        done += in_page;
    }
    map.lock().unlockWrite(thread);
    return ok;
}

// ---------------------------------------------------------------------
// Kernel memory
// ---------------------------------------------------------------------

void
Kernel::kernelSection(kern::Thread &thread, Tick cost)
{
    // advance() (rather than advanceNoPoll) so that delivery is
    // governed purely by the priority level: on baseline hardware the
    // shootdown IPI is masked here, but with the Section 9
    // high-priority software interrupt it preempts the section.
    kern::Cpu &cpu = thread.cpu();
    const hw::Spl saved = cpu.setSpl(hw::SplDevice);
    cpu.advance(cost);
    cpu.setSpl(saved);
}

ObjectPtr
Kernel::deepCopyObject(kern::Thread &thread, const VmMapEntry &entry)
{
    ObjectPtr fresh =
        VmObject::create(&machine_->mem(), entry.sizePages());
    for (std::uint32_t p = 0; p < entry.sizePages(); ++p) {
        const PageLookup found =
            entry.object->lookupChain(entry.offset + p);
        if (found.page == nullptr)
            continue;
        const Pfn frame = allocPlacedFrame(thread, p);
        machine_->mem().copyFrame(frame, found.page->pfn);
        kernelSection(thread, machine_->cfg().page_copy_cost);
        fresh->insertPage(p, frame);
        pageable_.push_back({fresh, p});
        ++cow_copies;
    }
    return fresh;
}

VAddr
Kernel::kmemAlloc(kern::Thread &thread, std::uint32_t size)
{
    size = pageRound(size);
    kernelSection(thread,
                  30 * kUsec +
                      Tick(machine_->rng().exponential(40.0) * kUsec));

    kernel_map_.lock().lockWrite(thread);
    thread.cpu().advance(machine_->cfg().vm_op_base_cost);

    // Under the Section 8 pool restructuring, kernel memory comes
    // from the executing processor's pool slice so that the eventual
    // free only has to shoot down that pool.
    VAddr va = 0;
    const unsigned pools = machine_->cfg().kernel_pools;
    if (pools > 1) {
        const unsigned pool = machine_->poolOfCpu(thread.cpu().id());
        const VAddr span = pageTrunc(
            (kern::Machine::kKernelHi - kern::Machine::kKernelBase) /
            pools);
        const VAddr lo = kern::Machine::kKernelBase + pool * span;
        va = kernel_map_.findSpaceIn(lo, lo + span, size);
    } else {
        va = kernel_map_.findSpace(size);
    }
    if (va != 0) {
        VmMapEntry entry;
        entry.start = va;
        entry.end = va + size;
        entry.object = VmObject::create(&machine_->mem(),
                                        size >> kPageShift);
        entry.offset = 0;
        entry.cur_prot = ProtReadWrite;
        entry.max_prot = ProtReadWrite;
        entry.inheritance = Inherit::None;
        kernel_map_.insert(entry);
    }

    kernel_map_.lock().unlockWrite(thread);
    return va;
}

void
Kernel::kmemFree(kern::Thread &thread, VAddr va, std::uint32_t size)
{
    size = pageRound(size);
    kernelSection(thread,
                  30 * kUsec +
                      Tick(machine_->rng().exponential(40.0) * kUsec));

    kernel_map_.lock().lockWrite(thread);
    thread.cpu().advance(machine_->cfg().vm_op_base_cost);
    deallocateLocked(thread, kernel_map_, pmap_sys_->kernelPmap(), va,
                     size);
    kernel_map_.lock().unlockWrite(thread);
}

} // namespace mach::vm
