/**
 * @file
 * Render one shootdown as a per-processor timeline, reconstructed from
 * the trace stream -- a visual walk through the four phases of
 * Figure 1.
 *
 *   ./build/examples/shootdown_timeline [children]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/consistency_tester.hh"
#include "base/trace.hh"
#include "vm/kernel.hh"
#include "xpr/analysis.hh"

using namespace mach;

int
main(int argc, char **argv)
{
    unsigned children = 4;
    if (argc > 1)
        children = static_cast<unsigned>(std::atoi(argv[1]));
    if (children < 1 || children > 15)
        fatal("children must be in 1..15");

    // Capture the shootdown trace stream.
    std::vector<std::string> lines;
    trace::setMask(trace::Shootdown);
    trace::setSink([&lines](const std::string &line) {
        lines.push_back(line);
    });

    hw::MachineConfig config;
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester(
        {.children = children, .warmup = 25 * kMsec});
    const apps::WorkloadResult result = tester.execute(kernel);
    trace::setMask(trace::None);
    trace::setSink(nullptr);

    std::printf("One %u-processor shootdown, as the trace stream saw "
                "it:\n\n", children);
    for (const std::string &line : lines)
        std::printf("  %s\n", line.c_str());

    const auto &user = result.analysis.user_initiator;
    std::printf("\nphases, per Figure 1:\n");
    std::printf("  1. the initiator queued actions for %.0f "
                "processors and interrupted the busy ones\n",
                user.procs.mean());
    std::printf("  2. each responder acknowledged (left the active "
                "set) and stalled while the pmap was locked\n");
    std::printf("  3. the initiator changed the page table entries "
                "(%.0f us after invoking the algorithm)\n",
                user.time_usec.mean());
    std::printf("  4. the responders invalidated their stale entries "
                "and rejoined the active set\n");
    std::printf("\nconsistency: %s\n",
                tester.consistent() ? "maintained" : "VIOLATED");
    return tester.consistent() ? 0 : 1;
}
