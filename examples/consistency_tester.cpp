/**
 * @file
 * The Section 5.1 TLB-consistency test program, runnable standalone:
 *
 *   ./build/examples/consistency_tester [children] [--no-shootdown]
 *
 * With the shootdown algorithm enabled (the default) the tester
 * reports consistency; with --no-shootdown it demonstrates the
 * genuine inconsistency that stale TLB entries cause on the simulated
 * hardware.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "apps/consistency_tester.hh"
#include "vm/kernel.hh"

using namespace mach;

int
main(int argc, char **argv)
{
    unsigned children = 8;
    bool shootdown = true;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--no-shootdown") == 0)
            shootdown = false;
        else
            children = static_cast<unsigned>(std::atoi(argv[i]));
    }
    if (children < 1 || children > 15)
        fatal("children must be between 1 and 15 on a 16-CPU machine");

    hw::MachineConfig config;
    config.shootdown_enabled = shootdown;
    vm::Kernel kernel(config);

    std::printf("TLB consistency tester: %u child threads, shootdown "
                "%s\n",
                children, shootdown ? "ENABLED" : "DISABLED");

    apps::ConsistencyTester tester(
        {.children = children, .warmup = 30 * kMsec});
    const apps::WorkloadResult result = tester.execute(kernel);

    std::printf("\n%-8s %12s %12s\n", "counter", "at-reprotect",
                "final");
    for (unsigned i = 0; i < children; ++i) {
        const bool moved =
            tester.finalCounters()[i] != tester.savedCounters()[i];
        std::printf("%-8u %12u %12u%s\n", i, tester.savedCounters()[i],
                    tester.finalCounters()[i],
                    moved ? "   <-- advanced after reprotect!" : "");
    }

    if (tester.consistent()) {
        std::printf("\nRESULT: consistent -- no counter advanced after "
                    "the page went read-only\n");
    } else {
        std::printf("\nRESULT: INCONSISTENT -- stale writable TLB "
                    "entries let threads keep writing\n");
    }
    if (result.analysis.user_initiator.events == 1) {
        std::printf("the single shootdown involved %.0f processors "
                    "and took %.0f us of initiator time\n",
                    result.analysis.user_initiator.procs.mean(),
                    result.analysis.user_initiator.time_usec.mean());
    }
    return tester.consistent() == shootdown ? 0 : 1;
}
