/**
 * @file
 * The simulation context: virtual clock, run loop, and fiber scheduling.
 *
 * One Context underlies one simulated machine. Code running inside fibers
 * advances time by sleeping on the context; the run loop interleaves all
 * fibers in deterministic (time, sequence) order.
 */

#ifndef MACH_SIM_CONTEXT_HH
#define MACH_SIM_CONTEXT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "base/types.hh"
#include "sim/event_queue.hh"
#include "sim/fiber.hh"

namespace mach::sim
{

/** Identifies a spawned fiber; stays valid after the fiber is reaped. */
using FiberId = std::uint64_t;

/** Virtual clock plus fiber scheduler for one simulated machine. */
class Context
{
  public:
    Context() = default;

    Context(const Context &) = delete;
    Context &operator=(const Context &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Current simulated time in whole microseconds (for reporting). */
    Tick nowUsec() const { return now_ / kUsec; }

    /**
     * Create a fiber and schedule it to start at time now() + @p delay.
     * The Context owns the fiber's storage until the fiber finishes.
     */
    FiberId spawn(std::string name, Fiber::Entry entry, Tick delay = 0);

    /** The id of the fiber currently executing; panics in scheduler. */
    FiberId currentFiber() const;

    /**
     * Block the current fiber until some event wakes it. Must be called
     * from within a fiber.
     */
    void block();

    /**
     * Schedule fiber @p id to resume at absolute time @p when. Waking a
     * fiber that has since finished is a harmless no-op, so races between
     * wakeups and completion need no special handling at call sites.
     */
    EventId scheduleWake(FiberId id, Tick when);

    /** Schedule a plain callback (runs in scheduler context; no block). */
    EventId scheduleCall(Tick when, std::function<void()> cb);

    /** Cancel a pending wake or call. No-op if already fired. */
    void cancel(EventId id);

    /**
     * From within a fiber: advance simulated time by @p dt without any
     * possibility of early wakeup.
     */
    void sleep(Tick dt);

    /**
     * Drain events until the queue is empty or simulated time would pass
     * @p until. Returns the number of events dispatched.
     */
    std::uint64_t run(Tick until = ~Tick{0});

    /**
     * Like run(), but additionally evaluates @p stop_after after every
     * dispatched event and stops the loop once it returns true. Used by
     * the run farm to park a machine at a prefix-snapshot point (a
     * deterministic event-insertion / bus-access watermark) from which
     * fork-style clones resume. On return *hit_guard says whether the
     * guard ended the run (true) or the queue drained, time ran out, or
     * a stop was requested (false) -- in the latter cases the run is
     * complete and clones must not resume it, or they would drain
     * events a stop-requested serial run leaves pending.
     */
    std::uint64_t runGuarded(Tick until,
                             const std::function<bool()> &stop_after,
                             bool *hit_guard);

    /** Make run() return after the current event completes. */
    void requestStop() { stop_requested_ = true; }

    /** Number of live (spawned, unfinished) fibers. */
    std::size_t liveFiberCount() const { return fibers_.size(); }

    /** Expose the queue for white-box tests and micro benchmarks. */
    EventQueue &queue() { return queue_; }

    /** Name of a live fiber (diagnostics); "<gone>" after it finishes. */
    std::string fiberName(FiberId id) const;

  private:
    void resumeFiber(FiberId id);
    /** EventQueue raw-event thunk for fiber wakes (token = FiberId). */
    static void wakeTrampoline(void *ctx, std::uint64_t token);

    EventQueue queue_;
    Tick now_ = 0;
    bool stop_requested_ = false;
    bool running_ = false;
    FiberId next_fiber_id_ = 1;
    FiberId current_id_ = 0;
    std::unordered_map<FiberId, std::unique_ptr<Fiber>> fibers_;
};

} // namespace mach::sim

#endif // MACH_SIM_CONTEXT_HH
