/**
 * @file
 * The run farm's contract: farming is a wall-clock optimization and
 * nothing else. Every observable result -- explorer verdicts, trial
 * counts, minimized schedules, and the determinism golden digests --
 * must be bit-identical whatever the farm shape: 1 or 8 worker
 * threads, fork snapshots on or off, main thread or pool worker.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "apps/consistency_tester.hh"
#include "base/perturb.hh"
#include "chk/explorer.hh"
#include "chk/scenario.hh"
#include "farm/farm.hh"
#include "farm/fork_pool.hh"
#include "farm/thread_pool.hh"
#include "vm/kernel.hh"
#include "xpr/machine_stats.hh"

namespace
{

using namespace mach;

/** The four farm shapes every result must be invariant under. */
struct Shape
{
    const char *name;
    farm::FarmOptions farm;
};

const Shape kShapes[] = {
    {"serial", {1, false}},
    {"jobs8", {8, false}},
    {"snapshots", {1, true}},
    {"jobs8+snapshots", {8, true}},
};

// ---------------------------------------------------------------------
// The pool itself.
// ---------------------------------------------------------------------

TEST(FarmPool, RunManyExecutesEveryJobOnceAcrossWidths)
{
    for (unsigned workers : {1u, 2u, 8u}) {
        constexpr unsigned kJobs = 100;
        std::atomic<unsigned> total{0};
        std::vector<std::atomic<unsigned>> per_job(kJobs);
        std::vector<std::function<void()>> jobs;
        for (unsigned i = 0; i < kJobs; ++i)
            jobs.push_back([&total, &per_job, i] {
                per_job[i].fetch_add(1);
                total.fetch_add(1);
            });
        farm::runMany(std::move(jobs), workers);
        EXPECT_EQ(total.load(), kJobs) << workers << " workers";
        for (unsigned i = 0; i < kJobs; ++i)
            EXPECT_EQ(per_job[i].load(), 1u)
                << "job " << i << ", " << workers << " workers";
    }
}

TEST(FarmPool, ForkManyReturnsChildPayloadsInOrder)
{
    if (!farm::forkAvailable())
        GTEST_SKIP() << "fork isolation unavailable on this build";
    const std::vector<std::optional<std::string>> got = farm::forkMany(
        5, 3, [](unsigned index) {
            return "child-" + std::to_string(index * 7);
        });
    ASSERT_EQ(got.size(), 5u);
    for (unsigned i = 0; i < 5; ++i) {
        ASSERT_TRUE(got[i].has_value()) << i;
        EXPECT_EQ(*got[i], "child-" + std::to_string(i * 7));
    }
}

// ---------------------------------------------------------------------
// Explorer invariance across farm shapes.
// ---------------------------------------------------------------------

TEST(FarmDeterminism, TrialBatchesMatchTheSerialLoop)
{
    const std::vector<chk::Scenario> library = chk::builtinScenarios();
    const chk::Scenario *storm =
        chk::findScenario(library, "storm-baseline");
    ASSERT_NE(storm, nullptr);

    // A mixed batch: unperturbed, event delays across the whole index
    // space, bus delays, multi-directive, and a duplicate.
    const char *texts[] = {
        "",
        "e120+50000",
        "e700+250000,b40+9000",
        "b200+30000",
        "e1100+900000",
        "e120+50000",
    };
    std::vector<SchedulePerturber> probes;
    for (const char *text : texts) {
        SchedulePerturber p;
        ASSERT_TRUE(SchedulePerturber::parse(text, &p, nullptr))
            << text;
        probes.push_back(p);
    }

    const chk::Explorer serial;
    std::vector<chk::TrialResult> want;
    for (const SchedulePerturber &p : probes)
        want.push_back(serial.runTrial(*storm, p));

    for (const Shape &shape : kShapes) {
        const chk::Explorer farmed(nullptr, shape.farm);
        const std::vector<chk::TrialResult> got =
            farmed.runTrials(*storm, probes);
        ASSERT_EQ(got.size(), want.size()) << shape.name;
        for (std::size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(got[i].digest, want[i].digest)
                << shape.name << " probe " << texts[i];
            EXPECT_EQ(got[i].completed, want[i].completed)
                << shape.name << " probe " << texts[i];
            EXPECT_EQ(got[i].predicate_ok, want[i].predicate_ok)
                << shape.name << " probe " << texts[i];
            EXPECT_EQ(got[i].violation_count, want[i].violation_count)
                << shape.name << " probe " << texts[i];
            EXPECT_EQ(got[i].events_fired, want[i].events_fired)
                << shape.name << " probe " << texts[i];
            EXPECT_EQ(got[i].end_time, want[i].end_time)
                << shape.name << " probe " << texts[i];
        }
    }
}

TEST(FarmDeterminism, PassingCampaignIsInvariantAcrossShapes)
{
    const std::vector<chk::Scenario> library = chk::builtinScenarios();
    const chk::Scenario *storm =
        chk::findScenario(library, "storm-baseline");
    ASSERT_NE(storm, nullptr);

    chk::ExploreOptions opt;
    opt.systematic_budget = 18;
    opt.random_budget = 30;

    bool have_first = false;
    chk::ExploreResult first;
    for (const Shape &shape : kShapes) {
        chk::Explorer explorer(nullptr, shape.farm);
        const chk::ExploreResult res = explorer.explore(*storm, opt);
        EXPECT_FALSE(res.foundFailure()) << shape.name;
        if (!have_first) {
            first = res;
            have_first = true;
            continue;
        }
        EXPECT_EQ(res.trials, first.trials) << shape.name;
        EXPECT_EQ(res.failures, first.failures) << shape.name;
        EXPECT_EQ(res.baseline.digest, first.baseline.digest)
            << shape.name;
        EXPECT_EQ(res.baseline.events_fired,
                  first.baseline.events_fired)
            << shape.name;
    }
}

TEST(FarmDeterminism, BrokenStallDetectionIsInvariantAcrossShapes)
{
    const chk::Scenario broken = chk::brokenStallScenario();

    // A tight budget: enough for the systematic sweep to hit the
    // planted bug, small enough that running the campaign four times
    // stays cheap.
    chk::ExploreOptions opt;
    opt.systematic_budget = 60;
    opt.random_budget = 60;
    opt.minimize_budget = 60;

    bool have_first = false;
    chk::ExploreResult first;
    for (const Shape &shape : kShapes) {
        chk::Explorer explorer(nullptr, shape.farm);
        const chk::ExploreResult res = explorer.explore(broken, opt);
        ASSERT_FALSE(res.baseline_failed) << shape.name;
        ASSERT_GT(res.failures, 0u)
            << shape.name << ": explorer missed the planted bug";
        ASSERT_FALSE(res.minimized_schedule.empty()) << shape.name;
        EXPECT_TRUE(res.minimized_result.failed()) << shape.name;
        if (!have_first) {
            first = res;
            have_first = true;
            continue;
        }
        // The whole campaign transcript matches the serial one: same
        // trial count, same first failure, same minimized reproducer.
        EXPECT_EQ(res.trials, first.trials) << shape.name;
        EXPECT_EQ(res.failures, first.failures) << shape.name;
        EXPECT_EQ(res.first_failing.format(),
                  first.first_failing.format())
            << shape.name;
        EXPECT_EQ(res.first_failure.digest, first.first_failure.digest)
            << shape.name;
        EXPECT_EQ(res.minimized_schedule, first.minimized_schedule)
            << shape.name;
        EXPECT_EQ(res.minimized_result.digest,
                  first.minimized_result.digest)
            << shape.name;
    }
}

// ---------------------------------------------------------------------
// The determinism golden digests, reproduced on pool worker threads.
// The values are the same ones tests/determinism_test.cc pins on the
// main thread; xpr::runDigest implements the shared formula. If these
// fail while determinism_test passes, some cross-machine state leaked
// between concurrent Machine instances.
// ---------------------------------------------------------------------

std::uint64_t
fnv1aU64(std::uint64_t hash, std::uint64_t value)
{
    for (unsigned i = 0; i < 8; ++i) {
        hash ^= (value >> (8 * i)) & 0xff;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

/** Tester (6 children) followed by a denser 12-child storm. */
std::uint64_t
stormDigest(std::uint64_t seed, bool software_reload, bool *consistent)
{
    setLogQuiet(true);
    std::uint64_t hash = 0xcbf29ce484222325ull;
    *consistent = true;
    {
        hw::MachineConfig config;
        config.seed = seed;
        config.tlb_software_reload = software_reload;
        vm::Kernel kernel(config);
        apps::ConsistencyTester tester(
            {.children = 6, .warmup = 20 * kMsec});
        tester.execute(kernel);
        *consistent = *consistent && tester.consistent();
        hash = fnv1aU64(hash, xpr::runDigest(kernel));
    }
    {
        hw::MachineConfig config;
        config.seed = seed ^ 0x5702;
        config.tlb_software_reload = software_reload;
        vm::Kernel kernel(config);
        apps::ConsistencyTester tester(
            {.children = 12, .warmup = 30 * kMsec});
        tester.execute(kernel);
        *consistent = *consistent && tester.consistent();
        hash = fnv1aU64(hash, xpr::runDigest(kernel));
    }
    return hash;
}

TEST(FarmGolden, StormDigestsMatchGoldenOnWorkerThreads)
{
    struct Case
    {
        std::uint64_t seed;
        bool software_reload;
        std::uint64_t golden;
    };
    const Case cases[] = {
        {0x1dea1, false, 0xbcf7d61b291003ddull},
        {0x2bead, false, 0x8d49626805e29b8cull},
        {0x1dea1, true, 0xf45a6047acf36e1full},
        {0x2bead, true, 0x74e62422e4263b4cull},
    };

    // All four digest cases concurrently: eight Machine instances
    // total, four live at once on four workers.
    std::uint64_t digests[std::size(cases)] = {};
    bool consistent[std::size(cases)] = {};
    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < std::size(cases); ++i)
        jobs.push_back([&cases, &digests, &consistent, i] {
            digests[i] = stormDigest(cases[i].seed,
                                     cases[i].software_reload,
                                     &consistent[i]);
        });
    farm::runMany(std::move(jobs), 4);

    for (std::size_t i = 0; i < std::size(cases); ++i) {
        EXPECT_TRUE(consistent[i]) << "case " << i;
        EXPECT_EQ(digests[i], cases[i].golden)
            << "seed " << cases[i].seed << " swr "
            << cases[i].software_reload;
    }
}

TEST(FarmGolden, PerturbedReplaysMatchGoldenOnWorkerThreads)
{
    struct Case
    {
        std::uint64_t seed;
        const char *schedule;
        std::uint64_t golden;
    };
    const Case cases[] = {
        {0x1dea1, "e901+350000,e2207+90000,b333+15000",
         0x207711fada9b11d2ull},
        {0x2bead, "e4096+1200000,b77+48000", 0x4ea566a2c56d21b8ull},
    };

    std::uint64_t digests[std::size(cases)] = {};
    bool consistent[std::size(cases)] = {};
    bool parsed[std::size(cases)] = {};
    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < std::size(cases); ++i)
        jobs.push_back([&cases, &digests, &consistent, &parsed, i] {
            setLogQuiet(true);
            SchedulePerturber perturber;
            parsed[i] = SchedulePerturber::parse(cases[i].schedule,
                                                 &perturber, nullptr);
            if (!parsed[i])
                return;
            hw::MachineConfig config;
            config.seed = cases[i].seed;
            vm::Kernel kernel(config);
            kernel.machine().setPerturber(&perturber);
            apps::ConsistencyTester tester(
                {.children = 6, .warmup = 20 * kMsec});
            tester.execute(kernel);
            consistent[i] = tester.consistent();
            kernel.machine().setPerturber(nullptr);
            digests[i] = xpr::runDigest(kernel);
        });
    farm::runMany(std::move(jobs), 2);

    for (std::size_t i = 0; i < std::size(cases); ++i) {
        ASSERT_TRUE(parsed[i]) << cases[i].schedule;
        EXPECT_TRUE(consistent[i]) << cases[i].schedule;
        EXPECT_EQ(digests[i], cases[i].golden) << cases[i].schedule;
    }
}

} // namespace
