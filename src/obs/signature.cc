#include "obs/signature.hh"

#include <cstring>
#include <map>

namespace mach::obs
{

namespace
{

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t
foldByte(std::uint64_t h, unsigned char b)
{
    h ^= b;
    h *= kFnvPrime;
    return h;
}

std::uint64_t
foldU64(std::uint64_t h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        h = foldByte(h, static_cast<unsigned char>((v >> (8 * i)) &
                                                   0xff));
    return h;
}

} // namespace

namespace
{

/** Fold one event's schedule-relevant fields (never its timestamp). */
std::uint64_t
foldEvent(std::uint64_t h, const Event &e)
{
    h = foldByte(h, static_cast<unsigned char>(e.phase));
    h = foldU64(h, e.track);
    for (const char *p = e.name; p != nullptr && *p != '\0'; ++p)
        h = foldByte(h, static_cast<unsigned char>(*p));
    // Span arguments carry the interleaving class the event names
    // alone miss: a drain's queued-action depth, a sync's waiting_on
    // count, an IPI's target fan-out, a fault's address. They are
    // schedule-dependent values, never timestamps, so folding them
    // keeps the signature stable across recording/host-cache modes
    // while separating e.g. a one-action drain from the two-action
    // drain only a parked responder produces.
    for (const Arg *arg : {&e.arg0, &e.arg1}) {
        if (arg->key == nullptr)
            continue;
        for (const char *p = arg->key; *p != '\0'; ++p)
            h = foldByte(h, static_cast<unsigned char>(*p));
        h = foldU64(h, arg->value);
    }
    return h;
}

} // namespace

std::vector<std::uint64_t>
interleavingSignatures(const Recorder &rec)
{
    std::vector<std::uint64_t> out;
    std::uint64_t h = kFnvOffset;
    bool open_window = false;
    unsigned depth = 0; // open "shoot" spans across all tracks

    // Per-track rolling context: everything each track did since the
    // last quiescent window closed (faults taken, dispatches, TLB
    // maintenance). Folded into the window hash at window close, this
    // is the "where was every CPU when the protocol ran" half of the
    // interleaving -- the half that distinguishes a responder parked
    // mid-reload from one idling between beats even when the protocol
    // events themselves are identical. std::map for deterministic
    // track order.
    std::map<std::uint64_t, std::uint64_t> context;

    for (const Event &e : rec.events()) {
        // Span-end events carry only the span's name (Recorder::end
        // drops the category), so protocol membership is decided by
        // category for 'B'/'i' events and by name prefix for 'E'.
        const bool is_shoot =
            (e.category != nullptr &&
             std::strcmp(e.category, "shoot") == 0) ||
            (e.phase == 'E' && e.name != nullptr &&
             std::strncmp(e.name, "shoot.", 6) == 0);
        if (!is_shoot) {
            std::uint64_t &c = context[e.track];
            if (c == 0)
                c = kFnvOffset;
            c = foldEvent(c, e);
            continue;
        }
        if (e.phase == 'B')
            ++depth;
        else if (e.phase == 'E' && depth > 0)
            --depth;

        h = foldEvent(h, e);
        open_window = true;

        if (depth == 0) { // quiescent again: the window is complete
            for (const auto &[track, c] : context) {
                h = foldU64(h, track);
                h = foldU64(h, c);
            }
            context.clear();
            out.push_back(h);
            h = kFnvOffset;
            open_window = false;
        }
    }
    if (open_window) { // a span the run never closed still counts
        for (const auto &[track, c] : context) {
            h = foldU64(h, track);
            h = foldU64(h, c);
        }
        out.push_back(h);
    }
    return out;
}

std::uint64_t
signatureListHash(const std::vector<std::uint64_t> &sigs)
{
    std::uint64_t h = kFnvOffset;
    for (const std::uint64_t s : sigs)
        h = foldU64(h, s);
    return h;
}

} // namespace mach::obs
