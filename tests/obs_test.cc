/**
 * @file
 * Timeline observability tests: histogram math, recorder mechanics
 * (ring eviction, disabled no-op, path suffixing), and the determinism
 * contract of the Chrome Trace Event JSON export -- a span-balance
 * validator over a real tester run plus golden FNV-1a digests pinning
 * the exported bytes for fixed seeds and flag sets.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/consistency_tester.hh"
#include "base/logging.hh"
#include "base/perturb.hh"
#include "base/rng.hh"
#include "chk/explorer.hh"
#include "chk/scenario.hh"
#include "obs/metrics.hh"
#include "obs/recorder.hh"
#include "obs/sampler.hh"
#include "vm/kernel.hh"
#include "xpr/xpr.hh"

namespace mach
{
namespace
{

// ---------------------------------------------------------------------
// Histogram math
// ---------------------------------------------------------------------

TEST(ObsHistogram, EmptyReportsZeros)
{
    obs::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0u);
    EXPECT_EQ(h.percentile(50), 0u);
}

TEST(ObsHistogram, TracksCountSumMinMaxMean)
{
    obs::Histogram h;
    h.record(10);
    h.record(20);
    h.record(90);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 120u);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 90u);
    EXPECT_EQ(h.mean(), 40u);
}

TEST(ObsHistogram, PercentilesAreMonotonicAndBounded)
{
    obs::Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.record(v);
    std::uint64_t prev = 0;
    for (unsigned p : {1u, 10u, 50u, 90u, 99u, 100u}) {
        const std::uint64_t val = h.percentile(p);
        EXPECT_GE(val, h.min()) << "p" << p;
        EXPECT_LE(val, h.max()) << "p" << p;
        EXPECT_GE(val, prev) << "p" << p;
        prev = val;
    }
    EXPECT_EQ(h.percentile(100), h.max());
    // Log buckets: p50 of 1..1000 lands in the bucket holding 500,
    // whose upper bound is below 1024.
    EXPECT_GE(h.percentile(50), 500u);
    EXPECT_LT(h.percentile(50), 1024u);
}

TEST(ObsHistogram, SingleSampleCollapsesToThatValue)
{
    obs::Histogram h;
    h.record(777);
    // Bucket bounds are clamped to the observed min/max, so a single
    // sample reports exactly.
    EXPECT_EQ(h.percentile(50), 777u);
    EXPECT_EQ(h.percentile(99), 777u);
}

TEST(ObsHistogram, PercentileMilleClampsAndHitsTheTail)
{
    obs::Histogram h;
    for (std::uint64_t v = 1; v <= 2000; ++v)
        h.record(v);
    // Per-mille resolution separates p99 from p99.9 where the
    // percent-resolution API cannot.
    EXPECT_GE(h.percentileMille(999), 1980u);
    EXPECT_GE(h.percentileMille(999), h.percentileMille(990));
    // mille >= 1000 clamps to the max.
    EXPECT_EQ(h.percentileMille(1000), h.max());
    EXPECT_EQ(h.percentileMille(5000), h.max());
    // percentile() is a wrapper over the same math.
    EXPECT_EQ(h.percentile(50), h.percentileMille(500));
    EXPECT_EQ(h.percentile(99), h.percentileMille(990));
}

/**
 * Property test for the 64-bucket log layout: against the exact
 * sorted-sample percentile (rank ceil(n*mille/1000)), the histogram's
 * report is never below the exact value and never more than 2x it --
 * the worst case being a sample at the bottom of a power-of-two
 * bucket, reported as the bucket's upper bound (2^i - 1 vs 2^(i-1)).
 */
TEST(ObsHistogram, PercentileMilleWithinBucketWidthOfExact)
{
    Rng rng(0x9e5c11e5ull);
    for (unsigned trial = 0; trial < 40; ++trial) {
        obs::Histogram h;
        std::vector<std::uint64_t> samples;
        const unsigned n = 50 + static_cast<unsigned>(rng.below(2000));
        for (unsigned i = 0; i < n; ++i) {
            // A skewed mix: mostly small values, a heavy tail, and
            // occasional zeros -- the shape of latency data.
            std::uint64_t v;
            if (rng.chance(0.05))
                v = 0;
            else if (rng.chance(0.1))
                v = rng.range(100000, 10000000);
            else
                v = rng.range(1, 5000);
            h.record(v);
            samples.push_back(v);
        }
        std::sort(samples.begin(), samples.end());
        for (unsigned mille : {100u, 500u, 900u, 990u, 999u}) {
            const std::uint64_t rank =
                (static_cast<std::uint64_t>(n) * mille + 999) / 1000;
            const std::uint64_t exact = samples[rank - 1];
            const std::uint64_t got = h.percentileMille(mille);
            EXPECT_GE(got, exact)
                << "trial " << trial << " p" << mille;
            EXPECT_LE(got, exact * 2)
                << "trial " << trial << " p" << mille;
        }
    }
}

TEST(ObsMetrics, HistogramsAreCreatedOnceInOrder)
{
    obs::Metrics m;
    EXPECT_TRUE(m.empty());
    obs::Histogram &a = m.histogram("alpha");
    obs::Histogram &b = m.histogram("beta");
    EXPECT_EQ(&a, &m.histogram("alpha"));
    a.record(5);
    ASSERT_EQ(m.entries().size(), 2u);
    EXPECT_EQ(m.entries()[0].first, "alpha");
    EXPECT_EQ(m.entries()[1].first, "beta");
    EXPECT_EQ(&b, m.entries()[1].second.get());
    EXPECT_NE(m.report().find("alpha"), std::string::npos);
}

// ---------------------------------------------------------------------
// Recorder mechanics (driven by a fake clock, no machine involved)
// ---------------------------------------------------------------------

TEST(ObsRecorder, DisabledRecordsNothing)
{
    Tick fake_now = 0;
    obs::Recorder rec([&fake_now] { return fake_now; });
    EXPECT_FALSE(rec.enabled());
    {
        obs::SpanGuard span(rec, rec.machineTrack(), "noop", "test",
                            "noop_us");
        rec.now();
    }
    EXPECT_TRUE(rec.events().empty());
    EXPECT_TRUE(rec.metrics().empty());
    EXPECT_FALSE(rec.dumpOnFailure("nothing armed"));
}

TEST(ObsRecorder, RingModeKeepsOnlyTheTail)
{
    Tick fake_now = 0;
    obs::Recorder rec([&fake_now] { return fake_now; });
    rec.enableRing(4);
    ASSERT_TRUE(rec.ringMode());
    for (int i = 0; i < 10; ++i) {
        fake_now = static_cast<Tick>(i) * kUsec;
        rec.instant(rec.machineTrack(), "tick", "test",
                    obs::Arg{"i", static_cast<std::uint64_t>(i)});
    }
    EXPECT_EQ(rec.events().size(), 4u);
    EXPECT_EQ(rec.droppedEvents(), 6u);
    EXPECT_EQ(rec.events().front().arg0.value, 6u);
    EXPECT_EQ(rec.events().back().arg0.value, 9u);
    // The drop count is visible in the export metadata.
    EXPECT_NE(rec.toJson().find("dropped_events"), std::string::npos);
}

TEST(ObsRecorder, SuffixedPathInsertsBeforeExtension)
{
    EXPECT_EQ(obs::suffixedPath("t.json", "seed0x1"), "t.seed0x1.json");
    EXPECT_EQ(obs::suffixedPath("out/t.json", "c2"), "out/t.c2.json");
    EXPECT_EQ(obs::suffixedPath("dir.d/trace", "c2"), "dir.d/trace.c2");
    EXPECT_EQ(obs::suffixedPath("trace", "tag"), "trace.tag");
    EXPECT_EQ(obs::suffixedPath("t.json", ""), "t.json");
}

TEST(ObsRecorder, OpenSpansGetSyntheticCloses)
{
    Tick fake_now = 0;
    obs::Recorder rec([&fake_now] { return fake_now; });
    rec.setCpuTracks(1);
    rec.enable();
    rec.begin(rec.cpuTrack(0), "outer", "test");
    fake_now = 5 * kUsec;
    rec.begin(rec.cpuTrack(0), "inner", "test");
    fake_now = 9 * kUsec;
    rec.instant(rec.machineTrack(), "mark", "test");
    // Neither span was closed; the export must balance them anyway,
    // inner before outer, at the final timestamp.
    const std::string json = rec.toJson();
    const auto inner_e = json.find("{\"ph\":\"E\",\"pid\":1,\"tid\":1,"
                                   "\"ts\":9.000,\"name\":\"inner\"}");
    const auto outer_e = json.find("{\"ph\":\"E\",\"pid\":1,\"tid\":1,"
                                   "\"ts\":9.000,\"name\":\"outer\"}");
    EXPECT_NE(inner_e, std::string::npos);
    EXPECT_NE(outer_e, std::string::npos);
    EXPECT_LT(inner_e, outer_e);
}

// ---------------------------------------------------------------------
// Trace JSON over a real run: span balance, phases, determinism
// ---------------------------------------------------------------------

struct ParsedEvent
{
    char ph = '?';
    std::uint64_t tid = 0;
    Tick ts = 0;
    std::string name;
    bool has_ts = false;
};

/**
 * Minimal line-oriented scan of the recorder's own JSON (one event per
 * line, fixed key order). Not a general JSON parser; the CI smoke step
 * runs `python3 -m json.tool` for that.
 */
std::vector<ParsedEvent>
parseTraceEvents(const std::string &json)
{
    std::vector<ParsedEvent> events;
    std::istringstream in(json);
    std::string line;
    while (std::getline(in, line)) {
        const auto ph = line.find("{\"ph\":\"");
        if (ph == std::string::npos)
            continue;
        ParsedEvent e;
        e.ph = line[ph + 7];
        const auto tid = line.find("\"tid\":");
        if (tid != std::string::npos)
            e.tid = std::strtoull(line.c_str() + tid + 6, nullptr, 10);
        const auto ts = line.find("\"ts\":");
        if (ts != std::string::npos) {
            const char *p = line.c_str() + ts + 5;
            char *end = nullptr;
            const std::uint64_t micros = std::strtoull(p, &end, 10);
            std::uint64_t frac = 0;
            if (end != nullptr && *end == '.')
                frac = std::strtoull(end + 1, nullptr, 10);
            e.ts = micros * kUsec + frac;
            e.has_ts = true;
        }
        const auto name = line.find("\"name\":\"");
        if (name != std::string::npos) {
            const auto close = line.find('"', name + 8);
            e.name = line.substr(name + 8, close - (name + 8));
        }
        events.push_back(std::move(e));
    }
    return events;
}

/** Every 'B' has a matching 'E' and per-track time never rewinds.
 *  @p expect_counters is false for runs without a Sampler attached. */
void
validateSpanBalance(const std::vector<ParsedEvent> &events,
                    bool expect_counters = true)
{
    std::vector<std::vector<std::string>> stacks;
    std::vector<Tick> last_ts;
    unsigned counts[4] = {}; // B, E, i, C
    for (const ParsedEvent &e : events) {
        if (e.ph == 'M')
            continue;
        if (e.tid >= stacks.size()) {
            stacks.resize(e.tid + 1);
            last_ts.resize(e.tid + 1, 0);
        }
        ASSERT_TRUE(e.has_ts) << "non-metadata event without ts";
        EXPECT_GE(e.ts, last_ts[e.tid])
            << "time rewound on track " << e.tid;
        last_ts[e.tid] = e.ts;
        switch (e.ph) {
          case 'B':
            ++counts[0];
            stacks[e.tid].push_back(e.name);
            break;
          case 'E':
            ++counts[1];
            ASSERT_FALSE(stacks[e.tid].empty())
                << "unmatched E \"" << e.name << "\" on track "
                << e.tid;
            EXPECT_EQ(stacks[e.tid].back(), e.name)
                << "interleaved spans on track " << e.tid;
            stacks[e.tid].pop_back();
            break;
          case 'i':
            ++counts[2];
            break;
          case 'C':
            ++counts[3];
            break;
          default:
            FAIL() << "unknown phase " << e.ph;
        }
    }
    for (std::size_t t = 0; t < stacks.size(); ++t) {
        EXPECT_TRUE(stacks[t].empty())
            << "track " << t << " left "
            << (stacks[t].empty() ? "" : stacks[t].back())
            << " open after synthetic closes";
    }
    // The instrumented run exercises all four phases.
    EXPECT_GT(counts[0], 0u) << "no spans";
    EXPECT_GT(counts[1], 0u) << "no span ends";
    EXPECT_GT(counts[2], 0u) << "no instants";
    if (expect_counters)
        EXPECT_GT(counts[3], 0u) << "no counter samples";
}

/**
 * One recorded tester run: trace JSON (and, optionally, the same
 * machine's xpr fingerprint for the perturbation check).
 */
std::string
recordedTesterTrace(std::uint64_t seed, bool with_sampler,
                    std::string *xpr_print = nullptr)
{
    setLogQuiet(true);
    hw::MachineConfig config;
    config.seed = seed;
    vm::Kernel kernel(config);
    obs::Recorder &rec = kernel.machine().recorder();
    rec.enable();
    // The sampler lives past toJson(): counter events reference names
    // it interns.
    std::unique_ptr<obs::Sampler> sampler;
    if (with_sampler)
        sampler = std::make_unique<obs::Sampler>(kernel, 4 * kMsec);
    apps::ConsistencyTester tester({.children = 6, .warmup = 20 * kMsec});
    tester.execute(kernel);
    EXPECT_TRUE(tester.consistent());
    if (sampler)
        sampler->stop();
    if (xpr_print != nullptr) {
        std::ostringstream out;
        for (const xpr::Event &event : kernel.machine().xpr().events()) {
            out << static_cast<int>(event.kind) << ':' << event.cpu
                << ':' << event.timestamp << ':' << event.elapsed
                << '\n';
        }
        *xpr_print = out.str();
    }
    return rec.toJson();
}

TEST(ObsTrace, TesterRunBalancesSpansAcrossCpuTracks)
{
    const std::string json = recordedTesterTrace(0x0b5e1, true);
    // Per-CPU tracks are declared in the metadata.
    EXPECT_NE(json.find("\"name\":\"cpu0\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"cpu1\""), std::string::npos);
    // The protocol phases and the sampler's counters all show up.
    EXPECT_NE(json.find("\"shoot.initiate\""), std::string::npos);
    EXPECT_NE(json.find("\"shoot.respond\""), std::string::npos);
    EXPECT_NE(json.find("\"irq.shootdown\""), std::string::npos);
    EXPECT_NE(json.find("\"vm.fault\""), std::string::npos);
    EXPECT_NE(json.find("tlb_hit_pct"), std::string::npos);
    const std::vector<ParsedEvent> events = parseTraceEvents(json);
    ASSERT_GT(events.size(), 50u);
    validateSpanBalance(events);
}

TEST(ObsTrace, GeneratedScenarioTraceBalancesSpans)
{
    // The property-based scenario generator (chk/vmgen.hh) emits
    // random-but-legal VM-op sequences; whatever sequence a seed
    // produces, the recorded trace must still be a well-formed span
    // tree on every track -- the fuzzer's coverage signal
    // (obs/signature.hh) assumes exactly this nesting discipline.
    setLogQuiet(true);
    chk::Scenario scenario;
    ASSERT_TRUE(chk::resolveScenario("vmgen-1", &scenario));
    std::string json;
    const chk::Explorer explorer;
    const chk::TrialResult trial =
        explorer.runTrialRecorded(scenario, SchedulePerturber(), &json);
    EXPECT_FALSE(trial.failed()) << trial.note;
    EXPECT_NE(json.find("\"shoot.initiate\""), std::string::npos);
    EXPECT_NE(json.find("\"shoot.respond\""), std::string::npos);
    const std::vector<ParsedEvent> events = parseTraceEvents(json);
    ASSERT_GT(events.size(), 50u);
    validateSpanBalance(events, /*expect_counters=*/false);
}

TEST(ObsTrace, RecordingDoesNotPerturbTheRun)
{
    // The recorder must be timing-neutral (obs_record_cost defaults to
    // 0): the xpr event stream of a recorded run equals the stream of
    // an unrecorded one, so traces can be taken from any experiment
    // without invalidating it.
    std::string recorded;
    recordedTesterTrace(0x0b5e2, false, &recorded);

    setLogQuiet(true);
    hw::MachineConfig config;
    config.seed = 0x0b5e2;
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester({.children = 6, .warmup = 20 * kMsec});
    tester.execute(kernel);
    std::ostringstream out;
    for (const xpr::Event &event : kernel.machine().xpr().events()) {
        out << static_cast<int>(event.kind) << ':' << event.cpu << ':'
            << event.timestamp << ':' << event.elapsed << '\n';
    }
    ASSERT_FALSE(recorded.empty());
    EXPECT_EQ(recorded, out.str());
}

// ---------------------------------------------------------------------
// Golden digests: the exported bytes are part of the replay contract
// ---------------------------------------------------------------------

std::uint64_t
fnv1a(const std::string &data)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const unsigned char byte : data) {
        hash ^= byte;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

struct TraceDigestCase
{
    std::uint64_t seed;
    bool with_sampler;
    std::uint64_t golden;
};

TEST(ObsTrace, GoldenDigestsPinTheExportedBytes)
{
    // Two seeds x two flag sets (plain spans; spans + periodic
    // sampler). The goldens pin byte-identical JSON across runs,
    // builds, and hosts -- integer-only timestamp formatting, stable
    // track order, deterministic event order. Regenerate by printing
    // fnv1a(json) here after an intentional format change.
    const TraceDigestCase cases[] = {
        {0x7ace1, false, 0x037443713d847524ull},
        {0x7ace1, true, 0x87ed0c48dddd0f14ull},
        {0x7ace2, false, 0x2f602f369905bc28ull},
        {0x7ace2, true, 0xc289bc145f318d88ull},
    };
    for (const TraceDigestCase &c : cases) {
        const std::string first =
            recordedTesterTrace(c.seed, c.with_sampler);
        const std::string second =
            recordedTesterTrace(c.seed, c.with_sampler);
        // Byte-identical across same-seed runs...
        EXPECT_EQ(first, second)
            << "seed " << c.seed << " sampler " << c.with_sampler;
        // ...and pinned against the golden.
        EXPECT_EQ(fnv1a(first), c.golden)
            << "seed " << std::hex << c.seed << " sampler "
            << c.with_sampler << " digest 0x" << fnv1a(first);
    }
}

} // namespace
} // namespace mach
