/**
 * @file
 * machsim -- the command-line driver for the simulated machine.
 *
 * Runs any of the paper's workloads on a machine you configure from
 * the command line, prints the xpr shootdown analysis and the machine
 * statistics, and optionally streams the trace.
 *
 *   machsim --app tester --children 8
 *   machsim --app camelot --ncpus 32 --transactions 300
 *   machsim --app mach-build --lazy off
 *   machsim --app agora --trace shootdown,pmap
 *   machsim --app parthenon --strategy delayed-flush
 *   machsim --app tester --pools 4 --ncpus 64
 *
 * Run `machsim --help` for the full flag list.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "apps/agora.hh"
#include "apps/camelot.hh"
#include "apps/consistency_tester.hh"
#include "apps/mach_build.hh"
#include "apps/parthenon.hh"
#include "apps/serving.hh"
#include "base/perturb.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "farm/farm.hh"
#include "chk/corpus.hh"
#include "chk/explorer.hh"
#include "chk/oracle.hh"
#include "chk/scenario.hh"
#include "obs/recorder.hh"
#include "obs/sampler.hh"
#include "obs/stats_json.hh"
#include "pmap/shootdown.hh"
#include "vm/kernel.hh"
#include "xpr/machine_stats.hh"

using namespace mach;

namespace
{

struct Options
{
    std::string app = "tester";
    unsigned ncpus = 16;
    unsigned pools = 1;
    unsigned children = 8;     // tester
    unsigned build_jobs = 48;  // mach-build
    unsigned transactions = 200; // camelot
    unsigned runs = 5;         // parthenon / agora
    // serving (see apps/serving.hh for the knob semantics).
    unsigned tenants = 24;
    unsigned tenant_concurrency = 8;
    unsigned tenant_threads = 2;
    unsigned requests = 6;
    unsigned ws_pages = 16;
    unsigned binary_pages = 64;
    unsigned mmap_pages = 4;
    double sharing = 0.3;
    double fault_mix = 0.35;
    double zipf_s = 1.2;
    std::uint64_t seed = 0x4d616368u;
    /** Run farm width (--jobs). 0 = MACH_FARM_JOBS or serial. */
    unsigned farm_jobs = 0;
    /** Batch mode: run the workload under this many seeds. */
    unsigned repeat = 0;
    /** First seed of a --repeat batch (defaults to --seed). */
    std::uint64_t seed_base = 0;
    bool seed_base_set = false;
    bool lazy = true;
    bool shootdown = true;
    bool high_priority_ipi = false;
    bool multicast = false;
    bool broadcast = false;
    bool software_reload = false;
    bool no_writeback = false;
    bool remote_invalidate = false;
    bool asid_tags = false;
    bool delayed_flush = false;
    /** Shootdown-avoidance policy (baseline | lazy-asid | batched |
     *  range-flush | reuse-elide). */
    std::string shootdown_policy = "baseline";
    unsigned tlb_assoc = 0;
    /** Disable the host-side L0/walk caches (timing-neutral knob). */
    bool no_l0 = false;
    std::string trace_spec;
    /** Perturbation directives, e.g. "e89+187500,b40+9000". */
    std::string schedule;
    /** Checker scenario for --app chk. */
    std::string scenario = "storm-baseline";
    /** Persistent corpus directory for --explore campaigns. */
    std::string corpus_dir;
    /** Probe budget: run a coverage-guided campaign, not a replay. */
    unsigned explore_budget = 0;
    /** --explore without the coverage guidance (blind sampling). */
    bool explore_blind = false;
    /**
     * Systematic-sweep share of the --explore budget; the sentinel
     * keeps the default 30% split. Zero isolates the guided (or
     * blind) phase for coverage-vs-blind comparisons.
     */
    unsigned systematic_budget = ~0u;
    /** "center:halfwidth" for the exhaustive small-window mode. */
    std::string exhaustive_window;
    /** Attach the stale-translation oracle to the run. */
    bool oracle = false;
    /** Timeline trace output (Chrome Trace Event JSON). */
    std::string trace_json;
    /**
     * Counter-sampling period in ticks; the sentinel means "auto":
     * 16 ms when --trace-json is given, otherwise off.
     */
    Tick stats_interval = ~Tick{0};
    /** Simulated cost charged per recorded span (Section 6.1 knob). */
    Tick obs_cost = 0;
    /** Flight-recorder dump file, written on failure. */
    std::string flight_recorder;
    /** Machine-readable stats document, written after the run. */
    std::string stats_json;
    /** Print the paper-style xpr distribution rows per --repeat seed. */
    bool xpr_rows = false;
    // NUMA topology (see docs/NUMA.md).
    unsigned numa_nodes = 1;
    /** When nonzero, ncpus = numa_nodes * cpus_per_node. */
    unsigned cpus_per_node = 0;
    /** Uniform remote distance ("25") or full matrix ("10,25;25,10"). */
    std::string distance;
    std::string placement = "first-touch";
    unsigned migrate_threshold = 4;
    bool pt_replicas = false;
    // DMA devices (docs/DEVICES.md).
    unsigned devices = 0;
    /** 0 keeps the MachineConfig default IOTLB capacity. */
    unsigned iotlb_entries = 0;
};

/** Counter-sampling period after resolving the "auto" sentinel. */
Tick
statsInterval(const Options &opt)
{
    if (opt.stats_interval != ~Tick{0})
        return opt.stats_interval;
    return opt.trace_json.empty() ? 0 : 16 * kMsec;
}

/** Ring depth for --flight-recorder (matches the explorer's). */
constexpr std::size_t kFlightRingCapacity = 16384;

bool
writeTextFile(const std::string &path, const std::string &body)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::size_t wrote =
        std::fwrite(body.data(), 1, body.size(), f);
    return std::fclose(f) == 0 && wrote == body.size();
}

void
usage()
{
    std::printf(
        "machsim -- simulated-Multimax workload driver\n"
        "\nsimulator:\n"
        "  --ncpus N           processors (default 16)\n"
        "  --pools N           Section 8 kernel pools (default 1)\n"
        "  --seed N            deterministic seed\n"
        "  --lazy on|off       lazy evaluation (Table 1 toggle)\n"
        "  --no-shootdown      disable the algorithm (negative test)\n"
        "  --strategy S        shootdown | delayed-flush (Section 3)\n"
        "  --hipri-ipi         Section 9 high-priority sw interrupt\n"
        "  --multicast / --broadcast     Section 9 IPI options\n"
        "  --software-reload / --no-writeback / --remote-invalidate\n"
        "                      Section 9 TLB options\n"
        "  --asid-tags         Section 10 tagged-TLB extension\n"
        "  --shootdown-policy P  avoidance policy layered over the\n"
        "                      Figure 1 algorithm: baseline |\n"
        "                      lazy-asid (implies --asid-tags) |\n"
        "                      batched | range-flush | reuse-elide\n"
        "                      (implies --software-reload); see\n"
        "                      docs/ALGORITHM.md\n"
        "  --tlb-assoc N       set-associative TLB with N ways (0 =\n"
        "                      fully associative, the Multimax default)\n"
        "  --no-l0             disable the host-side L0 translation\n"
        "                      cache and page-walk cache (slower on\n"
        "                      the host, identical simulated results)\n"
        "\nworkload:\n"
        "  --app NAME          tester | mach-build | parthenon | "
        "agora | camelot | serving\n"
        "  --children N        tester child threads (default 8)\n"
        "  --build-jobs N      mach-build compile jobs (default 48)\n"
        "  --transactions N    camelot transactions (default 200)\n"
        "  --runs N            parthenon/agora successive runs\n"
        "  --tenants N         serving tenant spaces forked over the\n"
        "                      run (default 24)\n"
        "  --tenant-concurrency N  live serving tenants at once\n"
        "                      (default 8)\n"
        "  --tenant-threads N  threads per tenant: 1 server + N-1\n"
        "                      siblings (default 2)\n"
        "  --requests N        requests per tenant (default 6)\n"
        "  --ws-pages N        serving hot working set (default 16)\n"
        "  --binary-pages N    shared read-mostly binary (default 64)\n"
        "  --mmap-pages N      pages mapped/unmapped per request\n"
        "                      (default 4)\n"
        "  --sharing F         fraction of accesses reading the\n"
        "                      shared binary (default 0.3)\n"
        "  --fault-mix F       fraction touching never-touched pages\n"
        "                      (default 0.35)\n"
        "  --zipf S            request-class Zipf skew (default 1.2)\n"
        "  --jobs N            run-farm width: concurrent simulations\n"
        "                      for --repeat batches (default\n"
        "                      MACH_FARM_JOBS or 1)\n"
        "  --repeat K          run the workload K times with seeds\n"
        "                      seed-base, seed-base+1, ... and print\n"
        "                      one summary table (per-seed digest +\n"
        "                      aggregate stats)\n"
        "  --seed-base N       first seed of a --repeat batch\n"
        "                      (default --seed)\n"
        "\nchecker:\n"
        "  --schedule STR      replay a perturbation schedule (the\n"
        "                      checker's e<seq>+<ticks>,b<n>+<ticks>\n"
        "                      format; see docs/CHECKER.md)\n"
        "  --oracle            audit TLB consistency after every pmap\n"
        "                      operation (exit 1 on any violation)\n"
        "  --app chk           run a checker scenario instead of a\n"
        "                      workload (oracle always attached)\n"
        "  --scenario NAME     which scenario --app chk runs; 'list'\n"
        "                      prints the library (vmgen-<seed>\n"
        "                      [x<nodes>][d] names generate property-\n"
        "                      based scenarios on demand; the 'd'\n"
        "                      suffix mixes in DMA-device ops)\n"
        "  --explore N         run a coverage-guided exploration\n"
        "                      campaign (N probes) over the scenario\n"
        "                      instead of one replay\n"
        "  --blind             make --explore sample blindly (the\n"
        "                      pre-coverage explorer; for comparisons)\n"
        "  --systematic N      give the systematic sweep N of the\n"
        "                      --explore probes (default 30%%; 0\n"
        "                      isolates guided-vs-blind probing)\n"
        "  --corpus DIR        persistent corpus for --explore:\n"
        "                      coverage-novel schedules are stored in\n"
        "                      DIR and campaigns resume from it\n"
        "                      (docs/CHECKER.md)\n"
        "  --exhaustive-window C:K   enumerate every delay placement\n"
        "                      (singles + pairs) in the event window\n"
        "                      [C-K, C+K] instead of sampling\n"
        "\nobservability:\n"
        "  --trace SPEC        e.g. shootdown,pmap,vm (to stderr)\n"
        "  --trace-json FILE   write the run's timeline (spans,\n"
        "                      instants, counters) as Chrome Trace\n"
        "                      Event JSON -- open in Perfetto or\n"
        "                      chrome://tracing; --repeat batches\n"
        "                      write FILE.seed0x<seed>.json per seed\n"
        "  --stats-interval T  counter-sample period in ticks (ns);\n"
        "                      default 16 ms with --trace-json, else\n"
        "                      off; 0 disables (see\n"
        "                      docs/OBSERVABILITY.md on e<seq>\n"
        "                      schedule indices)\n"
        "  --obs-cost T        charge T ticks of simulated time per\n"
        "                      recorded span (Section 6.1-style\n"
        "                      measurement perturbation; default 0)\n"
        "  --flight-recorder F keep a bounded ring of recent events\n"
        "                      and dump it to F when the run fails\n"
        "                      (oracle violation, failed verdict,\n"
        "                      failed chk trial)\n"
        "  --stats-json FILE   write every histogram (with\n"
        "                      percentiles), machine counter, and the\n"
        "                      run digest as deterministic JSON\n"
        "                      (schema machsim-stats-v1, see\n"
        "                      docs/OBSERVABILITY.md); enables\n"
        "                      stats-only recording when no trace is\n"
        "                      requested; --repeat batches write\n"
        "                      FILE.seed0x<seed>.json per seed\n"
        "  --xpr               print the paper-style initiator/\n"
        "                      responder distribution rows for every\n"
        "                      seed of a --repeat batch\n"
        "\nnuma (docs/NUMA.md):\n"
        "  --numa N            NUMA nodes (default 1 = flat bus);\n"
        "                      each node gets its own bus and memory\n"
        "                      partition, cross-node shootdowns go\n"
        "                      through per-node delegates\n"
        "  --cpus-per-node N   with --numa, sets --ncpus to N per\n"
        "                      node (max 16 per node)\n"
        "  --distance D        uniform remote SLIT distance (e.g. 25;\n"
        "                      local is 10) or a full ;-separated\n"
        "                      matrix like \"10,25;25,10\"\n"
        "  --placement P       first-touch | interleave | migrate\n"
        "  --migrate-threshold N   remote faults on a page before the\n"
        "                      migrate policy copies it (default 4)\n"
        "  --pt-replicas       numaPTE-style per-node page-table\n"
        "                      replicas, kept coherent by the\n"
        "                      shootdown machinery\n"
        "\ndevices (docs/DEVICES.md):\n"
        "  --devices N         DMA devices with IOMMU-fed IOTLBs\n"
        "                      (default 0); each streams DMA against\n"
        "                      a private buffer task whose driver\n"
        "                      thread recycles the buffer, so every\n"
        "                      workload exercises device-responder\n"
        "                      shootdowns\n"
        "  --iotlb-entries N   per-device IOTLB capacity (default 8)\n");
}

bool
parse(int argc, char **argv, Options *opt)
{
    auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("flag %s needs a value", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--help" || flag == "-h") {
            usage();
            return false;
        } else if (flag == "--app") {
            opt->app = need_value(i);
        } else if (flag == "--ncpus") {
            opt->ncpus = static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--pools") {
            opt->pools = static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--seed") {
            opt->seed = strtoull(need_value(i), nullptr, 0);
        } else if (flag == "--children") {
            opt->children = static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--build-jobs") {
            opt->build_jobs =
                static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--jobs") {
            opt->farm_jobs =
                static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--repeat") {
            opt->repeat = static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--seed-base") {
            opt->seed_base = strtoull(need_value(i), nullptr, 0);
            opt->seed_base_set = true;
        } else if (flag == "--transactions") {
            opt->transactions =
                static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--tenants") {
            opt->tenants = static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--tenant-concurrency") {
            opt->tenant_concurrency =
                static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--tenant-threads") {
            opt->tenant_threads =
                static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--requests") {
            opt->requests = static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--ws-pages") {
            opt->ws_pages = static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--binary-pages") {
            opt->binary_pages =
                static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--mmap-pages") {
            opt->mmap_pages =
                static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--sharing") {
            opt->sharing = atof(need_value(i));
        } else if (flag == "--fault-mix") {
            opt->fault_mix = atof(need_value(i));
        } else if (flag == "--zipf") {
            opt->zipf_s = atof(need_value(i));
        } else if (flag == "--runs") {
            opt->runs = static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--lazy") {
            opt->lazy = std::strcmp(need_value(i), "off") != 0;
        } else if (flag == "--no-shootdown") {
            opt->shootdown = false;
        } else if (flag == "--strategy") {
            opt->delayed_flush =
                std::strcmp(need_value(i), "delayed-flush") == 0;
        } else if (flag == "--hipri-ipi") {
            opt->high_priority_ipi = true;
        } else if (flag == "--multicast") {
            opt->multicast = true;
        } else if (flag == "--broadcast") {
            opt->broadcast = true;
        } else if (flag == "--software-reload") {
            opt->software_reload = true;
        } else if (flag == "--no-writeback") {
            opt->no_writeback = true;
        } else if (flag == "--remote-invalidate") {
            opt->remote_invalidate = true;
            opt->no_writeback = true;
        } else if (flag == "--asid-tags") {
            opt->asid_tags = true;
        } else if (flag == "--shootdown-policy") {
            opt->shootdown_policy = need_value(i);
        } else if (flag == "--tlb-assoc") {
            opt->tlb_assoc =
                static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--no-l0") {
            opt->no_l0 = true;
        } else if (flag == "--trace") {
            opt->trace_spec = need_value(i);
        } else if (flag == "--schedule") {
            opt->schedule = need_value(i);
        } else if (flag == "--scenario") {
            opt->scenario = need_value(i);
        } else if (flag == "--corpus") {
            opt->corpus_dir = need_value(i);
        } else if (flag == "--explore") {
            opt->explore_budget =
                static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--blind") {
            opt->explore_blind = true;
        } else if (flag == "--systematic") {
            opt->systematic_budget =
                static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--exhaustive-window") {
            opt->exhaustive_window = need_value(i);
        } else if (flag == "--oracle") {
            opt->oracle = true;
        } else if (flag == "--trace-json") {
            opt->trace_json = need_value(i);
        } else if (flag == "--stats-interval") {
            opt->stats_interval = strtoull(need_value(i), nullptr, 0);
        } else if (flag == "--obs-cost") {
            opt->obs_cost = strtoull(need_value(i), nullptr, 0);
        } else if (flag == "--flight-recorder") {
            opt->flight_recorder = need_value(i);
        } else if (flag == "--stats-json") {
            opt->stats_json = need_value(i);
        } else if (flag == "--xpr") {
            opt->xpr_rows = true;
        } else if (flag == "--numa") {
            opt->numa_nodes =
                static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--cpus-per-node") {
            opt->cpus_per_node =
                static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--distance") {
            opt->distance = need_value(i);
        } else if (flag == "--placement") {
            opt->placement = need_value(i);
        } else if (flag == "--migrate-threshold") {
            opt->migrate_threshold =
                static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--pt-replicas") {
            opt->pt_replicas = true;
        } else if (flag == "--devices") {
            opt->devices = static_cast<unsigned>(atoi(need_value(i)));
        } else if (flag == "--iotlb-entries") {
            opt->iotlb_entries =
                static_cast<unsigned>(atoi(need_value(i)));
        } else {
            fatal("unknown flag '%s' (try --help)", flag.c_str());
        }
    }
    return true;
}

hw::MachineConfig
toConfig(const Options &opt)
{
    hw::MachineConfig config;
    config.ncpus = opt.ncpus;
    config.kernel_pools = opt.pools;
    config.seed = opt.seed;
    config.lazy_evaluation = opt.lazy;
    config.shootdown_enabled = opt.shootdown;
    config.high_priority_ipi = opt.high_priority_ipi;
    config.multicast_ipi = opt.multicast;
    config.broadcast_ipi = opt.broadcast;
    config.tlb_software_reload = opt.software_reload;
    config.tlb_no_refmod_writeback = opt.no_writeback;
    config.tlb_remote_invalidate = opt.remote_invalidate;
    config.tlb_asid_tags = opt.asid_tags;
    config.tlb_associativity = opt.tlb_assoc;
    if (opt.no_l0) {
        config.tlb_l0_entries = 0;
        config.host_walk_cache = false;
    }
    config.obs_record_cost = opt.obs_cost;
    if (opt.delayed_flush) {
        config.consistency_strategy =
            hw::ConsistencyStrategy::DelayedFlush;
        config.tlb_no_refmod_writeback = true;
    }
    config.numa_nodes = opt.numa_nodes;
    if (opt.cpus_per_node != 0)
        config.ncpus = opt.numa_nodes * opt.cpus_per_node;
    if (!opt.distance.empty()) {
        // A bare number is a uniform remote distance; anything else is
        // a full ;-separated matrix handed to the topology parser.
        if (opt.distance.find_first_not_of("0123456789") ==
            std::string::npos) {
            config.numa_remote_distance = static_cast<unsigned>(
                atoi(opt.distance.c_str()));
        } else {
            config.numa_distance_spec = opt.distance;
        }
    }
    if (opt.placement == "first-touch") {
        config.numa_placement = hw::PlacementPolicy::FirstTouch;
    } else if (opt.placement == "interleave") {
        config.numa_placement = hw::PlacementPolicy::Interleave;
    } else if (opt.placement == "migrate") {
        config.numa_placement = hw::PlacementPolicy::Migrate;
    } else {
        fatal("unknown --placement '%s' (first-touch | interleave | "
              "migrate)",
              opt.placement.c_str());
    }
    config.numa_migrate_threshold = opt.migrate_threshold;
    config.numa_pt_replicas = opt.pt_replicas;
    config.devices = opt.devices;
    if (opt.iotlb_entries != 0)
        config.iotlb_entries = opt.iotlb_entries;
    if (!hw::parseShootdownPolicy(opt.shootdown_policy,
                                  &config.shootdown_policy)) {
        fatal("unknown --shootdown-policy '%s' (baseline | lazy-asid "
              "| batched | range-flush | reuse-elide)",
              opt.shootdown_policy.c_str());
    }
    // Each policy's hardware prerequisite is implied rather than
    // demanded: lazy-asid needs a tagged TLB, reuse-elide needs
    // lock-aware (software) reload.
    if (config.shootdown_policy == hw::ShootdownPolicy::LazyAsid)
        config.tlb_asid_tags = true;
    if (config.shootdown_policy == hw::ShootdownPolicy::ReuseElide)
        config.tlb_software_reload = true;
    return config;
}

farm::FarmOptions
farmOptions(const Options &opt)
{
    farm::FarmOptions farm = farm::FarmOptions::fromEnv(1);
    if (opt.farm_jobs != 0)
        farm.jobs = opt.farm_jobs;
    return farm;
}

/** Build the workload selected by --app. Fills @p tester when the
 *  app is the consistency tester (it has its own verdict). */
std::unique_ptr<apps::Workload>
makeApp(const Options &opt, apps::ConsistencyTester **tester)
{
    if (tester != nullptr)
        *tester = nullptr;
    if (opt.app == "tester") {
        auto owned = std::make_unique<apps::ConsistencyTester>(
            apps::ConsistencyTester::Params{.children = opt.children,
                                            .warmup = 30 * kMsec});
        if (tester != nullptr)
            *tester = owned.get();
        return owned;
    }
    if (opt.app == "mach-build")
        return std::make_unique<apps::MachBuild>(
            apps::MachBuild::Params{.jobs = opt.build_jobs});
    if (opt.app == "parthenon") {
        apps::Parthenon::Params params;
        params.runs = opt.runs;
        return std::make_unique<apps::Parthenon>(params);
    }
    if (opt.app == "agora") {
        apps::Agora::Params params;
        params.runs = opt.runs;
        return std::make_unique<apps::Agora>(params);
    }
    if (opt.app == "camelot")
        return std::make_unique<apps::Camelot>(
            apps::Camelot::Params{.transactions = opt.transactions});
    if (opt.app == "serving") {
        apps::Serving::Params params;
        params.tenants = opt.tenants;
        params.concurrency = opt.tenant_concurrency;
        params.threads_per_tenant = opt.tenant_threads;
        params.requests_per_tenant = opt.requests;
        params.ws_pages = opt.ws_pages;
        params.binary_pages = opt.binary_pages;
        params.mmap_pages = opt.mmap_pages;
        params.sharing = opt.sharing;
        params.fault_mix = opt.fault_mix;
        params.zipf_s = opt.zipf_s;
        params.seed = opt.seed;
        return std::make_unique<apps::Serving>(params);
    }
    fatal("unknown --app '%s' (try --help)", opt.app.c_str());
    return nullptr;
}

/**
 * --repeat K: fan the workload across K seeds on the run farm and
 * print one summary table -- the quick way to judge whether a result
 * (or a suspected nondeterminism) is seed-local, without K serial
 * process launches. Each seed is a fully isolated machine; the
 * per-seed digests are the same values `machsim --seed N` would
 * produce one at a time, independent of --jobs.
 */
int
runBatch(const Options &opt, const SchedulePerturber &perturber)
{
    struct Row
    {
        std::uint64_t seed = 0;
        Tick runtime = 0;
        std::uint64_t shootdowns = 0;
        std::uint64_t ipis = 0;
        std::uint64_t digest = 0;
        bool ok = false;
        xpr::RunAnalysis analysis;
    };

    const std::uint64_t base =
        opt.seed_base_set ? opt.seed_base : opt.seed;
    const farm::FarmOptions farm = farmOptions(opt);
    std::vector<Row> rows(opt.repeat);
    std::vector<std::function<void()>> jobs;
    jobs.reserve(opt.repeat);
    for (unsigned k = 0; k < opt.repeat; ++k) {
        jobs.push_back([&opt, &perturber, &rows, base, k] {
            Options one = opt;
            one.seed = base + k;
            vm::Kernel kernel(toConfig(one));
            kernel.machine().setPerturber(&perturber);
            apps::ConsistencyTester *tester = nullptr;
            std::unique_ptr<apps::Workload> app =
                makeApp(one, &tester);

            // Each seed records its own timeline into its own file,
            // suffixed by seed so concurrent farm workers (or fork
            // children, via the process file tag) never collide.
            obs::Recorder &rec = kernel.machine().recorder();
            std::unique_ptr<obs::Sampler> sampler;
            if (!one.trace_json.empty()) {
                rec.enable();
                if (statsInterval(one) != 0)
                    sampler = std::make_unique<obs::Sampler>(
                        kernel, statsInterval(one));
            } else if (!one.stats_json.empty()) {
                // Histograms only: --stats-json without a trace keeps
                // memory flat across the batch.
                rec.enableStats();
            }

            const apps::WorkloadResult result = app->execute(kernel);
            kernel.machine().setPerturber(nullptr);
            if (sampler != nullptr)
                sampler->stop();
            if (!one.trace_json.empty()) {
                char tag[32];
                std::snprintf(tag, sizeof(tag), "seed0x%llx",
                              static_cast<unsigned long long>(
                                  one.seed));
                const std::string path =
                    obs::suffixedPath(one.trace_json, tag);
                if (!rec.writeJsonFile(path))
                    warn("could not write trace JSON to %s",
                         path.c_str());
            }
            if (!one.stats_json.empty()) {
                char tag[32];
                std::snprintf(tag, sizeof(tag), "seed0x%llx",
                              static_cast<unsigned long long>(
                                  one.seed));
                const std::string path =
                    obs::suffixedPath(one.stats_json, tag);
                const obs::StatsMeta meta{one.app, one.seed,
                                          one.shootdown_policy};
                if (!obs::writeStatsJson(path, kernel, meta))
                    warn("could not write stats JSON to %s",
                         path.c_str());
            }

            Row &row = rows[k];
            row.seed = one.seed;
            row.runtime = result.virtual_runtime;
            const pmap::ShootdownController &shoot =
                kernel.pmaps().shoot();
            row.shootdowns = shoot.initiated;
            row.ipis = shoot.interrupts_sent;
            row.digest = xpr::runDigest(kernel);
            row.ok = tester != nullptr
                         ? tester->consistent() == one.shootdown
                         : kernel.pmaps().auditTlbConsistency().empty();
            row.analysis = result.analysis;
        });
    }

    std::printf("machsim: %s x %u seeds [0x%llx..0x%llx], farm "
                "--jobs %u\n\n",
                opt.app.c_str(), opt.repeat,
                static_cast<unsigned long long>(base),
                static_cast<unsigned long long>(base + opt.repeat - 1),
                farm.jobs);
    farm::runMany(std::move(jobs), farm.jobs);

    std::printf("%-12s %12s %12s %8s  %-18s %s\n", "seed",
                "runtime(s)", "shootdowns", "ipis", "digest",
                "verdict");
    Sample runtime;
    Sample shootdowns;
    bool all_ok = true;
    for (const Row &row : rows) {
        runtime.add(static_cast<double>(row.runtime) / kSec);
        shootdowns.add(static_cast<double>(row.shootdowns));
        all_ok = all_ok && row.ok;
        std::printf("0x%-10llx %12.3f %12llu %8llu  0x%016llx %s\n",
                    static_cast<unsigned long long>(row.seed),
                    static_cast<double>(row.runtime) / kSec,
                    static_cast<unsigned long long>(row.shootdowns),
                    static_cast<unsigned long long>(row.ipis),
                    static_cast<unsigned long long>(row.digest),
                    row.ok ? "ok" : "FAIL");
    }
    std::printf("\n%u seed(s): runtime %s s (min %.3f, max %.3f), "
                "shootdowns %s\n",
                opt.repeat, runtime.meanStd(3).c_str(),
                runtime.min(), runtime.max(),
                shootdowns.meanStd(1).c_str());

    if (opt.xpr_rows) {
        // The paper-style Tables 1-4 rows, one block per seed: events,
        // mean+-std, and the 10th/50th/90th percentiles in usec.
        for (const Row &row : rows) {
            const xpr::RunAnalysis &a = row.analysis;
            std::printf("\nxpr distributions, seed 0x%llx%s\n",
                        static_cast<unsigned long long>(row.seed),
                        a.overflowed
                            ? " (xpr buffer OVERFLOWED; truncated)"
                            : "");
            std::printf("%s\n",
                        xpr::formatRow("kernel", a.kernel_initiator,
                                       a.kernel_initiator.events < 16)
                            .c_str());
            std::printf("%s\n",
                        xpr::formatRow("user", a.user_initiator,
                                       a.user_initiator.events < 16)
                            .c_str());
            std::printf("%s\n",
                        xpr::formatRow("responder", a.responder,
                                       a.responder.events < 16)
                            .c_str());
        }
        std::printf("\n");
    }

    std::printf("verdict: %s\n",
                all_ok ? "all consistent" : "FAILURES (see table)");
    return all_ok ? 0 : 1;
}

/**
 * --app chk: replay a perturbation schedule against a checker
 * scenario (or its unperturbed baseline) with the oracle attached.
 * This is how a minimized schedule printed by the explorer (or by
 * CI's failure artifacts) is reproduced from the command line.
 */
/** Shared report for explore / exhaustive campaign results. */
int
reportCampaign(const chk::ExploreResult &res, const chk::Corpus *corpus,
               const std::string &scenario_name)
{
    std::printf("trials: %u (%u duplicate probe(s) skipped, %u "
                "coverage-novel)\n",
                res.trials, res.duplicate_probes_skipped,
                res.coverage_novel);
    if (corpus != nullptr)
        std::printf("corpus: %zu bucket(s), %zu entr(ies)%s%s\n",
                    corpus->buckets(scenario_name),
                    corpus->entries().size(),
                    corpus->dir().empty() ? "" : " in ",
                    corpus->dir().c_str());
    if (res.baseline_failed) {
        std::printf("baseline FAILED: %s\n",
                    res.baseline.note.c_str());
        return 1;
    }
    if (res.failures == 0) {
        std::printf("no failing schedule found\n");
        return 0;
    }
    std::printf("failures: %u\nfirst failing schedule: %s\n"
                "minimized: %s\n",
                res.failures, res.first_failing.format().c_str(),
                res.minimized_schedule.c_str());
    for (const std::string &v : res.minimized_result.violations)
        std::printf("  %s\n", v.c_str());
    if (!res.minimized_result.note.empty())
        std::printf("note: %s\n", res.minimized_result.note.c_str());
    return 1;
}

int
runCheckerScenario(const Options &opt,
                   const SchedulePerturber &perturber)
{
    if (opt.scenario == "list") {
        for (const chk::Scenario &s : chk::builtinScenarios())
            std::printf("%-22s %s\n", s.name.c_str(),
                        s.summary.c_str());
        std::printf("%-22s %s\n", "broken-stall",
                    chk::brokenStallScenario().summary.c_str());
        std::printf("%-22s %s\n", "broken-replica",
                    chk::brokenReplicaScenario().summary.c_str());
        std::printf("%-22s %s\n", "broken-l0",
                    chk::brokenL0Scenario().summary.c_str());
        std::printf("%-22s %s\n", "broken-asid",
                    chk::brokenAsidScenario().summary.c_str());
        std::printf("%-22s %s\n", "broken-iotlb",
                    chk::brokenIotlbScenario().summary.c_str());
        return 0;
    }
    chk::Scenario resolved;
    if (!chk::resolveScenario(opt.scenario, &resolved))
        fatal("unknown --scenario '%s' (try --scenario list)",
              opt.scenario.c_str());
    const chk::Scenario *scenario = &resolved;

    const auto log = [](const std::string &msg) {
        std::printf("  %s\n", msg.c_str());
    };

    if (!opt.exhaustive_window.empty()) {
        // --exhaustive-window C:K -- the bounded, complete enumeration.
        chk::ExhaustiveWindow window;
        char *end = nullptr;
        window.center =
            strtoull(opt.exhaustive_window.c_str(), &end, 0);
        if (end == nullptr || *end != ':')
            fatal("bad --exhaustive-window '%s' (want "
                  "center:halfwidth)",
                  opt.exhaustive_window.c_str());
        window.halfwidth = strtoull(end + 1, nullptr, 0);
        std::printf("machsim: chk scenario %s, exhaustive window "
                    "%llu +- %llu\n",
                    scenario->name.c_str(),
                    static_cast<unsigned long long>(window.center),
                    static_cast<unsigned long long>(window.halfwidth));
        chk::Explorer explorer(log, farmOptions(opt));
        const chk::ExploreResult res =
            explorer.exploreExhaustive(*scenario, window);
        return reportCampaign(res, nullptr, scenario->name);
    }

    if (opt.explore_budget != 0) {
        // --explore N -- a coverage-guided (or --blind) campaign.
        chk::Corpus corpus(opt.corpus_dir);
        chk::ExploreOptions eopt;
        eopt.systematic_budget =
            opt.systematic_budget != ~0u
                ? std::min(opt.systematic_budget, opt.explore_budget)
                : opt.explore_budget * 3 / 10;
        eopt.random_budget =
            opt.explore_budget - eopt.systematic_budget;
        eopt.coverage_guided = !opt.explore_blind;
        eopt.corpus = &corpus;
        std::printf("machsim: chk scenario %s, %s exploration, %u "
                    "probe budget%s%s\n",
                    scenario->name.c_str(),
                    eopt.coverage_guided ? "coverage-guided" : "blind",
                    opt.explore_budget,
                    opt.corpus_dir.empty() ? "" : ", corpus ",
                    opt.corpus_dir.c_str());
        chk::Explorer explorer(log, farmOptions(opt));
        const chk::ExploreResult res =
            explorer.explore(*scenario, eopt);
        return reportCampaign(res, &corpus, scenario->name);
    }

    std::printf("machsim: chk scenario %s, schedule \"%s\"\n",
                scenario->name.c_str(), perturber.format().c_str());
    chk::Explorer explorer(nullptr, farmOptions(opt));

    // Recording never perturbs the trial (obs_record_cost stays 0 for
    // scenarios -- their configs are fixed), so recorded and plain
    // replays produce the same digest. The counter sampler is never
    // attached here: it would shift the e<seq> index space the
    // --schedule directives address.
    const bool record =
        !opt.trace_json.empty() || !opt.flight_recorder.empty();
    std::string trace_json;
    const chk::TrialResult r =
        record ? explorer.runTrialRecorded(
                     *scenario, perturber, &trace_json,
                     opt.trace_json.empty() ? kFlightRingCapacity : 0)
               : explorer.runTrial(*scenario, perturber);
    if (!opt.trace_json.empty()) {
        if (writeTextFile(opt.trace_json, trace_json))
            std::printf("trace: %s\n", opt.trace_json.c_str());
        else
            warn("could not write trace JSON to %s",
                 opt.trace_json.c_str());
    }
    if (!opt.flight_recorder.empty() && r.failed()) {
        if (writeTextFile(opt.flight_recorder, trace_json))
            std::printf("flight recorder: %s\n",
                        opt.flight_recorder.c_str());
        else
            warn("could not write flight-recorder trace to %s",
                 opt.flight_recorder.c_str());
    }
    std::printf("completed: %s\npredicate: %s\nviolations: %llu\n",
                r.completed ? "yes" : "NO (liveness)",
                r.predicate_ok ? "held" : "VIOLATED",
                static_cast<unsigned long long>(r.violation_count));
    for (const std::string &v : r.violations)
        std::printf("  %s\n", v.c_str());
    if (!r.note.empty())
        std::printf("note: %s\n", r.note.c_str());
    std::printf("end time: %llu ticks, digest: 0x%016llx\n",
                static_cast<unsigned long long>(r.end_time),
                static_cast<unsigned long long>(r.digest));
    return r.failed() ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parse(argc, argv, &opt))
        return 0;
    if (!opt.trace_spec.empty())
        trace::enable(trace::parseCategories(opt.trace_spec));

    SchedulePerturber perturber;
    std::string perturb_error;
    if (!SchedulePerturber::parse(opt.schedule, &perturber,
                                  &perturb_error))
        fatal("bad --schedule: %s", perturb_error.c_str());

    if (opt.app == "chk")
        return runCheckerScenario(opt, perturber);
    if (opt.repeat != 0)
        return runBatch(opt, perturber);

    vm::Kernel kernel(toConfig(opt));
    kernel.machine().setPerturber(&perturber);
    std::unique_ptr<chk::Oracle> oracle;
    if (opt.oracle)
        oracle = std::make_unique<chk::Oracle>(kernel);

    apps::ConsistencyTester *tester = nullptr;
    std::unique_ptr<apps::Workload> app = makeApp(opt, &tester);

    // Timeline recording: --trace-json records everything for a full
    // export; --flight-recorder alone keeps only a bounded ring, armed
    // to dump on failure (the oracle triggers it the moment a stale
    // translation is seen; a failed verdict triggers it at exit).
    obs::Recorder &rec = kernel.machine().recorder();
    std::unique_ptr<obs::Sampler> sampler;
    if (!opt.trace_json.empty() || !opt.flight_recorder.empty()) {
        if (opt.trace_json.empty())
            rec.enableRing(kFlightRingCapacity);
        else
            rec.enable();
        if (!opt.flight_recorder.empty())
            rec.setDumpPath(opt.flight_recorder);
        if (statsInterval(opt) != 0)
            sampler =
                std::make_unique<obs::Sampler>(kernel, statsInterval(opt));
    } else if (!opt.stats_json.empty()) {
        // Histograms without a timeline: every span site still feeds
        // the metrics registry, but no events are stored.
        rec.enableStats();
    }

    if (opt.numa_nodes > 1)
        std::printf("machsim: %s on %u CPUs / %u nodes (seed 0x%llx)\n",
                    opt.app.c_str(), kernel.machine().ncpus(),
                    opt.numa_nodes,
                    static_cast<unsigned long long>(opt.seed));
    else
        std::printf("machsim: %s on %u CPUs (seed 0x%llx)\n",
                    opt.app.c_str(), kernel.machine().ncpus(),
                    static_cast<unsigned long long>(opt.seed));
    if (!perturber.empty())
        std::printf("schedule: %s (%zu directive(s))\n",
                    perturber.format().c_str(), perturber.size());
    const apps::WorkloadResult result = app->execute(kernel);
    if (sampler != nullptr)
        sampler->stop();

    std::printf("\nvirtual runtime: %.2f s\n",
                static_cast<double>(result.virtual_runtime) / kSec);
    std::printf("%s\n",
                xpr::formatRow("kernel",
                               result.analysis.kernel_initiator,
                               result.analysis.kernel_initiator.events <
                                   16)
                    .c_str());
    std::printf("%s\n",
                xpr::formatRow("user", result.analysis.user_initiator,
                               result.analysis.user_initiator.events <
                                   16)
                    .c_str());
    std::printf("%s\n",
                xpr::formatRow("responder", result.analysis.responder,
                               result.analysis.responder.events < 16)
                    .c_str());
    std::printf("lazily avoided shootdowns: %llu\n\n",
                static_cast<unsigned long long>(result.lazy_avoided));
    std::printf("%s", xpr::MachineStats::capture(kernel).report().c_str());

    if (result.analysis.overflowed)
        std::printf("\nWARNING: xpr buffer overflowed; distribution "
                    "rows above are truncated\n");

    if (!opt.trace_json.empty()) {
        if (rec.writeJsonFile(opt.trace_json)) {
            std::printf("\ntrace: %zu events on %zu tracks -> %s\n",
                        rec.events().size(), rec.tracks().size(),
                        opt.trace_json.c_str());
        } else {
            warn("could not write trace JSON to %s",
                 opt.trace_json.c_str());
        }
    }
    if (rec.enabled() && !rec.metrics().empty())
        std::printf("\nlatency histograms (usec):\n%s",
                    rec.metrics().report().c_str());
    if (!opt.stats_json.empty()) {
        const obs::StatsMeta meta{opt.app, opt.seed,
                                  opt.shootdown_policy};
        if (obs::writeStatsJson(opt.stats_json, kernel, meta))
            std::printf("\nstats: %s\n", opt.stats_json.c_str());
        else
            warn("could not write stats JSON to %s",
                 opt.stats_json.c_str());
    }

    int rc = 0;
    if (tester != nullptr) {
        std::printf("\ntester verdict: %s\n",
                    tester->consistent() ? "consistent"
                                         : "INCONSISTENT");
        rc = tester->consistent() == opt.shootdown ? 0 : 1;
    } else {
        const auto violations = kernel.pmaps().auditTlbConsistency();
        std::printf("\nTLB consistency audit: %s\n",
                    violations.empty() ? "clean" : "VIOLATIONS");
        rc = violations.empty() ? 0 : 1;
    }
    if (oracle) {
        oracle->finalCheck();
        std::printf("oracle: %llu audits, %llu violation(s)\n",
                    static_cast<unsigned long long>(
                        oracle->opsAudited()),
                    static_cast<unsigned long long>(
                        oracle->violationCount()));
        for (const std::string &v : oracle->violations())
            std::printf("  %s\n", v.c_str());
        if (!oracle->clean())
            rc = 1;
    }
    if (rc != 0 && rec.dumpOnFailure("run failed")) {
        // The oracle may have dumped earlier (at first violation);
        // this catches verdict failures that produce no violation.
        std::printf("flight recorder: %s\n", rec.dumpPath().c_str());
    } else if (rc != 0 && rec.dumped()) {
        std::printf("flight recorder: %s\n", rec.dumpPath().c_str());
    }
    return rc;
}
