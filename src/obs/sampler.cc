#include "obs/sampler.hh"

#include <deque>
#include <string>
#include <vector>

#include "hw/bus.hh"
#include "hw/phys_mem.hh"
#include "hw/tlb.hh"
#include "kern/cpu.hh"
#include "kern/machine.hh"
#include "obs/recorder.hh"
#include "pmap/pmap.hh"
#include "pmap/shootdown.hh"
#include "vm/kernel.hh"

namespace mach::obs
{

const char *
Sampler::cpuCounterName(const char *suffix, CpuId id)
{
    std::string name = "cpu" + std::to_string(id) + "." + suffix;
    for (const auto &existing : names_) {
        if (existing == name)
            return existing.c_str();
    }
    names_.push_back(std::move(name));
    return names_.back().c_str();
}

Sampler::Sampler(vm::Kernel &kernel, Tick interval)
    : kernel_(kernel), interval_(interval == 0 ? kMsec : interval)
{
    schedule();
}

Sampler::~Sampler()
{
    stop();
}

void
Sampler::stop()
{
    if (stopped_)
        return;
    stopped_ = true;
    if (pending_valid_)
        kernel_.machine().ctx().cancel(pending_);
    pending_valid_ = false;
}

void
Sampler::schedule()
{
    sim::Context &ctx = kernel_.machine().ctx();
    pending_ = ctx.scheduleCall(ctx.now() + interval_, [this] {
        pending_valid_ = false;
        sample();
        if (!stopped_)
            schedule();
    });
    pending_valid_ = true;
}

void
Sampler::sample()
{
    kern::Machine &machine = kernel_.machine();
    Recorder &rec = machine.recorder();
    if (!rec.enabled())
        return;
    ++samples_;

    const TrackId mt = rec.machineTrack();
    rec.counter(mt, "bus.accesses", machine.busAccessTotal());
    if (machine.numaNodes() > 1) {
        std::uint64_t remote = 0;
        for (CpuId id = 0; id < machine.ncpus(); ++id)
            remote += machine.cpu(id).remote_mem_accesses;
        rec.counter(mt, "numa.remote_accesses", remote);
        pmap::ShootdownController &sc = kernel_.pmaps().shoot();
        rec.counter(mt, "numa.cross_node_ipis", sc.cross_node_ipis);
        rec.counter(mt, "numa.forwarded_ipis", sc.forwarded_ipis);
    }
    rec.counter(mt, "events.queued", machine.ctx().queue().size());
    rec.counter(mt, "mem.free_frames", machine.mem().freeFrames());

    pmap::ShootdownController &shoot = kernel_.pmaps().shoot();
    for (CpuId id = 0; id < machine.ncpus(); ++id) {
        kern::Cpu &cpu = machine.cpu(id);
        const TrackId track = rec.cpuTrack(id);
        const hw::Tlb &tlb = cpu.tlb();
        const std::uint64_t lookups = tlb.hits + tlb.misses;
        rec.counter(track, cpuCounterName("tlb_hit_pct", id),
                    lookups == 0 ? 100 : tlb.hits * 100 / lookups);
        rec.counter(track, cpuCounterName("shoot_q", id),
                    shoot.stateFor(id).queue.size());
        rec.counter(track, cpuCounterName("state", id),
                    cpu.idle ? 0 : (cpu.active ? 2 : 1));
    }
}

} // namespace mach::obs
