#include "vm/vm_object.hh"

#include "base/logging.hh"

namespace mach::vm
{

std::atomic<std::uint64_t> VmObject::next_id_{1};

ObjectPtr
VmObject::create(hw::PhysMem *mem, std::uint32_t size_pages)
{
    auto object = ObjectPtr(new VmObject());
    object->mem_ = mem;
    object->id_ = next_id_.fetch_add(1, std::memory_order_relaxed);
    object->size_pages_ = size_pages;
    return object;
}

ObjectPtr
VmObject::makeShadow(ObjectPtr backing, std::uint32_t backing_offset,
                     std::uint32_t size_pages)
{
    MACH_ASSERT(backing != nullptr);
    ObjectPtr object = create(backing->mem_, size_pages);
    object->shadow_ = std::move(backing);
    object->shadow_offset_ = backing_offset;
    return object;
}

VmObject::~VmObject()
{
    if (mem_ == nullptr)
        return;
    for (const auto &[offset, page] : pages_)
        mem_->freeFrame(page.pfn);
}

VmPage *
VmObject::lookupLocal(std::uint32_t offset)
{
    auto it = pages_.find(offset);
    return it == pages_.end() ? nullptr : &it->second;
}

PageLookup
VmObject::lookupChain(std::uint32_t offset)
{
    PageLookup result;
    VmObject *object = this;
    std::uint32_t off = offset;
    unsigned depth = 0;
    while (object != nullptr) {
        if (VmPage *page = object->lookupLocal(off)) {
            result.object = object;
            result.page = page;
            result.depth = depth;
            return result;
        }
        off += object->shadow_offset_;
        object = object->shadow_.get();
        ++depth;
    }
    return result;
}

VmPage *
VmObject::insertPage(std::uint32_t offset, Pfn pfn)
{
    MACH_ASSERT(pages_.find(offset) == pages_.end());
    VmPage page;
    page.pfn = pfn;
    auto [it, inserted] = pages_.emplace(offset, page);
    MACH_ASSERT(inserted);
    return &it->second;
}

void
VmObject::removePage(std::uint32_t offset)
{
    const auto erased = pages_.erase(offset);
    MACH_ASSERT(erased == 1);
}

unsigned
VmObject::chainDepth() const
{
    unsigned depth = 0;
    const VmObject *object = shadow_.get();
    while (object != nullptr) {
        ++depth;
        object = object->shadow_.get();
    }
    return depth;
}

} // namespace mach::vm
