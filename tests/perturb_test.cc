/**
 * @file
 * Unit tests for the schedule-perturbation directives: the text
 * format round-trip, directive merging, and the event-queue / bus
 * integration that realizes the delays.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/perturb.hh"
#include "hw/bus.hh"
#include "sim/event_queue.hh"

namespace
{

using namespace mach;

TEST(Perturb, EmptyFormatsToEmptyString)
{
    SchedulePerturber p;
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.format(), "");
}

TEST(Perturb, FormatParseRoundTrip)
{
    SchedulePerturber p;
    p.delayEvent(1204, 48000);
    p.delayBusAccess(77, 9000);
    p.delayEvent(3, 120000);
    const std::string text = p.format();

    SchedulePerturber q;
    std::string error;
    ASSERT_TRUE(SchedulePerturber::parse(text, &q, &error)) << error;
    EXPECT_EQ(q.format(), text);
    EXPECT_EQ(q.items(), p.items());
}

TEST(Perturb, CanonicalOrderIsEventsThenBusByIndex)
{
    SchedulePerturber p;
    p.delayBusAccess(5, 100);
    p.delayEvent(9, 100);
    p.delayEvent(2, 100);
    EXPECT_EQ(p.format(), "e2+100,e9+100,b5+100");
}

TEST(Perturb, RepeatedDirectivesAccumulate)
{
    SchedulePerturber p;
    p.delayEvent(7, 100);
    p.delayEvent(7, 150);
    EXPECT_EQ(p.eventDelay(7), 250u);
    EXPECT_EQ(p.size(), 1u);
}

TEST(Perturb, ZeroDelayIsDropped)
{
    SchedulePerturber p;
    p.delayEvent(7, 0);
    p.delayBusAccess(7, 0);
    EXPECT_TRUE(p.empty());
}

TEST(Perturb, ParseRejectsMalformedInput)
{
    for (const char *bad :
         {"x7+100", "e7", "e7+", "e+100", "e7+0", "e7+100,,e8+1",
          "e7*100", "7+100", "e7+100junk"}) {
        SchedulePerturber p;
        std::string error;
        EXPECT_FALSE(SchedulePerturber::parse(bad, &p, &error))
            << "accepted: " << bad;
        EXPECT_TRUE(p.empty()) << "out modified by: " << bad;
    }
}

TEST(Perturb, ParseEmptyStringYieldsEmptyPerturbation)
{
    SchedulePerturber p;
    p.delayEvent(1, 1); // must be cleared by a successful parse
    ASSERT_TRUE(SchedulePerturber::parse("", &p, nullptr));
    EXPECT_TRUE(p.empty());
}

TEST(Perturb, FromItemsMatchesItems)
{
    SchedulePerturber p;
    p.delayEvent(11, 300);
    p.delayBusAccess(4, 200);
    SchedulePerturber q = SchedulePerturber::fromItems(p.items());
    EXPECT_EQ(q.format(), p.format());
}

/** A delayed event fires after an undelayed same-time neighbour. */
TEST(Perturb, EventQueueAppliesDelayAndReorders)
{
    SchedulePerturber p;
    p.delayEvent(1, 50); // first scheduled event slips by 50 ticks

    sim::EventQueue q;
    q.setPerturber(&p);
    std::vector<int> order;
    q.schedule(100, [&] { order.push_back(1); });
    q.schedule(100, [&] { order.push_back(2); });

    Tick when = 0;
    auto first = q.popFront(&when);
    first();
    EXPECT_EQ(when, 100u);
    auto second = q.popFront(&when);
    second();
    EXPECT_EQ(when, 150u);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 2); // undelayed event now runs first
    EXPECT_EQ(order[1], 1);
}

/** Without a perturber the same program keeps insertion order. */
TEST(Perturb, EventQueueUnperturbedKeepsInsertionOrder)
{
    sim::EventQueue q;
    std::vector<int> order;
    q.schedule(100, [&] { order.push_back(1); });
    q.schedule(100, [&] { order.push_back(2); });
    Tick when = 0;
    q.popFront(&when)();
    q.popFront(&when)();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

/** Bus access delays stretch the cost of exactly the named access. */
TEST(Perturb, BusAppliesDelayToNamedAccess)
{
    hw::MachineConfig config;
    config.mem_jitter = 0; // deterministic base cost
    hw::Bus bus(&config);

    const Tick base = bus.accessCost();
    EXPECT_EQ(bus.accessCount(), 1u);

    SchedulePerturber p;
    p.delayBusAccess(3, 777);
    bus.setPerturber(&p);
    const Tick second = bus.accessCost(); // access #2: unperturbed
    const Tick third = bus.accessCost();  // access #3: stretched
    EXPECT_EQ(second, base);
    EXPECT_EQ(third, base + 777);
}

} // namespace
