/**
 * @file
 * Two-level page tables in the style of the NS32382 MMU.
 *
 * A 32-bit virtual address splits 10/10/12: the top 10 bits index a root
 * table of 1024 entries, the next 10 bits index a page-sized leaf table
 * of 1024 PTEs, and the low 12 bits are the page offset. Leaf tables are
 * allocated on demand in page-sized chunks; the pmap module exploits this
 * structure for its residual lazy evaluation ("if the pmap module ever
 * finds a missing second level page table entry, it knows that an entire
 * page of second level entries is missing", Section 7.2).
 *
 * Both table levels live in simulated physical memory, so the TLB's
 * hardware reload and reference/modify-bit writeback operate on the very
 * same words the pmap module updates -- faithfully reproducing the races
 * of Section 3.
 *
 * Host-speed note: walk() and pteAddr() go through a small positive-only
 * walk cache mapping (node, root index) -> leaf-table base address, so
 * the root-level PhysMem read is skipped on the host once a leaf is
 * known. The simulated cost is untouched (WalkResult.memory_reads still
 * counts both levels) and so is visibility: the cache holds only the
 * leaf's *location*, never PTE contents, and a valid root entry's leaf
 * pointer changes only when collect() frees it -- the one place the
 * cache is cleared. Revocations and protection changes rewrite leaf
 * words, which every cached walk still reads from memory.
 */

#ifndef MACH_HW_PAGE_TABLE_HH
#define MACH_HW_PAGE_TABLE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/types.hh"
#include "hw/phys_mem.hh"

namespace mach::hw
{

/** PTE bit layout (32-bit entries at both levels). */
namespace pte
{
constexpr std::uint32_t kValid = 1u << 0;
constexpr std::uint32_t kWrite = 1u << 1;
constexpr std::uint32_t kRef = 1u << 2;
constexpr std::uint32_t kMod = 1u << 3;
constexpr std::uint32_t kPfnShift = kPageShift;

constexpr std::uint32_t
make(Pfn pfn, Prot prot, bool ref = false, bool mod = false)
{
    std::uint32_t v = (pfn << kPfnShift) | kValid;
    if (protAllows(prot, ProtWrite))
        v |= kWrite;
    if (ref)
        v |= kRef;
    if (mod)
        v |= kMod;
    return v;
}

constexpr bool valid(std::uint32_t v) { return (v & kValid) != 0; }
constexpr bool writable(std::uint32_t v) { return (v & kWrite) != 0; }
constexpr bool referenced(std::uint32_t v) { return (v & kRef) != 0; }
constexpr bool modified(std::uint32_t v) { return (v & kMod) != 0; }
constexpr Pfn pfn(std::uint32_t v) { return v >> kPfnShift; }

constexpr Prot
prot(std::uint32_t v)
{
    if (!valid(v))
        return ProtNone;
    return writable(v) ? ProtReadWrite : ProtRead;
}
} // namespace pte

/** Result of a hardware page-table walk. */
struct WalkResult
{
    std::uint32_t pte = 0;       ///< Leaf PTE value (0 if none).
    unsigned memory_reads = 0;   ///< Accesses performed by the walker.
    bool leaf_present = false;   ///< Second-level table existed.
};

/** One pmap's two-level page table. */
class PageTable
{
  public:
    static constexpr unsigned kEntriesPerTable = kPageSize / 4;
    /** Pages of VA space covered by one leaf table. */
    static constexpr unsigned kPagesPerLeaf = kEntriesPerTable;

    explicit PageTable(PhysMem *mem);
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /** Physical address of the root table (for diagnostics). */
    PAddr rootAddr() const;

    // ---- numaPTE-style per-node replicas ----------------------------

    /**
     * Give every NUMA node its own full copy of this table (node 0
     * keeps the primary). Replica roots and leaves are allocated from
     * the owning node's memory partition, so a node's walks (and its
     * ref/mod writebacks) stay node-local; writePte fans out to every
     * replica under the pmap lock. Call before any PTE is written.
     */
    void enableReplicas(unsigned nodes);

    unsigned replicas() const
    {
        return static_cast<unsigned>(replica_roots_.size()) + 1;
    }

    /**
     * TEST ONLY -- defer replica fan-out: writePte updates only the
     * primary and records the write; replicas catch up at the next
     * syncReplicas(). The planted bug behind
     * MachineConfig::chk_defer_replica_sync.
     */
    void setDeferredSync(bool on) { deferred_sync_ = on; }
    bool deferredSyncPending() const { return !pending_.empty(); }
    /** Apply deferred writes to the replicas. */
    void syncReplicas();

    /**
     * Compare every replica against the primary over [start, end),
     * ignoring the per-node ref/mod bits. Returns human-readable
     * divergence descriptions (empty = coherent); meaningful only at
     * quiescent points, like the TLB audit.
     */
    std::vector<std::string> replicaDivergence(Vpn start,
                                               Vpn end) const;

    /**
     * Hardware walk as the MMU performs it: read root entry, then leaf
     * PTE. Never allocates; returns pte = 0 when any level is missing.
     * @p node selects the walking processor's replica (0 = primary;
     * ignored unless replicas are enabled).
     */
    WalkResult walk(Vpn vpn, unsigned node = 0) const;

    /** True when the leaf table covering @p vpn exists. */
    bool leafPresent(Vpn vpn) const;

    /**
     * Read the PTE for @p vpn; 0 when unmapped (missing levels read as
     * invalid, matching hardware). With replicas enabled the ref/mod
     * bits of every replica are OR-merged in, since each node's
     * hardware writes them back into its own copy.
     */
    std::uint32_t readPte(Vpn vpn) const;

    /**
     * Write the PTE for @p vpn, allocating the leaf table on demand.
     * Writing 0 (invalid) never allocates. Fans out to every replica
     * (immediately, or at the next syncReplicas() in deferred mode).
     */
    void writePte(Vpn vpn, std::uint32_t value);

    /**
     * Physical address of the PTE word for @p vpn in @p node's replica
     * (0 = primary); 0 if the leaf is missing.
     */
    PAddr pteAddr(Vpn vpn, unsigned node = 0) const;

    /**
     * Invoke @p fn for every valid PTE with vpn in [start, end),
     * skipping whole missing leaf tables (the residual lazy-evaluation
     * structure knowledge). @p fn may rewrite the PTE via writePte.
     */
    void forEachValid(Vpn start, Vpn end,
                      const std::function<void(Vpn,
                                               std::uint32_t)> &fn) const;

    /** Count of valid PTEs in [start, end) (skips missing leaves). */
    unsigned countValid(Vpn start, Vpn end) const;

    /**
     * Free all leaf tables, invalidating every mapping. The pmap can be
     * reconstructed from scratch by subsequent page faults (Section 2).
     */
    void collect();

    /** Number of leaf tables currently allocated. */
    unsigned leafCount() const { return leaf_count_; }

    /**
     * Enable/disable the host-side walk cache (machsim --no-l0 turns
     * it off to prove timing-neutrality). Disabling clears it.
     */
    void setWalkCache(bool on);

    /** Walk-cache traffic (host-side only, for the perf benches). */
    std::uint64_t walkCacheHits() const { return walk_cache_hits_; }
    std::uint64_t walkCacheMisses() const { return walk_cache_misses_; }

  private:
    /** One walk-cache line: (node, root index) -> leaf base PAddr. */
    struct WalkCacheLine
    {
        /** (node << 32) | root index; kNoWalkKey marks empty. */
        std::uint64_t key;
        PAddr leaf_base;
    };
    static constexpr unsigned kWalkCacheLines = 8;
    static constexpr std::uint64_t kNoWalkKey = ~std::uint64_t{0};

    /**
     * Leaf-table base for @p node's replica at @p root_index, through
     * the walk cache; 0 when the root entry is invalid (never cached,
     * so invalid->valid transitions need no cache maintenance).
     */
    PAddr leafBase(unsigned node, unsigned root_index) const;
    /** Drop every walk-cache line (collect paths). */
    void walkCacheClear() const;

    std::uint32_t rootEntry(Vpn vpn) const;
    /** Root frame of @p node's replica (node 0 = the primary). */
    Pfn rootOf(unsigned node) const
    {
        return node == 0 ? root_pfn_ : replica_roots_[node - 1];
    }
    /** Write @p value into one replica, allocating its leaf on demand. */
    void replicaWrite(unsigned node, Vpn vpn, std::uint32_t value);
    /** Free every leaf of one replica and zero its root. */
    void collectReplica(unsigned node);

    PhysMem *mem_;
    Pfn root_pfn_;
    unsigned leaf_count_ = 0;
    /** Replica root frames for nodes 1..N-1 (empty = no replication). */
    std::vector<Pfn> replica_roots_;
    bool deferred_sync_ = false;
    /** Writes awaiting replica fan-out (deferred mode only). */
    std::vector<std::pair<Vpn, std::uint32_t>> pending_;

    // Walk cache (mutable: walk()/pteAddr() are const observers of the
    // simulated state; the cache is host-side bookkeeping).
    bool walk_cache_enabled_ = true;
    mutable WalkCacheLine walk_cache_[kWalkCacheLines];
    mutable unsigned walk_cache_fill_ = 0;
    mutable std::uint64_t walk_cache_hits_ = 0;
    mutable std::uint64_t walk_cache_misses_ = 0;
};

} // namespace mach::hw

#endif // MACH_HW_PAGE_TABLE_HH
