/**
 * @file
 * Failure-triggered flight recording: when the explorer catches the
 * planted protocol bug (responders skip the phase-2 stall), the
 * minimized reproducer's replay must ship with a timeline -- a
 * Chrome Trace Event JSON capture of the failing run's recent events,
 * with the responder's ISR span in it -- and recording must not change
 * what the trial observes (digest included).
 */

#include <gtest/gtest.h>

#include <string>

#include "base/perturb.hh"
#include "chk/explorer.hh"
#include "chk/scenario.hh"

namespace
{

using namespace mach;

TEST(FlightRecorder, RecordedTrialMatchesUnrecordedDigest)
{
    // Recording charges no simulated time by default, so a recorded
    // trial is the same trial: same digest, same end time. This is
    // what lets the explorer re-run the minimized schedule with the
    // recorder on and still claim it replayed the failure bit-exactly.
    const std::vector<chk::Scenario> library = chk::builtinScenarios();
    const chk::Scenario *storm =
        chk::findScenario(library, "storm-baseline");
    ASSERT_NE(storm, nullptr);

    SchedulePerturber p;
    ASSERT_TRUE(
        SchedulePerturber::parse("e120+50000,b40+9000", &p, nullptr));

    chk::Explorer explorer;
    const chk::TrialResult plain = explorer.runTrial(*storm, p);
    std::string full_json;
    const chk::TrialResult recorded =
        explorer.runTrialRecorded(*storm, p, &full_json);
    EXPECT_EQ(plain.digest, recorded.digest);
    EXPECT_EQ(plain.end_time, recorded.end_time);
    EXPECT_EQ(plain.events_fired, recorded.events_fired);
    EXPECT_NE(full_json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(full_json.find("\"shoot.initiate\""), std::string::npos);

    // Ring mode keeps only the tail but is still a valid capture of
    // the same run.
    std::string ring_json;
    const chk::TrialResult ringed =
        explorer.runTrialRecorded(*storm, p, &ring_json, 256);
    EXPECT_EQ(plain.digest, ringed.digest);
    EXPECT_NE(ring_json.find("\"traceEvents\""), std::string::npos);
    EXPECT_LT(ring_json.size(), full_json.size());
}

TEST(FlightRecorder, PlantedBugShipsWithTimeline)
{
    const chk::Scenario broken = chk::brokenStallScenario();
    chk::Explorer explorer;
    const chk::ExploreResult res = explorer.explore(broken);

    ASSERT_TRUE(res.foundFailure())
        << "explorer missed the planted protocol bug";
    ASSERT_GT(res.failures, 0u);

    // The minimized reproducer's replay carries its flight trace.
    ASSERT_FALSE(res.flight_trace_json.empty());
    EXPECT_NE(res.flight_trace_json.find("\"traceEvents\""),
              std::string::npos);
    // The responder side of the protocol -- where the planted bug
    // lives -- is visible in the timeline: the shootdown ISR span.
    EXPECT_NE(res.flight_trace_json.find("\"shoot.respond\""),
              std::string::npos);
    EXPECT_NE(res.flight_trace_json.find("\"irq.shootdown\""),
              std::string::npos);
    // And the recorded replay still failed (digest-neutral recording).
    EXPECT_TRUE(res.minimized_result.failed());
}

} // namespace
