/**
 * @file
 * Unit tests for the hardware models: physical memory, page tables,
 * TLBs, the bus contention model, and the interrupt controller.
 */

#include <gtest/gtest.h>

#include <memory>

#include "hw/bus.hh"
#include "hw/intr.hh"
#include "hw/machine_config.hh"
#include "hw/page_table.hh"
#include "hw/phys_mem.hh"
#include "hw/tlb.hh"

namespace mach::hw
{
namespace
{

// ---------------------------------------------------------------------
// PhysMem
// ---------------------------------------------------------------------

TEST(PhysMem, AllocatesDistinctFrames)
{
    PhysMem mem(64);
    const Pfn a = mem.allocFrame();
    const Pfn b = mem.allocFrame();
    EXPECT_NE(a, b);
    EXPECT_TRUE(mem.validPfn(a));
    EXPECT_TRUE(mem.validPfn(b));
    EXPECT_EQ(mem.freeFrames(), 61u); // 63 allocatable - 2.
}

TEST(PhysMem, FrameZeroIsReserved)
{
    PhysMem mem(64);
    for (std::uint32_t i = 0; i < 63; ++i)
        EXPECT_NE(mem.allocFrame(), 0u);
    EXPECT_EQ(mem.freeFrames(), 0u);
}

TEST(PhysMem, FreedFramesAreReusable)
{
    PhysMem mem(8);
    std::vector<Pfn> frames;
    for (int i = 0; i < 7; ++i)
        frames.push_back(mem.allocFrame());
    for (Pfn f : frames)
        mem.freeFrame(f);
    EXPECT_EQ(mem.freeFrames(), 7u);
    for (int i = 0; i < 7; ++i)
        mem.allocFrame();
}

TEST(PhysMem, ReadWrite32)
{
    PhysMem mem(16);
    const Pfn f = mem.allocFrame();
    const PAddr base = f << kPageShift;
    mem.write32(base + 8, 0xdeadbeef);
    EXPECT_EQ(mem.read32(base + 8), 0xdeadbeefu);
    EXPECT_EQ(mem.read32(base + 12), 0u); // Fresh frames read zero.
}

TEST(PhysMem, ByteAccess)
{
    PhysMem mem(16);
    const Pfn f = mem.allocFrame();
    const PAddr base = f << kPageShift;
    mem.write8(base + 1, 0xab);
    EXPECT_EQ(mem.read8(base + 1), 0xab);
    EXPECT_EQ(mem.read8(base), 0x00);
}

TEST(PhysMem, CopyFrameDuplicatesContents)
{
    PhysMem mem(16);
    const Pfn src = mem.allocFrame();
    const Pfn dst = mem.allocFrame();
    for (std::uint32_t i = 0; i < kPageSize; i += 4)
        mem.write32((src << kPageShift) + i, i * 3 + 1);
    mem.copyFrame(dst, src);
    for (std::uint32_t i = 0; i < kPageSize; i += 4)
        ASSERT_EQ(mem.read32((dst << kPageShift) + i), i * 3 + 1);
}

TEST(PhysMem, ReallocatedFrameIsZeroed)
{
    PhysMem mem(4);
    const Pfn f = mem.allocFrame();
    mem.write32(f << kPageShift, 0x1234);
    mem.freeFrame(f);
    Pfn g;
    do {
        g = mem.allocFrame();
    } while (g != f && mem.freeFrames() > 0);
    ASSERT_EQ(g, f);
    EXPECT_EQ(mem.read32(g << kPageShift), 0u);
}

// ---------------------------------------------------------------------
// PTE helpers
// ---------------------------------------------------------------------

TEST(Pte, RoundTripFields)
{
    const std::uint32_t entry = pte::make(0x123, ProtReadWrite, true,
                                          false);
    EXPECT_TRUE(pte::valid(entry));
    EXPECT_TRUE(pte::writable(entry));
    EXPECT_TRUE(pte::referenced(entry));
    EXPECT_FALSE(pte::modified(entry));
    EXPECT_EQ(pte::pfn(entry), 0x123u);
    EXPECT_EQ(pte::prot(entry), ProtReadWrite);
}

TEST(Pte, ReadOnlyAndInvalid)
{
    const std::uint32_t ro = pte::make(7, ProtRead);
    EXPECT_EQ(pte::prot(ro), ProtRead);
    EXPECT_FALSE(pte::writable(ro));
    EXPECT_EQ(pte::prot(0), ProtNone);
    EXPECT_FALSE(pte::valid(0));
}

// ---------------------------------------------------------------------
// PageTable
// ---------------------------------------------------------------------

TEST(PageTable, EmptyWalkMissesWithOneRead)
{
    PhysMem mem(128);
    PageTable table(&mem);
    const WalkResult walk = table.walk(0x400);
    EXPECT_FALSE(pte::valid(walk.pte));
    EXPECT_FALSE(walk.leaf_present);
    EXPECT_EQ(walk.memory_reads, 1u);
}

TEST(PageTable, WriteThenWalk)
{
    PhysMem mem(128);
    PageTable table(&mem);
    table.writePte(0x400, pte::make(9, ProtRead));
    const WalkResult walk = table.walk(0x400);
    EXPECT_TRUE(pte::valid(walk.pte));
    EXPECT_TRUE(walk.leaf_present);
    EXPECT_EQ(walk.memory_reads, 2u);
    EXPECT_EQ(pte::pfn(walk.pte), 9u);
}

TEST(PageTable, LeafAllocatedOnDemandOnly)
{
    PhysMem mem(128);
    PageTable table(&mem);
    EXPECT_EQ(table.leafCount(), 0u);
    table.writePte(0, pte::make(1, ProtRead));
    EXPECT_EQ(table.leafCount(), 1u);
    // Same leaf (vpns 0..1023 share it).
    table.writePte(1023, pte::make(2, ProtRead));
    EXPECT_EQ(table.leafCount(), 1u);
    // Next leaf.
    table.writePte(1024, pte::make(3, ProtRead));
    EXPECT_EQ(table.leafCount(), 2u);
}

TEST(PageTable, InvalidatingUnmappedDoesNotAllocate)
{
    PhysMem mem(128);
    PageTable table(&mem);
    table.writePte(0x12345, 0);
    EXPECT_EQ(table.leafCount(), 0u);
}

TEST(PageTable, ForEachValidSkipsMissingLeaves)
{
    PhysMem mem(128);
    PageTable table(&mem);
    table.writePte(10, pte::make(1, ProtRead));
    table.writePte(5000, pte::make(2, ProtRead));

    std::vector<Vpn> seen;
    table.forEachValid(0, 8192,
                       [&](Vpn vpn, std::uint32_t) { seen.push_back(vpn); });
    EXPECT_EQ(seen, (std::vector<Vpn>{10, 5000}));
}

TEST(PageTable, ForEachValidRespectsRange)
{
    PhysMem mem(128);
    PageTable table(&mem);
    for (Vpn v = 8; v < 16; ++v)
        table.writePte(v, pte::make(v, ProtRead));
    EXPECT_EQ(table.countValid(10, 14), 4u);
    EXPECT_EQ(table.countValid(0, 8), 0u);
    EXPECT_EQ(table.countValid(8, 16), 8u);
}

TEST(PageTable, CollectFreesLeavesAndInvalidatesAll)
{
    PhysMem mem(128);
    PageTable table(&mem);
    const std::uint32_t before = mem.freeFrames();
    table.writePte(0, pte::make(1, ProtRead));
    table.writePte(2048, pte::make(2, ProtRead));
    EXPECT_EQ(mem.freeFrames(), before - 2);
    table.collect();
    EXPECT_EQ(mem.freeFrames(), before);
    EXPECT_EQ(table.countValid(0, 4096), 0u);
    // Usable again afterwards.
    table.writePte(7, pte::make(3, ProtRead));
    EXPECT_EQ(table.countValid(0, 1024), 1u);
}

TEST(PageTable, PteAddrMatchesWalk)
{
    PhysMem mem(128);
    PageTable table(&mem);
    EXPECT_EQ(table.pteAddr(66), 0u);
    table.writePte(66, pte::make(4, ProtReadWrite));
    const PAddr addr = table.pteAddr(66);
    ASSERT_NE(addr, 0u);
    EXPECT_EQ(mem.read32(addr), table.readPte(66));
    // Writing through the raw address is what TLB writeback does.
    mem.write32(addr, pte::make(4, ProtReadWrite, true, true));
    EXPECT_TRUE(pte::modified(table.readPte(66)));
}

// ---------------------------------------------------------------------
// PageTable walk cache (host-side; simulated costs must not change)
// ---------------------------------------------------------------------

TEST(WalkCache, CachesLeafBaseWithoutChangingResults)
{
    PhysMem mem(128);
    PageTable table(&mem);
    table.writePte(0x400, pte::make(9, ProtRead));
    const WalkResult first = table.walk(0x400);
    const WalkResult second = table.walk(0x400);
    EXPECT_GT(table.walkCacheHits(), 0u);
    EXPECT_EQ(first.pte, second.pte);
    EXPECT_EQ(first.leaf_present, second.leaf_present);
    // The simulated cost is still two level reads on a cached walk.
    EXPECT_EQ(second.memory_reads, 2u);
}

TEST(WalkCache, PteRewriteIsVisibleThroughCachedLeaf)
{
    // Only the root->leaf pointer is cached; the PTE itself is read
    // from memory every walk, so a revocation on the same leaf is
    // visible immediately with no cache maintenance.
    PhysMem mem(128);
    PageTable table(&mem);
    table.writePte(7, pte::make(4, ProtReadWrite));
    EXPECT_TRUE(pte::valid(table.walk(7).pte));
    table.writePte(7, 0);
    const WalkResult after = table.walk(7);
    EXPECT_TRUE(after.leaf_present);
    EXPECT_FALSE(pte::valid(after.pte));
}

TEST(WalkCache, CollectInvalidatesCachedLeaves)
{
    PhysMem mem(128);
    PageTable table(&mem);
    table.writePte(3, pte::make(5, ProtRead));
    EXPECT_TRUE(pte::valid(table.walk(3).pte));
    table.collect();
    // The freed leaf must not be served from the cache: the walk sees
    // the now-invalid root and charges only the single root read.
    const WalkResult after = table.walk(3);
    EXPECT_FALSE(after.leaf_present);
    EXPECT_EQ(after.memory_reads, 1u);
    // Faulted back in afterwards, walks resolve the new leaf.
    table.writePte(3, pte::make(6, ProtRead));
    EXPECT_EQ(pte::pfn(table.walk(3).pte), 6u);
}

TEST(WalkCache, DisabledCacheCountsNothingAndAgrees)
{
    PhysMem mem(128);
    PageTable cached(&mem);
    PageTable plain(&mem);
    plain.setWalkCache(false);
    for (Vpn v = 0; v < 64; v += 3) {
        cached.writePte(v, pte::make(v % 50 + 1, ProtRead));
        plain.writePte(v, pte::make(v % 50 + 1, ProtRead));
    }
    for (Vpn v = 0; v < 64; ++v) {
        const WalkResult a = cached.walk(v);
        const WalkResult b = plain.walk(v);
        EXPECT_EQ(a.pte, b.pte) << "vpn " << v;
        EXPECT_EQ(a.memory_reads, b.memory_reads) << "vpn " << v;
    }
    EXPECT_EQ(plain.walkCacheHits(), 0u);
    EXPECT_EQ(plain.walkCacheMisses(), 0u);
}

TEST(WalkCache, ReplicaWalksAreCachedPerNode)
{
    PhysMem mem(128, 2);
    PageTable table(&mem);
    table.enableReplicas(2);
    table.writePte(12, pte::make(8, ProtRead));
    // Both nodes' walks resolve (and cache) their own roots.
    EXPECT_EQ(pte::pfn(table.walk(12, 0).pte), 8u);
    EXPECT_EQ(pte::pfn(table.walk(12, 1).pte), 8u);
    EXPECT_GT(table.walkCacheMisses(), 1u); // One cold walk per node.
    // collect() frees primary and replica leaves alike; no node's walk
    // may be served from a cached pointer to a freed leaf.
    table.collect();
    EXPECT_FALSE(table.walk(12, 0).leaf_present);
    EXPECT_FALSE(table.walk(12, 1).leaf_present);
    // Fault the mapping back in: both nodes resolve the new leaves.
    table.writePte(12, pte::make(9, ProtRead));
    EXPECT_EQ(pte::pfn(table.walk(12, 0).pte), 9u);
    EXPECT_EQ(pte::pfn(table.walk(12, 1).pte), 9u);
}

// ---------------------------------------------------------------------
// Tlb
// ---------------------------------------------------------------------

struct TlbFixture : public ::testing::Test
{
    TlbFixture() : mem(256), tlb(&config, &mem) {}

    MachineConfig config;
    PhysMem mem;
    Tlb tlb;
};

TEST_F(TlbFixture, MissThenHit)
{
    EXPECT_FALSE(tlb.lookup(1, 5, ProtRead, 0).hit);
    tlb.insert(1, 5, 42, ProtRead, false);
    const TlbLookup hit = tlb.lookup(1, 5, ProtRead, 0);
    EXPECT_TRUE(hit.hit);
    EXPECT_TRUE(hit.prot_ok);
    EXPECT_EQ(hit.pfn, 42u);
}

TEST_F(TlbFixture, SpacesAreIsolated)
{
    tlb.insert(1, 5, 42, ProtRead, false);
    EXPECT_FALSE(tlb.lookup(2, 5, ProtRead, 0).hit);
}

TEST_F(TlbFixture, ProtectionInsufficientIsFlagged)
{
    tlb.insert(1, 5, 42, ProtRead, false);
    const TlbLookup look = tlb.lookup(1, 5, ProtWrite, 0);
    EXPECT_TRUE(look.hit);
    EXPECT_FALSE(look.prot_ok);
}

TEST_F(TlbFixture, WriteHitPerformsRefModWriteback)
{
    // Build a PTE in memory, cache it, then write through the entry:
    // the TLB must write its image of the entry back to memory with
    // ref/mod set -- the Section 3 hazard.
    const Pfn leaf = mem.allocFrame();
    const PAddr pte_addr = leaf << kPageShift;
    mem.write32(pte_addr, pte::make(42, ProtReadWrite));

    tlb.insert(1, 5, 42, ProtReadWrite, false);
    const TlbLookup look = tlb.lookup(1, 5, ProtWrite, pte_addr);
    EXPECT_TRUE(look.did_writeback);
    const std::uint32_t after = mem.read32(pte_addr);
    EXPECT_TRUE(pte::referenced(after));
    EXPECT_TRUE(pte::modified(after));

    // Second write: mod already set, no further writeback.
    EXPECT_FALSE(tlb.lookup(1, 5, ProtWrite, pte_addr).did_writeback);
}

TEST_F(TlbFixture, WritebackClobbersConcurrentPteChange)
{
    // The corruption scenario: the PTE is invalidated in memory, but a
    // stale cached entry's writeback blindly rewrites it.
    const Pfn leaf = mem.allocFrame();
    const PAddr pte_addr = leaf << kPageShift;
    mem.write32(pte_addr, pte::make(42, ProtReadWrite));
    tlb.insert(1, 5, 42, ProtReadWrite, false);

    mem.write32(pte_addr, 0); // pmap invalidates the mapping...
    tlb.lookup(1, 5, ProtWrite, pte_addr); // ...writeback resurrects it.
    EXPECT_TRUE(pte::valid(mem.read32(pte_addr)));
}

TEST_F(TlbFixture, InterlockedWritebackPreservesConcurrentChange)
{
    // MC88200-style interlocked ref/mod update: the hardware re-reads
    // the PTE and ORs the bits in, so a concurrent protection change
    // survives and a revoked mapping faults instead of resurrecting.
    config.tlb_interlocked_refmod = true;
    const Pfn leaf = mem.allocFrame();
    const PAddr pte_addr = leaf << kPageShift;
    mem.write32(pte_addr, pte::make(42, ProtReadWrite));
    tlb.insert(1, 5, 42, ProtReadWrite, false);

    // Concurrent pmap invalidation...
    mem.write32(pte_addr, 0);
    const TlbLookup look = tlb.lookup(1, 5, ProtWrite, pte_addr);
    // ...makes the access fault rather than corrupting the PTE.
    EXPECT_FALSE(look.hit);
    EXPECT_FALSE(pte::valid(mem.read32(pte_addr)));
    // The stale entry was dropped.
    EXPECT_FALSE(tlb.cachesMapping(1, 5, ProtRead));
}

TEST_F(TlbFixture, InterlockedWritebackSetsBitsOnValidMapping)
{
    config.tlb_interlocked_refmod = true;
    const Pfn leaf = mem.allocFrame();
    const PAddr pte_addr = leaf << kPageShift;
    mem.write32(pte_addr, pte::make(42, ProtReadWrite));
    tlb.insert(1, 5, 42, ProtReadWrite, false);

    const TlbLookup look = tlb.lookup(1, 5, ProtWrite, pte_addr);
    EXPECT_TRUE(look.hit);
    EXPECT_TRUE(look.did_writeback);
    const std::uint32_t after = mem.read32(pte_addr);
    EXPECT_TRUE(pte::referenced(after));
    EXPECT_TRUE(pte::modified(after));
    EXPECT_TRUE(pte::valid(after));
}

TEST_F(TlbFixture, InterlockedWritebackFaultsOnDowngrade)
{
    // The critical case from the paper's footnote: setting the modify
    // bit for a cached mapping whose PTE no longer permits writes must
    // fault, not OR bits into a read-only PTE.
    config.tlb_interlocked_refmod = true;
    const Pfn leaf = mem.allocFrame();
    const PAddr pte_addr = leaf << kPageShift;
    mem.write32(pte_addr, pte::make(42, ProtReadWrite));
    tlb.insert(1, 5, 42, ProtReadWrite, false);

    mem.write32(pte_addr, pte::make(42, ProtRead)); // Downgraded.
    const TlbLookup look = tlb.lookup(1, 5, ProtWrite, pte_addr);
    EXPECT_FALSE(look.hit);
    EXPECT_FALSE(pte::modified(mem.read32(pte_addr)));
}

TEST_F(TlbFixture, NoWritebackOptionSuppressesHazard)
{
    config.tlb_no_refmod_writeback = true;
    const Pfn leaf = mem.allocFrame();
    const PAddr pte_addr = leaf << kPageShift;
    mem.write32(pte_addr, pte::make(42, ProtReadWrite));
    tlb.insert(1, 5, 42, ProtReadWrite, false);
    mem.write32(pte_addr, 0);
    tlb.lookup(1, 5, ProtWrite, pte_addr);
    EXPECT_FALSE(pte::valid(mem.read32(pte_addr)));
}

TEST_F(TlbFixture, InvalidatePage)
{
    tlb.insert(1, 5, 42, ProtRead, false);
    tlb.invalidatePage(1, 5);
    EXPECT_FALSE(tlb.lookup(1, 5, ProtRead, 0).hit);
    EXPECT_EQ(tlb.single_invalidates, 1u);
}

TEST_F(TlbFixture, InvalidateRange)
{
    for (Vpn v = 0; v < 10; ++v)
        tlb.insert(1, v, v + 1, ProtRead, false);
    tlb.invalidateRange(1, 3, 7);
    for (Vpn v = 0; v < 10; ++v) {
        const bool expect_hit = v < 3 || v >= 7;
        EXPECT_EQ(tlb.lookup(1, v, ProtRead, 0).hit, expect_hit)
            << "vpn " << v;
    }
}

TEST_F(TlbFixture, FlushSpaceLeavesOtherSpaces)
{
    tlb.insert(1, 5, 42, ProtRead, false);
    tlb.insert(2, 5, 43, ProtRead, false);
    tlb.flushSpace(1);
    EXPECT_FALSE(tlb.lookup(1, 5, ProtRead, 0).hit);
    EXPECT_TRUE(tlb.lookup(2, 5, ProtRead, 0).hit);
    EXPECT_FALSE(tlb.cachesSpace(1));
    EXPECT_TRUE(tlb.cachesSpace(2));
}

TEST_F(TlbFixture, FlushAllEmptiesBuffer)
{
    for (Vpn v = 0; v < 20; ++v)
        tlb.insert(1, v, v, ProtRead, false);
    tlb.flushAll();
    EXPECT_EQ(tlb.validCount(), 0u);
}

TEST_F(TlbFixture, ReplacementEvictsWhenFull)
{
    for (Vpn v = 0; v < config.tlb_entries + 10; ++v)
        tlb.insert(1, v, v, ProtRead, false);
    EXPECT_EQ(tlb.validCount(), config.tlb_entries);
}

TEST_F(TlbFixture, ReinsertUpdatesInPlace)
{
    tlb.insert(1, 5, 42, ProtRead, false);
    tlb.insert(1, 5, 43, ProtReadWrite, false);
    EXPECT_EQ(tlb.validCount(), 1u);
    const TlbLookup look = tlb.lookup(1, 5, ProtWrite, 0);
    EXPECT_TRUE(look.prot_ok);
    EXPECT_EQ(look.pfn, 43u);
}

TEST_F(TlbFixture, CachesMappingQuery)
{
    tlb.insert(1, 5, 42, ProtRead, false);
    EXPECT_TRUE(tlb.cachesMapping(1, 5, ProtRead));
    EXPECT_FALSE(tlb.cachesMapping(1, 5, ProtWrite));
    EXPECT_FALSE(tlb.cachesMapping(1, 6, ProtRead));
}

TEST_F(TlbFixture, FullyAssociativeEvictionIsGlobalRoundRobin)
{
    // Fill the buffer with distinct pages, then insert one more: the
    // global round-robin cursor has wrapped back to slot 0, so the very
    // first fill is the victim -- independent of any set hashing.
    for (Vpn v = 0; v < config.tlb_entries; ++v)
        tlb.insert(1, v, v, ProtRead, false);
    tlb.insert(1, 1000, 99, ProtRead, false);
    EXPECT_FALSE(tlb.lookup(1, 0, ProtRead, 0).hit);
    for (Vpn v = 1; v < config.tlb_entries; ++v)
        EXPECT_TRUE(tlb.lookup(1, v, ProtRead, 0).hit) << "vpn " << v;
    EXPECT_TRUE(tlb.lookup(1, 1000, ProtRead, 0).hit);
}

// ---------------------------------------------------------------------
// L0 translation cache (host-side front of the TLB)
// ---------------------------------------------------------------------

TEST_F(TlbFixture, L0ServesRepeatedHitsIdentically)
{
    tlb.insert(1, 5, 42, ProtRead, false);
    const TlbLookup first = tlb.lookup(1, 5, ProtRead, 0);
    const TlbLookup second = tlb.lookup(1, 5, ProtRead, 0);
    EXPECT_GT(tlb.l0_hits, 0u);
    EXPECT_EQ(first.hit, second.hit);
    EXPECT_EQ(first.pfn, second.pfn);
    EXPECT_EQ(first.prot_ok, second.prot_ok);
    // Simulated hit counters are identical to an uncached TLB's.
    EXPECT_EQ(tlb.hits, 2u);
    EXPECT_EQ(tlb.misses, 0u);
}

TEST_F(TlbFixture, L0InvalidatedOnInvalidatePage)
{
    tlb.insert(1, 5, 42, ProtRead, false);
    EXPECT_TRUE(tlb.lookup(1, 5, ProtRead, 0).hit); // L0 now caches it.
    tlb.invalidatePage(1, 5);
    EXPECT_TRUE(tlb.l0Translations().empty());
    EXPECT_FALSE(tlb.lookup(1, 5, ProtRead, 0).hit);
}

TEST_F(TlbFixture, L0InvalidatedOnInvalidateRange)
{
    for (Vpn v = 0; v < 4; ++v) {
        tlb.insert(1, v, v + 1, ProtRead, false);
        tlb.lookup(1, v, ProtRead, 0);
    }
    tlb.invalidateRange(1, 0, 4);
    EXPECT_TRUE(tlb.l0Translations().empty());
    for (Vpn v = 0; v < 4; ++v)
        EXPECT_FALSE(tlb.lookup(1, v, ProtRead, 0).hit) << "vpn " << v;
}

TEST_F(TlbFixture, L0InvalidatedOnFlushSpacePerSpace)
{
    tlb.insert(1, 5, 42, ProtRead, false);
    tlb.insert(2, 5, 43, ProtRead, false);
    tlb.lookup(1, 5, ProtRead, 0);
    tlb.lookup(2, 5, ProtRead, 0);
    tlb.flushSpace(1);
    // Only the flushed space's slots are dropped.
    for (const TlbEntry &entry : tlb.l0Translations())
        EXPECT_NE(entry.space, 1u);
    EXPECT_FALSE(tlb.lookup(1, 5, ProtRead, 0).hit);
    EXPECT_TRUE(tlb.lookup(2, 5, ProtRead, 0).hit);
}

TEST_F(TlbFixture, L0InvalidatedOnFlushAll)
{
    tlb.insert(1, 5, 42, ProtRead, false);
    tlb.lookup(1, 5, ProtRead, 0);
    tlb.flushAll();
    EXPECT_TRUE(tlb.l0Translations().empty());
    EXPECT_FALSE(tlb.lookup(1, 5, ProtRead, 0).hit);
}

TEST_F(TlbFixture, L0InvalidatedOnEviction)
{
    // Cache vpn 0 in the L0, then wrap the round-robin victim cursor
    // exactly onto its backing entry: the eviction retires the entry
    // and must drop the L0 slot with it.
    tlb.insert(1, 0, 1, ProtRead, false);
    tlb.lookup(1, 0, ProtRead, 0);
    for (Vpn v = 1; v <= config.tlb_entries; ++v)
        tlb.insert(1, v, v + 1, ProtRead, false);
    EXPECT_FALSE(tlb.lookup(1, 0, ProtRead, 0).hit);
}

TEST_F(TlbFixture, L0SeesInPlaceRefresh)
{
    // An insert hit refreshes the backing entry in place; the L0 slot
    // keeps pointing at it and must serve the refreshed translation.
    tlb.insert(1, 5, 42, ProtRead, false);
    tlb.lookup(1, 5, ProtRead, 0);
    tlb.insert(1, 5, 99, ProtReadWrite, false);
    const TlbLookup look = tlb.lookup(1, 5, ProtWrite, 0);
    EXPECT_TRUE(look.hit);
    EXPECT_TRUE(look.prot_ok);
    EXPECT_EQ(look.pfn, 99u);
}

TEST_F(TlbFixture, L0DisabledBehavesIdentically)
{
    // Same deterministic op mix against an L0-less TLB: every simulated
    // observable (results and digest counters) must match bit for bit.
    MachineConfig no_l0_config;
    no_l0_config.tlb_l0_entries = 0;
    Tlb plain(&no_l0_config, &mem);

    const auto mix = [](Tlb &t) {
        for (std::uint32_t i = 0; i < 3000; ++i) {
            const SpaceId space = 1 + i % 3;
            const Vpn vpn = (i * 7) % 128;
            if (!t.lookup(space, vpn, ProtRead, 0).hit)
                t.insert(space, vpn, vpn + 1, ProtReadWrite, false);
            t.lookup(space, vpn, ProtRead, 0);
            if (i % 13 == 0)
                t.invalidatePage(space, vpn);
            if (i % 97 == 0)
                t.flushSpace(space);
            if (i % 501 == 0)
                t.flushAll();
        }
    };
    mix(tlb);
    mix(plain);
    EXPECT_EQ(plain.l0_hits + plain.l0_misses, 0u);
    EXPECT_EQ(tlb.hits, plain.hits);
    EXPECT_EQ(tlb.misses, plain.misses);
    EXPECT_EQ(tlb.flushes, plain.flushes);
    EXPECT_EQ(tlb.single_invalidates, plain.single_invalidates);
    EXPECT_EQ(tlb.full_flushes, plain.full_flushes);
    EXPECT_EQ(tlb.validCount(), plain.validCount());
}

TEST_F(TlbFixture, SkippedL0InvalidationServesStaleTranslation)
{
    // The chk_skip_l0_invalidate planted bug: with L0 maintenance
    // disabled, a flushed translation keeps being served from the L0.
    // This is the failure mode the consistency audit must catch (see
    // the pmap audit test); here we prove the knob actually plants it.
    config.chk_skip_l0_invalidate = true;
    tlb.insert(1, 5, 42, ProtRead, false);
    tlb.lookup(1, 5, ProtRead, 0);
    tlb.flushSpace(1);
    EXPECT_EQ(tlb.validCount(), 0u);
    EXPECT_FALSE(tlb.l0Translations().empty());
    EXPECT_TRUE(tlb.lookup(1, 5, ProtRead, 0).hit); // Stale!
}

// ---------------------------------------------------------------------
// Set-associative TLB (tlb_associativity > 0)
// ---------------------------------------------------------------------

/** Mirror of Tlb::hashKey, so tests can pick vpns by set index. */
std::uint64_t
tlbSetHash(SpaceId space, Vpn vpn)
{
    std::uint64_t k = (static_cast<std::uint64_t>(space) << 32) ^ vpn;
    k *= 0x9E3779B97F4A7C15ull;
    k ^= k >> 29;
    return k;
}

class SetAssocTlb : public ::testing::Test
{
  protected:
    SetAssocTlb() : mem(256)
    {
        config.tlb_entries = 8;
        config.tlb_associativity = 2; // Four sets of two ways.
        tlb = std::make_unique<Tlb>(&config, &mem);
    }

    std::size_t
    nsets() const
    {
        return config.tlb_entries / config.tlb_associativity;
    }

    /** First @p count vpns (space 1) landing in vpn 0's set. */
    std::vector<Vpn>
    sameSetVpns(std::size_t count) const
    {
        const std::size_t target = tlbSetHash(1, 0) % nsets();
        std::vector<Vpn> out;
        for (Vpn v = 0; out.size() < count; ++v)
            if (tlbSetHash(1, v) % nsets() == target)
                out.push_back(v);
        return out;
    }

    /** A vpn (space 1) landing in a different set from vpn 0. */
    Vpn
    otherSetVpn() const
    {
        const std::size_t target = tlbSetHash(1, 0) % nsets();
        for (Vpn v = 1;; ++v)
            if (tlbSetHash(1, v) % nsets() != target)
                return v;
    }

    MachineConfig config;
    PhysMem mem;
    std::unique_ptr<Tlb> tlb;
};

TEST_F(SetAssocTlb, ConflictEvictsWithinSetOnly)
{
    const std::vector<Vpn> colliding = sameSetVpns(3);
    const Vpn bystander = otherSetVpn();
    tlb->insert(1, colliding[0], 10, ProtRead, false);
    tlb->insert(1, colliding[1], 11, ProtRead, false);
    tlb->insert(1, bystander, 12, ProtRead, false);
    // A third mapping in a two-way set evicts that set's round-robin
    // victim (the oldest fill); other sets are untouched, even though
    // the buffer as a whole has plenty of free slots.
    tlb->insert(1, colliding[2], 13, ProtRead, false);
    EXPECT_FALSE(tlb->lookup(1, colliding[0], ProtRead, 0).hit);
    EXPECT_TRUE(tlb->lookup(1, colliding[1], ProtRead, 0).hit);
    EXPECT_TRUE(tlb->lookup(1, colliding[2], ProtRead, 0).hit);
    EXPECT_TRUE(tlb->lookup(1, bystander, ProtRead, 0).hit);
    EXPECT_EQ(tlb->validCount(), 3u);
}

TEST_F(SetAssocTlb, PerSetVictimCursorIsRoundRobin)
{
    const std::vector<Vpn> colliding = sameSetVpns(4);
    tlb->insert(1, colliding[0], 10, ProtRead, false); // way 0
    tlb->insert(1, colliding[1], 11, ProtRead, false); // way 1
    tlb->insert(1, colliding[2], 12, ProtRead, false); // evicts [0]
    tlb->insert(1, colliding[3], 13, ProtRead, false); // evicts [1]
    EXPECT_FALSE(tlb->lookup(1, colliding[0], ProtRead, 0).hit);
    EXPECT_FALSE(tlb->lookup(1, colliding[1], ProtRead, 0).hit);
    EXPECT_TRUE(tlb->lookup(1, colliding[2], ProtRead, 0).hit);
    EXPECT_TRUE(tlb->lookup(1, colliding[3], ProtRead, 0).hit);
}

TEST_F(SetAssocTlb, ReinsertDoesNotAdvanceVictimCursor)
{
    const std::vector<Vpn> colliding = sameSetVpns(3);
    tlb->insert(1, colliding[0], 10, ProtRead, false); // way 0
    tlb->insert(1, colliding[1], 11, ProtRead, false); // way 1
    // Refreshing a cached mapping updates in place and must not move
    // the cursor (matching the fully-associative model)...
    tlb->insert(1, colliding[0], 20, ProtRead, false);
    // ...so the next conflict still evicts way 0, not way 1.
    tlb->insert(1, colliding[2], 12, ProtRead, false);
    EXPECT_FALSE(tlb->lookup(1, colliding[0], ProtRead, 0).hit);
    const TlbLookup survivor = tlb->lookup(1, colliding[1], ProtRead, 0);
    EXPECT_TRUE(survivor.hit);
    EXPECT_EQ(survivor.pfn, 11u);
}

TEST_F(SetAssocTlb, EpochFlushesWorkAcrossSets)
{
    for (unsigned i = 0; i < config.tlb_entries; ++i)
        tlb->insert(1 + i % 2, i * 7, i, ProtRead, false);
    tlb->flushSpace(1);
    EXPECT_FALSE(tlb->cachesSpace(1));
    EXPECT_TRUE(tlb->cachesSpace(2));
    tlb->flushAll();
    EXPECT_EQ(tlb->validCount(), 0u);
    for (const TlbEntry &entry : tlb->entries())
        EXPECT_FALSE(entry.valid);
}

// ---------------------------------------------------------------------
// Bus
// ---------------------------------------------------------------------

TEST(Bus, UncontendedCostIsNearBase)
{
    MachineConfig config;
    config.mem_jitter = 0;
    Bus bus(&config);
    EXPECT_EQ(bus.accessCost(), config.mem_access_cost);
}

TEST(Bus, PenaltyAboveThreshold)
{
    MachineConfig config;
    config.mem_jitter = 0;
    config.bus_contended_jitter = 0;
    Bus bus(&config);
    for (unsigned i = 0; i < config.bus_contention_threshold; ++i)
        bus.enter();
    EXPECT_EQ(bus.accessCost(), config.mem_access_cost);
    bus.enter();
    EXPECT_EQ(bus.accessCost(),
              config.mem_access_cost + config.bus_penalty_per_user);
    bus.enter();
    EXPECT_EQ(bus.accessCost(),
              config.mem_access_cost + 2 * config.bus_penalty_per_user);
}

TEST(Bus, RaiiUserBalances)
{
    MachineConfig config;
    Bus bus(&config);
    {
        Bus::User a(bus);
        Bus::User b(bus);
        EXPECT_EQ(bus.users(), 2u);
    }
    EXPECT_EQ(bus.users(), 0u);
}

TEST(Bus, ContendedJitterVaries)
{
    MachineConfig config;
    config.mem_jitter = 0;
    Bus bus(&config);
    for (unsigned i = 0; i <= config.bus_contention_threshold; ++i)
        bus.enter();
    bool varied = false;
    const Tick first = bus.accessCost();
    for (int i = 0; i < 64 && !varied; ++i)
        varied = bus.accessCost() != first;
    EXPECT_TRUE(varied);
}

// ---------------------------------------------------------------------
// InterruptController
// ---------------------------------------------------------------------

TEST(Intr, PostSetsPendingOnce)
{
    MachineConfig config;
    InterruptController intr(&config, 4);
    EXPECT_TRUE(intr.post(2, Irq::Shootdown));
    EXPECT_TRUE(intr.pending(2, Irq::Shootdown));
    // Second post merges (the "already pending" check of Section 4).
    EXPECT_FALSE(intr.post(2, Irq::Shootdown));
    EXPECT_FALSE(intr.pending(1, Irq::Shootdown));
}

TEST(Intr, ClearAcknowledges)
{
    MachineConfig config;
    InterruptController intr(&config, 4);
    intr.post(0, Irq::Device);
    intr.clear(0, Irq::Device);
    EXPECT_FALSE(intr.pending(0, Irq::Device));
    EXPECT_TRUE(intr.post(0, Irq::Device));
}

TEST(Intr, DeliverableRespectsSpl)
{
    MachineConfig config;
    InterruptController intr(&config, 2);
    intr.post(0, Irq::Shootdown);
    EXPECT_EQ(intr.deliverable(0, Spl0),
              static_cast<int>(Irq::Shootdown));
    // Baseline shootdown priority is SplSoft: masked at SplSoft+.
    EXPECT_EQ(intr.deliverable(0, SplSoft), -1);
    EXPECT_EQ(intr.deliverable(0, SplDevice), -1);
    EXPECT_EQ(intr.deliverable(0, SplHigh), -1);
}

TEST(Intr, HigherPriorityWinsWhenBothPending)
{
    MachineConfig config;
    InterruptController intr(&config, 1);
    intr.post(0, Irq::Shootdown);
    intr.post(0, Irq::Device);
    EXPECT_EQ(intr.deliverable(0, Spl0),
              static_cast<int>(Irq::Device));
    intr.clear(0, Irq::Device);
    EXPECT_EQ(intr.deliverable(0, Spl0),
              static_cast<int>(Irq::Shootdown));
}

TEST(Intr, HighPriorityIpiOptionOutranksDevices)
{
    MachineConfig config;
    config.high_priority_ipi = true;
    InterruptController intr(&config, 1);
    intr.post(0, Irq::Shootdown);
    intr.post(0, Irq::Device);
    // The software interrupt now outranks devices and is deliverable
    // even with devices masked -- the Section 9 proposal.
    EXPECT_EQ(intr.deliverable(0, Spl0),
              static_cast<int>(Irq::Shootdown));
    EXPECT_EQ(intr.deliverable(0, SplDevice),
              static_cast<int>(Irq::Shootdown));
    EXPECT_EQ(intr.deliverable(0, SplHigh), -1);
}

TEST(Intr, KickFiresOnFreshPostOnly)
{
    MachineConfig config;
    InterruptController intr(&config, 2);
    int kicks = 0;
    intr.setKick([&](CpuId) { ++kicks; });
    intr.post(1, Irq::Shootdown);
    intr.post(1, Irq::Shootdown);
    EXPECT_EQ(kicks, 1);
    intr.clear(1, Irq::Shootdown);
    intr.post(1, Irq::Shootdown);
    EXPECT_EQ(kicks, 2);
}

TEST(MachineConfigTest, ValidateRejectsNonsense)
{
    MachineConfig config;
    config.ncpus = 0;
    EXPECT_EXIT(config.validate(), ::testing::ExitedWithCode(1),
                "ncpus");

    MachineConfig both;
    both.multicast_ipi = true;
    both.broadcast_ipi = true;
    EXPECT_EXIT(both.validate(), ::testing::ExitedWithCode(1),
                "exclusive");

    MachineConfig remote;
    remote.tlb_remote_invalidate = true;
    EXPECT_EXIT(remote.validate(), ::testing::ExitedWithCode(1),
                "no_refmod_writeback");

    MachineConfig assoc;
    assoc.tlb_entries = 64;
    assoc.tlb_associativity = 3;
    EXPECT_EXIT(assoc.validate(), ::testing::ExitedWithCode(1),
                "tlb_associativity");
}

TEST(HwDeathTest, FreeingReservedFrameAsserts)
{
    PhysMem mem(8);
    EXPECT_DEATH(mem.freeFrame(0), "assertion");
}

TEST(HwDeathTest, ExhaustedPhysMemPanics)
{
    PhysMem mem(4);
    for (int i = 0; i < 3; ++i)
        mem.allocFrame();
    EXPECT_DEATH(mem.allocFrame(), "out of physical frames");
}

TEST(MachineConfigTest, DefaultsAreValid)
{
    MachineConfig config;
    config.validate(); // Must not exit.
    SUCCEED();
}

} // namespace
} // namespace mach::hw
