/**
 * @file
 * Tasks: address spaces plus the threads that run in them.
 *
 * Each address space is associated with a task that may contain one or
 * more threads of control; all memory within a task's address space is
 * completely shared among its threads, which may execute in parallel on
 * multiple processors (Section 2).
 */

#ifndef MACH_VM_TASK_HH
#define MACH_VM_TASK_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "base/types.hh"
#include "pmap/pmap.hh"
#include "vm/vm_map.hh"

namespace mach::vm
{

class Kernel;

/** User virtual address range (below the shared kernel space). */
constexpr VAddr kUserLo = 0x00010000u;
constexpr VAddr kUserHi = 0xc0000000u;

/** One task: a user address map and its pmap. */
class Task
{
  public:
    Task(Kernel *kernel, std::string name);
    ~Task();

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    std::uint64_t id() const { return id_; }
    const std::string &name() const { return name_; }

    Kernel &kernel() { return *kernel_; }
    VmMap &map() { return map_; }
    pmap::Pmap &pmap() { return *pmap_; }

    /** Threads ever created in this task (bookkeeping only). */
    std::uint32_t thread_count = 0;

  private:
    // Atomic: tasks in concurrently farmed machines allocate from
    // one counter. IDs are identity-only (never ordered over), so
    // cross-machine interleaving cannot change behavior.
    static std::atomic<std::uint64_t> next_id_;

    Kernel *kernel_;
    std::uint64_t id_;
    std::string name_;
    VmMap map_;
    std::unique_ptr<pmap::Pmap> pmap_;
};

} // namespace mach::vm

#endif // MACH_VM_TASK_HH
