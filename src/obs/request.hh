/**
 * @file
 * Request-scoped latency attribution.
 *
 * A serving-tier request wants its end-to-end latency explained, not
 * just measured: of the microseconds a request took, how many went to
 * useful compute, how many to VM faults, TLB refill walks, posting
 * shootdown IPIs, spinning on responders, and servicing *other*
 * initiators' shootdowns as a responder? The decomposition here is
 * exclusive-interval accounting on the requesting thread: a
 * RequestSlot carries a small component stack; every instrumented
 * kernel boundary (vm.fault entry, the pmap walk window, the
 * shootdown IPI-post and sync phases, the responder service routine)
 * pushes its component on entry and pops on exit, and each switch
 * banks the elapsed interval to the component that was current. Time
 * belonging to no instrumented section is Compute, the residual. By
 * construction the components sum *exactly* to the measured
 * end-to-end request latency -- the property tests/serving_test.cc
 * enforces (the acceptance bound is 1%; the identity is integral).
 *
 * Attribution never charges simulated time and draws no randomness:
 * it only reads the simulated clock at boundaries already present in
 * the run. Threads without a slot (every pre-serving workload) pay
 * one pointer test per boundary, so existing goldens are untouched.
 */

#ifndef MACH_OBS_REQUEST_HH
#define MACH_OBS_REQUEST_HH

#include <array>
#include <cstdint>

#include "base/types.hh"
#include "obs/recorder.hh"

namespace mach::obs
{

/** Where a request's wall-clock interval is banked. */
enum class ReqComponent : std::uint8_t
{
    Compute = 0,    ///< Residual: the request's own work.
    Fault,          ///< vm.fault resolution (incl. COW, pagein, zfill).
    Walk,           ///< TLB-miss page-table walk + refill window.
    IpiPost,        ///< Shootdown initiator: posting the IPIs.
    ResponderWait,  ///< Shootdown initiator: sync-spin on responders.
    Drain,          ///< Interrupted as a responder: stall + drain.
};

constexpr unsigned kReqComponents = 6;

/** Stable short name for a component ("compute", "fault", ...). */
const char *reqComponentName(ReqComponent component);

/**
 * Per-request attribution state, owned by the workload issuing the
 * request and pointed to by kern::Thread::obs_request while the
 * request is in flight.
 */
class RequestSlot
{
  public:
    /** Arm the slot at request start; current component = Compute. */
    void
    begin(Tick now)
    {
        start_ = last_ = now;
        depth_ = 0;
        stack_[0] = ReqComponent::Compute;
        acc_.fill(0);
    }

    /** Enter a nested component (hook-site entry). */
    void
    push(ReqComponent component, Tick now)
    {
        bank(now);
        if (depth_ + 1 < kMaxDepth)
            ++depth_;
        stack_[depth_] = component;
    }

    /** Leave the current component (hook-site exit). */
    void
    pop(Tick now)
    {
        bank(now);
        if (depth_ > 0)
            --depth_;
    }

    /**
     * Close the request: bank the tail interval (and any components
     * left open by a non-local exit) and return the end-to-end
     * latency. Afterwards components() sums exactly to the return
     * value.
     */
    Tick
    finish(Tick now)
    {
        bank(now);
        depth_ = 0;
        return now - start_;
    }

    /** Per-component totals, indexed by ReqComponent. */
    const std::array<Tick, kReqComponents> &
    components() const
    {
        return acc_;
    }

    Tick start() const { return start_; }

  private:
    void
    bank(Tick now)
    {
        acc_[static_cast<unsigned>(stack_[depth_])] += now - last_;
        last_ = now;
    }

    // Nesting in practice is Compute -> Fault -> IpiPost/ResponderWait
    // with a Drain possibly interrupting any level; 8 is headroom (an
    // overflowing push banks to the parent rather than corrupting).
    static constexpr unsigned kMaxDepth = 8;

    Tick start_ = 0;
    Tick last_ = 0;
    unsigned depth_ = 0;
    std::array<ReqComponent, kMaxDepth> stack_{};
    std::array<Tick, kReqComponents> acc_{};
};

/**
 * RAII component section for the kernel hook sites. Null @p slot (no
 * request in flight on this thread -- every non-serving workload) is
 * one branch; otherwise the component is entered at construction and
 * left at destruction, with timestamps read through @p recorder's
 * simulated clock.
 */
class ReqScope
{
  public:
    ReqScope(Recorder &recorder, RequestSlot *slot,
             ReqComponent component)
    {
        if (slot == nullptr)
            return;
        slot_ = slot;
        recorder_ = &recorder;
        slot->push(component, recorder.now());
    }

    ~ReqScope()
    {
        if (slot_ != nullptr)
            slot_->pop(recorder_->now());
    }

    ReqScope(const ReqScope &) = delete;
    ReqScope &operator=(const ReqScope &) = delete;

  private:
    RequestSlot *slot_ = nullptr;
    Recorder *recorder_ = nullptr;
};

/**
 * Record a finished request into @p metrics: total latency into
 * "serve.request_us" and each nonzero-able component into
 * "serve.<component>_us" (all in whole microseconds, all recorded
 * unconditionally so the histogram set -- and with it the stats-JSON
 * schema -- is identical across runs of the same workload).
 */
void recordRequest(Metrics &metrics, const RequestSlot &slot,
                   Tick total);

} // namespace mach::obs

#endif // MACH_OBS_REQUEST_HH
