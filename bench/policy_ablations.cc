/**
 * @file
 * Ablations of the two policy constants the paper calls out as
 * implementation details of the shootdown algorithm (Section 4,
 * "three important details"):
 *
 *  1. The invalidation threshold: "beyond some threshold it is faster
 *     to flush the entire buffer than to do the individual
 *     invalidates; this threshold depends on hardware factors".
 *     Sweeping it shows the trade: a low threshold over-flushes (TLB
 *     refill traffic), a high threshold spends too long on serial
 *     entry invalidates during large shootdowns.
 *
 *  2. The per-processor update-queue size: "if the initiator detects
 *     overflow, it sets a flag that causes the responder to flush its
 *     entire TLB. The queue size is set so that this only happens in
 *     cases where the responder would flush its entire TLB for
 *     efficiency reasons in the absence of update queue overflow."
 *     Sweeping it shows overflow rates falling as the queue grows.
 */

#include "bench_common.hh"

#include "pmap/shootdown.hh"
#include "xpr/machine_stats.hh"

using namespace mach;
using namespace mach::bench;

namespace
{

struct ThresholdRow
{
    double responder_usec = 0.0;
    std::uint64_t invalidates = 0;
    std::uint64_t misses_after = 0;
};

/**
 * A scenario where the threshold genuinely matters: six readers keep
 * a 12-page shared region hot in their TLBs; the main thread
 * reprotects all 12 pages at once. Below the threshold the
 * responders surgically invalidate 12 entries (slower response, but
 * the rest of their working set survives); above it they flush the
 * whole buffer (fast, but every later access re-misses).
 */
ThresholdRow
measureThreshold(unsigned threshold)
{
    hw::MachineConfig config;
    config.tlb_flush_threshold = threshold;
    config.seed = 0x9010c4;
    vm::Kernel kernel(config);
    kernel.start();
    kernel.machine().xpr().reset();

    std::uint64_t misses_after = 0;
    kernel.spawnThread(nullptr, "drv", [&](kern::Thread &drv) {
        vm::Task *task = kernel.createTask("hot");
        constexpr unsigned kPages = 12;
        VAddr region = 0;
        bool stop = false;

        std::vector<kern::Thread *> readers;
        kern::Thread *main_thread = kernel.spawnThread(
            task, "main",
            [&](kern::Thread &self) {
                bool ok = kernel.vmAllocate(
                    self, *task, &region, kPages * kPageSize, true);
                MACH_ASSERT(ok);
                for (unsigned p = 0; p < kPages; ++p)
                    self.store32(region + p * kPageSize, p);
                for (unsigned r = 0; r < 6; ++r) {
                    readers.push_back(kernel.spawnThread(
                        task, "reader" + std::to_string(r),
                        [&](kern::Thread &reader) {
                            // A private working set that an
                            // over-eager full flush would evict.
                            VAddr mine = 0;
                            const bool got = kernel.vmAllocate(
                                reader, *task, &mine,
                                8 * kPageSize, true);
                            MACH_ASSERT(got);
                            while (!stop) {
                                for (unsigned p = 0; p < kPages;
                                     ++p) {
                                    std::uint32_t v = 0;
                                    reader.load32(
                                        region + p * kPageSize,
                                        &v);
                                }
                                for (unsigned p = 0; p < 8; ++p)
                                    reader.store32(
                                        mine + p * kPageSize, p);
                                reader.cpu().advance(800 * kUsec);
                            }
                        },
                        static_cast<std::int64_t>(r)));
                }
                self.sleep(40 * kMsec); // TLBs hot.
                kernel.vmProtect(self, *task, region,
                                 kPages * kPageSize, ProtRead);
                // Count the refill misses the policy causes.
                std::uint64_t misses0 = 0;
                for (CpuId id = 0;
                     id < kernel.machine().ncpus(); ++id)
                    misses0 +=
                        kernel.machine().cpu(id).tlb().misses;
                self.sleep(40 * kMsec);
                for (CpuId id = 0;
                     id < kernel.machine().ncpus(); ++id)
                    misses_after +=
                        kernel.machine().cpu(id).tlb().misses;
                misses_after -= misses0;
                stop = true;
                for (kern::Thread *reader : readers)
                    self.join(*reader);
            },
            7);
        drv.join(*main_thread);
        kernel.machine().ctx().requestStop();
    });
    kernel.machine().run();

    const xpr::RunAnalysis analysis =
        xpr::analyze(kernel.machine().xpr());
    ThresholdRow row;
    row.misses_after = misses_after;
    row.responder_usec = analysis.responder.time_usec.mean();
    for (CpuId id = 0; id < kernel.machine().ncpus(); ++id)
        row.invalidates +=
            kernel.machine().cpu(id).tlb().single_invalidates;
    return row;
}

struct DepthRow
{
    std::uint64_t overflows = 0;
    double user_usec = 0.0;
};

DepthRow
measureDepth(unsigned depth)
{
    hw::MachineConfig config;
    config.action_queue_size = depth;
    config.seed = 0x9010c4;
    vm::Kernel kernel(config);
    apps::Camelot app({.transactions = 120});
    const apps::WorkloadResult result = app.execute(kernel);
    return DepthRow{kernel.pmaps().shoot().queue_overflows,
                    result.analysis.user_initiator.time_usec.mean()};
}

} // namespace

int
main()
{
    setLogQuiet(true);

    // Both sweeps are independent machines per config point, so they
    // run on the bench farm (MACH_BENCH_JOBS wide) and print after.
    const std::vector<unsigned> thresholds = {4u, 8u, 16u, 64u};
    std::vector<ThresholdRow> threshold_rows(thresholds.size());
    const std::vector<unsigned> depths = {1u, 2u, 4u, 8u, 16u, 32u};
    std::vector<DepthRow> depth_rows(depths.size());
    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < thresholds.size(); ++i)
        jobs.push_back([&thresholds, &threshold_rows, i] {
            threshold_rows[i] = measureThreshold(thresholds[i]);
        });
    for (std::size_t i = 0; i < depths.size(); ++i)
        jobs.push_back([&depths, &depth_rows, i] {
            depth_rows[i] = measureDepth(depths[i]);
        });
    runFarmed(std::move(jobs));

    std::printf("Policy ablation 1: TLB invalidation threshold\n");
    std::printf("(six readers keep 12 shared pages hot; one 12-page "
                "reprotect)\n\n");
    std::printf("%10s %10s %16s %14s %14s\n", "threshold", "policy",
                "responder(us)", "invalidates", "misses after");
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
        const ThresholdRow &row = threshold_rows[i];
        std::printf("%10u %10s %16.0f %14llu %14llu\n", thresholds[i],
                    thresholds[i] < 12 ? "flush" : "invalidate",
                    row.responder_usec,
                    static_cast<unsigned long long>(row.invalidates),
                    static_cast<unsigned long long>(row.misses_after));
    }

    std::printf("\nPolicy ablation 2: consistency-action queue depth "
                "(Camelot workload)\n\n");
    std::printf("%10s %16s %14s\n", "queue", "overflows", "user "
                                                          "mean(us)");
    for (std::size_t i = 0; i < depths.size(); ++i)
        std::printf("%10u %16llu %14.0f\n", depths[i],
                    static_cast<unsigned long long>(
                        depth_rows[i].overflows),
                    depth_rows[i].user_usec);

    std::printf("\noverflow escalates to a whole-buffer flush, which "
                "is always correct; the paper\nsizes the queue so "
                "overflow coincides with flushes the responder would "
                "do anyway.\n");
    return 0;
}
