#include "sim/event_queue.hh"

#include <utility>

#include "base/logging.hh"

namespace mach::sim
{

EventId
EventQueue::schedule(Tick when, Callback cb)
{
    MACH_ASSERT(cb != nullptr);
    EventId id{when, next_seq_++};
    events_.emplace(id, std::move(cb));
    return id;
}

void
EventQueue::cancel(EventId id)
{
    if (!id.valid())
        return;
    events_.erase(id);
}

Tick
EventQueue::nextTime() const
{
    MACH_ASSERT(!events_.empty());
    return events_.begin()->first.when;
}

EventQueue::Callback
EventQueue::popFront(Tick *when)
{
    MACH_ASSERT(!events_.empty());
    auto it = events_.begin();
    *when = it->first.when;
    Callback cb = std::move(it->second);
    events_.erase(it);
    return cb;
}

} // namespace mach::sim

