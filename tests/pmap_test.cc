/**
 * @file
 * Tests for the pmap module: operations on physical maps, processor
 * bookkeeping, lazy evaluation, the pv table, and the consistency
 * audit.
 */

#include <gtest/gtest.h>

#include "chk/oracle.hh"
#include "pmap/shootdown.hh"
#include "vm/kernel.hh"

namespace mach
{
namespace
{

hw::MachineConfig
pmapConfig()
{
    setLogQuiet(true);
    hw::MachineConfig config;
    config.ncpus = 4;
    return config;
}

void
inKernel(const hw::MachineConfig &config,
         const std::function<void(vm::Kernel &, kern::Thread &)> &body)
{
    vm::Kernel kernel(config);
    kernel.start();
    bool finished = false;
    kernel.spawnThread(nullptr, "pmap-driver",
                       [&](kern::Thread &driver) {
                           body(kernel, driver);
                           finished = true;
                           kernel.machine().ctx().requestStop();
                       });
    kernel.machine().run();
    ASSERT_TRUE(finished);
}

void
inKernel(const std::function<void(vm::Kernel &, kern::Thread &)> &body)
{
    inKernel(pmapConfig(), body);
}

TEST(PmapOps, EnterInstallsPte)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        auto pmap = kernel.pmaps().createPmap();
        const Pfn frame = kernel.machine().mem().allocFrame();
        pmap->enter(drv, 100, frame, ProtReadWrite);
        const std::uint32_t pte = pmap->table().readPte(100);
        EXPECT_TRUE(hw::pte::valid(pte));
        EXPECT_EQ(hw::pte::pfn(pte), frame);
        EXPECT_EQ(hw::pte::prot(pte), ProtReadWrite);
        kernel.machine().mem().freeFrame(frame);
    });
}

TEST(PmapOps, RemoveClearsRange)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        auto pmap = kernel.pmaps().createPmap();
        std::vector<Pfn> frames;
        for (Vpn v = 10; v < 15; ++v) {
            frames.push_back(kernel.machine().mem().allocFrame());
            pmap->enter(drv, v, frames.back(), ProtRead);
        }
        pmap->remove(drv, 11, 14);
        EXPECT_FALSE(hw::pte::valid(pmap->table().readPte(11)));
        EXPECT_FALSE(hw::pte::valid(pmap->table().readPte(13)));
        EXPECT_TRUE(hw::pte::valid(pmap->table().readPte(10)));
        EXPECT_TRUE(hw::pte::valid(pmap->table().readPte(14)));
        for (Pfn f : frames)
            kernel.machine().mem().freeFrame(f);
    });
}

TEST(PmapOps, ProtectPreservesRefModBits)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        auto pmap = kernel.pmaps().createPmap();
        const Pfn frame = kernel.machine().mem().allocFrame();
        pmap->enter(drv, 7, frame, ProtReadWrite);
        // Simulate hardware setting ref/mod.
        pmap->table().writePte(
            7, hw::pte::make(frame, ProtReadWrite, true, true));
        pmap->protect(drv, 7, 8, ProtRead);
        const std::uint32_t pte = pmap->table().readPte(7);
        EXPECT_EQ(hw::pte::prot(pte), ProtRead);
        EXPECT_TRUE(hw::pte::referenced(pte));
        EXPECT_TRUE(hw::pte::modified(pte));
        kernel.machine().mem().freeFrame(frame);
    });
}

TEST(PmapOps, ReenterSamePfnPreservesRefMod)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        auto pmap = kernel.pmaps().createPmap();
        const Pfn frame = kernel.machine().mem().allocFrame();
        pmap->enter(drv, 7, frame, ProtRead);
        pmap->table().writePte(7,
                               hw::pte::make(frame, ProtRead, true,
                                             false));
        pmap->enter(drv, 7, frame, ProtReadWrite); // Upgrade.
        const std::uint32_t pte = pmap->table().readPte(7);
        EXPECT_TRUE(hw::pte::referenced(pte));
        EXPECT_EQ(hw::pte::prot(pte), ProtReadWrite);
        kernel.machine().mem().freeFrame(frame);
    });
}

TEST(PmapOps, PvTableTracksMappings)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        auto a = kernel.pmaps().createPmap();
        auto b = kernel.pmaps().createPmap();
        const Pfn frame = kernel.machine().mem().allocFrame();
        a->enter(drv, 5, frame, ProtRead);
        b->enter(drv, 9, frame, ProtRead);
        const auto &list = kernel.pmaps().pvList(frame);
        ASSERT_EQ(list.size(), 2u);
        a->remove(drv, 5, 6);
        EXPECT_EQ(kernel.pmaps().pvList(frame).size(), 1u);
        EXPECT_EQ(kernel.pmaps().pvList(frame)[0].pmap, b.get());
        b->remove(drv, 9, 10);
        EXPECT_TRUE(kernel.pmaps().pvList(frame).empty());
        kernel.machine().mem().freeFrame(frame);
    });
}

TEST(PmapOps, PageProtectRemovesEveryMapping)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        auto a = kernel.pmaps().createPmap();
        auto b = kernel.pmaps().createPmap();
        const Pfn frame = kernel.machine().mem().allocFrame();
        a->enter(drv, 5, frame, ProtReadWrite);
        b->enter(drv, 9, frame, ProtReadWrite);
        // Mark one mapping modified.
        a->table().writePte(
            5, hw::pte::make(frame, ProtReadWrite, true, true));

        const bool modified = pmap::Pmap::pageProtect(
            kernel.pmaps(), drv, frame, ProtNone);
        EXPECT_TRUE(modified);
        EXPECT_FALSE(hw::pte::valid(a->table().readPte(5)));
        EXPECT_FALSE(hw::pte::valid(b->table().readPte(9)));
        EXPECT_TRUE(kernel.pmaps().pvList(frame).empty());
        kernel.machine().mem().freeFrame(frame);
    });
}

TEST(PmapOps, PageProtectReportsCleanPage)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        auto a = kernel.pmaps().createPmap();
        const Pfn frame = kernel.machine().mem().allocFrame();
        a->enter(drv, 5, frame, ProtRead);
        EXPECT_FALSE(pmap::Pmap::pageProtect(kernel.pmaps(), drv,
                                             frame, ProtNone));
        kernel.machine().mem().freeFrame(frame);
    });
}

TEST(PmapOps, CollectDropsTablesForRebuild)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        auto pmap = kernel.pmaps().createPmap();
        const Pfn frame = kernel.machine().mem().allocFrame();
        pmap->enter(drv, 123, frame, ProtRead);
        EXPECT_EQ(pmap->table().leafCount(), 1u);
        pmap->collect(drv);
        EXPECT_EQ(pmap->table().leafCount(), 0u);
        // Reconstructed from scratch by later enters (Section 2).
        pmap->enter(drv, 123, frame, ProtRead);
        EXPECT_TRUE(hw::pte::valid(pmap->table().readPte(123)));
        pmap->remove(drv, 123, 124);
        kernel.machine().mem().freeFrame(frame);
    });
}

TEST(PmapBookkeeping, ActivateDeactivateTrackUse)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        auto pmap = kernel.pmaps().createPmap();
        kern::Cpu &cpu = drv.cpu();
        EXPECT_FALSE(pmap->inUse(cpu.id()));
        pmap->activate(cpu);
        EXPECT_TRUE(pmap->inUse(cpu.id()));
        EXPECT_EQ(cpu.cur_pmap, pmap.get());
        EXPECT_EQ(pmap->useCount(), 1u);
        pmap->deactivate(cpu);
        EXPECT_FALSE(pmap->inUse(cpu.id()));
        EXPECT_EQ(cpu.cur_pmap, nullptr);
    });
}

TEST(PmapBookkeeping, DeactivateFlushesTlbOnBaselineHardware)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        auto pmap = kernel.pmaps().createPmap();
        kern::Cpu &cpu = drv.cpu();
        pmap->activate(cpu);
        cpu.tlb().insert(pmap->space(), 4, 99, ProtRead, false);
        pmap->deactivate(cpu);
        EXPECT_EQ(cpu.tlb().validCount(), 0u);
    });
}

TEST(PmapBookkeeping, AsidTagsKeepEntriesAndInUse)
{
    hw::MachineConfig config = pmapConfig();
    config.tlb_asid_tags = true;
    inKernel(config, [](vm::Kernel &kernel, kern::Thread &drv) {
        auto pmap = kernel.pmaps().createPmap();
        kern::Cpu &cpu = drv.cpu();
        pmap->activate(cpu);
        cpu.tlb().insert(pmap->space(), 4, 99, ProtRead, false);
        pmap->deactivate(cpu);
        // Entries survive; the pmap is still considered in use here
        // (Section 10 extension).
        EXPECT_TRUE(cpu.tlb().cachesSpace(pmap->space()));
        EXPECT_TRUE(pmap->inUse(cpu.id()));
        cpu.tlb().flushSpace(pmap->space());
        pmap->clearInUse(cpu.id());
        EXPECT_FALSE(pmap->inUse(cpu.id()));
    });
}

TEST(PmapBookkeeping, KernelPmapInUseEverywhere)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &) {
        pmap::Pmap &kp = kernel.pmaps().kernelPmap();
        EXPECT_TRUE(kp.isKernel());
        for (CpuId id = 0; id < kernel.machine().ncpus(); ++id)
            EXPECT_TRUE(kp.inUse(id));
        EXPECT_EQ(kp.useCount(), kernel.machine().ncpus());
    });
}

TEST(PmapBookkeeping, SpaceIdsAreUniqueAndRegistered)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &) {
        auto a = kernel.pmaps().createPmap();
        auto b = kernel.pmaps().createPmap();
        EXPECT_NE(a->space(), b->space());
        EXPECT_EQ(kernel.pmaps().pmapForSpace(a->space()), a.get());
        EXPECT_EQ(kernel.pmaps().pmapForSpace(b->space()), b.get());
        const hw::SpaceId freed = a->space();
        a.reset();
        EXPECT_EQ(kernel.pmaps().pmapForSpace(freed), nullptr);
    });
}

TEST(PmapLazy, UntouchedRangeSkipsShootdown)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        auto pmap = kernel.pmaps().createPmap();
        const std::uint64_t before = pmap->shootdowns_avoided_lazy;
        pmap->remove(drv, 1000, 1010); // Nothing mapped there.
        EXPECT_EQ(pmap->shootdowns_avoided_lazy, before + 1);
        EXPECT_EQ(pmap->shootdowns_initiated, 0u);
    });
}

TEST(PmapLazy, DisabledLazyShootsWhenLeafPresent)
{
    hw::MachineConfig config = pmapConfig();
    config.lazy_evaluation = false;
    inKernel(config, [](vm::Kernel &kernel, kern::Thread &drv) {
        auto pmap = kernel.pmaps().createPmap();
        // Mark the pmap in use on another CPU so a shootdown is
        // actually required.
        pmap->activate(kernel.machine().cpu(1));
        const Pfn frame = kernel.machine().mem().allocFrame();
        pmap->enter(drv, 50, frame, ProtReadWrite);
        pmap->remove(drv, 50, 51);
        // Now the leaf exists but holds no valid PTE; without lazy
        // evaluation, removing again still shoots.
        const std::uint64_t before = pmap->shootdowns_initiated;
        pmap->remove(drv, 52, 53);
        EXPECT_EQ(pmap->shootdowns_initiated, before + 1);
        kernel.machine().mem().freeFrame(frame);
    });
}

TEST(PmapLazy, DisabledLazyStillSkipsMissingLeaves)
{
    hw::MachineConfig config = pmapConfig();
    config.lazy_evaluation = false;
    inKernel(config, [](vm::Kernel &kernel, kern::Thread &drv) {
        auto pmap = kernel.pmaps().createPmap();
        pmap->activate(kernel.machine().cpu(1));
        // The residual structure knowledge: an entirely absent second-
        // level table still short-circuits the check (Section 7.2).
        const std::uint64_t before = pmap->shootdowns_initiated;
        pmap->remove(drv, 5000, 5004);
        EXPECT_EQ(pmap->shootdowns_initiated, before);
    });
}

TEST(PmapOps, LivePmapDestructionRebuiltByFaults)
{
    // Section 2: "Pmaps can even be destroyed at runtime; they will be
    // reconstructed from scratch as page faults occur." Collect a
    // running task's pmap while its threads actively use it.
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("phoenix");
        VAddr va = 0;
        bool stop = false;
        bool data_ok = true;

        kern::Thread *reader = kernel.spawnThread(
            task, "reader",
            [&](kern::Thread &self) {
                ASSERT_TRUE(kernel.vmAllocate(self, *task, &va,
                                              4 * kPageSize, true));
                for (int i = 0; i < 4; ++i)
                    ASSERT_TRUE(
                        self.store32(va + i * kPageSize, 500 + i));
                while (!stop) {
                    for (int i = 0; i < 4; ++i) {
                        std::uint32_t value = 0;
                        if (!self.load32(va + i * kPageSize, &value) ||
                            value != static_cast<std::uint32_t>(500 +
                                                                i)) {
                            data_ok = false;
                        }
                    }
                    self.cpu().advance(2 * kMsec);
                }
            },
            1);
        drv.sleep(20 * kMsec);

        // Throw the page tables away out from under the reader.
        kern::Thread *collector = kernel.spawnThread(
            task, "collector",
            [&](kern::Thread &self) { task->pmap().collect(self); },
            2);
        drv.join(*collector);
        EXPECT_EQ(task->pmap().table().leafCount(), 0u);

        drv.sleep(30 * kMsec); // Faults rebuild the pmap.
        stop = true;
        drv.join(*reader);

        EXPECT_TRUE(data_ok);
        EXPECT_GT(task->pmap().table().leafCount(), 0u);
        EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
    });
}

TEST(PmapAudit, DetectsStaleEntry)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        auto pmap = kernel.pmaps().createPmap();
        const Pfn frame = kernel.machine().mem().allocFrame();
        pmap->enter(drv, 30, frame, ProtReadWrite);
        EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());

        // Plant a stale entry behind the pmap's back.
        kernel.machine().cpu(2).tlb().insert(pmap->space(), 31, frame,
                                             ProtReadWrite, false);
        const auto violations = kernel.pmaps().auditTlbConsistency();
        ASSERT_EQ(violations.size(), 1u);
        EXPECT_NE(violations[0].find("cpu2"), std::string::npos);
        kernel.machine().cpu(2).tlb().flushAll();
        pmap->remove(drv, 30, 31);
        kernel.machine().mem().freeFrame(frame);
    });
}

TEST(PmapAudit, DetectsProtMismatch)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        auto pmap = kernel.pmaps().createPmap();
        const Pfn frame = kernel.machine().mem().allocFrame();
        pmap->enter(drv, 30, frame, ProtRead);
        kernel.machine().cpu(1).tlb().insert(pmap->space(), 30, frame,
                                             ProtReadWrite, false);
        EXPECT_FALSE(kernel.pmaps().auditTlbConsistency().empty());
        kernel.machine().cpu(1).tlb().flushAll();
        pmap->remove(drv, 30, 31);
        kernel.machine().mem().freeFrame(frame);
    });
}

TEST(PmapAudit, DetectsSkippedL0Invalidation)
{
    // Plant the one bug the L0 cache can introduce: a flush that the
    // indexed TLB honors but the L0 misses. chk_skip_l0_invalidate
    // disables all L0 maintenance, so after a flushAll the L0 keeps
    // serving the dead translation -- the audit must say so.
    hw::MachineConfig config = pmapConfig();
    config.chk_skip_l0_invalidate = true;
    inKernel(config, [](vm::Kernel &kernel, kern::Thread &drv) {
        auto pmap = kernel.pmaps().createPmap();
        const Pfn frame = kernel.machine().mem().allocFrame();
        pmap->enter(drv, 30, frame, ProtReadWrite);
        hw::Tlb &tlb = kernel.machine().cpu(2).tlb();
        tlb.insert(pmap->space(), 30, frame, ProtReadWrite, false);
        tlb.lookup(pmap->space(), 30, ProtRead, 0); // L0 caches it.
        EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());

        // The mapping goes away; the responder-style flush empties the
        // indexed TLB but (planted bug) leaves the L0 slot behind.
        tlb.flushAll();
        pmap->remove(drv, 30, 31);
        const auto violations = kernel.pmaps().auditTlbConsistency();
        ASSERT_FALSE(violations.empty());
        EXPECT_NE(violations[0].find("L0"), std::string::npos);
        EXPECT_NE(violations[0].find("cpu2"), std::string::npos);
        kernel.machine().mem().freeFrame(frame);
    });
}

TEST(PmapAudit, OracleCatchesSkippedL0Invalidation)
{
    // Same planted bug, but caught the way real checker runs catch it:
    // the stale-translation oracle's post-operation audit hook.
    hw::MachineConfig config = pmapConfig();
    config.chk_skip_l0_invalidate = true;
    inKernel(config, [](vm::Kernel &kernel, kern::Thread &drv) {
        chk::Oracle oracle(kernel);
        auto pmap = kernel.pmaps().createPmap();
        const Pfn frame = kernel.machine().mem().allocFrame();
        pmap->enter(drv, 30, frame, ProtReadWrite);
        hw::Tlb &tlb = kernel.machine().cpu(2).tlb();
        tlb.insert(pmap->space(), 30, frame, ProtReadWrite, false);
        tlb.lookup(pmap->space(), 30, ProtRead, 0);
        tlb.flushAll(); // Indexed entries die; the L0 slot survives.

        // The next completed pmap operation triggers the oracle's
        // audit, which must flag the undead L0 translation once the
        // page tables stop backing it.
        pmap->remove(drv, 30, 31);
        EXPECT_FALSE(oracle.clean());
        EXPECT_GT(oracle.violationCount(), 0u);
        kernel.machine().mem().freeFrame(frame);
    });
}

TEST(PmapAudit, OracleCleanWithL0Enabled)
{
    // Control for the planted-bug runs: correct L0 maintenance keeps
    // the oracle quiet through the same flush-and-remove sequence.
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        chk::Oracle oracle(kernel);
        auto pmap = kernel.pmaps().createPmap();
        const Pfn frame = kernel.machine().mem().allocFrame();
        pmap->enter(drv, 30, frame, ProtReadWrite);
        hw::Tlb &tlb = kernel.machine().cpu(2).tlb();
        tlb.insert(pmap->space(), 30, frame, ProtReadWrite, false);
        tlb.lookup(pmap->space(), 30, ProtRead, 0);
        tlb.flushAll();
        pmap->remove(drv, 30, 31);
        oracle.finalCheck();
        EXPECT_TRUE(oracle.clean());
        EXPECT_EQ(oracle.violationCount(), 0u);
        kernel.machine().mem().freeFrame(frame);
    });
}

TEST(ShootdownUnit, ActionQueueOverflowEscalatesToFullFlush)
{
    hw::MachineConfig config = pmapConfig();
    config.action_queue_size = 2;
    inKernel(config, [](vm::Kernel &kernel, kern::Thread &drv) {
        auto pmap = kernel.pmaps().createPmap();
        kern::Cpu &remote = kernel.machine().cpu(2);
        pmap->activate(remote);
        // Park entries in the remote TLB so the flush is observable.
        remote.tlb().insert(pmap->space(), 900, 3, ProtRead, false);

        const Pfn frame = kernel.machine().mem().allocFrame();
        for (Vpn v = 0; v < 6; ++v)
            pmap->enter(drv, v, frame, ProtReadWrite);
        // Remote CPU 2 is idle (no thread), so actions queue up
        // without being drained; the queue overflows.
        for (Vpn v = 0; v < 6; ++v)
            pmap->remove(drv, v, v + 1);
        EXPECT_GT(kernel.pmaps().shoot().queue_overflows, 0u);
        EXPECT_TRUE(
            kernel.pmaps().shoot().stateFor(remote.id()).overflow);
        kernel.machine().mem().freeFrame(frame);
    });
}

} // namespace
} // namespace mach
