/**
 * @file
 * Section 3: why Mach chose shootdown over the delayed-flush
 * alternative.
 *
 * The paper lists three candidate techniques for TLB consistency and
 * says the kernel "relies on the first technique [shootdown] because
 * the additional buffer flushes required by the second technique can
 * be expensive on some architectures". This harness implements both
 * and measures the difference:
 *
 *  - per-operation latency: with delayed flush, the initiator of a
 *    mapping change must wait out timer-driven whole-TLB flushes on
 *    every processor using the pmap (a good fraction of the 16 ms
 *    timer period) instead of ~0.5-1.5 ms of shootdown;
 *  - machine-wide TLB effectiveness: periodic whole-buffer flushes
 *    destroy everyone's working set, visible as extra misses and a
 *    several-fold increase in whole-TLB flushes.
 *
 * Both strategies must keep the Section 5.1 tester consistent.
 */

#include "bench_common.hh"

#include "apps/consistency_tester.hh"
#include "pmap/shootdown.hh"

using namespace mach;
using namespace mach::bench;

namespace
{

struct StrategyResult
{
    bool consistent = false;
    double op_latency_usec = 0.0;
    double agora_runtime_ms = 0.0;
    std::uint64_t tlb_misses = 0;
    std::uint64_t full_flushes = 0;
};

StrategyResult
measure(hw::ConsistencyStrategy strategy)
{
    StrategyResult out;

    // Per-operation latency: the Section 5.1 tester's single
    // reprotect, 8 processors involved.
    {
        hw::MachineConfig config;
        config.consistency_strategy = strategy;
        if (strategy == hw::ConsistencyStrategy::DelayedFlush)
            config.tlb_no_refmod_writeback = true;
        config.seed = 0x57a7e6;
        vm::Kernel kernel(config);
        apps::ConsistencyTester tester(
            {.children = 8, .warmup = 30 * kMsec});
        const apps::WorkloadResult result = tester.execute(kernel);
        out.consistent = tester.consistent();
        out.op_latency_usec =
            result.analysis.user_initiator.time_usec.mean();
    }

    // Whole-application effect: Agora re-reads its shared regions, so
    // the periodic whole-buffer flushes of technique 2 show up as
    // extra TLB misses (refill traffic) on top of the flush cost.
    {
        hw::MachineConfig config;
        config.consistency_strategy = strategy;
        if (strategy == hw::ConsistencyStrategy::DelayedFlush)
            config.tlb_no_refmod_writeback = true;
        config.seed = 0x57a7e6;
        vm::Kernel kernel(config);
        apps::Agora app(apps::Agora::Params{});
        const apps::WorkloadResult result = app.execute(kernel);
        out.agora_runtime_ms =
            static_cast<double>(result.virtual_runtime) / kMsec;
        for (CpuId id = 0; id < kernel.machine().ncpus(); ++id) {
            out.tlb_misses += kernel.machine().cpu(id).tlb().misses;
            out.full_flushes +=
                kernel.machine().cpu(id).tlb().full_flushes;
        }
    }
    return out;
}

} // namespace

int
main()
{
    setLogQuiet(true);

    // The two strategies are independent machines: measure both on
    // the bench farm, then print in fixed order.
    StrategyResult shoot;
    StrategyResult delayed;
    runFarmed(
        {[&] { shoot = measure(hw::ConsistencyStrategy::Shootdown); },
         [&] {
             delayed = measure(hw::ConsistencyStrategy::DelayedFlush);
         }});

    std::printf("Section 3: shootdown vs timer-driven delayed "
                "flush\n\n");
    std::printf("%-16s %10s %14s %12s %12s %12s\n", "strategy",
                "consistent", "reprotect(us)", "agora(ms)",
                "TLB misses", "full flushes");
    std::printf("%-16s %10s %14.0f %12.0f %12llu %12llu\n",
                "shootdown", shoot.consistent ? "yes" : "NO",
                shoot.op_latency_usec, shoot.agora_runtime_ms,
                static_cast<unsigned long long>(shoot.tlb_misses),
                static_cast<unsigned long long>(shoot.full_flushes));
    std::printf("%-16s %10s %14.0f %12.0f %12llu %12llu\n",
                "delayed-flush", delayed.consistent ? "yes" : "NO",
                delayed.op_latency_usec, delayed.agora_runtime_ms,
                static_cast<unsigned long long>(delayed.tlb_misses),
                static_cast<unsigned long long>(delayed.full_flushes));

    if (!shoot.consistent || !delayed.consistent)
        return 1;
    std::printf("\nmapping-change latency penalty of delayed flush: "
                "%.1fx\n",
                delayed.op_latency_usec /
                    std::max(1.0, shoot.op_latency_usec));
    std::printf("(the paper, Section 3: Mach relies on shootdown "
                "because the additional buffer\nflushes required by "
                "the delay technique can be expensive)\n");
    return 0;
}
