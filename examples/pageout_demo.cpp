/**
 * @file
 * Pageout under memory pressure: the Section 1 motivation that "even
 * basic virtual memory management functions such as pagein and pageout
 * will not (in general) work correctly unless the TLBs of all CPUs
 * have the same image of the current state of a physical page."
 *
 * A small-memory machine runs two threads sharing a working set larger
 * than RAM; the pageout daemon steals pages (each steal shooting down
 * every mapping of the frame), pages migrate to backing store and
 * back, and the data stays intact throughout.
 *
 *   ./build/examples/pageout_demo
 */

#include <cstdio>

#include "pmap/shootdown.hh"
#include "vm/kernel.hh"

using namespace mach;

int
main()
{
    hw::MachineConfig config;
    config.ncpus = 4;
    config.phys_frames = 128;       // ~512 KB of "physical" memory.
    config.pageout_low_frames = 80;
    config.pagein_latency = 5 * kMsec;
    config.pageout_latency = 5 * kMsec;

    vm::Kernel kernel(config);
    kernel.start();
    kernel.enablePageout();

    constexpr unsigned kPages = 64;
    bool corrupted = false;

    kernel.spawnThread(nullptr, "driver", [&](kern::Thread &driver) {
        vm::Task *task = kernel.createTask("bigdata");
        VAddr base = 0;

        kern::Thread *writer = kernel.spawnThread(
            task, "writer",
            [&](kern::Thread &self) {
                bool ok = kernel.vmAllocate(self, *task, &base,
                                            kPages * kPageSize, true);
                if (!ok)
                    fatal("vm_allocate failed");
                std::printf("[writer] touching %u pages (more than "
                            "fits in RAM)...\n",
                            kPages);
                for (unsigned i = 0; i < kPages; ++i)
                    self.store32(base + i * kPageSize, 0xda7a0000 + i);
                std::printf("[writer] working set established; free "
                            "frames now %u\n",
                            kernel.machine().mem().freeFrames());
                self.sleep(300 * kMsec); // Let the daemon steal.
            },
            0);

        kern::Thread *reader = kernel.spawnThread(
            task, "reader",
            [&](kern::Thread &self) {
                self.sleep(150 * kMsec);
                std::printf("[reader] verifying all %u pages (pageins "
                            "as needed)...\n",
                            kPages);
                for (unsigned i = 0; i < kPages; ++i) {
                    std::uint32_t value = 0;
                    if (!self.load32(base + i * kPageSize, &value) ||
                        value != 0xda7a0000 + i) {
                        std::printf("[reader] CORRUPTION at page %u: "
                                    "0x%08x\n",
                                    i, value);
                        corrupted = true;
                    }
                }
                std::printf("[reader] verification %s\n",
                            corrupted ? "FAILED" : "passed");
            },
            1);

        driver.join(*writer);
        driver.join(*reader);
        kernel.machine().ctx().requestStop();
    });

    kernel.machine().run();

    std::printf("\npageouts %llu, pageins %llu, kernel+user shootdowns "
                "%llu (each steal shoots every mapping of the frame)\n",
                static_cast<unsigned long long>(kernel.pager().pageouts),
                static_cast<unsigned long long>(kernel.pager().pageins),
                static_cast<unsigned long long>(
                    kernel.pmaps().shoot().initiated));
    std::printf("TLB consistency audit: %s\n",
                kernel.pmaps().auditTlbConsistency().empty()
                    ? "clean"
                    : "VIOLATIONS");
    return corrupted ? 1 : 0;
}
