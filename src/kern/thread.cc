#include "kern/thread.hh"

#include <algorithm>

#include "base/logging.hh"
#include "kern/machine.hh"
#include "kern/sched.hh"

namespace mach::kern
{

Thread::Thread(Machine *machine, vm::Task *task, std::string name,
               Body body)
    : machine_(machine), task_(task), name_(std::move(name)),
      body_(std::move(body))
{
}

Cpu &
Thread::cpu()
{
    MACH_ASSERT(state_ == ThreadState::Running && cpu_ != nullptr);
    return *cpu_;
}

void
Thread::compute(Tick dt)
{
    while (dt > 0) {
        Cpu &here = cpu();
        Tick slice = Sched::kQuantum > quantum_used_
                         ? Sched::kQuantum - quantum_used_
                         : 0;
        if (slice == 0)
            slice = Sched::kQuantum;
        const Tick chunk = std::min(dt, slice);
        here.advance(chunk);
        dt -= chunk;
        quantum_used_ += chunk;
        if (quantum_used_ >= Sched::kQuantum || here.need_resched) {
            quantum_used_ = 0;
            here.need_resched = false;
            yield();
        }
    }
}

void
Thread::sleep(Tick dt)
{
    if (dt == 0)
        dt = 1;
    Machine &m = *machine_;
    Sched &sched = m.sched();
    m.ctx().scheduleCall(m.now() + dt,
                         [&sched, this] { sched.wakeup(*this); });
    sched.blockCurrent(cpu());
}

void
Thread::yield()
{
    machine_->sched().yieldCurrent(cpu());
}

void
Thread::join(Thread &other)
{
    MACH_ASSERT(&other != this);
    if (other.state_ == ThreadState::Done)
        return;
    other.joiners_.push_back(this);
    machine_->sched().blockCurrent(cpu());
    MACH_ASSERT(other.state_ == ThreadState::Done);
}

bool
Thread::load32(VAddr va, std::uint32_t *out)
{
    const AccessResult result = access(va, ProtRead);
    if (!result.ok)
        return false;
    *out = machine_->mem().read32(result.paddr);
    return true;
}

bool
Thread::store32(VAddr va, std::uint32_t value)
{
    const AccessResult result = access(va, ProtWrite);
    if (!result.ok)
        return false;
    machine_->mem().write32(result.paddr, value);
    return true;
}

} // namespace mach::kern
