/**
 * @file
 * Address maps: the machine-independent description of an address space.
 *
 * A VmMap is an ordered set of non-overlapping entries, each mapping a
 * page-aligned virtual range onto a window of a VmObject with current
 * and maximum protections and an inheritance attribute. All
 * authoritative mapping state lives here; pmaps are a lazily updated
 * cache of it (Section 2).
 */

#ifndef MACH_VM_VM_MAP_HH
#define MACH_VM_VM_MAP_HH

#include <cstdint>
#include <map>
#include <string>

#include "base/types.hh"
#include "kern/lock.hh"
#include "vm/vm_object.hh"

namespace mach::vm
{

/** Inheritance of an address range across task creation (Section 2). */
enum class Inherit : std::uint8_t
{
    None,  ///< Child gets nothing here.
    Share, ///< Child shares the memory read-write with the parent.
    Copy,  ///< Child gets a virtual (copy-on-write) copy.
};

/** One mapping entry. */
struct VmMapEntry
{
    VAddr start = 0;
    VAddr end = 0;
    ObjectPtr object;
    /** Page offset into the object corresponding to start. */
    std::uint32_t offset = 0;
    Prot cur_prot = ProtReadWrite;
    Prot max_prot = ProtReadWrite;
    Inherit inheritance = Inherit::Copy;
    /**
     * The entry references an object that must be copied before being
     * written through this mapping (pending copy-on-write).
     */
    bool needs_copy = false;
    /**
     * The object is read-write shared with another map (Share
     * inheritance). Virtual copies of shared entries are resolved
     * eagerly (a physical copy), because marking a shared object
     * copy-on-write would detach the sharers from each other.
     */
    bool shared = false;

    std::uint32_t sizePages() const { return (end - start) >> kPageShift; }
};

/** An address space map. */
class VmMap
{
  public:
    VmMap(std::string name, VAddr range_lo, VAddr range_hi);

    const std::string &name() const { return name_; }
    VAddr rangeLo() const { return range_lo_; }
    VAddr rangeHi() const { return range_hi_; }

    /**
     * Serializes operations on this map. A blocking lock, as in Mach:
     * waiters sleep with interrupts enabled, so a processor waiting
     * for a map lock can still take shootdown interrupts -- the
     * discipline that keeps map locks out of the lock/interrupt
     * deadlock the paper's fixed-priority rule exists to prevent
     * (Section 4).
     */
    kern::RwMutex &lock() { return lock_; }

    /** The entry containing @p va, or null. */
    VmMapEntry *lookup(VAddr va);

    /**
     * Find a free gap of @p size bytes, searching upward from the low
     * end of the map's range. Returns 0 when the space is exhausted.
     */
    VAddr findSpace(std::uint32_t size) const;

    /**
     * Like findSpace but restricted to [lo, hi) -- used for the
     * Section 8 pool slices of the kernel map.
     */
    VAddr findSpaceIn(VAddr lo, VAddr hi, std::uint32_t size) const;

    /** Insert a new entry; panics on overlap or misalignment. */
    VmMapEntry *insert(const VmMapEntry &entry);

    /**
     * Split entries so that [start, end) is exactly covered by whole
     * entries, then invoke @p fn on each covered entry in order.
     * Ranges over holes simply skip the holes.
     */
    template <typename Fn>
    void
    clipAndApply(VAddr start, VAddr end, Fn &&fn)
    {
        clip(start);
        clip(end);
        auto it = entries_.lower_bound(start);
        while (it != entries_.end() && it->second.start < end) {
            auto next = std::next(it);
            fn(it->second);
            it = next;
        }
    }

    /** Remove an entry (by its start address). */
    void erase(VAddr start);

    /**
     * Coalesce adjacent entries that are identical in everything but
     * extent (same object at contiguous offsets, same protections,
     * inheritance and copy state) -- Mach's vm_map_simplify, undoing
     * the fragmentation that clipping leaves behind. Returns the
     * number of merges performed.
     */
    unsigned simplify(VAddr start, VAddr end);

    const std::map<VAddr, VmMapEntry> &entries() const
    {
        return entries_;
    }

    std::map<VAddr, VmMapEntry> &entries() { return entries_; }

    /** Total mapped bytes. */
    std::uint64_t mappedBytes() const;

  private:
    /** Split the entry containing @p va so an entry boundary lands
     *  exactly at @p va (no-op if va is already a boundary or a hole).
     */
    void clip(VAddr va);

    std::string name_;
    VAddr range_lo_;
    VAddr range_hi_;
    std::map<VAddr, VmMapEntry> entries_;
    kern::RwMutex lock_;
};

} // namespace mach::vm

#endif // MACH_VM_VM_MAP_HH
