/**
 * @file
 * The persistent-corpus contract, end to end:
 *
 *  - entry text round-trips through formatEntry/parseEntry;
 *  - every committed chk_corpus/ entry (the directory this repo
 *    ships, via the MACH_SOURCE_CORPUS_DIR compile definition)
 *    replays to its recorded digest and verdict, at farm widths 1,
 *    2, and 4 -- the corpus is a set of deterministic reproducers,
 *    not just fuzzer state;
 *  - coverage-guided campaigns account as-if-serial: trials, novelty
 *    and the first failing schedule are identical at any farm shape;
 *  - the coverage signal earns its keep: on the planted responder-
 *    stall bug a guided campaign reaches the failure in strictly
 *    fewer trials than blind sampling with the same budget
 *    (docs/CHECKER.md holds the full three-bug comparison table);
 *  - the bounded-exhaustive window mode proves a small neighborhood
 *    around a sync point: it finds the planted stall bug there and
 *    certifies the healthy protocol clean over the same window;
 *  - a campaign resumed on an existing corpus never re-runs a
 *    schedule it already tried (duplicate_probes_skipped).
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "base/perturb.hh"
#include "chk/corpus.hh"
#include "chk/explorer.hh"
#include "chk/scenario.hh"

#ifndef MACH_SOURCE_CORPUS_DIR
#define MACH_SOURCE_CORPUS_DIR "chk_corpus"
#endif

namespace
{

using namespace mach;

TEST(CorpusEntry, FormatRoundTrips)
{
    chk::CorpusEntry entry;
    entry.scenario = "storm-baseline";
    entry.schedule = "e120+50000,b40+9000";
    entry.signatures = {0x1111111111111111ull, 0x2222222222222222ull,
                        0xdeadbeefcafef00dull};
    entry.digest = 0xabcdef0123456789ull;
    entry.trial = 17;
    entry.new_buckets = 2;
    entry.failed = true;

    const std::string text = chk::Corpus::formatEntry(entry);
    chk::CorpusEntry back;
    std::string error;
    ASSERT_TRUE(chk::Corpus::parseEntry(text, &back, &error)) << error;
    EXPECT_EQ(back.scenario, entry.scenario);
    EXPECT_EQ(back.schedule, entry.schedule);
    EXPECT_EQ(back.signatures, entry.signatures);
    EXPECT_EQ(back.digest, entry.digest);
    EXPECT_EQ(back.trial, entry.trial);
    EXPECT_EQ(back.new_buckets, entry.new_buckets);
    EXPECT_EQ(back.failed, entry.failed);

    // The baseline spelling ("" schedule) survives the trip too.
    entry.schedule.clear();
    entry.failed = false;
    ASSERT_TRUE(chk::Corpus::parseEntry(chk::Corpus::formatEntry(entry),
                                        &back, &error))
        << error;
    EXPECT_EQ(back.schedule, "");
    EXPECT_FALSE(back.failed);
}

/** The committed corpus, loaded once (it is read-only test input). */
const chk::Corpus &
committedCorpus()
{
    static chk::Corpus *corpus = [] {
        auto *c = new chk::Corpus();
        std::string error;
        EXPECT_TRUE(c->loadDir(MACH_SOURCE_CORPUS_DIR, &error))
            << error;
        return c;
    }();
    return *corpus;
}

TEST(CommittedCorpus, ShipsTheExpectedCampaigns)
{
    const chk::Corpus &corpus = committedCorpus();
    ASSERT_FALSE(corpus.entries().empty())
        << "no committed corpus at " << MACH_SOURCE_CORPUS_DIR;

    // Healthy scenarios contribute only passing entries; each planted
    // bug ships with at least one failing reproducer entry -- but its
    // baseline ("" schedule) passes, since the bugs only manifest
    // under perturbation.
    std::map<std::string, unsigned> failing;
    for (const chk::CorpusEntry &e : corpus.entries()) {
        if (e.failed)
            ++failing[e.scenario];
        EXPECT_TRUE(!e.schedule.empty() || !e.failed)
            << e.scenario << ": baseline entry must pass";
    }
    EXPECT_EQ(failing.count("storm-baseline"), 0u);
    EXPECT_GE(failing["broken-stall"], 1u);
    EXPECT_GE(failing["broken-replica"], 1u);
    EXPECT_GE(failing["broken-l0"], 1u);
    EXPECT_GE(failing["broken-asid"], 1u);
}

/**
 * The golden replay: every committed entry, at every farm shape. The
 * corpus records (scenario, schedule, digest, verdict); replaying the
 * schedule must reproduce digest and verdict bit-exactly whether the
 * batch runs serially, on 2 workers, or on 4 with fork snapshots.
 */
TEST(CommittedCorpus, EveryEntryReplaysBitExactlyAtFarmShapes124)
{
    const chk::Corpus &corpus = committedCorpus();
    ASSERT_FALSE(corpus.entries().empty());

    // Group by scenario so each batch shares a baseline (and a
    // fork-snapshot prefix).
    std::map<std::string, std::vector<const chk::CorpusEntry *>>
        by_scenario;
    for (const chk::CorpusEntry &e : corpus.entries())
        by_scenario[e.scenario].push_back(&e);

    for (const unsigned jobs : {1u, 2u, 4u}) {
        farm::FarmOptions farm;
        farm.jobs = jobs;
        chk::Explorer explorer(nullptr, farm);
        for (const auto &[name, entries] : by_scenario) {
            chk::Scenario scenario;
            ASSERT_TRUE(chk::resolveScenario(name, &scenario)) << name;
            std::vector<SchedulePerturber> probes;
            probes.reserve(entries.size());
            for (const chk::CorpusEntry *e : entries) {
                SchedulePerturber p;
                std::string error;
                ASSERT_TRUE(SchedulePerturber::parse(e->schedule, &p,
                                                     &error))
                    << name << ": " << error;
                probes.push_back(std::move(p));
            }
            const std::vector<chk::TrialResult> results =
                explorer.runTrials(scenario, probes);
            ASSERT_EQ(results.size(), entries.size());
            for (std::size_t i = 0; i < results.size(); ++i) {
                EXPECT_EQ(results[i].digest, entries[i]->digest)
                    << name << " jobs=" << jobs << " schedule \""
                    << entries[i]->schedule << "\"";
                EXPECT_EQ(results[i].failed(), entries[i]->failed)
                    << name << " jobs=" << jobs << " schedule \""
                    << entries[i]->schedule << "\"";
            }
        }
    }
}

/**
 * The coverage signal itself is replayable: a signed re-run of a
 * committed entry reproduces the recorded signature list (and the
 * signed digest equals the unsigned one). One entry per scenario
 * keeps this cheap; the full digest sweep above covers the rest.
 */
TEST(CommittedCorpus, SignaturesReplayBitExactly)
{
    const chk::Corpus &corpus = committedCorpus();
    chk::Explorer explorer;
    std::map<std::string, const chk::CorpusEntry *> first;
    for (const chk::CorpusEntry &e : corpus.entries())
        first.emplace(e.scenario, &e);
    for (const auto &[name, entry] : first) {
        chk::Scenario scenario;
        ASSERT_TRUE(chk::resolveScenario(name, &scenario)) << name;
        SchedulePerturber p;
        ASSERT_TRUE(
            SchedulePerturber::parse(entry->schedule, &p, nullptr));
        const chk::TrialResult signed_run =
            explorer.runTrialSigned(scenario, p);
        EXPECT_EQ(signed_run.signatures, entry->signatures) << name;
        EXPECT_EQ(signed_run.digest, entry->digest) << name;
    }
}

TEST(CoverageCampaign, AccountsAsIfSerialAtAnyFarmShape)
{
    const chk::Scenario broken = chk::brokenReplicaScenario();
    chk::ExploreOptions opt;
    opt.systematic_budget = 0;
    opt.random_budget = 80;
    opt.coverage_guided = true;

    chk::ExploreResult results[2];
    const unsigned shapes[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
        farm::FarmOptions farm;
        farm.jobs = shapes[i];
        chk::Explorer explorer(nullptr, farm);
        chk::Corpus corpus; // fresh, in-memory
        chk::ExploreOptions o = opt;
        o.corpus = &corpus;
        results[i] = explorer.explore(broken, o);
    }
    EXPECT_EQ(results[0].trials, results[1].trials);
    EXPECT_EQ(results[0].failures, results[1].failures);
    EXPECT_EQ(results[0].coverage_novel, results[1].coverage_novel);
    EXPECT_EQ(results[0].duplicate_probes_skipped,
              results[1].duplicate_probes_skipped);
    EXPECT_EQ(results[0].first_failing.format(),
              results[1].first_failing.format());
    EXPECT_EQ(results[0].first_failure.digest,
              results[1].first_failure.digest);
}

/**
 * The headline property: guidance beats blind sampling. Both modes
 * get the same budget and no systematic sweep (which is shared and
 * would mask the difference); the guided campaign must reach the
 * planted responder-stall failure in strictly fewer trials. The
 * equivalent broken-replica and broken-l0 measurements are recorded
 * in docs/CHECKER.md's comparison table -- they run minutes, not
 * test-suite seconds.
 */
TEST(CoverageCampaign, BeatsBlindSamplingOnPlantedStallBug)
{
    const chk::Scenario broken = chk::brokenStallScenario();
    chk::ExploreOptions opt;
    opt.systematic_budget = 0;
    opt.random_budget = 400;

    chk::Explorer explorer;

    chk::Corpus guided_corpus;
    chk::ExploreOptions guided = opt;
    guided.coverage_guided = true;
    guided.corpus = &guided_corpus;
    const chk::ExploreResult with_coverage =
        explorer.explore(broken, guided);
    ASSERT_GT(with_coverage.failures, 0u)
        << "guided campaign missed the planted bug";

    chk::ExploreOptions blind = opt;
    blind.coverage_guided = false;
    const chk::ExploreResult without =
        explorer.explore(broken, blind);
    ASSERT_GT(without.failures, 0u)
        << "blind campaign missed the planted bug";

    EXPECT_LT(with_coverage.trials, without.trials)
        << "coverage guidance should reach the failure first";
}

TEST(ExhaustiveWindow, ProvesTheSyncNeighborhood)
{
    // Around event 92 -- the sync point the systematic sweep's
    // minimized broken-stall reproducer pins (e92+...) -- the
    // bounded-complete enumeration must rediscover the failure...
    chk::ExhaustiveWindow window;
    window.center = 92;
    window.halfwidth = 8;
    window.max_delays = 1;

    chk::Explorer explorer;
    const chk::ExploreResult broken =
        explorer.exploreExhaustive(chk::brokenStallScenario(), window);
    EXPECT_GT(broken.failures, 0u)
        << "exhaustive window around the sync point missed the "
           "planted stall bug";

    // ...and certify the healthy protocol clean over the very same
    // placements: an exhaustive pass is a proof for the window, not a
    // sample.
    const std::vector<chk::Scenario> library = chk::builtinScenarios();
    const chk::Scenario *healthy =
        chk::findScenario(library, "storm-baseline");
    ASSERT_NE(healthy, nullptr);
    const chk::ExploreResult clean =
        explorer.exploreExhaustive(*healthy, window);
    EXPECT_EQ(clean.failures, 0u)
        << "healthy protocol failed in the exhaustive window: "
        << clean.first_failing.format();
}

TEST(CorpusResume, NeverRepeatsATriedSchedule)
{
    const std::vector<chk::Scenario> library = chk::builtinScenarios();
    const chk::Scenario *storm =
        chk::findScenario(library, "storm-baseline");
    ASSERT_NE(storm, nullptr);

    chk::ExploreOptions opt;
    opt.systematic_budget = 6;
    opt.random_budget = 6;
    opt.coverage_guided = true;

    chk::Explorer explorer;
    chk::Corpus corpus; // shared across both campaigns
    opt.corpus = &corpus;

    const chk::ExploreResult first = explorer.explore(*storm, opt);
    EXPECT_EQ(first.duplicate_probes_skipped, 0u);
    EXPECT_GE(corpus.entries().size(), 1u); // baseline at minimum

    // The resumed campaign regenerates the same systematic sweep and
    // must skip every probe of it (and any mutation duplicates) as
    // already tried -- budget is spent on generation, not re-runs.
    const chk::ExploreResult resumed = explorer.explore(*storm, opt);
    EXPECT_GE(resumed.duplicate_probes_skipped, 6u);
    EXPECT_LT(resumed.trials, first.trials);
}

} // namespace
