#include "sim/context.hh"

#include <utility>

#include "base/logging.hh"

namespace mach::sim
{

FiberId
Context::spawn(std::string name, Fiber::Entry entry, Tick delay)
{
    FiberId id = next_fiber_id_++;
    fibers_.emplace(id, std::make_unique<Fiber>(std::move(name),
                                                std::move(entry)));
    scheduleWake(id, now_ + delay);
    return id;
}

std::string
Context::fiberName(FiberId id) const
{
    auto it = fibers_.find(id);
    return it == fibers_.end() ? "<gone>" : it->second->name();
}

FiberId
Context::currentFiber() const
{
    MACH_ASSERT(current_id_ != 0);
    return current_id_;
}

void
Context::block()
{
    MACH_ASSERT(Fiber::current() != nullptr);
    Fiber::yieldToScheduler();
}

EventId
Context::scheduleWake(FiberId id, Tick when)
{
    MACH_ASSERT(id != 0);
    MACH_ASSERT(when >= now_);
    // Wakes are the hot event kind (every sleep, nap, and IPI): use
    // the queue's raw path so no closure is constructed or dispatched.
    return queue_.scheduleRaw(when, &Context::wakeTrampoline, this, id);
}

void
Context::wakeTrampoline(void *ctx, std::uint64_t token)
{
    static_cast<Context *>(ctx)->resumeFiber(
        static_cast<FiberId>(token));
}

EventId
Context::scheduleCall(Tick when, std::function<void()> cb)
{
    MACH_ASSERT(when >= now_);
    return queue_.schedule(when, std::move(cb));
}

void
Context::cancel(EventId id)
{
    queue_.cancel(id);
}

void
Context::sleep(Tick dt)
{
    scheduleWake(currentFiber(), now_ + dt);
    block();
}

void
Context::resumeFiber(FiberId id)
{
    auto it = fibers_.find(id);
    if (it == fibers_.end())
        return; // Fiber finished before a stale wake fired.

    FiberId prev = current_id_;
    current_id_ = id;
    it->second->resume();
    current_id_ = prev;

    if (it->second->finished())
        fibers_.erase(it);
}

std::uint64_t
Context::run(Tick until)
{
    MACH_ASSERT(Fiber::current() == nullptr);
    MACH_ASSERT(!running_);
    running_ = true;
    stop_requested_ = false;

    // The queue dispatches whole ticks at a time: all the bookkeeping
    // of finding, sweeping, and popping the front bucket is paid once
    // per distinct tick instead of once per event. Order and stop
    // semantics are identical to the per-event loop.
    std::uint64_t dispatched = 0;
    while (!queue_.empty() && !stop_requested_) {
        const std::uint64_t n =
            queue_.fireTickBatch(until, &now_, &stop_requested_);
        if (n == 0)
            break; // Front tick lies beyond the horizon.
        dispatched += n;
    }

    running_ = false;
    return dispatched;
}

std::uint64_t
Context::runGuarded(Tick until, const std::function<bool()> &stop_after,
                    bool *hit_guard)
{
    MACH_ASSERT(Fiber::current() == nullptr);
    MACH_ASSERT(!running_);
    MACH_ASSERT(stop_after != nullptr);
    running_ = true;
    stop_requested_ = false;
    *hit_guard = false;

    std::uint64_t dispatched = 0;
    while (!queue_.empty() && !stop_requested_) {
        const Tick when = queue_.nextTime();
        if (when > until)
            break;
        MACH_ASSERT(when >= now_);
        now_ = when;
        queue_.fireFront();
        ++dispatched;
        // A stop request wins over the guard: the run is complete, so
        // resuming it would be wrong regardless of the watermark.
        if (!stop_requested_ && stop_after()) {
            *hit_guard = true;
            break;
        }
    }

    running_ = false;
    return dispatched;
}

} // namespace mach::sim
