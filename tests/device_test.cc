/**
 * @file
 * The `device` test tier: DMA devices as first-class shootdown
 * responders (docs/DEVICES.md).
 *
 * Three layers:
 *
 *  - Unit tests against a live kernel drive single DMA operations
 *    from a test fiber and check the responder contract directly:
 *    IOTLB fill and hit, translation faults, the idle device sitting
 *    on queued consistency actions until its next operation boundary,
 *    the in-flight transfer abort under a drain request, and detach
 *    removing the device from the responder set.
 *
 *  - The device scenarios from the checker library re-run under every
 *    shootdown-avoidance policy (the same adaptation rules as the
 *    strategy tier), plus a digest-determinism check with a device
 *    configured.
 *
 *  - The golden detection test for the planted
 *    chk_skip_iotlb_invalidate bug: the explorer must find a schedule
 *    where a stale IOTLB entry survives the drain, minimize it, and
 *    replay it bit-exactly while the healthy twin shrugs it off.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/perturb.hh"
#include "chk/explorer.hh"
#include "chk/scenario.hh"
#include "dev/dma_device.hh"
#include "hw/machine_config.hh"
#include "kern/machine.hh"
#include "pmap/pmap.hh"
#include "pmap/shootdown.hh"
#include "sim/context.hh"
#include "vm/kernel.hh"
#include "vm/task.hh"

namespace mach
{
namespace
{

hw::MachineConfig
deviceConfig(unsigned devices = 1)
{
    setLogQuiet(true);
    hw::MachineConfig config;
    config.ncpus = 4;
    config.devices = devices;
    config.iotlb_entries = 4;
    config.seed = 0x5eed5eedull;
    return config;
}

/**
 * Run @p body as the driver thread of a fresh kernel built from
 * @p config; the body must leave the machine stoppable (the helper
 * requests the stop when it returns).
 */
void
inKernel(const hw::MachineConfig &config,
         const std::function<void(vm::Kernel &, kern::Thread &)> &body)
{
    vm::Kernel kernel(config);
    kernel.start();
    bool finished = false;
    kernel.spawnThread(nullptr, "dev-driver",
                       [&](kern::Thread &driver) {
                           body(kernel, driver);
                           finished = true;
                           kernel.machine().ctx().requestStop();
                       });
    kernel.machine().run();
    ASSERT_TRUE(finished);
}

/** Fault @p pages pages at @p base into @p task with write access. */
void
touchPages(vm::Kernel &kernel, kern::Thread &drv, vm::Task *task,
           VAddr base, unsigned pages)
{
    kern::Thread *toucher = kernel.spawnThread(
        task, "dev-touch", [base, pages](kern::Thread &self) {
            for (unsigned i = 0; i < pages; ++i)
                self.access(base + i * kPageSize, ProtWrite);
        });
    drv.join(*toucher);
}

TEST(DeviceResponders, IdsNodesAndRegistration)
{
    hw::MachineConfig config = deviceConfig(3);
    vm::Kernel kernel(config);

    ASSERT_EQ(kernel.deviceCount(), 3u);
    const pmap::ShootdownController &shoot = kernel.pmaps().shoot();
    ASSERT_EQ(shoot.responders().size(), 3u);
    for (unsigned i = 0; i < 3; ++i) {
        dev::DmaDevice &device = kernel.device(i);
        // Devices extend the CPU id space: ids [ncpus, ncpus+devices).
        EXPECT_EQ(device.id(), config.ncpus + i);
        EXPECT_EQ(device.index(), i);
        EXPECT_EQ(device.node(), config.nodeOfDevice(i));
        EXPECT_EQ(device.describe(), "dev" + std::to_string(i));
        EXPECT_EQ(shoot.responders()[i], &device);
    }
}

TEST(DeviceResponders, NodeAssignmentRoundRobins)
{
    hw::MachineConfig config;
    config.numa_nodes = 2;
    EXPECT_EQ(config.nodeOfDevice(0), 0u);
    EXPECT_EQ(config.nodeOfDevice(1), 1u);
    EXPECT_EQ(config.nodeOfDevice(2), 0u);
    config.numa_nodes = 1;
    EXPECT_EQ(config.nodeOfDevice(5), 0u);
}

TEST(DmaDevice, ReadWriteCommitHitAndFault)
{
    inKernel(deviceConfig(), [](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("dma-unit");
        VAddr base = 0;
        ASSERT_TRUE(kernel.vmAllocate(drv, *task, &base, 2 * kPageSize,
                                      true));
        touchPages(kernel, drv, task, base, 2);

        dev::DmaDevice &device = kernel.device(0);
        pmap::Pmap &pmap = task->pmap();
        device.attachTo(pmap);

        bool done = false;
        kernel.machine().ctx().spawn("dma-ops", [&] {
            // First write misses the IOTLB and walks.
            EXPECT_TRUE(device.dmaWrite(pmap, vaToVpn(base), 0,
                                        0xfeedfaceu));
            EXPECT_EQ(device.iommu_walks, 1u);
            EXPECT_EQ(device.writes_committed, 1u);
            // A read of the same page hits the filled entry.
            const std::uint64_t hits_before = device.tlb().hits;
            EXPECT_TRUE(device.dmaRead(pmap, vaToVpn(base)));
            EXPECT_GT(device.tlb().hits, hits_before);
            EXPECT_EQ(device.iommu_walks, 1u);
            // Devices cannot page fault: an unmapped page drops the op.
            EXPECT_FALSE(
                device.dmaRead(pmap, vaToVpn(base) + 0x1000));
            EXPECT_EQ(device.dma_faults, 1u);
            done = true;
        });
        while (!done)
            drv.sleep(20 * kUsec);

        // The committed write is visible through the VM system.
        std::uint32_t value = 0;
        ASSERT_TRUE(kernel.vmRead(drv, *task, base, &value, 4));
        EXPECT_EQ(value, 0xfeedfaceu);

        kernel.machine().ctx().spawn("dma-detach",
                                     [&] { device.detachFrom(pmap); });
        drv.sleep(100 * kUsec);
    });
}

TEST(DmaDevice, IdleDeviceSitsOnQueuedActionsUntilNextOp)
{
    inKernel(deviceConfig(), [](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("dma-queue");
        VAddr base = 0;
        ASSERT_TRUE(
            kernel.vmAllocate(drv, *task, &base, kPageSize, true));
        touchPages(kernel, drv, task, base, 1);

        dev::DmaDevice &device = kernel.device(0);
        pmap::Pmap &pmap = task->pmap();
        device.attachTo(pmap);
        pmap::ShootdownController &shoot = kernel.pmaps().shoot();
        pmap::CpuShootState &st = shoot.stateFor(device.id());

        int phase = 0;
        kernel.machine().ctx().spawn("dma-ops", [&] {
            sim::Context &ctx = kernel.machine().ctx();
            // Phase 0: fill the IOTLB entry for the target page.
            EXPECT_TRUE(
                device.dmaWrite(pmap, vaToVpn(base), 0, 0xaau));
            phase = 1;
            while (phase < 2)
                ctx.sleep(20 * kUsec);
            // Phase 2: the next operation boundary drains the queued
            // invalidation first, so the write sees the revoked PTE
            // and is dropped -- never the stale IOTLB entry.
            const std::uint64_t drains_before = device.drains;
            EXPECT_FALSE(
                device.dmaWrite(pmap, vaToVpn(base), 0, 0xbbu));
            EXPECT_GT(device.drains, drains_before);
            EXPECT_EQ(device.dma_faults, 1u);
            // Read access is still allowed; the walk refills.
            EXPECT_TRUE(device.dmaRead(pmap, vaToVpn(base)));
            phase = 3;
        });
        while (phase < 1)
            drv.sleep(20 * kUsec);

        // Revoke write access. The device is idle (no transfer in
        // flight), so the action queues at it -- like an idle CPU --
        // and the initiator completes without waiting for a drain.
        const std::uint64_t commands_before = shoot.device_commands;
        ASSERT_TRUE(
            kernel.vmProtect(drv, *task, base, kPageSize, ProtRead));
        EXPECT_GT(shoot.device_commands, commands_before);
        EXPECT_TRUE(st.action_needed);

        phase = 2;
        while (phase < 3)
            drv.sleep(20 * kUsec);
        EXPECT_FALSE(st.action_needed);
        EXPECT_EQ(device.writes_committed, 1u);

        kernel.machine().ctx().spawn("dma-detach",
                                     [&] { device.detachFrom(pmap); });
        drv.sleep(100 * kUsec);
    });
}

TEST(DmaDevice, DrainRequestAbortsInFlightWrite)
{
    hw::MachineConfig config = deviceConfig();
    // A long transfer so the revocation reliably lands mid-flight.
    config.dev_transfer_cost = 5 * kMsec;
    inKernel(config, [](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("dma-abort");
        VAddr base = 0;
        ASSERT_TRUE(
            kernel.vmAllocate(drv, *task, &base, kPageSize, true));
        touchPages(kernel, drv, task, base, 1);

        dev::DmaDevice &device = kernel.device(0);
        pmap::Pmap &pmap = task->pmap();
        device.attachTo(pmap);

        int phase = 0;
        bool committed = true;
        kernel.machine().ctx().spawn("dma-ops", [&] {
            phase = 1;
            committed =
                device.dmaWrite(pmap, vaToVpn(base), 0, 0xccu);
            phase = 2;
        });
        while (phase < 1)
            drv.sleep(20 * kUsec);
        drv.sleep(1 * kMsec); // Mid-transfer (ends at +5 ms).

        // The revocation requests a drain; the transfer must abort
        // within dev_drain_bound and nothing may land in memory.
        const Tick revoke_at = kernel.machine().now();
        ASSERT_TRUE(
            kernel.vmProtect(drv, *task, base, kPageSize, ProtRead));
        const Tick revoke_took = kernel.machine().now() - revoke_at;
        EXPECT_LT(revoke_took, 1 * kMsec)
            << "initiator waited for the full transfer instead of "
               "the bounded drain";

        while (phase < 2)
            drv.sleep(20 * kUsec);
        EXPECT_FALSE(committed);
        EXPECT_EQ(device.dma_aborts, 1u);
        EXPECT_EQ(device.writes_committed, 0u);
        EXPECT_GE(kernel.pmaps().shoot().device_sync_waits, 1u);

        std::uint32_t value = 0xdeadbeefu;
        ASSERT_TRUE(kernel.vmRead(drv, *task, base, &value, 4));
        EXPECT_EQ(value, 0u) << "aborted DMA write landed in memory";

        kernel.machine().ctx().spawn("dma-detach",
                                     [&] { device.detachFrom(pmap); });
        drv.sleep(100 * kUsec);
    });
}

TEST(DmaDevice, DetachLeavesResponderSetForTheSpace)
{
    inKernel(deviceConfig(), [](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("dma-detach");
        VAddr base = 0;
        ASSERT_TRUE(
            kernel.vmAllocate(drv, *task, &base, kPageSize, true));
        touchPages(kernel, drv, task, base, 1);

        dev::DmaDevice &device = kernel.device(0);
        pmap::Pmap &pmap = task->pmap();

        bool done = false;
        kernel.machine().ctx().spawn("dma-ops", [&] {
            device.attachTo(pmap);
            EXPECT_TRUE(
                device.dmaWrite(pmap, vaToVpn(base), 0, 0xddu));
            device.detachFrom(pmap);
            done = true;
        });
        while (!done)
            drv.sleep(20 * kUsec);

        // After detach no initiator queues at the device for this
        // space: the revocation is CPU-only.
        pmap::ShootdownController &shoot = kernel.pmaps().shoot();
        const std::uint64_t commands_before = shoot.device_commands;
        ASSERT_TRUE(
            kernel.vmProtect(drv, *task, base, kPageSize, ProtRead));
        EXPECT_EQ(shoot.device_commands, commands_before);
        EXPECT_FALSE(
            shoot.stateFor(device.id()).action_needed);
    });
}

// ---- Scenario-level checks -----------------------------------------

/** The four avoidance policies beyond the 1989 baseline. */
constexpr hw::ShootdownPolicy kAvoidancePolicies[] = {
    hw::ShootdownPolicy::LazyAsid,
    hw::ShootdownPolicy::Batched,
    hw::ShootdownPolicy::RangeFlush,
    hw::ShootdownPolicy::ReuseElide,
};

/**
 * Retarget @p config at @p policy, adding the TLB features the policy
 * needs (the strategy tier's adaptation rules; see
 * tests/policy_strategy_test.cc). Returns false when the combination
 * is architecturally incompatible.
 */
bool
adaptConfigToPolicy(hw::MachineConfig &config,
                    hw::ShootdownPolicy policy)
{
    if (config.consistency_strategy ==
        hw::ConsistencyStrategy::DelayedFlush)
        return false;
    if (config.tlb_remote_invalidate)
        return false;
    if (policy == hw::ShootdownPolicy::ReuseElide &&
        config.tlb_no_refmod_writeback)
        return false;

    config.shootdown_policy = policy;
    if (policy == hw::ShootdownPolicy::LazyAsid)
        config.tlb_asid_tags = true;
    if (policy == hw::ShootdownPolicy::ReuseElide)
        config.tlb_software_reload = true;
    config.validate();
    return true;
}

/**
 * The device scenarios stay clean under every avoidance policy: the
 * healthy twin of the planted bug in particular must hold across the
 * full matrix (the strategy tier runs this too; the device lane is
 * self-contained so CI can gate on `ctest -L device` alone).
 */
TEST(DeviceScenarios, CleanAcrossPolicyMatrix)
{
    const std::vector<chk::Scenario> library = chk::builtinScenarios();
    const char *names[] = {"dev-dma-race", "dev-masked",
                           "dev-numa-remote"};
    chk::Explorer explorer;
    for (const char *name : names) {
        const chk::Scenario *base = chk::findScenario(library, name);
        ASSERT_NE(base, nullptr) << name;
        for (hw::ShootdownPolicy policy : kAvoidancePolicies) {
            chk::Scenario scenario = *base;
            if (!adaptConfigToPolicy(scenario.config, policy))
                continue;
            const chk::TrialResult r =
                explorer.runTrial(scenario, SchedulePerturber{});
            const std::string tag =
                std::string(name) + " / policy " +
                std::to_string(static_cast<int>(policy));
            EXPECT_TRUE(r.completed) << tag << " did not finish";
            EXPECT_TRUE(r.predicate_ok) << tag << ": " << r.note;
            EXPECT_EQ(r.violation_count, 0u)
                << tag << ": "
                << (r.violations.empty() ? "" : r.violations.front());
        }
    }
}

/** Device runs replay to equal digests under equal schedules. */
TEST(DeviceScenarios, TrialDigestIsDeterministic)
{
    const std::vector<chk::Scenario> library = chk::builtinScenarios();
    const chk::Scenario *race =
        chk::findScenario(library, "dev-dma-race");
    ASSERT_NE(race, nullptr);

    SchedulePerturber p;
    std::string error;
    ASSERT_TRUE(
        SchedulePerturber::parse("e150+40000,b60+7000", &p, &error))
        << error;

    chk::Explorer explorer;
    const chk::TrialResult a = explorer.runTrial(*race, p);
    const chk::TrialResult b = explorer.runTrial(*race, p);
    EXPECT_TRUE(a.completed);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.end_time, b.end_time);
    EXPECT_EQ(a.events_fired, b.events_fired);
}

/**
 * The golden detection test for the fifth planted bug. The device
 * drain that skips its IOTLB invalidations is schedule-dependent: the
 * decoy sweep always evicts the target's stale entry on the
 * unperturbed baseline, so the explorer must find a schedule parking
 * the device inside the sweep across the driver's revocation, where
 * the oracle's audit (landed by the scenario's probe pmap ops)
 * catches the stale writable entry.
 */
TEST(BrokenProtocol, ExplorerCatchesSkippedIotlbInvalidate)
{
    const chk::Scenario broken = chk::brokenIotlbScenario();
    chk::Explorer explorer;
    // The stale window is one sweep-parked drain per revoke round;
    // give the sweep the same deepened budget as the other
    // single-window planted bugs.
    chk::ExploreOptions opt;
    opt.systematic_budget = 200;
    opt.random_budget = 400;
    const chk::ExploreResult res = explorer.explore(broken, opt);

    ASSERT_FALSE(res.baseline_failed)
        << "planted bug should be schedule-dependent, but the "
           "baseline already failed: "
        << res.baseline.note;
    ASSERT_GT(res.failures, 0u)
        << "explorer missed the planted skipped-IOTLB-invalidate bug";

    // The failure is a stale device translation: the oracle's
    // IOTLB-vs-page-table audit flags the un-excused entry and/or a
    // DMA write lands through the revoked mapping.
    EXPECT_TRUE(res.first_failure.violation_count > 0 ||
                !res.first_failure.predicate_ok)
        << "unexpected failure mode (liveness?)";

    // Minimization produced a no-larger, still-failing reproducer.
    ASSERT_FALSE(res.minimized_schedule.empty());
    EXPECT_GE(res.minimized.size(), 1u);
    EXPECT_LE(res.minimized.size(), res.first_failing.size());
    EXPECT_TRUE(res.minimized_result.failed());

    // The string round-trips and replays the failure bit-exactly.
    SchedulePerturber replay;
    std::string error;
    ASSERT_TRUE(SchedulePerturber::parse(res.minimized_schedule,
                                         &replay, &error))
        << error;
    EXPECT_EQ(replay.format(), res.minimized_schedule);
    const chk::TrialResult once = explorer.runTrial(broken, replay);
    const chk::TrialResult twice = explorer.runTrial(broken, replay);
    EXPECT_TRUE(once.failed());
    EXPECT_EQ(once.digest, twice.digest);

    // The healthy drain (invalidations applied) shrugs off the same
    // adversarial schedule.
    const std::vector<chk::Scenario> library = chk::builtinScenarios();
    const chk::Scenario *fixed =
        chk::findScenario(library, "dev-dma-race");
    ASSERT_NE(fixed, nullptr);
    const chk::TrialResult healthy = explorer.runTrial(*fixed, replay);
    EXPECT_FALSE(healthy.failed())
        << (healthy.violations.empty() ? healthy.note
                                       : healthy.violations.front());
}

} // namespace
} // namespace mach
