#include "apps/workload.hh"

#include "base/logging.hh"

namespace mach::apps
{

WorkloadResult
Workload::execute(vm::Kernel &kernel)
{
    kern::Machine &machine = kernel.machine();
    kernel.start();
    machine.xpr().reset();

    const Tick start = machine.now();
    kernel.spawnThread(nullptr, name() + "-driver",
                       [this, &kernel](kern::Thread &driver) {
                           run(kernel, driver);
                           kernel.machine().ctx().requestStop();
                       });
    machine.run();

    WorkloadResult result;
    result.virtual_runtime = machine.now() - start;
    result.analysis = xpr::analyze(machine.xpr());
    result.lazy_avoided = 0;
    for (const auto &task : kernel.tasks())
        result.lazy_avoided += task->pmap().shootdowns_avoided_lazy;
    result.lazy_avoided +=
        kernel.pmaps().kernelPmap().shootdowns_avoided_lazy;
    // analyze() above already warned if the xpr buffer overflowed; the
    // flag travels on result.analysis.overflowed for the driver.
    return result;
}

} // namespace mach::apps
