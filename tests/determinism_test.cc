/**
 * @file
 * Determinism guarantees: the whole point of the simulated substrate
 * is that every experiment replays bit-identically from its
 * configuration, so results in EXPERIMENTS.md are reproducible.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "apps/camelot.hh"
#include "apps/consistency_tester.hh"
#include "base/perturb.hh"
#include "chk/explorer.hh"
#include "chk/scenario.hh"
#include "hw/tlb.hh"
#include "pmap/shootdown.hh"
#include "vm/kernel.hh"

namespace mach
{
namespace
{

/** Serialize every xpr record of a run into a comparable string. */
std::string
fingerprint(const xpr::Buffer &buffer)
{
    std::ostringstream out;
    for (const xpr::Event &event : buffer.events()) {
        out << static_cast<int>(event.kind) << ':' << event.cpu << ':'
            << event.timestamp << ':' << event.kernel_pmap << ':'
            << event.pages << ':' << event.procs << ':'
            << event.elapsed << '\n';
    }
    return out.str();
}

TEST(Determinism, TesterRunsAreBitIdentical)
{
    setLogQuiet(true);
    std::string first;
    for (int round = 0; round < 2; ++round) {
        hw::MachineConfig config;
        config.seed = 0xd37e3;
        vm::Kernel kernel(config);
        apps::ConsistencyTester tester(
            {.children = 6, .warmup = 20 * kMsec});
        tester.execute(kernel);
        const std::string print = fingerprint(kernel.machine().xpr());
        ASSERT_FALSE(print.empty());
        if (round == 0)
            first = print;
        else
            EXPECT_EQ(print, first);
    }
}

TEST(Determinism, CamelotRunsAreBitIdentical)
{
    setLogQuiet(true);
    std::string first;
    Tick first_runtime = 0;
    for (int round = 0; round < 2; ++round) {
        hw::MachineConfig config;
        config.seed = 0xd37e4;
        vm::Kernel kernel(config);
        apps::Camelot app({.transactions = 40});
        const apps::WorkloadResult result = app.execute(kernel);
        const std::string print = fingerprint(kernel.machine().xpr());
        if (round == 0) {
            first = print;
            first_runtime = result.virtual_runtime;
        } else {
            EXPECT_EQ(print, first);
            EXPECT_EQ(result.virtual_runtime, first_runtime);
        }
    }
}

TEST(Determinism, DifferentSeedsDiffer)
{
    setLogQuiet(true);
    std::string prints[2];
    for (int i = 0; i < 2; ++i) {
        hw::MachineConfig config;
        config.seed = 0xd37e5 + i;
        vm::Kernel kernel(config);
        apps::Camelot app({.transactions = 40});
        app.execute(kernel);
        prints[i] = fingerprint(kernel.machine().xpr());
    }
    EXPECT_NE(prints[0], prints[1]);
}

// ---------------------------------------------------------------------
// Determinism digests: a single FNV-1a hash over the xpr event stream,
// every CPU's TLB counters, and the shootdown controller's counters.
// The digest pins the simulator's *entire observable order contract*:
// the (time, insertion-seq) total order of the event queue, the RNG
// draw sequence, and the TLB bookkeeping. Any rewrite of the hot core
// (event heap, indexed TLB, batched bus charging) must leave these
// digests bit-identical -- the golden values below were captured from
// the original std::map event queue and linear-scan TLB.
// ---------------------------------------------------------------------

/** FNV-1a, fixed offsets/primes: stable across platforms and stdlibs. */
std::uint64_t
fnv1a(std::uint64_t hash, const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::uint64_t
fnv1aU64(std::uint64_t hash, std::uint64_t value)
{
    return fnv1a(hash, &value, sizeof(value));
}

/** Hash everything the order contract can influence. */
std::uint64_t
runDigest(vm::Kernel &kernel)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    const std::string print = fingerprint(kernel.machine().xpr());
    hash = fnv1a(hash, print.data(), print.size());
    hash = fnv1aU64(hash, kernel.machine().now());
    for (CpuId id = 0; id < kernel.machine().ncpus(); ++id) {
        const hw::Tlb &tlb = kernel.machine().cpu(id).tlb();
        hash = fnv1aU64(hash, tlb.hits);
        hash = fnv1aU64(hash, tlb.misses);
        hash = fnv1aU64(hash, tlb.writebacks);
        hash = fnv1aU64(hash, tlb.flushes);
        hash = fnv1aU64(hash, tlb.single_invalidates);
        hash = fnv1aU64(hash, tlb.full_flushes);
        hash = fnv1aU64(hash, tlb.validCount());
    }
    const pmap::ShootdownController &shoot = kernel.pmaps().shoot();
    hash = fnv1aU64(hash, shoot.initiated);
    hash = fnv1aU64(hash, shoot.delayed_waits);
    hash = fnv1aU64(hash, shoot.interrupts_sent);
    hash = fnv1aU64(hash, shoot.responder_passes);
    hash = fnv1aU64(hash, shoot.idle_drains);
    hash = fnv1aU64(hash, shoot.queue_overflows);
    hash = fnv1aU64(hash, shoot.remote_invalidates);
    return hash;
}

/** Tester (6 children) followed by a denser 12-child shootdown storm. */
std::uint64_t
stormDigest(std::uint64_t seed, bool software_reload,
            bool host_caches = true)
{
    setLogQuiet(true);
    std::uint64_t hash = 0xcbf29ce484222325ull;
    {
        hw::MachineConfig config;
        config.seed = seed;
        config.tlb_software_reload = software_reload;
        if (!host_caches) {
            config.tlb_l0_entries = 0;
            config.host_walk_cache = false;
        }
        vm::Kernel kernel(config);
        apps::ConsistencyTester tester(
            {.children = 6, .warmup = 20 * kMsec});
        tester.execute(kernel);
        EXPECT_TRUE(tester.consistent());
        hash = fnv1aU64(hash, runDigest(kernel));
    }
    {
        hw::MachineConfig config;
        config.seed = seed ^ 0x5702;
        config.tlb_software_reload = software_reload;
        if (!host_caches) {
            config.tlb_l0_entries = 0;
            config.host_walk_cache = false;
        }
        vm::Kernel kernel(config);
        apps::ConsistencyTester tester(
            {.children = 12, .warmup = 30 * kMsec});
        tester.execute(kernel);
        EXPECT_TRUE(tester.consistent());
        hash = fnv1aU64(hash, runDigest(kernel));
    }
    return hash;
}

struct DigestCase
{
    std::uint64_t seed;
    bool software_reload;
    std::uint64_t golden;
};

TEST(DeterminismDigest, StormDigestsMatchGolden)
{
    // Golden digests captured from the seed implementation (std::map
    // event queue, linear-scan TLB) -- see test comment above. Two
    // seeds x two machine configs (baseline Multimax, software-reload).
    const DigestCase cases[] = {
        {0x1dea1, false, 0xbcf7d61b291003ddull},
        {0x2bead, false, 0x8d49626805e29b8cull},
        {0x1dea1, true, 0xf45a6047acf36e1full},
        {0x2bead, true, 0x74e62422e4263b4cull},
    };
    for (const DigestCase &c : cases) {
        const std::uint64_t first = stormDigest(c.seed,
                                                c.software_reload);
        const std::uint64_t second = stormDigest(c.seed,
                                                 c.software_reload);
        EXPECT_EQ(first, second)
            << "seed " << c.seed << " swr " << c.software_reload;
        EXPECT_EQ(first, c.golden)
            << "seed " << c.seed << " swr " << c.software_reload;
    }
}

TEST(DeterminismDigest, HostCachesAreTimingNeutral)
{
    // The L0 translation cache and the page-walk cache are host-speed
    // devices only: disabling both (the machsim --no-l0 switch) must
    // reproduce the exact golden digests of the cached runs. A digest
    // divergence here means a cache changed simulated behaviour.
    const DigestCase cases[] = {
        {0x1dea1, false, 0xbcf7d61b291003ddull},
        {0x2bead, true, 0x74e62422e4263b4cull},
    };
    for (const DigestCase &c : cases) {
        const std::uint64_t uncached =
            stormDigest(c.seed, c.software_reload,
                        /*host_caches=*/false);
        EXPECT_EQ(uncached, c.golden)
            << "seed " << c.seed << " swr " << c.software_reload;
    }
}

/** One tester run replayed under a fixed perturbation schedule. */
std::uint64_t
perturbedDigest(std::uint64_t seed, const char *schedule)
{
    setLogQuiet(true);
    SchedulePerturber perturber;
    std::string error;
    EXPECT_TRUE(SchedulePerturber::parse(schedule, &perturber, &error))
        << error;
    hw::MachineConfig config;
    config.seed = seed;
    vm::Kernel kernel(config);
    kernel.machine().setPerturber(&perturber);
    apps::ConsistencyTester tester(
        {.children = 6, .warmup = 20 * kMsec});
    tester.execute(kernel);
    EXPECT_TRUE(tester.consistent());
    kernel.machine().setPerturber(nullptr);
    return runDigest(kernel);
}

struct PerturbedCase
{
    std::uint64_t seed;
    const char *schedule;
    std::uint64_t golden;
};

TEST(DeterminismDigest, PerturbedReplaysMatchGolden)
{
    // A perturbation list completely names an interleaving: replaying
    // the same `--schedule` string must be bit-exact, run after run
    // and build after build. These pin the checker's replay contract
    // the same way the storm digests above pin the order contract.
    const PerturbedCase cases[] = {
        {0x1dea1, "e901+350000,e2207+90000,b333+15000",
         0x207711fada9b11d2ull},
        {0x2bead, "e4096+1200000,b77+48000", 0x4ea566a2c56d21b8ull},
    };
    for (const PerturbedCase &c : cases) {
        const std::uint64_t first = perturbedDigest(c.seed,
                                                    c.schedule);
        const std::uint64_t second = perturbedDigest(c.seed,
                                                     c.schedule);
        EXPECT_EQ(first, second) << "schedule " << c.schedule;
        EXPECT_EQ(first, c.golden) << "schedule " << c.schedule;
        // The schedule really steered the run somewhere new: the
        // unperturbed machine with the same seed hashes differently.
        EXPECT_NE(first, perturbedDigest(c.seed, ""))
            << "schedule " << c.schedule;
    }
}

TEST(DeterminismDigest, InterleavingSignaturesAreStable)
{
    // The fuzzer's coverage signal must be a property of the schedule,
    // not of how the trial was observed: the same (scenario, schedule)
    // pair yields the same per-window signature list run after run,
    // with or without the Perfetto exporter attached, and with the
    // host-speed caches (machsim --no-l0) on or off. If any of these
    // diverge, corpus buckets stop naming interleavings and the
    // guided campaign chases observation noise.
    setLogQuiet(true);
    const std::vector<chk::Scenario> library = chk::builtinScenarios();
    const chk::Scenario *storm =
        chk::findScenario(library, "storm-baseline");
    ASSERT_NE(storm, nullptr);

    SchedulePerturber perturber;
    ASSERT_TRUE(SchedulePerturber::parse("e120+350000,b40+48000",
                                         &perturber, nullptr));

    const chk::Explorer explorer;
    const chk::TrialResult once =
        explorer.runTrialSigned(*storm, perturber);
    ASSERT_FALSE(once.signatures.empty());
    const chk::TrialResult again =
        explorer.runTrialSigned(*storm, perturber);
    EXPECT_EQ(once.signatures, again.signatures);
    EXPECT_EQ(once.digest, again.digest);

    // Signing is observation, not simulation: the unsigned trial and
    // a fully recorded trial reproduce the same digest.
    const chk::TrialResult unsigned_run =
        explorer.runTrial(*storm, perturber);
    EXPECT_TRUE(unsigned_run.signatures.empty());
    EXPECT_EQ(unsigned_run.digest, once.digest);
    std::string trace_json;
    const chk::TrialResult recorded =
        explorer.runTrialRecorded(*storm, perturber, &trace_json);
    EXPECT_EQ(recorded.digest, once.digest);
    EXPECT_FALSE(trace_json.empty());

    // Host caches are timing-neutral (HostCachesAreTimingNeutral), so
    // they must also be signature-neutral: the --no-l0 twin of the
    // scenario visits the same interleaving windows.
    chk::Scenario no_l0 = *storm;
    no_l0.config.tlb_l0_entries = 0;
    no_l0.config.host_walk_cache = false;
    const chk::TrialResult uncached =
        explorer.runTrialSigned(no_l0, perturber);
    EXPECT_EQ(uncached.signatures, once.signatures);
    EXPECT_EQ(uncached.digest, once.digest);
}

} // namespace
} // namespace mach
