/**
 * @file
 * Tests for the machine-independent VM system: address-space
 * operations, copy-on-write, inheritance, and cross-task access.
 */

#include <gtest/gtest.h>

#include "vm/kernel.hh"

namespace mach
{
namespace
{

hw::MachineConfig
vmConfig()
{
    setLogQuiet(true);
    hw::MachineConfig config;
    config.ncpus = 4;
    return config;
}

void
inKernel(const std::function<void(vm::Kernel &, kern::Thread &)> &body)
{
    vm::Kernel kernel(vmConfig());
    kernel.start();
    bool finished = false;
    kernel.spawnThread(nullptr, "vm-driver", [&](kern::Thread &driver) {
        body(kernel, driver);
        finished = true;
        kernel.machine().ctx().requestStop();
    });
    kernel.machine().run();
    ASSERT_TRUE(finished);
}

/** Spawn a thread in @p task, run @p body there, join it. */
void
inTask(vm::Kernel &kernel, kern::Thread &driver, vm::Task *task,
       const std::function<void(kern::Thread &)> &body)
{
    kern::Thread *thread =
        kernel.spawnThread(task, "task-body", body);
    driver.join(*thread);
}

TEST(VmAllocate, AnywherePicksPageAlignedSpace)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            VAddr va = 0;
            ASSERT_TRUE(kernel.vmAllocate(self, *task, &va,
                                          3 * kPageSize, true));
            EXPECT_EQ(va & kPageMask, 0u);
            EXPECT_GE(va, vm::kUserLo);
            EXPECT_EQ(task->map().mappedBytes(), 3 * kPageSize);
        });
    });
}

TEST(VmAllocate, SizeRoundsUpToPages)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            VAddr va = 0;
            ASSERT_TRUE(kernel.vmAllocate(self, *task, &va, 100, true));
            EXPECT_EQ(task->map().mappedBytes(), kPageSize);
        });
    });
}

TEST(VmAllocate, FixedAddressAndOverlapRejection)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            VAddr fixed = vm::kUserLo + 64 * kPageSize;
            ASSERT_TRUE(kernel.vmAllocate(self, *task, &fixed,
                                          2 * kPageSize, false));
            // Overlapping fixed request fails.
            VAddr overlap = fixed + kPageSize;
            EXPECT_FALSE(kernel.vmAllocate(self, *task, &overlap,
                                           kPageSize, false));
            // Adjacent is fine.
            VAddr next = fixed + 2 * kPageSize;
            EXPECT_TRUE(kernel.vmAllocate(self, *task, &next,
                                          kPageSize, false));
        });
    });
}

TEST(VmAllocate, ZeroSizeFails)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            VAddr va = 0;
            EXPECT_FALSE(kernel.vmAllocate(self, *task, &va, 0, true));
        });
    });
}

TEST(VmAccess, ZeroFillThenReadBack)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            VAddr va = 0;
            ASSERT_TRUE(kernel.vmAllocate(self, *task, &va,
                                          2 * kPageSize, true));
            std::uint32_t value = 0xffffffff;
            ASSERT_TRUE(self.load32(va, &value));
            EXPECT_EQ(value, 0u); // Fresh anonymous memory reads zero.

            ASSERT_TRUE(self.store32(va + 16, 0xfeedface));
            ASSERT_TRUE(self.load32(va + 16, &value));
            EXPECT_EQ(value, 0xfeedfaceu);
            EXPECT_GT(kernel.zero_fills, 0u);
        });
    });
}

TEST(VmAccess, UnmappedAddressFaultsUnrecoverably)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            std::uint32_t value = 0;
            EXPECT_FALSE(self.load32(vm::kUserLo + 0x100000, &value));
            EXPECT_GT(kernel.faults_failed, 0u);
        });
    });
}

TEST(VmDeallocate, UnmapsAndFreesFrames)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        const std::uint32_t before = kernel.machine().mem().freeFrames();
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            VAddr va = 0;
            ASSERT_TRUE(kernel.vmAllocate(self, *task, &va,
                                          4 * kPageSize, true));
            for (int i = 0; i < 4; ++i)
                ASSERT_TRUE(self.store32(va + i * kPageSize, i));
            ASSERT_TRUE(
                kernel.vmDeallocate(self, *task, va, 4 * kPageSize));
            std::uint32_t value = 0;
            EXPECT_FALSE(self.load32(va, &value));
        });
        // Pages (and the page-table leaf stays, but data frames) are
        // back; the table leaf is reclaimed at task destroy.
        EXPECT_GE(kernel.machine().mem().freeFrames() + 1, before - 1);
    });
}

TEST(VmDeallocate, MiddleOfRegionLeavesEnds)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            VAddr va = 0;
            ASSERT_TRUE(kernel.vmAllocate(self, *task, &va,
                                          6 * kPageSize, true));
            for (int i = 0; i < 6; ++i)
                ASSERT_TRUE(self.store32(va + i * kPageSize, 100 + i));
            // Punch a hole in pages 2-3.
            ASSERT_TRUE(kernel.vmDeallocate(
                self, *task, va + 2 * kPageSize, 2 * kPageSize));

            std::uint32_t value = 0;
            ASSERT_TRUE(self.load32(va + kPageSize, &value));
            EXPECT_EQ(value, 101u);
            ASSERT_TRUE(self.load32(va + 5 * kPageSize, &value));
            EXPECT_EQ(value, 105u);
            EXPECT_FALSE(self.load32(va + 2 * kPageSize, &value));
            EXPECT_FALSE(self.load32(va + 3 * kPageSize, &value));
        });
    });
}

TEST(VmProtect, ReadOnlyBlocksWritesAllowsReads)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            VAddr va = 0;
            ASSERT_TRUE(
                kernel.vmAllocate(self, *task, &va, kPageSize, true));
            ASSERT_TRUE(self.store32(va, 7));
            ASSERT_TRUE(kernel.vmProtect(self, *task, va, kPageSize,
                                         ProtRead));
            std::uint32_t value = 0;
            ASSERT_TRUE(self.load32(va, &value));
            EXPECT_EQ(value, 7u);
            EXPECT_FALSE(self.store32(va, 8));
            ASSERT_TRUE(self.load32(va, &value));
            EXPECT_EQ(value, 7u);
        });
    });
}

TEST(VmProtect, ReenablingWriteRepairsLazily)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            VAddr va = 0;
            ASSERT_TRUE(
                kernel.vmAllocate(self, *task, &va, kPageSize, true));
            ASSERT_TRUE(self.store32(va, 1));
            ASSERT_TRUE(kernel.vmProtect(self, *task, va, kPageSize,
                                         ProtRead));
            EXPECT_FALSE(self.store32(va, 2));
            ASSERT_TRUE(kernel.vmProtect(self, *task, va, kPageSize,
                                         ProtReadWrite));
            // The upgrade is repaired by a fault, not a shootdown.
            EXPECT_TRUE(self.store32(va, 3));
            std::uint32_t value = 0;
            ASSERT_TRUE(self.load32(va, &value));
            EXPECT_EQ(value, 3u);
        });
    });
}

TEST(VmProtect, ProtNoneRemovesAllAccess)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            VAddr va = 0;
            ASSERT_TRUE(
                kernel.vmAllocate(self, *task, &va, kPageSize, true));
            ASSERT_TRUE(self.store32(va, 5));
            ASSERT_TRUE(kernel.vmProtect(self, *task, va, kPageSize,
                                         ProtNone));
            std::uint32_t value = 0;
            EXPECT_FALSE(self.load32(va, &value));
            EXPECT_FALSE(self.store32(va, 6));
        });
    });
}

TEST(VmCopy, CopySeesSourceAndIsolatesMutations)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            VAddr src = 0;
            ASSERT_TRUE(kernel.vmAllocate(self, *task, &src,
                                          2 * kPageSize, true));
            ASSERT_TRUE(self.store32(src, 0xaaaa));
            ASSERT_TRUE(self.store32(src + kPageSize, 0xbbbb));

            VAddr dst = 0;
            ASSERT_TRUE(kernel.vmCopy(self, *task, src, 2 * kPageSize,
                                      &dst));
            std::uint32_t value = 0;
            ASSERT_TRUE(self.load32(dst, &value));
            EXPECT_EQ(value, 0xaaaau);

            // Mutating the copy leaves the source alone...
            ASSERT_TRUE(self.store32(dst, 0x1111));
            ASSERT_TRUE(self.load32(src, &value));
            EXPECT_EQ(value, 0xaaaau);
            // ...and mutating the source leaves the copy alone.
            ASSERT_TRUE(self.store32(src + kPageSize, 0x2222));
            ASSERT_TRUE(self.load32(dst + kPageSize, &value));
            EXPECT_EQ(value, 0xbbbbu);
            EXPECT_GT(kernel.cow_copies, 0u);
        });
    });
}

TEST(VmCopy, UntouchedCopyPagesShareFrames)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            VAddr src = 0;
            ASSERT_TRUE(kernel.vmAllocate(self, *task, &src,
                                          4 * kPageSize, true));
            for (int i = 0; i < 4; ++i)
                ASSERT_TRUE(self.store32(src + i * kPageSize, i));
            const std::uint32_t free_before =
                kernel.machine().mem().freeFrames();
            VAddr dst = 0;
            ASSERT_TRUE(kernel.vmCopy(self, *task, src, 4 * kPageSize,
                                      &dst));
            // Reading the whole copy must not allocate data frames.
            for (int i = 0; i < 4; ++i) {
                std::uint32_t value = 0;
                ASSERT_TRUE(self.load32(dst + i * kPageSize, &value));
                EXPECT_EQ(value, static_cast<std::uint32_t>(i));
            }
            // Allow for one page-table leaf allocation, nothing more.
            EXPECT_GE(kernel.machine().mem().freeFrames() + 1,
                      free_before);
        });
    });
}

TEST(Fork, ShareInheritanceIsReadWriteShared)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *parent = kernel.createTask("parent");
        inTask(kernel, drv, parent, [&](kern::Thread &self) {
            VAddr va = 0;
            ASSERT_TRUE(
                kernel.vmAllocate(self, *parent, &va, kPageSize, true));
            ASSERT_TRUE(self.store32(va, 42));
            ASSERT_TRUE(kernel.vmInherit(self, *parent, va, kPageSize,
                                         vm::Inherit::Share));
            vm::Task *child =
                kernel.forkTask(self, *parent, "child");

            kern::Thread *in_child = kernel.spawnThread(
                child, "child-main", [&](kern::Thread &ct) {
                    std::uint32_t value = 0;
                    ASSERT_TRUE(ct.load32(va, &value));
                    EXPECT_EQ(value, 42u);
                    ASSERT_TRUE(ct.store32(va, 43));
                });
            self.join(*in_child);
            // The child's write is visible to the parent.
            std::uint32_t value = 0;
            ASSERT_TRUE(self.load32(va, &value));
            EXPECT_EQ(value, 43u);
        });
    });
}

TEST(Fork, CopyInheritanceIsIsolatedBothWays)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *parent = kernel.createTask("parent");
        inTask(kernel, drv, parent, [&](kern::Thread &self) {
            VAddr va = 0;
            ASSERT_TRUE(
                kernel.vmAllocate(self, *parent, &va, kPageSize, true));
            ASSERT_TRUE(self.store32(va, 7));
            // Default inheritance is Copy.
            vm::Task *child = kernel.forkTask(self, *parent, "child");

            kern::Thread *in_child = kernel.spawnThread(
                child, "child-main", [&](kern::Thread &ct) {
                    std::uint32_t value = 0;
                    ASSERT_TRUE(ct.load32(va, &value));
                    EXPECT_EQ(value, 7u); // Sees the pre-fork data.
                    ASSERT_TRUE(ct.store32(va, 8));
                });
            self.join(*in_child);

            std::uint32_t value = 0;
            ASSERT_TRUE(self.load32(va, &value));
            EXPECT_EQ(value, 7u); // Child's write invisible here.

            ASSERT_TRUE(self.store32(va, 9));
            kern::Thread *check_child = kernel.spawnThread(
                child, "child-check", [&](kern::Thread &ct) {
                    std::uint32_t v = 0;
                    ASSERT_TRUE(ct.load32(va, &v));
                    EXPECT_EQ(v, 8u); // Parent's write invisible there.
                });
            self.join(*check_child);
        });
    });
}

TEST(Fork, NoneInheritanceLeavesChildUnmapped)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *parent = kernel.createTask("parent");
        inTask(kernel, drv, parent, [&](kern::Thread &self) {
            VAddr va = 0;
            ASSERT_TRUE(
                kernel.vmAllocate(self, *parent, &va, kPageSize, true));
            ASSERT_TRUE(self.store32(va, 1));
            ASSERT_TRUE(kernel.vmInherit(self, *parent, va, kPageSize,
                                         vm::Inherit::None));
            vm::Task *child = kernel.forkTask(self, *parent, "child");
            kern::Thread *in_child = kernel.spawnThread(
                child, "child-main", [&](kern::Thread &ct) {
                    std::uint32_t value = 0;
                    EXPECT_FALSE(ct.load32(va, &value));
                });
            self.join(*in_child);
        });
    });
}

TEST(VmReadWrite, CrossTaskTransfer)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("target");
        VAddr va = 0;
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            ASSERT_TRUE(kernel.vmAllocate(self, *task, &va,
                                          2 * kPageSize, true));
            ASSERT_TRUE(self.store32(va, 0x12345678));
        });

        // The driver (a kernel thread with no task of its own)
        // operates on the target task's address space -- one of the
        // remote-space operations of Section 2.
        std::uint32_t buffer = 0;
        ASSERT_TRUE(kernel.vmRead(drv, *task, va, &buffer, 4));
        EXPECT_EQ(buffer, 0x12345678u);

        const std::uint32_t payload = 0xcafef00d;
        ASSERT_TRUE(kernel.vmWrite(drv, *task, va + 8, &payload, 4));
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            std::uint32_t value = 0;
            ASSERT_TRUE(self.load32(va + 8, &value));
            EXPECT_EQ(value, 0xcafef00du);
        });
    });
}

TEST(VmReadWrite, SpansPageBoundary)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        VAddr va = 0;
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            ASSERT_TRUE(kernel.vmAllocate(self, *task, &va,
                                          2 * kPageSize, true));
        });
        std::vector<std::uint8_t> out(256);
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i] = static_cast<std::uint8_t>(i * 7);
        ASSERT_TRUE(kernel.vmWrite(drv, *task, va + kPageSize - 128,
                                   out.data(),
                                   static_cast<std::uint32_t>(
                                       out.size())));
        std::vector<std::uint8_t> in(out.size(), 0);
        ASSERT_TRUE(kernel.vmRead(drv, *task, va + kPageSize - 128,
                                  in.data(),
                                  static_cast<std::uint32_t>(
                                      in.size())));
        EXPECT_EQ(in, out);
    });
}

TEST(Kmem, AllocTouchFreeRoundTrip)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        const VAddr buf = kernel.kmemAlloc(drv, 2 * kPageSize);
        ASSERT_NE(buf, 0u);
        EXPECT_GE(buf, kern::Machine::kKernelBase);
        ASSERT_TRUE(drv.store32(buf, 0xabcd));
        std::uint32_t readback = 0;
        ASSERT_TRUE(drv.load32(buf, &readback));
        EXPECT_EQ(readback, 0xabcdu);
        kernel.kmemFree(drv, buf, 2 * kPageSize);
        std::uint32_t value = 0;
        EXPECT_FALSE(drv.load32(buf, &value));
    });
}

TEST(TaskLifecycle, DestroyReleasesEverything)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        const std::uint32_t free_before =
            kernel.machine().mem().freeFrames();
        vm::Task *task = kernel.createTask("doomed");
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            VAddr va = 0;
            ASSERT_TRUE(kernel.vmAllocate(self, *task, &va,
                                          8 * kPageSize, true));
            for (int i = 0; i < 8; ++i)
                ASSERT_TRUE(self.store32(va + i * kPageSize, i));
        });
        kernel.destroyTask(drv, task);
        EXPECT_EQ(kernel.machine().mem().freeFrames(), free_before);
        EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
    });
}

TEST(VmSimplify, ProtectRoundTripRecoalesces)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            VAddr va = 0;
            ASSERT_TRUE(kernel.vmAllocate(self, *task, &va,
                                          8 * kPageSize, true));
            EXPECT_EQ(task->map().entries().size(), 1u);

            // Clipping the middle fragments the entry...
            ASSERT_TRUE(kernel.vmProtect(self, *task,
                                         va + 2 * kPageSize,
                                         2 * kPageSize, ProtRead));
            EXPECT_EQ(task->map().entries().size(), 3u);

            // ...and restoring the protection re-merges it.
            ASSERT_TRUE(kernel.vmProtect(self, *task,
                                         va + 2 * kPageSize,
                                         2 * kPageSize,
                                         ProtReadWrite));
            EXPECT_EQ(task->map().entries().size(), 1u);
            EXPECT_EQ(task->map().mappedBytes(), 8 * kPageSize);
        });
    });
}

TEST(VmSimplify, DoesNotMergeDifferentObjects)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            // Two adjacent allocations have distinct objects and must
            // never merge, even with identical attributes.
            VAddr a = 0, b = 0;
            ASSERT_TRUE(kernel.vmAllocate(self, *task, &a,
                                          2 * kPageSize, true));
            ASSERT_TRUE(kernel.vmAllocate(self, *task, &b,
                                          2 * kPageSize, true));
            ASSERT_EQ(b, a + 2 * kPageSize); // Adjacent.
            task->map().simplify(a, b + 2 * kPageSize);
            EXPECT_EQ(task->map().entries().size(), 2u);
        });
    });
}

TEST(VmSimplify, DataSurvivesRecoalescing)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            VAddr va = 0;
            ASSERT_TRUE(kernel.vmAllocate(self, *task, &va,
                                          6 * kPageSize, true));
            for (int i = 0; i < 6; ++i)
                ASSERT_TRUE(self.store32(va + i * kPageSize, 40 + i));
            ASSERT_TRUE(kernel.vmProtect(self, *task, va + kPageSize,
                                         kPageSize, ProtRead));
            ASSERT_TRUE(kernel.vmProtect(self, *task, va + kPageSize,
                                         kPageSize, ProtReadWrite));
            for (int i = 0; i < 6; ++i) {
                std::uint32_t value = 0;
                ASSERT_TRUE(self.load32(va + i * kPageSize, &value));
                EXPECT_EQ(value, static_cast<std::uint32_t>(40 + i));
            }
            ASSERT_TRUE(self.store32(va + kPageSize, 99));
        });
    });
}

TEST(VmRegion, WalksMappedRegions)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        VAddr a = 0, b = 0;
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            ASSERT_TRUE(kernel.vmAllocate(self, *task, &a,
                                          2 * kPageSize, true));
            ASSERT_TRUE(kernel.vmAllocate(self, *task, &b,
                                          3 * kPageSize, true));
            ASSERT_TRUE(self.store32(a, 1)); // One resident page in a.
            ASSERT_TRUE(kernel.vmProtect(self, *task, b, 3 * kPageSize,
                                         ProtRead));
        });

        VAddr cursor = 0;
        vm::Kernel::RegionInfo info;
        ASSERT_TRUE(kernel.vmRegion(drv, *task, &cursor, &info));
        EXPECT_EQ(info.start, a);
        EXPECT_EQ(info.size, 2 * kPageSize);
        EXPECT_EQ(info.cur_prot, ProtReadWrite);
        EXPECT_EQ(info.resident_pages, 1u);

        cursor = info.start + info.size;
        ASSERT_TRUE(kernel.vmRegion(drv, *task, &cursor, &info));
        EXPECT_EQ(info.start, b);
        EXPECT_EQ(info.cur_prot, ProtRead);
        EXPECT_EQ(info.max_prot, ProtReadWrite);

        cursor = info.start + info.size;
        EXPECT_FALSE(kernel.vmRegion(drv, *task, &cursor, &info));
    });
}

TEST(VmWire, WiringFaultsInAndPins)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        VAddr va = 0;
        inTask(kernel, drv, task, [&](kern::Thread &self) {
            ASSERT_TRUE(kernel.vmAllocate(self, *task, &va,
                                          3 * kPageSize, true));
        });
        // Wire from a thread *outside* the task (a remote-space op).
        ASSERT_TRUE(kernel.vmWire(drv, *task, va, 3 * kPageSize, true));

        vm::Kernel::RegionInfo info;
        VAddr cursor = va;
        ASSERT_TRUE(kernel.vmRegion(drv, *task, &cursor, &info));
        EXPECT_EQ(info.resident_pages, 3u); // Faulted in by wiring.

        ASSERT_TRUE(
            kernel.vmWire(drv, *task, va, 3 * kPageSize, false));
    });
}

TEST(VmWire, UnmappedRangeFails)
{
    inKernel([](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        EXPECT_FALSE(kernel.vmWire(drv, *task, vm::kUserLo + 0x40000,
                                   kPageSize, true));
    });
}

TEST(VmObjectUnit, ShadowChainLookup)
{
    hw::PhysMem mem(64);
    vm::ObjectPtr bottom = vm::VmObject::create(&mem, 8);
    const Pfn f1 = mem.allocFrame();
    bottom->insertPage(3, f1);

    vm::ObjectPtr top = vm::VmObject::makeShadow(bottom, 0, 8);
    EXPECT_EQ(top->chainDepth(), 1u);

    vm::PageLookup found = top->lookupChain(3);
    ASSERT_NE(found.page, nullptr);
    EXPECT_EQ(found.depth, 1u);
    EXPECT_EQ(found.object, bottom.get());

    // A private page in the shadow hides the backing page.
    const Pfn f2 = mem.allocFrame();
    top->insertPage(3, f2);
    found = top->lookupChain(3);
    EXPECT_EQ(found.depth, 0u);
    EXPECT_EQ(found.page->pfn, f2);

    EXPECT_EQ(top->lookupChain(5).page, nullptr);
}

TEST(VmObjectUnit, ShadowOffsetShiftsLookup)
{
    hw::PhysMem mem(64);
    vm::ObjectPtr bottom = vm::VmObject::create(&mem, 16);
    const Pfn f = mem.allocFrame();
    bottom->insertPage(10, f);
    vm::ObjectPtr top = vm::VmObject::makeShadow(bottom, 8, 8);
    // Offset 2 in the shadow maps to offset 10 below.
    vm::PageLookup found = top->lookupChain(2);
    ASSERT_NE(found.page, nullptr);
    EXPECT_EQ(found.page->pfn, f);
}

} // namespace
} // namespace mach
