#include "vm/pager.hh"

#include "base/logging.hh"

namespace mach::vm
{

bool
DefaultPager::contains(std::uint64_t object_id,
                       std::uint32_t offset) const
{
    return store_.find(key(object_id, offset)) != store_.end();
}

void
DefaultPager::pageOut(std::uint64_t object_id, std::uint32_t offset,
                      Pfn pfn)
{
    std::vector<std::uint8_t> image(kPageSize);
    const PAddr base = pfn << kPageShift;
    for (std::uint32_t i = 0; i < kPageSize; ++i)
        image[i] = mem_->read8(base + i);
    store_[key(object_id, offset)] = std::move(image);
    ++pageouts;
}

void
DefaultPager::pageIn(std::uint64_t object_id, std::uint32_t offset,
                     Pfn pfn)
{
    auto it = store_.find(key(object_id, offset));
    if (it == store_.end())
        panic("pageIn: no stored image for object %llu offset %u",
              static_cast<unsigned long long>(object_id), offset);
    const PAddr base = pfn << kPageShift;
    for (std::uint32_t i = 0; i < kPageSize; ++i)
        mem_->write8(base + i, it->second[i]);
    store_.erase(it);
    ++pageins;
}

void
DefaultPager::forget(std::uint64_t object_id)
{
    for (auto it = store_.begin(); it != store_.end();) {
        if ((it->first >> 20) == object_id)
            it = store_.erase(it);
        else
            ++it;
    }
}

} // namespace mach::vm
