#include "farm/fork_pool.hh"

#include <utility>

#include "base/trace.hh"
#include "obs/recorder.hh"

#if defined(__unix__) || defined(__APPLE__)
#define MACH_FARM_HAVE_FORK 1
#include <cerrno>
#include <cstdio>
#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#if defined(__SANITIZE_THREAD__)
#define MACH_FARM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MACH_FARM_TSAN 1
#endif
#endif

namespace mach::farm
{

bool
forkAvailable()
{
#if defined(MACH_FARM_HAVE_FORK) && !defined(MACH_FARM_TSAN)
    return true;
#else
    return false;
#endif
}

#ifdef MACH_FARM_HAVE_FORK

namespace
{

/** One forked probe the parent is still collecting. */
struct LiveChild
{
    pid_t pid;
    int fd; ///< Read end of the child's result pipe.
    std::size_t idx;
    std::string buf;
};

/** Fork one child running fn(i); parent keeps the pipe's read end. */
bool
spawnChild(std::size_t i,
           const std::function<std::string(std::size_t)> &fn,
           std::vector<LiveChild> &live)
{
    int fds[2];
    if (pipe(fds) != 0)
        return false;
    // Flush stdio so buffered output is not replayed by the child.
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = fork();
    if (pid < 0) {
        close(fds[0]);
        close(fds[1]);
        return false;
    }
    if (pid == 0) {
        close(fds[0]);
        // Children share the parent's stderr: prefix every trace line
        // with the child id and flush per line so concurrent children
        // cannot shear each other's output mid-line. Trace-JSON dumps
        // get a per-child file suffix for the same reason.
        char tag[32];
        std::snprintf(tag, sizeof(tag), "child%zu", i);
        trace::setLinePrefix("[" + std::string(tag) + "] ");
        std::setvbuf(stderr, nullptr, _IOLBF, 0);
        obs::setProcessFileTag(tag);
        std::string payload;
        try {
            payload = fn(i);
        } catch (...) {
            _exit(1);
        }
        const char *p = payload.data();
        std::size_t left = payload.size();
        while (left > 0) {
            const ssize_t w = write(fds[1], p, left);
            if (w < 0) {
                if (errno == EINTR)
                    continue;
                _exit(1);
            }
            p += w;
            left -= static_cast<std::size_t>(w);
        }
        // _exit, not exit: the child shares the parent's atexit hooks,
        // open streams, and live objects; none of them may run here.
        _exit(0);
    }
    close(fds[1]);
    live.push_back(LiveChild{pid, fds[0], i, {}});
    return true;
}

} // namespace

std::vector<std::optional<std::string>>
forkMany(std::size_t n, unsigned jobs,
         const std::function<std::string(std::size_t)> &fn)
{
    std::vector<std::optional<std::string>> results(n);
    if (n == 0)
        return results;
    if (jobs == 0)
        jobs = 1;

    std::vector<LiveChild> live;
    std::size_t next = 0;
    while (next < n || !live.empty()) {
        while (next < n && live.size() < jobs) {
            // A failed spawn leaves its slot nullopt; the caller
            // re-runs that probe without the snapshot.
            spawnChild(next, fn, live);
            ++next;
        }
        if (live.empty())
            break;

        std::vector<pollfd> pfds(live.size());
        for (std::size_t k = 0; k < live.size(); ++k)
            pfds[k] = pollfd{live[k].fd, POLLIN, 0};
        const int rc = poll(pfds.data(),
                            static_cast<nfds_t>(pfds.size()), -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        // Walk backwards so erase() does not shift unvisited entries.
        for (std::size_t k = live.size(); k-- > 0;) {
            if (!(pfds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            char tmp[4096];
            const ssize_t r = read(live[k].fd, tmp, sizeof tmp);
            if (r > 0) {
                live[k].buf.append(tmp, static_cast<std::size_t>(r));
                continue;
            }
            if (r < 0 && errno == EINTR)
                continue;
            // EOF (or error): the child is done writing; reap it.
            close(live[k].fd);
            int status = 0;
            while (waitpid(live[k].pid, &status, 0) < 0 &&
                   errno == EINTR) {
            }
            if (WIFEXITED(status) && WEXITSTATUS(status) == 0)
                results[live[k].idx] = std::move(live[k].buf);
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(k));
        }
    }
    // Drain anything left (poll failure path): reap without results.
    for (LiveChild &child : live) {
        close(child.fd);
        int status = 0;
        while (waitpid(child.pid, &status, 0) < 0 && errno == EINTR) {
        }
    }
    return results;
}

#else // !MACH_FARM_HAVE_FORK

std::vector<std::optional<std::string>>
forkMany(std::size_t n, unsigned,
         const std::function<std::string(std::size_t)> &)
{
    return std::vector<std::optional<std::string>>(n);
}

#endif

} // namespace mach::farm
