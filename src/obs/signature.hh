/**
 * @file
 * Interleaving signatures: the model checker's coverage signal.
 *
 * A signature summarizes the *order* of shootdown-protocol events in
 * one quiescent window of a recorded run -- which CPUs initiated,
 * took IPIs, responded, stalled, and drained, and in what sequence --
 * while deliberately ignoring timestamps. Two schedules that realize
 * the same protocol interleaving therefore hash to the same signature
 * list even though their clocks differ, and a trial is "coverage
 * novel" exactly when one of its window signatures has never been
 * seen before in the campaign.
 *
 * Windows are delimited by protocol quiescence: a window is the
 * maximal run of "shoot"-category events during which at least one
 * protocol span is open; when the last open span closes (the machine
 * is quiescent again) the window's hash is emitted and the next
 * window starts fresh. Isolated instants (e.g. a queue overflow
 * outside any span) form single-event windows.
 *
 * The hash folds (phase, track, name) per event with FNV-1a over the
 * name *characters* -- never pointers -- so signatures are stable
 * across processes, builds, and hosts. Because recording is
 * timing-neutral (obs_record_cost = 0), the signatures of a run are a
 * pure function of its interleaving: the same (scenario, schedule)
 * pair yields the same signature list with or without full JSON
 * export and with or without the host-side L0/walk caches.
 */

#ifndef MACH_OBS_SIGNATURE_HH
#define MACH_OBS_SIGNATURE_HH

#include <cstdint>
#include <vector>

#include "obs/recorder.hh"

namespace mach::obs
{

/**
 * The per-quiescent-window interleaving signatures of @p rec's
 * recording, in window order. Requires an unbounded recording (not
 * ring mode): a ring that dropped events would silently truncate the
 * leading windows.
 */
std::vector<std::uint64_t>
interleavingSignatures(const Recorder &rec);

/** One order-sensitive hash over a whole signature list. */
std::uint64_t signatureListHash(const std::vector<std::uint64_t> &sigs);

} // namespace mach::obs

#endif // MACH_OBS_SIGNATURE_HH
