/**
 * @file
 * Section 8: restructuring the kernel for large machines.
 *
 * "Extrapolation of our results predicts that ... kernel pmap
 * shootdowns might [pose performance problems on machines with a few
 * hundred processors]. Operating systems for such machines may have
 * to restructure their use of memory to limit shootdowns ... One
 * possible restructuring is to divide both the processors and the
 * kernel virtual address space into pools ... This results in most
 * kernel pmap shootdowns occurring within pools of processors instead
 * of across the entire machine."
 *
 * This harness builds a 64-processor machine and runs a pool-affine
 * kernel-memory churn workload (every processor busy; each thread
 * allocates, touches, and frees kernel buffers) under 1, 4, 8 and 16
 * pools, reporting how many processors each kernel shootdown involves
 * and what it costs.
 */

#include "bench_common.hh"

#include <vector>

#include "pmap/shootdown.hh"

using namespace mach;
using namespace mach::bench;

namespace
{

struct PoolResult
{
    double mean_procs = 0.0;
    double mean_usec = 0.0;
    double total_overhead_ms = 0.0;
    std::uint64_t events = 0;
};

PoolResult
churn(unsigned ncpus, unsigned pools)
{
    hw::MachineConfig config;
    config.ncpus = ncpus;
    config.kernel_pools = pools;
    config.bus_contention_threshold = (ncpus * 3) / 4;
    config.seed = 0x900100 + pools;

    vm::Kernel kernel(config);
    kernel.start();
    kernel.machine().xpr().reset();

    kernel.spawnThread(nullptr, "pool-driver", [&](kern::Thread &drv) {
        std::vector<kern::Thread *> threads;
        for (CpuId id = 0; id < ncpus; ++id) {
            threads.push_back(kernel.spawnThread(
                nullptr, "churn" + std::to_string(id),
                [&kernel, id](kern::Thread &self) {
                    Rng rng(0xc0ffee + id);
                    for (int round = 0; round < 6; ++round) {
                        const VAddr buf =
                            kernel.kmemAlloc(self, 2 * kPageSize);
                        if (buf == 0)
                            fatal("kmem exhausted");
                        const bool ok = self.store32(buf, id);
                        MACH_ASSERT(ok);
                        self.compute(
                            Tick(rng.exponential(30.0) * kMsec));
                        kernel.kmemFree(self, buf, 2 * kPageSize);
                        self.compute(
                            Tick(rng.exponential(10.0) * kMsec));
                    }
                },
                static_cast<std::int64_t>(id)));
        }
        for (kern::Thread *t : threads)
            drv.join(*t);
        kernel.machine().ctx().requestStop();
    });
    kernel.machine().run();

    const xpr::RunAnalysis analysis =
        xpr::analyze(kernel.machine().xpr());
    PoolResult out;
    out.events = analysis.kernel_initiator.events;
    out.mean_procs = analysis.kernel_initiator.procs.mean();
    out.mean_usec = analysis.kernel_initiator.time_usec.mean();
    out.total_overhead_ms =
        analysis.kernel_initiator.totalOverheadUsec() / 1000.0;
    return out;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    constexpr unsigned kNcpus = 64;
    std::printf("Section 8: kernel pools on a %u-processor machine\n",
                kNcpus);
    std::printf("(pool-affine kernel-memory churn; every processor "
                "busy)\n\n");
    std::printf("%8s %14s %14s %18s %8s\n", "pools", "procs/shoot",
                "mean time(us)", "total overhead(ms)", "events");

    double baseline_overhead = 0.0;
    for (unsigned pools : {1u, 4u, 8u, 16u}) {
        const PoolResult result = churn(kNcpus, pools);
        if (pools == 1)
            baseline_overhead = result.total_overhead_ms;
        std::printf("%8u %14.1f %14.0f %18.1f %8llu\n", pools,
                    result.mean_procs, result.mean_usec,
                    result.total_overhead_ms,
                    static_cast<unsigned long long>(result.events));
    }

    std::printf("\nwith pools, most kernel pmap shootdowns occur "
                "within a pool of processors instead\nof across the "
                "entire machine -- the structural fix the paper "
                "proposes for machines\nwhere the linear shootdown "
                "cost (Figure 2 extrapolated) would otherwise bite.\n");
    (void)baseline_overhead;
    return 0;
}
