/**
 * @file
 * Per-processor translation lookaside buffer model.
 *
 * The baseline TLB has the two features that make software consistency
 * hard (Section 3):
 *
 *   1. Hardware reload: a miss walks the page table in memory and can
 *      re-cache an entry the moment it is (re)validated -- so flushing
 *      before the pmap change is useless.
 *   2. Reference/modify-bit writeback: the first write through a cached
 *      entry writes the entry's image back to the PTE in memory to set
 *      the modify bit, which can clobber a concurrent pmap update --
 *      so flushing cannot simply be postponed until after the change.
 *
 * Feature flags on MachineConfig select the Section 9 alternatives:
 * software reload, no-writeback (RP3), interlocked writeback implied by
 * no_refmod_writeback handling, remote invalidation (MC88200), and
 * address-space tags (MIPS R2000).
 *
 * Entries are tagged with the owning pmap's identity. Without ASID tags
 * the TLB is flushed on every address-space switch (as on the Multimax);
 * with them, entries from many spaces coexist.
 */

#ifndef MACH_HW_TLB_HH
#define MACH_HW_TLB_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "hw/machine_config.hh"
#include "hw/page_table.hh"

namespace mach::hw
{

/** Identifies an address space (one pmap) to the TLB. */
using SpaceId = std::uint32_t;
constexpr SpaceId kNoSpace = 0;

/** One cached translation. */
struct TlbEntry
{
    bool valid = false;
    SpaceId space = kNoSpace;
    Vpn vpn = 0;
    Pfn pfn = 0;
    Prot prot = ProtNone;
    bool ref = false;
    bool mod = false;
};

/** Outcome of a TLB probe. */
struct TlbLookup
{
    bool hit = false;
    bool prot_ok = false;       ///< Entry allows the requested access.
    bool did_writeback = false; ///< Hardware wrote ref/mod bits to memory.
    Pfn pfn = 0;
};

/** A single processor's TLB. */
class Tlb
{
  public:
    Tlb(const MachineConfig *config, PhysMem *mem);

    /**
     * Probe for (space, vpn) wanting @p want access. On a write hit with
     * the modify bit clear, baseline hardware performs the asynchronous
     * ref/mod writeback to the PTE at @p pte_addr (clobbering whatever is
     * there -- the Section 3 hazard) unless tlb_no_refmod_writeback.
     */
    TlbLookup lookup(SpaceId space, Vpn vpn, Prot want, PAddr pte_addr);

    /**
     * Install a translation after a reload (hardware or software). The
     * replacement policy is round-robin over the entry array.
     */
    void insert(SpaceId space, Vpn vpn, Pfn pfn, Prot prot, bool mod);

    /** Invalidate one page's entry for @p space, if cached. */
    void invalidatePage(SpaceId space, Vpn vpn);

    /** Invalidate entries for [start, end) in @p space. */
    void invalidateRange(SpaceId space, Vpn start, Vpn end);

    /** Invalidate every entry belonging to @p space. */
    void flushSpace(SpaceId space);

    /** Invalidate the whole buffer. */
    void flushAll();

    /** True when any valid entry belongs to @p space. */
    bool cachesSpace(SpaceId space) const;

    /**
     * True when an entry for (space, vpn) is cached with at least
     * @p prot rights (used by consistency-audit tests).
     */
    bool cachesMapping(SpaceId space, Vpn vpn, Prot prot) const;

    /** Count of valid entries (diagnostics). */
    unsigned validCount() const;

    /** Raw entry array (white-box inspection by audits and tests). */
    const std::vector<TlbEntry> &entries() const { return entries_; }

    // Event counters for benchmarks and tests.
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t flushes = 0;
    std::uint64_t single_invalidates = 0;
    /**
     * Whole-buffer flushes only; serves as the flush epoch the
     * delayed-flush consistency technique synchronizes against.
     */
    std::uint64_t full_flushes = 0;

  private:
    TlbEntry *find(SpaceId space, Vpn vpn);
    const TlbEntry *find(SpaceId space, Vpn vpn) const;

    const MachineConfig *config_;
    PhysMem *mem_;
    std::vector<TlbEntry> entries_;
    unsigned next_victim_ = 0;
};

} // namespace mach::hw

#endif // MACH_HW_TLB_HH
