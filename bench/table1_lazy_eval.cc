/**
 * @file
 * Table 1: effect of lazy evaluation on shootdowns, plus the Section
 * 7.2 thread-startup saving.
 *
 * Paper values:
 *                    Mach              Parthenon
 *   Lazy             No      Yes       No      Yes
 *   Kernel events    8091    3827      107     4
 *   Avg time (us)    1185    1020      1379    1395
 *   User events      0       0         70      0
 *   Avg time (us)    -       -         867     -
 *
 * Lazy evaluation cuts the total shootdown overhead (events x average
 * time) by almost 60% for the Mach build and by over 97% for
 * Parthenon, whose user shootdowns -- caused by the cthread library
 * reprotecting the never-touched stack guard page at thread startup --
 * it eliminates entirely, saving an average four-fifths of a
 * millisecond of startup time per thread.
 */

#include "bench_common.hh"

using namespace mach;
using namespace mach::bench;

namespace
{

struct LazyRow
{
    AppRun on;
    AppRun off;
    Tick startup_on = 0;
    Tick startup_off = 0;
    unsigned startups = 0;
};

LazyRow
measure(unsigned app_index)
{
    LazyRow row;
    for (int lazy = 1; lazy >= 0; --lazy) {
        hw::MachineConfig config;
        config.seed = 0x7ab1e100 + app_index;
        config.lazy_evaluation = lazy != 0;

        vm::Kernel kernel(config);
        std::unique_ptr<apps::Workload> app;
        apps::Parthenon *parthenon = nullptr;
        if (app_index == 0) {
            app = std::make_unique<apps::MachBuild>(
                apps::MachBuild::Params{});
        } else {
            auto owned =
                std::make_unique<apps::Parthenon>(
                    apps::Parthenon::Params{});
            parthenon = owned.get();
            app = std::move(owned);
        }
        AppRun run;
        run.label = appLabel(app_index);
        run.result = app->execute(kernel);
        run.runtime = run.result.virtual_runtime;
        if (lazy) {
            row.on = run;
            if (parthenon)
                row.startup_on = parthenon->thread_startup_total;
        } else {
            row.off = run;
            if (parthenon)
                row.startup_off = parthenon->thread_startup_total;
        }
        if (parthenon) {
            apps::Parthenon::Params defaults;
            row.startups = defaults.workers * defaults.runs;
        }
    }
    return row;
}

void
printRow(const char *label, const LazyRow &row)
{
    auto fmt = [](const xpr::ShootdownSummary &s) {
        char buf[64];
        if (s.events == 0)
            std::snprintf(buf, sizeof(buf), "%8llu %10s", 0ull, "-");
        else
            std::snprintf(buf, sizeof(buf), "%8llu %10.0f",
                          static_cast<unsigned long long>(s.events),
                          s.time_usec.mean());
        return std::string(buf);
    };
    std::printf("%-10s  lazy=no:  kernel %s   user %s\n", label,
                fmt(row.off.result.analysis.kernel_initiator).c_str(),
                fmt(row.off.result.analysis.user_initiator).c_str());
    std::printf("%-10s  lazy=yes: kernel %s   user %s\n", label,
                fmt(row.on.result.analysis.kernel_initiator).c_str(),
                fmt(row.on.result.analysis.user_initiator).c_str());

    const auto overhead = [](const AppRun &run) {
        return run.result.analysis.kernel_initiator.totalOverheadUsec() +
               run.result.analysis.user_initiator.totalOverheadUsec();
    };
    const double off = overhead(row.off);
    const double on = overhead(row.on);
    if (off > 0) {
        std::printf("%-10s  total shootdown overhead: %.0f -> %.0f us "
                    "(%.0f%% reduction; shootdowns avoided lazily: "
                    "%llu)\n",
                    label, off, on, 100.0 * (off - on) / off,
                    static_cast<unsigned long long>(
                        row.on.result.lazy_avoided));
    }
}

} // namespace

int
main()
{
    setLogQuiet(true);
    std::printf("Table 1: effect of lazy evaluation on shootdowns\n");
    std::printf("(events and average initiator times in "
                "microseconds)\n\n");

    const LazyRow mach = measure(0);
    printRow("Mach", mach);
    std::printf("\n");
    const LazyRow parthenon = measure(1);
    printRow("Parthenon", parthenon);

    if (parthenon.startups > 0) {
        const double per_on =
            static_cast<double>(parthenon.startup_on) /
            parthenon.startups / kUsec;
        const double per_off =
            static_cast<double>(parthenon.startup_off) /
            parthenon.startups / kUsec;
        std::printf("\nSection 7.2 thread-startup cost: %.0f us "
                    "without lazy evaluation, %.0f us with "
                    "(saving %.2f ms per thread start; paper: ~0.8 "
                    "ms)\n",
                    per_off, per_on, (per_off - per_on) / 1000.0);
    }

    std::printf("\npaper: Mach 8091->3827 kernel events (~60%% "
                "overhead cut); Parthenon 107->4 kernel, 70->0 user "
                "events (>97%% cut)\n");
    return 0;
}
