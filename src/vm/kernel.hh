/**
 * @file
 * The assembled system: simulated machine + pmap module + Mach VM.
 *
 * vm::Kernel is the public entry point of the library. It brings up a
 * simulated multiprocessor, installs the pmap system (and with it the
 * shootdown algorithm), and exposes the Mach address-space operations
 * of Section 2:
 *
 *   - allocation and deallocation of virtual memory,
 *   - setting protection on virtual memory,
 *   - specification of inheritance,
 *   - reading and writing memory in some other address space,
 *   - virtual-copy (copy-on-write) of regions,
 *   - task creation with share/copy/none inheritance,
 *
 * plus kernel-internal memory (kmem) whose deallocation is the source
 * of kernel-pmap shootdowns, and an optional pageout daemon.
 *
 * Typical use:
 *
 *   hw::MachineConfig config;             // 16-CPU Multimax defaults
 *   vm::Kernel kernel(config);
 *   kernel.start();
 *   vm::Task *task = kernel.createTask("app");
 *   kernel.spawnThread(task, "main", [&](kern::Thread &self) {
 *       VAddr va = 0;
 *       kernel.vmAllocate(self, *task, &va, 4 * kPageSize, true);
 *       self.store32(va, 42);             // faults, maps, writes
 *       kernel.vmProtect(self, *task, va, kPageSize, ProtRead);
 *   });
 *   kernel.machine().run();
 */

#ifndef MACH_VM_KERNEL_HH
#define MACH_VM_KERNEL_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "base/types.hh"
#include "dev/dma_device.hh"
#include "kern/machine.hh"
#include "kern/sched.hh"
#include "kern/thread.hh"
#include "kern/timer.hh"
#include "pmap/pmap.hh"
#include "vm/pager.hh"
#include "vm/task.hh"
#include "vm/vm_map.hh"

namespace mach::vm
{

/** The whole simulated operating system. */
class Kernel
{
  public:
    explicit Kernel(const hw::MachineConfig &config);
    ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    kern::Machine &machine() { return *machine_; }
    pmap::PmapSystem &pmaps() { return *pmap_sys_; }
    VmMap &kernelMap() { return kernel_map_; }
    kern::IoDevice &io() { return *io_; }
    DefaultPager &pager() { return *pager_; }

    // ---- DMA devices (MachineConfig::devices of them) ----------------

    unsigned deviceCount() const
    {
        return static_cast<unsigned>(devices_.size());
    }
    dev::DmaDevice &device(unsigned index) { return *devices_[index]; }
    const std::vector<std::unique_ptr<dev::DmaDevice>> &devices() const
    {
        return devices_;
    }

    /** Bring up idle loops and timers. Call once before machine().run. */
    void start();

    // ---- Threads ------------------------------------------------------

    /**
     * Create and start a thread in @p task (null = kernel thread).
     * @p pin >= 0 binds the thread to that CPU.
     */
    kern::Thread *spawnThread(Task *task, std::string name,
                              kern::Thread::Body body,
                              std::int64_t pin = -1);

    // ---- Tasks ----------------------------------------------------------

    /** Create an empty task. */
    Task *createTask(std::string name);

    /**
     * Create a child task whose address space is built from the
     * parent's entries according to their inheritance attributes
     * (Share / Copy / None). Copy inheritance marks both sides
     * copy-on-write and removes write access from the parent's
     * existing mappings -- which shoots down remote TLBs when the
     * parent runs threads on other processors.
     */
    Task *forkTask(kern::Thread &thread, Task &parent, std::string name);

    /**
     * Tear down a task: deallocate its whole address space (performing
     * the consistency actions that implies) and destroy its pmap. All
     * of the task's threads must have terminated.
     */
    void destroyTask(kern::Thread &thread, Task *task);

    const std::vector<std::unique_ptr<Task>> &tasks() const
    {
        return tasks_;
    }

    // ---- Address-space operations (Section 2) -------------------------

    /**
     * Allocate @p size bytes (page-rounded) in @p task's space. With
     * @p anywhere, *va receives the chosen address; otherwise *va is
     * the requested fixed address. Returns false when the space or
     * address is unavailable.
     */
    bool vmAllocate(kern::Thread &thread, Task &task, VAddr *va,
                    std::uint32_t size, bool anywhere);

    /** Deallocate [va, va+size). */
    bool vmDeallocate(kern::Thread &thread, Task &task, VAddr va,
                      std::uint32_t size);

    /**
     * Set the current protection on [va, va+size). Reductions trigger
     * consistency actions; increases are repaired lazily by faults.
     */
    bool vmProtect(kern::Thread &thread, Task &task, VAddr va,
                   std::uint32_t size, Prot prot);

    /** Set the inheritance attribute on [va, va+size). */
    bool vmInherit(kern::Thread &thread, Task &task, VAddr va,
                   std::uint32_t size, Inherit inheritance);

    /**
     * Virtual-copy [src, src+size) to a fresh range in the same task
     * (Mach message-passing style). The copy is lazy: both ranges go
     * copy-on-write, and write access is removed from the source's
     * existing mappings.
     */
    bool vmCopy(kern::Thread &thread, Task &task, VAddr src,
                std::uint32_t size, VAddr *dst);

    /**
     * Inspect the address space (Mach vm_region): find the first
     * mapped region at or above *va and report its extent and
     * attributes. Returns false when nothing is mapped above *va.
     */
    struct RegionInfo
    {
        VAddr start = 0;
        std::uint32_t size = 0;
        Prot cur_prot = ProtNone;
        Prot max_prot = ProtNone;
        Inherit inheritance = Inherit::Copy;
        std::uint32_t resident_pages = 0;
    };

    bool vmRegion(kern::Thread &thread, Task &task, VAddr *va,
                  RegionInfo *info);

    /**
     * Wire (or unwire) [va, va+size): wiring faults every page in and
     * pins it against the pageout daemon.
     */
    bool vmWire(kern::Thread &thread, Task &task, VAddr va,
                std::uint32_t size, bool wire);

    /** Read bytes from another task's address space. */
    bool vmRead(kern::Thread &thread, Task &task, VAddr va, void *buf,
                std::uint32_t len);

    /** Write bytes into another task's address space. */
    bool vmWrite(kern::Thread &thread, Task &task, VAddr va,
                 const void *buf, std::uint32_t len);

    // ---- Kernel memory -------------------------------------------------

    /** Allocate wired-on-touch kernel memory; 0 on exhaustion. */
    VAddr kmemAlloc(kern::Thread &thread, std::uint32_t size);

    /** Free kernel memory (a kernel-pmap shootdown source). */
    void kmemFree(kern::Thread &thread, VAddr va, std::uint32_t size);

    // ---- Pageout ---------------------------------------------------------

    /** Start the pageout daemon thread. */
    void enablePageout();

    /** Resident pages eligible for pageout. */
    std::size_t pageableCount() const { return pageable_.size(); }

    // ---- Fault handling (installed into the machine) --------------------

    bool handleFault(kern::Thread &thread, VAddr va, Prot want);

    /**
     * Run @p cost of leaf kernel work with interrupts (including the
     * shootdown IPI, on baseline hardware) masked. Such sections never
     * initiate shootdowns or wait on locks, so they cannot deadlock
     * against an initiator -- they only delay their processor's
     * response, which is the Section 8 skew mechanism.
     */
    void kernelSection(kern::Thread &thread, Tick cost);

    std::uint64_t faults_resolved = 0;
    std::uint64_t faults_failed = 0;
    std::uint64_t cow_copies = 0;
    std::uint64_t zero_fills = 0;
    /** Resolved faults whose page frame sat on the faulter's node. */
    std::uint64_t local_faults = 0;
    /** Resolved faults whose page frame sat on another node. */
    std::uint64_t remote_faults = 0;
    /** Pages copied to the faulting node by the Migrate policy. */
    std::uint64_t page_migrations = 0;

  private:
    friend class Task;

    struct PageRef
    {
        std::weak_ptr<VmObject> object;
        std::uint32_t offset;
    };

    /** Resolve a fault with the map lock held. */
    bool faultLocked(kern::Thread &thread, VmMap &map, pmap::Pmap &pmap,
                     VAddr va, Prot want);

    /**
     * Allocate a frame according to the configured NUMA placement
     * policy (@p key steers interleaving; single-node machines fall
     * back to the plain allocator).
     */
    Pfn allocPlacedFrame(kern::Thread &thread, std::uint32_t key);

    /**
     * Migrate-on-remote-fault: steal @p page exactly like the pageout
     * daemon (busy + pageProtect shootdown), copy the frame to
     * @p to_node, and swap it in. Every stale mapping is gone by the
     * time the copy lands -- the hazard the checker's oracle audits.
     */
    void migratePage(kern::Thread &thread, VmPage &page,
                     unsigned to_node);

    /** Count a resolved fault and run the migrate policy on @p page. */
    void notePlacement(kern::Thread &thread, VmPage &page);

    /**
     * Eager physical copy of an entry's currently visible pages into a
     * fresh object (the copy strategy for shared entries, whose
     * objects must never go copy-on-write).
     */
    ObjectPtr deepCopyObject(kern::Thread &thread,
                             const VmMapEntry &entry);

    /** Map and pmap for an address in the context of @p thread. */
    bool resolveSpace(kern::Thread &thread, VAddr va, VmMap **map,
                      pmap::Pmap **pmap);

    /** Deallocate a range of @p map with entries clipped and removed. */
    void deallocateLocked(kern::Thread &thread, VmMap &map,
                          pmap::Pmap &pmap, VAddr va, std::uint32_t size);

    void pageoutDaemon(kern::Thread &self);

    std::unique_ptr<kern::Machine> machine_;
    // Declared before pmap_sys_: pmap teardown flushes device IOTLBs
    // through ShootdownController::responders(), so the devices must
    // outlive the pmap system (members destroy in reverse order).
    std::vector<std::unique_ptr<dev::DmaDevice>> devices_;
    std::unique_ptr<pmap::PmapSystem> pmap_sys_;
    std::unique_ptr<kern::IoDevice> io_;
    std::unique_ptr<DefaultPager> pager_;
    VmMap kernel_map_;
    std::vector<std::unique_ptr<Task>> tasks_;
    std::deque<PageRef> pageable_;
    bool pageout_enabled_ = false;
};

} // namespace mach::vm

#endif // MACH_VM_KERNEL_HH
