#include "xpr/xpr.hh"

#include "base/logging.hh"

namespace mach::xpr
{

Buffer::Buffer(std::size_t capacity) : capacity_(capacity)
{
    MACH_ASSERT(capacity > 0);
}

void
Buffer::reset()
{
    head_ = 0;
    count_ = 0;
    overflowed_ = false;
}

void
Buffer::record(const Event &event)
{
    if (!enabled_)
        return;
    if (ring_.size() < capacity_) {
        // Still growing toward the configured capacity; the write
        // position is the end of the vector by construction.
        ring_.push_back(event);
        head_ = ring_.size() == capacity_ ? 0 : ring_.size();
        ++count_;
        return;
    }
    ring_[head_] = event;
    head_ = (head_ + 1) % capacity_;
    if (count_ < capacity_)
        ++count_;
    else
        overflowed_ = true;
}

std::vector<Event>
Buffer::events() const
{
    std::vector<Event> out;
    if (count_ == 0)
        return out;
    out.reserve(count_);
    const std::size_t start =
        (head_ + ring_.size() - count_) % ring_.size();
    for (std::size_t i = 0; i < count_; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

std::size_t
Buffer::size() const
{
    return count_;
}

} // namespace mach::xpr
