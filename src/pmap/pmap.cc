#include "pmap/pmap.hh"

#include <algorithm>
#include <cstdio>

#include "base/logging.hh"
#include "base/trace.hh"
#include "kern/sched.hh"
#include "obs/request.hh"
#include "pmap/policy.hh"
#include "pmap/responder.hh"
#include "pmap/shootdown.hh"
#include "xpr/xpr.hh"

namespace mach::pmap
{

// ---------------------------------------------------------------------
// Pmap
// ---------------------------------------------------------------------

Pmap::Pmap(PmapSystem *sys, bool is_kernel)
    : sys_(sys), is_kernel_(is_kernel), space_(sys->next_space_++),
      table_(&sys->machine().mem()),
      lock_(is_kernel ? "kernel-pmap" : "user-pmap", hw::SplHigh)
{
    const hw::MachineConfig &cfg = sys->machine().cfg();
    if (!cfg.host_walk_cache)
        table_.setWalkCache(false);
    if (cfg.numa_pt_replicas && sys->machine().numaNodes() > 1) {
        table_.enableReplicas(sys->machine().numaNodes());
        if (cfg.chk_defer_replica_sync)
            table_.setDeferredSync(true);
    }
    sys_->spaces_[space_] = this;
}

Pmap::~Pmap()
{
    // Host-level teardown (no simulated time): drop pv entries that
    // still reference this pmap, scrub any consistency actions queued
    // against it (e.g. on idle processors), and invalidate any TLB
    // entries tagged with its space so no stale state dangles.
    if (low_water_ < high_water_) {
        table_.forEachValid(low_water_, high_water_,
                            [this](Vpn vpn, std::uint32_t entry) {
                                sys_->pvRemove(hw::pte::pfn(entry), this,
                                               vpn);
                            });
    }
    sys_->shoot().purgePmap(this);
    for (CpuId id = 0; id < sys_->machine().ncpus(); ++id) {
        sys_->machine().cpu(id).tlb().flushSpace(space_);
        if (sys_->machine().cpu(id).cur_pmap == this)
            sys_->machine().cpu(id).cur_pmap = nullptr;
    }
    for (TlbResponder *dev : sys_->shoot().responders())
        dev->tlb().flushSpace(space_);
    sys_->spaces_.erase(space_);
}

bool
Pmap::othersUsing(CpuId self) const
{
    CpuSet others = in_use_;
    others.clear(self);
    return !others.empty();
}

void
Pmap::activate(kern::Cpu &cpu)
{
    // Context-load hook: runs before the space becomes current, so a
    // lazily deferred flush (LazyAsid policy) is applied while the
    // space's residue is still unreachable.
    sys_->shoot().policy().onContextLoad(cpu, *this);
    in_use_.set(cpu.id());
    cpu.cur_pmap = this;
}

void
Pmap::deactivate(kern::Cpu &cpu)
{
    if (cpu.cur_pmap == this)
        cpu.cur_pmap = nullptr;
    if (sys_->machine().cfg().tlb_asid_tags) {
        // Section 10 extension: entries survive the context switch, so
        // the pmap remains in use here until explicitly flushed by a
        // later consistency action.
        return;
    }
    // Multimax behaviour: the TLB is flushed on context switch, so no
    // entries for this space survive.
    cpu.tlb().flushAll();
    in_use_.clear(cpu.id());
}

bool
Pmap::mayBeCached(kern::Cpu &cpu, Vpn start, Vpn end,
                  unsigned *mapped_pages)
{
    const hw::MachineConfig &cfg = sys_->machine().cfg();
    if (cfg.lazy_evaluation) {
        // The full lazy-evaluation check: TLBs cannot cache invalid
        // mappings, so a range with no valid PTEs needs no shootdown.
        const unsigned mapped = table_.countValid(start, end);
        cpu.advanceNoPoll(cfg.lazy_check_cost_per_page * (mapped + 1));
        *mapped_pages = mapped;
        return mapped > 0;
    }

    // Lazy evaluation disabled (the Table 1 experiment): only the
    // residual structure knowledge remains -- a missing second-level
    // table means an entire page of PTEs is missing, so whole-leaf
    // holes are still skipped.
    *mapped_pages = end - start;
    constexpr Vpn leaf_span = hw::PageTable::kPagesPerLeaf;
    for (Vpn vpn = start; vpn < end;
         vpn = (vpn / leaf_span + 1) * leaf_span) {
        if (table_.leafPresent(vpn))
            return true;
    }
    return false;
}

template <typename Fn>
void
Pmap::updateMappings(kern::Thread &thread, Vpn start, Vpn end,
                     bool reduces, Fn &&change)
{
    kern::Cpu &cpu = thread.cpu();
    const hw::MachineConfig &cfg = sys_->machine().cfg();

    // Figure 1 prologue: s = disable_interrupts(); active[mycpu] =
    // FALSE; lock_pmap(pmap). Leaving the active set before spinning on
    // the lock is what makes concurrent initiators deadlock-free.
    const hw::Spl saved = cpu.setSpl(hw::SplHigh);
    cpu.active = false;
    lock_.rawLock(cpu);
    cpu.advanceNoPoll(cfg.pmap_op_base_cost);
    ++ops;

    bool need_consistency = reduces && cfg.shootdown_enabled;
    unsigned mapped = 0;
    if (need_consistency) {
        need_consistency = mayBeCached(cpu, start, end, &mapped);
        if (!need_consistency) {
            ++shootdowns_avoided_lazy;
            MACH_TRACE_LOG(Pmap, sys_->machine().now(),
                           "cpu%u: lazy evaluation skips consistency "
                           "actions for vpn [0x%x,0x%x)",
                           cpu.id(), start, end);
        }
    }
    if (need_consistency &&
        sys_->shoot().policy().reuseElideCheck(cpu, *this, start, end)) {
        // ReuseElide policy: no page of the range has been referenced
        // since its last consistency-clean instant, so no TLB anywhere
        // caches it and the change needs no consistency actions.
        need_consistency = false;
    }

    const bool delayed =
        cfg.consistency_strategy ==
        hw::ConsistencyStrategy::DelayedFlush;

    // On baseline (and software-reload) hardware the consistency
    // actions precede the change; on remote-invalidate or postponed-
    // interrupt hardware they must follow it (see
    // ShootdownController::invalidateAfterChange).
    const bool after = sys_->shoot().invalidateAfterChange();
    auto consistency_actions = [&] {
        if (in_use_.test(cpu.id()))
            sys_->shoot().invalidateLocal(cpu, space_, start, end);
        if (othersUsing(cpu.id())) {
            ++shootdowns_initiated;
            sys_->shoot().shoot(cpu, *this, start, end, mapped);
        }
    };

    ShootdownController::FlushSnapshot snapshot;
    if (need_consistency && delayed) {
        // Technique 2: invalidate locally, remember every other
        // user's flush epoch, and wait (after the change, outside the
        // lock) for timer-driven flushes to catch up.
        if (in_use_.test(cpu.id()))
            sys_->shoot().invalidateLocal(cpu, space_, start, end);
        snapshot = sys_->shoot().snapshotFlushes(cpu, *this);
    } else if (need_consistency && !after) {
        consistency_actions();
    }

    // Phase 3: make changes to the physical map.
    change(cpu);

    if (need_consistency && !delayed && after)
        consistency_actions();

    lock_.rawUnlock(cpu);
    cpu.active = true;

    if (table_.deferredSyncPending()) {
        // TEST ONLY (chk_defer_replica_sync): replica fan-out was
        // deferred past the unlock and the active-set rejoin, so a
        // released responder whose stall-exit, drain, and reload all
        // land before the sync below re-caches a pre-change PTE from
        // its node-local replica. The window is one tick wide and a
        // responder's drain alone costs microseconds, so the
        // unperturbed run survives; detection requires a schedule that
        // stretches this event (the explorer's golden find).
        cpu.advanceNoPoll(1);
        table_.syncReplicas();
    }

    // Restoring the interrupt state services any shootdown queued at us
    // while we were initiating ("the interrupts will be acted upon
    // before performing any memory references that may use inconsistent
    // TLB entries").
    cpu.setSpl(saved);

    if (need_consistency && delayed && !snapshot.empty()) {
        ++shootdowns_initiated;
        sys_->shoot().delayedFlushWait(thread, *this, snapshot, mapped);
    }

    if (sys_->post_op_hook_)
        sys_->post_op_hook_(*this);
}

void
Pmap::enter(kern::Thread &thread, Vpn vpn, Pfn pfn, Prot prot, bool wired)
{
    (void)wired;
    const std::uint32_t old = table_.readPte(vpn);
    const bool reduces =
        hw::pte::valid(old) && (hw::pte::pfn(old) != pfn ||
                                protReduces(hw::pte::prot(old), prot));

    updateMappings(thread, vpn, vpn + 1, reduces, [&](kern::Cpu &cpu) {
        const std::uint32_t cur = table_.readPte(vpn);
        cpu.memAccess(2);
        bool ref = false, mod = false;
        if (hw::pte::valid(cur)) {
            if (hw::pte::pfn(cur) != pfn) {
                sys_->pvRemove(hw::pte::pfn(cur), this, vpn);
                sys_->pvAdd(pfn, this, vpn);
            } else {
                ref = hw::pte::referenced(cur);
                mod = hw::pte::modified(cur);
            }
        } else {
            sys_->pvAdd(pfn, this, vpn);
        }
        table_.writePte(vpn, hw::pte::make(pfn, prot, ref, mod));
        // Drop any stale local entry so the retried access reloads the
        // new PTE instead of re-faulting on the cached one.
        cpu.tlb().invalidatePage(space_, vpn);

        if (vpn < low_water_)
            low_water_ = vpn;
        if (vpn >= high_water_)
            high_water_ = vpn + 1;
    });
}

void
Pmap::remove(kern::Thread &thread, Vpn start, Vpn end)
{
    updateMappings(thread, start, end, true, [&](kern::Cpu &cpu) {
        table_.forEachValid(start, end,
                            [&](Vpn vpn, std::uint32_t entry) {
                                cpu.memAccess(2);
                                sys_->pvRemove(hw::pte::pfn(entry), this,
                                               vpn);
                                table_.writePte(vpn, 0);
                            });
    });
}

void
Pmap::protect(kern::Thread &thread, Vpn start, Vpn end, Prot prot)
{
    if (prot == ProtNone) {
        remove(thread, start, end);
        return;
    }
    // Only the removal of write permission can strand inconsistent
    // entries; additions of permission are repaired lazily by faults.
    const bool reduces = !protAllows(prot, ProtWrite);

    updateMappings(thread, start, end, reduces, [&](kern::Cpu &cpu) {
        table_.forEachValid(
            start, end, [&](Vpn vpn, std::uint32_t entry) {
                cpu.memAccess(2);
                table_.writePte(
                    vpn, hw::pte::make(hw::pte::pfn(entry), prot,
                                       hw::pte::referenced(entry),
                                       hw::pte::modified(entry)));
                cpu.tlb().invalidatePage(space_, vpn);
            });
    });
}

bool
Pmap::pageProtect(PmapSystem &sys, kern::Thread &thread, Pfn pfn,
                  Prot prot)
{
    // Copy the pv list: removals mutate it underneath us.
    const std::vector<PvEntry> mappings = sys.pvList(pfn);
    bool was_modified = false;
    for (const PvEntry &pv : mappings) {
        const std::uint32_t entry = pv.pmap->table_.readPte(pv.vpn);
        if (hw::pte::modified(entry))
            was_modified = true;
        if (prot == ProtNone)
            pv.pmap->remove(thread, pv.vpn, pv.vpn + 1);
        else
            pv.pmap->protect(thread, pv.vpn, pv.vpn + 1, prot);
    }
    return was_modified;
}

void
Pmap::collect(kern::Thread &thread)
{
    if (low_water_ >= high_water_)
        return; // Nothing was ever entered.
    const Vpn start = low_water_;
    const Vpn end = high_water_;
    updateMappings(thread, start, end, true, [&](kern::Cpu &cpu) {
        table_.forEachValid(start, end,
                            [&](Vpn vpn, std::uint32_t entry) {
                                cpu.memAccess(1);
                                sys_->pvRemove(hw::pte::pfn(entry), this,
                                               vpn);
                            });
        table_.collect();
        low_water_ = ~Vpn{0};
        high_water_ = 0;
    });
}

// ---------------------------------------------------------------------
// PmapSystem
// ---------------------------------------------------------------------

PmapSystem::PmapSystem(kern::Machine &machine) : machine_(machine)
{
    shoot_ = std::make_unique<ShootdownController>(*this);
    kernel_pmap_ = std::unique_ptr<Pmap>(new Pmap(this, true));
    // The kernel is a multi-threaded task potentially executing on all
    // processors, so its pmap is permanently in use everywhere.
    for (CpuId id = 0; id < machine_.ncpus(); ++id)
        kernel_pmap_->in_use_.set(id);
    machine_.kernel_pmap = kernel_pmap_.get();
    machine_.pmap_sys = this;
}

PmapSystem::~PmapSystem()
{
    kernel_pmap_.reset();
    machine_.kernel_pmap = nullptr;
    machine_.pmap_sys = nullptr;
}

std::unique_ptr<Pmap>
PmapSystem::createPmap()
{
    return std::unique_ptr<Pmap>(new Pmap(this, false));
}

void
PmapSystem::pvAdd(Pfn pfn, Pmap *pmap, Vpn vpn)
{
    pv_[pfn].push_back({pmap, vpn});
}

void
PmapSystem::pvRemove(Pfn pfn, Pmap *pmap, Vpn vpn)
{
    auto it = pv_.find(pfn);
    if (it == pv_.end())
        return;
    auto &list = it->second;
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](const PvEntry &pv) {
                                  return pv.pmap == pmap && pv.vpn == vpn;
                              }),
               list.end());
    if (list.empty())
        pv_.erase(it);
}

const std::vector<PvEntry> &
PmapSystem::pvList(Pfn pfn) const
{
    auto it = pv_.find(pfn);
    return it == pv_.end() ? empty_pv_ : it->second;
}

Pmap *
PmapSystem::pmapForSpace(hw::SpaceId space) const
{
    auto it = spaces_.find(space);
    return it == spaces_.end() ? nullptr : it->second;
}

bool
PmapSystem::anyPmapLocked() const
{
    for (const auto &[space, pmap] : spaces_) {
        if (pmap->locked())
            return true;
    }
    return false;
}

std::vector<std::string>
PmapSystem::auditTlbConsistency() const
{
    std::vector<std::string> violations;
    char buf[160];
    for (CpuId id = 0; id < machine_.ncpus(); ++id) {
        kern::Cpu &cpu = const_cast<kern::Machine &>(machine_).cpu(id);
        // A processor with consistency actions still queued (typically
        // an idle one, which receives no interrupts) may legitimately
        // hold stale entries: the algorithm guarantees it will drain
        // the queue before performing any translation.
        if (shoot_->stateFor(id).action_needed)
            continue;
        // Residue of a space with a deferred flush pending on this
        // processor is dead by construction (LazyAsid policy): the
        // flush is applied before the space can become current here
        // again. Residue of the *current* space is never excused --
        // a set flag on the running space is exactly the stale state
        // the planted broken-asid variant creates.
        auto deferred_residue = [&](hw::SpaceId space) {
            return cpu.tlb().hasDeferredFlush(space) &&
                   (cpu.cur_pmap == nullptr ||
                    cpu.cur_pmap->space() != space);
        };
        const std::vector<hw::TlbEntry> live = cpu.tlb().entries();
        for (const hw::TlbEntry &entry : live) {
            if (!entry.valid || deferred_residue(entry.space))
                continue;
            const Pmap *pmap = pmapForSpace(entry.space);
            if (pmap == nullptr) {
                std::snprintf(buf, sizeof(buf),
                              "cpu%u caches vpn 0x%x for a destroyed "
                              "space %u",
                              id, entry.vpn, entry.space);
                violations.emplace_back(buf);
                continue;
            }
            const std::uint32_t pte = pmap->table().readPte(entry.vpn);
            if (!hw::pte::valid(pte) ||
                hw::pte::pfn(pte) != entry.pfn ||
                !protAllows(hw::pte::prot(pte), entry.prot)) {
                std::snprintf(buf, sizeof(buf),
                              "cpu%u caches vpn 0x%x space %u prot %u "
                              "pfn %u but PTE is 0x%08x",
                              id, entry.vpn, entry.space,
                              static_cast<unsigned>(entry.prot),
                              entry.pfn, pte);
                violations.emplace_back(buf);
            }
        }
        // The host-side L0 cache serves translations without
        // revalidating against the indexed TLB, so a missed L0
        // invalidation is a genuine stale-translation hazard. Audit
        // everything it would serve with the same checks. Slots that
        // exactly mirror a live indexed entry are skipped: the loop
        // above already audited that translation, and with correct L0
        // maintenance every slot falls in this category.
        for (const hw::TlbEntry &entry : cpu.tlb().l0Translations()) {
            if (deferred_residue(entry.space))
                continue;
            bool mirrors_live = false;
            for (const hw::TlbEntry &backing : live) {
                if (backing.valid && backing.space == entry.space &&
                    backing.vpn == entry.vpn &&
                    backing.pfn == entry.pfn &&
                    backing.prot == entry.prot) {
                    mirrors_live = true;
                    break;
                }
            }
            if (mirrors_live)
                continue;
            const Pmap *pmap = pmapForSpace(entry.space);
            if (pmap == nullptr) {
                std::snprintf(buf, sizeof(buf),
                              "cpu%u L0 caches vpn 0x%x for a "
                              "destroyed space %u",
                              id, entry.vpn, entry.space);
                violations.emplace_back(buf);
                continue;
            }
            const std::uint32_t pte = pmap->table().readPte(entry.vpn);
            if (!hw::pte::valid(pte) ||
                hw::pte::pfn(pte) != entry.pfn ||
                !protAllows(hw::pte::prot(pte), entry.prot)) {
                std::snprintf(buf, sizeof(buf),
                              "cpu%u L0 caches vpn 0x%x space %u "
                              "prot %u pfn %u but PTE is 0x%08x",
                              id, entry.vpn, entry.space,
                              static_cast<unsigned>(entry.prot),
                              entry.pfn, pte);
                violations.emplace_back(buf);
            }
        }
    }
    // Device IOTLBs are audited exactly like CPU TLBs: an entry must
    // never grant rights its PTE does not. The action-needed excuse
    // applies (a device with actions queued drains them before its
    // next translation), but there is no deferred-flush excuse --
    // devices never participate in the LazyAsid deferral.
    for (pmap::TlbResponder *dev : shoot_->responders()) {
        if (shoot_->stateFor(dev->id()).action_needed)
            continue;
        const std::string label = dev->describe();
        const std::vector<hw::TlbEntry> live = dev->tlb().entries();
        auto checkEntry = [&](const hw::TlbEntry &entry,
                              const char *where) {
            const Pmap *pmap = pmapForSpace(entry.space);
            if (pmap == nullptr) {
                std::snprintf(buf, sizeof(buf),
                              "%s %scaches vpn 0x%x for a destroyed "
                              "space %u",
                              label.c_str(), where, entry.vpn,
                              entry.space);
                violations.emplace_back(buf);
                return;
            }
            const std::uint32_t pte = pmap->table().readPte(entry.vpn);
            if (!hw::pte::valid(pte) ||
                hw::pte::pfn(pte) != entry.pfn ||
                !protAllows(hw::pte::prot(pte), entry.prot)) {
                std::snprintf(buf, sizeof(buf),
                              "%s %scaches vpn 0x%x space %u prot %u "
                              "pfn %u but PTE is 0x%08x",
                              label.c_str(), where, entry.vpn,
                              entry.space,
                              static_cast<unsigned>(entry.prot),
                              entry.pfn, pte);
                violations.emplace_back(buf);
            }
        };
        for (const hw::TlbEntry &entry : live) {
            if (entry.valid)
                checkEntry(entry, "");
        }
        for (const hw::TlbEntry &entry : dev->tlb().l0Translations()) {
            bool mirrors_live = false;
            for (const hw::TlbEntry &backing : live) {
                if (backing.valid && backing.space == entry.space &&
                    backing.vpn == entry.vpn &&
                    backing.pfn == entry.pfn &&
                    backing.prot == entry.prot) {
                    mirrors_live = true;
                    break;
                }
            }
            if (!mirrors_live)
                checkEntry(entry, "L0 ");
        }
    }
    // With per-node page-table replicas, every replica must agree with
    // the primary (modulo per-node ref/mod bits) at quiescent points.
    for (const auto &[space, pmap] : spaces_) {
        if (pmap->table().replicas() < 2 ||
            pmap->table().deferredSyncPending() ||
            pmap->low_water_ >= pmap->high_water_) {
            continue;
        }
        for (const std::string &d : pmap->table().replicaDivergence(
                 pmap->low_water_, pmap->high_water_)) {
            std::snprintf(buf, sizeof(buf), "space %u: %s", space,
                          d.c_str());
            violations.emplace_back(buf);
        }
    }
    return violations;
}

} // namespace mach::pmap

// ---------------------------------------------------------------------
// The MMU access path. This lives in the pmap module because address
// translation is machine-dependent: kern::Cpu declares the interface,
// the pmap module implements it (just as Mach's pmap module owned all
// hardware translation knowledge).
// ---------------------------------------------------------------------

namespace mach::kern
{

pmap::Pmap *
Cpu::pmapFor(VAddr va)
{
    if (va >= Machine::kKernelBase)
        return machine_->kernel_pmap;
    return cur_pmap;
}

AccessResult
Cpu::access(VAddr va, Prot want)
{
    const hw::MachineConfig &cfg = machine_->cfg();
    const Vpn vpn = vaToVpn(va);
    const bool numa = machine_->numaNodes() > 1;

    // Deterministic interconnect penalty for touching a frame that
    // lives on another node's memory: a flat distance-scaled surcharge
    // on top of the bus-priced access (no RNG draws, so single-node
    // runs and their goldens are untouched).
    auto remotePenalty = [&](kern::Cpu &here, Pfn pfn, unsigned count) {
        if (!numa)
            return;
        const Tick extra = machine_->topo().remoteCost(
            here.node_, machine_->mem().nodeOfPfn(pfn),
            cfg.mem_access_cost);
        if (extra == 0)
            return;
        ++here.remote_mem_accesses;
        here.advanceNoPoll(extra * count);
    };

    // The fault path below can block (map locks, pagein) and the
    // thread may be rescheduled onto a different processor, so the
    // executing CPU is re-fetched on every iteration -- the retried
    // probe must hit the TLB of the processor we are *now* on.
    MACH_ASSERT(cur_thread != nullptr);
    kern::Thread *thread = cur_thread;

    for (int attempt = 0; attempt < 256; ++attempt) {
        Cpu &here = thread->cpu();
        pmap::Pmap *pm = here.pmapFor(va);
        if (!pm)
            return {};

        here.advance(cfg.tlb_lookup_cost);
        // With per-node replicas, this CPU's walker (and its ref/mod
        // writebacks) operate on the node-local copy of the table.
        const PAddr pte_addr = pm->table().pteAddr(vpn, here.node_);
        const hw::TlbLookup look =
            here.tlb_.lookup(pm->space(), vpn, want, pte_addr);
        if (look.hit && look.prot_ok) {
            remotePenalty(here, look.pfn, 1);
            return {true,
                    (look.pfn << kPageShift) | (va & kPageMask)};
        }

        if (!look.hit) {
            // Attribute the whole refill window -- reload stall, walk,
            // writeback, per-level latency -- to the requesting
            // thread's Walk component (one branch when no request is
            // in flight).
            obs::ReqScope walk_scope(machine_->recorder(),
                                     thread->obs_request,
                                     obs::ReqComponent::Walk);
            if (cfg.tlb_software_reload) {
                // Software reload (MIPS style): the miss handler checks
                // whether the pmap is being modified and stalls only in
                // that case -- this is what lets responders return
                // immediately instead of spinning (Section 9).
                while (pm->locked())
                    here.spinOnce();
            }
            // The walk's PTE read, its ref/mod writeback, and the TLB
            // fill happen at one simulated instant, *before* the walk
            // latency is charged: the charge is preemptible, so an
            // interrupt arriving mid-walk is serviced at its end --
            // the next instruction boundary, as on real hardware --
            // and a responder drain running there must see (and sweep)
            // this fill. Filling after the charge let a pre-change PTE
            // image enter the TLB *after* the drain had already run,
            // a stale translation the schedule explorer can force by
            // landing a shootdown IPI inside the walk window.
            const hw::WalkResult walk = pm->table().walk(vpn, here.node_);
            const Prot pte_prot = hw::pte::prot(walk.pte);
            const bool resolved =
                hw::pte::valid(walk.pte) && protAllows(pte_prot, want);
            if (resolved) {
                const bool writing = protAllows(want, ProtWrite);
                // Hardware maintains the referenced (and, for a write,
                // modified) bit in the PTE as part of the reload.
                if (!cfg.tlb_no_refmod_writeback) {
                    std::uint32_t updated = walk.pte | hw::pte::kRef;
                    if (writing)
                        updated |= hw::pte::kMod;
                    const PAddr addr =
                        pm->table().pteAddr(vpn, here.node_);
                    if (addr != 0)
                        machine_->mem().write32(addr, updated);
                }
                here.tlb_.insert(pm->space(), vpn,
                                 hw::pte::pfn(walk.pte), pte_prot,
                                 writing);
            }
            here.memAccess(walk.memory_reads);
            // A walk through a remote node's page-table frames pays the
            // interconnect surcharge per level read; replicas exist
            // precisely to make this term vanish.
            if (numa && pte_addr != 0) {
                remotePenalty(here,
                              static_cast<Pfn>(pte_addr >> kPageShift),
                              walk.memory_reads);
            }
            here.advance(cfg.tlb_reload_cost_per_level *
                         walk.memory_reads);
            if (resolved)
                continue; // Retry; the next probe (normally) hits.
        }

        // Translation absent or insufficient: page fault.
        ++here.faults_taken;
        if (!machine_->handleFault(*thread, va, want))
            return {};
    }
    panic("Cpu::access: unresolvable fault loop at va 0x%08x", va);
}

} // namespace mach::kern
