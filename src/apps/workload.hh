/**
 * @file
 * Common driver for the evaluation workloads (Section 5.2).
 *
 * A Workload runs on a fresh Kernel inside a driver thread; execute()
 * spins the machine, then classifies the xpr records into the
 * kernel-initiator / user-initiator / responder summaries the paper's
 * tables report.
 */

#ifndef MACH_APPS_WORKLOAD_HH
#define MACH_APPS_WORKLOAD_HH

#include <string>

#include "base/types.hh"
#include "vm/kernel.hh"
#include "xpr/analysis.hh"

namespace mach::apps
{

/** Everything measured about one workload run. */
struct WorkloadResult
{
    /** Simulated wall time the run took. */
    Tick virtual_runtime = 0;
    /** Classified shootdown records. */
    xpr::RunAnalysis analysis;
    /** Shootdowns skipped by the lazy-evaluation check. */
    std::uint64_t lazy_avoided = 0;
};

/** Base class for the evaluation applications. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /**
     * The application body; runs in a kernel driver thread. Spawn
     * tasks/threads, join them, and return when the run is complete.
     */
    virtual void run(vm::Kernel &kernel, kern::Thread &driver) = 0;

    /**
     * Bring the kernel up (if needed), run the workload to completion,
     * and analyze the instrumentation buffer.
     */
    WorkloadResult execute(vm::Kernel &kernel);
};

} // namespace mach::apps

#endif // MACH_APPS_WORKLOAD_HH
