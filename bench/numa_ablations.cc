/**
 * @file
 * NUMA ablations: what the interconnect does to the paper's numbers.
 *
 * The headline table pits local against remote shootdowns. A driver
 * reprotects a shared page while responder threads -- pinned either to
 * the initiator's node or to remote nodes -- keep the mapping hot, so
 * every reprotect is a real user shootdown. On a remote shoot-set the
 * initiator pays one interconnect IPI per remote node (phase 1) and the
 * node's delegate fans out locally (phase 2), so latency grows with the
 * SLIT distance, not with the remote responder count.
 *
 * A second table sweeps the page-placement policies on a 2-node storm
 * and reports the remote-fault ratio each one leaves behind.
 */

#include "bench_common.hh"

#include "apps/consistency_tester.hh"
#include "pmap/shootdown.hh"
#include "xpr/analysis.hh"
#include "xpr/machine_stats.hh"

using namespace mach;
using namespace mach::bench;

namespace
{

struct ShotRow
{
    std::string label;
    double mean_usec = 0;
    double procs = 0;
    std::uint64_t events = 0;
    std::uint64_t cross_ipis = 0;
    std::uint64_t forwarded = 0;
};

/**
 * Measure user-shootdown latency with @p responders threads keeping a
 * page hot from the CPUs in @p pins while CPU 0 reprotects it.
 */
ShotRow
measureShootdowns(const std::string &label, unsigned nodes,
                  unsigned distance, const std::vector<int> &pins)
{
    hw::MachineConfig config;
    config.ncpus = nodes * 8;
    config.numa_nodes = nodes;
    config.numa_remote_distance = distance;
    config.seed = 0xab1a7e;

    vm::Kernel kernel(config);
    kernel.start();
    bool stop = false;
    kernel.spawnThread(nullptr, "driver", [&](kern::Thread &driver) {
        vm::Task *task = kernel.createTask("ablation");
        VAddr va = 0;
        if (!kernel.vmAllocate(driver, *task, &va, kPageSize, true))
            fatal("vmAllocate failed");

        std::vector<kern::Thread *> threads;
        for (int pin : pins) {
            threads.push_back(kernel.spawnThread(
                task, "responder",
                [&, va](kern::Thread &self) {
                    std::uint32_t value = 0;
                    while (!stop) {
                        self.load32(va, &value);
                        self.sleep(200);
                    }
                },
                pin));
        }
        driver.sleep(2 * kMsec); // Let every responder cache the page.

        for (unsigned round = 0; round < 160; ++round) {
            kernel.vmProtect(driver, *task, va, kPageSize, ProtRead);
            driver.sleep(500);
            kernel.vmProtect(driver, *task, va, kPageSize,
                             ProtReadWrite);
            driver.sleep(500);
        }
        stop = true;
        for (kern::Thread *thread : threads)
            driver.join(*thread);
        kernel.machine().ctx().requestStop();
    });
    kernel.machine().run();

    const xpr::RunAnalysis analysis =
        xpr::analyze(kernel.machine().xpr());
    ShotRow row;
    row.label = label;
    row.mean_usec = analysis.user_initiator.time_usec.mean();
    row.procs = analysis.user_initiator.procs.mean();
    row.events = analysis.user_initiator.events;
    row.cross_ipis = kernel.pmaps().shoot().cross_node_ipis;
    row.forwarded = kernel.pmaps().shoot().forwarded_ipis;
    return row;
}

const char *
policyName(hw::PlacementPolicy policy)
{
    switch (policy) {
      case hw::PlacementPolicy::FirstTouch: return "first-touch";
      case hw::PlacementPolicy::Interleave: return "interleave";
      case hw::PlacementPolicy::Migrate: return "migrate";
    }
    return "?";
}

} // namespace

int
main()
{
    setLogQuiet(true);

    std::printf("NUMA ablation 1: local vs remote shootdown "
                "latency\n\n");
    std::printf("%-26s %6s %10s %8s %10s %10s\n", "shoot set", "shots",
                "mean(us)", "procs", "xnode-ipi", "forwarded");

    // Responders on the initiator's node vs the same count one (or
    // three) interconnect hops away.
    std::vector<ShotRow> rows;
    rows.push_back(measureShootdowns("1-node baseline", 1, 25,
                                     {1, 2, 3}));
    rows.push_back(measureShootdowns("2-node, local set", 2, 25,
                                     {1, 2, 3}));
    rows.push_back(measureShootdowns("2-node, remote d=25", 2, 25,
                                     {9, 10, 11}));
    rows.push_back(measureShootdowns("2-node, remote d=40", 2, 40,
                                     {9, 10, 11}));
    rows.push_back(measureShootdowns("2-node, remote d=60", 2, 60,
                                     {9, 10, 11}));
    rows.push_back(measureShootdowns("4-node, 3 remote nodes", 4, 25,
                                     {9, 17, 25}));
    for (const ShotRow &row : rows)
        std::printf("%-26s %6llu %10.1f %8.1f %10llu %10llu\n",
                    row.label.c_str(),
                    static_cast<unsigned long long>(row.events),
                    row.mean_usec, row.procs,
                    static_cast<unsigned long long>(row.cross_ipis),
                    static_cast<unsigned long long>(row.forwarded));

    // Delta column: the same 3-responder set moved across the
    // interconnect, against the node-local baseline. Delegation makes
    // the d=25 remote set roughly a wash (one interconnect IPI can be
    // cheaper than three directed local sends); the delta then grows
    // with the SLIT distance.
    const double local = rows[1].mean_usec;
    if (local > 0) {
        std::printf("\n%-26s %12s\n", "remote set", "delta vs local");
        for (std::size_t i = 2; i < 5; ++i)
            std::printf("%-26s %+9.1f us (%+.1f%%)\n",
                        rows[i].label.c_str(), rows[i].mean_usec - local,
                        (rows[i].mean_usec / local - 1.0) * 100.0);
    }

    std::printf("\nNUMA ablation 2: placement policy vs remote-fault "
                "ratio (2 nodes, 16 CPUs)\n\n");
    std::printf("%-12s %8s %8s %10s %10s\n", "policy", "local",
                "remote", "ratio", "migrations");
    for (hw::PlacementPolicy policy :
         {hw::PlacementPolicy::FirstTouch,
          hw::PlacementPolicy::Interleave,
          hw::PlacementPolicy::Migrate}) {
        hw::MachineConfig config;
        config.ncpus = 16;
        config.numa_nodes = 2;
        config.numa_placement = policy;
        config.numa_migrate_threshold = 2;
        config.seed = 0xab1a7f;
        vm::Kernel kernel(config);
        apps::ConsistencyTester tester(
            {.children = 12, .warmup = 30 * kMsec});
        tester.execute(kernel);
        if (!tester.consistent()) {
            std::printf("!! inconsistency under %s\n",
                        policyName(policy));
            return 1;
        }
        const std::uint64_t total =
            kernel.local_faults + kernel.remote_faults;
        std::printf("%-12s %8llu %8llu %9.1f%% %10llu\n",
                    policyName(policy),
                    static_cast<unsigned long long>(
                        kernel.local_faults),
                    static_cast<unsigned long long>(
                        kernel.remote_faults),
                    total ? 100.0 * kernel.remote_faults / total : 0.0,
                    static_cast<unsigned long long>(
                        kernel.page_migrations));
    }

    std::printf("\nconclusion: cross-node shootdowns pay one "
                "interconnect IPI per remote node, so latency tracks "
                "the SLIT distance while the delegate keeps the "
                "per-responder cost on the remote node's own bus\n");
    return 0;
}
