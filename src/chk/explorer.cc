#include "chk/explorer.hh"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "base/rng.hh"
#include "chk/oracle.hh"
#include "obs/recorder.hh"
#include "pmap/shootdown.hh"
#include "vm/kernel.hh"

namespace mach::chk
{

namespace
{

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t
fold(std::uint64_t h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

/** Delta ladder for the systematic sweep: one TLB-invalidate-scale
 *  nudge up to a schedule-quantum-scale shove. */
constexpr Tick kDeltaLadder[] = {30 * kUsec, 120 * kUsec, 500 * kUsec,
                                 1500 * kUsec};
constexpr unsigned kDeltaLadderSize = 4;

/** Liveness bound for one perturbed run: the unperturbed bound plus
 *  every injected delay. A delay-only perturbation can stretch a run
 *  by at most the sum of its extras, so exceeding this bound means
 *  some shootdown (or join on one) genuinely failed to terminate. */
Tick
perturbedBound(const Scenario &scenario, const SchedulePerturber &p)
{
    Tick bound = scenario.bound;
    for (const PerturbItem &item : p.items())
        bound += item.extra;
    return bound;
}

/**
 * One trial's machinery: kernel, oracle, workload -- everything that
 * exists from launch to verdict. Kept in one place so the serial
 * path (construct, run, finish) and the snapshot path (construct,
 * run the shared prefix, fork, resume, finish in the child) assemble
 * TrialResults with byte-identical rules.
 */
struct TrialHarness
{
    vm::Kernel kernel;
    Oracle oracle;
    ScenarioState state;

    explicit TrialHarness(const Scenario &scenario,
                          const SchedulePerturber *perturber = nullptr)
        : kernel(scenario.config), oracle(kernel)
    {
        if (perturber != nullptr)
            kernel.machine().setPerturber(perturber);
        scenario.launch(kernel, &state);
    }

    /** Judge the finished run; @p events_fired is the run() total. */
    TrialResult
    finish(std::uint64_t events_fired)
    {
        TrialResult out;
        oracle.finalCheck();
        kernel.machine().setPerturber(nullptr);

        out.events_fired = events_fired;
        out.completed = state.finished;
        out.predicate_ok = state.predicate_ok;
        out.coverage_ok = state.coverage_ok;
        out.note = state.note;
        out.violations = oracle.violations();
        out.violation_count = oracle.violationCount();
        out.bus_accesses = kernel.machine().busAccessTotal();
        out.end_time = kernel.machine().now();

        const pmap::ShootdownController &shoot =
            kernel.pmaps().shoot();
        std::uint64_t h = kFnvOffset;
        h = fold(h, out.end_time);
        h = fold(h, out.events_fired);
        h = fold(h, out.bus_accesses);
        h = fold(h, shoot.initiated);
        h = fold(h, shoot.interrupts_sent);
        h = fold(h, shoot.responder_passes);
        h = fold(h, shoot.idle_drains);
        h = fold(h, shoot.queue_overflows);
        h = fold(h, shoot.remote_invalidates);
        h = fold(h, out.violation_count);
        out.digest = h;
        return out;
    }
};

// ---- TrialResult wire form (fork-snapshot children -> parent) -------

void
appendU64(std::string &s, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

bool
readU64(const std::string &s, std::size_t *pos, std::uint64_t *v)
{
    if (*pos + 8 > s.size())
        return false;
    std::uint64_t out = 0;
    for (unsigned i = 0; i < 8; ++i)
        out |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(s[*pos + i]))
               << (8 * i);
    *pos += 8;
    *v = out;
    return true;
}

bool
readString(const std::string &s, std::size_t *pos, std::string *out)
{
    std::uint64_t len = 0;
    if (!readU64(s, pos, &len) || *pos + len > s.size())
        return false;
    out->assign(s, *pos, static_cast<std::size_t>(len));
    *pos += static_cast<std::size_t>(len);
    return true;
}

constexpr std::uint64_t kTrialWireMagic = 0x4d464152'5452494cull;

std::string
encodeTrial(const TrialResult &r)
{
    std::string s;
    appendU64(s, kTrialWireMagic);
    appendU64(s, r.completed ? 1 : 0);
    appendU64(s, r.predicate_ok ? 1 : 0);
    appendU64(s, r.coverage_ok ? 1 : 0);
    appendU64(s, r.violation_count);
    appendU64(s, r.events_fired);
    appendU64(s, r.bus_accesses);
    appendU64(s, r.end_time);
    appendU64(s, r.digest);
    appendU64(s, r.note.size());
    s += r.note;
    appendU64(s, r.violations.size());
    for (const std::string &v : r.violations) {
        appendU64(s, v.size());
        s += v;
    }
    return s;
}

bool
decodeTrial(const std::string &s, TrialResult *out)
{
    std::size_t pos = 0;
    std::uint64_t magic = 0, flag = 0, count = 0;
    if (!readU64(s, &pos, &magic) || magic != kTrialWireMagic)
        return false;
    if (!readU64(s, &pos, &flag))
        return false;
    out->completed = flag != 0;
    if (!readU64(s, &pos, &flag))
        return false;
    out->predicate_ok = flag != 0;
    if (!readU64(s, &pos, &flag))
        return false;
    out->coverage_ok = flag != 0;
    if (!readU64(s, &pos, &out->violation_count) ||
        !readU64(s, &pos, &out->events_fired) ||
        !readU64(s, &pos, &out->bus_accesses) ||
        !readU64(s, &pos, &out->end_time) ||
        !readU64(s, &pos, &out->digest))
        return false;
    if (!readString(s, &pos, &out->note))
        return false;
    if (!readU64(s, &pos, &count) || count > 4096)
        return false;
    out->violations.clear();
    out->violations.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        std::string v;
        if (!readString(s, &pos, &v))
            return false;
        out->violations.push_back(std::move(v));
    }
    return pos == s.size();
}

// ---- Fork-snapshot batch runner -------------------------------------

/** Slack between the park watermark and the earliest perturbed index:
 *  one event body may insert many events or issue many bus accesses
 *  before runGuarded re-checks, so park comfortably early. */
/** Flight-recorder ring depth for the minimized-reproducer replay. */
constexpr std::size_t kFlightRingCapacity = 16384;

constexpr std::uint64_t kSnapshotMargin = 512;

/**
 * Try to run @p probes off one fork-style prefix snapshot: simulate
 * the batch's shared unperturbed prefix once, park it, then fork one
 * child per probe to install its perturber and resume. Fills
 * results[i]/done[i] for every probe it completes; probes it cannot
 * serve (park failed, a directive landed inside the prefix, a child
 * died) are left for the caller's full-run fallback. Never changes a
 * result: a child's TrialResult is byte-identical to runTrial()'s.
 */
void
runSnapshotBatch(const Scenario &scenario,
                 const std::vector<SchedulePerturber> &probes,
                 unsigned jobs, std::uint64_t snapshot_floor,
                 std::vector<TrialResult> &results,
                 std::vector<char> &done)
{
    constexpr std::uint64_t kNone = ~std::uint64_t{0};
    std::uint64_t min_eseq = kNone;
    std::uint64_t min_bidx = kNone;
    for (const SchedulePerturber &p : probes)
        for (const PerturbItem &item : p.items()) {
            if (item.bus)
                min_bidx = std::min(min_bidx, item.index);
            else
                min_eseq = std::min(min_eseq, item.index);
        }
    if (min_eseq == kNone && min_bidx == kNone)
        return; // all-baseline batch: nothing a snapshot could skip
    const auto watermark = [](std::uint64_t lo) {
        if (lo == kNone)
            return kNone;
        return lo > kSnapshotMargin ? lo - kSnapshotMargin
                                    : std::uint64_t{0};
    };
    const std::uint64_t ew = watermark(min_eseq);
    const std::uint64_t bw = watermark(min_bidx);
    if (ew == 0 || bw == 0)
        return; // a directive fires too early to park before it

    TrialHarness harness(scenario);
    const kern::Machine::PrefixRun prefix =
        harness.kernel.machine().runPrefix(ew, bw, scenario.bound);
    if (!prefix.parked || prefix.events < snapshot_floor)
        return; // run completed (must not resume) or prefix too thin
                // (FarmOptions::snapshot_floor, default 4096)

    const std::uint64_t park_events =
        harness.kernel.machine().ctx().queue().scheduledCount();
    const std::uint64_t park_bus =
        harness.kernel.machine().busAccessTotal();

    // The park point lands at the first event boundary past a
    // watermark, which may overshoot: re-check each probe's
    // directives against where the prefix actually stopped.
    std::vector<std::size_t> valid;
    for (std::size_t i = 0; i < probes.size(); ++i) {
        bool ok = true;
        for (const PerturbItem &item : probes[i].items()) {
            const std::uint64_t floor =
                item.bus ? park_bus : park_events;
            if (item.index <= floor) {
                ok = false;
                break;
            }
        }
        if (ok)
            valid.push_back(i);
    }
    if (valid.empty())
        return;

    const std::vector<std::optional<std::string>> payloads =
        farm::forkMany(valid.size(), jobs, [&](std::size_t k) {
            const SchedulePerturber &p = probes[valid[k]];
            harness.kernel.machine().setPerturber(&p);
            const std::uint64_t fired = harness.kernel.machine().run(
                perturbedBound(scenario, p));
            return encodeTrial(harness.finish(prefix.events + fired));
        });
    for (std::size_t k = 0; k < valid.size(); ++k) {
        if (!payloads[k])
            continue;
        TrialResult r;
        if (decodeTrial(*payloads[k], &r)) {
            results[valid[k]] = std::move(r);
            done[valid[k]] = 1;
        }
    }
}

} // namespace

TrialResult
Explorer::runTrial(const Scenario &scenario,
                   const SchedulePerturber &perturber) const
{
    TrialHarness harness(scenario, &perturber);
    const std::uint64_t fired = harness.kernel.machine().run(
        perturbedBound(scenario, perturber));
    return harness.finish(fired);
}

TrialResult
Explorer::runTrialRecorded(const Scenario &scenario,
                           const SchedulePerturber &perturber,
                           std::string *trace_json,
                           std::size_t ring_capacity) const
{
    TrialHarness harness(scenario, &perturber);
    obs::Recorder &rec = harness.kernel.machine().recorder();
    if (ring_capacity != 0)
        rec.enableRing(ring_capacity);
    else
        rec.enable();
    const std::uint64_t fired = harness.kernel.machine().run(
        perturbedBound(scenario, perturber));
    TrialResult out = harness.finish(fired);
    if (trace_json != nullptr)
        *trace_json = rec.toJson();
    return out;
}

std::vector<TrialResult>
Explorer::runTrials(const Scenario &scenario,
                    const std::vector<SchedulePerturber> &probes) const
{
    std::vector<TrialResult> results(probes.size());
    std::vector<char> done(probes.size(), 0);

    if (farm_.snapshots && farm::forkAvailable() && probes.size() >= 2)
        runSnapshotBatch(scenario, probes, farm_.jobs,
                         farm_.snapshot_floor, results, done);

    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < probes.size(); ++i) {
        if (done[i])
            continue;
        jobs.push_back([this, &scenario, &probes, &results, i] {
            results[i] = runTrial(scenario, probes[i]);
        });
    }
    farm::runMany(std::move(jobs), farm_.jobs);
    return results;
}

ExploreResult
Explorer::explore(const Scenario &scenario, const ExploreOptions &opt)
{
    ExploreResult res;

    res.baseline = runTrial(scenario, SchedulePerturber{});
    ++res.trials;
    if (res.baseline.failed() ||
        (opt.check_coverage && !res.baseline.coverage_ok)) {
        res.baseline_failed = true;
        say("baseline failed: " + scenario.name + " " +
            res.baseline.note);
        return res;
    }

    const std::uint64_t n_events =
        std::max<std::uint64_t>(1, res.baseline.events_fired);
    const std::uint64_t n_bus =
        std::max<std::uint64_t>(1, res.baseline.bus_accesses);

    // Probe index window (defaults cover the whole run).
    const auto windowed = [](std::uint64_t n, double lo, double hi) {
        std::uint64_t first =
            1 + static_cast<std::uint64_t>(lo * static_cast<double>(n));
        std::uint64_t last =
            static_cast<std::uint64_t>(hi * static_cast<double>(n));
        first = std::min(first, n);
        last = std::min(std::max(last, first), n);
        return std::pair<std::uint64_t, std::uint64_t>{first, last};
    };
    const auto [e_lo, e_hi] =
        windowed(n_events, opt.sweep_lo, opt.sweep_hi);
    const auto [b_lo, b_hi] = windowed(n_bus, opt.sweep_lo, opt.sweep_hi);

    // Probe generation is split from execution so batches can be
    // farmed; the lists are exactly the schedules the serial loops
    // used to produce, in the same order.

    // Phase 1: bounded-systematic sweep. One delayed event per
    // probe, seq striding across the window, cycling the delta
    // ladder -- the swap-window enumeration.
    std::vector<SchedulePerturber> probes;
    if (opt.systematic_budget != 0) {
        const std::uint64_t span = e_hi - e_lo + 1;
        const std::uint64_t stride =
            std::max<std::uint64_t>(1, span / opt.systematic_budget);
        unsigned used = 0;
        for (std::uint64_t seq = e_lo;
             seq <= e_hi && used < opt.systematic_budget;
             seq += stride, ++used) {
            SchedulePerturber p;
            p.delayEvent(seq, kDeltaLadder[used % kDeltaLadderSize]);
            probes.push_back(std::move(p));
        }
    }
    const std::size_t n_systematic = probes.size();

    // Phase 2: randomized multi-delay probes over events and bus
    // accesses. Drawn from the explorer's own named stream -- probe
    // generation shares a seed with nothing else, so scenario
    // workloads keep their schedules no matter how many probes run.
    Rng rng(opt.seed, "chk.explorer.probes");
    for (unsigned t = 0; t < opt.random_budget; ++t) {
        SchedulePerturber p;
        const unsigned k =
            1 + static_cast<unsigned>(rng.below(opt.max_delays));
        for (unsigned j = 0; j < k; ++j) {
            const Tick extra =
                opt.min_extra +
                rng.below(opt.max_extra - opt.min_extra + 1);
            if (rng.chance(0.15))
                p.delayBusAccess(b_lo + rng.below(b_hi - b_lo + 1),
                                 extra);
            else
                p.delayEvent(e_lo + rng.below(e_hi - e_lo + 1), extra);
        }
        probes.push_back(std::move(p));
    }

    // Execute in waves. Accounting is as-if-serial regardless of the
    // farm shape: a wave's extra speculative trials past the first
    // failure are never counted, so trials/failures/first_failing
    // are independent of jobs, snapshots, and wave size. Waves grow
    // geometrically: stop_at_first campaigns that fail early waste
    // little speculation, ones that run long amortize the farm.
    const bool farmed =
        farm_.jobs > 1 || (farm_.snapshots && farm::forkAvailable());
    std::size_t wave_size = farmed ? 4 : 1;
    const std::size_t wave_cap =
        farmed ? std::max<std::size_t>(std::size_t{farm_.jobs} * 4, 32)
               : 1;
    for (std::size_t base = 0; base < probes.size();) {
        const std::size_t end =
            std::min(probes.size(), base + wave_size);
        const std::vector<SchedulePerturber> wave(
            probes.begin() + static_cast<std::ptrdiff_t>(base),
            probes.begin() + static_cast<std::ptrdiff_t>(end));
        const std::vector<TrialResult> rs = runTrials(scenario, wave);

        bool stop = false;
        for (std::size_t i = 0; i < rs.size(); ++i) {
            ++res.trials;
            if (!rs[i].failed())
                continue;
            ++res.failures;
            if (res.failures == 1) {
                res.first_failing = wave[i];
                res.first_failure = rs[i];
                const std::size_t ord = base + i;
                say("failing schedule for " + scenario.name + " (" +
                    (ord < n_systematic ? "systematic" : "random") +
                    " probe): " + wave[i].format());
            }
            if (opt.stop_at_first) {
                stop = true;
                break;
            }
        }
        if (stop)
            break;
        base = end;
        wave_size = std::min(wave_cap, wave_size * 2);
    }

    if (res.failures != 0) {
        res.minimized = minimize(scenario, res.first_failing,
                                 opt.minimize_budget);
        res.minimized_schedule = res.minimized.format();
        // Replay the reproducer once more with the flight recorder on:
        // recording is cost-free in simulated time, so this is the
        // same trial (same digest) plus an openable timeline of the
        // failure's final stretch.
        res.minimized_result = runTrialRecorded(
            scenario, res.minimized, &res.flight_trace_json,
            kFlightRingCapacity);
        char line[128];
        std::snprintf(line, sizeof(line),
                      "minimized to %u directive(s): ",
                      static_cast<unsigned>(res.minimized.size()));
        say(line + res.minimized_schedule);
    }
    return res;
}

SchedulePerturber
Explorer::minimize(const Scenario &scenario,
                   const SchedulePerturber &failing,
                   unsigned budget) const
{
    std::vector<PerturbItem> items = failing.items();
    unsigned used = 0;

    auto fails = [&](const std::vector<PerturbItem> &cand) {
        if (used >= budget)
            return false; // out of budget: keep the known-failing set
        ++used;
        return runTrial(scenario,
                        SchedulePerturber::fromItems(cand))
            .failed();
    };

    // 1-minimal reduction: drop directives one at a time until no
    // single drop still reproduces the failure. Each round farms the
    // whole drop-one wave, then charges the budget exactly as the
    // serial loop would have -- up to and including the first failing
    // candidate -- so `used`, the surviving items, and the final
    // schedule never depend on the farm shape.
    bool exhausted = false;
    bool changed = true;
    while (changed && items.size() > 1 && !exhausted) {
        changed = false;
        std::vector<std::vector<PerturbItem>> cands;
        cands.reserve(items.size());
        for (std::size_t i = 0; i < items.size(); ++i) {
            std::vector<PerturbItem> cand = items;
            cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
            cands.push_back(std::move(cand));
        }
        const std::size_t can_run = std::min<std::size_t>(
            cands.size(), budget - used);
        std::vector<SchedulePerturber> wave;
        wave.reserve(can_run);
        for (std::size_t i = 0; i < can_run; ++i)
            wave.push_back(SchedulePerturber::fromItems(cands[i]));
        const std::vector<TrialResult> rs = runTrials(scenario, wave);

        std::size_t first_fail = can_run;
        for (std::size_t i = 0; i < can_run; ++i)
            if (rs[i].failed()) {
                first_fail = i;
                break;
            }
        if (first_fail < can_run) {
            used += static_cast<unsigned>(first_fail) + 1;
            items = std::move(cands[first_fail]);
            changed = true;
        } else {
            used += static_cast<unsigned>(can_run);
            if (can_run < cands.size())
                exhausted = true; // serial would idle out the rest
        }
    }

    // Delta shrinking: halve each surviving delay while the failure
    // still reproduces, to report the smallest sufficient stretch.
    // Inherently serial -- every halving depends on the last verdict.
    for (std::size_t i = 0; i < items.size(); ++i) {
        while (items[i].extra > 1) {
            std::vector<PerturbItem> cand = items;
            cand[i].extra /= 2;
            if (!fails(cand))
                break;
            items = cand;
        }
    }

    return SchedulePerturber::fromItems(items);
}

} // namespace mach::chk
