#include "apps/agora.hh"

#include <vector>

#include "base/logging.hh"

namespace mach::apps
{

namespace
{
/** Phase coordination between the master and the workers. */
struct AgoraControl
{
    /** Master bumps this to release the workers into the next phase. */
    unsigned generation = 0;
    /** Workers increment this when they finish the current phase. */
    unsigned done = 0;
    /** Region being populated or searched in this phase. */
    VAddr region = 0;
    unsigned region_pages = 0;
    /** Nonzero when workers should exit. */
    bool stop = false;
};
} // namespace

void
Agora::run(vm::Kernel &kernel, kern::Thread &driver)
{
    vm::Task *task = kernel.createTask("agora");
    Rng rng(params_.seed);

    kern::Thread *master = kernel.spawnThread(
        task, "agora-master", [&](kern::Thread &self) {
            AgoraControl ctl;
            const unsigned n = params_.workers;

            // Persistent workers: they stay alive (and on their
            // processors) across all phases, which is what makes the
            // setup-phase reprotects shoot 11-15 processors.
            std::vector<kern::Thread *> workers;
            for (unsigned w = 0; w < n; ++w) {
                workers.push_back(kernel.spawnThread(
                    task, "agora-worker" + std::to_string(w),
                    [&, w](kern::Thread &worker) {
                        Rng wrng(params_.seed + 31 * w);
                        unsigned my_gen = 0;
                        for (;;) {
                            while (ctl.generation == my_gen && !ctl.stop)
                                worker.sleep(2 * kMsec);
                            if (ctl.stop)
                                break;
                            my_gen = ctl.generation;

                            const unsigned span =
                                ctl.region_pages / n;
                            const VAddr mine =
                                ctl.region + w * span * kPageSize;
                            if (ctl.region != 0 && my_gen <=
                                params_.regions) {
                                // Setup phase: populate my slice of
                                // the write-once region, announcing
                                // progress through kernel message
                                // buffers. Freeing each touched buffer
                                // while all fifteen workers are busy is
                                // what produces the paper's large
                                // (11-15 processor) setup shootdowns.
                                for (unsigned p = 0; p < span; ++p) {
                                    const bool ok = worker.store32(
                                        mine + p * kPageSize,
                                        0xa60a0000 + w * 64 + p);
                                    MACH_ASSERT(ok);
                                    worker.compute(Tick(
                                        wrng.exponential(16.0) * kMsec));
                                    if (wrng.chance(0.2)) {
                                        const VAddr msg =
                                            kernel.kmemAlloc(worker,
                                                             kPageSize);
                                        const bool sent = worker.store32(
                                            msg, 0x6e550000 + w);
                                        MACH_ASSERT(sent);
                                        kernel.kmemFree(worker, msg,
                                                        kPageSize);
                                        worker.compute(Tick(
                                            wrng.exponential(4.0) *
                                            kMsec));
                                    }
                                }
                            } else if (ctl.region != 0) {
                                // Search phase: read shared memory,
                                // expand wavefronts.
                                for (unsigned step = 0; step < 12;
                                     ++step) {
                                    const unsigned p =
                                        static_cast<unsigned>(
                                            wrng.below(
                                                ctl.region_pages));
                                    std::uint32_t value = 0;
                                    const bool ok = worker.load32(
                                        ctl.region + p * kPageSize,
                                        &value);
                                    MACH_ASSERT(ok);
                                    worker.compute(Tick(
                                        wrng.exponential(14.0) *
                                        kMsec));
                                    ++waves_processed;
                                }
                            }
                            ++ctl.done;
                        }
                    }));
            }

            auto run_phase = [&](VAddr region, unsigned pages) {
                ctl.region = region;
                ctl.region_pages = pages;
                ctl.done = 0;
                ++ctl.generation;
                while (ctl.done < n)
                    self.sleep(3 * kMsec);
            };

            // ---- Setup: build the write-once shared regions --------
            std::vector<VAddr> regions;
            for (unsigned r = 0; r < params_.regions; ++r) {
                VAddr region = 0;
                const bool ok = kernel.vmAllocate(
                    self, *task, &region,
                    params_.region_pages * kPageSize, true);
                MACH_ASSERT(ok);
                run_phase(region, params_.region_pages);
                regions.push_back(region);
            }

            // ---- The 15-way searches, run again and again ----------
            for (unsigned run = 0; run < params_.runs; ++run) {
                run_phase(regions[run % regions.size()],
                          params_.region_pages);

                // Between runs the workers wait (their processors go
                // idle) while the master recycles touched kernel
                // bookkeeping buffers: small shootdowns involving the
                // few processors still busy.
                const VAddr note = kernel.kmemAlloc(self, kPageSize);
                const bool ok = self.store32(note, run);
                MACH_ASSERT(ok);
                self.sleep(40 * kMsec);
                kernel.kmemFree(self, note, kPageSize);
            }

            ctl.stop = true;
            for (kern::Thread *worker : workers)
                self.join(*worker);
        });

    driver.join(*master);
}

} // namespace mach::apps
