/**
 * @file
 * The simulated multiprocessor: CPUs, bus, memory, interrupt controller,
 * scheduler, and the registration points where the pmap and VM layers
 * plug in (fault handler, IRQ handlers, kernel pmap).
 *
 * Layering: kern knows nothing about the pmap module or the VM system
 * beyond opaque pointers and callbacks, mirroring Mach's separation of
 * machine-dependent from machine-independent code (Section 2).
 */

#ifndef MACH_KERN_MACHINE_HH
#define MACH_KERN_MACHINE_HH

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"
#include "hw/bus.hh"
#include "hw/intr.hh"
#include "hw/machine_config.hh"
#include "hw/phys_mem.hh"
#include "kern/cpu.hh"
#include "numa/topology.hh"
#include "sim/context.hh"

namespace mach::pmap
{
class Pmap;
class PmapSystem;
} // namespace mach::pmap

namespace mach::xpr
{
class Buffer;
} // namespace mach::xpr

namespace mach::obs
{
class Recorder;
} // namespace mach::obs

namespace mach::kern
{

class Sched;
class Thread;

/** One simulated multiprocessor. */
class Machine
{
  public:
    explicit Machine(const hw::MachineConfig &config);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    const hw::MachineConfig &cfg() const { return config_; }

    sim::Context &ctx() { return ctx_; }
    hw::PhysMem &mem() { return *mem_; }
    /** Node 0's bus (the only bus on non-NUMA machines). */
    hw::Bus &bus() { return *buses_[0]; }
    /** Bus of NUMA node @p node. */
    hw::Bus &bus(unsigned node) { return *buses_[node]; }
    hw::InterruptController &intr() { return *intr_; }

    // ---- NUMA topology ----------------------------------------------

    const numa::Topology &topo() const { return topo_; }
    unsigned numaNodes() const { return topo_.nodes(); }
    unsigned nodeOfCpu(CpuId id) const { return topo_.nodeOfCpu(id); }

    /** Accesses priced across every node's bus (prefix watermarking). */
    std::uint64_t
    busAccessTotal() const
    {
        std::uint64_t total = 0;
        for (const auto &bus : buses_)
            total += bus->accessCount();
        return total;
    }
    Sched &sched() { return *sched_; }
    Rng &rng() { return rng_; }
    xpr::Buffer &xpr() { return *xpr_; }

    /**
     * The timeline recorder (always constructed, off by default --
     * instrumentation sites test recorder().enabled() first).
     */
    obs::Recorder &recorder() { return *recorder_; }
    const obs::Recorder &recorder() const { return *recorder_; }

    unsigned ncpus() const { return static_cast<unsigned>(cpus_.size()); }
    Cpu &cpu(CpuId id);

    Tick now() const { return ctx_.now(); }

    // ---- Interrupt dispatch -----------------------------------------

    using IrqHandler = std::function<void(Cpu &)>;

    /** Install the service routine for an interrupt source. */
    void setIrqHandler(hw::Irq irq, IrqHandler handler);

    /** Invoke the handler for @p irq on @p cpu (from Cpu::poll). */
    void dispatchIrq(hw::Irq irq, Cpu &cpu);

    // ---- VM plug-in points -------------------------------------------

    /**
     * Page-fault upcall: resolve a fault at @p va for @p want rights on
     * behalf of @p thread. Returns true when the translation was
     * (re)established and the access should be retried; false for an
     * unrecoverable fault.
     */
    using FaultHandler = std::function<bool(Thread &, VAddr, Prot)>;

    void setFaultHandler(FaultHandler handler);
    bool handleFault(Thread &thread, VAddr va, Prot want);

    /**
     * Address-space switch upcall, invoked by the scheduler whenever a
     * CPU switches between threads of different tasks; the VM layer
     * installs a hook that performs pmap deactivate/activate (and the
     * context-switch TLB flush on hardware without address-space tags).
     */
    using SpaceSwitchHook = std::function<void(Cpu &, Thread &, Thread &)>;

    void setSpaceSwitchHook(SpaceSwitchHook hook);
    void switchSpace(Cpu &cpu, Thread &from, Thread &to);

    /** The kernel pmap (set once by the pmap system at bring-up). */
    pmap::Pmap *kernel_pmap = nullptr;
    /** The pmap system owning shootdown state (set at bring-up). */
    pmap::PmapSystem *pmap_sys = nullptr;

    /** First virtual address belonging to the shared kernel space. */
    static constexpr VAddr kKernelBase = 0xc0000000u;
    /** End of the kernel space (exclusive). */
    static constexpr VAddr kKernelHi = 0xfffff000u;

    /** Processor pool of @p id under the Section 8 restructuring. */
    unsigned poolOfCpu(CpuId id) const
    {
        return id / (ncpus() / config_.kernel_pools);
    }

    /**
     * Pool owning kernel virtual page @p vpn, or -1 when the address
     * does not fall squarely into one pool's kmem slice (such ranges
     * are treated as machine-global).
     */
    int poolOfKernelVpn(Vpn vpn) const;

    /**
     * Install (or clear) a perturbation schedule on both the event
     * queue and the bus -- the model checker's and `machsim
     * --schedule`'s single entry point. Must be called before the
     * perturbed events are scheduled (in practice: right after
     * construction, before any workload runs); the perturber must
     * outlive the machine or be cleared first.
     */
    void
    setPerturber(const SchedulePerturber *perturber)
    {
        ctx_.queue().setPerturber(perturber);
        // On NUMA shapes every node bus counts accesses independently,
        // so one b<n> directive fires on whichever bus reaches access
        // n (possibly several) -- deterministic either way.
        for (auto &bus : buses_)
            bus->setPerturber(perturber);
    }

    /** Begin periodic timer interrupts on all CPUs (if configured). */
    void startTimers();
    /** Stop scheduling further timer ticks (lets run() drain). */
    void stopTimers();

    /** Drive simulation until @p until or until the event queue drains. */
    std::uint64_t run(Tick until = ~Tick{0});

    /** Outcome of runPrefix: how far the machine got and why it parked. */
    struct PrefixRun
    {
        /** Events dispatched by this call. */
        std::uint64_t events = 0;
        /**
         * True when the run parked at the requested watermark and can
         * be resumed; false when it finished on its own (queue drained,
         * time bound reached, or a stop was requested), in which case
         * resuming would over-run what a single run() would have done.
         */
        bool parked = true;
    };

    /**
     * Drive simulation like run(), but park (between events) as soon as
     * the event queue's insertion count reaches @p event_watermark or
     * the bus access count reaches @p bus_watermark. Both counters are
     * deterministic, so the parked state is a replayable prefix of the
     * unperturbed run: the run farm snapshots it (fork-style) and lets
     * each perturbed probe resume from the snapshot instead of
     * re-simulating from tick 0. Callers must leave slack below the
     * smallest perturbed index -- the park point lands at the first
     * event boundary at or past a watermark, and a single event may
     * insert many events / issue many bus accesses before the check.
     */
    PrefixRun runPrefix(std::uint64_t event_watermark,
                        std::uint64_t bus_watermark,
                        Tick until = ~Tick{0});

  private:
    void timerTick(CpuId id);

    hw::MachineConfig config_;
    numa::Topology topo_;
    sim::Context ctx_;
    Rng rng_;
    std::unique_ptr<hw::PhysMem> mem_;
    std::vector<std::unique_ptr<hw::Bus>> buses_;
    std::unique_ptr<hw::InterruptController> intr_;
    std::vector<std::unique_ptr<Cpu>> cpus_;
    std::unique_ptr<Sched> sched_;
    std::unique_ptr<xpr::Buffer> xpr_;
    std::unique_ptr<obs::Recorder> recorder_;
    std::array<IrqHandler, hw::kNumIrqs> irq_handlers_{};
    FaultHandler fault_handler_;
    SpaceSwitchHook space_switch_;
    bool timers_on_ = false;
};

} // namespace mach::kern

#endif // MACH_KERN_MACHINE_HH
