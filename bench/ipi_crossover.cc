/**
 * @file
 * Section 9: the directed-vs-broadcast IPI crossover.
 *
 * "Even a simple interrupt that is broadcast to all other processors
 * would be helpful; beyond some number of processors it is faster to
 * use a broadcast interrupt (and interrupt too many processors) than
 * it is to iterate down the list interrupting one processor at a
 * time."
 *
 * Two costs trade off:
 *  - the initiator's send time: k serialized sends vs one broadcast;
 *  - the bystanders' time: a broadcast interrupts processors with
 *    nothing queued, each paying a dispatch/return for nothing.
 *
 * This harness sweeps k (processors that genuinely need the shootdown)
 * on a 16-processor machine and reports both costs, plus the machine-
 * wide crossover point.
 */

#include "bench_common.hh"

#include "apps/consistency_tester.hh"
#include "pmap/shootdown.hh"

using namespace mach;
using namespace mach::bench;

namespace
{

struct Probe
{
    double initiator_usec = 0.0;
    std::uint64_t interrupts = 0;
};

Probe
run(unsigned k, bool broadcast)
{
    hw::MachineConfig config;
    config.broadcast_ipi = broadcast;
    config.seed = 0xc0550 + k;
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester(
        {.children = k, .warmup = 25 * kMsec});
    const apps::WorkloadResult result = tester.execute(kernel);
    if (!tester.consistent())
        fatal("inconsistency at k=%u broadcast=%d", k, broadcast);
    Probe probe;
    probe.initiator_usec =
        result.analysis.user_initiator.time_usec.mean();
    probe.interrupts = kernel.pmaps().shoot().interrupts_sent;
    return probe;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    hw::MachineConfig config;
    // Per-bystander cost of an unnecessary interrupt: dispatch + the
    // null handler pass + return.
    const double bystander_usec =
        static_cast<double>(config.intr_dispatch_cost +
                            config.intr_return_cost) /
        kUsec;

    std::printf("Section 9: directed vs broadcast shootdown IPIs "
                "(16-processor machine)\n\n");
    std::printf("%4s | %14s %14s | %12s %14s %16s\n", "k",
                "iterate init", "broadcast init", "bystanders",
                "bystander cost", "broadcast wins?");

    int crossover = -1;
    for (unsigned k = 1; k <= 15; ++k) {
        const Probe iterate = run(k, false);
        const Probe broadcast = run(k, true);
        const std::uint64_t bystanders =
            broadcast.interrupts > k ? broadcast.interrupts - k : 0;
        const double bystander_cost = bystanders * bystander_usec;

        // Machine-wide accounting: initiator time plus the time burnt
        // on processors that had nothing to invalidate.
        const double iterate_total = iterate.initiator_usec;
        const double broadcast_total =
            broadcast.initiator_usec + bystander_cost;
        const bool wins = broadcast_total < iterate_total;
        if (wins && crossover < 0)
            crossover = static_cast<int>(k);
        if (!wins)
            crossover = -1;
        std::printf("%4u | %12.0fus %12.0fus | %12llu %12.0fus %16s\n",
                    k, iterate.initiator_usec,
                    broadcast.initiator_usec,
                    static_cast<unsigned long long>(bystanders),
                    bystander_cost, wins ? "yes" : "no");
    }

    if (crossover > 0) {
        std::printf("\nbroadcast becomes the better machine-wide "
                    "choice at roughly k = %d of 15 processors\n",
                    crossover);
    } else {
        std::printf("\nno stable crossover on this configuration\n");
    }
    std::printf("(the initiator itself always prefers broadcast; the "
                "bystander overhead is what\nmakes directed "
                "interrupts the right default on small or lightly "
                "shared machines)\n");
    return 0;
}
