/**
 * @file
 * Default pager: backing store for paged-out anonymous memory.
 *
 * Mach lets users supply backing-store objects and pagers (Section 2);
 * here a single default pager stores page images keyed by (object id,
 * page offset). Pagein and pageout latencies are charged to the
 * requesting thread by the Kernel, not here -- the pager is pure
 * storage.
 */

#ifndef MACH_VM_PAGER_HH
#define MACH_VM_PAGER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/types.hh"
#include "hw/phys_mem.hh"

namespace mach::vm
{

/** Backing store for anonymous memory. */
class DefaultPager
{
  public:
    explicit DefaultPager(hw::PhysMem *mem) : mem_(mem) {}

    /** True when a page image is stored for (object, offset). */
    bool contains(std::uint64_t object_id, std::uint32_t offset) const;

    /** Copy frame @p pfn out to backing store. */
    void pageOut(std::uint64_t object_id, std::uint32_t offset, Pfn pfn);

    /**
     * Copy the stored image for (object, offset) into frame @p pfn and
     * discard it. Panics when absent.
     */
    void pageIn(std::uint64_t object_id, std::uint32_t offset, Pfn pfn);

    /** Drop all images belonging to an object (object destruction). */
    void forget(std::uint64_t object_id);

    std::size_t storedPages() const { return store_.size(); }

    std::uint64_t pageouts = 0;
    std::uint64_t pageins = 0;

  private:
    static std::uint64_t key(std::uint64_t object_id, std::uint32_t offset)
    {
        return (object_id << 20) | offset;
    }

    hw::PhysMem *mem_;
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> store_;
};

} // namespace mach::vm

#endif // MACH_VM_PAGER_HH
