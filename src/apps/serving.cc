#include "apps/serving.hh"

#include <cmath>
#include <deque>
#include <memory>
#include <vector>

#include "base/logging.hh"

namespace mach::apps
{

namespace
{

/** Parent-image pages every fork copies-on-write. */
constexpr unsigned kImagePages = 8;
/** Never-yet-touched arena per tenant (the fault-mix target). */
constexpr unsigned kColdPages = 48;
/** Small private working set of a sibling thread. */
constexpr unsigned kSiblingPages = 4;

/**
 * Cumulative Zipf distribution over the request classes: class k has
 * weight 1/(k+1)^s, so class 0 is the common cheap request and the
 * last class the rare expensive one.
 */
std::vector<double>
zipfCdf(unsigned classes, double s)
{
    std::vector<double> cdf(classes, 0.0);
    double total = 0.0;
    for (unsigned k = 0; k < classes; ++k) {
        total += 1.0 / std::pow(static_cast<double>(k + 1), s);
        cdf[k] = total;
    }
    for (double &c : cdf)
        c /= total;
    return cdf;
}

unsigned
sampleZipf(const std::vector<double> &cdf, Rng &rng)
{
    const double u = rng.uniform();
    for (unsigned k = 0; k < cdf.size(); ++k) {
        if (u < cdf[k])
            return k;
    }
    return static_cast<unsigned>(cdf.size() - 1);
}

} // namespace

void
Serving::sibling(vm::Kernel &kernel, kern::Thread &self,
                 unsigned tenant, unsigned index, VAddr binary,
                 const bool *stop)
{
    Rng rng(params_.seed + tenant * 7919 + index * 131);
    VAddr ws = 0;
    const bool ok = kernel.vmAllocate(self, *self.task(), &ws,
                                      kSiblingPages * kPageSize, true);
    MACH_ASSERT(ok);

    // Keep the tenant's address space loaded (and its translations
    // cached) on processors other than the server's, so the server's
    // per-request munmaps are honest multi-processor shootdowns.
    unsigned round = 0;
    while (!*stop) {
        std::uint32_t value = 0;
        MACH_ASSERT(self.load32(
            binary + rng.below(params_.binary_pages) * kPageSize,
            &value));
        MACH_ASSERT(self.store32(
            ws + (round++ % kSiblingPages) * kPageSize,
            0x51b00000 + tenant));
        self.compute(Tick(rng.exponential(600.0) * kUsec));
        if (rng.chance(0.2))
            self.sleep(Tick(rng.exponential(1.5) * kMsec));
    }
}

void
Serving::serve(vm::Kernel &kernel, kern::Thread &self, unsigned tenant,
               VAddr binary)
{
    kern::Machine &machine = kernel.machine();
    obs::Recorder &rec = machine.recorder();
    Rng rng(params_.seed + tenant * 7919);
    vm::Task &task = *self.task();
    const std::vector<double> cdf =
        zipfCdf(params_.request_classes, params_.zipf_s);

    // Hot working set plus the cold arena the fault mix consumes.
    VAddr heap = 0;
    bool ok = kernel.vmAllocate(
        self, task, &heap,
        (params_.ws_pages + kColdPages) * kPageSize, true);
    MACH_ASSERT(ok);
    const VAddr cold = heap + params_.ws_pages * kPageSize;
    unsigned cold_next = 0;
    for (unsigned p = 0; p < params_.ws_pages; ++p)
        MACH_ASSERT(self.store32(heap + p * kPageSize,
                                 0x5e120000 + tenant));

    obs::RequestSlot slot;
    for (unsigned r = 0; r < params_.requests_per_tenant; ++r) {
        slot.begin(machine.now());
        self.obs_request = &slot;
        const unsigned cls = sampleZipf(cdf, rng);

        // Per-request mmap burst: fresh pages, touched immediately
        // (zero-fill faults on the request's critical path).
        VAddr burst = 0;
        ok = kernel.vmAllocate(self, task, &burst,
                               params_.mmap_pages * kPageSize, true);
        MACH_ASSERT(ok);
        for (unsigned p = 0; p < params_.mmap_pages; ++p)
            MACH_ASSERT(self.store32(burst + p * kPageSize,
                                     0x6d6d0000 + r * 64 + p));

        // The request body: class k does (k+1)x the base work, each
        // item an access (cold fault / shared-binary read / hot
        // write, per the fault-mix and sharing knobs) plus compute.
        const unsigned items = params_.work_items * (cls + 1);
        for (unsigned i = 0; i < items; ++i) {
            const double u = rng.uniform();
            if (u < params_.fault_mix) {
                MACH_ASSERT(self.store32(
                    cold + (cold_next++ % kColdPages) * kPageSize,
                    0xc01d0000 + i));
            } else if (u < params_.fault_mix + params_.sharing) {
                std::uint32_t value = 0;
                MACH_ASSERT(self.load32(
                    binary +
                        rng.below(params_.binary_pages) * kPageSize,
                    &value));
            } else {
                MACH_ASSERT(self.store32(
                    heap + rng.below(params_.ws_pages) * kPageSize,
                    0x5e120000 + i));
            }
            self.compute(
                Tick(rng.exponential(params_.compute_usec) * kUsec));
        }

        // Kernel log churn: an appended-then-freed kernel buffer is
        // the request's kernel-pmap shootdown source.
        if (rng.chance(params_.kmem_chance)) {
            const VAddr log = kernel.kmemAlloc(self, kPageSize);
            MACH_ASSERT(log != 0);
            MACH_ASSERT(self.store32(log, 0x10900000 + tenant));
            kernel.kmemFree(self, log, kPageSize);
        }

        // The munmap burst: a user shootdown against every processor
        // the siblings keep this space loaded on.
        ok = kernel.vmDeallocate(self, task, burst,
                                 params_.mmap_pages * kPageSize);
        MACH_ASSERT(ok);

        self.obs_request = nullptr;
        const Tick total = slot.finish(machine.now());
        ++requests_completed;
        request_ticks += total;
        for (unsigned c = 0; c < obs::kReqComponents; ++c)
            component_ticks[c] += slot.components()[c];
        if (rec.enabled())
            obs::recordRequest(rec.metrics(), slot, total);
    }
}

void
Serving::run(vm::Kernel &kernel, kern::Thread &driver)
{
    // ---- The exec server: shared binary + per-fork COW image --------
    vm::Task *execd = kernel.createTask("execd");
    VAddr binary = 0;
    VAddr image = 0;
    kern::Thread *init = kernel.spawnThread(
        execd, "execd.init", [&](kern::Thread &self) {
            bool ok = kernel.vmAllocate(
                self, *execd, &binary,
                params_.binary_pages * kPageSize, true);
            MACH_ASSERT(ok);
            for (unsigned p = 0; p < params_.binary_pages; ++p)
                MACH_ASSERT(self.store32(binary + p * kPageSize,
                                         0xb1a40000 + p));
            // The "binary": read-mostly and shared by every tenant.
            ok = kernel.vmProtect(self, *execd, binary,
                                  params_.binary_pages * kPageSize,
                                  ProtRead);
            MACH_ASSERT(ok);
            ok = kernel.vmInherit(self, *execd, binary,
                                  params_.binary_pages * kPageSize,
                                  vm::Inherit::Share);
            MACH_ASSERT(ok);
            // The mutable image tenants inherit Copy: each fork marks
            // it COW and revokes the parent's write access -- fork
            // churn that shoots down the parent's processors.
            ok = kernel.vmAllocate(self, *execd, &image,
                                   kImagePages * kPageSize, true);
            MACH_ASSERT(ok);
            for (unsigned p = 0; p < kImagePages; ++p)
                MACH_ASSERT(self.store32(image + p * kPageSize,
                                         0x1a6e0000 + p));
        });
    driver.join(*init);

    // A resident exec-server thread keeps the parent image warm, so
    // every fork's COW write-revocation finds live mappings (and the
    // parent's next write re-breaks the share).
    bool stop_resident = false;
    kern::Thread *resident = kernel.spawnThread(
        execd, "execd.resident", [&, image](kern::Thread &self) {
            Rng rng(params_.seed ^ 0xe8ecd);
            while (!stop_resident) {
                MACH_ASSERT(self.store32(
                    image + rng.below(kImagePages) * kPageSize,
                    0xe8ec0000));
                self.compute(Tick(rng.exponential(800.0) * kUsec));
                self.sleep(Tick(rng.exponential(2.0) * kMsec));
            }
        });

    // ---- Tenant churn: fork, serve, exit ----------------------------
    struct Tenant
    {
        kern::Thread *server = nullptr;
        std::vector<kern::Thread *> siblings;
        vm::Task *task = nullptr;
        std::unique_ptr<bool> stop;
    };
    std::deque<Tenant> running;

    auto reap_one = [&] {
        Tenant tenant = std::move(running.front());
        running.pop_front();
        driver.join(*tenant.server);
        *tenant.stop = true;
        for (kern::Thread *thread : tenant.siblings)
            driver.join(*thread);
        kernel.destroyTask(driver, tenant.task);
    };

    for (unsigned t = 0; t < params_.tenants; ++t) {
        while (running.size() >= params_.concurrency)
            reap_one();
        Tenant tenant;
        tenant.task = kernel.forkTask(driver, *execd,
                                      "t" + std::to_string(t));
        tenant.stop = std::make_unique<bool>(false);
        const bool *stop = tenant.stop.get();
        for (unsigned w = 1; w < params_.threads_per_tenant; ++w) {
            tenant.siblings.push_back(kernel.spawnThread(
                tenant.task,
                "t" + std::to_string(t) + ".s" + std::to_string(w),
                [this, &kernel, t, w, binary, stop](
                    kern::Thread &self) {
                    sibling(kernel, self, t, w, binary, stop);
                }));
        }
        tenant.server = kernel.spawnThread(
            tenant.task, "t" + std::to_string(t) + ".srv",
            [this, &kernel, t, binary](kern::Thread &self) {
                serve(kernel, self, t, binary);
            });
        running.push_back(std::move(tenant));
    }
    while (!running.empty())
        reap_one();

    stop_resident = true;
    driver.join(*resident);
    kernel.destroyTask(driver, execd);
}

} // namespace mach::apps
