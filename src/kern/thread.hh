/**
 * @file
 * Kernel-scheduled threads.
 *
 * A Thread wraps a fiber plus scheduling state. Workload code runs in
 * the thread body and consumes simulated time through the CPU the
 * thread is currently dispatched on. All memory within a task's address
 * space is shared among its threads, which may execute in parallel on
 * multiple simulated CPUs (Section 2) -- that parallelism is what makes
 * user-pmap TLB consistency a problem worth solving.
 */

#ifndef MACH_KERN_THREAD_HH
#define MACH_KERN_THREAD_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/types.hh"
#include "kern/cpu.hh"
#include "sim/context.hh"

namespace mach::vm
{
class Task;
} // namespace mach::vm

namespace mach::obs
{
class RequestSlot;
} // namespace mach::obs

namespace mach::kern
{

class Machine;
class Sched;

/** Run states of a thread. */
enum class ThreadState : std::uint8_t
{
    Embryo,    ///< Created, never yet dispatched.
    Runnable,  ///< On a run queue.
    Running,   ///< Currently dispatched on a CPU.
    Blocked,   ///< Waiting (sleep, I/O, join).
    Done,      ///< Body returned.
};

/** A kernel thread. */
class Thread
{
  public:
    using Body = std::function<void(Thread &)>;

    /**
     * Create a thread; it does not run until Sched::start() is called.
     * @p task may be null for pure kernel service threads.
     */
    Thread(Machine *machine, vm::Task *task, std::string name, Body body);

    const std::string &name() const { return name_; }
    vm::Task *task() { return task_; }
    Machine &machine() { return *machine_; }
    ThreadState state() const { return state_; }

    /** The CPU this thread is dispatched on; panics unless Running. */
    Cpu &cpu();

    /** True when this is a CPU's idle thread. */
    bool isIdle() const { return is_idle_; }

    /**
     * Lazily-created obs::Recorder track for spans that follow this
     * thread across CPU migrations (VM faults sleep on pageins and may
     * resume elsewhere). ~0u (obs::kNoTrack) until first used.
     */
    std::uint32_t obs_track_id = ~std::uint32_t{0};

    /**
     * Request-latency attribution slot for the request currently in
     * flight on this thread (null when none -- the common case). Set
     * by workloads that issue SLO-tracked requests (apps::Serving);
     * read by the vm.fault / pmap-walk / shootdown hook sites, which
     * bank elapsed intervals into it. The kernel never charges time
     * or draws randomness through this pointer, so its presence
     * cannot perturb the simulation.
     */
    obs::RequestSlot *obs_request = nullptr;

    // ---- Callable from within the thread body ------------------------

    /**
     * Compute for @p dt of simulated time. Takes interrupts, and yields
     * the CPU to equal-priority runnable threads at quantum boundaries,
     * so long computations timeshare fairly.
     */
    void compute(Tick dt);

    /** Block for @p dt, releasing the CPU (a timed sleep, not a spin). */
    void sleep(Tick dt);

    /** Give up the CPU if another thread is runnable on it. */
    void yield();

    /** Block until @p other has terminated. */
    void join(Thread &other);

    /**
     * Data access to the current address space (user addresses resolve
     * through the task pmap, kernel addresses through the kernel pmap).
     */
    AccessResult access(VAddr va, Prot want) { return cpu().access(va, want); }

    /** Convenience: 32-bit load/store through the full MMU path. */
    bool load32(VAddr va, std::uint32_t *out);
    bool store32(VAddr va, std::uint32_t value);

  private:
    friend class Sched;

    Machine *machine_;
    vm::Task *task_;
    std::string name_;
    Body body_;
    ThreadState state_ = ThreadState::Embryo;
    Cpu *cpu_ = nullptr;
    sim::FiberId fiber_ = 0;
    bool is_idle_ = false;
    /** Preferred CPU (-1 = any); used by the tester to pin threads. */
    std::int64_t affinity_ = -1;
    Tick quantum_used_ = 0;
    std::vector<Thread *> joiners_;
};

} // namespace mach::kern

#endif // MACH_KERN_THREAD_HH
