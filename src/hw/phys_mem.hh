/**
 * @file
 * Simulated physical memory with a frame allocator.
 *
 * Frames are backed by host memory allocated lazily on first touch, so a
 * 64 MB simulated machine costs only what it actually uses. Page tables
 * live in this memory, which is what lets the TLB's reference/modify-bit
 * writeback genuinely race with pmap updates (Section 3).
 */

#ifndef MACH_HW_PHYS_MEM_HH
#define MACH_HW_PHYS_MEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "base/types.hh"

namespace mach::hw
{

/** Byte-addressable simulated physical memory plus frame free list. */
class PhysMem
{
  public:
    /**
     * Create memory with @p frames 4 KB frames split into @p nodes
     * contiguous NUMA partitions (node i owns [i*frames/nodes,
     * (i+1)*frames/nodes), the last node taking any remainder). Frame
     * 0 is reserved. With one node (the default) the allocator is
     * bit-identical to the pre-NUMA single free list.
     */
    explicit PhysMem(std::uint32_t frames, unsigned nodes = 1);

    std::uint32_t totalFrames() const { return total_frames_; }
    std::uint32_t freeFrames() const;
    /** Free frames remaining in @p node's partition. */
    std::uint32_t freeFramesOnNode(unsigned node) const;

    unsigned nodes() const
    {
        return static_cast<unsigned>(free_lists_.size());
    }

    /** NUMA node owning @p pfn's partition. */
    unsigned nodeOfPfn(Pfn pfn) const
    {
        const unsigned node = pfn / frames_per_node_;
        return node < nodes() ? node : nodes() - 1;
    }

    /**
     * Allocate a zeroed frame; panics when memory is exhausted (the
     * evaluation runs with adequate physical memory, per Section 5; the
     * pageout path frees frames before this can trigger).
     */
    Pfn allocFrame() { return allocFrame(0); }

    /**
     * Allocate a zeroed frame from @p node's partition, falling back
     * to the other partitions in deterministic ascending-offset order
     * when the preferred one is exhausted.
     */
    Pfn allocFrame(unsigned node);

    /** Return a frame to its partition's free list. */
    void freeFrame(Pfn pfn);

    /** True when @p pfn names an allocatable (non-reserved) frame. */
    bool validPfn(Pfn pfn) const;

    /** 32-bit aligned loads and stores. */
    std::uint32_t read32(PAddr addr) const;
    void write32(PAddr addr, std::uint32_t value);

    /** Byte access (used by vm_read/vm_write style copies). */
    std::uint8_t read8(PAddr addr) const;
    void write8(PAddr addr, std::uint8_t value);

    /** Copy a whole frame (used by copy-on-write resolution). */
    void copyFrame(Pfn dst, Pfn src);
    /** Zero-fill a whole frame. */
    void zeroFrame(Pfn pfn);

  private:
    using Frame = std::vector<std::uint8_t>;

    Frame &frameFor(PAddr addr);
    const Frame &frameFor(PAddr addr) const;

    std::uint32_t total_frames_;
    std::uint32_t frames_per_node_;
    /** Lazily materialized frame contents; null until first touch. */
    mutable std::vector<std::unique_ptr<Frame>> frames_;
    /** Per-node LIFO free lists of frame numbers. */
    std::vector<std::vector<Pfn>> free_lists_;
};

} // namespace mach::hw

#endif // MACH_HW_PHYS_MEM_HH
