#include "base/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "base/logging.hh"

namespace mach
{

void
Sample::add(double value)
{
    values_.push_back(value);
    sum_ += value;
    sorted_valid_ = false;
}

double
Sample::mean() const
{
    if (values_.empty())
        return 0.0;
    return sum_ / static_cast<double>(values_.size());
}

double
Sample::stddev() const
{
    if (values_.size() < 2)
        return 0.0;
    const double m = mean();
    double ss = 0.0;
    for (double v : values_) {
        const double d = v - m;
        ss += d * d;
    }
    return std::sqrt(ss / static_cast<double>(values_.size() - 1));
}

double
Sample::min() const
{
    if (values_.empty())
        return 0.0;
    return *std::min_element(values_.begin(), values_.end());
}

double
Sample::max() const
{
    if (values_.empty())
        return 0.0;
    return *std::max_element(values_.begin(), values_.end());
}

void
Sample::ensureSorted() const
{
    if (sorted_valid_)
        return;
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
}

double
Sample::percentile(double q) const
{
    if (values_.empty())
        return 0.0;
    MACH_ASSERT(q >= 0.0 && q <= 1.0);
    ensureSorted();
    const double pos = q * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

bool
Sample::skewedLow() const
{
    const double med = median();
    return (percentile(0.9) - med) > (med - percentile(0.1));
}

std::string
Sample::meanStd(int precision) const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f+-%.*f", precision, mean(),
                  precision, stddev());
    return buf;
}

void
Sample::reset()
{
    values_.clear();
    sorted_.clear();
    sorted_valid_ = false;
    sum_ = 0.0;
}

LinearFit
leastSquares(const std::vector<double> &xs, const std::vector<double> &ys)
{
    MACH_ASSERT(xs.size() == ys.size());
    MACH_ASSERT(xs.size() >= 2);

    const auto n = static_cast<double>(xs.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
        syy += ys[i] * ys[i];
    }

    const double denom = n * sxx - sx * sx;
    if (denom == 0.0)
        panic("leastSquares: all x values identical");

    LinearFit fit;
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;

    const double sst = syy - sy * sy / n;
    if (sst > 0.0) {
        double sse = 0.0;
        for (std::size_t i = 0; i < xs.size(); ++i) {
            const double e = ys[i] - (fit.intercept + fit.slope * xs[i]);
            sse += e * e;
        }
        fit.r2 = 1.0 - sse / sst;
    } else {
        fit.r2 = 1.0;
    }
    return fit;
}

} // namespace mach
