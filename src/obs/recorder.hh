/**
 * @file
 * Timeline observability: a span/instant/counter event recorder.
 *
 * One Recorder belongs to one Machine and records structured timeline
 * events -- spans (begin/end pairs), instants, and counter samples --
 * stamped with deterministic simulated time and grouped onto tracks
 * (one per CPU, one machine-wide, per-thread tracks on demand). The
 * recording is exported in Chrome Trace Event Format JSON, loadable in
 * Perfetto or chrome://tracing, so a run -- especially a failing run
 * the model checker found -- can be inspected as a timeline instead of
 * re-read from text traces.
 *
 * Design constraints, in the spirit of the xpr package (Section 6):
 *
 *  - off by default, one predictable branch per site when disabled
 *    (the trace::enabled pattern);
 *  - recording never perturbs simulated time on its own; the
 *    MachineConfig::obs_record_cost knob (machsim --obs-cost) charges
 *    the Section 6.1-style instrumentation cost explicitly when the
 *    measurement-perturbation experiment wants it;
 *  - deterministic: timestamps come from the simulated clock and the
 *    JSON is formatted with integer arithmetic only, so the same seed
 *    and flags produce byte-identical files (a golden digest test
 *    enforces this);
 *  - a bounded-ring "flight recorder" mode keeps only the most recent
 *    events and dumps them to a file when a failure is detected (a
 *    stale translation, a failed verdict, a minimized schedule).
 */

#ifndef MACH_OBS_RECORDER_HH
#define MACH_OBS_RECORDER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "base/types.hh"
#include "obs/metrics.hh"

namespace mach::obs
{

/** Index of one timeline track (a "thread" row in the trace viewer). */
using TrackId = std::uint32_t;
constexpr TrackId kNoTrack = ~TrackId{0};

/** One small integer argument attached to an event. */
struct Arg
{
    const char *key = nullptr; ///< Static string; null = absent.
    std::uint64_t value = 0;
};

/** One recorded timeline event. */
struct Event
{
    Tick ts = 0;
    char phase = 'i'; ///< 'B' begin, 'E' end, 'i' instant, 'C' counter.
    TrackId track = 0;
    const char *name = nullptr;     ///< Static string.
    const char *category = nullptr; ///< Static string; may be null.
    Arg arg0;
    Arg arg1;
    /**
     * Optional free-form detail emitted as args.detail. The pointer
     * must outlive the recorder's export (static strings or names of
     * objects owned by the machine, e.g. thread names).
     */
    const char *detail = nullptr;
};

/**
 * Suffix a file path before its extension: ("t.json", "seed0x1")
 * -> "t.seed0x1.json". Used to give every --repeat seed and every
 * fork-snapshot child its own trace file.
 */
std::string suffixedPath(const std::string &path, const std::string &tag);

/**
 * Process-wide trace-file suffix, set in fork-snapshot children so a
 * child's dump never clobbers its siblings' (farm::forkMany installs
 * "childN"). Empty in the parent.
 */
void setProcessFileTag(const std::string &tag);
const std::string &processFileTag();

/** The per-machine timeline recorder. */
class Recorder
{
  public:
    using Clock = std::function<Tick()>;

    /** @p clock reads the owning machine's simulated time. */
    explicit Recorder(Clock clock);

    Recorder(const Recorder &) = delete;
    Recorder &operator=(const Recorder &) = delete;

    /** The one-branch gate every instrumentation site tests first. */
    bool enabled() const { return enabled_; }

    /** Record everything (unbounded), e.g. for --trace-json. */
    void enable();

    /**
     * Flight-recorder mode: keep only the most recent @p capacity
     * events; older ones are dropped (and counted).
     */
    void enableRing(std::size_t capacity);

    /**
     * Stats-only mode: every instrumentation site runs (SpanGuards
     * feed their histograms, samplers feed counters-as-histograms)
     * but no timeline events are stored -- the memory-flat mode the
     * serving-tier runs and `machsim --stats-json` use, where only
     * the latency distributions matter, not the timeline.
     */
    void enableStats();

    void disable();

    bool ringMode() const { return ring_capacity_ != 0; }
    bool statsOnly() const { return stats_only_; }
    std::uint64_t droppedEvents() const { return dropped_; }

    // ---- Tracks ------------------------------------------------------

    /**
     * Create a named track; ids are dense and deterministic (creation
     * order). Track 0 ("machine") always exists.
     */
    TrackId defineTrack(const std::string &name);

    /** Define the per-CPU tracks "cpu0".."cpuN-1" (Machine, once). */
    void setCpuTracks(unsigned ncpus);

    TrackId machineTrack() const { return 0; }
    TrackId cpuTrack(CpuId id) const { return cpu_track_base_ + id; }

    const std::vector<std::string> &tracks() const { return tracks_; }

    // ---- Recording (call only when enabled()) ------------------------

    void begin(TrackId track, const char *name, const char *category,
               Arg arg0 = {}, Arg arg1 = {});
    void end(TrackId track, const char *name);
    void instant(TrackId track, const char *name, const char *category,
                 Arg arg0 = {}, Arg arg1 = {},
                 const char *detail = nullptr);
    void counter(TrackId track, const char *name, std::uint64_t value);

    Tick now() const { return clock_(); }

    Metrics &metrics() { return metrics_; }
    const Metrics &metrics() const { return metrics_; }

    const std::deque<Event> &events() const { return events_; }

    // ---- Export ------------------------------------------------------

    /**
     * The whole recording as Chrome Trace Event Format JSON
     * ({"traceEvents":[...]}). Timestamps are microseconds with a
     * fixed 3-digit fraction, rendered with integer arithmetic so the
     * output is byte-stable across runs and hosts.
     */
    std::string toJson() const;

    /**
     * Write toJson() to @p path (decorated with the process file tag
     * when running in a fork child). Returns false on I/O failure.
     */
    bool writeJsonFile(const std::string &path) const;

    // ---- Flight-recorder dump ----------------------------------------

    /** Where a failure-triggered dump goes (empty = dumps disabled). */
    void setDumpPath(std::string path) { dump_path_ = std::move(path); }
    const std::string &dumpPath() const { return dump_path_; }

    /**
     * Failure hook: if enabled and a dump path is set, write the
     * recording (in ring mode: the surviving tail) to the dump path,
     * once per recorder; later calls are no-ops. @p reason is noted in
     * the trace metadata. Returns true when a file was written.
     */
    bool dumpOnFailure(const char *reason);

    bool dumped() const { return dumped_; }

  private:
    void push(Event event);

    Clock clock_;
    bool enabled_ = false;
    bool stats_only_ = false;
    std::size_t ring_capacity_ = 0; ///< 0 = unbounded.
    std::uint64_t dropped_ = 0;
    std::deque<Event> events_;
    std::vector<std::string> tracks_;
    TrackId cpu_track_base_ = 0;
    Metrics metrics_;
    std::string dump_path_;
    bool dumped_ = false;
    const char *dump_reason_ = nullptr;
};

/**
 * RAII span: emits a 'B' event at construction and the matching 'E' at
 * destruction on the same track (so migrating callers cannot split a
 * span across tracks). Costs one branch when the recorder is disabled.
 * Optionally feeds the span's duration (in whole microseconds) into a
 * named latency histogram.
 */
class SpanGuard
{
  public:
    SpanGuard(Recorder &recorder, TrackId track, const char *name,
              const char *category, const char *histogram = nullptr,
              Arg arg0 = {}, Arg arg1 = {})
    {
        if (!recorder.enabled())
            return;
        recorder_ = &recorder;
        track_ = track;
        name_ = name;
        histogram_ = histogram;
        begin_ = recorder.now();
        recorder.begin(track, name, category, arg0, arg1);
    }

    ~SpanGuard()
    {
        if (recorder_ == nullptr)
            return;
        recorder_->end(track_, name_);
        if (histogram_ != nullptr) {
            recorder_->metrics().histogram(histogram_).record(
                (recorder_->now() - begin_) / kUsec);
        }
    }

    SpanGuard(const SpanGuard &) = delete;
    SpanGuard &operator=(const SpanGuard &) = delete;

  private:
    Recorder *recorder_ = nullptr;
    TrackId track_ = 0;
    const char *name_ = nullptr;
    const char *histogram_ = nullptr;
    Tick begin_ = 0;
};

} // namespace mach::obs

#endif // MACH_OBS_RECORDER_HH
