#include "chk/explorer.hh"

#include <algorithm>
#include <cstdio>

#include "base/rng.hh"
#include "chk/oracle.hh"
#include "pmap/shootdown.hh"
#include "vm/kernel.hh"

namespace mach::chk
{

namespace
{

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t
fold(std::uint64_t h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

/** Delta ladder for the systematic sweep: one TLB-invalidate-scale
 *  nudge up to a schedule-quantum-scale shove. */
constexpr Tick kDeltaLadder[] = {30 * kUsec, 120 * kUsec, 500 * kUsec,
                                 1500 * kUsec};
constexpr unsigned kDeltaLadderSize = 4;

} // namespace

TrialResult
Explorer::runTrial(const Scenario &scenario,
                   const SchedulePerturber &perturber) const
{
    TrialResult out;

    // Liveness bound: the unperturbed bound plus every injected
    // delay. A delay-only perturbation can stretch a run by at most
    // the sum of its extras, so exceeding this bound means some
    // shootdown (or join on one) genuinely failed to terminate.
    Tick bound = scenario.bound;
    for (const PerturbItem &item : perturber.items())
        bound += item.extra;

    vm::Kernel kernel(scenario.config);
    kernel.machine().setPerturber(&perturber);
    Oracle oracle(kernel);
    ScenarioState state;
    scenario.launch(kernel, &state);
    out.events_fired = kernel.machine().run(bound);
    oracle.finalCheck();
    kernel.machine().setPerturber(nullptr);

    out.completed = state.finished;
    out.predicate_ok = state.predicate_ok;
    out.coverage_ok = state.coverage_ok;
    out.note = state.note;
    out.violations = oracle.violations();
    out.violation_count = oracle.violationCount();
    out.bus_accesses = kernel.machine().bus().accessCount();
    out.end_time = kernel.machine().now();

    const pmap::ShootdownController &shoot = kernel.pmaps().shoot();
    std::uint64_t h = kFnvOffset;
    h = fold(h, out.end_time);
    h = fold(h, out.events_fired);
    h = fold(h, out.bus_accesses);
    h = fold(h, shoot.initiated);
    h = fold(h, shoot.interrupts_sent);
    h = fold(h, shoot.responder_passes);
    h = fold(h, shoot.idle_drains);
    h = fold(h, shoot.queue_overflows);
    h = fold(h, shoot.remote_invalidates);
    h = fold(h, out.violation_count);
    out.digest = h;
    return out;
}

ExploreResult
Explorer::explore(const Scenario &scenario, const ExploreOptions &opt)
{
    ExploreResult res;

    res.baseline = runTrial(scenario, SchedulePerturber{});
    ++res.trials;
    if (res.baseline.failed() ||
        (opt.check_coverage && !res.baseline.coverage_ok)) {
        res.baseline_failed = true;
        say("baseline failed: " + scenario.name + " " +
            res.baseline.note);
        return res;
    }

    const std::uint64_t n_events =
        std::max<std::uint64_t>(1, res.baseline.events_fired);
    const std::uint64_t n_bus =
        std::max<std::uint64_t>(1, res.baseline.bus_accesses);

    auto consider = [&](const SchedulePerturber &p) {
        const TrialResult r = runTrial(scenario, p);
        ++res.trials;
        if (!r.failed())
            return false;
        ++res.failures;
        if (res.failures == 1) {
            res.first_failing = p;
            res.first_failure = r;
            say("failing schedule for " + scenario.name + ": " +
                p.format());
        }
        return true;
    };

    // Phase 1: bounded-systematic sweep. One delayed event per
    // probe, seq striding across the whole baseline index space,
    // cycling the delta ladder -- the swap-window enumeration.
    bool found = false;
    if (opt.systematic_budget != 0) {
        const std::uint64_t stride = std::max<std::uint64_t>(
            1, n_events / opt.systematic_budget);
        unsigned used = 0;
        for (std::uint64_t seq = 1;
             seq <= n_events && used < opt.systematic_budget;
             seq += stride, ++used) {
            SchedulePerturber p;
            p.delayEvent(seq, kDeltaLadder[used % kDeltaLadderSize]);
            if (consider(p) && opt.stop_at_first) {
                found = true;
                break;
            }
        }
    }

    // Phase 2: randomized multi-delay probes over events and bus
    // accesses. Seeded independently of the machine, so the campaign
    // is reproducible end to end.
    if (!found) {
        Rng rng(opt.seed);
        for (unsigned t = 0; t < opt.random_budget; ++t) {
            SchedulePerturber p;
            const unsigned k = 1 + static_cast<unsigned>(
                                       rng.below(opt.max_delays));
            for (unsigned j = 0; j < k; ++j) {
                const Tick extra =
                    opt.min_extra +
                    rng.below(opt.max_extra - opt.min_extra + 1);
                if (rng.chance(0.15))
                    p.delayBusAccess(1 + rng.below(n_bus), extra);
                else
                    p.delayEvent(1 + rng.below(n_events), extra);
            }
            if (consider(p) && opt.stop_at_first) {
                found = true;
                break;
            }
        }
    }

    if (res.failures != 0) {
        res.minimized = minimize(scenario, res.first_failing,
                                 opt.minimize_budget);
        res.minimized_schedule = res.minimized.format();
        res.minimized_result = runTrial(scenario, res.minimized);
        char line[128];
        std::snprintf(line, sizeof(line),
                      "minimized to %u directive(s): ",
                      static_cast<unsigned>(res.minimized.size()));
        say(line + res.minimized_schedule);
    }
    return res;
}

SchedulePerturber
Explorer::minimize(const Scenario &scenario,
                   const SchedulePerturber &failing,
                   unsigned budget) const
{
    std::vector<PerturbItem> items = failing.items();
    unsigned used = 0;

    auto fails = [&](const std::vector<PerturbItem> &cand) {
        if (used >= budget)
            return false; // out of budget: keep the known-failing set
        ++used;
        return runTrial(scenario,
                        SchedulePerturber::fromItems(cand))
            .failed();
    };

    // 1-minimal reduction: drop directives one at a time until no
    // single drop still reproduces the failure.
    bool changed = true;
    while (changed && items.size() > 1) {
        changed = false;
        for (std::size_t i = 0; i < items.size(); ++i) {
            std::vector<PerturbItem> cand = items;
            cand.erase(cand.begin() +
                       static_cast<std::ptrdiff_t>(i));
            if (fails(cand)) {
                items = cand;
                changed = true;
                break;
            }
        }
    }

    // Delta shrinking: halve each surviving delay while the failure
    // still reproduces, to report the smallest sufficient stretch.
    for (std::size_t i = 0; i < items.size(); ++i) {
        while (items[i].extra > 1) {
            std::vector<PerturbItem> cand = items;
            cand[i].extra /= 2;
            if (!fails(cand))
                break;
            items = cand;
        }
    }

    return SchedulePerturber::fromItems(items);
}

} // namespace mach::chk
