#!/usr/bin/env python3
"""Perf smoke gate: fail CI when the hot paths regress badly.

Compares a freshly generated BENCH_host_perf.json against the baseline
committed at the repo root. Only the steadiest metrics are gated -- raw
event dispatch throughput, TLB lookup latency, and the end-to-end
simulation rates of the shootdown storm and the Section 5.2 app suite
(the two paths the shootdown-policy hooks sit on) -- and only with a
generous tolerance (default 25%), because shared CI runners are noisy.
The remaining benchmarks are informational; their history lives in the
uploaded BENCH_host_perf artifacts.

Also understands the serving-tier SLO baselines (BENCH_serving.json,
"bench": "serving_slo"): every swept cell's request_p999_us is gated
lower-is-better against the committed baseline. Those numbers come from
the deterministic simulator, not the host, so they are immune to runner
noise; a tail regression there is a behavior change, not jitter.

Usage: perf_smoke.py <committed.json> <fresh.json> [--tolerance 1.25]
Exit status 0 = within tolerance, 1 = regression, 2 = bad input.
"""

import argparse
import json
import sys


# (benchmark, metric, direction). "higher" means bigger is better.
GATES = [
    ("event_queue", "events_per_sec", "higher"),
    ("tlb_churn", "tlb_lookup_ns", "lower"),
    ("shootdown_storm", "sim_us_per_host_ms", "higher"),
    ("app_suite", "sim_us_per_host_ms", "higher"),
]


def load(path):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    return doc


def check(bench, metric, direction, base, now, tolerance):
    """Print one gate verdict; return True when within tolerance."""
    if direction == "higher":
        bound = base / tolerance
        ok = now >= bound
        verdict = f"floor {bound:.3f}"
    else:
        bound = base * tolerance
        ok = now <= bound
        verdict = f"ceiling {bound:.3f}"
    status = "ok" if ok else "REGRESSED"
    print(
        f"perf_smoke: {bench}.{metric}: baseline {base:.3f}, "
        f"measured {now:.3f} ({verdict}) ... {status}"
    )
    return ok


def gates_for(doc):
    """Gate list for a results document, keyed by its "bench" field."""
    if doc.get("bench") == "serving_slo":
        # Deterministic simulated tails: every cell in the sweep.
        return [
            (cell, "request_p999_us", "lower")
            for cell in sorted(doc["results"])
        ]
    return GATES


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("committed", help="baseline BENCH_host_perf.json")
    parser.add_argument("fresh", help="just-measured BENCH_host_perf.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.25,
        help="allowed regression factor (default 1.25 = 25%%)",
    )
    args = parser.parse_args()

    try:
        committed_doc = load(args.committed)
        fresh_doc = load(args.fresh)
        committed = committed_doc["results"]
        fresh = fresh_doc["results"]
    except (OSError, ValueError, KeyError) as err:
        print(f"perf_smoke: cannot read inputs: {err}", file=sys.stderr)
        return 2

    failed = False
    for bench, metric, direction in gates_for(committed_doc):
        try:
            base = committed[bench][metric]
            now = fresh[bench][metric]
        except KeyError:
            print(f"perf_smoke: {bench}.{metric} missing", file=sys.stderr)
            failed = True
            continue
        ok = check(bench, metric, direction, base, now, args.tolerance)
        failed = failed or not ok

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
