/**
 * @file
 * The TLB-consistency test program of Section 5.1.
 *
 * The program tries to cause a simple TLB inconsistency and then
 * attempts to detect its effects:
 *
 *   1. Allocate a page of read-write memory.
 *   2. Start child threads, each incrementing a separate counter in
 *      that page in a tight loop.
 *   3. Reprotect the page read-only and immediately save a copy of the
 *      counters.
 *   4. The children all take unrecoverable write faults.
 *   5. Compare the final counters with the saved copy.
 *
 * Any difference means a thread kept writing through a stale writable
 * TLB entry after the page became read-only -- a TLB inconsistency.
 *
 * On an n-processor machine, running with k < n children causes exactly
 * one shootdown on the user pmap involving exactly k processors, which
 * makes the program a precise probe of basic shootdown cost (Figure 2).
 */

#ifndef MACH_APPS_CONSISTENCY_TESTER_HH
#define MACH_APPS_CONSISTENCY_TESTER_HH

#include <cstdint>
#include <vector>

#include "apps/workload.hh"

namespace mach::apps
{

/** The Section 5.1 tester. */
class ConsistencyTester : public Workload
{
  public:
    struct Params
    {
        /** Child threads (each pinned to its own CPU). */
        unsigned children = 15;
        /** How long the children spin before the reprotect. */
        Tick warmup = 30 * kMsec;
    };

    explicit ConsistencyTester(Params params) : params_(params) {}

    std::string name() const override { return "tlb-tester"; }

    void run(vm::Kernel &kernel, kern::Thread &driver) override;

    /** True when no counter advanced after the reprotect. */
    bool consistent() const { return consistent_; }
    /** Counter values at the instant after the reprotect. */
    const std::vector<std::uint32_t> &savedCounters() const
    {
        return saved_;
    }
    /** Final counter values after all children died. */
    const std::vector<std::uint32_t> &finalCounters() const
    {
        return final_;
    }

  private:
    Params params_;
    bool consistent_ = false;
    std::vector<std::uint32_t> saved_;
    std::vector<std::uint32_t> final_;
};

} // namespace mach::apps

#endif // MACH_APPS_CONSISTENCY_TESTER_HH
