#include "obs/metrics.hh"

#include <cstdio>

namespace mach::obs
{

namespace
{

/** Bucket index: 0 for value 0, else 1 + floor(log2(value)). */
unsigned
bucketIndex(std::uint64_t value)
{
    if (value == 0)
        return 0;
    unsigned idx = 0;
    while (value != 0) {
        value >>= 1;
        ++idx;
    }
    return idx < Histogram::kBuckets ? idx : Histogram::kBuckets - 1;
}

/** Inclusive upper bound of a bucket: 0, 1, 3, 7, ... */
std::uint64_t
bucketUpper(unsigned idx)
{
    if (idx == 0)
        return 0;
    if (idx >= 64)
        return ~std::uint64_t{0};
    return (std::uint64_t{1} << idx) - 1;
}

} // namespace

void
Histogram::record(std::uint64_t value)
{
    ++buckets_[bucketIndex(value)];
    ++count_;
    sum_ += value;
    if (value < min_)
        min_ = value;
    if (value > max_)
        max_ = value;
}

std::uint64_t
Histogram::percentileMille(unsigned mille) const
{
    if (count_ == 0)
        return 0;
    if (mille > 1000)
        mille = 1000;
    // Rank of the target sample, 1-based, rounding up.
    const std::uint64_t rank = (count_ * mille + 999) / 1000;
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        seen += buckets_[i];
        if (seen >= rank) {
            // Clamp the bucket approximation to the observed extremes.
            std::uint64_t upper = bucketUpper(i);
            if (upper > max_)
                upper = max_;
            if (upper < min())
                upper = min();
            return upper;
        }
    }
    return max_;
}

Histogram &
Metrics::histogram(const std::string &name)
{
    for (auto &entry : entries_) {
        if (entry.first == name)
            return *entry.second;
    }
    entries_.emplace_back(name, std::make_unique<Histogram>());
    return *entries_.back().second;
}

std::string
Metrics::report() const
{
    std::string out;
    char line[256];
    for (const auto &entry : entries_) {
        const Histogram &h = *entry.second;
        std::snprintf(
            line, sizeof(line),
            "%-28s n=%-8llu mean=%-8llu p50=%-8llu p90=%-8llu "
            "p99=%-8llu p999=%-8llu max=%llu\n",
            entry.first.c_str(),
            static_cast<unsigned long long>(h.count()),
            static_cast<unsigned long long>(h.mean()),
            static_cast<unsigned long long>(h.percentile(50)),
            static_cast<unsigned long long>(h.percentile(90)),
            static_cast<unsigned long long>(h.percentile(99)),
            static_cast<unsigned long long>(h.percentileMille(999)),
            static_cast<unsigned long long>(h.max()));
        out += line;
    }
    return out;
}

} // namespace mach::obs
