/**
 * @file
 * Integration tests: each evaluation application runs end to end on a
 * fresh simulated machine and exhibits the qualitative behaviour the
 * paper reports for it.
 */

#include <gtest/gtest.h>

#include "apps/agora.hh"
#include "apps/camelot.hh"
#include "apps/consistency_tester.hh"
#include "apps/mach_build.hh"
#include "apps/parthenon.hh"
#include "vm/kernel.hh"

namespace mach
{
namespace
{

hw::MachineConfig
appConfig()
{
    setLogQuiet(true);
    return hw::MachineConfig{};
}

TEST(MachBuildApp, BuildsJobsWithOnlyKernelShootdowns)
{
    hw::MachineConfig config = appConfig();
    vm::Kernel kernel(config);
    apps::MachBuild::Params params;
    params.jobs = 12;
    params.concurrency = 6;
    apps::MachBuild app(params);
    const apps::WorkloadResult result = app.execute(kernel);

    EXPECT_EQ(app.jobs_completed, 12u);
    // "The Mach kernel build uses multiple processors only for
    // throughput; it does not share memory among user tasks."
    EXPECT_EQ(result.analysis.user_initiator.events, 0u);
    EXPECT_GT(result.analysis.kernel_initiator.events, 0u);
    EXPECT_GT(result.lazy_avoided, 0u);
    EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
    // All job tasks were destroyed.
    EXPECT_EQ(kernel.tasks().size(), 0u);
}

TEST(ParthenonApp, ProcessesWorkpileWithAlmostNoShootdowns)
{
    hw::MachineConfig config = appConfig();
    vm::Kernel kernel(config);
    apps::Parthenon::Params params;
    params.runs = 2;
    apps::Parthenon app(params);
    const apps::WorkloadResult result = app.execute(kernel);

    EXPECT_GT(app.items_processed, 0u);
    // With lazy evaluation the stack-guard reprotects are elided.
    EXPECT_EQ(result.analysis.user_initiator.events, 0u);
    EXPECT_LE(result.analysis.kernel_initiator.events, 6u);
    EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
}

TEST(ParthenonApp, WithoutLazyEveryLaterThreadStartShoots)
{
    hw::MachineConfig config = appConfig();
    config.lazy_evaluation = false;
    vm::Kernel kernel(config);
    apps::Parthenon::Params params;
    params.runs = 2;
    params.workers = 10;
    apps::Parthenon app(params);
    const apps::WorkloadResult result = app.execute(kernel);

    // The first thread of each run has no parallel sibling yet, so
    // runs x (workers - 1) user shootdowns.
    EXPECT_EQ(result.analysis.user_initiator.events,
              params.runs * (params.workers - 1));
    EXPECT_GT(result.analysis.kernel_initiator.events, 6u);
}

TEST(AgoraApp, BimodalKernelShootdowns)
{
    hw::MachineConfig config = appConfig();
    vm::Kernel kernel(config);
    apps::Agora app(apps::Agora::Params{});
    const apps::WorkloadResult result = app.execute(kernel);

    EXPECT_GT(app.waves_processed, 0u);
    EXPECT_EQ(result.analysis.user_initiator.events, 0u);
    const auto &k = result.analysis.kernel_initiator;
    ASSERT_GT(k.events, 0u);
    // Setup-phase events involve most of the machine, steady-state
    // events only a few processors: both modes must be present.
    EXPECT_GE(k.procs.max(), 11.0);
    EXPECT_LE(k.procs.min(), 4.0);
    EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
}

TEST(CamelotApp, OnlyAppWithUserShootdowns)
{
    hw::MachineConfig config = appConfig();
    vm::Kernel kernel(config);
    apps::Camelot::Params params;
    params.transactions = 60;
    apps::Camelot app(params);
    const apps::WorkloadResult result = app.execute(kernel);

    EXPECT_EQ(app.commits, 60u);
    EXPECT_GT(result.analysis.user_initiator.events, 0u);
    EXPECT_GT(result.analysis.kernel_initiator.events, 0u);
    // Mostly one page per user shootdown, as in Table 3.
    EXPECT_LT(result.analysis.user_initiator.pages.mean(), 4.0);
    EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
}

TEST(TesterApp, CountersAdvanceBeforeReprotectOnly)
{
    hw::MachineConfig config = appConfig();
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester({.children = 3, .warmup = 15 * kMsec});
    tester.execute(kernel);

    ASSERT_TRUE(tester.consistent());
    ASSERT_EQ(tester.savedCounters().size(), 3u);
    for (unsigned i = 0; i < 3; ++i) {
        EXPECT_GT(tester.savedCounters()[i], 0u);
        EXPECT_EQ(tester.savedCounters()[i], tester.finalCounters()[i]);
    }
}

TEST(TesterApp, ResponderEventsAreSampled)
{
    hw::MachineConfig config = appConfig();
    vm::Kernel kernel(config);
    // All children on CPUs 0-4 which are the sampled responders.
    apps::ConsistencyTester tester({.children = 4, .warmup = 15 * kMsec});
    const apps::WorkloadResult result = tester.execute(kernel);
    EXPECT_GT(result.analysis.responder.events, 0u);
    EXPECT_LE(result.analysis.responder.events, 4u);
}

TEST(TesterApp, WorksOnTinyMachine)
{
    hw::MachineConfig config = appConfig();
    config.ncpus = 2;
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester({.children = 1, .warmup = 10 * kMsec});
    const apps::WorkloadResult result = tester.execute(kernel);
    EXPECT_TRUE(tester.consistent());
    EXPECT_EQ(result.analysis.user_initiator.events, 1u);
}

} // namespace
} // namespace mach
