#include "hw/page_table.hh"

#include <algorithm>

#include "base/logging.hh"

namespace mach::hw
{

namespace
{
constexpr unsigned kLeafBits = 10;
constexpr unsigned kLeafMask = (1u << kLeafBits) - 1;

unsigned
rootIndex(Vpn vpn)
{
    return vpn >> kLeafBits;
}

unsigned
leafIndex(Vpn vpn)
{
    return vpn & kLeafMask;
}
} // namespace

PageTable::PageTable(PhysMem *mem) : mem_(mem)
{
    MACH_ASSERT(mem_ != nullptr);
    root_pfn_ = mem_->allocFrame();
}

PageTable::~PageTable()
{
    collect();
    mem_->freeFrame(root_pfn_);
}

PAddr
PageTable::rootAddr() const
{
    return root_pfn_ << kPageShift;
}

std::uint32_t
PageTable::rootEntry(Vpn vpn) const
{
    return mem_->read32(rootAddr() + rootIndex(vpn) * 4);
}

WalkResult
PageTable::walk(Vpn vpn) const
{
    WalkResult result;
    const std::uint32_t root = rootEntry(vpn);
    result.memory_reads = 1;
    if (!pte::valid(root))
        return result;
    result.leaf_present = true;
    const PAddr leaf_addr =
        (pte::pfn(root) << kPageShift) + leafIndex(vpn) * 4;
    result.pte = mem_->read32(leaf_addr);
    result.memory_reads = 2;
    return result;
}

bool
PageTable::leafPresent(Vpn vpn) const
{
    return pte::valid(rootEntry(vpn));
}

std::uint32_t
PageTable::readPte(Vpn vpn) const
{
    return walk(vpn).pte;
}

PAddr
PageTable::pteAddr(Vpn vpn) const
{
    const std::uint32_t root = rootEntry(vpn);
    if (!pte::valid(root))
        return 0;
    return (pte::pfn(root) << kPageShift) + leafIndex(vpn) * 4;
}

void
PageTable::writePte(Vpn vpn, std::uint32_t value)
{
    std::uint32_t root = rootEntry(vpn);
    if (!pte::valid(root)) {
        if (!pte::valid(value))
            return; // Invalidating an unmapped page: nothing to do.
        const Pfn leaf = mem_->allocFrame();
        ++leaf_count_;
        root = pte::make(leaf, ProtReadWrite);
        mem_->write32(rootAddr() + rootIndex(vpn) * 4, root);
    }
    const PAddr leaf_addr =
        (pte::pfn(root) << kPageShift) + leafIndex(vpn) * 4;
    mem_->write32(leaf_addr, value);
}

void
PageTable::forEachValid(
    Vpn start, Vpn end,
    const std::function<void(Vpn, std::uint32_t)> &fn) const
{
    Vpn vpn = start;
    while (vpn < end) {
        const std::uint32_t root = rootEntry(vpn);
        if (!pte::valid(root)) {
            // Whole leaf missing: skip to the next leaf boundary.
            const Vpn next = (vpn | kLeafMask) + 1;
            vpn = next > vpn ? next : end;
            continue;
        }
        const PAddr leaf_base = pte::pfn(root) << kPageShift;
        const Vpn leaf_end = std::min<Vpn>(end, (vpn | kLeafMask) + 1);
        for (; vpn < leaf_end; ++vpn) {
            const std::uint32_t entry =
                mem_->read32(leaf_base + leafIndex(vpn) * 4);
            if (pte::valid(entry))
                fn(vpn, entry);
        }
    }
}

unsigned
PageTable::countValid(Vpn start, Vpn end) const
{
    unsigned count = 0;
    forEachValid(start, end,
                 [&count](Vpn, std::uint32_t) { ++count; });
    return count;
}

void
PageTable::collect()
{
    for (unsigned index = 0; index < kEntriesPerTable; ++index) {
        const PAddr slot = rootAddr() + index * 4;
        const std::uint32_t root = mem_->read32(slot);
        if (!pte::valid(root))
            continue;
        mem_->freeFrame(pte::pfn(root));
        mem_->write32(slot, 0);
        --leaf_count_;
    }
    MACH_ASSERT(leaf_count_ == 0);
}

} // namespace mach::hw
