/**
 * @file
 * Unit tests for the simulator core: event queue, fibers, context.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/context.hh"
#include "sim/event_queue.hh"
#include "sim/fiber.hh"

namespace mach::sim
{
namespace
{

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });

    while (!q.empty()) {
        Tick when = 0;
        q.popFront(&when)();
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickFiresInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    while (!q.empty()) {
        Tick when = 0;
        q.popFront(&when)();
    }
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelRemovesEvent)
{
    EventQueue q;
    bool fired = false;
    EventId id = q.schedule(10, [&] { fired = true; });
    q.schedule(20, [] {});
    q.cancel(id);
    EXPECT_EQ(q.size(), 1u);
    Tick when = 0;
    q.popFront(&when)();
    EXPECT_FALSE(fired);
    EXPECT_EQ(when, 20u);
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    EventQueue q;
    EventId id = q.schedule(10, [] {});
    Tick when = 0;
    q.popFront(&when);
    q.cancel(id); // Must not crash or disturb anything.
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelDefaultIdIsNoop)
{
    EventQueue q;
    q.cancel(EventId{});
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeReportsEarliest)
{
    EventQueue q;
    q.schedule(50, [] {});
    q.schedule(40, [] {});
    EXPECT_EQ(q.nextTime(), 40u);
}

TEST(Context, SleepAdvancesVirtualTime)
{
    Context ctx;
    Tick woke_at = 0;
    ctx.spawn("sleeper", [&] {
        ctx.sleep(100);
        woke_at = ctx.now();
    });
    ctx.run();
    EXPECT_EQ(woke_at, 100u);
    EXPECT_EQ(ctx.now(), 100u);
}

TEST(Context, ZeroFibersAfterCompletion)
{
    Context ctx;
    ctx.spawn("a", [&] { ctx.sleep(1); });
    ctx.spawn("b", [&] { ctx.sleep(2); });
    EXPECT_EQ(ctx.liveFiberCount(), 2u);
    ctx.run();
    EXPECT_EQ(ctx.liveFiberCount(), 0u);
}

TEST(Context, InterleavesFibersDeterministically)
{
    Context ctx;
    std::string trace;
    ctx.spawn("a", [&] {
        trace += 'a';
        ctx.sleep(10);
        trace += 'A';
    });
    ctx.spawn("b", [&] {
        trace += 'b';
        ctx.sleep(5);
        trace += 'B';
    });
    ctx.run();
    EXPECT_EQ(trace, "abBA");
}

TEST(Context, WakeResumesBlockedFiber)
{
    Context ctx;
    bool resumed = false;
    FiberId blocked = ctx.spawn("blocked", [&] {
        ctx.block();
        resumed = true;
    });
    ctx.spawn("waker", [&] {
        ctx.sleep(50);
        ctx.scheduleWake(blocked, ctx.now());
    });
    ctx.run();
    EXPECT_TRUE(resumed);
    EXPECT_EQ(ctx.now(), 50u);
}

TEST(Context, WakeOfFinishedFiberIsIgnored)
{
    Context ctx;
    FiberId id = ctx.spawn("quick", [] {});
    ctx.spawn("late-waker", [&] {
        ctx.sleep(10);
        ctx.scheduleWake(id, ctx.now() + 5);
    });
    ctx.run(); // Must not panic or resurrect the finished fiber.
    EXPECT_EQ(ctx.liveFiberCount(), 0u);
}

TEST(Context, RunUntilBoundsTime)
{
    Context ctx;
    int ticks = 0;
    std::function<void()> tick = [&] {
        ++ticks;
        ctx.scheduleCall(ctx.now() + 10, tick);
    };
    ctx.scheduleCall(0, tick);
    ctx.run(35);
    EXPECT_EQ(ticks, 4); // t = 0, 10, 20, 30.
    EXPECT_LE(ctx.now(), 35u);
}

TEST(Context, RequestStopEndsRun)
{
    Context ctx;
    int events = 0;
    ctx.scheduleCall(1, [&] { ++events; });
    ctx.scheduleCall(2, [&] {
        ++events;
        ctx.requestStop();
    });
    ctx.scheduleCall(3, [&] { ++events; });
    ctx.run();
    EXPECT_EQ(events, 2);
    // A later run() drains the remainder.
    ctx.run();
    EXPECT_EQ(events, 3);
}

TEST(Context, SpawnFromWithinFiber)
{
    Context ctx;
    std::vector<int> order;
    ctx.spawn("parent", [&] {
        order.push_back(1);
        ctx.spawn("child", [&] { order.push_back(2); });
        ctx.sleep(10);
        order.push_back(3);
    });
    ctx.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Context, ManyFibersAllComplete)
{
    Context ctx;
    int done = 0;
    for (int i = 0; i < 200; ++i) {
        ctx.spawn("f" + std::to_string(i), [&ctx, &done, i] {
            ctx.sleep(static_cast<Tick>(i % 17));
            ++done;
        });
    }
    ctx.run();
    EXPECT_EQ(done, 200);
}

TEST(Context, FiberNameLookup)
{
    Context ctx;
    FiberId id = ctx.spawn("named", [&] { ctx.sleep(5); });
    EXPECT_EQ(ctx.fiberName(id), "named");
    ctx.run();
    EXPECT_EQ(ctx.fiberName(id), "<gone>");
}

TEST(Context, NestedSpawnDeepChain)
{
    // Each fiber spawns the next; all must run.
    Context ctx;
    int depth = 0;
    std::function<void(int)> chain = [&](int remaining) {
        ++depth;
        if (remaining > 0) {
            ctx.spawn("link", [&chain, remaining] {
                chain(remaining - 1);
            });
        }
    };
    ctx.spawn("root", [&] { chain(50); });
    ctx.run();
    EXPECT_EQ(depth, 51);
}

TEST(Fiber, CurrentIsNullInScheduler)
{
    EXPECT_EQ(Fiber::current(), nullptr);
    Context ctx;
    const Fiber *seen = nullptr;
    ctx.spawn("probe", [&] { seen = Fiber::current(); });
    ctx.run();
    EXPECT_NE(seen, nullptr);
    EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(EventQueue, ScheduledCountIsMonotonic)
{
    EventQueue q;
    EXPECT_EQ(q.scheduledCount(), 0u);
    EventId a = q.schedule(1, [] {});
    q.schedule(2, [] {});
    EXPECT_EQ(q.scheduledCount(), 2u);
    q.cancel(a); // Cancellation does not un-count.
    EXPECT_EQ(q.scheduledCount(), 2u);
}

TEST(Context, RunReturnsDispatchedCount)
{
    Context ctx;
    for (int i = 0; i < 5; ++i)
        ctx.scheduleCall(i + 1, [] {});
    EXPECT_EQ(ctx.run(3), 3u);
    EXPECT_EQ(ctx.run(), 2u);
}

TEST(Context, SpawnDelayDefersStart)
{
    Context ctx;
    Tick started_at = 0;
    ctx.spawn(
        "late", [&] { started_at = ctx.now(); }, 250);
    ctx.run();
    EXPECT_EQ(started_at, 250u);
}

TEST(Context, DeterministicReplay)
{
    // Two identical simulations produce identical traces.
    auto run_once = [] {
        Context ctx;
        std::string trace;
        for (int i = 0; i < 5; ++i) {
            ctx.spawn("f" + std::to_string(i), [&ctx, &trace, i] {
                for (int j = 0; j < 3; ++j) {
                    trace += static_cast<char>('a' + i);
                    ctx.sleep(static_cast<Tick>((i * 7 + j * 3) % 11 +
                                                1));
                }
            });
        }
        ctx.run();
        return trace;
    };
    EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------
// Event-heap internals: tombstones, same-tick chains, slab recycling.
// ---------------------------------------------------------------------

TEST(EventQueue, CancelThenFireSkipsTombstone)
{
    // Cancel an event that is already at the front of its tick chain;
    // the next pop must sweep past the tombstone to the live event
    // behind it, on the same tick and on a later one.
    EventQueue q;
    std::vector<int> order;
    EventId dead_same = q.schedule(10, [&] { order.push_back(-1); });
    q.schedule(10, [&] { order.push_back(1); });
    EventId dead_later = q.schedule(20, [&] { order.push_back(-2); });
    q.schedule(30, [&] { order.push_back(2); });
    q.cancel(dead_same);
    q.cancel(dead_later);

    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.nextTime(), 10u);
    while (!q.empty()) {
        Tick when = 0;
        q.popFront(&when)();
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, InterleavedTicksKeepSequenceOrder)
{
    // Alternate scheduling between two ticks so each tick's FIFO chain
    // is built up interleaved; pops must still follow global
    // (when, seq) order.
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
        const Tick when = (i % 2 == 0) ? 100 : 200;
        q.schedule(when, [&order, i] { order.push_back(i); });
    }
    while (!q.empty()) {
        Tick when = 0;
        q.popFront(&when)();
    }
    EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 1, 3, 5, 7}));
}

TEST(EventQueue, FreeListBoundsSlabAcrossChurn)
{
    // A million schedule/cancel cycles (the kicked-idle-nap pattern)
    // must recycle slab nodes rather than grow the slab: tombstone
    // compaction reclaims cancelled nodes even though their tick never
    // reaches the front.
    EventQueue q;
    bool fired = false;
    q.schedule(1, [&] { fired = true; });
    for (int i = 0; i < 1'000'000; ++i) {
        EventId id = q.schedule(1'000'000 + i % 97, [] {});
        q.cancel(id);
    }
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.scheduledCount(), 1'000'001u);
    // The slab high-water mark stays tiny compared to the churn count.
    EXPECT_LT(q.slabSize(), 1000u);
    // In-use slots are the one live event plus at most the tombstone
    // compaction threshold's worth of not-yet-swept cancelled nodes;
    // every other slot is back on the free list.
    EXPECT_LE(q.slabSize() - q.freeNodeCount(), 65u);

    Tick when = 0;
    q.popFront(&when)();
    EXPECT_TRUE(fired);
    EXPECT_EQ(when, 1u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SlabSlotReuseDoesNotConfuseCancel)
{
    // A stale EventId whose slab slot has been recycled by a newer
    // event must not cancel the newer event.
    EventQueue q;
    EventId old_id = q.schedule(10, [] {});
    Tick when = 0;
    q.popFront(&when); // Slot returns to the free list.

    bool fired = false;
    q.schedule(20, [&] { fired = true; }); // Reuses the slot.
    q.cancel(old_id);                      // Stale handle: must no-op.
    EXPECT_EQ(q.size(), 1u);
    q.popFront(&when)();
    EXPECT_TRUE(fired);
}

TEST(EventQueue, ManySameTickEventsUseOneHeapSlot)
{
    // The bucket layout's point: simultaneous events share one heap
    // item, so the heap tracks distinct ticks, not events.
    EventQueue q;
    for (int i = 0; i < 100; ++i)
        q.schedule(7, [] {});
    q.schedule(9, [] {});
    EXPECT_EQ(q.size(), 101u);
    EXPECT_EQ(q.pendingTickCount(), 2u);
    while (!q.empty()) {
        Tick when = 0;
        q.popFront(&when)();
    }
}

} // namespace
} // namespace mach::sim
