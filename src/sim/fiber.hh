/**
 * @file
 * Cooperative fibers built on ucontext + setjmp.
 *
 * Every simulated execution context (a kernel thread running on a
 * simulated CPU, an idle loop, a workload driver) is a Fiber. Exactly one
 * fiber runs at a time on the single host thread, so simulated shared
 * state never needs host-level synchronization; interleaving happens only
 * at explicit simulation points (sim::Context::block and friends), which
 * is what makes every experiment deterministic and replayable.
 *
 * ucontext is used only to enter a fresh stack for the first time
 * (makecontext is the portable way to do that). Every steady-state
 * switch uses _setjmp/_longjmp instead: swapcontext saves and restores
 * the signal mask with an rt_sigprocmask syscall per switch, which
 * dominates switch cost, while _setjmp/_longjmp are pure user-space
 * register save/restore. The simulator never relies on per-fiber
 * signal masks, so the two are equivalent here.
 */

#ifndef MACH_SIM_FIBER_HH
#define MACH_SIM_FIBER_HH

#include <ucontext.h>

#include <csetjmp>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace mach::sim
{

/** A cooperatively scheduled execution context with its own stack. */
class Fiber
{
  public:
    using Entry = std::function<void()>;

    /** Default stack size; generous because VM fault paths nest deeply. */
    static constexpr std::size_t kDefaultStackSize = 256 * 1024;

    /**
     * Create a fiber that will run @p entry when first switched to.
     * The fiber does not start executing until switchTo() is called.
     */
    Fiber(std::string name, Entry entry,
          std::size_t stack_size = kDefaultStackSize);
    ~Fiber();

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /** True once entry() has returned. */
    bool finished() const { return finished_; }

    const std::string &name() const { return name_; }

    /**
     * The fiber currently executing, or nullptr when control is in the
     * scheduler (main context).
     */
    static Fiber *current();

    /**
     * Transfer control from the scheduler to this fiber. Must be called
     * from the main context only; returns when the fiber blocks or
     * finishes.
     */
    void resume();

    /**
     * Transfer control from this fiber back to the scheduler. Must be
     * called from within the currently running fiber.
     */
    static void yieldToScheduler();

  private:
    static void trampoline(unsigned hi, unsigned lo);
    void start();

    std::string name_;
    Entry entry_;
    std::vector<unsigned char> stack_;
    /** First-entry context (stack setup); unused after start(). */
    ucontext_t context_;
    /** Resume point of a blocked fiber (set by yieldToScheduler). */
    std::jmp_buf env_;
    bool started_ = false;
    bool finished_ = false;
};

} // namespace mach::sim

#endif // MACH_SIM_FIBER_HH
