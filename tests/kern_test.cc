/**
 * @file
 * Tests for the kernel substrate: locks, threads, scheduler, interrupt
 * delivery, and the I/O device.
 */

#include <gtest/gtest.h>

#include <vector>

#include "vm/kernel.hh"

namespace mach
{
namespace
{

hw::MachineConfig
smallConfig(unsigned ncpus = 4)
{
    setLogQuiet(true);
    hw::MachineConfig config;
    config.ncpus = ncpus;
    return config;
}

/** Run @p body in a fresh kernel's driver thread, then drain. */
void
inKernel(const hw::MachineConfig &config,
         const std::function<void(vm::Kernel &, kern::Thread &)> &body)
{
    vm::Kernel kernel(config);
    kernel.start();
    bool finished = false;
    kernel.spawnThread(nullptr, "test-driver",
                       [&](kern::Thread &driver) {
                           body(kernel, driver);
                           finished = true;
                           kernel.machine().ctx().requestStop();
                       });
    kernel.machine().run();
    ASSERT_TRUE(finished) << "driver thread did not complete";
}

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

TEST(Mutex, ProvidesMutualExclusion)
{
    inKernel(smallConfig(), [](vm::Kernel &kernel, kern::Thread &drv) {
        kern::Mutex mutex("test");
        int counter = 0;
        int max_inside = 0;
        int inside = 0;
        std::vector<kern::Thread *> threads;
        for (int i = 0; i < 6; ++i) {
            threads.push_back(kernel.spawnThread(
                nullptr, "m" + std::to_string(i),
                [&](kern::Thread &self) {
                    for (int j = 0; j < 5; ++j) {
                        mutex.lock(self);
                        ++inside;
                        max_inside = std::max(max_inside, inside);
                        self.compute(2 * kMsec);
                        ++counter;
                        --inside;
                        mutex.unlock(self);
                        self.compute(1 * kMsec);
                    }
                }));
        }
        for (kern::Thread *t : threads)
            drv.join(*t);
        EXPECT_EQ(counter, 30);
        EXPECT_EQ(max_inside, 1);
        EXPECT_FALSE(mutex.locked());
        EXPECT_GT(mutex.contended_acquires, 0u);
    });
}

TEST(Mutex, UncontendedFastPath)
{
    inKernel(smallConfig(), [](vm::Kernel &, kern::Thread &drv) {
        kern::Mutex mutex("fast");
        mutex.lock(drv);
        EXPECT_TRUE(mutex.locked());
        mutex.unlock(drv);
        EXPECT_FALSE(mutex.locked());
        EXPECT_EQ(mutex.contended_acquires, 0u);
    });
}

TEST(Mutex, WakesWaitersInArrivalOrder)
{
    inKernel(smallConfig(8), [](vm::Kernel &kernel, kern::Thread &drv) {
        kern::Mutex mutex("fifo");
        std::vector<int> order;

        // The holder keeps the lock while three waiters queue up in a
        // known order, then releases; the handoff chain must preserve
        // arrival order.
        kern::Thread *holder = kernel.spawnThread(
            nullptr, "holder", [&](kern::Thread &self) {
                mutex.lock(self);
                self.sleep(30 * kMsec);
                mutex.unlock(self);
            });
        std::vector<kern::Thread *> waiters;
        for (int i = 0; i < 3; ++i) {
            // Stagger arrivals decisively.
            kern::Thread *waiter = kernel.spawnThread(
                nullptr, "waiter" + std::to_string(i),
                [&, i](kern::Thread &self) {
                    self.sleep((i + 1) * 3 * kMsec);
                    mutex.lock(self);
                    order.push_back(i);
                    mutex.unlock(self);
                });
            waiters.push_back(waiter);
        }
        drv.join(*holder);
        for (kern::Thread *w : waiters)
            drv.join(*w);
        EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    });
}

TEST(Threads, WakeupOfFinishedThreadIsNoop)
{
    inKernel(smallConfig(), [](vm::Kernel &kernel, kern::Thread &drv) {
        kern::Thread *quick =
            kernel.spawnThread(nullptr, "quick", [](kern::Thread &) {});
        drv.join(*quick);
        kernel.machine().sched().wakeup(*quick); // Must not revive it.
        drv.sleep(10 * kMsec);
        EXPECT_EQ(quick->state(), kern::ThreadState::Done);
    });
}

// ---------------------------------------------------------------------
// RwMutex
// ---------------------------------------------------------------------

TEST(RwMutex, ReadersShareWritersExclude)
{
    inKernel(smallConfig(8), [](vm::Kernel &kernel, kern::Thread &drv) {
        kern::RwMutex rw("test-rw");
        int readers_inside = 0;
        int max_readers = 0;
        bool writer_inside = false;
        bool violation = false;

        std::vector<kern::Thread *> threads;
        for (int i = 0; i < 4; ++i) {
            threads.push_back(kernel.spawnThread(
                nullptr, "r" + std::to_string(i),
                [&](kern::Thread &self) {
                    for (int j = 0; j < 4; ++j) {
                        rw.lockRead(self);
                        if (writer_inside)
                            violation = true;
                        ++readers_inside;
                        max_readers =
                            std::max(max_readers, readers_inside);
                        self.compute(3 * kMsec);
                        --readers_inside;
                        rw.unlockRead(self);
                        self.compute(1 * kMsec);
                    }
                }));
        }
        for (int i = 0; i < 2; ++i) {
            threads.push_back(kernel.spawnThread(
                nullptr, "w" + std::to_string(i),
                [&](kern::Thread &self) {
                    for (int j = 0; j < 3; ++j) {
                        rw.lockWrite(self);
                        if (writer_inside || readers_inside > 0)
                            violation = true;
                        writer_inside = true;
                        self.compute(2 * kMsec);
                        writer_inside = false;
                        rw.unlockWrite(self);
                        self.compute(2 * kMsec);
                    }
                }));
        }
        for (kern::Thread *t : threads)
            drv.join(*t);
        EXPECT_FALSE(violation);
        EXPECT_GT(max_readers, 1) << "readers never overlapped";
        EXPECT_EQ(rw.readers(), 0u);
        EXPECT_FALSE(rw.writeLocked());
    });
}

// ---------------------------------------------------------------------
// SpinLock
// ---------------------------------------------------------------------

TEST(SpinLockTest, RaisesAndRestoresSpl)
{
    inKernel(smallConfig(), [](vm::Kernel &, kern::Thread &drv) {
        kern::SpinLock lock("spl-test", hw::SplDevice);
        EXPECT_EQ(drv.cpu().spl(), hw::Spl0);
        lock.lock(drv.cpu());
        EXPECT_EQ(drv.cpu().spl(), hw::SplDevice);
        EXPECT_TRUE(lock.heldBy(drv.cpu()));
        lock.unlock(drv.cpu());
        EXPECT_EQ(drv.cpu().spl(), hw::Spl0);
        EXPECT_FALSE(lock.locked());
    });
}

TEST(SpinLockTest, ExcludesAcrossCpus)
{
    inKernel(smallConfig(), [](vm::Kernel &kernel, kern::Thread &drv) {
        kern::SpinLock lock("contend", hw::SplDevice);
        int inside = 0;
        bool violated = false;
        std::vector<kern::Thread *> threads;
        for (int i = 0; i < 3; ++i) {
            threads.push_back(kernel.spawnThread(
                nullptr, "s" + std::to_string(i),
                [&](kern::Thread &self) {
                    for (int j = 0; j < 4; ++j) {
                        lock.lock(self.cpu());
                        if (inside != 0)
                            violated = true;
                        ++inside;
                        self.cpu().advanceNoPoll(500 * kUsec);
                        --inside;
                        lock.unlock(self.cpu());
                        self.compute(300 * kUsec);
                    }
                },
                i)); // Pin to distinct CPUs.
        }
        for (kern::Thread *t : threads)
            drv.join(*t);
        EXPECT_FALSE(violated);
    });
}

// ---------------------------------------------------------------------
// Threads and scheduling
// ---------------------------------------------------------------------

TEST(Threads, SleepTakesSimulatedTime)
{
    inKernel(smallConfig(), [](vm::Kernel &kernel, kern::Thread &drv) {
        const Tick before = kernel.machine().now();
        drv.sleep(25 * kMsec);
        EXPECT_GE(kernel.machine().now(), before + 25 * kMsec);
    });
}

TEST(Threads, ComputeConsumesAtLeastRequestedTime)
{
    inKernel(smallConfig(), [](vm::Kernel &kernel, kern::Thread &drv) {
        const Tick before = kernel.machine().now();
        drv.compute(40 * kMsec);
        EXPECT_GE(kernel.machine().now(), before + 40 * kMsec);
    });
}

TEST(Threads, JoinWaitsForCompletion)
{
    inKernel(smallConfig(), [](vm::Kernel &kernel, kern::Thread &drv) {
        bool child_done = false;
        kern::Thread *child = kernel.spawnThread(
            nullptr, "child", [&](kern::Thread &self) {
                self.compute(30 * kMsec);
                child_done = true;
            });
        drv.join(*child);
        EXPECT_TRUE(child_done);
        EXPECT_EQ(child->state(), kern::ThreadState::Done);
    });
}

TEST(Threads, JoinFinishedThreadReturnsImmediately)
{
    inKernel(smallConfig(), [](vm::Kernel &kernel, kern::Thread &drv) {
        kern::Thread *child =
            kernel.spawnThread(nullptr, "quick", [](kern::Thread &) {});
        drv.sleep(50 * kMsec); // Let it finish first.
        drv.join(*child);      // Must not hang.
        SUCCEED();
    });
}

TEST(Threads, ManyJoinersAllWake)
{
    inKernel(smallConfig(), [](vm::Kernel &kernel, kern::Thread &drv) {
        kern::Thread *target = kernel.spawnThread(
            nullptr, "target",
            [](kern::Thread &self) { self.compute(20 * kMsec); });
        int woke = 0;
        std::vector<kern::Thread *> joiners;
        for (int i = 0; i < 5; ++i) {
            joiners.push_back(kernel.spawnThread(
                nullptr, "j" + std::to_string(i),
                [&, target](kern::Thread &self) {
                    self.join(*target);
                    ++woke;
                }));
        }
        for (kern::Thread *j : joiners)
            drv.join(*j);
        EXPECT_EQ(woke, 5);
    });
}

TEST(Threads, AffinityPinsToCpu)
{
    inKernel(smallConfig(4), [](vm::Kernel &kernel, kern::Thread &drv) {
        CpuId observed = 999;
        kern::Thread *pinned = kernel.spawnThread(
            nullptr, "pinned",
            [&](kern::Thread &self) {
                observed = self.cpu().id();
                self.compute(5 * kMsec);
                // Still there after computing.
                observed = self.cpu().id();
            },
            2);
        drv.join(*pinned);
        EXPECT_EQ(observed, 2u);
    });
}

TEST(Threads, LoadSpreadsAcrossCpus)
{
    inKernel(smallConfig(4), [](vm::Kernel &kernel, kern::Thread &drv) {
        std::vector<CpuId> where;
        std::vector<kern::Thread *> threads;
        for (int i = 0; i < 3; ++i) {
            threads.push_back(kernel.spawnThread(
                nullptr, "w" + std::to_string(i),
                [&where](kern::Thread &self) {
                    where.push_back(self.cpu().id());
                    self.compute(30 * kMsec);
                }));
        }
        for (kern::Thread *t : threads)
            drv.join(*t);
        // Three concurrent compute-bound threads must land on three
        // distinct processors.
        std::sort(where.begin(), where.end());
        EXPECT_EQ(std::unique(where.begin(), where.end()) -
                      where.begin(),
                  3);
    });
}

TEST(Threads, TimeshareMoreThreadsThanCpus)
{
    hw::MachineConfig config = smallConfig(1);
    inKernel(config, [](vm::Kernel &kernel, kern::Thread &drv) {
        // Two compute-bound threads on one CPU must both finish
        // (round-robin at quantum boundaries).
        std::vector<kern::Thread *> threads;
        int done = 0;
        for (int i = 0; i < 2; ++i) {
            threads.push_back(kernel.spawnThread(
                nullptr, "t" + std::to_string(i),
                [&done](kern::Thread &self) {
                    self.compute(120 * kMsec);
                    ++done;
                },
                0));
        }
        for (kern::Thread *t : threads)
            drv.join(*t);
        EXPECT_EQ(done, 2);
    });
}

TEST(Threads, IdleFlagTracksActivity)
{
    inKernel(smallConfig(2), [](vm::Kernel &kernel, kern::Thread &drv) {
        drv.sleep(10 * kMsec);
        // While only the driver runs, some CPU must be idle.
        kern::Machine &m = kernel.machine();
        unsigned idle = 0;
        for (CpuId id = 0; id < m.ncpus(); ++id)
            idle += m.cpu(id).idle ? 1 : 0;
        EXPECT_GE(idle, 1u);
    });
}

// ---------------------------------------------------------------------
// Interrupts
// ---------------------------------------------------------------------

TEST(Interrupts, SplMasksAndDeferredDeliveryOnLowering)
{
    inKernel(smallConfig(2), [](vm::Kernel &kernel, kern::Thread &drv) {
        kern::Machine &m = kernel.machine();
        int handled = 0;
        m.setIrqHandler(hw::Irq::Shootdown,
                        [&](kern::Cpu &) { ++handled; });

        kern::Cpu &cpu = drv.cpu();
        const hw::Spl saved = cpu.setSpl(hw::SplHigh);
        m.intr().post(cpu.id(), hw::Irq::Shootdown);
        cpu.advanceNoPoll(1 * kMsec);
        EXPECT_EQ(handled, 0); // Masked.
        cpu.setSpl(saved);     // Lowering polls.
        EXPECT_EQ(handled, 1);
    });
}

TEST(Interrupts, KickWakesSleepingCpuPromptly)
{
    inKernel(smallConfig(2), [](vm::Kernel &kernel, kern::Thread &drv) {
        kern::Machine &m = kernel.machine();
        Tick handled_at = 0;
        m.setIrqHandler(hw::Irq::Shootdown, [&](kern::Cpu &) {
            handled_at = m.now();
        });

        kern::Thread *sleeper = kernel.spawnThread(
            nullptr, "computer",
            [](kern::Thread &self) { self.compute(500 * kMsec); }, 1);
        drv.sleep(5 * kMsec);
        const Tick posted_at = m.now();
        m.intr().post(1, hw::Irq::Shootdown);
        drv.sleep(5 * kMsec);
        EXPECT_GT(handled_at, 0u);
        // Delivered at IPI latency, not at the end of the computation.
        EXPECT_LT(handled_at - posted_at, 1 * kMsec);
        drv.join(*sleeper);
    });
}

TEST(Interrupts, TimerInterruptsFireOnBusyCpus)
{
    hw::MachineConfig config = smallConfig(2);
    inKernel(config, [](vm::Kernel &, kern::Thread &drv) {
        const std::uint64_t before = drv.cpu().interrupts_taken;
        drv.compute(200 * kMsec); // Several timer periods.
        EXPECT_GT(drv.cpu().interrupts_taken, before);
    });
}

TEST(IoDeviceTest, RequestBlocksUntilCompletion)
{
    inKernel(smallConfig(2), [](vm::Kernel &kernel, kern::Thread &drv) {
        const Tick before = kernel.machine().now();
        kernel.io().request(drv, 30 * kMsec);
        EXPECT_GE(kernel.machine().now(), before + 30 * kMsec);
        EXPECT_EQ(kernel.io().completions, 1u);
    });
}

TEST(IoDeviceTest, ConcurrentRequestsAllComplete)
{
    inKernel(smallConfig(4), [](vm::Kernel &kernel, kern::Thread &drv) {
        std::vector<kern::Thread *> threads;
        for (int i = 0; i < 6; ++i) {
            threads.push_back(kernel.spawnThread(
                nullptr, "io" + std::to_string(i),
                [&kernel, i](kern::Thread &self) {
                    kernel.io().request(self,
                                        (10 + 7 * i) * kMsec);
                }));
        }
        for (kern::Thread *t : threads)
            drv.join(*t);
        EXPECT_EQ(kernel.io().completions, 6u);
    });
}

} // namespace
} // namespace mach
