/**
 * @file
 * Quickstart: bring up a simulated 16-processor Multimax, run two
 * threads of one task in parallel, and watch a TLB shootdown happen
 * when one thread write-protects memory the other is using.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "pmap/shootdown.hh"
#include "vm/kernel.hh"
#include "xpr/analysis.hh"

using namespace mach;

int
main()
{
    // A 16-CPU machine with the paper's calibrated timing model.
    hw::MachineConfig config;
    vm::Kernel kernel(config);
    kernel.start();

    kernel.spawnThread(nullptr, "driver", [&](kern::Thread &driver) {
        vm::Task *task = kernel.createTask("demo");

        VAddr buffer = 0;
        bool stop = false;

        // Thread A: maps a buffer and keeps reading and writing it.
        kern::Thread *worker = kernel.spawnThread(
            task, "worker", [&](kern::Thread &self) {
                const bool ok = kernel.vmAllocate(self, *task, &buffer,
                                                  4 * kPageSize, true);
                if (!ok)
                    fatal("vm_allocate failed");
                std::printf("[worker]  allocated 4 pages at 0x%08x\n",
                            buffer);
                std::uint32_t ticks = 0;
                while (!stop) {
                    if (!self.store32(buffer, ++ticks)) {
                        std::printf("[worker]  write faulted after "
                                    "%u stores: the page went "
                                    "read-only under me\n",
                                    ticks);
                        break;
                    }
                    self.compute(2 * kMsec);
                }
            });

        // Thread B: after a while, write-protects the buffer. Because
        // the worker runs on another processor with live TLB entries,
        // this operation must shoot them down.
        kern::Thread *protector = kernel.spawnThread(
            task, "protector", [&](kern::Thread &self) {
                self.sleep(50 * kMsec);
                std::printf("[protect] reprotecting the buffer "
                            "read-only at t=%llu us\n",
                            static_cast<unsigned long long>(
                                kernel.machine().ctx().nowUsec()));
                kernel.vmProtect(self, *task, buffer, 4 * kPageSize,
                                 ProtRead);
                std::printf("[protect] done; any stale TLB entry on "
                            "the worker's processor has been shot "
                            "down\n");
                // Backstop only: the worker's next store faults and
                // ends its loop on its own.
                self.sleep(100 * kMsec);
                stop = true;
            });

        driver.join(*worker);
        driver.join(*protector);
        kernel.machine().ctx().requestStop();
    });

    kernel.machine().run();

    // What did the instrumentation see?
    const xpr::RunAnalysis analysis = xpr::analyze(kernel.machine().xpr());
    std::printf("\nxpr: %llu user-pmap shootdown(s), initiator mean "
                "%.0f us, %.0f processor(s) shot at\n",
                static_cast<unsigned long long>(
                    analysis.user_initiator.events),
                analysis.user_initiator.time_usec.mean(),
                analysis.user_initiator.procs.mean());
    std::printf("machine-wide TLB consistency audit: %s\n",
                kernel.pmaps().auditTlbConsistency().empty()
                    ? "clean"
                    : "VIOLATIONS");
    return 0;
}
