#include "dev/dma_device.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/trace.hh"
#include "hw/bus.hh"
#include "kern/machine.hh"
#include "pmap/pmap.hh"
#include "pmap/shootdown.hh"
#include "sim/context.hh"

namespace mach::dev
{

DmaDevice::DmaDevice(kern::Machine &machine, pmap::PmapSystem &pmaps,
                     unsigned index)
    : machine_(machine), pmaps_(pmaps), index_(index),
      id_(machine.ncpus() + index),
      node_(machine.cfg().nodeOfDevice(index)),
      iotlb_(&machine.cfg(), &machine.mem(),
             machine.cfg().iotlb_entries)
{
}

std::string
DmaDevice::describe() const
{
    return "dev" + std::to_string(index_);
}

void
DmaDevice::requestDrain()
{
    if (!in_flight_ || drain_requested_)
        return;
    drain_requested_ = true;
    // transfer_end_ == 0: the operation is still in its translation
    // phase; the flag alone aborts it before any transfer starts.
    if (transfer_end_ != 0) {
        deadline_ =
            std::min(transfer_end_,
                     machine_.now() + machine_.cfg().dev_drain_bound);
    }
    MACH_TRACE_LOG(Shootdown, machine_.now(),
                   "dev%u drain requested (transfer ends %llu, "
                   "deadline %llu)",
                   index_,
                   static_cast<unsigned long long>(transfer_end_),
                   static_cast<unsigned long long>(deadline_));
}

void
DmaDevice::drainPending()
{
    pmap::CpuShootState &st = pmaps_.shoot().stateFor(id_);
    if (!st.action_needed)
        return;
    const hw::MachineConfig &cfg = machine_.cfg();
    ++drains;

    // The whole drain -- applying the invalidations, clearing the
    // queue, the overflow flag and the action-needed flag -- happens
    // at one simulated instant; only then is the accumulated cost
    // slept. That atomicity is what makes skipping the action lock
    // safe: an initiator's queueAction mutates the queue within one
    // instant too, so every interleaving sees either a fully queued
    // action or none. The planted chk_skip_iotlb_invalidate bug skips
    // the invalidations themselves but still clears the flags and
    // charges the cost -- the protocol looks healthy from the
    // initiator's side while stale entries survive in the IOTLB.
    Tick cost = 0;
    if (st.overflow) {
        if (!cfg.chk_skip_iotlb_invalidate)
            iotlb_.flushAll();
        cost += cfg.tlb_flush_cost;
        st.overflow = false;
    } else {
        for (const pmap::ShootAction &action : st.queue) {
            if (action.pmap == nullptr)
                continue; // Nulled by purgePmap; overflow covers it.
            const unsigned npages = action.end - action.start;
            if (npages > cfg.tlb_flush_threshold) {
                if (!cfg.chk_skip_iotlb_invalidate)
                    iotlb_.flushAll();
                cost += cfg.tlb_flush_cost;
            } else {
                if (!cfg.chk_skip_iotlb_invalidate) {
                    iotlb_.invalidateRange(action.pmap->space(),
                                           action.start, action.end);
                }
                cost += cfg.tlb_invalidate_cost * npages;
            }
        }
    }
    st.queue.clear();
    st.action_needed = false;
    if (cost > 0)
        machine_.ctx().sleep(cost);
}

DmaDevice::Xlate
DmaDevice::translate(pmap::Pmap &pmap, Vpn vpn, bool write, Pfn *pfn)
{
    const hw::MachineConfig &cfg = machine_.cfg();
    sim::Context &ctx = machine_.ctx();
    const Prot want = write ? ProtWrite : ProtRead;

    ctx.sleep(cfg.iotlb_lookup_cost);
    if (drain_requested_)
        return Xlate::Aborted;
    // pte_addr 0: the IOTLB never writes ref/mod bits back on a hit --
    // the walker maintains them interlocked at fill time, so device
    // translations are writeback-safe by construction (the Section 9
    // interlocked-update option; what real IOMMUs implement).
    const hw::TlbLookup look =
        iotlb_.lookup(pmap.space(), vpn, want, 0);
    if (look.hit && look.prot_ok) {
        *pfn = look.pfn;
        return Xlate::Ok;
    }

    // IOMMU walk. Like a software-reload miss handler, the walker
    // stalls while the pmap is mid-update, so it can never re-cache a
    // PTE the initiator is in the middle of changing. A drain request
    // aborts the stall: the initiator may be spinning on inFlight()
    // while HOLDING the lock (its shootdown runs inside its pmap
    // update), so waiting it out here would deadlock.
    if (pmap.locked()) {
        hw::Bus::User bus_user(machine_.bus(node_));
        while (pmap.locked()) {
            if (drain_requested_)
                return Xlate::Aborted;
            ctx.sleep(cfg.spin_quantum);
        }
    }
    if (drain_requested_)
        return Xlate::Aborted;

    // The PTE read, the interlocked ref/mod update, and the IOTLB fill
    // all happen at one instant (cf. the identical reasoning in
    // kern::Cpu::access); the walk latency is slept afterwards.
    const hw::WalkResult walk = pmap.table().walk(vpn, node_);
    const Prot pte_prot = hw::pte::prot(walk.pte);
    hw::Bus &bus = machine_.bus(node_);
    Tick cost = cfg.iommu_walk_cost_per_level * walk.memory_reads +
                bus.accessCost(walk.memory_reads);
    if (!hw::pte::valid(walk.pte) || !protAllows(pte_prot, want)) {
        // Devices cannot page fault; the operation is dropped and the
        // driver is expected to have wired the buffer.
        ++dma_faults;
        ctx.sleep(cost);
        return Xlate::Fault;
    }
    ++iommu_walks;
    std::uint32_t updated = walk.pte | hw::pte::kRef;
    if (write)
        updated |= hw::pte::kMod;
    if (updated != walk.pte) {
        const PAddr addr = pmap.table().pteAddr(vpn, node_);
        if (addr != 0)
            machine_.mem().write32(addr, updated);
    }
    iotlb_.insert(pmap.space(), vpn, hw::pte::pfn(walk.pte), pte_prot,
                  write);
    ctx.sleep(cost);
    if (drain_requested_)
        return Xlate::Aborted;
    *pfn = hw::pte::pfn(walk.pte);
    return Xlate::Ok;
}

bool
DmaDevice::dmaRead(pmap::Pmap &pmap, Vpn vpn)
{
    drainPending();
    // The wire is busy for the whole operation, translation included:
    // an initiator that revokes concurrently spins until the clear,
    // so no operation begun before a revoke consumes memory after the
    // revoke completed (see the file comment in dev/dma_device.hh).
    MACH_ASSERT(!in_flight_);
    in_flight_ = true;
    drain_requested_ = false;
    transfer_end_ = 0;
    Pfn pfn = 0;
    const Xlate xl = translate(pmap, vpn, /*write=*/false, &pfn);
    if (xl != Xlate::Ok) {
        // A revocation racing the translation drops the read rather
        // than consuming a translation the initiator is revoking.
        if (xl == Xlate::Aborted)
            ++dma_aborts;
        in_flight_ = false;
        drain_requested_ = false;
        drainPending();
        return false;
    }
    ++dma_reads;
    hw::Bus &bus = machine_.bus(node_);
    const Tick cost = bus.accessCost();
    (void)machine_.mem().read32(static_cast<PAddr>(pfn)
                                << kPageShift);
    machine_.ctx().sleep(cost);
    in_flight_ = false;
    drain_requested_ = false;
    drainPending();
    return true;
}

bool
DmaDevice::dmaWrite(pmap::Pmap &pmap, Vpn vpn, unsigned offset,
                    std::uint32_t value)
{
    drainPending();
    // In-flight from the first translation cycle, not just the
    // transfer: a revoke landing inside the IOMMU walk's latency
    // window would otherwise complete without waiting, and the
    // transfer would then commit through the just-revoked mapping.
    // Only one operation at a time per device.
    MACH_ASSERT(!in_flight_);
    in_flight_ = true;
    drain_requested_ = false;
    transfer_end_ = 0;
    Pfn pfn = 0;
    const Xlate xl = translate(pmap, vpn, /*write=*/true, &pfn);
    if (xl != Xlate::Ok) {
        if (xl == Xlate::Aborted)
            ++dma_aborts;
        in_flight_ = false;
        drain_requested_ = false;
        drainPending();
        return false;
    }
    ++dma_writes;

    const hw::MachineConfig &cfg = machine_.cfg();
    sim::Context &ctx = machine_.ctx();

    // The transfer occupies the wire until transfer_end_, paced in
    // spin-quantum steps so a drain request (which pulls deadline_ in)
    // is honoured within one quantum.
    transfer_end_ = ctx.now() + cfg.dev_transfer_cost;
    deadline_ = transfer_end_;
    while (ctx.now() < deadline_) {
        const Tick remaining = deadline_ - ctx.now();
        ctx.sleep(std::min<Tick>(remaining, cfg.spin_quantum));
    }
    const bool aborted = ctx.now() < transfer_end_;
    if (aborted) {
        // The revoke won the race: nothing lands in memory. The
        // healthy protocol depends on this -- a commit here would go
        // through the translation the initiator is revoking.
        ++dma_aborts;
        MACH_TRACE_LOG(Shootdown, machine_.now(),
                       "dev%u aborts DMA write to vpn 0x%x", index_,
                       vpn);
    } else {
        machine_.mem().write32((static_cast<PAddr>(pfn) << kPageShift) |
                                   (offset & kPageMask & ~3u),
                               value);
        ++writes_committed;
    }
    in_flight_ = false;
    drain_requested_ = false;
    transfer_end_ = 0;
    // Drain at the completion instant: the initiator's device-sync
    // spin exits the moment in_flight_ clears, and the stale IOTLB
    // entry must be gone by then.
    drainPending();
    return !aborted;
}

void
DmaDevice::attachTo(pmap::Pmap &pmap)
{
    pmap.attachDevice(id_);
}

void
DmaDevice::detachFrom(pmap::Pmap &pmap)
{
    // Drain until the flag stays clear at a check instant, then flush
    // and detach with no time passing in between -- afterwards no
    // initiator queues at us for this space and no entry of it
    // survives.
    pmap::CpuShootState &st = pmaps_.shoot().stateFor(id_);
    do {
        drainPending();
    } while (st.action_needed);
    iotlb_.flushSpace(pmap.space());
    pmap.detachDevice(id_);
}

void
DmaDevice::startStream(const DmaStream &stream)
{
    MACH_ASSERT(!streaming_);
    MACH_ASSERT(stream.pmap != nullptr);
    streaming_ = true;
    stop_ = false;
    beat_ = 0;
    stream_ = stream;
    attachTo(*stream_.pmap);
    machine_.ctx().spawn(describe() + "-stream",
                         [this] { streamBody(); });
}

void
DmaDevice::streamBody()
{
    sim::Context &ctx = machine_.ctx();
    while (!stop_ && (stream_.beats == 0 || beat_ < stream_.beats)) {
        // One beat: a DMA write into the target page (the entry the
        // revocation races against), then a read sweep over the decoy
        // pages that evicts the target's IOTLB entry, so the next
        // beat walks afresh.
        dmaWrite(*stream_.pmap, stream_.target,
                 static_cast<unsigned>((beat_ * 4) & kPageMask),
                 static_cast<std::uint32_t>(beat_ + 1));
        // Bump the beat before the sweep (cf. broken-l0's signal): a
        // scenario driver keying a revoke off the beat plus a margin
        // lands it long after the sweep evicted the target's entry --
        // unless a perturbation parks us inside the sweep.
        ++beat_;
        for (unsigned i = 0; i < stream_.decoys && !stop_; ++i)
            dmaRead(*stream_.pmap, stream_.decoy_base + i);
        if (stream_.gap > 0)
            ctx.sleep(stream_.gap);
    }
    detachFrom(*stream_.pmap);
    streaming_ = false;
}

} // namespace mach::dev
