/**
 * @file
 * The physical map (pmap) module -- the machine-dependent half of the
 * Mach VM system (Section 2).
 *
 * A Pmap owns one two-level page table plus the bookkeeping the
 * shootdown algorithm needs: the set of processors using the pmap and
 * an exclusive lock. The machine-independent VM layer invokes validate /
 * invalidate / protection-change operations on virtual ranges and
 * physical pages; it is up to this module to decide when and how TLB
 * consistency actions are carried out (policy-mechanism separation).
 *
 * Pmaps are lazily updated: the VM system keeps all authoritative
 * mapping state in machine-independent structures and only calls enter()
 * from the page-fault path, so a pmap usually presents an incomplete
 * view of valid memory. That laziness is what makes the lazy-evaluation
 * check pay off (Table 1): operations on never-touched ranges find no
 * valid PTEs and skip the shootdown entirely, because TLBs do not cache
 * invalid mappings.
 */

#ifndef MACH_PMAP_PMAP_HH
#define MACH_PMAP_PMAP_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/cpuset.hh"
#include "base/types.hh"
#include "hw/page_table.hh"
#include "hw/tlb.hh"
#include "kern/lock.hh"
#include "kern/machine.hh"
#include "kern/thread.hh"

namespace mach::pmap
{

class PmapSystem;
class ShootdownController;

/** One address space's physical map. */
class Pmap
{
  public:
    Pmap(PmapSystem *sys, bool is_kernel);
    ~Pmap();

    Pmap(const Pmap &) = delete;
    Pmap &operator=(const Pmap &) = delete;

    bool isKernel() const { return is_kernel_; }
    /** TLB tag for this address space. */
    hw::SpaceId space() const { return space_; }

    hw::PageTable &table() { return table_; }
    const hw::PageTable &table() const { return table_; }

    /** True while a processor holds the pmap's exclusive lock. */
    bool locked() const { return lock_.locked(); }

    // ---- Operations invoked by the machine-independent VM layer ----
    // All run in the calling thread's context and consume simulated
    // time; all follow the Figure 1 initiator protocol when a TLB
    // inconsistency could result.

    /**
     * Establish a mapping vpn -> pfn with @p prot. Replacing or
     * downgrading an existing valid mapping is treated as a potential
     * inconsistency; creating a brand-new mapping is not (TLBs do not
     * cache invalid entries).
     */
    void enter(kern::Thread &thread, Vpn vpn, Pfn pfn, Prot prot,
               bool wired = false);

    /** Invalidate all mappings in [start, end). */
    void remove(kern::Thread &thread, Vpn start, Vpn end);

    /**
     * Set protection on [start, end). Reductions follow the shootdown
     * protocol; pure increases update PTEs without consistency actions
     * (temporary inconsistency is harmless when protection increases --
     * the technique-3 optimization of Section 3).
     */
    void protect(kern::Thread &thread, Vpn start, Vpn end, Prot prot);

    /**
     * Reduce protection on (or remove, when @p prot is ProtNone) every
     * mapping of physical page @p pfn, in whatever pmaps it appears --
     * the pageout path. Returns true when any mapping had the modify
     * bit set.
     */
    static bool pageProtect(PmapSystem &sys, kern::Thread &thread,
                            Pfn pfn, Prot prot);

    /**
     * Throw away all leaf page tables. The pmap is reconstructed from
     * scratch by subsequent page faults (Section 2).
     */
    void collect(kern::Thread &thread);

    // ---- Processor bookkeeping --------------------------------------

    /** This pmap is now translating on @p cpu. */
    void activate(kern::Cpu &cpu);
    /**
     * This pmap stops translating on @p cpu. On hardware without
     * address-space tags the whole TLB is flushed (Multimax behaviour);
     * with tags the entries -- and therefore the in-use bit -- persist
     * until explicitly flushed (Section 10 extension).
     */
    void deactivate(kern::Cpu &cpu);

    bool inUse(CpuId id) const { return in_use_.test(id); }
    /** Set of processors currently using this pmap. */
    const CpuSet &users() const { return in_use_; }
    /** True when any processor other than @p self uses this pmap. */
    bool othersUsing(CpuId self) const;
    /** Number of processors using this pmap. */
    unsigned useCount() const { return in_use_.count(); }

    /** Clear the in-use bit after an explicit full flush (ASID mode). */
    void clearInUse(CpuId id) { in_use_.clear(id); }

    // ---- Device bookkeeping -----------------------------------------
    // DMA-capable devices occupy the tail of the responder id space
    // (ids >= ncpus, see pmap/responder.hh). The in-use set carries
    // CPU and device bits alike, so othersUsing() triggers the
    // shootdown protocol even when only a device's IOTLB still caches
    // the space.

    /** Device @p id starts caching this space in its IOTLB. */
    void attachDevice(CpuId id) { in_use_.set(id); }
    /**
     * Device @p id stops caching this space. The caller must have
     * drained pending actions and flushed the space from the IOTLB
     * first (dev::DmaDevice::detachFrom does both).
     */
    void detachDevice(CpuId id) { in_use_.clear(id); }

    // ---- Statistics --------------------------------------------------

    std::uint64_t ops = 0;
    std::uint64_t shootdowns_initiated = 0;
    std::uint64_t shootdowns_avoided_lazy = 0;

  private:
    friend class ShootdownController;
    friend class PmapSystem;

    /**
     * The Figure 1 initiator skeleton: disable interrupts, leave the
     * active set, take the pmap lock, decide whether an inconsistent
     * TLB may result (the lazy-evaluation check), run the shootdown
     * phases if so, apply @p change (phase 3), then unlock, rejoin the
     * active set and restore the interrupt state (which services any
     * shootdowns queued at us meanwhile).
     *
     * @p reduces must be true when the change invalidates mappings or
     * reduces protection; only such changes can create inconsistencies.
     */
    template <typename Fn>
    void updateMappings(kern::Thread &thread, Vpn start, Vpn end,
                        bool reduces, Fn &&change);

    /** Lazy-evaluation check: could this range be cached in any TLB? */
    bool mayBeCached(kern::Cpu &cpu, Vpn start, Vpn end,
                     unsigned *mapped_pages);

    PmapSystem *sys_;
    bool is_kernel_;
    hw::SpaceId space_;
    hw::PageTable table_;
    kern::SpinLock lock_;
    CpuSet in_use_;
    /** Watermarks of ever-entered vpns; bound collect()'s scan range. */
    Vpn low_water_ = ~Vpn{0};
    Vpn high_water_ = 0;
};

/** A physical-to-virtual (pv) mapping record for pageProtect. */
struct PvEntry
{
    Pmap *pmap;
    Vpn vpn;
};

/**
 * Machine-wide pmap state: the kernel pmap, the shootdown controller,
 * space-id allocation, and the pv table. Install exactly one per
 * Machine; it registers the shootdown interrupt handler and the
 * idle-exit hook.
 */
class PmapSystem
{
  public:
    explicit PmapSystem(kern::Machine &machine);
    ~PmapSystem();

    kern::Machine &machine() { return machine_; }
    Pmap &kernelPmap() { return *kernel_pmap_; }
    ShootdownController &shoot() { return *shoot_; }

    /** Create a user pmap. */
    std::unique_ptr<Pmap> createPmap();

    // ---- pv table ----------------------------------------------------

    void pvAdd(Pfn pfn, Pmap *pmap, Vpn vpn);
    void pvRemove(Pfn pfn, Pmap *pmap, Vpn vpn);
    const std::vector<PvEntry> &pvList(Pfn pfn) const;

    /** Pmap registered under a TLB space id (null when destroyed). */
    Pmap *pmapForSpace(hw::SpaceId space) const;

    /**
     * Audit every TLB on the machine against the current page tables:
     * a cached entry must never grant rights its PTE does not. Returns
     * human-readable descriptions of violations (empty = consistent).
     * Meaningful only at quiescent points (no pmap operation in
     * flight); used by the property tests and the Section 5.1 tester.
     */
    std::vector<std::string> auditTlbConsistency() const;

    /**
     * True while any pmap's exclusive lock is held, i.e. some pmap
     * operation is in flight somewhere on the machine. The checker's
     * oracle uses this to restrict audits to quiescent instants.
     */
    bool anyPmapLocked() const;

    /**
     * Install (or clear) a host-side hook invoked after every completed
     * pmap mapping operation (enter/remove/protect/collect), on the
     * initiator's fiber, once the pmap is unlocked and the initiator
     * has rejoined the active set. Consumes no simulated time; the
     * checker's stale-translation oracle lives here.
     */
    using PostOpHook = std::function<void(Pmap &)>;
    void setPostOpHook(PostOpHook hook) { post_op_hook_ = std::move(hook); }

  private:
    friend class Pmap;

    kern::Machine &machine_;
    std::unique_ptr<ShootdownController> shoot_;
    std::unique_ptr<Pmap> kernel_pmap_;
    hw::SpaceId next_space_ = 1;
    std::unordered_map<Pfn, std::vector<PvEntry>> pv_;
    std::vector<PvEntry> empty_pv_;
    std::unordered_map<hw::SpaceId, Pmap *> spaces_;
    PostOpHook post_op_hook_;
};

} // namespace mach::pmap

#endif // MACH_PMAP_PMAP_HH
