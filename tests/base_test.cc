/**
 * @file
 * Unit tests for base utilities: statistics and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.hh"
#include "base/stats.hh"
#include "base/types.hh"

namespace mach
{
namespace
{

TEST(Sample, EmptySampleIsBenign)
{
    Sample s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.median(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Sample, SingleValue)
{
    Sample s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.median(), 42.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 42.0);
}

TEST(Sample, MeanAndStddevMatchHandComputation)
{
    Sample s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample (n-1) standard deviation of the classic data set.
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Sample, PercentilesInterpolate)
{
    Sample s;
    for (int i = 1; i <= 5; ++i)
        s.add(i); // 1..5
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.25), 2.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.1), 1.4);
    EXPECT_DOUBLE_EQ(s.percentile(0.9), 4.6);
}

TEST(Sample, PercentileUnsortedInput)
{
    Sample s;
    for (double v : {9.0, 1.0, 5.0, 3.0, 7.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.median(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Sample, SkewedLowDetectsLongUpperTail)
{
    Sample skewed;
    for (int i = 0; i < 90; ++i)
        skewed.add(100.0 + i * 0.1);
    for (int i = 0; i < 10; ++i)
        skewed.add(1000.0 + 100.0 * i);
    EXPECT_TRUE(skewed.skewedLow());

    // A long *lower* tail is decisively not skewed-low.
    Sample lower_tail;
    for (int i = 0; i < 90; ++i)
        lower_tail.add(1000.0 - i * 0.1);
    for (int i = 0; i < 10; ++i)
        lower_tail.add(10.0 * i);
    EXPECT_FALSE(lower_tail.skewedLow());
}

TEST(Sample, ResetClearsEverything)
{
    Sample s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(Sample, MeanStdFormatting)
{
    Sample s;
    s.add(10.0);
    s.add(20.0);
    EXPECT_EQ(s.meanStd(0), "15+-7");
}

TEST(Sample, InterleavedAddAndQuery)
{
    // The sorted cache must invalidate correctly on further adds.
    Sample s;
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.median(), 10.0);
    s.add(20.0);
    EXPECT_DOUBLE_EQ(s.median(), 15.0);
    s.add(0.0);
    EXPECT_DOUBLE_EQ(s.median(), 10.0);
}

TEST(LeastSquares, ExactLine)
{
    std::vector<double> xs, ys;
    for (int i = 1; i <= 12; ++i) {
        xs.push_back(i);
        ys.push_back(430.0 + 55.0 * i);
    }
    const LinearFit fit = leastSquares(xs, ys);
    EXPECT_NEAR(fit.intercept, 430.0, 1e-9);
    EXPECT_NEAR(fit.slope, 55.0, 1e-9);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LeastSquares, NoisyLineRecoversTrend)
{
    Rng rng(7);
    std::vector<double> xs, ys;
    for (int i = 0; i < 200; ++i) {
        const double x = static_cast<double>(i) / 10.0;
        xs.push_back(x);
        ys.push_back(3.0 + 2.0 * x + (rng.uniform() - 0.5));
    }
    const LinearFit fit = leastSquares(xs, ys);
    EXPECT_NEAR(fit.slope, 2.0, 0.05);
    EXPECT_NEAR(fit.intercept, 3.0, 0.3);
    EXPECT_GT(fit.r2, 0.99);
}

TEST(LeastSquares, FlatData)
{
    const LinearFit fit =
        leastSquares({1.0, 2.0, 3.0}, {5.0, 5.0, 5.0});
    EXPECT_NEAR(fit.slope, 0.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
    EXPECT_DOUBLE_EQ(fit.r2, 1.0);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(99);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng rng(5);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 10000; ++i)
        ++seen[rng.below(8)];
    for (int count : seen)
        EXPECT_GT(count, 10000 / 16); // Roughly uniform.
}

TEST(Rng, RangeInclusive)
{
    Rng rng(4);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.range(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean)
{
    Rng rng(31);
    double sum = 0;
    for (int i = 0; i < 20000; ++i)
        sum += rng.exponential(7.0);
    EXPECT_NEAR(sum / 20000.0, 7.0, 0.25);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng rng(77);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng rng(55);
    const auto first = rng.next();
    rng.next();
    rng.reseed(55);
    EXPECT_EQ(rng.next(), first);
}

using BaseDeathTest = ::testing::Test;

TEST(BaseDeathTest, LeastSquaresPanicsOnDegenerateX)
{
    EXPECT_DEATH(leastSquares({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0}),
                 "identical");
}

TEST(BaseDeathTest, RngBelowZeroAsserts)
{
    Rng rng(1);
    EXPECT_DEATH(rng.below(0), "assertion");
}

TEST(Types, PageArithmetic)
{
    EXPECT_EQ(pageTrunc(0x12345), 0x12000u);
    EXPECT_EQ(pageRound(0x12345), 0x13000u);
    EXPECT_EQ(pageRound(0x12000), 0x12000u);
    EXPECT_EQ(vaToVpn(0x12345), 0x12u);
    EXPECT_EQ(vpnToVa(0x12), 0x12000u);
}

TEST(Types, ProtPredicates)
{
    EXPECT_TRUE(protAllows(ProtReadWrite, ProtRead));
    EXPECT_TRUE(protAllows(ProtReadWrite, ProtWrite));
    EXPECT_FALSE(protAllows(ProtRead, ProtWrite));
    EXPECT_TRUE(protAllows(ProtNone, ProtNone));
    EXPECT_FALSE(protAllows(ProtNone, ProtRead));

    EXPECT_TRUE(protReduces(ProtReadWrite, ProtRead));
    EXPECT_TRUE(protReduces(ProtRead, ProtNone));
    EXPECT_FALSE(protReduces(ProtRead, ProtReadWrite));
    EXPECT_FALSE(protReduces(ProtRead, ProtRead));
}

} // namespace
} // namespace mach
