#include "base/trace.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mach::trace
{

std::uint32_t g_mask = None;

namespace
{
std::function<void(const std::string &)> g_sink;

const char *
categoryName(Category category)
{
    switch (category) {
      case Shootdown:
        return "shootdown";
      case Pmap:
        return "pmap";
      case Vm:
        return "vm";
      case Sched:
        return "sched";
      case Intr:
        return "intr";
      default:
        return "trace";
    }
}
} // namespace

void
enable(std::uint32_t categories)
{
    g_mask |= categories;
}

void
disable(std::uint32_t categories)
{
    g_mask &= ~categories;
}

void
setMask(std::uint32_t categories)
{
    g_mask = categories;
}

std::uint32_t
mask()
{
    return g_mask;
}

void
setSink(std::function<void(const std::string &)> sink)
{
    g_sink = std::move(sink);
}

std::uint32_t
parseCategories(const std::string &spec)
{
    std::uint32_t result = None;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string word = spec.substr(pos, comma - pos);
        if (word == "shootdown")
            result |= Shootdown;
        else if (word == "pmap")
            result |= Pmap;
        else if (word == "vm")
            result |= Vm;
        else if (word == "sched")
            result |= Sched;
        else if (word == "intr")
            result |= Intr;
        else if (word == "all")
            result |= All;
        pos = comma + 1;
    }
    return result;
}

void
initFromEnvironment()
{
    const char *spec = std::getenv("MACH_TRACE");
    if (spec != nullptr && *spec != '\0')
        enable(parseCategories(spec));
}

void
log(Category category, Tick now, const char *fmt, ...)
{
    char body[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(body, sizeof(body), fmt, ap);
    va_end(ap);

    char line[600];
    std::snprintf(line, sizeof(line), "%10llu us [%s] %s",
                  static_cast<unsigned long long>(now / kUsec),
                  categoryName(category), body);

    if (g_sink)
        g_sink(line);
    else
        std::fprintf(stderr, "%s\n", line);
}

} // namespace mach::trace
