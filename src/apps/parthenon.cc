#include "apps/parthenon.hh"

#include <deque>
#include <vector>

#include "base/logging.hh"

namespace mach::apps
{

namespace
{
/** One unit of proof search. */
struct WorkItem
{
    Tick cost;
    unsigned depth;
};
} // namespace

void
Parthenon::run(vm::Kernel &kernel, kern::Thread &driver)
{
    vm::Task *task = kernel.createTask("parthenon");
    Rng rng(params_.seed);

    for (unsigned run = 0; run < params_.runs; ++run) {
        // Central workpile (host-side state guarded by a kernel mutex).
        kern::Mutex pile_lock("workpile");
        std::deque<WorkItem> pile;
        unsigned outstanding = 0;
        for (unsigned i = 0; i < params_.seed_items; ++i) {
            pile.push_back({Tick(rng.exponential(70.0) * kMsec),
                            params_.depth});
        }

        // The run's workpile control block lives in (touched) kernel
        // memory; its free at the end of the run is one of the few
        // kernel shootdowns Parthenon causes even with lazy evaluation.
        kern::Thread *main_thread = kernel.spawnThread(
            task, "parthenon-main" + std::to_string(run),
            [&, run](kern::Thread &self) {
                const VAddr pile_buf =
                    kernel.kmemAlloc(self, 2 * kPageSize);
                const bool stored = self.store32(pile_buf, run + 1);
                MACH_ASSERT(stored);

                unsigned next_worker = 0;
                auto worker_body = [&](kern::Thread &worker) {
                    Rng wrng(params_.seed + run * 7919 +
                             104729 * ++next_worker);
                    (void)worker;
                    for (;;) {
                        pile_lock.lock(worker);
                        if (pile.empty() && outstanding == 0) {
                            pile_lock.unlock(worker);
                            break;
                        }
                        if (pile.empty()) {
                            pile_lock.unlock(worker);
                            worker.sleep(4 * kMsec);
                            continue;
                        }
                        WorkItem item = pile.front();
                        pile.pop_front();
                        ++outstanding;
                        pile_lock.unlock(worker);

                        worker.compute(item.cost);
                        ++items_processed;

                        // Hold intermediate results in fresh memory
                        // (allocated as needed, never deallocated).
                        if (wrng.chance(0.25)) {
                            VAddr res = 0;
                            const bool got = kernel.vmAllocate(
                                worker, *worker.task(), &res,
                                static_cast<std::uint32_t>(
                                    wrng.range(1, 3)) *
                                    kPageSize,
                                true);
                            if (got)
                                worker.store32(res, 0x4e5317);
                        }

                        pile_lock.lock(worker);
                        if (item.depth > 0) {
                            const unsigned kids =
                                static_cast<unsigned>(wrng.range(0, 2));
                            for (unsigned c = 0; c < kids; ++c) {
                                pile.push_back(
                                    {Tick(wrng.exponential(50.0) * kMsec),
                                     item.depth - 1});
                            }
                        }
                        --outstanding;
                        pile_lock.unlock(worker);
                    }
                };

                // Start the workers, paying the cthread stack-setup
                // protocol for each: allocate an aligned stack region,
                // reserve the first page for private data, reprotect
                // the second page to no-access as a guard.
                std::vector<kern::Thread *> workers;
                std::vector<std::pair<VAddr, VAddr>> thread_mem;
                for (unsigned w = 0; w < params_.workers; ++w) {
                    const Tick t0 = kernel.machine().now();
                    VAddr stack = 0;
                    bool ok = kernel.vmAllocate(self, *task, &stack,
                                                16 * kPageSize, true);
                    MACH_ASSERT(ok);
                    ok = self.store32(stack, 0x7712ead0 + w);
                    MACH_ASSERT(ok);
                    kernel.vmProtect(self, *task, stack + kPageSize,
                                     kPageSize, ProtNone);
                    const VAddr control =
                        kernel.kmemAlloc(self, 2 * kPageSize);
                    thread_startup_total += kernel.machine().now() - t0;

                    thread_mem.push_back({stack, control});
                    workers.push_back(kernel.spawnThread(
                        task, "prover" + std::to_string(w),
                        worker_body));
                }

                // Mid-run: recycle the touched pile buffer while the
                // workers are all busy proving -- the occasional
                // kernel shootdown Parthenon causes even with lazy
                // evaluation on.
                self.sleep(150 * kMsec);
                kernel.kmemFree(self, pile_buf, 2 * kPageSize);

                for (kern::Thread *worker : workers)
                    self.join(*worker);

                // Teardown: release the per-thread control blocks
                // (never touched, so lazily skipped) and the stacks.
                for (auto &[stack, control] : thread_mem) {
                    kernel.kmemFree(self, control, 2 * kPageSize);
                    kernel.vmDeallocate(self, *task, stack,
                                        16 * kPageSize);
                }
            });

        driver.join(*main_thread);
    }
}

} // namespace mach::apps
