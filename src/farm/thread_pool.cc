#include "farm/thread_pool.hh"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <utility>

#include "base/logging.hh"

namespace mach::farm
{

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = 1;
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        shutdown_ = true;
    }
    work_ready_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(Job job)
{
    MACH_ASSERT(job != nullptr);
    unsigned target;
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        MACH_ASSERT(!shutdown_);
        target = next_deque_;
        next_deque_ = (next_deque_ + 1) % workers_.size();
    }
    {
        std::lock_guard<std::mutex> lock(workers_[target]->mutex);
        workers_[target]->jobs.push_back(std::move(job));
    }
    // Publish the ticket only after the job is visible in a deque:
    // every claimed ticket is then guaranteed to find a job, so
    // workers never sleep while work is pending (no missed wakeups).
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++pending_;
        ++available_;
    }
    work_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(state_mutex_);
    all_done_.wait(lock, [this] { return pending_ == 0; });
}

bool
ThreadPool::takeJob(unsigned self, Job *out)
{
    // Own deque first (back = most recently pushed, cache-warm)...
    {
        Worker &mine = *workers_[self];
        std::lock_guard<std::mutex> lock(mine.mutex);
        if (!mine.jobs.empty()) {
            *out = std::move(mine.jobs.back());
            mine.jobs.pop_back();
            return true;
        }
    }
    // ...then steal from a victim's front (oldest job: the one its
    // owner would get to last).
    for (std::size_t i = 1; i < workers_.size(); ++i) {
        Worker &victim = *workers_[(self + i) % workers_.size()];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.jobs.empty()) {
            *out = std::move(victim.jobs.front());
            victim.jobs.pop_front();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(state_mutex_);
            work_ready_.wait(lock, [this] {
                return shutdown_ || available_ > 0;
            });
            if (available_ == 0)
                return; // shutdown with no work left
            --available_; // claim a ticket; a job is waiting somewhere
        }
        Job job;
        const bool got = takeJob(self, &job);
        MACH_ASSERT(got);
        job();
        {
            std::lock_guard<std::mutex> lock(state_mutex_);
            MACH_ASSERT(pending_ > 0);
            --pending_;
            if (pending_ == 0)
                all_done_.notify_all();
        }
    }
}

void
runMany(std::vector<std::function<void()>> jobs, unsigned workers)
{
    if (workers <= 1 || jobs.size() <= 1) {
        for (auto &job : jobs)
            job();
        return;
    }
    ThreadPool pool(static_cast<unsigned>(
        std::min<std::size_t>(workers, jobs.size())));
    for (auto &job : jobs)
        pool.submit(std::move(job));
    pool.wait();
}

unsigned
defaultJobs(unsigned fallback)
{
    if (const char *env = std::getenv("MACH_FARM_JOBS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    if (fallback == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : hw;
    }
    return fallback;
}

} // namespace mach::farm
