/**
 * @file
 * Log-bucketed latency histograms and a named-metric registry.
 *
 * The histograms are HDR-style: values land in power-of-two buckets,
 * so a 64-bucket array covers the full uint64 range with bounded
 * relative error, constant-time recording, and no allocation after
 * construction. Good enough to reproduce the paper's Tables 1-4 style
 * percentile rows without keeping every sample.
 */

#ifndef MACH_OBS_METRICS_HH
#define MACH_OBS_METRICS_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mach::obs
{

/** Power-of-two-bucketed histogram of unsigned values. */
class Histogram
{
  public:
    static constexpr unsigned kBuckets = 64;

    void record(std::uint64_t value);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    std::uint64_t mean() const { return count_ ? sum_ / count_ : 0; }

    /**
     * Value at or below which at least @p percent percent of samples
     * fall, reported as the upper bound of the containing bucket (the
     * usual log-bucket approximation). Integer math only.
     */
    std::uint64_t percentile(unsigned percent) const
    {
        return percentileMille(percent * 10);
    }

    /**
     * Per-mille percentile: @p mille is in thousandths (500 = p50,
     * 999 = p99.9), the resolution the tail-latency SLOs need.
     * Reported as the upper bound of the containing bucket, clamped
     * to the observed min/max, so the approximation error is bounded
     * by the bucket width: the true sample lies in (upper/2, upper],
     * i.e. the reported value is at most 2x the exact one (and never
     * below it). Integer math only.
     */
    std::uint64_t percentileMille(unsigned mille) const;

    const std::array<std::uint64_t, kBuckets> &buckets() const
    {
        return buckets_;
    }

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
};

/**
 * Named histograms, created on first use, iterated in creation order
 * (deterministic given deterministic call order).
 */
class Metrics
{
  public:
    Histogram &histogram(const std::string &name);

    bool empty() const { return entries_.empty(); }

    /**
     * Human-readable table: one "name: n=... mean=... p50/p90/p99/p999
     * max" line per histogram, in creation order. Values are
     * microseconds by convention of the recording sites.
     */
    std::string report() const;

    const std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> &
    entries() const
    {
        return entries_;
    }

  private:
    // unique_ptr keeps Histogram& references stable across growth.
    std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> entries_;
};

} // namespace mach::obs

#endif // MACH_OBS_METRICS_HH
