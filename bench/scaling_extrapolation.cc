/**
 * @file
 * Sections 8 and 11: scaling to larger machines.
 *
 * "The fact that shootdown overhead scales linearly with the number of
 * processors is a warning that shootdown overhead may pose problems
 * for larger machines" -- extrapolating the Figure 2 fit predicts a
 * basic shootdown time of ~6 ms at 100 processors. Rather than just
 * extrapolating, this harness actually builds simulated machines of
 * 16 to 192 processors and measures the Section 5.1 tester on them,
 * checking the linear growth directly (the bus-contention model is
 * held at the Multimax knee, so large machines are charitably assumed
 * to have proportionally better interconnects -- the paper's
 * extrapolation makes the same linearity assumption).
 *
 * It also reproduces the kernel-overhead projection: the ~1% kernel
 * shootdown overhead measured for the Mach build "could reach 10% or
 * more" on a machine with a few hundred processors.
 */

#include "bench_common.hh"

#include <algorithm>
#include <cmath>

#include "apps/consistency_tester.hh"

using namespace mach;
using namespace mach::bench;

int
main()
{
    setLogQuiet(true);
    std::printf("Sections 8/11: scaling the basic shootdown cost\n\n");
    std::printf("%10s %12s %14s\n", "processors", "shot procs",
                "initiator(us)");

    std::vector<double> xs, ys;
    for (unsigned ncpus : {16u, 32u, 64u, 96u, 128u, 192u}) {
        hw::MachineConfig config;
        config.ncpus = ncpus;
        // Scale the interconnect with the machine, as the paper's
        // linear extrapolation implicitly does.
        config.bus_contention_threshold = (ncpus * 3) / 4;
        config.seed = 0x5ca1e + ncpus;

        vm::Kernel kernel(config);
        apps::ConsistencyTester tester(
            {.children = ncpus - 1, .warmup = 30 * kMsec});
        const apps::WorkloadResult result = tester.execute(kernel);
        if (!tester.consistent()) {
            std::printf("!! inconsistency at %u processors\n", ncpus);
            return 1;
        }
        const auto &user = result.analysis.user_initiator;
        std::printf("%10u %12.0f %14.1f\n", ncpus, user.procs.mean(),
                    user.time_usec.mean());
        xs.push_back(user.procs.mean());
        ys.push_back(user.time_usec.mean());
    }

    const LinearFit fit = leastSquares(xs, ys);
    const double at100 = fit.intercept + fit.slope * 100.0;
    std::printf("\nlinear fit: %.0f us + %.1f us/processor "
                "(r^2 = %.4f)\n",
                fit.intercept, fit.slope, fit.r2);
    std::printf("projected basic shootdown at 100 processors: %.1f ms "
                "(paper: ~6 ms)\n",
                at100 / 1000.0);

    // Kernel-overhead projection: the Mach build's measured overhead,
    // scaled the way Section 8 scales it.
    hw::MachineConfig config;
    config.seed = 0x5ca1e;
    AppRun mach = runApp(0, config);
    const auto &k = mach.result.analysis.kernel_initiator;
    const double overhead16 =
        k.totalOverheadUsec() /
        (static_cast<double>(mach.runtime) / kUsec);
    // Per-event cost grows linearly with processor count; event rate
    // is assumed constant (the paper's pessimistic scaling).
    const double mean16 = k.time_usec.mean();
    const double mean100 = fit.intercept + fit.slope * 100.0;
    const double overhead100 =
        mean16 > 0 ? overhead16 * (mean100 / mean16) : 0.0;
    std::printf("\nMach-build kernel shootdown overhead at 16 "
                "processors: %.2f%% (paper: ~1%%)\n",
                overhead16 * 100.0);
    std::printf("pessimistically scaled to 100 processors: %.1f%% "
                "(paper: could reach 10%% or more)\n",
                overhead100 * 100.0);
    // ---- Cross-validation against real multi-node machines ---------
    //
    // The fit above extrapolates the single-bus model. The NUMA layer
    // can now actually build the large machines it speculates about:
    // re-measure on 2/4/8-node topologies (16 CPUs per node, the
    // paper's bus held at its real contention knee) and report how far
    // the analytic line drifts from the measured truth.
    std::printf("\ncross-validation on measured multi-node "
                "machines\n\n");
    std::printf("%7s %12s %13s %13s %8s\n", "shape", "shot procs",
                "analytic(us)", "measured(us)", "delta");

    std::vector<double> measured_xs, measured_ys;
    double worst_drift = 0.0;
    for (unsigned nodes : {2u, 4u, 8u}) {
        hw::MachineConfig config;
        config.ncpus = nodes * 16;
        config.numa_nodes = nodes;
        config.seed = 0x5ca1e + nodes;

        vm::Kernel kernel(config);
        apps::ConsistencyTester tester(
            {.children = config.ncpus - 1, .warmup = 30 * kMsec});
        const apps::WorkloadResult result = tester.execute(kernel);
        if (!tester.consistent()) {
            std::printf("!! inconsistency at %u nodes\n", nodes);
            return 1;
        }
        const auto &user = result.analysis.user_initiator;
        const double procs = user.procs.mean();
        const double measured = user.time_usec.mean();
        const double analytic = fit.intercept + fit.slope * procs;
        const double drift =
            analytic > 0 ? (measured - analytic) / analytic : 0.0;
        worst_drift = std::max(worst_drift, std::abs(drift));
        std::printf("%4ux16 %12.0f %13.1f %13.1f %+7.1f%%\n", nodes,
                    procs, analytic, measured, drift * 100.0);
        measured_xs.push_back(procs);
        measured_ys.push_back(measured);
    }

    // The paper could only extrapolate; we can recalibrate. When the
    // single-bus line drifts more than 10% from the measured machines,
    // refit the constants on the multi-node data so downstream
    // projections use the corrected slope.
    if (worst_drift > 0.10) {
        const LinearFit refit = leastSquares(measured_xs, measured_ys);
        std::printf("\ndrift exceeds 10%%: corrected multi-node fit "
                    "%.0f us + %.1f us/processor (r^2 = %.4f)\n",
                    refit.intercept, refit.slope, refit.r2);
        std::printf("corrected basic shootdown at 100 processors: "
                    "%.1f ms\n",
                    (refit.intercept + refit.slope * 100.0) / 1000.0);
    } else {
        std::printf("\nanalytic model holds within 10%% of the "
                    "measured multi-node machines; constants left "
                    "unchanged\n");
    }

    std::printf("\nconclusion: user shootdowns stay affordable; "
                "kernel shootdowns need structural help (e.g. "
                "processor/memory pools) on machines of this class\n");
    return 0;
}
