/**
 * @file
 * Adversarial shootdown scenarios for the model checker.
 *
 * A Scenario packs a machine configuration, a liveness bound, and a
 * launch function that spawns a workload chosen to stress one corner
 * of the TLB consistency algorithm:
 *
 *  - concurrent initiators operating on the same pmap,
 *  - an initiator racing responders that drain from the idle loop,
 *  - action-queue overflow forcing the full-flush fallback,
 *  - responders inside interrupt-masked kernel sections, and
 *  - a generic writer/reprotect storm replayed under every Section 9
 *    hardware option (high-priority IPI, multicast, broadcast,
 *    software reload, no ref/mod writeback, interlocked ref/mod,
 *    remote invalidate, ASID tags, virtual cache), the Section 8
 *    pool restructuring, and the delayed-flush strategy.
 *
 * Workloads report through ScenarioState instead of asserting:
 * `finished` is the bounded-liveness signal (every shootdown
 * terminates and the workload runs to completion within the bound);
 * `predicate_ok` carries the paper's end-to-end safety property (no
 * write lands through a revoked mapping); `coverage_ok` confirms the
 * scenario actually exercised its target path (e.g. the idle-drain
 * counter moved). Coverage is only meaningful on the unperturbed
 * baseline run -- a perturbation may legitimately steer execution
 * around the target path -- so the explorer checks it there only.
 */

#ifndef MACH_CHK_SCENARIO_HH
#define MACH_CHK_SCENARIO_HH

#include <functional>
#include <string>
#include <vector>

#include "base/types.hh"
#include "hw/machine_config.hh"

namespace mach::vm
{
class Kernel;
} // namespace mach::vm

namespace mach::chk
{

/** Outcome flags a scenario workload reports into. */
struct ScenarioState
{
    /** Workload ran to completion (bounded liveness). */
    bool finished = false;
    /** Safety predicate held (no write through a revoked mapping). */
    bool predicate_ok = true;
    /** Scenario-specific coverage fired (baseline run only). */
    bool coverage_ok = true;
    /** First predicate / coverage failure, for the report. */
    std::string note;
};

/** One adversarial workload plus the machine it runs on. */
struct Scenario
{
    /** Spawns the workload; must arrange state->finished + stop. */
    using Launch = std::function<void(vm::Kernel &, ScenarioState *)>;

    std::string name;
    std::string summary;
    hw::MachineConfig config;
    /** Sim-time liveness bound for the unperturbed run. */
    Tick bound = 0;
    Launch launch;
};

/** The full built-in scenario library. */
std::vector<Scenario> builtinScenarios();

/**
 * The deliberately broken protocol: the writer/reprotect storm on a
 * machine with MachineConfig::chk_skip_responder_stall set, so
 * responders rejoin the active set without stalling for the pmap
 * lock. The explorer must find schedules where a responder's reload
 * re-caches the pre-change PTE (the golden detection test).
 */
Scenario brokenStallScenario();

/**
 * The NUMA analog of the planted bug: per-node page-table replicas
 * with MachineConfig::chk_defer_replica_sync set, so the initiator
 * publishes the primary PTE change but syncs the replicas only after
 * unlocking and rejoining. A remote CPU whose hardware reload lands
 * in that window re-caches the revoked translation from its stale
 * local replica. The explorer must find such schedules.
 */
Scenario brokenReplicaScenario();

/**
 * The third planted bug: the per-CPU L0 translation cache keeps
 * serving an entry after the shootdown protocol revoked it, because
 * MachineConfig::chk_skip_l0_invalidate makes the responder's L0
 * clear a no-op. The writer signals each target touch through a
 * shared beat counter and immediately evicts the stale slot (a sweep
 * of 8 decoy pages through the 4-slot round-robin L0, ~40 us); the
 * driver keys its revoke off the beat and waits out a 250 us margin,
 * so the unperturbed revoke always lands long after the sweep and
 * the baseline survives. A schedule that parks the writer inside the
 * sweep for most of that margin leaves the stale slot resident when
 * the revocation completes, which the oracle's L0-vs-page-table
 * audit flags.
 */
Scenario brokenL0Scenario();

/**
 * The fourth planted bug, aimed at the LazyAsid shootdown-avoidance
 * policy: MachineConfig::chk_skip_asid_gen_check makes the policy's
 * context-load hook return before consulting the deferred-flush set,
 * so a space whose flush was deferred (the target CPU was running
 * another space when the revocation fired) comes back current with
 * its revoked translations still live in the tagged TLB. A writer in
 * task A alternates 2 ms on-CPU / 2.5 ms asleep on CPU 1 while a
 * filler in task B keeps B's space current there; the driver keys
 * each revoke off the writer's beat, so unperturbed it always lands
 * in the on-CPU window (ordinary IPI path, baseline survives). A
 * schedule that delays the revoke into the sleep makes CPU 1 a
 * deferred target, and the writer's next store after waking lands
 * through the stale entry. The healthy twin is the library's
 * "policy-lazy-asid" scenario.
 */
Scenario brokenAsidScenario();

/**
 * The fifth planted bug, aimed at the device/IOTLB responder role
 * (docs/DEVICES.md): MachineConfig::chk_skip_iotlb_invalidate makes
 * the device's action-queue drain clear the action-needed flag (the
 * stale-entry audit excuse) and charge full cost while skipping the
 * IOTLB invalidations themselves. The dev-dma-race workload streams a
 * DMA write plus a 2x-capacity decoy sweep per beat, so unperturbed
 * the sweep has always evicted the target's entry before the drain
 * runs and the baseline survives; a schedule that parks the device
 * inside the sweep across the driver's revocation leaves the stale
 * writable entry resident after the flag is cleared, and the driver's
 * post-revoke audit probes (pmap ops on an unrelated task) make the
 * oracle's IOTLB-vs-page-table audit land inside that window. The
 * healthy twin is the library's "dev-dma-race" scenario.
 */
Scenario brokenIotlbScenario();

/** Scenario by name from @p library, or null. */
const Scenario *findScenario(const std::vector<Scenario> &library,
                             const std::string &name);

/**
 * Resolve @p name to a runnable scenario: the built-in library (which
 * includes the generated vmgen entries), any
 * vmgen-<seed>[x<nodes>][d] name (chk/vmgen.hh; the "d" suffix mixes
 * in DMA-device ops), or one of the planted bugs (broken-stall,
 * broken-replica, broken-l0, broken-asid, broken-iotlb). This is the
 * one name->scenario map the
 * CLI, the corpus replay test, and the CI lanes share. Returns false
 * when nothing matches.
 */
bool resolveScenario(const std::string &name, Scenario *out);

} // namespace mach::chk

#endif // MACH_CHK_SCENARIO_HH
