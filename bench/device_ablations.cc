/**
 * @file
 * Device ablations: what DMA devices in the responder set do to the
 * paper's shootdown numbers.
 *
 * The 1989 protocol counts processors; docs/DEVICES.md adds DMA
 * devices whose IOTLBs make them first-class shootdown responders.
 * This bench measures the marginal cost of that membership: a driver
 * revokes and restores write access on a hot page while responder
 * threads keep it cached, with 0, 1, or 4 devices streaming DMA
 * against other pages of the same address space. Every revocation
 * must queue a consistency action at each attached device, and a
 * revocation that catches a device mid-operation waits out the
 * bounded drain -- so initiator latency grows with the device count
 * even though the devices never touch the revoked page.
 *
 * The matrix crosses the device count with the shootdown-avoidance
 * policies (--shootdown-policy): avoidance machinery targets
 * processor IPIs, so the device-command traffic is the part of the
 * cost no policy can elide.
 *
 * Results are deterministic for a given scale; the JSON written to
 * BENCH_device.json is a committable baseline that CI archives per
 * run.
 */

#include "bench_common.hh"

#include "dev/dma_device.hh"
#include "obs/metrics.hh"
#include "obs/recorder.hh"
#include "pmap/shootdown.hh"
#include "vm/task.hh"
#include "xpr/analysis.hh"
#include "xpr/machine_stats.hh"

using namespace mach;
using namespace mach::bench;

namespace
{

constexpr unsigned kDeviceCounts[] = {0, 1, 4};
constexpr unsigned kNumDeviceCounts = std::size(kDeviceCounts);

constexpr hw::ShootdownPolicy kPolicies[] = {
    hw::ShootdownPolicy::Baseline,
    hw::ShootdownPolicy::LazyAsid,
    hw::ShootdownPolicy::Batched,
    hw::ShootdownPolicy::RangeFlush,
    hw::ShootdownPolicy::ReuseElide,
};
constexpr unsigned kNumPolicies = std::size(kPolicies);

/** Pages each device sweeps with reads between target writes. */
constexpr unsigned kDecoys = 4;

struct Cell
{
    double mean_usec = 0.0;
    std::uint64_t p99_usec = 0;
    std::uint64_t events = 0;
    std::uint64_t ipis = 0;
    std::uint64_t device_commands = 0;
    std::uint64_t device_sync_waits = 0;
    std::uint64_t dma_writes = 0;
    std::uint64_t dma_aborts = 0;
    std::uint64_t iommu_walks = 0;
    std::uint64_t iotlb_hits = 0;
    std::uint64_t iotlb_misses = 0;
    bool clean = false;
};

Cell
measureCell(unsigned devices, hw::ShootdownPolicy policy)
{
    hw::MachineConfig config;
    config.ncpus = 8;
    config.devices = devices;
    config.seed = 0xdeb1ce;
    config.shootdown_policy = policy;
    if (policy == hw::ShootdownPolicy::LazyAsid)
        config.tlb_asid_tags = true;
    if (policy == hw::ShootdownPolicy::ReuseElide)
        config.tlb_software_reload = true;

    const unsigned rounds = 100 * benchScale();

    vm::Kernel kernel(config);
    kernel.machine().recorder().enableStats();
    kernel.start();
    bool stop = false;
    kernel.spawnThread(nullptr, "driver", [&](kern::Thread &driver) {
        vm::Task *task = kernel.createTask("devabl");
        // Page 0 is the CPU-hot page the driver revokes; each device
        // gets its own target + decoy chunk in the same address
        // space, so every revocation's responder set includes every
        // attached device.
        const unsigned pages = 1 + devices * (1 + kDecoys);
        VAddr base = 0;
        if (!kernel.vmAllocate(driver, *task, &base,
                               pages * kPageSize, true))
            fatal("vmAllocate failed");
        kern::Thread *toucher = kernel.spawnThread(
            task, "touch", [&, base, pages](kern::Thread &self) {
                for (unsigned i = 0; i < pages; ++i)
                    self.access(base + i * kPageSize, ProtWrite);
            });
        driver.join(*toucher);

        std::vector<kern::Thread *> readers;
        for (int pin = 1; pin <= 3; ++pin) {
            readers.push_back(kernel.spawnThread(
                task, "reader",
                [&, base](kern::Thread &self) {
                    std::uint32_t value = 0;
                    while (!stop) {
                        self.load32(base, &value);
                        self.sleep(200);
                    }
                },
                pin));
        }
        for (unsigned d = 0; d < devices; ++d) {
            const VAddr chunk =
                base + (1 + d * (1 + kDecoys)) * kPageSize;
            dev::DmaStream stream;
            stream.pmap = &task->pmap();
            stream.target = vaToVpn(chunk);
            stream.decoy_base = vaToVpn(chunk + kPageSize);
            stream.decoys = kDecoys;
            stream.gap = 300 * kUsec;
            kernel.device(d).startStream(stream);
        }
        driver.sleep(2 * kMsec); // Warm every cache.

        for (unsigned round = 0; round < rounds; ++round) {
            kernel.vmProtect(driver, *task, base, kPageSize,
                             ProtRead);
            driver.sleep(500);
            kernel.vmProtect(driver, *task, base, kPageSize,
                             ProtReadWrite);
            driver.sleep(500);
        }
        for (unsigned d = 0; d < devices; ++d)
            kernel.device(d).stop();
        for (unsigned d = 0; d < devices; ++d) {
            while (kernel.device(d).streaming())
                driver.sleep(100 * kUsec);
        }
        stop = true;
        for (kern::Thread *reader : readers)
            driver.join(*reader);
        kernel.machine().ctx().requestStop();
    });
    kernel.machine().run();

    const xpr::RunAnalysis analysis =
        xpr::analyze(kernel.machine().xpr());
    const xpr::MachineStats stats =
        xpr::MachineStats::capture(kernel);
    Cell cell;
    cell.mean_usec = analysis.user_initiator.time_usec.mean();
    cell.p99_usec = kernel.machine()
                        .recorder()
                        .metrics()
                        .histogram("shoot.initiator_us")
                        .percentileMille(990);
    cell.events = analysis.user_initiator.events;
    cell.ipis = stats.ipis_sent;
    cell.device_commands = stats.device_commands;
    cell.device_sync_waits = stats.device_sync_waits;
    for (const xpr::DeviceStats &d : stats.devices) {
        cell.dma_writes += d.dma_writes;
        cell.dma_aborts += d.dma_aborts;
        cell.iommu_walks += d.iommu_walks;
        cell.iotlb_hits += d.iotlb_hits;
        cell.iotlb_misses += d.iotlb_misses;
    }
    cell.clean = kernel.pmaps().auditTlbConsistency().empty();
    return cell;
}

double
hitPct(const Cell &cell)
{
    const std::uint64_t total = cell.iotlb_hits + cell.iotlb_misses;
    return total ? 100.0 * static_cast<double>(cell.iotlb_hits) /
                       static_cast<double>(total)
                 : 0.0;
}

void
writeJson(const Cell cells[][kNumPolicies], unsigned scale)
{
    std::FILE *out = std::fopen("BENCH_device.json", "w");
    if (out == nullptr)
        fatal("device_ablations: cannot write BENCH_device.json");
    std::fprintf(out,
                 "{\n  \"bench\": \"device_ablations\",\n"
                 "  \"scale\": %u,\n  \"results\": {\n",
                 scale);
    for (unsigned d = 0; d < kNumDeviceCounts; ++d) {
        for (unsigned p = 0; p < kNumPolicies; ++p) {
            const Cell &cell = cells[d][p];
            std::fprintf(
                out,
                "    \"%s__dev%u\": {\"clean\": %d, "
                "\"latency_usec\": %.3f, \"latency_p99_us\": %llu, "
                "\"shootdowns\": %llu, \"ipis\": %llu, "
                "\"device_commands\": %llu, "
                "\"device_sync_waits\": %llu, \"dma_writes\": %llu, "
                "\"dma_aborts\": %llu, \"iommu_walks\": %llu, "
                "\"iotlb_hit_pct\": %.3f}%s\n",
                hw::shootdownPolicyName(kPolicies[p]),
                kDeviceCounts[d], cell.clean ? 1 : 0, cell.mean_usec,
                static_cast<unsigned long long>(cell.p99_usec),
                static_cast<unsigned long long>(cell.events),
                static_cast<unsigned long long>(cell.ipis),
                static_cast<unsigned long long>(cell.device_commands),
                static_cast<unsigned long long>(
                    cell.device_sync_waits),
                static_cast<unsigned long long>(cell.dma_writes),
                static_cast<unsigned long long>(cell.dma_aborts),
                static_cast<unsigned long long>(cell.iommu_walks),
                hitPct(cell),
                d + 1 == kNumDeviceCounts && p + 1 == kNumPolicies
                    ? ""
                    : ",");
        }
    }
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
}

} // namespace

int
main()
{
    setLogQuiet(true);
    const unsigned scale = benchScale();

    static Cell cells[kNumDeviceCounts][kNumPolicies];
    std::vector<std::function<void()>> jobs;
    for (unsigned d = 0; d < kNumDeviceCounts; ++d) {
        for (unsigned p = 0; p < kNumPolicies; ++p)
            jobs.push_back([d, p] {
                cells[d][p] =
                    measureCell(kDeviceCounts[d], kPolicies[p]);
            });
    }
    runFarmed(std::move(jobs));

    std::printf("Devices as shootdown responders "
                "(docs/DEVICES.md): user reprotect latency\n\n");
    std::printf("mean us per reprotect (p99 us)\n");
    std::printf("%-10s", "devices");
    for (unsigned p = 0; p < kNumPolicies; ++p)
        std::printf(" %17s", hw::shootdownPolicyName(kPolicies[p]));
    std::printf("\n");
    for (unsigned d = 0; d < kNumDeviceCounts; ++d) {
        std::printf("%-10u", kDeviceCounts[d]);
        for (unsigned p = 0; p < kNumPolicies; ++p) {
            char buf[32];
            std::snprintf(
                buf, sizeof(buf), "%.0f (%llu)",
                cells[d][p].mean_usec,
                static_cast<unsigned long long>(
                    cells[d][p].p99_usec));
            std::printf(" %17s", buf);
        }
        std::printf("\n");
    }

    std::printf("\nper-cell counters (baseline policy column)\n");
    std::printf("%-10s %10s %10s %12s %12s %12s %12s %12s %10s\n",
                "devices", "shoots", "ipis", "dev-cmds", "sync-waits",
                "dma-writes", "dma-aborts", "iommu-walks",
                "iotlb-hit%");
    for (unsigned d = 0; d < kNumDeviceCounts; ++d) {
        const Cell &cell = cells[d][0];
        std::printf(
            "%-10u %10llu %10llu %12llu %12llu %12llu %12llu "
            "%12llu %9.1f%%\n",
            kDeviceCounts[d],
            static_cast<unsigned long long>(cell.events),
            static_cast<unsigned long long>(cell.ipis),
            static_cast<unsigned long long>(cell.device_commands),
            static_cast<unsigned long long>(cell.device_sync_waits),
            static_cast<unsigned long long>(cell.dma_writes),
            static_cast<unsigned long long>(cell.dma_aborts),
            static_cast<unsigned long long>(cell.iommu_walks),
            hitPct(cell));
    }

    writeJson(cells, scale);
    std::printf("\nwrote BENCH_device.json\n");

    for (unsigned d = 0; d < kNumDeviceCounts; ++d) {
        for (unsigned p = 0; p < kNumPolicies; ++p) {
            if (!cells[d][p].clean) {
                std::printf("FAIL: stale translation left behind "
                            "(devices=%u, policy=%s)\n",
                            kDeviceCounts[d],
                            hw::shootdownPolicyName(kPolicies[p]));
                return 1;
            }
        }
    }
    return 0;
}
