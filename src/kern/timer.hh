/**
 * @file
 * Simulated I/O device.
 *
 * The Mach-build workload performs disk reads and writes; completions
 * arrive as device interrupts whose service routines run with device
 * (and therefore, on baseline hardware, shootdown) interrupts masked.
 * Those masked windows are a major cause of the extra latency and skew
 * of kernel-pmap shootdowns (Section 8), so the device model matters to
 * the shape of Table 2.
 *
 * (The periodic scheduler timer lives in Machine::startTimers; this file
 * provides the request/completion device.)
 */

#ifndef MACH_KERN_TIMER_HH
#define MACH_KERN_TIMER_HH

#include <cstdint>
#include <deque>

#include "base/types.hh"

namespace mach::kern
{

class Cpu;
class Machine;
class Thread;

/** A DMA-style device: submit a request, block, completion interrupt. */
class IoDevice
{
  public:
    explicit IoDevice(Machine *machine);

    /**
     * Issue a request taking @p latency of device time and block the
     * calling thread until the completion interrupt service wakes it.
     */
    void request(Thread &thread, Tick latency);

    /** Interrupt service routine (registered for Irq::Device). */
    void serviceInterrupt(Cpu &cpu);

    std::uint64_t completions = 0;

  private:
    Machine *machine_;
    std::deque<Thread *> completed_;
    /** CPU that takes this device's interrupts (like a Multimax SCC). */
    CpuId intr_target_ = 0;
};

} // namespace mach::kern

#endif // MACH_KERN_TIMER_HH
