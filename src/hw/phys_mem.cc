#include "hw/phys_mem.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"

namespace mach::hw
{

PhysMem::PhysMem(std::uint32_t frames, unsigned nodes)
    : total_frames_(frames), frames_per_node_(frames / nodes),
      frames_(frames), free_lists_(nodes)
{
    MACH_ASSERT(frames >= 2 && nodes >= 1 && frames / nodes >= 2);
    // Within each partition, push high frames first so allocation
    // hands out low PFNs first, which keeps test output stable and
    // readable. With one node this is the original single free list.
    for (unsigned node = 0; node < nodes; ++node) {
        const Pfn lo = node == 0 ? 1 : node * frames_per_node_;
        const Pfn hi = node + 1 == nodes ? frames
                                         : (node + 1) * frames_per_node_;
        free_lists_[node].reserve(hi - lo);
        for (Pfn pfn = hi - 1; pfn >= lo; --pfn)
            free_lists_[node].push_back(pfn);
    }
}

std::uint32_t
PhysMem::freeFrames() const
{
    std::uint32_t total = 0;
    for (const auto &list : free_lists_)
        total += static_cast<std::uint32_t>(list.size());
    return total;
}

std::uint32_t
PhysMem::freeFramesOnNode(unsigned node) const
{
    return static_cast<std::uint32_t>(free_lists_[node].size());
}

Pfn
PhysMem::allocFrame(unsigned node)
{
    MACH_ASSERT(node < nodes());
    for (unsigned offset = 0; offset < nodes(); ++offset) {
        auto &list = free_lists_[(node + offset) % nodes()];
        if (list.empty())
            continue;
        Pfn pfn = list.back();
        list.pop_back();
        zeroFrame(pfn);
        return pfn;
    }
    panic("PhysMem: out of physical frames (%u total)", total_frames_);
}

void
PhysMem::freeFrame(Pfn pfn)
{
    MACH_ASSERT(validPfn(pfn));
    frames_[pfn].reset();
    free_lists_[nodeOfPfn(pfn)].push_back(pfn);
}

bool
PhysMem::validPfn(Pfn pfn) const
{
    return pfn >= 1 && pfn < total_frames_;
}

PhysMem::Frame &
PhysMem::frameFor(PAddr addr)
{
    const Pfn pfn = addr >> kPageShift;
    MACH_ASSERT(pfn < total_frames_);
    auto &slot = frames_[pfn];
    if (!slot)
        slot = std::make_unique<Frame>(kPageSize, 0);
    return *slot;
}

const PhysMem::Frame &
PhysMem::frameFor(PAddr addr) const
{
    const Pfn pfn = addr >> kPageShift;
    MACH_ASSERT(pfn < total_frames_);
    auto &slot = frames_[pfn];
    if (!slot)
        slot = std::make_unique<Frame>(kPageSize, 0);
    return *slot;
}

std::uint32_t
PhysMem::read32(PAddr addr) const
{
    MACH_ASSERT((addr & 3) == 0);
    const Frame &frame = frameFor(addr);
    std::uint32_t value = 0;
    std::memcpy(&value, frame.data() + (addr & kPageMask), 4);
    return value;
}

void
PhysMem::write32(PAddr addr, std::uint32_t value)
{
    MACH_ASSERT((addr & 3) == 0);
    Frame &frame = frameFor(addr);
    std::memcpy(frame.data() + (addr & kPageMask), &value, 4);
}

std::uint8_t
PhysMem::read8(PAddr addr) const
{
    return frameFor(addr)[addr & kPageMask];
}

void
PhysMem::write8(PAddr addr, std::uint8_t value)
{
    frameFor(addr)[addr & kPageMask] = value;
}

void
PhysMem::copyFrame(Pfn dst, Pfn src)
{
    MACH_ASSERT(validPfn(dst) && validPfn(src) && dst != src);
    Frame &d = frameFor(dst << kPageShift);
    const Frame &s = frameFor(src << kPageShift);
    std::copy(s.begin(), s.end(), d.begin());
}

void
PhysMem::zeroFrame(Pfn pfn)
{
    MACH_ASSERT(pfn < total_frames_);
    auto &slot = frames_[pfn];
    if (slot)
        std::fill(slot->begin(), slot->end(), 0);
}

} // namespace mach::hw
