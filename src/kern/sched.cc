#include "kern/sched.hh"

#include <limits>

#include "base/logging.hh"
#include "kern/machine.hh"
#include "obs/recorder.hh"

namespace mach::kern
{

Sched::Sched(Machine *machine)
    : machine_(machine), runq_(machine->ncpus())
{
}

Sched::~Sched() = default;

void
Sched::start()
{
    if (started_)
        return;
    started_ = true;
    for (CpuId id = 0; id < machine_->ncpus(); ++id) {
        Cpu &cpu = machine_->cpu(id);
        auto idle = std::make_unique<Thread>(
            machine_, nullptr, "idle" + std::to_string(id),
            [this](Thread &self) { idleLoop(self); });
        Thread *thread = idle.get();
        thread->is_idle_ = true;
        threads_.push_back(std::move(idle));

        thread->state_ = ThreadState::Running;
        thread->cpu_ = &cpu;
        cpu.cur_thread = thread;
        cpu.idle_thread = thread;
        thread->fiber_ = machine_->ctx().spawn(
            thread->name(), [thread] { thread->body_(*thread); });
        cpu.idle_fiber = thread->fiber_;
    }
}

Thread *
Sched::spawn(vm::Task *task, std::string name, Thread::Body body,
             std::int64_t pin)
{
    auto owned = std::make_unique<Thread>(machine_, task, std::move(name),
                                          std::move(body));
    Thread *thread = owned.get();
    thread->affinity_ = pin;
    threads_.push_back(std::move(owned));
    ++spawn_count_;

    thread->state_ = ThreadState::Runnable;
    enqueue(placeThread(*thread), *thread);
    return thread;
}

void
Sched::wakeup(Thread &thread)
{
    // Tolerate spurious wakeups (e.g. a join completing just before a
    // timed wake fires).
    if (thread.state_ != ThreadState::Blocked)
        return;
    thread.state_ = ThreadState::Runnable;
    enqueue(placeThread(thread), thread);
}

unsigned
Sched::runnableCount() const
{
    unsigned count = 0;
    for (const auto &thread : threads_) {
        if (thread->isIdle())
            continue;
        if (thread->state() == ThreadState::Runnable ||
            thread->state() == ThreadState::Running) {
            ++count;
        }
    }
    return count;
}

Cpu &
Sched::placeThread(Thread &thread)
{
    if (thread.affinity_ >= 0)
        return machine_->cpu(static_cast<CpuId>(thread.affinity_));

    // Prefer an idle CPU; otherwise the shortest run queue. Ties go to
    // the lowest id, keeping placement deterministic.
    CpuId best = 0;
    std::size_t best_load = std::numeric_limits<std::size_t>::max();
    for (CpuId id = 0; id < machine_->ncpus(); ++id) {
        Cpu &cpu = machine_->cpu(id);
        std::size_t load = runq_[id].size();
        if (!cpu.idle)
            ++load; // The running thread counts.
        if (load < best_load) {
            best_load = load;
            best = id;
        }
    }
    return machine_->cpu(best);
}

void
Sched::enqueue(Cpu &cpu, Thread &thread)
{
    runq_[cpu.id()].push_back(&thread);
    // A parked idle processor must notice new work promptly.
    if (cpu.cur_thread != nullptr && cpu.cur_thread->isIdle())
        cpu.wakeSleeper();
}

void
Sched::dispatchNext(Cpu &cpu)
{
    Thread *prev = cpu.cur_thread;
    MACH_ASSERT(prev != nullptr);

    Thread *next = nullptr;
    auto &queue = runq_[cpu.id()];
    if (!queue.empty()) {
        next = queue.front();
        queue.pop_front();
    } else {
        next = cpu.idle_thread;
    }

    if (next == prev) {
        prev->state_ = ThreadState::Running;
        return;
    }

    obs::Recorder &rec = machine_->recorder();
    if (rec.enabled()) {
        // Thread names are owned by the scheduler and outlive the run.
        rec.instant(rec.cpuTrack(cpu.id()), "sched.dispatch", "sched",
                    {}, {}, next->name().c_str());
    }
    machine_->switchSpace(cpu, *prev, *next);
    cpu.cur_thread = next;
    next->cpu_ = &cpu;
    next->state_ = ThreadState::Running;
    next->quantum_used_ = 0;
    makeRunning(cpu, *next);
}

void
Sched::makeRunning(Cpu &cpu, Thread &thread)
{
    // The context-switch cost is charged on the incoming edge (the
    // wake/spawn delay) so that the deschedule path itself never
    // consumes time: state transitions and dispatch bookkeeping are
    // atomic with respect to the simulation, which is what keeps
    // wakeups from racing a half-descheduled thread.
    (void)cpu;
    const Tick delay = machine_->cfg().ctx_switch_cost;
    if (thread.fiber_ == 0) {
        Thread *tp = &thread;
        thread.fiber_ = machine_->ctx().spawn(
            thread.name(),
            [this, tp] {
                tp->body_(*tp);
                Cpu &last = *tp->cpu_;
                tp->state_ = ThreadState::Done;
                for (Thread *joiner : tp->joiners_)
                    wakeup(*joiner);
                tp->joiners_.clear();
                dispatchNext(last);
            },
            delay);
    } else {
        machine_->ctx().scheduleWake(thread.fiber_,
                                     machine_->now() + delay);
    }
}

void
Sched::parkUntilRunning(Thread &thread)
{
    while (thread.state_ != ThreadState::Running)
        machine_->ctx().block();
}

void
Sched::blockCurrent(Cpu &cpu)
{
    Thread *current = cpu.cur_thread;
    MACH_ASSERT(current != nullptr && !current->isIdle());
    current->state_ = ThreadState::Blocked;
    dispatchNext(cpu);
    parkUntilRunning(*current);
}

void
Sched::yieldCurrent(Cpu &cpu)
{
    Thread *current = cpu.cur_thread;
    MACH_ASSERT(current != nullptr && !current->isIdle());
    if (runq_[cpu.id()].empty())
        return; // Nothing else to run; keep going.
    current->state_ = ThreadState::Runnable;
    runq_[cpu.id()].push_back(current);
    dispatchNext(cpu);
    parkUntilRunning(*current);
}

void
Sched::exitCurrent(Cpu &cpu)
{
    dispatchNext(cpu);
}

void
Sched::idleLoop(Thread &self)
{
    Cpu &cpu = *self.cpu_;
    for (;;) {
        // Join the idle set: no translations are performed here, so the
        // processor leaves the active set and stops taking shootdown
        // interrupts (initiators skip idle processors, Section 4).
        cpu.idle = true;
        cpu.active = false;
        obs::Recorder &rec = machine_->recorder();
        if (rec.enabled())
            rec.begin(rec.cpuTrack(cpu.id()), "idle", "sched");
        if (machine_->cfg().consistency_strategy ==
            hw::ConsistencyStrategy::DelayedFlush) {
            // Under technique 2 idle processors take no timer ticks,
            // so they flush on entry to (and exit from) the idle loop
            // instead; a parked TLB is then always clean.
            cpu.tlb().flushAll();
        }
        while (runq_[cpu.id()].empty())
            cpu.idleWait();

        if (machine_->cfg().consistency_strategy ==
            hw::ConsistencyStrategy::DelayedFlush) {
            cpu.tlb().flushAll();
        }
        // Leaving idle: execute queued consistency actions *before*
        // becoming active -- the idle-processor rule of Section 4.
        if (idle_exit_)
            idle_exit_(cpu);
        if (rec.enabled())
            rec.end(rec.cpuTrack(cpu.id()), "idle");
        cpu.idle = false;
        cpu.active = true;

        self.state_ = ThreadState::Runnable;
        dispatchNext(cpu);
        parkUntilRunning(self);
    }
}

} // namespace mach::kern
