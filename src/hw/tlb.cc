#include "hw/tlb.hh"

#include "base/logging.hh"

namespace mach::hw
{

Tlb::Tlb(const MachineConfig *config, PhysMem *mem)
    : config_(config), mem_(mem), entries_(config->tlb_entries)
{
}

TlbEntry *
Tlb::find(SpaceId space, Vpn vpn)
{
    for (auto &entry : entries_) {
        if (entry.valid && entry.space == space && entry.vpn == vpn)
            return &entry;
    }
    return nullptr;
}

const TlbEntry *
Tlb::find(SpaceId space, Vpn vpn) const
{
    return const_cast<Tlb *>(this)->find(space, vpn);
}

TlbLookup
Tlb::lookup(SpaceId space, Vpn vpn, Prot want, PAddr pte_addr)
{
    TlbLookup result;
    TlbEntry *entry = find(space, vpn);
    if (!entry) {
        ++misses;
        return result;
    }

    ++hits;
    result.hit = true;
    result.pfn = entry->pfn;
    result.prot_ok = protAllows(entry->prot, want);
    if (!result.prot_ok)
        return result;

    // Hardware maintenance of reference/modify bits. On the first write
    // through a cached entry the baseline TLB writes its image of the
    // PTE back to memory -- blindly, without revalidating it against the
    // current page-table contents. This is the writeback hazard of
    // Section 3: if a pmap update is in flight and the responder has not
    // been stalled, this store can clobber the new PTE.
    const bool write = protAllows(want, ProtWrite);
    entry->ref = true;
    if (write && !entry->mod) {
        if (config_->tlb_interlocked_refmod && pte_addr != 0) {
            // MC88200-style interlocked update: re-read the PTE, check
            // that the mapping is still valid (and still writable --
            // "the read data must be checked in all cases for mapping
            // validity"), and OR the bits in rather than overwriting.
            const std::uint32_t current = mem_->read32(pte_addr);
            if (!pte::valid(current) || !pte::writable(current) ||
                pte::pfn(current) != entry->pfn) {
                // The mapping changed underneath the cached entry: the
                // access must fault instead of completing.
                entry->valid = false;
                result.hit = false;
                result.prot_ok = false;
                return result;
            }
            mem_->write32(pte_addr,
                          current | pte::kRef | pte::kMod);
            entry->mod = true;
            ++writebacks;
            result.did_writeback = true;
        } else {
            entry->mod = true;
            if (!config_->tlb_no_refmod_writeback && pte_addr != 0) {
                mem_->write32(pte_addr,
                              pte::make(entry->pfn, entry->prot,
                                        entry->ref, entry->mod));
                ++writebacks;
                result.did_writeback = true;
            }
        }
    }
    return result;
}

void
Tlb::insert(SpaceId space, Vpn vpn, Pfn pfn, Prot prot, bool mod)
{
    TlbEntry *entry = find(space, vpn);
    if (!entry) {
        entry = &entries_[next_victim_];
        next_victim_ = (next_victim_ + 1) % entries_.size();
    }
    entry->valid = true;
    entry->space = space;
    entry->vpn = vpn;
    entry->pfn = pfn;
    entry->prot = prot;
    entry->ref = true;
    entry->mod = mod;
}

void
Tlb::invalidatePage(SpaceId space, Vpn vpn)
{
    if (TlbEntry *entry = find(space, vpn)) {
        entry->valid = false;
        ++single_invalidates;
    }
}

void
Tlb::invalidateRange(SpaceId space, Vpn start, Vpn end)
{
    for (auto &entry : entries_) {
        if (entry.valid && entry.space == space && entry.vpn >= start &&
            entry.vpn < end) {
            entry.valid = false;
            ++single_invalidates;
        }
    }
}

void
Tlb::flushSpace(SpaceId space)
{
    for (auto &entry : entries_) {
        if (entry.valid && entry.space == space)
            entry.valid = false;
    }
    ++flushes;
}

void
Tlb::flushAll()
{
    for (auto &entry : entries_)
        entry.valid = false;
    ++flushes;
    ++full_flushes;
}

bool
Tlb::cachesSpace(SpaceId space) const
{
    for (const auto &entry : entries_) {
        if (entry.valid && entry.space == space)
            return true;
    }
    return false;
}

bool
Tlb::cachesMapping(SpaceId space, Vpn vpn, Prot prot) const
{
    const TlbEntry *entry = find(space, vpn);
    return entry && protAllows(entry->prot, prot);
}

unsigned
Tlb::validCount() const
{
    unsigned count = 0;
    for (const auto &entry : entries_) {
        if (entry.valid)
            ++count;
    }
    return count;
}

} // namespace mach::hw
