/**
 * @file
 * Host-performance harness: wall-clock throughput of the simulator's
 * hot core, tracked from PR to PR via BENCH_host_perf.json.
 *
 * Unlike the table/figure benches (which report *simulated* time),
 * everything here is measured in host nanoseconds:
 *
 *   - event_queue:     schedule/cancel/fire churn through sim::EventQueue,
 *                      in events per host second;
 *   - tlb_churn:       insert/lookup/invalidate/flush churn through one
 *                      hw::Tlb, in ns per lookup;
 *   - shootdown_storm: the Section 5.1 consistency tester on 16 CPUs,
 *                      in simulated us per host ms;
 *   - app suite:       the four Section 5.2 applications (scaled by
 *                      MACH_BENCH_SCALE), same unit;
 *   - explorer_sweep:  a late-window explorer probe batch run serial
 *                      vs farmed (threads x fork snapshots), with a
 *                      bit-identical-results check, in x speedup;
 *   - bench_sweep:     an eight-config application sweep serial vs
 *                      eight farm workers, same unit.
 *
 * The JSON is written to BENCH_host_perf.json in the working directory
 * so CI can archive the perf trajectory.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"

#include "apps/consistency_tester.hh"
#include "chk/explorer.hh"
#include "chk/scenario.hh"
#include "hw/page_table.hh"
#include "hw/phys_mem.hh"
#include "hw/tlb.hh"
#include "kern/cpu.hh"
#include "kern/thread.hh"
#include "sim/context.hh"
#include "sim/event_queue.hh"
#include "vm/task.hh"

namespace
{

using namespace mach;
using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point begin)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     begin)
        .count();
}

struct Result
{
    std::string name;
    double host_ms = 0;
    std::string metric; ///< Name of the headline rate below.
    double rate = 0;    ///< Higher is better.
    /** Extra named values appended to the bench's JSON row. */
    std::vector<std::pair<std::string, double>> extras;
};

/** Raw-event thunk mirroring Context::wakeTrampoline. */
void
bumpCounter(void *ctx, std::uint64_t)
{
    ++*static_cast<std::uint64_t *>(ctx);
}

/**
 * Schedule one fiber-wake-shaped event exactly the way
 * Context::scheduleWake does on this tree: through the raw thunk path
 * when the queue provides one, through a closure otherwise (the seed
 * queue), so the bench compares like against like across revisions.
 */
template <typename Queue>
sim::EventId
scheduleWakeLike(Queue &queue, Tick when, std::uint64_t *fired)
{
    if constexpr (requires {
                      queue.scheduleRaw(when, &bumpCounter, fired,
                                        std::uint64_t{0});
                  }) {
        return queue.scheduleRaw(when, &bumpCounter, fired, 0);
    } else {
        return queue.schedule(when, [fired] { ++*fired; });
    }
}

/** Dispatch the front event the way Context::run does on this tree. */
template <typename Queue>
Tick
fireFrontLike(Queue &queue)
{
    if constexpr (requires { queue.fireFront(); }) {
        return queue.fireFront();
    } else {
        Tick when = 0;
        queue.popFront(&when)();
        return when;
    }
}

/**
 * Event-queue churn: a rotating window of pending events, a deep
 * backlog, and a cancel-heavy phase -- the mix the kernel's sleep /
 * wake / timer traffic produces (fiber wakes dominate, so events are
 * scheduled the way Context::scheduleWake schedules them). Counts
 * every schedule, cancel, and fire as one "event operation".
 */
Result
benchEventQueue(unsigned scale)
{
    const std::uint64_t rounds = 400'000ull * scale;
    constexpr unsigned kWindow = 512; // Pending events at steady state.
    sim::EventQueue queue;
    std::uint64_t fired = 0;
    std::uint64_t ops = 0;
    const auto begin = Clock::now();

    // Phase 1: steady-state window of pending events.
    Tick now = 0;
    for (unsigned i = 0; i < kWindow; ++i)
        scheduleWakeLike(queue, now + 1 + i % 7, &fired);
    ops += kWindow;
    for (std::uint64_t i = 0; i < rounds; ++i) {
        now = fireFrontLike(queue);
        scheduleWakeLike(queue, now + 1 + i % 13, &fired);
        ops += 2;
    }
    const double fire_ms = elapsedMs(begin);

    // Phase 2: cancel-heavy traffic (sleeps that rarely expire).
    for (std::uint64_t i = 0; i < rounds; ++i) {
        sim::EventId id = scheduleWakeLike(queue, now + 1000, &fired);
        queue.cancel(id);
        ops += 2;
    }
    const double cancel_ms = elapsedMs(begin) - fire_ms;

    // Phase 3: drain the backlog.
    while (!queue.empty()) {
        fireFrontLike(queue);
        ++ops;
    }

    Result r;
    r.name = "event_queue";
    r.host_ms = elapsedMs(begin);
    r.metric = "events_per_sec";
    r.rate = static_cast<double>(ops) / (r.host_ms / 1e3);
    std::printf("  event_queue:      %9.1f ms  %12.0f events/sec "
                "(%llu ops, %llu fired; fire %.1f ms, "
                "cancel %.1f ms)\n",
                r.host_ms, r.rate,
                static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(fired), fire_ms,
                cancel_ms);
    return r;
}

/**
 * Same-tick batch dispatch: the kernel's common shape of many events
 * (wakes, IPIs, bus grants) landing on one tick. Each round schedules
 * a burst at a single tick and drains it through Context::run, so the
 * whole find/sweep/pop round trip of the front bucket is paid once
 * per tick -- the path fireTickBatch optimizes.
 */
Result
benchDispatchBatch(unsigned scale)
{
    const std::uint64_t rounds = 40'000ull * scale;
    constexpr unsigned kBurst = 64;
    sim::Context ctx;
    std::uint64_t fired = 0;
    const auto begin = Clock::now();

    for (std::uint64_t i = 0; i < rounds; ++i) {
        const Tick when = ctx.now() + 1;
        for (unsigned j = 0; j < kBurst; ++j)
            ctx.queue().scheduleRaw(when, &bumpCounter, &fired, 0);
        ctx.run();
    }

    Result r;
    r.name = "dispatch_batch";
    r.host_ms = elapsedMs(begin);
    r.metric = "batched_events_per_sec";
    r.rate = static_cast<double>(fired) / (r.host_ms / 1e3);
    std::printf("  dispatch_batch:   %9.1f ms  %12.0f events/sec "
                "(%llu events in bursts of %u)\n",
                r.host_ms, r.rate,
                static_cast<unsigned long long>(fired), kBurst);
    return r;
}

/**
 * TLB churn: the access pattern a shootdown-heavy workload produces --
 * bursts of hits, misses that insert, page invalidations, space
 * flushes, whole-buffer flushes, and cachesSpace polls.
 */
Result
benchTlbChurn(unsigned scale)
{
    const std::uint64_t rounds = 200'000ull * scale;
    hw::MachineConfig config;
    // Directory scale: the virtual-cache mode runs the same structure
    // at cache size rather than TLB size, which is where per-access
    // host cost matters most.
    config.tlb_entries = 1024;
    hw::PhysMem mem(64);
    hw::Tlb tlb(&config, &mem);
    const unsigned spaces = 8;
    std::uint64_t lookups = 0;
    const auto begin = Clock::now();

    for (std::uint64_t i = 0; i < rounds; ++i) {
        const hw::SpaceId space = 1 + i % spaces;
        const Vpn base = static_cast<Vpn>((i * 5) % 1024);
        // A miss, a fill, then a burst of hits (locality).
        if (!tlb.lookup(space, base, ProtRead, 0).hit)
            tlb.insert(space, base, static_cast<Pfn>(base + 1),
                       ProtReadWrite, false);
        for (unsigned j = 0; j < 6; ++j)
            tlb.lookup(space, base, ProtRead, 0);
        lookups += 7;
        // Consistency traffic.
        if (i % 16 == 0) {
            tlb.invalidatePage(space, base);
        } else if (i % 1024 == 5) {
            tlb.flushSpace(space);
        } else if (i % 8192 == 7) {
            tlb.flushAll();
        }
        if (i % 4 == 0)
            (void)tlb.cachesSpace(space);
    }

    Result r;
    r.name = "tlb_churn";
    r.host_ms = elapsedMs(begin);
    r.metric = "tlb_lookup_ns";
    // Headline: ns per lookup (charge the whole loop to lookups; the
    // mix is fixed, so the number is comparable run to run).
    r.rate = r.host_ms * 1e6 / static_cast<double>(lookups);
    const double l0_probes =
        static_cast<double>(tlb.l0_hits + tlb.l0_misses);
    const double l0_ratio =
        l0_probes > 0 ? static_cast<double>(tlb.l0_hits) / l0_probes
                      : 0.0;
    r.extras.emplace_back("l0_hit_ratio", l0_ratio);
    std::printf("  tlb_churn:        %9.1f ms  %12.1f ns/lookup "
                "(%llu lookups, %llu hits, %llu misses, "
                "L0 hit ratio %.3f)\n",
                r.host_ms, r.rate,
                static_cast<unsigned long long>(lookups),
                static_cast<unsigned long long>(tlb.hits),
                static_cast<unsigned long long>(tlb.misses), l0_ratio);
    return r;
}

/**
 * Page-walk churn: the pteAddr + walk pattern Cpu::access produces on
 * every translation -- concentrated on a handful of hot leaf tables,
 * with periodic PTE rewrites (revocations stay visible because the
 * walk cache holds leaf locations, never PTE contents).
 */
Result
benchPageWalk(unsigned scale)
{
    const std::uint64_t rounds = 400'000ull * scale;
    hw::PhysMem mem(256);
    hw::PageTable table(&mem);
    constexpr unsigned kLeaves = 4;
    constexpr unsigned kSpan = kLeaves * hw::PageTable::kPagesPerLeaf;
    for (Vpn vpn = 0; vpn < kSpan; vpn += 7)
        table.writePte(vpn, hw::pte::make(vpn % 199 + 1,
                                          ProtReadWrite));
    std::uint64_t walks = 0;
    std::uint64_t live_ptes = 0;
    const auto begin = Clock::now();

    for (std::uint64_t i = 0; i < rounds; ++i) {
        const Vpn vpn = static_cast<Vpn>((i * 7) % kSpan);
        if (table.pteAddr(vpn) != 0)
            live_ptes += hw::pte::valid(table.walk(vpn).pte);
        ++walks;
        if (i % 1024 == 9)
            table.writePte(vpn, hw::pte::make(vpn % 97 + 1,
                                              ProtRead));
    }

    Result r;
    r.name = "page_walk";
    r.host_ms = elapsedMs(begin);
    r.metric = "walk_ns";
    r.rate = r.host_ms * 1e6 / static_cast<double>(walks);
    const double probes = static_cast<double>(
        table.walkCacheHits() + table.walkCacheMisses());
    const double ratio =
        probes > 0
            ? static_cast<double>(table.walkCacheHits()) / probes
            : 0.0;
    r.extras.emplace_back("walk_cache_hit_ratio", ratio);
    std::printf("  page_walk:        %9.1f ms  %12.1f ns/walk "
                "(%llu walks, %llu valid, walk-cache hit ratio "
                "%.3f)\n",
                r.host_ms, r.rate,
                static_cast<unsigned long long>(walks),
                static_cast<unsigned long long>(live_ptes), ratio);
    return r;
}

/** The Section 5.1 tester as a 16-CPU shootdown storm. */
Result
benchShootdownStorm(unsigned scale)
{
    setLogQuiet(true);
    const auto begin = Clock::now();
    Tick sim_time = 0;
    for (unsigned round = 0; round < scale; ++round) {
        hw::MachineConfig config;
        config.seed = 0x5702 + round;
        vm::Kernel kernel(config);
        apps::ConsistencyTester tester(
            {.children = 12, .warmup = 20 * kMsec});
        tester.execute(kernel);
        if (!tester.consistent())
            fatal("host_perf: shootdown storm detected inconsistency");
        sim_time += kernel.machine().now();
    }

    Result r;
    r.name = "shootdown_storm";
    r.host_ms = elapsedMs(begin);
    r.metric = "sim_us_per_host_ms";
    r.rate = static_cast<double>(sim_time / kUsec) / r.host_ms;
    std::printf("  shootdown_storm:  %9.1f ms  %12.1f sim-us/host-ms\n",
                r.host_ms, r.rate);
    return r;
}

/** The four Section 5.2 applications, sequentially, on fresh kernels. */
Result
benchAppSuite()
{
    setLogQuiet(true);
    const auto begin = Clock::now();
    Tick sim_time = 0;
    for (unsigned index = 0; index < 4; ++index) {
        const bench::AppRun run = bench::runApp(index, {});
        sim_time += run.runtime;
    }

    Result r;
    r.name = "app_suite";
    r.host_ms = elapsedMs(begin);
    r.metric = "sim_us_per_host_ms";
    r.rate = static_cast<double>(sim_time / kUsec) / r.host_ms;
    std::printf("  app_suite:        %9.1f ms  %12.1f sim-us/host-ms\n",
                r.host_ms, r.rate);
    return r;
}

/** FNV-1a fold for the cross-mode equivalence check below. */
std::uint64_t
foldU64(std::uint64_t hash, std::uint64_t value)
{
    for (unsigned i = 0; i < 8; ++i) {
        hash ^= (value >> (8 * i)) & 0xff;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

/**
 * The explorer sweep's workload: a writer storm whose warmup prefix
 * dominates the run (three tight-loop writers churning for a long
 * stretch) followed by a short reprotect tail. The library scenarios
 * keep their warmups small so campaigns stay quick; this one is
 * deliberately prefix-heavy because the bench measures how much of
 * that prefix the farm's fork snapshots recover when every probe
 * targets the tail.
 */
chk::Scenario
sweepScenario()
{
    chk::Scenario s;
    s.name = "host-perf-sweep";
    s.summary = "deep warmup prefix, late reprotect tail";
    s.config.ncpus = 6;
    s.config.seed = 0x5eed5eedull;
    s.bound = 600 * kMsec;
    s.launch = [](vm::Kernel &kernel, chk::ScenarioState *state) {
        vm::Kernel *kp = &kernel;
        kernel.start();
        kernel.spawnThread(
            nullptr, "sweep-driver",
            [kp, state](kern::Thread &drv) {
                vm::Kernel &kernel = *kp;
                vm::Task *task = kernel.createTask("sweep");
                constexpr unsigned kWriters = 3;
                VAddr base = 0;
                if (!kernel.vmAllocate(drv, *task, &base,
                                       kWriters * kPageSize, true)) {
                    state->predicate_ok = false;
                    state->note = "vmAllocate failed";
                    state->finished = true;
                    kernel.machine().ctx().requestStop();
                    return;
                }
                bool stop = false;
                std::vector<kern::Thread *> kids;
                for (unsigned i = 0; i < kWriters; ++i) {
                    kids.push_back(kernel.spawnThread(
                        task, "sweep-writer",
                        [kp, va = base + i * kPageSize,
                         &stop](kern::Thread &self) {
                            vm::Kernel &kernel = *kp;
                            std::uint32_t n = 0;
                            while (!stop) {
                                kern::AccessResult r =
                                    self.access(va, ProtWrite);
                                if (r.ok)
                                    kernel.machine().mem().write32(
                                        r.paddr, ++n);
                                self.cpu().advance(40 * kUsec);
                            }
                        },
                        1 + static_cast<std::int64_t>(i)));
                }
                drv.sleep(150 * kMsec); // The deep shared prefix.
                for (unsigned round = 0; round < 2; ++round) {
                    if (!kernel.vmProtect(drv, *task, base,
                                          kWriters * kPageSize,
                                          ProtRead) ||
                        !kernel.vmProtect(drv, *task, base,
                                          kWriters * kPageSize,
                                          ProtReadWrite)) {
                        state->predicate_ok = false;
                        state->note = "vmProtect failed";
                    }
                    drv.sleep(2 * kMsec);
                }
                stop = true;
                for (kern::Thread *t : kids)
                    drv.join(*t);
                state->finished = true;
                kernel.machine().ctx().requestStop();
            },
            0);
    };
    return s;
}

/**
 * The explorer probe batch through the run farm: one late-window
 * single-delay probe set over the prefix-heavy sweep scenario,
 * executed four ways -- serial, 8 worker threads, fork snapshots, and
 * both -- with a digest-equality check that all four modes saw
 * bit-identical trials. The headline is the farmed speedup over the
 * serial sweep; on a single-core host it is carried almost entirely
 * by snapshot prefix reuse (each probe fork-clones the parked warmup
 * instead of re-simulating it), with thread scaling on top where
 * cores exist.
 */
Result
benchExplorerSweep(unsigned scale)
{
    setLogQuiet(true);
    const chk::Scenario scenario_obj = sweepScenario();
    const chk::Scenario *scenario = &scenario_obj;

    // Baseline run sizes the perturbation index space.
    const chk::Explorer sizer;
    const chk::TrialResult baseline = sizer.runTrial(*scenario, {});
    if (baseline.failed())
        fatal("host_perf: sweep scenario baseline failed");

    // Late-window probes: every delay lands past 90% of the run, so
    // the shared prefix is deep enough to be worth snapshotting.
    const unsigned count = 24 * scale;
    const std::uint64_t lo = baseline.events_fired * 9 / 10;
    const std::uint64_t span = baseline.events_fired - lo;
    constexpr Tick kLadder[] = {30 * kUsec, 120 * kUsec, 500 * kUsec,
                                1500 * kUsec};
    std::vector<SchedulePerturber> probes(count);
    for (unsigned i = 0; i < count; ++i)
        probes[i].delayEvent(lo + span * i / count,
                             kLadder[i % std::size(kLadder)]);

    struct Mode
    {
        const char *name;
        farm::FarmOptions farm;
        double host_ms = 0;
    };
    Mode modes[] = {
        {"serial", {1, false}},
        {"jobs8", {8, false}},
        {"snapshots", {1, true}},
        {"jobs8+snapshots", {8, true}},
    };

    const auto begin = Clock::now();
    std::uint64_t folds[std::size(modes)];
    for (std::size_t m = 0; m < std::size(modes); ++m) {
        const chk::Explorer explorer(nullptr, modes[m].farm);
        const auto mode_begin = Clock::now();
        const std::vector<chk::TrialResult> trials =
            explorer.runTrials(*scenario, probes);
        modes[m].host_ms = elapsedMs(mode_begin);
        std::uint64_t fold = 0xcbf29ce484222325ull;
        for (const chk::TrialResult &t : trials) {
            fold = foldU64(fold, t.completed);
            fold = foldU64(fold, t.predicate_ok);
            fold = foldU64(fold, t.violation_count);
            fold = foldU64(fold, t.events_fired);
            fold = foldU64(fold, t.digest);
        }
        folds[m] = fold;
    }
    for (std::size_t m = 1; m < std::size(modes); ++m) {
        if (folds[m] != folds[0])
            fatal("host_perf: explorer_sweep mode %s diverged from "
                  "serial (0x%llx != 0x%llx)",
                  modes[m].name,
                  static_cast<unsigned long long>(folds[m]),
                  static_cast<unsigned long long>(folds[0]));
    }

    Result r;
    r.name = "explorer_sweep";
    r.host_ms = elapsedMs(begin);
    r.metric = "sweep_speedup_x";
    r.rate = modes[0].host_ms /
             std::max(1e-3, modes[std::size(modes) - 1].host_ms);
    std::printf("  explorer_sweep:   %9.1f ms  %12.2f x speedup "
                "(%u probes over %llu events; serial %.0f ms, "
                "jobs8 %.0f ms, snapshots %.0f ms, "
                "jobs8+snapshots %.0f ms; all modes "
                "bit-identical)\n",
                r.host_ms, r.rate, count,
                static_cast<unsigned long long>(baseline.events_fired),
                modes[0].host_ms, modes[1].host_ms, modes[2].host_ms,
                modes[3].host_ms);
    return r;
}

/**
 * The bench-sweep path through the run farm: the four Section 5.2
 * applications under two configurations each (eight fresh machines),
 * serial vs farmed, with a virtual-runtime equality check. The farmed
 * width comes from bench::farmWidth(8): the sweep is pure simulation
 * with no shared prefix to reuse, so farming wins only with real host
 * cores to spread over -- on a 1-core host, 8 oversubscribed workers
 * measured 0.90x, a pure context-switch tax. When the clamp leaves a
 * width of 1 the sweep opts out of farming and reports 1.00x serial
 * by definition (MACH_BENCH_JOBS overrides the clamp either way).
 */
Result
benchBenchSweep()
{
    setLogQuiet(true);
    std::vector<bench::SweepSpec> specs;
    for (unsigned app = 0; app < 4; ++app) {
        bench::SweepSpec plain;
        plain.app = app;
        specs.push_back(plain);
        bench::SweepSpec multicast;
        multicast.app = app;
        multicast.config.multicast_ipi = true;
        specs.push_back(multicast);
    }
    const unsigned width = bench::farmWidth(8);

    const auto begin = Clock::now();
    const std::vector<bench::AppRun> serial =
        bench::runAppSweep(specs, 1);
    const double serial_ms = elapsedMs(begin);

    Result r;
    r.name = "bench_sweep";
    r.metric = "sweep_speedup_x";
    r.extras.emplace_back("farm_jobs", width);
    // Report the actual host parallelism next to the clamped width:
    // a 1.9x speedup means something different on 2 cores than on 32.
    r.extras.emplace_back("host_cores", bench::hostCores());
    if (width <= 1) {
        r.host_ms = elapsedMs(begin);
        r.rate = 1.0;
        std::printf("  bench_sweep:      %9.1f ms  %12.2f x speedup "
                    "(8 configs, serial opt-out: %u host core(s), "
                    "nothing to farm over; set MACH_BENCH_JOBS to "
                    "force a width)\n",
                    r.host_ms, r.rate, bench::hostCores());
        return r;
    }

    const std::vector<bench::AppRun> farmed =
        bench::runAppSweep(specs, width);
    const double farmed_ms = elapsedMs(begin) - serial_ms;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (serial[i].runtime != farmed[i].runtime)
            fatal("host_perf: bench_sweep run %zu diverged across "
                  "farm widths",
                  i);
    }

    r.host_ms = elapsedMs(begin);
    r.rate = serial_ms / std::max(1e-3, farmed_ms);
    std::printf("  bench_sweep:      %9.1f ms  %12.2f x speedup "
                "(8 configs; serial %.0f ms, jobs%u %.0f ms, "
                "runtimes identical)\n",
                r.host_ms, r.rate, serial_ms, width, farmed_ms);
    return r;
}

void
writeJson(const std::vector<Result> &results, unsigned scale)
{
    std::FILE *out = std::fopen("BENCH_host_perf.json", "w");
    if (out == nullptr)
        fatal("host_perf: cannot write BENCH_host_perf.json");
    std::fprintf(out, "{\n  \"bench\": \"host_perf\",\n"
                      "  \"scale\": %u,\n  \"results\": {\n",
                 scale);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Result &r = results[i];
        std::fprintf(out, "    \"%s\": {\"host_ms\": %.3f, \"%s\": %.3f",
                     r.name.c_str(), r.host_ms, r.metric.c_str(),
                     r.rate);
        for (const auto &[key, value] : r.extras)
            std::fprintf(out, ", \"%s\": %.3f", key.c_str(), value);
        std::fprintf(out, "}%s\n", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
}

} // namespace

int
main()
{
    const unsigned scale = mach::bench::benchScale();
    std::printf("host_perf: wall-clock simulator-core benchmarks "
                "(scale %u)\n", scale);

    std::vector<Result> results;
    results.push_back(benchEventQueue(scale));
    results.push_back(benchDispatchBatch(scale));
    results.push_back(benchTlbChurn(scale));
    results.push_back(benchPageWalk(scale));
    results.push_back(benchShootdownStorm(scale));
    results.push_back(benchAppSuite());
    results.push_back(benchExplorerSweep(scale));
    results.push_back(benchBenchSweep());
    writeJson(results, scale);
    std::printf("wrote BENCH_host_perf.json\n");
    return 0;
}
