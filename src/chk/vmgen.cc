#include "chk/vmgen.hh"

#include <map>
#include <vector>

#include "base/rng.hh"
#include "dev/dma_device.hh"
#include "kern/cpu.hh"
#include "kern/thread.hh"
#include "pmap/pmap.hh"
#include "pmap/shootdown.hh"
#include "vm/kernel.hh"
#include "vm/task.hh"

namespace mach::chk
{

namespace
{

/** Host-side reference model: per-page value and rights. */
struct ModelPage
{
    std::uint32_t value = 0; // Fresh anonymous memory reads zero.
    Prot prot = ProtReadWrite;
};

void
fail(ScenarioState *state, std::string why)
{
    if (state->predicate_ok) {
        state->predicate_ok = false;
        state->note = std::move(why);
    }
}

/**
 * The body thread's op sequence. Serial and self-contained: every
 * model transition is driven by this thread's own deterministic Rng
 * draws, so the predicate is schedule-invariant -- a delay
 * perturbation can move *when* an op runs but never what it must
 * observe.
 */
void
runOps(vm::Kernel &kernel, kern::Thread &self, vm::Task &task,
       const VmGenOptions &o, ScenarioState *state)
{
    Rng rng(o.seed, "chk.vmgen");
    std::map<VAddr, ModelPage> model;

    const auto randomPage = [&]() -> VAddr {
        auto it = model.begin();
        std::advance(it, static_cast<long>(rng.below(model.size())));
        return it->first;
    };
    const auto check = [&](bool cond, const char *what) {
        if (!cond)
            fail(state, std::string("vmgen: ") + what);
        return cond;
    };

    for (unsigned op = 0; op < o.ops && state->predicate_ok; ++op) {
        const std::uint64_t kind = rng.below(100);
        if (kind < 18 || model.empty()) {
            // Allocate 1-3 pages.
            const std::uint32_t pages =
                static_cast<std::uint32_t>(rng.range(1, 3));
            VAddr va = 0;
            if (!check(kernel.vmAllocate(self, task, &va,
                                         pages * kPageSize, true),
                       "vmAllocate failed"))
                return;
            for (std::uint32_t p = 0; p < pages; ++p)
                model[va + p * kPageSize] = ModelPage{};
        } else if (kind < 42) {
            // Write a random page; legality follows the model rights.
            const VAddr page = randomPage();
            const auto value = static_cast<std::uint32_t>(rng.next());
            const bool ok = self.store32(page, value);
            ModelPage &m = model.at(page);
            if (protAllows(m.prot, ProtWrite)) {
                if (!check(ok, "writable page refused a store"))
                    return;
                m.value = value;
            } else if (!check(!ok, "store landed on a read-only page")) {
                return;
            }
        } else if (kind < 64) {
            // Read a random page and compare against the model.
            const VAddr page = randomPage();
            std::uint32_t value = 0;
            const bool ok = self.load32(page, &value);
            const ModelPage &m = model.at(page);
            if (protAllows(m.prot, ProtRead)) {
                if (!check(ok, "readable page refused a load") ||
                    !check(value == m.value, "load saw a stale value"))
                    return;
            } else if (!check(!ok, "load landed on a ProtNone page")) {
                return;
            }
        } else if (kind < 78) {
            // Re-protect a random page.
            const VAddr page = randomPage();
            static const Prot kChoices[] = {ProtNone, ProtRead,
                                            ProtReadWrite};
            const Prot prot = kChoices[rng.below(3)];
            if (!check(kernel.vmProtect(self, task, page, kPageSize,
                                        prot),
                       "vmProtect failed"))
                return;
            model.at(page).prot = prot;
        } else if (kind < 84) {
            // Virtual-copy a readable page; the copy snapshots the
            // source's value and then diverges.
            const VAddr page = randomPage();
            const ModelPage src = model.at(page);
            if (!protAllows(src.prot, ProtRead))
                continue;
            VAddr copy = 0;
            if (!check(kernel.vmCopy(self, task, page, kPageSize,
                                     &copy),
                       "vmCopy failed"))
                return;
            model[copy] = ModelPage{src.value, src.prot};
            if (protAllows(src.prot, ProtWrite)) {
                const auto value =
                    static_cast<std::uint32_t>(rng.next());
                if (!check(self.store32(copy, value),
                           "store to a fresh copy failed"))
                    return;
                model.at(copy).value = value;
            }
            std::uint32_t back = 0;
            if (!check(self.load32(page, &back),
                       "source read-back failed") ||
                !check(back == model.at(page).value,
                       "copy write moved the source"))
                return;
        } else if (kind < 90) {
            // Remap: deallocate a page and re-allocate the same
            // address (anywhere=false). Fresh anonymous memory again.
            const VAddr page = randomPage();
            if (!check(kernel.vmDeallocate(self, task, page,
                                           kPageSize),
                       "vmDeallocate (remap) failed"))
                return;
            VAddr va = page;
            if (!check(kernel.vmAllocate(self, task, &va, kPageSize,
                                         false),
                       "fixed re-allocate failed") ||
                !check(va == page, "fixed re-allocate moved"))
                return;
            model.at(page) = ModelPage{};
        } else if (o.devices && kind < 96) {
            // DMA op against a random page through the device's
            // IOTLB. The model's rights decide legality, with the
            // lazy-repair wrinkle (see the file comment in
            // chk/vmgen.hh): a CPU touch precedes every legal DMA op
            // so the lazily-repaired PTE matches the model rights by
            // the time the IOMMU walks it.
            const VAddr page = randomPage();
            ModelPage &m = model.at(page);
            dev::DmaDevice &device = kernel.device(0);
            pmap::Pmap &pmap = task.pmap();
            if (protAllows(m.prot, ProtWrite)) {
                if (!check(self.store32(page, m.value),
                           "DMA repair store failed"))
                    return;
                const auto value =
                    static_cast<std::uint32_t>(rng.next());
                if (!check(device.dmaWrite(pmap, vaToVpn(page), 0,
                                           value),
                           "DMA write refused on a writable page"))
                    return;
                m.value = value;
                std::uint32_t back = 0;
                if (!check(self.load32(page, &back),
                           "DMA write read-back failed") ||
                    !check(back == value,
                           "CPU read missed a committed DMA write"))
                    return;
            } else if (protAllows(m.prot, ProtRead)) {
                std::uint32_t dummy = 0;
                if (!check(self.load32(page, &dummy),
                           "DMA repair load failed"))
                    return;
                if (!check(device.dmaRead(pmap, vaToVpn(page)),
                           "DMA read refused on a readable page"))
                    return;
                // Write rights were revoked; the revocation must have
                // reached the IOTLB (or its walk must see the PTE),
                // so the DMA write is dropped as a fault.
                if (!check(!device.dmaWrite(pmap, vaToVpn(page), 0, 1),
                           "DMA write landed on a read-only page"))
                    return;
            } else {
                if (!check(!device.dmaRead(pmap, vaToVpn(page)),
                           "DMA read landed on a ProtNone page") ||
                    !check(!device.dmaWrite(pmap, vaToVpn(page), 0, 1),
                           "DMA write landed on a ProtNone page"))
                    return;
            }
        } else if (o.fork_churn && kind < 95) {
            // Fork churn: share one readable page into a child task,
            // read it back from the child, tear the child down.
            const VAddr page = randomPage();
            const ModelPage &m = model.at(page);
            if (!protAllows(m.prot, ProtRead))
                continue;
            if (!check(kernel.vmInherit(self, task, page, kPageSize,
                                        vm::Inherit::Share),
                       "vmInherit failed"))
                return;
            vm::Task *child =
                kernel.forkTask(self, task, "vmgen-child");
            if (!check(child != nullptr, "forkTask failed"))
                return;
            std::uint32_t got = 0;
            if (!check(kernel.vmRead(self, *child, page, &got, 4),
                       "child vmRead failed") ||
                !check(got == m.value,
                       "child saw a value the parent never shared"))
                return;
            kernel.destroyTask(self, child);
        } else {
            // Deallocate a random page; it must then be unmapped.
            const VAddr page = randomPage();
            if (!check(kernel.vmDeallocate(self, task, page,
                                           kPageSize),
                       "vmDeallocate failed"))
                return;
            model.erase(page);
            std::uint32_t value = 0;
            if (!check(!self.load32(page, &value),
                       "load succeeded on an unmapped page"))
                return;
        }
    }

    // Full final sweep against the model.
    for (const auto &[page, m] : model) {
        std::uint32_t value = 0;
        const bool ok = self.load32(page, &value);
        if (protAllows(m.prot, ProtRead)) {
            if (!check(ok, "final sweep load failed") ||
                !check(value == m.value, "final sweep mismatch"))
                return;
        } else if (!check(!ok, "final sweep read a ProtNone page")) {
            return;
        }
    }
}

} // namespace

Scenario
vmgenScenario(const VmGenOptions &opt)
{
    Scenario s;
    s.name = "vmgen-" + std::to_string(opt.seed) +
             (opt.numa_nodes > 1
                  ? "x" + std::to_string(opt.numa_nodes)
                  : "") +
             (opt.devices ? "d" : "");
    s.summary = opt.devices
                    ? "generated VM+DMA op sequence vs the model"
                    : "generated VM-op sequence vs the reference model";
    s.config.ncpus = opt.ncpus;
    s.config.seed = 0x5eed0000ull + opt.seed;
    if (opt.numa_nodes > 1)
        s.config.numa_nodes = opt.numa_nodes;
    if (opt.devices) {
        s.config.devices = 1;
        s.config.iotlb_entries = 4;
    }
    s.bound = opt.bound;
    const VmGenOptions o = opt;
    s.launch = [o](vm::Kernel &kernel, ScenarioState *state) {
        vm::Kernel *kp = &kernel;
        kernel.start();
        kernel.spawnThread(
            nullptr, "vmgen-driver",
            [kp, state, o](kern::Thread &drv) {
                vm::Kernel &kernel = *kp;
                vm::Task *task = kernel.createTask("vmgen");
                VAddr anchor = 0;
                if (!kernel.vmAllocate(drv, *task, &anchor, kPageSize,
                                       true)) {
                    fail(state, "vmgen: anchor vmAllocate failed");
                    state->finished = true;
                    kernel.machine().ctx().requestStop();
                    return;
                }
                // Read-only touchers keep the task's pmap live on the
                // other CPUs (spread across nodes when there are
                // several), so every protection reduction the op
                // sequence performs is a real cross-CPU shootdown.
                // They never write, so they cannot perturb the model.
                bool stop = false;
                const unsigned ncpus = kernel.machine().ncpus();
                std::vector<kern::Thread *> touchers;
                const unsigned n_touch =
                    ncpus > 2 ? 2 : (ncpus > 1 ? 1 : 0);
                for (unsigned i = 0; i < n_touch; ++i) {
                    const std::int64_t pin =
                        i == 0 ? 1
                               : static_cast<std::int64_t>(ncpus - 1);
                    touchers.push_back(kernel.spawnThread(
                        task, "vmgen-touch",
                        [anchor, &stop](kern::Thread &self) {
                            while (!stop) {
                                self.access(anchor, ProtRead);
                                self.cpu().advance(250 * kUsec);
                            }
                        },
                        pin));
                }
                // The device joins the task's responder set for the
                // whole op sequence, so every protection reduction
                // and deallocation also queues at its IOTLB.
                if (o.devices)
                    kernel.device(0).attachTo(task->pmap());
                kern::Thread *body = kernel.spawnThread(
                    task, "vmgen-body",
                    [kp, state, o, task](kern::Thread &self) {
                        runOps(*kp, self, *task, o, state);
                    },
                    0);
                drv.join(*body);
                stop = true;
                for (kern::Thread *t : touchers)
                    drv.join(*t);
                if (o.devices) {
                    // Detach from a plain fiber: the final drain
                    // consumes simulated time.
                    bool detached = false;
                    kernel.machine().ctx().spawn(
                        "vmgen-detach", [kp, task, &detached] {
                            kp->device(0).detachFrom(task->pmap());
                            detached = true;
                        });
                    while (!detached)
                        drv.sleep(20 * kUsec);
                    const dev::DmaDevice &device = kernel.device(0);
                    if ((device.dma_reads + device.dma_writes == 0 ||
                         kernel.pmaps().shoot().device_commands == 0) &&
                        state->coverage_ok) {
                        state->coverage_ok = false;
                        if (state->note.empty())
                            state->note =
                                "vmgen: device path not exercised";
                    }
                }
                if (kernel.machine().cfg().consistency_strategy ==
                        hw::ConsistencyStrategy::Shootdown &&
                    kernel.pmaps().shoot().initiated == 0 &&
                    state->coverage_ok) {
                    state->coverage_ok = false;
                    if (state->note.empty())
                        state->note = "vmgen: no shootdown ran";
                }
                state->finished = true;
                kernel.machine().ctx().requestStop();
            },
            0);
    };
    return s;
}

bool
parseVmgenName(const std::string &name, VmGenOptions *out)
{
    const std::string prefix = "vmgen-";
    if (name.compare(0, prefix.size(), prefix) != 0)
        return false;
    std::string rest = name.substr(prefix.size());
    bool devices = false;
    if (!rest.empty() && rest.back() == 'd') {
        devices = true;
        rest.pop_back();
    }
    if (rest.empty())
        return false;
    std::size_t i = 0;
    std::uint64_t seed = 0;
    while (i < rest.size() && rest[i] >= '0' && rest[i] <= '9') {
        seed = seed * 10 + static_cast<std::uint64_t>(rest[i] - '0');
        ++i;
    }
    if (i == 0)
        return false;
    VmGenOptions o;
    o.seed = seed;
    if (i != rest.size()) {
        if (rest[i] != 'x')
            return false;
        ++i;
        std::uint64_t nodes = 0;
        std::size_t start = i;
        while (i < rest.size() && rest[i] >= '0' && rest[i] <= '9') {
            nodes = nodes * 10 +
                    static_cast<std::uint64_t>(rest[i] - '0');
            ++i;
        }
        if (i == start || i != rest.size() || nodes < 2)
            return false;
        o.numa_nodes = static_cast<unsigned>(nodes);
        o.ncpus = 2 * o.numa_nodes;
    }
    o.devices = devices;
    *out = o;
    return true;
}

} // namespace mach::chk
