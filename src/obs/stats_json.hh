/**
 * @file
 * Machine-readable stats export: the `machsim --stats-json` backend.
 *
 * Serializes everything a dashboard or regression gate needs about a
 * finished run -- histogram percentiles, machine counters, policy and
 * NUMA counters, the run digest -- as one JSON document. The output is
 * deterministic: integer-only values, fixed field order (histograms in
 * creation order, counters in declaration order), no timestamps or
 * host-dependent fields, so the same seed produces byte-identical
 * bytes. Schema is versioned ("machsim-stats-v1"); see
 * docs/OBSERVABILITY.md for the field reference.
 */

#ifndef MACH_OBS_STATS_JSON_HH
#define MACH_OBS_STATS_JSON_HH

#include <cstdint>
#include <string>

namespace mach::vm
{
class Kernel;
} // namespace mach::vm

namespace mach::obs
{

/** Run identity echoed into the document (the caller knows the CLI). */
struct StatsMeta
{
    std::string app;
    std::uint64_t seed = 0;
    std::string policy;
};

/**
 * Render the machine's current state -- recorder histograms,
 * xpr::MachineStats counters, per-CPU TLB counters, run digest -- as a
 * deterministic JSON document. Call after the run completes.
 */
std::string statsJson(vm::Kernel &kernel, const StatsMeta &meta);

/** statsJson() to a file; returns false if the file cannot be opened. */
bool writeStatsJson(const std::string &path, vm::Kernel &kernel,
                    const StatsMeta &meta);

} // namespace mach::obs

#endif // MACH_OBS_STATS_JSON_HH
