/**
 * @file
 * Two-level page tables in the style of the NS32382 MMU.
 *
 * A 32-bit virtual address splits 10/10/12: the top 10 bits index a root
 * table of 1024 entries, the next 10 bits index a page-sized leaf table
 * of 1024 PTEs, and the low 12 bits are the page offset. Leaf tables are
 * allocated on demand in page-sized chunks; the pmap module exploits this
 * structure for its residual lazy evaluation ("if the pmap module ever
 * finds a missing second level page table entry, it knows that an entire
 * page of second level entries is missing", Section 7.2).
 *
 * Both table levels live in simulated physical memory, so the TLB's
 * hardware reload and reference/modify-bit writeback operate on the very
 * same words the pmap module updates -- faithfully reproducing the races
 * of Section 3.
 */

#ifndef MACH_HW_PAGE_TABLE_HH
#define MACH_HW_PAGE_TABLE_HH

#include <cstdint>
#include <functional>

#include "base/types.hh"
#include "hw/phys_mem.hh"

namespace mach::hw
{

/** PTE bit layout (32-bit entries at both levels). */
namespace pte
{
constexpr std::uint32_t kValid = 1u << 0;
constexpr std::uint32_t kWrite = 1u << 1;
constexpr std::uint32_t kRef = 1u << 2;
constexpr std::uint32_t kMod = 1u << 3;
constexpr std::uint32_t kPfnShift = kPageShift;

constexpr std::uint32_t
make(Pfn pfn, Prot prot, bool ref = false, bool mod = false)
{
    std::uint32_t v = (pfn << kPfnShift) | kValid;
    if (protAllows(prot, ProtWrite))
        v |= kWrite;
    if (ref)
        v |= kRef;
    if (mod)
        v |= kMod;
    return v;
}

constexpr bool valid(std::uint32_t v) { return (v & kValid) != 0; }
constexpr bool writable(std::uint32_t v) { return (v & kWrite) != 0; }
constexpr bool referenced(std::uint32_t v) { return (v & kRef) != 0; }
constexpr bool modified(std::uint32_t v) { return (v & kMod) != 0; }
constexpr Pfn pfn(std::uint32_t v) { return v >> kPfnShift; }

constexpr Prot
prot(std::uint32_t v)
{
    if (!valid(v))
        return ProtNone;
    return writable(v) ? ProtReadWrite : ProtRead;
}
} // namespace pte

/** Result of a hardware page-table walk. */
struct WalkResult
{
    std::uint32_t pte = 0;       ///< Leaf PTE value (0 if none).
    unsigned memory_reads = 0;   ///< Accesses performed by the walker.
    bool leaf_present = false;   ///< Second-level table existed.
};

/** One pmap's two-level page table. */
class PageTable
{
  public:
    static constexpr unsigned kEntriesPerTable = kPageSize / 4;
    /** Pages of VA space covered by one leaf table. */
    static constexpr unsigned kPagesPerLeaf = kEntriesPerTable;

    explicit PageTable(PhysMem *mem);
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /** Physical address of the root table (for diagnostics). */
    PAddr rootAddr() const;

    /**
     * Hardware walk as the MMU performs it: read root entry, then leaf
     * PTE. Never allocates; returns pte = 0 when any level is missing.
     */
    WalkResult walk(Vpn vpn) const;

    /** True when the leaf table covering @p vpn exists. */
    bool leafPresent(Vpn vpn) const;

    /**
     * Read the PTE for @p vpn; 0 when unmapped (missing levels read as
     * invalid, matching hardware).
     */
    std::uint32_t readPte(Vpn vpn) const;

    /**
     * Write the PTE for @p vpn, allocating the leaf table on demand.
     * Writing 0 (invalid) never allocates.
     */
    void writePte(Vpn vpn, std::uint32_t value);

    /** Physical address of the PTE word for @p vpn; 0 if leaf missing. */
    PAddr pteAddr(Vpn vpn) const;

    /**
     * Invoke @p fn for every valid PTE with vpn in [start, end),
     * skipping whole missing leaf tables (the residual lazy-evaluation
     * structure knowledge). @p fn may rewrite the PTE via writePte.
     */
    void forEachValid(Vpn start, Vpn end,
                      const std::function<void(Vpn,
                                               std::uint32_t)> &fn) const;

    /** Count of valid PTEs in [start, end) (skips missing leaves). */
    unsigned countValid(Vpn start, Vpn end) const;

    /**
     * Free all leaf tables, invalidating every mapping. The pmap can be
     * reconstructed from scratch by subsequent page faults (Section 2).
     */
    void collect();

    /** Number of leaf tables currently allocated. */
    unsigned leafCount() const { return leaf_count_; }

  private:
    std::uint32_t rootEntry(Vpn vpn) const;

    PhysMem *mem_;
    Pfn root_pfn_;
    unsigned leaf_count_ = 0;
};

} // namespace mach::hw

#endif // MACH_HW_PAGE_TABLE_HH
