/**
 * @file
 * Protocol-level tests of the shootdown refinements the paper lists in
 * Section 4: interrupt dedup, single-pass multi-shootdown response,
 * the ceased-using-the-pmap shortcut, responder sampling, and the
 * invalidation-policy threshold.
 */

#include <gtest/gtest.h>

#include "apps/consistency_tester.hh"
#include "pmap/shootdown.hh"
#include "vm/kernel.hh"

namespace mach
{
namespace
{

void
inKernel(hw::MachineConfig config,
         const std::function<void(vm::Kernel &, kern::Thread &)> &body)
{
    setLogQuiet(true);
    vm::Kernel kernel(config);
    kernel.start();
    bool finished = false;
    kernel.spawnThread(nullptr, "proto-driver",
                       [&](kern::Thread &driver) {
                           body(kernel, driver);
                           finished = true;
                           kernel.machine().ctx().requestStop();
                       });
    kernel.machine().run();
    ASSERT_TRUE(finished);
}

hw::MachineConfig
config8()
{
    hw::MachineConfig config;
    config.ncpus = 8;
    return config;
}

TEST(ShootProtocol, InvalidationPolicySmallRangeUsesEntries)
{
    inKernel(config8(), [](vm::Kernel &kernel, kern::Thread &drv) {
        kern::Cpu &cpu = drv.cpu();
        auto pmap = kernel.pmaps().createPmap();
        pmap->activate(cpu);
        for (Vpn v = 0; v < 8; ++v)
            cpu.tlb().insert(pmap->space(), v, v + 1, ProtRead, false);

        const std::uint64_t flushes_before = cpu.tlb().flushes;
        // Range of 2 pages <= threshold (4): individual invalidates.
        kernel.pmaps().shoot().invalidateLocal(cpu, pmap->space(), 0,
                                               2);
        EXPECT_EQ(cpu.tlb().flushes, flushes_before);
        EXPECT_EQ(cpu.tlb().validCount(), 6u);

        // Range of 6 pages > threshold: one whole-buffer flush.
        kernel.pmaps().shoot().invalidateLocal(cpu, pmap->space(), 0,
                                               6);
        EXPECT_EQ(cpu.tlb().flushes, flushes_before + 1);
        EXPECT_EQ(cpu.tlb().validCount(), 0u);
        pmap->deactivate(cpu);
    });
}

TEST(ShootProtocol, SingleResponderPassServicesConcurrentShootdowns)
{
    // Two initiators (on different pmaps) target the same responder at
    // nearly the same moment; the responder's while(action_needed)
    // loop should handle both in one interrupt where they overlap.
    inKernel(config8(), [](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task_a = kernel.createTask("a");
        vm::Task *task_b = kernel.createTask("b");

        // The shared responder: one thread alternating between both
        // tasks' memory... simpler: one thread of each task pinned to
        // the same processor cannot run concurrently, so instead make
        // one multi-threaded task pair per initiator with a common
        // responder CPU each.
        VAddr va_a = 0, va_b = 0;
        bool stop = false;
        kern::Thread *resp_a = kernel.spawnThread(
            task_a, "resp-a",
            [&](kern::Thread &self) {
                ASSERT_TRUE(kernel.vmAllocate(self, *task_a, &va_a,
                                              kPageSize, true));
                while (!stop) {
                    self.access(va_a, ProtWrite);
                    self.cpu().advance(400 * kUsec);
                }
            },
            1);
        (void)resp_a;
        kern::Thread *resp_b = kernel.spawnThread(
            task_b, "resp-b",
            [&](kern::Thread &self) {
                ASSERT_TRUE(kernel.vmAllocate(self, *task_b, &va_b,
                                              kPageSize, true));
                while (!stop) {
                    self.access(va_b, ProtWrite);
                    self.cpu().advance(400 * kUsec);
                }
            },
            2);
        (void)resp_b;
        drv.sleep(20 * kMsec);

        // Two initiators fire "simultaneously" on different pmaps.
        kern::Thread *init_a = kernel.spawnThread(
            task_a, "init-a",
            [&](kern::Thread &self) {
                kernel.vmProtect(self, *task_a, va_a, kPageSize,
                                 ProtRead);
            },
            3);
        kern::Thread *init_b = kernel.spawnThread(
            task_b, "init-b",
            [&](kern::Thread &self) {
                kernel.vmProtect(self, *task_b, va_b, kPageSize,
                                 ProtRead);
            },
            4);
        drv.join(*init_a);
        drv.join(*init_b);
        stop = true;

        // Both completed without deadlock (the concurrent-initiator
        // hazard of Section 4), and the machine is consistent.
        EXPECT_GE(kernel.pmaps().shoot().initiated, 2u);
        EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
    });
}

TEST(ShootProtocol, CeasedUsingPmapNeedsNoSynchronization)
{
    // A responder that stopped using the pmap before its interrupt
    // arrives doesn't hold the initiator up: its context switch
    // flushed the TLB and cleared in_use, so the wait condition
    // "active && in_use" releases immediately.
    inKernel(config8(), [](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("t");
        VAddr va = 0;

        kern::Thread *toucher = kernel.spawnThread(
            task, "toucher",
            [&](kern::Thread &self) {
                ASSERT_TRUE(kernel.vmAllocate(self, *task, &va,
                                              kPageSize, true));
                ASSERT_TRUE(self.store32(va, 1));
                // Exit: the processor switches away, deactivating the
                // pmap (and flushing the TLB on baseline hardware).
            },
            1);
        drv.join(*toucher);
        drv.sleep(5 * kMsec);

        kern::Thread *init = kernel.spawnThread(
            task, "init",
            [&](kern::Thread &self) {
                const Tick before = kernel.machine().now();
                kernel.vmProtect(self, *task, va, kPageSize, ProtRead);
                // No other processor uses the pmap anymore: no
                // interrupts, and the operation is quick.
                EXPECT_LT(kernel.machine().now() - before, 5 * kMsec);
            },
            2);
        drv.join(*init);
        EXPECT_EQ(kernel.pmaps().shoot().interrupts_sent, 0u);
    });
}

TEST(ShootProtocol, RemoteAddressSpaceOperationShootsTargetsCpus)
{
    // Section 2: the second situation requiring consistency actions is
    // "invoking an operation on the address space of another task that
    // is executing on a different processor". A controller task
    // write-protects a victim task's hot page; the victim's processor
    // must lose its writable entry.
    inKernel(config8(), [](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *victim = kernel.createTask("victim");
        VAddr va = 0;
        bool revoked_seen = false;
        bool stop = false;

        kern::Thread *victim_thread = kernel.spawnThread(
            victim, "victim-main",
            [&](kern::Thread &self) {
                ASSERT_TRUE(kernel.vmAllocate(self, *victim, &va,
                                              kPageSize, true));
                while (!stop) {
                    const kern::AccessResult r =
                        self.access(va, ProtWrite);
                    if (!r.ok) {
                        // The remote task revoked our write access.
                        revoked_seen = true;
                        break;
                    }
                    kernel.machine().mem().write32(r.paddr, 1);
                    self.cpu().advance(300 * kUsec);
                }
            },
            1);
        drv.sleep(20 * kMsec);

        vm::Task *controller = kernel.createTask("controller");
        kern::Thread *ctl_thread = kernel.spawnThread(
            controller, "controller-main",
            [&](kern::Thread &self) {
                // Operate on the *victim's* space from another task.
                ASSERT_TRUE(kernel.vmProtect(self, *victim, va,
                                             kPageSize, ProtRead));
            },
            2);
        drv.join(*ctl_thread);
        drv.join(*victim_thread);
        stop = true;

        EXPECT_TRUE(revoked_seen);
        EXPECT_GE(kernel.pmaps().shoot().interrupts_sent, 1u);
        EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
    });
}

TEST(ShootProtocol, RemoteReadOfHotPageSeesLatestData)
{
    // vm_read on another task's space while that task keeps writing:
    // the read is performed through the current page tables, so it
    // observes a value the writer actually wrote.
    inKernel(config8(), [](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *victim = kernel.createTask("victim");
        VAddr va = 0;
        bool stop = false;
        kern::Thread *writer = kernel.spawnThread(
            victim, "writer",
            [&](kern::Thread &self) {
                ASSERT_TRUE(kernel.vmAllocate(self, *victim, &va,
                                              kPageSize, true));
                std::uint32_t value = 0x100;
                while (!stop) {
                    ASSERT_TRUE(self.store32(va, value));
                    ++value;
                    self.cpu().advance(1 * kMsec);
                }
            },
            1);
        drv.sleep(15 * kMsec);

        std::uint32_t snapshot = 0;
        ASSERT_TRUE(kernel.vmRead(drv, *victim, va, &snapshot, 4));
        EXPECT_GE(snapshot, 0x100u);
        stop = true;
        drv.join(*writer);
    });
}

TEST(ShootProtocol, ResponderSamplingOnlyOnConfiguredCpus)
{
    hw::MachineConfig config;
    config.xpr_responder_cpus = 2; // Sample CPUs 0 and 1 only.
    setLogQuiet(true);
    vm::Kernel kernel(config);
    // Children on CPUs 0..5; main on 6. Responders run on 0..5 but
    // only 0 and 1 may record.
    apps::ConsistencyTester tester({.children = 6, .warmup = 20 * kMsec});
    tester.execute(kernel);
    for (const xpr::Event &event : kernel.machine().xpr().events()) {
        if (event.kind == xpr::EventKind::ShootResponder) {
            EXPECT_LT(event.cpu, 2u);
        }
    }
}

TEST(ShootProtocol, ResponderWithEmptyTlbIsStillSynchronized)
{
    // The O(1) cachesSpace index makes it tempting to refine the
    // initiator's target set (and its shoot() wait loop) with a "TLB
    // does not cache the space" test, echoing the paper's "ceased
    // using the pmap" refinement. That would be wrong on hardware-
    // reload machines: a processor whose TLB holds no entry for the
    // space can still walk the old page tables mid-change and
    // re-cache a stale PTE, so only leaving the pmap's in-use set
    // (or the active set) may exempt a processor -- an empty buffer
    // may not. The wait condition (action_needed && active && inUse)
    // deliberately has no cachesSpace term; this pins that choice:
    // a responder with a freshly emptied TLB is still interrupted
    // and the protection change stays consistent.
    inKernel(config8(), [](vm::Kernel &kernel, kern::Thread &drv) {
        vm::Task *task = kernel.createTask("empty-tlb");
        VAddr va = 0;
        bool stop = false;
        std::uint32_t writes = 0;
        kern::Thread *resp = kernel.spawnThread(
            task, "resp",
            [&](kern::Thread &self) {
                ASSERT_TRUE(kernel.vmAllocate(self, *task, &va,
                                              kPageSize, true));
                while (!stop) {
                    kern::AccessResult r =
                        self.access(va, ProtWrite);
                    if (r.ok)
                        kernel.machine().mem().write32(r.paddr,
                                                       ++writes);
                    self.cpu().advance(2 * kMsec);
                }
            },
            1);
        drv.sleep(10 * kMsec);

        kern::Cpu &rcpu = kernel.machine().cpu(1);
        const hw::SpaceId space = task->pmap().space();
        ASSERT_TRUE(task->pmap().inUse(1));
        rcpu.tlb().flushAll(); // host-side; no simulated time passes
        ASSERT_FALSE(rcpu.tlb().cachesSpace(space));
        // The in-use bit outlives the buffer contents.
        ASSERT_TRUE(task->pmap().inUse(1));

        const std::uint64_t sent_before =
            kernel.pmaps().shoot().interrupts_sent;
        ASSERT_TRUE(
            kernel.vmProtect(drv, *task, va, kPageSize, ProtRead));
        EXPECT_GT(kernel.pmaps().shoot().interrupts_sent, sent_before)
            << "initiator skipped a responder because its TLB "
               "happened to be empty";

        // And the change is actually consistent: nothing lands
        // through the revoked mapping, no TLB disagrees with the
        // page tables.
        std::uint32_t before = 0, after = 0;
        ASSERT_TRUE(kernel.vmRead(drv, *task, va, &before, 4));
        drv.sleep(8 * kMsec);
        ASSERT_TRUE(kernel.vmRead(drv, *task, va, &after, 4));
        EXPECT_EQ(after, before);
        EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());

        stop = true;
        drv.join(*resp);
    });
}

TEST(ShootProtocol, StatsCountersAreCoherent)
{
    setLogQuiet(true);
    hw::MachineConfig config;
    vm::Kernel kernel(config);
    apps::ConsistencyTester tester({.children = 5, .warmup = 20 * kMsec});
    tester.execute(kernel);
    const pmap::ShootdownController &shoot = kernel.pmaps().shoot();
    EXPECT_GE(shoot.initiated, 1u);
    EXPECT_GE(shoot.interrupts_sent, 5u);
    EXPECT_GE(shoot.responder_passes, 5u);
    EXPECT_EQ(shoot.remote_invalidates, 0u);
}

} // namespace
} // namespace mach
