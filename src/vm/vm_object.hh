/**
 * @file
 * Virtual memory objects and resident pages.
 *
 * A VmObject is a container of pages backed (optionally) by a pager.
 * Copy-on-write is implemented with shadow chains: a shadow object
 * holds privately modified pages and defers to the object it shadows
 * for everything else. Chains arise from fork with copy inheritance,
 * vm_copy, and Mach-style virtual-copy message passing (Section 2).
 */

#ifndef MACH_VM_VM_OBJECT_HH
#define MACH_VM_VM_OBJECT_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>

#include "base/types.hh"
#include "hw/phys_mem.hh"

namespace mach::vm
{

class VmObject;
using ObjectPtr = std::shared_ptr<VmObject>;

/** A resident page of an object. */
struct VmPage
{
    Pfn pfn = 0;
    /** Wired pages are never chosen by the pageout daemon. */
    bool wired = false;
    /**
     * Page is in transit to backing store; faulters must wait rather
     * than re-map a frame that is about to be freed.
     */
    bool busy = false;
    /**
     * Faults taken on this page from a node other than the frame's,
     * since the last migration (Migrate placement policy only).
     */
    std::uint16_t remote_faults = 0;
};

/** Result of a shadow-chain lookup. */
struct PageLookup
{
    VmObject *object = nullptr; ///< Object the page was found in.
    VmPage *page = nullptr;
    unsigned depth = 0;         ///< 0 = found in the top object.
};

/** A memory object: pages plus an optional shadow (backing) object. */
class VmObject
{
  public:
    /**
     * Create a top-level (anonymous) object of @p size pages. The
     * object frees its remaining resident frames back to @p mem when
     * the last reference drops.
     */
    static ObjectPtr create(hw::PhysMem *mem, std::uint32_t size_pages);

    /** Create a shadow of @p backing starting at @p backing_offset. */
    static ObjectPtr makeShadow(ObjectPtr backing,
                                std::uint32_t backing_offset,
                                std::uint32_t size_pages);

    ~VmObject();

    std::uint64_t id() const { return id_; }
    std::uint32_t sizePages() const { return size_pages_; }

    VmObject *shadow() { return shadow_.get(); }
    const ObjectPtr &shadowRef() const { return shadow_; }
    std::uint32_t shadowOffset() const { return shadow_offset_; }

    /** Page resident in this object at @p offset (pages), or null. */
    VmPage *lookupLocal(std::uint32_t offset);

    /**
     * Search this object and its shadow chain for the page at
     * @p offset (pages, relative to this object).
     */
    PageLookup lookupChain(std::uint32_t offset);

    /** Insert a page at @p offset; panics if one is already there. */
    VmPage *insertPage(std::uint32_t offset, Pfn pfn);

    /** Remove the page at @p offset (frame freeing is the caller's). */
    void removePage(std::uint32_t offset);

    /** All resident pages (offset -> page). */
    const std::map<std::uint32_t, VmPage> &pages() const
    {
        return pages_;
    }
    std::map<std::uint32_t, VmPage> &pages() { return pages_; }

    unsigned residentCount() const
    {
        return static_cast<unsigned>(pages_.size());
    }

    /** Depth of the shadow chain below this object. */
    unsigned chainDepth() const;

  private:
    VmObject() = default;

    // Atomic: see Task::next_id_ -- shared across farmed machines,
    // identity-only (the pager keys on it but never iterates in id
    // order).
    static std::atomic<std::uint64_t> next_id_;

    hw::PhysMem *mem_ = nullptr;
    std::uint64_t id_ = 0;
    std::uint32_t size_pages_ = 0;
    ObjectPtr shadow_;
    std::uint32_t shadow_offset_ = 0;
    std::map<std::uint32_t, VmPage> pages_;
};

} // namespace mach::vm

#endif // MACH_VM_VM_OBJECT_HH
