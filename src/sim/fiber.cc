#include "sim/fiber.hh"

#include <cstdint>

#include "base/logging.hh"

namespace mach::sim
{

namespace
{
/**
 * The fiber currently executing; null while in the scheduler. One slot
 * per host thread: the run farm (src/farm) drives one Machine per
 * worker thread, and each machine's fibers yield to the scheduler
 * context of the thread that resumed them, so the two threads never
 * share fiber state.
 */
thread_local Fiber *current_fiber = nullptr;
/** Saved scheduler (main) context to return to on yield. */
thread_local ucontext_t scheduler_context;
} // namespace

Fiber::Fiber(std::string name, Entry entry, std::size_t stack_size)
    : name_(std::move(name)), entry_(std::move(entry)), stack_(stack_size)
{
    MACH_ASSERT(entry_ != nullptr);
}

Fiber::~Fiber()
{
    // Destroying a live, unfinished fiber would leak whatever it holds on
    // its stack; the simulation tears fibers down only after completion
    // or at whole-machine destruction where leaked stack state is inert.
}

Fiber *
Fiber::current()
{
    return current_fiber;
}

void
Fiber::trampoline(unsigned hi, unsigned lo)
{
    auto bits = (static_cast<std::uint64_t>(hi) << 32) |
                static_cast<std::uint64_t>(lo);
    reinterpret_cast<Fiber *>(static_cast<std::uintptr_t>(bits))->start();
}

void
Fiber::start()
{
    entry_();
    finished_ = true;
    yieldToScheduler();
    panic("resumed a finished fiber: %s", name_.c_str());
}

void
Fiber::resume()
{
    MACH_ASSERT(current_fiber == nullptr);
    MACH_ASSERT(!finished_);

    if (!started_) {
        started_ = true;
        if (getcontext(&context_) != 0)
            panic("getcontext failed");
        context_.uc_stack.ss_sp = stack_.data();
        context_.uc_stack.ss_size = stack_.size();
        context_.uc_link = &scheduler_context;
        auto bits =
            static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(this));
        makecontext(&context_,
                    reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                    static_cast<unsigned>(bits >> 32),
                    static_cast<unsigned>(bits & 0xffffffffu));
    }

    current_fiber = this;
    if (swapcontext(&scheduler_context, &context_) != 0)
        panic("swapcontext into fiber %s failed", name_.c_str());
    current_fiber = nullptr;
}

void
Fiber::yieldToScheduler()
{
    Fiber *self = current_fiber;
    MACH_ASSERT(self != nullptr);
    if (swapcontext(&self->context_, &scheduler_context) != 0)
        panic("swapcontext to scheduler failed");
}

} // namespace mach::sim
