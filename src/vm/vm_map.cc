#include "vm/vm_map.hh"

#include "base/logging.hh"

namespace mach::vm
{

VmMap::VmMap(std::string name, VAddr range_lo, VAddr range_hi)
    : name_(std::move(name)), range_lo_(range_lo), range_hi_(range_hi),
      lock_(name_ + "-map")
{
    MACH_ASSERT(pageTrunc(range_lo) == range_lo);
    MACH_ASSERT(pageTrunc(range_hi) == range_hi);
    MACH_ASSERT(range_lo < range_hi);
}

VmMapEntry *
VmMap::lookup(VAddr va)
{
    auto it = entries_.upper_bound(va);
    if (it == entries_.begin())
        return nullptr;
    --it;
    VmMapEntry &entry = it->second;
    return (va >= entry.start && va < entry.end) ? &entry : nullptr;
}

VAddr
VmMap::findSpace(std::uint32_t size) const
{
    return findSpaceIn(range_lo_, range_hi_, size);
}

VAddr
VmMap::findSpaceIn(VAddr lo, VAddr hi, std::uint32_t size) const
{
    MACH_ASSERT(size > 0 && pageRound(size) == size);
    MACH_ASSERT(lo >= range_lo_ && hi <= range_hi_ && lo < hi);
    VAddr candidate = lo;
    for (const auto &[start, entry] : entries_) {
        if (entry.end <= candidate)
            continue;
        if (start >= hi)
            break;
        if (start >= candidate && start - candidate >= size)
            return candidate;
        if (entry.end > candidate)
            candidate = entry.end;
    }
    if (candidate < hi && hi - candidate >= size)
        return candidate;
    return 0;
}

VmMapEntry *
VmMap::insert(const VmMapEntry &entry)
{
    MACH_ASSERT(pageTrunc(entry.start) == entry.start);
    MACH_ASSERT(pageTrunc(entry.end) == entry.end);
    MACH_ASSERT(entry.start < entry.end);
    MACH_ASSERT(entry.start >= range_lo_ && entry.end <= range_hi_);

    // Check against neighbours for overlap.
    auto it = entries_.upper_bound(entry.start);
    if (it != entries_.end())
        MACH_ASSERT(it->second.start >= entry.end);
    if (it != entries_.begin()) {
        auto prev = std::prev(it);
        MACH_ASSERT(prev->second.end <= entry.start);
    }

    auto [pos, inserted] = entries_.emplace(entry.start, entry);
    MACH_ASSERT(inserted);
    return &pos->second;
}

void
VmMap::clip(VAddr va)
{
    VmMapEntry *entry = lookup(va);
    if (entry == nullptr || entry->start == va)
        return;

    VmMapEntry tail = *entry;
    const std::uint32_t delta_pages = (va - entry->start) >> kPageShift;
    tail.start = va;
    tail.offset = entry->offset + delta_pages;
    entry->end = va;
    entries_.emplace(tail.start, tail);
}

void
VmMap::erase(VAddr start)
{
    const auto erased = entries_.erase(start);
    MACH_ASSERT(erased == 1);
}

unsigned
VmMap::simplify(VAddr start, VAddr end)
{
    unsigned merges = 0;
    auto it = entries_.lower_bound(start);
    if (it != entries_.begin())
        --it; // The entry just before may merge with the first inside.
    while (it != entries_.end()) {
        auto next = std::next(it);
        // The entry beginning exactly at `end` may merge with the last
        // in-range entry, so only stop strictly beyond the range.
        if (next == entries_.end() || next->second.start > end)
            break;
        VmMapEntry &a = it->second;
        const VmMapEntry &b = next->second;
        const bool contiguous =
            a.end == b.start && a.object == b.object &&
            a.offset + a.sizePages() == b.offset &&
            a.cur_prot == b.cur_prot && a.max_prot == b.max_prot &&
            a.inheritance == b.inheritance &&
            a.needs_copy == b.needs_copy && a.shared == b.shared;
        if (contiguous) {
            a.end = b.end;
            entries_.erase(next);
            ++merges;
            // Stay on 'a'; it may merge with the new neighbour too.
        } else {
            it = next;
        }
    }
    return merges;
}

std::uint64_t
VmMap::mappedBytes() const
{
    std::uint64_t total = 0;
    for (const auto &[start, entry] : entries_)
        total += entry.end - entry.start;
    return total;
}

} // namespace mach::vm
