#include "hw/intr.hh"

#include "base/logging.hh"

namespace mach::hw
{

InterruptController::InterruptController(const MachineConfig *config,
                                         unsigned ncpus)
    : config_(config), pending_(ncpus, 0),
      post_ticks_(std::size_t{ncpus} * kNumIrqs, 0)
{
}

bool
InterruptController::post(CpuId target, Irq irq, Tick now)
{
    MACH_ASSERT(target < pending_.size());
    const std::uint8_t bit =
        static_cast<std::uint8_t>(1u << static_cast<unsigned>(irq));
    if (pending_[target] & bit)
        return false; // Merged; the original post's stamp stands.
    pending_[target] |= bit;
    post_ticks_[target * kNumIrqs + static_cast<unsigned>(irq)] = now;
    ++posts_;
    if (kick_)
        kick_(target);
    return true;
}

Tick
InterruptController::postTick(CpuId cpu, Irq irq) const
{
    MACH_ASSERT(cpu < pending_.size());
    return post_ticks_[cpu * kNumIrqs + static_cast<unsigned>(irq)];
}

bool
InterruptController::pending(CpuId cpu, Irq irq) const
{
    MACH_ASSERT(cpu < pending_.size());
    return (pending_[cpu] >> static_cast<unsigned>(irq)) & 1u;
}

void
InterruptController::clear(CpuId cpu, Irq irq)
{
    MACH_ASSERT(cpu < pending_.size());
    pending_[cpu] &=
        static_cast<std::uint8_t>(~(1u << static_cast<unsigned>(irq)));
}

int
InterruptController::deliverable(CpuId cpu, Spl spl) const
{
    MACH_ASSERT(cpu < pending_.size());
    const std::uint8_t mask = pending_[cpu];
    if (!mask)
        return -1;

    int best = -1;
    int best_prio = -1;
    for (unsigned i = 0; i < kNumIrqs; ++i) {
        if (!((mask >> i) & 1u))
            continue;
        const Irq irq = static_cast<Irq>(i);
        const int prio = static_cast<int>(config_->irqPriority(irq));
        if (prio > static_cast<int>(spl) && prio > best_prio) {
            best = static_cast<int>(i);
            best_prio = prio;
        }
    }
    return best;
}

} // namespace mach::hw
