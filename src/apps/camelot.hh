/**
 * @file
 * The "Camelot" evaluation application: an 8-way parallel run of the
 * distributed-transaction performance analyzer (Section 5.2).
 *
 * Camelot makes aggressive use of memory sharing and copy-on-write to
 * implement database access and transaction semantics, and its
 * internal components (e.g. the transaction manager) are themselves
 * multi-threaded. Each transaction virtual-copies a slice of the
 * recoverable database region (a COW protection reduction on a
 * multi-threaded pmap: user shootdown), modifies the copy (COW
 * faults), writes a kernel log buffer to disk (whose free is a kernel
 * shootdown), and deallocates the copy (another user shootdown).
 * Camelot is the only evaluation application that causes user-pmap
 * shootdowns at all (Table 3).
 */

#ifndef MACH_APPS_CAMELOT_HH
#define MACH_APPS_CAMELOT_HH

#include "apps/workload.hh"
#include "base/rng.hh"

namespace mach::apps
{

/** Transaction-processing model. */
class Camelot : public Workload
{
  public:
    struct Params
    {
        /** Server threads running transactions in parallel. */
        unsigned servers = 8;
        /** Total transactions across all servers. */
        unsigned transactions = 200;
        /** Pages of the shared recoverable database region. */
        unsigned db_pages = 64;
        std::uint64_t seed = 0xca3e107;
    };

    explicit Camelot(Params params) : params_(params) {}

    std::string name() const override { return "camelot"; }

    void run(vm::Kernel &kernel, kern::Thread &driver) override;

    std::uint64_t commits = 0;

  private:
    Params params_;
};

} // namespace mach::apps

#endif // MACH_APPS_CAMELOT_HH
