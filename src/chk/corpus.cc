#include "chk/corpus.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace mach::chk
{

namespace
{

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t
foldBytes(std::uint64_t h, const std::string &s)
{
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
    return h;
}

std::string
hex16(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** "key: value" split; returns false on lines without a colon. */
bool
splitLine(const std::string &line, std::string *key,
          std::string *value)
{
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos)
        return false;
    *key = line.substr(0, colon);
    std::size_t start = colon + 1;
    while (start < line.size() && line[start] == ' ')
        ++start;
    *value = line.substr(start);
    return true;
}

} // namespace

Corpus::Corpus(std::string dir) : dir_(std::move(dir))
{
    loadDir(dir_);
}

bool
Corpus::loadDir(const std::string &dir, std::string *error)
{
    if (dir.empty())
        return true;
    std::error_code ec;
    if (!std::filesystem::is_directory(dir, ec))
        return true; // nothing committed yet: an empty corpus
    // Deterministic load order: sorted file names, so bucket and
    // entry order never depend on directory iteration order.
    std::vector<std::string> files;
    for (const auto &it : std::filesystem::directory_iterator(dir, ec))
        files.push_back(it.path().string());
    std::sort(files.begin(), files.end());
    for (const std::string &path : files) {
        if (path.size() > 7 &&
            path.compare(path.size() - 7, 7, ".corpus") == 0) {
            std::ifstream in(path);
            std::stringstream body;
            body << in.rdbuf();
            CorpusEntry entry;
            std::string why;
            if (!parseEntry(body.str(), &entry, &why)) {
                if (error != nullptr)
                    *error = path + ": " + why;
                return false;
            }
            absorb(std::move(entry), /*rewrite=*/false);
        } else if (path.size() > 9 &&
                   path.compare(path.size() - 9, 9, "tried.log") ==
                       0) {
            std::ifstream in(path);
            std::string line;
            while (std::getline(in, line)) {
                if (!line.empty())
                    tried_.insert(
                        std::strtoull(line.c_str(), nullptr, 16));
            }
        }
    }
    return true;
}

std::vector<const CorpusEntry *>
Corpus::mutationPool(const std::string &scenario) const
{
    std::vector<const CorpusEntry *> pool;
    for (const CorpusEntry &e : entries_) {
        if (e.scenario == scenario && !e.schedule.empty())
            pool.push_back(&e);
    }
    return pool;
}

std::size_t
Corpus::buckets(const std::string &scenario) const
{
    const auto it = buckets_.find(scenario);
    return it == buckets_.end() ? 0 : it->second.size();
}

void
Corpus::absorb(CorpusEntry entry, bool rewrite)
{
    std::set<std::uint64_t> &seen = buckets_[entry.scenario];
    for (const std::uint64_t s : entry.signatures)
        seen.insert(s);
    tried_.insert(scheduleHash(entry.scenario, entry.schedule));
    if (rewrite && !dir_.empty())
        persistEntry(entry);
    entries_.push_back(std::move(entry));
}

std::uint64_t
Corpus::admit(CorpusEntry entry)
{
    std::set<std::uint64_t> &seen = buckets_[entry.scenario];
    std::uint64_t fresh = 0;
    for (const std::uint64_t s : entry.signatures) {
        if (seen.find(s) == seen.end())
            ++fresh;
    }
    if (fresh == 0)
        return 0;
    entry.new_buckets = fresh;
    absorb(std::move(entry), /*rewrite=*/true);
    return fresh;
}

bool
Corpus::tried(const std::string &scenario,
              const std::string &schedule) const
{
    return tried_.find(scheduleHash(scenario, schedule)) !=
           tried_.end();
}

bool
Corpus::markTried(const std::string &scenario,
                  const std::string &schedule)
{
    const std::uint64_t h = scheduleHash(scenario, schedule);
    if (!tried_.insert(h).second)
        return false;
    persistTried(h);
    return true;
}

std::uint64_t
Corpus::scheduleHash(const std::string &scenario,
                     const std::string &schedule)
{
    std::uint64_t h = kFnvOffset;
    h = foldBytes(h, scenario);
    h = foldBytes(h, "\n");
    h = foldBytes(h, schedule);
    return h;
}

std::string
Corpus::formatEntry(const CorpusEntry &entry)
{
    std::ostringstream out;
    out << "# machsim checker corpus entry; replay with\n"
        << "#   machsim --app chk --scenario " << entry.scenario
        << (entry.schedule.empty() ? ""
                                   : " --schedule " + entry.schedule)
        << "\n";
    out << "scenario: " << entry.scenario << "\n";
    out << "schedule: " << entry.schedule << "\n";
    out << "digest: 0x" << hex16(entry.digest) << "\n";
    out << "trial: " << entry.trial << "\n";
    out << "new_buckets: " << entry.new_buckets << "\n";
    out << "failed: " << (entry.failed ? 1 : 0) << "\n";
    for (const std::uint64_t s : entry.signatures)
        out << "signature: 0x" << hex16(s) << "\n";
    return out.str();
}

bool
Corpus::parseEntry(const std::string &text, CorpusEntry *out,
                   std::string *error)
{
    *out = CorpusEntry{};
    bool saw_scenario = false;
    bool saw_schedule = false;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::string key;
        std::string value;
        if (!splitLine(line, &key, &value)) {
            if (error != nullptr)
                *error = "bad line: " + line;
            return false;
        }
        if (key == "scenario") {
            out->scenario = value;
            saw_scenario = true;
        } else if (key == "schedule") {
            out->schedule = value;
            saw_schedule = true;
        } else if (key == "digest") {
            out->digest = std::strtoull(value.c_str(), nullptr, 16);
        } else if (key == "trial") {
            out->trial = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "new_buckets") {
            out->new_buckets =
                std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "failed") {
            out->failed = value == "1";
        } else if (key == "signature") {
            out->signatures.push_back(
                std::strtoull(value.c_str(), nullptr, 16));
        } else {
            if (error != nullptr)
                *error = "unknown key: " + key;
            return false;
        }
    }
    if (!saw_scenario || !saw_schedule) {
        if (error != nullptr)
            *error = "missing scenario/schedule";
        return false;
    }
    return true;
}

std::string
Corpus::entryFileName(const CorpusEntry &entry)
{
    return entry.scenario + "-" +
           hex16(scheduleHash(entry.scenario, entry.schedule)) +
           ".corpus";
}

bool
Corpus::persistEntry(const CorpusEntry &entry) const
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    std::ofstream out(dir_ + "/" + entryFileName(entry));
    if (!out)
        return false;
    out << formatEntry(entry);
    return static_cast<bool>(out);
}

void
Corpus::persistTried(std::uint64_t hash) const
{
    if (dir_.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    std::ofstream out(dir_ + "/tried.log", std::ios::app);
    if (out)
        out << hex16(hash) << "\n";
}

} // namespace mach::chk
