/**
 * @file
 * Spin locks with fixed interrupt-priority association.
 *
 * Section 4: "potential deadlocks result from an interaction of the
 * shootdown algorithm's barrier synchronization at interrupt level with
 * inconsistent interrupt protection of locks. They are avoided by
 * associating a fixed interrupt priority (with respect to the shootdown
 * interrupt) with every lock in the system. Locks are requested at their
 * associated interrupt priority level and can only be held at that level
 * or higher."
 *
 * SpinLock enforces exactly that discipline: lock() raises the CPU to
 * the lock's level (asserting the current level does not exceed it) and
 * unlock() restores the saved level. The pmap lock is special-cased in
 * the pmap module because its acquisition protocol (Figure 1) also
 * removes the acquiring processor from the active set.
 */

#ifndef MACH_KERN_LOCK_HH
#define MACH_KERN_LOCK_HH

#include <cstdint>
#include <deque>
#include <string>

#include "base/types.hh"
#include "hw/machine_config.hh"

namespace mach::kern
{

class Cpu;
class Thread;

/** A busy-waiting mutual-exclusion lock with an associated SPL. */
class SpinLock
{
  public:
    SpinLock(std::string name, hw::Spl level)
        : name_(std::move(name)), level_(level)
    {
    }

    SpinLock(const SpinLock &) = delete;
    SpinLock &operator=(const SpinLock &) = delete;

    /**
     * Acquire: raise the caller to the lock's interrupt priority level
     * and spin (consuming simulated time, registered as a bus user)
     * until the lock is free.
     */
    void lock(Cpu &cpu);

    /** Release and restore the interrupt priority saved by lock(). */
    void unlock(Cpu &cpu);

    /**
     * Acquire without touching the interrupt priority level. Used by
     * the Figure 1 pmap-lock protocol, which manages SPL and the active
     * set itself.
     */
    void rawLock(Cpu &cpu);
    /** Release without restoring SPL. */
    void rawUnlock(Cpu &cpu);

    bool locked() const { return holder_ >= 0; }
    bool heldBy(const Cpu &cpu) const;

    const std::string &name() const { return name_; }
    hw::Spl level() const { return level_; }

    std::uint64_t contended_acquires = 0;
    std::uint64_t acquires = 0;

  private:
    std::string name_;
    hw::Spl level_;
    /** Holding CPU id, or -1 when free. */
    std::int64_t holder_ = -1;
    hw::Spl saved_spl_ = hw::Spl0;
};

/**
 * A blocking mutual-exclusion lock: contending threads sleep instead of
 * spinning. Used by workloads for long-held resources (workpiles, the
 * serialized Unix-compatibility code in the Mach-build model) where a
 * spin lock would burn simulated CPU unrealistically.
 */
class Mutex
{
  public:
    explicit Mutex(std::string name) : name_(std::move(name)) {}

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    /** Acquire, blocking the calling thread while held elsewhere. */
    void lock(Thread &thread);

    /** Release and wake one waiter. */
    void unlock(Thread &thread);

    bool locked() const { return holder_ != nullptr; }
    const std::string &name() const { return name_; }

    std::uint64_t acquires = 0;
    std::uint64_t contended_acquires = 0;

  private:
    std::string name_;
    Thread *holder_ = nullptr;
    std::deque<Thread *> waiters_;
};

/**
 * A blocking reader-writer lock with writer preference, in the style
 * of the Mach vm_map locks: page faults share the map as readers (and
 * can proceed in parallel on many processors), while address-space
 * mutations take it exclusively.
 */
class RwMutex
{
  public:
    explicit RwMutex(std::string name) : name_(std::move(name)) {}

    RwMutex(const RwMutex &) = delete;
    RwMutex &operator=(const RwMutex &) = delete;

    void lockRead(Thread &thread);
    void unlockRead(Thread &thread);
    void lockWrite(Thread &thread);
    void unlockWrite(Thread &thread);

    bool writeLocked() const { return writer_ != nullptr; }
    unsigned readers() const { return readers_; }
    const std::string &name() const { return name_; }

  private:
    /** Wake every waiter; they re-evaluate their entry conditions. */
    void wakeAll(Thread &thread);

    std::string name_;
    unsigned readers_ = 0;
    Thread *writer_ = nullptr;
    unsigned writers_waiting_ = 0;
    std::deque<Thread *> waiters_;
};

} // namespace mach::kern

#endif // MACH_KERN_LOCK_HH
