/**
 * @file
 * Per-processor translation lookaside buffer model.
 *
 * The baseline TLB has the two features that make software consistency
 * hard (Section 3):
 *
 *   1. Hardware reload: a miss walks the page table in memory and can
 *      re-cache an entry the moment it is (re)validated -- so flushing
 *      before the pmap change is useless.
 *   2. Reference/modify-bit writeback: the first write through a cached
 *      entry writes the entry's image back to the PTE in memory to set
 *      the modify bit, which can clobber a concurrent pmap update --
 *      so flushing cannot simply be postponed until after the change.
 *
 * Feature flags on MachineConfig select the Section 9 alternatives:
 * software reload, no-writeback (RP3), interlocked writeback implied by
 * no_refmod_writeback handling, remote invalidation (MC88200), and
 * address-space tags (MIPS R2000).
 *
 * Entries are tagged with the owning pmap's identity. Without ASID tags
 * the TLB is flushed on every address-space switch (as on the Multimax);
 * with them, entries from many spaces coexist.
 *
 * Host-performance organization (the simulated *costs* -- lookup cost,
 * tlb_flush_cost, vc_search_cost_per_line -- are charged by callers and
 * are completely unchanged by any of this):
 *
 *   - probes go through an open-addressed hash index keyed on
 *     (space, vpn) instead of scanning the entry array, O(1) expected;
 *   - flushAll is an O(1) generation bump: entries are live only while
 *     their fill-time generation matches the buffer's, so no scan ever
 *     clears valid bits on the hot path;
 *   - flushSpace is an O(1) per-space generation bump with the same
 *     trick, and per-space live counts make cachesSpace O(1);
 *   - with tlb_associativity > 0 the buffer is set-associative
 *     (index = hash of (space, vpn), per-set round-robin victims); the
 *     default 0 keeps the fully-associative global round-robin behavior
 *     of the original Multimax model, bit-for-bit;
 *   - an L0 last-translation cache (tlb_l0_entries slots, default 4)
 *     sits in front of both organizations: the most recent distinct
 *     (space, vpn) probes resolve by a handful of 64-bit compares with
 *     no hashing and no index walk. An L0 hit is served WITHOUT
 *     revalidating against the generations -- the invariant is that a
 *     slot is populated only while its backing entry is live, and every
 *     path that retires or flushes entries clears the matching slots.
 *     A missed invalidation would be a genuine stale-translation bug,
 *     which is why PmapSystem::auditTlbConsistency() audits the L0's
 *     servable translations (l0Translations()) exactly like entries().
 */

#ifndef MACH_HW_TLB_HH
#define MACH_HW_TLB_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/types.hh"
#include "hw/machine_config.hh"
#include "hw/page_table.hh"

namespace mach::obs
{
class Recorder;
} // namespace mach::obs

namespace mach::hw
{

/** Identifies an address space (one pmap) to the TLB. */
using SpaceId = std::uint32_t;
constexpr SpaceId kNoSpace = 0;

/** One cached translation. */
struct TlbEntry
{
    bool valid = false;
    SpaceId space = kNoSpace;
    Vpn vpn = 0;
    Pfn pfn = 0;
    Prot prot = ProtNone;
    bool ref = false;
    bool mod = false;

    // Host-side liveness tags (see file comment). An entry is live only
    // when valid and both generations match the buffer's current ones;
    // entries() reconciles the valid bits before exposing the array.
    std::uint64_t gen = 0;        ///< Buffer generation at fill time.
    std::uint64_t space_gen = 0;  ///< Space generation at fill time.
    std::uint32_t space_slot = 0; ///< Dense index of the space's state.
};

/** Outcome of a TLB probe. */
struct TlbLookup
{
    bool hit = false;
    bool prot_ok = false;       ///< Entry allows the requested access.
    bool did_writeback = false; ///< Hardware wrote ref/mod bits to memory.
    Pfn pfn = 0;
};

/** A single processor's TLB. */
class Tlb
{
  public:
    /**
     * @p entry_override resizes the buffer away from the config's CPU
     * geometry (0 keeps config->tlb_entries). Device IOTLBs use it to
     * get their own --iotlb-entries capacity; an overridden buffer is
     * always fully associative (device IOTLBs have no set geometry).
     */
    Tlb(const MachineConfig *config, PhysMem *mem,
        unsigned entry_override = 0);

    /**
     * Probe for (space, vpn) wanting @p want access. On a write hit with
     * the modify bit clear, baseline hardware performs the asynchronous
     * ref/mod writeback to the PTE at @p pte_addr (clobbering whatever is
     * there -- the Section 3 hazard) unless tlb_no_refmod_writeback.
     */
    TlbLookup lookup(SpaceId space, Vpn vpn, Prot want, PAddr pte_addr);

    /**
     * Install a translation after a reload (hardware or software). The
     * replacement policy is round-robin: over the whole entry array
     * when fully associative (the default), within the indexed set
     * when tlb_associativity > 0.
     */
    void insert(SpaceId space, Vpn vpn, Pfn pfn, Prot prot, bool mod);

    /** Invalidate one page's entry for @p space, if cached. */
    void invalidatePage(SpaceId space, Vpn vpn);

    /** Invalidate entries for [start, end) in @p space. */
    void invalidateRange(SpaceId space, Vpn start, Vpn end);

    /** Invalidate every entry belonging to @p space. O(1). */
    void flushSpace(SpaceId space);

    /** Invalidate the whole buffer. O(1). */
    void flushAll();

    /**
     * Tagged-generation support for the lazy-asid avoidance policy
     * (ShootdownPolicy::LazyAsid): mark @p space's cached translations
     * stale WITHOUT flushing them. The entries keep serving -- that is
     * the deferral window the policy trades the IPI for -- until the
     * space is next loaded on this CPU and the context-load hook calls
     * consumeDeferredFlush(). Pure bookkeeping, no counters move.
     */
    void deferFlush(SpaceId space);

    /**
     * Apply (and clear) a pending deferred flush for @p space. Returns
     * true when a flush was actually performed, so the caller can
     * charge tlb_flush_cost for it.
     */
    bool consumeDeferredFlush(SpaceId space);

    /** True when @p space has a deferred flush pending. */
    bool hasDeferredFlush(SpaceId space) const;

    /** True when any valid entry belongs to @p space. O(1). */
    bool cachesSpace(SpaceId space) const;

    /**
     * True when an entry for (space, vpn) is cached with at least
     * @p prot rights (used by consistency-audit tests).
     */
    bool cachesMapping(SpaceId space, Vpn vpn, Prot prot) const;

    /** Count of valid entries (diagnostics). O(1). */
    unsigned validCount() const { return live_count_; }

    /**
     * Attach the machine's timeline recorder: flush and invalidate
     * operations emit instants on @p track when recording is enabled.
     * The hot lookup/insert path is never instrumented.
     */
    void attachObs(obs::Recorder *recorder, std::uint32_t track)
    {
        obs_ = recorder;
        obs_track_ = track;
    }

    /**
     * Raw entry array (white-box inspection by audits and tests). The
     * valid bits are reconciled against the generation tags first, so
     * the returned view reads exactly as if flushes cleared eagerly.
     */
    const std::vector<TlbEntry> &entries() const;

    /**
     * Every translation the L0 cache would currently serve, as
     * entry-shaped records (valid always true, key from the slot,
     * pfn/prot/ref/mod from the backing entry). The consistency audit
     * checks these against the page tables exactly like entries();
     * with correct invalidation they are a subset of the live entries,
     * so the audit only ever fires on a real missed invalidation.
     */
    std::vector<TlbEntry> l0Translations() const;

    // Event counters for benchmarks and tests.
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t flushes = 0;
    std::uint64_t single_invalidates = 0;
    /**
     * Whole-buffer flushes only; serves as the flush epoch the
     * delayed-flush consistency technique synchronizes against.
     */
    std::uint64_t full_flushes = 0;

    /**
     * L0 cache traffic (host-side only; never part of the determinism
     * digest -- the digest hashes the counters above, whose values are
     * identical with the L0 on or off).
     */
    std::uint64_t l0_hits = 0;
    std::uint64_t l0_misses = 0;

  private:
    /** Bookkeeping for one address space seen by this TLB. */
    struct SpaceState
    {
        std::uint64_t flush_gen = 0; ///< Bumped by flushSpace.
        std::uint64_t seen_gen = 0;  ///< Buffer gen `live` is valid for.
        unsigned live = 0;           ///< Live entries, under seen_gen.
        /**
         * Lazy-asid deferral: the space's translations are stale and
         * must be flushed before the space is next used on this CPU
         * (deferFlush / consumeDeferredFlush). Cleared by any
         * flushSpace, since a flush leaves nothing stale to defer.
         */
        bool deferred = false;
    };

    static constexpr std::uint32_t kEmptySlot = ~std::uint32_t{0};

    /** L0 slot: a (space, vpn) key and the entry it resolved to. */
    struct L0Slot
    {
        /** (space << 32) | vpn; kNoL0Key marks an empty slot. */
        std::uint64_t key;
        std::uint32_t entry; ///< Index into entries_.
    };
    static constexpr unsigned kL0MaxEntries = 4;
    /** Space kNoSpace is reserved and vpns are 20-bit, so no real key
     *  ever has all 64 bits set. */
    static constexpr std::uint64_t kNoL0Key = ~std::uint64_t{0};

    static std::uint64_t l0Key(SpaceId space, Vpn vpn)
    {
        return (static_cast<std::uint64_t>(space) << 32) | vpn;
    }
    /** Populate a slot for a translation that just resolved. */
    void l0Fill(std::uint64_t key, std::uint32_t entry_index);
    /** Drop the slot caching @p key, if any (entry retirement). */
    void l0ClearKey(std::uint64_t key);
    /** Drop every slot belonging to @p space (flushSpace). */
    void l0ClearSpace(SpaceId space);
    /** Drop every slot (flushAll). */
    void l0ClearAll();

    bool setAssociative() const { return assoc_ > 0; }
    static std::uint64_t hashKey(SpaceId space, Vpn vpn);
    bool entryLive(const TlbEntry &entry) const;
    /** Live count for a space, 0 when its state is stale. */
    unsigned spaceLive(std::uint32_t slot) const;
    /** Normalize a space's count to the current generation, then ref. */
    SpaceState &touchSpace(std::uint32_t slot);
    std::uint32_t spaceSlot(SpaceId space);
    /** Take an entry out of the live set (index slot stays, stale). */
    void retireEntry(TlbEntry &entry);
    /** Fill @p entry and enter it into the live set and the index. */
    void fillEntry(TlbEntry &entry, SpaceId space, Vpn vpn, Pfn pfn,
                   Prot prot, bool mod);

    /**
     * Locate the live entry for (space, vpn), or null. @p fill_l0
     * caches a slow-path hit in the L0; invalidation probes pass
     * false -- maintenance must not allocate into a translation
     * cache it is about to clear (under the planted
     * chk_skip_l0_invalidate bug that allocation would plant the
     * very stale slot the protocol was retiring, on every drain).
     */
    TlbEntry *find(SpaceId space, Vpn vpn, bool fill_l0 = true);
    const TlbEntry *find(SpaceId space, Vpn vpn) const;

    // Fully-associative (hash index) machinery.
    void indexInsert(std::uint32_t entry_index);
    void rebuildIndex();

    const MachineConfig *config_;
    PhysMem *mem_;
    std::vector<TlbEntry> entries_;
    /** Ways per set (0 = fully associative); see the ctor. */
    unsigned assoc_ = 0;
    unsigned next_victim_ = 0;

    /** L0 slots; only the first l0_size_ are ever used. */
    L0Slot l0_[kL0MaxEntries];
    /** Configured slot count (0 = disabled). */
    unsigned l0_size_ = 0;
    /** Round-robin refill cursor. */
    unsigned l0_fill_ = 0;
    /**
     * Negative counterpart of the L0: the key of the last find() that
     * missed. A miss can only turn into a hit through fillEntry (the
     * one place entries enter the live set), which clears the memo --
     * so a repeat of the same key (every lookup-miss-then-insert pair)
     * skips the probe chain entirely. Host-side only.
     */
    std::uint64_t last_miss_key_ = kNoL0Key;

    /** Buffer generation; bumped by flushAll. */
    std::uint64_t gen_ = 1;
    /** Live entries across all spaces. */
    unsigned live_count_ = 0;

    /** Dense per-space states plus the id -> dense slot map. */
    std::vector<SpaceState> space_states_;
    std::unordered_map<SpaceId, std::uint32_t> space_index_;

    /**
     * Open-addressed index: slot -> entry index, validated against the
     * entry's key and liveness on probe (so flushes need not touch it).
     * Only used when fully associative; sets are scanned directly.
     */
    std::vector<std::uint32_t> index_;
    std::uint32_t index_mask_ = 0;
    /** Non-empty index slots (live or stale); triggers rebuilds. */
    std::uint32_t index_used_ = 0;

    /** Per-set round-robin victim cursors (set-associative mode). */
    std::vector<std::uint32_t> set_victims_;

    /** Timeline recorder (null until attachObs; see attachObs). */
    obs::Recorder *obs_ = nullptr;
    std::uint32_t obs_track_ = 0;
};

} // namespace mach::hw

#endif // MACH_HW_TLB_HH
