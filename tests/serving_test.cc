/**
 * @file
 * Serving-tier SLO observability tests: the request-attribution
 * contract (components sum to the measured end-to-end latency), the
 * timing-neutrality of stats-only recording, the byte-determinism of
 * the --stats-json document, and farm-shape invariance of the serving
 * workload's run digest.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/serving.hh"
#include "farm/thread_pool.hh"
#include "obs/recorder.hh"
#include "obs/request.hh"
#include "obs/stats_json.hh"
#include "vm/kernel.hh"
#include "xpr/machine_stats.hh"

namespace mach
{
namespace
{

/** Small but honest run: churn, siblings, shootdowns, a few seconds
 *  of virtual time, well under a second of host time. */
apps::Serving::Params
smallParams()
{
    apps::Serving::Params params;
    params.tenants = 6;
    params.concurrency = 3;
    params.requests_per_tenant = 3;
    return params;
}

hw::MachineConfig
smallConfig(std::uint64_t seed = 0x5e12e)
{
    hw::MachineConfig config;
    config.ncpus = 8;
    config.seed = seed;
    return config;
}

// ---------------------------------------------------------------------
// Request attribution
// ---------------------------------------------------------------------

TEST(ServingAttribution, ComponentsSumToRequestLatency)
{
    vm::Kernel kernel(smallConfig());
    apps::Serving app(smallParams());
    app.execute(kernel);

    ASSERT_GT(app.requests_completed, 0u);
    ASSERT_GT(app.request_ticks, 0u);

    Tick sum = 0;
    for (Tick t : app.component_ticks)
        sum += t;
    // The exclusive-interval decomposition is an integral identity:
    // every tick between begin() and finish() is banked to exactly one
    // component, so the sum matches the end-to-end latency exactly --
    // far inside the 1% the SLO pipeline requires.
    EXPECT_EQ(sum, app.request_ticks);
    const double rel =
        std::abs(static_cast<double>(sum) -
                 static_cast<double>(app.request_ticks)) /
        static_cast<double>(app.request_ticks);
    EXPECT_LE(rel, 0.01);

    // The workload actually exercises the attributed paths: requests
    // compute, fault (mmap-burst zero-fills), and walk (TLB misses).
    using obs::ReqComponent;
    const auto at = [&](ReqComponent c) {
        return app.component_ticks[static_cast<unsigned>(c)];
    };
    EXPECT_GT(at(ReqComponent::Compute), 0u);
    EXPECT_GT(at(ReqComponent::Fault), 0u);
    EXPECT_GT(at(ReqComponent::Walk), 0u);
    // Shootdown components exist when the munmap bursts find sibling
    // processors; with 2 threads/tenant on 8 CPUs they always do.
    EXPECT_GT(at(ReqComponent::IpiPost) +
                  at(ReqComponent::ResponderWait) +
                  at(ReqComponent::Drain),
              0u);
}

TEST(ServingAttribution, RecordedHistogramsMatchAggregates)
{
    vm::Kernel kernel(smallConfig());
    kernel.machine().recorder().enableStats();
    apps::Serving app(smallParams());
    app.execute(kernel);

    obs::Metrics &metrics = kernel.machine().recorder().metrics();
    const obs::Histogram &req = metrics.histogram("serve.request_us");
    EXPECT_EQ(req.count(), app.requests_completed);
    // The histogram records in usec (truncating); the aggregate sums
    // ticks. Bound the truncation error by one usec per request.
    const std::uint64_t ticks_usec = app.request_ticks / kUsec;
    EXPECT_LE(req.sum(), ticks_usec);
    EXPECT_GE(req.sum() + app.requests_completed, ticks_usec);
    // One fixed histogram per component, present even when a
    // component never fired (stable --stats-json schema).
    for (unsigned c = 0; c < obs::kReqComponents; ++c) {
        const std::string name =
            std::string("serve.") +
            obs::reqComponentName(
                static_cast<obs::ReqComponent>(c)) +
            "_us";
        EXPECT_EQ(metrics.histogram(name).count(),
                  app.requests_completed)
            << name;
    }
}

// ---------------------------------------------------------------------
// Timing neutrality and determinism
// ---------------------------------------------------------------------

TEST(ServingDeterminism, StatsRecordingIsTimingNeutral)
{
    // Same machine, same workload; one run measures, one does not.
    // Attribution and stats-only recording read the clock but never
    // charge simulated time or draw randomness, so the runs are
    // indistinguishable to the digest.
    vm::Kernel plain(smallConfig());
    apps::Serving app_plain(smallParams());
    app_plain.execute(plain);

    vm::Kernel recorded(smallConfig());
    recorded.machine().recorder().enableStats();
    apps::Serving app_rec(smallParams());
    app_rec.execute(recorded);

    EXPECT_EQ(xpr::runDigest(plain), xpr::runDigest(recorded));
    EXPECT_EQ(app_plain.request_ticks, app_rec.request_ticks);
    EXPECT_EQ(app_plain.requests_completed,
              app_rec.requests_completed);
}

TEST(ServingDeterminism, StatsJsonIsByteIdenticalAcrossRuns)
{
    const obs::StatsMeta meta{"serving", 0x5e12e, "baseline"};
    std::string docs[2];
    for (std::string &doc : docs) {
        vm::Kernel kernel(smallConfig());
        kernel.machine().recorder().enableStats();
        apps::Serving app(smallParams());
        app.execute(kernel);
        doc = obs::statsJson(kernel, meta);
    }
    EXPECT_EQ(docs[0], docs[1]);
    EXPECT_NE(docs[0].find("\"schema\": \"machsim-stats-v1\""),
              std::string::npos);
    EXPECT_NE(docs[0].find("serve.request_us"), std::string::npos);
    EXPECT_NE(docs[0].find("\"p999\""), std::string::npos);
}

TEST(ServingDeterminism, RunDigestIsFarmShapeInvariant)
{
    // Three seeds, run serially and then on a 3-wide farm: the digest
    // of each machine must not depend on how the host scheduled the
    // simulations around it.
    const std::uint64_t seeds[] = {0x5e12e, 0x5e12f, 0x5e130};
    std::vector<std::uint64_t> serial(3), farmed(3);
    for (unsigned width : {1u, 3u}) {
        std::vector<std::uint64_t> &out =
            width == 1 ? serial : farmed;
        std::vector<std::function<void()>> jobs;
        for (unsigned i = 0; i < 3; ++i) {
            jobs.push_back([&out, &seeds, i] {
                vm::Kernel kernel(smallConfig(seeds[i]));
                apps::Serving app(smallParams());
                app.execute(kernel);
                out[i] = xpr::runDigest(kernel);
            });
        }
        farm::runMany(std::move(jobs), width);
    }
    EXPECT_EQ(serial, farmed);
}

// ---------------------------------------------------------------------
// Workload shape sanity
// ---------------------------------------------------------------------

TEST(ServingWorkload, ChurnsSpacesAndStaysConsistent)
{
    vm::Kernel kernel(smallConfig());
    apps::Serving app(smallParams());
    app.execute(kernel);

    const xpr::MachineStats stats = xpr::MachineStats::capture(kernel);
    // fork/exec/exit churn: COW copies from the inherited image,
    // zero-fills from working sets and mmap bursts, shootdowns from
    // the munmaps and kmem churn.
    EXPECT_GT(stats.cow_copies, 0u);
    EXPECT_GT(stats.zero_fills, 0u);
    EXPECT_GT(stats.shootdowns_initiated, 0u);
    EXPECT_GT(stats.ipis_sent, 0u);
    EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
}

TEST(ServingWorkload, RunsOnNumaMachines)
{
    hw::MachineConfig config;
    config.numa_nodes = 2;
    config.ncpus = 8;
    config.seed = 0x5e12e;
    vm::Kernel kernel(config);
    apps::Serving app(smallParams());
    app.execute(kernel);
    EXPECT_GT(app.requests_completed, 0u);
    EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
}

} // namespace
} // namespace mach
