/**
 * @file
 * Table 4: responder results, and the Section 8 analysis.
 *
 * Responder events (elapsed time inside the shootdown interrupt
 * service routine) are recorded on 5 of the 16 processors, as in the
 * paper, so counts represent roughly a third of actual responses.
 *
 * The paper's findings, which this harness checks:
 *  - shootdowns impose greater costs on initiators than responders
 *    (the typical pmap operation during a shootdown is short, and the
 *    average responder waits for only half the other responders while
 *    the initiator waits for all of them);
 *  - Camelot's responder-time distribution is nearly symmetric (mean
 *    close to the median), unlike the skewed initiator distributions.
 */

#include "bench_common.hh"

using namespace mach;
using namespace mach::bench;

int
main()
{
    setLogQuiet(true);
    std::printf("Table 4: responder results\n");
    std::printf("(ISR times in microseconds; recorded on 5 of 16 "
                "processors)\n\n");
    std::printf("%-12s %8s  %18s %8s %8s %8s\n", "application",
                "events", "mean+-std", "10th", "median", "90th");

    for (unsigned app = 0; app < 4; ++app) {
        hw::MachineConfig config;
        config.seed = 0x7ab1e400 + app;
        AppRun run = runApp(app, config);
        const xpr::RunAnalysis &a = run.result.analysis;
        const xpr::ShootdownSummary &r = a.responder;
        std::printf("%s\n",
                    xpr::formatRow(run.label, r, r.events < 16).c_str());

        // Section 8: initiator cost vs responder cost.
        Sample initiator_all;
        for (double v : a.kernel_initiator.time_usec.values())
            initiator_all.add(v);
        for (double v : a.user_initiator.time_usec.values())
            initiator_all.add(v);
        if (r.events > 0 && initiator_all.count() > 0) {
            std::printf("    initiator mean %6.0f us vs responder mean "
                        "%6.0f us -> initiators pay more: %s\n",
                        initiator_all.mean(), r.time_usec.mean(),
                        initiator_all.mean() > r.time_usec.mean()
                            ? "yes (as in paper)"
                            : "NO");
        }
        if (app == 3 && r.events > 0) {
            const double mean = r.time_usec.mean();
            const double median = r.time_usec.median();
            const double rel =
                mean > 0 ? std::abs(mean - median) / mean : 0.0;
            std::printf("    Camelot responder symmetry: mean %.0f vs "
                        "median %.0f (%.0f%% apart; paper: nearly "
                        "symmetric)\n",
                        mean, median, rel * 100.0);
        }
        printRuntime(run);
    }
    return 0;
}
