/**
 * @file
 * Inter-processor and device interrupt delivery.
 *
 * Each CPU has one pending line per interrupt source; posting an already
 * pending source merges with it (which is why the initiator checks "is a
 * shootdown interrupt already pending" before adding a processor to its
 * interrupt list -- Section 4, omitted detail 3). Delivery is decided by
 * the target CPU's current interrupt priority level: a source is
 * deliverable when its priority exceeds the level. The kick callback
 * lets a sleeping simulated CPU be woken promptly when a deliverable
 * interrupt arrives.
 */

#ifndef MACH_HW_INTR_HH
#define MACH_HW_INTR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "base/types.hh"
#include "hw/machine_config.hh"

namespace mach::hw
{

/** Per-machine interrupt controller. */
class InterruptController
{
  public:
    /** Invoked when a post makes a new interrupt pending on a CPU. */
    using KickFn = std::function<void(CpuId)>;

    InterruptController(const MachineConfig *config, unsigned ncpus);

    /**
     * Raise @p irq on @p target. Returns false (and does nothing more)
     * if the line was already pending. @p now stamps the post time for
     * post-to-delivery latency observability; merged posts keep the
     * earlier stamp (the line has been pending since then).
     */
    bool post(CpuId target, Irq irq, Tick now = 0);

    /** Is @p irq currently pending on @p cpu? */
    bool pending(CpuId cpu, Irq irq) const;

    /**
     * Simulated time of the oldest unacknowledged post of @p irq on
     * @p cpu (0 when the poster did not pass a timestamp). Read by the
     * delivery loop before clear() to compute post-to-deliver latency.
     */
    Tick postTick(CpuId cpu, Irq irq) const;

    /** Acknowledge (clear) @p irq on @p cpu. */
    void clear(CpuId cpu, Irq irq);

    /**
     * Highest-priority pending source deliverable at level @p spl, or
     * -1 when none. Priorities come from MachineConfig::irqPriority.
     */
    int deliverable(CpuId cpu, Spl spl) const;

    /** Register the wakeup callback (one per machine). */
    void setKick(KickFn kick) { kick_ = std::move(kick); }

    std::uint64_t postCount() const { return posts_; }

  private:
    const MachineConfig *config_;
    /** pending_[cpu] is a bitmask indexed by Irq. */
    std::vector<std::uint8_t> pending_;
    /** post_ticks_[cpu * kNumIrqs + irq] = time of the oldest post. */
    std::vector<Tick> post_ticks_;
    KickFn kick_;
    std::uint64_t posts_ = 0;
};

} // namespace mach::hw

#endif // MACH_HW_INTR_HH
