#include "kern/cpu.hh"

#include "base/logging.hh"
#include "kern/machine.hh"
#include "obs/recorder.hh"

namespace mach::kern
{

namespace
{
/** Idle nap length; idle CPUs are woken by kicks and enqueues. */
constexpr Tick kIdleNap = 10 * kSec;

const char *
irqSpanName(hw::Irq irq)
{
    switch (irq) {
      case hw::Irq::Shootdown: return "irq.shootdown";
      case hw::Irq::Timer: return "irq.timer";
      default: return "irq.device";
    }
}
} // namespace

Cpu::Cpu(Machine *machine, CpuId id)
    : machine_(machine), id_(id), node_(machine->nodeOfCpu(id)),
      tlb_(&machine->cfg(), &machine->mem())
{
}

hw::Bus &
Cpu::bus()
{
    return machine_->bus(node_);
}

hw::Spl
Cpu::setSpl(hw::Spl level)
{
    const hw::Spl old = spl_;
    spl_ = level;
    if (level < old)
        pollInterrupts();
    return old;
}

void
Cpu::pollInterrupts()
{
    // Only the fiber currently executing on this CPU may poll; events
    // and other CPUs' fibers interact through kick() instead.
    for (;;) {
        const int irq_index = machine_->intr().deliverable(id_, spl_);
        if (irq_index < 0)
            return;
        const auto irq = static_cast<hw::Irq>(irq_index);
        obs::Recorder &rec = machine_->recorder();
        if (rec.enabled()) {
            // Post-to-deliver latency: how long the line sat pending
            // (spl masking, sleeping target, dispatch backlog).
            const Tick posted = machine_->intr().postTick(id_, irq);
            const Tick latency =
                posted != 0 ? machine_->now() - posted : 0;
            rec.begin(rec.cpuTrack(id_), irqSpanName(irq), "irq",
                      obs::Arg{"post_to_deliver_ns", latency});
            rec.metrics()
                .histogram("irq.post_to_deliver_us")
                .record(latency / kUsec);
            if (machine_->cfg().obs_record_cost > 0)
                advanceNoPoll(machine_->cfg().obs_record_cost);
        }
        machine_->intr().clear(id_, irq);
        ++interrupts_taken;

        // Hardware raises the priority level to the source's own level
        // while the service routine runs, which blocks further
        // interrupts from the same source ("responders must disable
        // further shootdown interrupts while servicing one -- most
        // hardware does this by default", Section 4).
        const hw::Spl saved = spl_;
        spl_ = machine_->cfg().irqPriority(irq);

        // Dispatch overhead: state save (with its natural variation)
        // plus a handful of shootdown / handler structure accesses that
        // miss in the write-through cache and pay current bus prices.
        Tick dispatch = machine_->cfg().intr_dispatch_cost;
        if (machine_->cfg().intr_dispatch_jitter > 0)
            dispatch +=
                machine_->rng().below(machine_->cfg().intr_dispatch_jitter);
        dispatch += bus().accessCost(4);
        advanceNoPoll(dispatch);

        machine_->dispatchIrq(irq, *this);

        advanceNoPoll(machine_->cfg().intr_return_cost);
        if (rec.enabled())
            rec.end(rec.cpuTrack(id_), irqSpanName(irq));
        spl_ = saved;
    }
}

void
Cpu::kick()
{
    if (sleeping_fiber_ != 0 &&
        machine_->intr().deliverable(id_, spl_) >= 0) {
        wakeSleeper();
    }
}

void
Cpu::wakeSleeper()
{
    if (sleeping_fiber_ == 0)
        return;
    machine_->ctx().cancel(sleep_event_);
    machine_->ctx().scheduleWake(
        sleeping_fiber_, machine_->now() + machine_->cfg().ipi_latency);
    // Leave sleeping_fiber_ set; the sleeper clears it on resume. A
    // second wake before then is absorbed by the predicate loops.
    sleeping_fiber_ = 0;
}

void
Cpu::preemptibleSleep(Tick dt)
{
    sim::Context &ctx = machine_->ctx();
    if (sleeping_fiber_ != 0) {
        panic("cpu%u: preemptibleSleep by fiber '%s' while fiber '%s' "
              "is already registered asleep here",
              id_, ctx.fiberName(ctx.currentFiber()).c_str(),
              ctx.fiberName(sleeping_fiber_).c_str());
    }
    sleeping_fiber_ = ctx.currentFiber();
    sleep_event_ = ctx.scheduleWake(sleeping_fiber_, ctx.now() + dt);
    ctx.block();
    sleeping_fiber_ = 0;
    // Cancel in case we were woken by a different (earlier) event and
    // the original wake is still pending; harmless if already fired.
    ctx.cancel(sleep_event_);
    sleep_event_ = {};
}

void
Cpu::advance(Tick dt)
{
    sim::Context &ctx = machine_->ctx();
    const Tick deadline = ctx.now() + dt;
    pollInterrupts();
    while (ctx.now() < deadline) {
        preemptibleSleep(deadline - ctx.now());
        pollInterrupts();
    }
}

void
Cpu::advanceNoPoll(Tick dt)
{
    // Loop so that a stale wake event (from an earlier cancelled sleep
    // or a crossed scheduler wake) cannot shorten the time consumed.
    sim::Context &ctx = machine_->ctx();
    const Tick deadline = ctx.now() + dt;
    while (ctx.now() < deadline)
        ctx.sleep(deadline - ctx.now());
}

void
Cpu::spinOnce()
{
    advance(machine_->cfg().spin_quantum + bus().accessCost());
}

void
Cpu::memAccess(unsigned count)
{
    advance(bus().accessCost(count));
}

void
Cpu::idleWait()
{
    preemptibleSleep(kIdleNap);
    pollInterrupts();
}

} // namespace mach::kern
