/**
 * @file
 * Tests for the xpr instrumentation package and its analysis.
 */

#include <gtest/gtest.h>

#include "xpr/analysis.hh"
#include "xpr/xpr.hh"

namespace mach::xpr
{
namespace
{

Event
initiatorEvent(Tick elapsed, bool kernel, std::uint32_t procs = 3,
               std::uint32_t pages = 1)
{
    return {EventKind::ShootInitiator, 0, 1000, kernel, pages, procs,
            elapsed};
}

Event
responderEvent(Tick elapsed, CpuId cpu = 1)
{
    return {EventKind::ShootResponder, cpu, 1000, false, 0, 0, elapsed};
}

TEST(XprBuffer, RecordsInOrder)
{
    Buffer buffer(8);
    buffer.record(initiatorEvent(10, true));
    buffer.record(responderEvent(20));
    const auto events = buffer.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].elapsed, 10u);
    EXPECT_EQ(events[1].elapsed, 20u);
    EXPECT_FALSE(buffer.overflowed());
}

TEST(XprBuffer, WrapKeepsMostRecent)
{
    Buffer buffer(4);
    for (Tick t = 1; t <= 6; ++t)
        buffer.record(initiatorEvent(t, false));
    EXPECT_TRUE(buffer.overflowed());
    const auto events = buffer.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().elapsed, 3u);
    EXPECT_EQ(events.back().elapsed, 6u);
}

TEST(XprBuffer, DisabledBufferDropsRecords)
{
    Buffer buffer(4);
    buffer.setEnabled(false);
    buffer.record(initiatorEvent(1, false));
    EXPECT_EQ(buffer.size(), 0u);
    buffer.setEnabled(true);
    buffer.record(initiatorEvent(2, false));
    EXPECT_EQ(buffer.size(), 1u);
}

TEST(XprBuffer, ResetClears)
{
    Buffer buffer(4);
    buffer.record(initiatorEvent(1, false));
    buffer.reset();
    EXPECT_EQ(buffer.size(), 0u);
    EXPECT_FALSE(buffer.overflowed());
    buffer.record(initiatorEvent(2, false));
    EXPECT_EQ(buffer.events()[0].elapsed, 2u);
}

TEST(XprAnalysis, ClassifiesByKindAndPmap)
{
    Buffer buffer(16);
    buffer.record(initiatorEvent(1000 * kUsec, true, 5, 2));
    buffer.record(initiatorEvent(2000 * kUsec, true, 7, 4));
    buffer.record(initiatorEvent(500 * kUsec, false, 3, 1));
    buffer.record(responderEvent(100 * kUsec));
    buffer.record(responderEvent(300 * kUsec));

    const RunAnalysis analysis = analyze(buffer);
    EXPECT_EQ(analysis.kernel_initiator.events, 2u);
    EXPECT_DOUBLE_EQ(analysis.kernel_initiator.time_usec.mean(),
                     1500.0);
    EXPECT_DOUBLE_EQ(analysis.kernel_initiator.pages.mean(), 3.0);
    EXPECT_DOUBLE_EQ(analysis.kernel_initiator.procs.mean(), 6.0);
    EXPECT_EQ(analysis.user_initiator.events, 1u);
    EXPECT_DOUBLE_EQ(analysis.user_initiator.time_usec.mean(), 500.0);
    EXPECT_EQ(analysis.responder.events, 2u);
    EXPECT_DOUBLE_EQ(analysis.responder.time_usec.mean(), 200.0);
    EXPECT_DOUBLE_EQ(analysis.kernel_initiator.totalOverheadUsec(),
                     3000.0);
}

TEST(XprAnalysis, EmptyBuffer)
{
    Buffer buffer(4);
    const RunAnalysis analysis = analyze(buffer);
    EXPECT_EQ(analysis.kernel_initiator.events, 0u);
    EXPECT_EQ(analysis.user_initiator.events, 0u);
    EXPECT_EQ(analysis.responder.events, 0u);
}

TEST(XprAnalysis, FormatRowShapes)
{
    ShootdownSummary summary;
    summary.events = 3;
    summary.time_usec.add(100);
    summary.time_usec.add(200);
    summary.time_usec.add(300);

    const std::string row = formatRow("App", summary);
    EXPECT_NE(row.find("App"), std::string::npos);
    EXPECT_NE(row.find("200"), std::string::npos);

    const std::string nm = formatRow("App", summary, true);
    EXPECT_NE(nm.find("NM"), std::string::npos);

    ShootdownSummary empty;
    const std::string none = formatRow("None", empty);
    EXPECT_NE(none.find("0"), std::string::npos);
}

} // namespace
} // namespace mach::xpr
