#include "apps/mach_build.hh"

#include <deque>

#include "base/logging.hh"

namespace mach::apps
{

namespace
{
/** Touch (write) the first @p pages pages of a region. */
void
touchPages(kern::Thread &thread, VAddr base, unsigned pages)
{
    for (unsigned i = 0; i < pages; ++i) {
        const bool ok = thread.store32(base + i * kPageSize, 0xc0de0000 + i);
        MACH_ASSERT(ok);
    }
}
} // namespace

void
MachBuild::job(vm::Kernel &kernel, kern::Thread &self,
               std::uint64_t seed, kern::Mutex &unix_server)
{
    Rng rng(seed);

    // Read the source file: a kernel I/O buffer filled by the disk.
    const VAddr src_buf = kernel.kmemAlloc(self, 8 * kPageSize);
    MACH_ASSERT(src_buf != 0);
    kernel.io().request(self, Tick(rng.exponential(18.0) * kMsec));
    touchPages(self, src_buf, static_cast<unsigned>(rng.range(2, 6)));

    // Copy it into the compiler's address space.
    vm::Task &task = *self.task();
    VAddr user_src = 0;
    bool ok = kernel.vmAllocate(self, task, &user_src, 4 * kPageSize,
                                true);
    MACH_ASSERT(ok);
    touchPages(self, user_src, 4);

    // Two kernel scratch regions that are mostly reserved "just in
    // case": the mapping cache is never touched, the scratch buffer
    // only sometimes. Their frees are the lazy-evaluation payoff.
    const VAddr map_cache = kernel.kmemAlloc(self, 8 * kPageSize);
    const VAddr sym_cache = kernel.kmemAlloc(self, 8 * kPageSize);
    const VAddr scratch = kernel.kmemAlloc(self, 8 * kPageSize);
    if (rng.chance(0.3))
        touchPages(self, scratch, 1);

    // Compile. Parts of every job funnel through the serialized Unix
    // compatibility code.
    for (int phase = 0; phase < 3; ++phase) {
        unix_server.lock(self);
        self.compute(Tick(rng.exponential(6.0) * kMsec));
        unix_server.unlock(self);
        self.compute(Tick(rng.exponential(55.0) * kMsec));
    }

    // Write the object file.
    const VAddr out_buf = kernel.kmemAlloc(self, 4 * kPageSize);
    touchPages(self, out_buf, static_cast<unsigned>(rng.range(1, 4)));
    kernel.io().request(self, Tick(rng.exponential(22.0) * kMsec));

    // Release kernel buffers: the touched ones force machine-wide
    // kernel shootdowns; the untouched ones are skipped lazily.
    kernel.kmemFree(self, src_buf, 8 * kPageSize);
    kernel.kmemFree(self, map_cache, 8 * kPageSize);
    kernel.kmemFree(self, sym_cache, 8 * kPageSize);
    kernel.kmemFree(self, scratch, 8 * kPageSize);
    kernel.kmemFree(self, out_buf, 4 * kPageSize);

    ++jobs_completed;
}

void
MachBuild::run(vm::Kernel &kernel, kern::Thread &driver)
{
    kern::Mutex unix_server("unix-server");

    struct JobSlot
    {
        kern::Thread *thread;
        vm::Task *task;
    };
    std::deque<JobSlot> running;

    auto reap_one = [&] {
        JobSlot slot = running.front();
        running.pop_front();
        driver.join(*slot.thread);
        kernel.destroyTask(driver, slot.task);
    };

    for (unsigned j = 0; j < params_.jobs; ++j) {
        while (running.size() >= params_.concurrency)
            reap_one();
        const std::string job_name = "cc" + std::to_string(j);
        vm::Task *task = kernel.createTask(job_name);
        const std::uint64_t seed = params_.seed + j * 7919;
        kern::Thread *thread = kernel.spawnThread(
            task, job_name,
            [this, &kernel, seed, &unix_server](kern::Thread &self) {
                job(kernel, self, seed, unix_server);
            });
        running.push_back({thread, task});
    }
    while (!running.empty())
        reap_one();
}

} // namespace mach::apps
