#include "apps/consistency_tester.hh"

#include "base/logging.hh"

namespace mach::apps
{

void
ConsistencyTester::run(vm::Kernel &kernel, kern::Thread &driver)
{
    kern::Machine &machine = kernel.machine();
    MACH_ASSERT(params_.children >= 1);
    MACH_ASSERT(params_.children < machine.ncpus());

    vm::Task *task = kernel.createTask("tester");

    // The main thread runs on its own processor, past the children's.
    kern::Thread *main_thread = kernel.spawnThread(
        task, "tester-main",
        [this, &kernel, task](kern::Thread &self) {
            kern::Machine &m = kernel.machine();
            const unsigned k = params_.children;

            // 1. Allocate a page of read-write memory.
            VAddr page = 0;
            const bool ok =
                kernel.vmAllocate(self, *task, &page, kPageSize, true);
            MACH_ASSERT(ok);

            // 2. Start the children, pinned to distinct processors.
            std::vector<kern::Thread *> children;
            for (unsigned i = 0; i < k; ++i) {
                const VAddr counter_va = page + i * 4;
                // The deadline only matters when the shootdown is
                // deliberately broken: inconsistent children never
                // fault and would otherwise increment forever.
                const Tick deadline = m.now() + params_.warmup * 12;
                children.push_back(kernel.spawnThread(
                    task, "tester-child" + std::to_string(i),
                    [counter_va, &m, deadline](kern::Thread &child) {
                        std::uint32_t value = 0;
                        while (m.now() < deadline) {
                            const kern::AccessResult r =
                                child.access(counter_va, ProtWrite);
                            if (!r.ok) {
                                // Unrecoverable write fault: the page
                                // went read-only. The thread "dies".
                                break;
                            }
                            m.mem().write32(r.paddr, ++value);
                            child.cpu().advance(200 * kUsec);
                        }
                    },
                    static_cast<std::int64_t>(i)));
            }

            // Let the children get going and warm their TLB entries.
            self.sleep(params_.warmup);

            // 3. Reprotect read-only and immediately save the counters.
            kernel.vmProtect(self, *task, page, kPageSize, ProtRead);
            saved_.assign(k, 0);
            for (unsigned i = 0; i < k; ++i) {
                const kern::AccessResult r =
                    self.access(page + i * 4, ProtRead);
                MACH_ASSERT(r.ok);
                saved_[i] = m.mem().read32(r.paddr);
            }

            // 4. Wait for the page faults to kill every child.
            for (kern::Thread *child : children)
                self.join(*child);

            // 5. Compare with the saved copy.
            final_.assign(k, 0);
            consistent_ = true;
            for (unsigned i = 0; i < k; ++i) {
                const kern::AccessResult r =
                    self.access(page + i * 4, ProtRead);
                MACH_ASSERT(r.ok);
                final_[i] = m.mem().read32(r.paddr);
                if (final_[i] != saved_[i])
                    consistent_ = false;
            }
        },
        static_cast<std::int64_t>(params_.children));

    driver.join(*main_thread);
}

} // namespace mach::apps
