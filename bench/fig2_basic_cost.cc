/**
 * @file
 * Figure 2: basic costs of TLB shootdown.
 *
 * Runs the Section 5.1 consistency tester with k = 1..15 child threads
 * on a 16-processor machine, ten runs per point, and reports the mean
 * and standard deviation of the initiator's synchronization time (from
 * invoking the shootdown until the pmap change may begin).
 *
 * Paper result: a least-squares fit through the 1..12-processor points
 * gives ~430 us base + ~55 us per additional processor; the 13..15
 * points depart from the trend line and their standard deviation
 * doubles, attributed to bus contention once more than 12 processors
 * actively use the bus.
 */

#include <cstdio>
#include <vector>

#include "apps/consistency_tester.hh"
#include "base/stats.hh"
#include "vm/kernel.hh"

using namespace mach;

int
main()
{
    constexpr unsigned kRunsPerPoint = 10;
    constexpr unsigned kMaxChildren = 15;
    constexpr unsigned kFitLimit = 12;

    setLogQuiet(true);
    std::printf("Figure 2: basic costs of TLB shootdown\n");
    std::printf("(initiator time from invoking the shootdown until "
                "pmap changes may begin)\n\n");
    std::printf("%10s %12s %12s %8s\n", "processors", "mean(us)",
                "stddev(us)", "runs");

    std::vector<double> xs, ys;
    std::vector<double> means, devs;

    for (unsigned k = 1; k <= kMaxChildren; ++k) {
        Sample times;
        for (unsigned run = 0; run < kRunsPerPoint; ++run) {
            hw::MachineConfig config;
            config.seed = 0x5eed0000 + k * 131 + run;
            vm::Kernel kernel(config);
            apps::ConsistencyTester tester(
                {.children = k, .warmup = 30 * kMsec});
            const apps::WorkloadResult result = tester.execute(kernel);
            if (!tester.consistent()) {
                std::printf("!! inconsistency detected at k=%u\n", k);
                return 1;
            }
            const auto &user = result.analysis.user_initiator;
            if (user.events != 1) {
                std::printf("!! expected 1 user shootdown, saw %llu\n",
                            static_cast<unsigned long long>(user.events));
                return 1;
            }
            times.add(user.time_usec.mean());
        }
        std::printf("%10u %12.1f %12.1f %8u\n", k, times.mean(),
                    times.stddev(), kRunsPerPoint);
        means.push_back(times.mean());
        devs.push_back(times.stddev());
        if (k <= kFitLimit) {
            xs.push_back(k);
            ys.push_back(times.mean());
        }
    }

    const LinearFit fit = leastSquares(xs, ys);
    std::printf("\nleast-squares fit over 1..%u processors:\n",
                kFitLimit);
    std::printf("  basic cost = %.0f us for the first processor\n",
                fit.intercept + fit.slope);
    std::printf("  plus %.0f us for every additional processor "
                "(r^2 = %.3f)\n",
                fit.slope, fit.r2);
    std::printf("  (paper: 430 us + 55 us per processor)\n");

    // Knee check: how far do the 13..15 points sit above the trend?
    double max_excess = 0.0;
    for (unsigned k = kFitLimit + 1; k <= kMaxChildren; ++k) {
        const double predicted = fit.intercept + fit.slope * k;
        const double excess = means[k - 1] - predicted;
        if (excess > max_excess)
            max_excess = excess;
    }
    std::printf("\nbeyond %u processors the points depart from the "
                "trend line by up to %.0f us\n",
                kFitLimit, max_excess);
    std::printf("(bus contention and congestion once >12 processors "
                "actively use the bus)\n");
    return 0;
}
