#include "kern/machine.hh"

#include <algorithm>

#include "base/logging.hh"
#include "kern/sched.hh"
#include "obs/recorder.hh"
#include "xpr/xpr.hh"

namespace mach::kern
{

Machine::Machine(const hw::MachineConfig &config)
    : config_((config.validate(), config)), topo_(&config_),
      rng_(config.seed)
{
    // Responder sampling can never cover more processors than exist.
    config_.xpr_responder_cpus =
        std::min(config_.xpr_responder_cpus, config_.ncpus);
    mem_ = std::make_unique<hw::PhysMem>(config_.phys_frames,
                                         topo_.nodes());
    buses_.reserve(topo_.nodes());
    for (unsigned node = 0; node < topo_.nodes(); ++node)
        buses_.push_back(std::make_unique<hw::Bus>(&config_, node));
    intr_ = std::make_unique<hw::InterruptController>(&config_,
                                                      config_.ncpus);
    intr_->setKick([this](CpuId id) { cpu(id).kick(); });

    cpus_.reserve(config_.ncpus);
    for (CpuId id = 0; id < config_.ncpus; ++id)
        cpus_.push_back(std::make_unique<Cpu>(this, id));

    xpr_ = std::make_unique<xpr::Buffer>(config_.xpr_capacity);
    xpr_->setEnabled(config_.xpr_enabled);

    recorder_ =
        std::make_unique<obs::Recorder>([this] { return ctx_.now(); });
    recorder_->setCpuTracks(config_.ncpus);
    for (CpuId id = 0; id < config_.ncpus; ++id) {
        cpus_[id]->tlb().attachObs(recorder_.get(),
                                   recorder_->cpuTrack(id));
    }

    sched_ = std::make_unique<Sched>(this);

    // Default timer service: consume the tick cost and ask the current
    // thread to reschedule at the next quantum boundary. Occasionally
    // the tick also runs longer spl-protected kernel housekeeping --
    // the "varying intervals for which interrupts are disabled; many
    // short intervals, but few long ones" that give kernel shootdown
    // times their long tail (Section 8).
    setIrqHandler(hw::Irq::Timer, [this](Cpu &cpu) {
        Tick service = config_.timer_service_cost;
        if (rng_.chance(0.03))
            service += Tick(rng_.exponential(2500.0) * kUsec);
        if (config_.consistency_strategy ==
            hw::ConsistencyStrategy::DelayedFlush) {
            // Technique 2: the periodic tick flushes the whole TLB so
            // that pending mapping changes eventually become safe.
            cpu.tlb().flushAll();
            service += config_.tlb_flush_cost;
        }
        cpu.advance(service);
        cpu.need_resched = true;
    });
}

Machine::~Machine() = default;

Cpu &
Machine::cpu(CpuId id)
{
    MACH_ASSERT(id < cpus_.size());
    return *cpus_[id];
}

void
Machine::setIrqHandler(hw::Irq irq, IrqHandler handler)
{
    irq_handlers_[static_cast<unsigned>(irq)] = std::move(handler);
}

void
Machine::dispatchIrq(hw::Irq irq, Cpu &cpu)
{
    IrqHandler &handler = irq_handlers_[static_cast<unsigned>(irq)];
    if (!handler) {
        warn("unhandled interrupt %u on cpu %u",
             static_cast<unsigned>(irq), cpu.id());
        return;
    }
    handler(cpu);
}

void
Machine::setFaultHandler(FaultHandler handler)
{
    fault_handler_ = std::move(handler);
}

bool
Machine::handleFault(Thread &thread, VAddr va, Prot want)
{
    if (!fault_handler_)
        panic("page fault at 0x%08x with no VM system installed", va);
    return fault_handler_(thread, va, want);
}

int
Machine::poolOfKernelVpn(Vpn vpn) const
{
    const unsigned pools = config_.kernel_pools;
    if (pools <= 1)
        return -1;
    const Vpn lo = vaToVpn(kKernelBase);
    const Vpn hi = vaToVpn(kKernelHi);
    if (vpn < lo || vpn >= hi)
        return -1;
    const Vpn slice = (hi - lo) / pools;
    const int pool = static_cast<int>((vpn - lo) / slice);
    return pool < static_cast<int>(pools) ? pool : -1;
}

void
Machine::setSpaceSwitchHook(SpaceSwitchHook hook)
{
    space_switch_ = std::move(hook);
}

void
Machine::switchSpace(Cpu &cpu, Thread &from, Thread &to)
{
    if (space_switch_)
        space_switch_(cpu, from, to);
}

void
Machine::startTimers()
{
    if (config_.timer_period == 0 || timers_on_)
        return;
    timers_on_ = true;
    for (CpuId id = 0; id < ncpus(); ++id) {
        // Stagger ticks so the CPUs' timers do not beat in lockstep.
        const Tick offset =
            config_.timer_period * (id + 1) / (ncpus() + 1);
        ctx_.scheduleCall(now() + offset, [this, id] { timerTick(id); });
    }
}

void
Machine::stopTimers()
{
    timers_on_ = false;
}

void
Machine::timerTick(CpuId id)
{
    if (!timers_on_)
        return;
    Cpu &target = cpu(id);
    // Tickless idle: parked processors take no scheduler interrupts.
    if (!target.idle)
        intr_->post(id, hw::Irq::Timer, now());
    ctx_.scheduleCall(now() + config_.timer_period,
                      [this, id] { timerTick(id); });
}

std::uint64_t
Machine::run(Tick until)
{
    return ctx_.run(until);
}

Machine::PrefixRun
Machine::runPrefix(std::uint64_t event_watermark,
                   std::uint64_t bus_watermark, Tick until)
{
    PrefixRun out;
    const sim::EventQueue &queue = ctx_.queue();
    out.events = ctx_.runGuarded(
        until,
        [&] {
            return queue.scheduledCount() >= event_watermark ||
                   busAccessTotal() >= bus_watermark;
        },
        &out.parked);
    return out;
}

} // namespace mach::kern
