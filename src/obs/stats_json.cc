#include "obs/stats_json.hh"

#include <fstream>

#include "obs/metrics.hh"
#include "obs/recorder.hh"
#include "vm/kernel.hh"
#include "xpr/machine_stats.hh"

namespace mach::obs
{

namespace
{

/** The only strings emitted are names; escape just in case. */
std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

char
hexDigit(unsigned v)
{
    return v < 10 ? static_cast<char>('0' + v)
                  : static_cast<char>('a' + v - 10);
}

/** Fixed-width hex keeps the digest out of JSON number territory. */
std::string
hex64(std::uint64_t v)
{
    std::string out = "0x";
    for (int shift = 60; shift >= 0; shift -= 4)
        out += hexDigit(static_cast<unsigned>((v >> shift) & 0xf));
    return out;
}

void
histogramJson(std::string &out, const Histogram &h)
{
    out += "{\"count\": " + std::to_string(h.count());
    out += ", \"sum\": " + std::to_string(h.sum());
    out += ", \"min\": " + std::to_string(h.min());
    out += ", \"max\": " + std::to_string(h.max());
    out += ", \"mean\": " + std::to_string(h.mean());
    out += ", \"p50\": " + std::to_string(h.percentileMille(500));
    out += ", \"p90\": " + std::to_string(h.percentileMille(900));
    out += ", \"p99\": " + std::to_string(h.percentileMille(990));
    out += ", \"p999\": " + std::to_string(h.percentileMille(999));
    out += "}";
}

void
counter(std::string &out, const char *name, std::uint64_t value,
        bool last = false)
{
    out += "    ";
    out += jsonString(name);
    out += ": " + std::to_string(value);
    out += last ? "\n" : ",\n";
}

} // namespace

std::string
statsJson(vm::Kernel &kernel, const StatsMeta &meta)
{
    kern::Machine &machine = kernel.machine();
    const xpr::MachineStats stats = xpr::MachineStats::capture(kernel);
    const Metrics &metrics = machine.recorder().metrics();

    std::string out = "{\n";
    out += "  \"schema\": \"machsim-stats-v1\",\n";
    out += "  \"app\": " + jsonString(meta.app) + ",\n";
    out += "  \"seed\": " + std::to_string(meta.seed) + ",\n";
    out += "  \"ncpus\": " + std::to_string(machine.ncpus()) + ",\n";
    out += "  \"numa_nodes\": " + std::to_string(machine.numaNodes()) +
           ",\n";
    out += "  \"policy\": " + jsonString(meta.policy) + ",\n";
    out += "  \"virtual_runtime_us\": " +
           std::to_string(stats.now_usec) + ",\n";
    out += "  \"digest\": " + jsonString(hex64(xpr::runDigest(kernel))) +
           ",\n";

    out += "  \"histograms\": {";
    bool first = true;
    for (const auto &[name, hist] : metrics.entries()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    " + jsonString(name) + ": ";
        histogramJson(out, *hist);
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"counters\": {\n";
    counter(out, "shootdowns_initiated", stats.shootdowns_initiated);
    counter(out, "delayed_waits", stats.delayed_waits);
    counter(out, "ipis_sent", stats.ipis_sent);
    counter(out, "responder_passes", stats.responder_passes);
    counter(out, "idle_drains", stats.idle_drains);
    counter(out, "queue_overflows", stats.queue_overflows);
    counter(out, "remote_invalidates", stats.remote_invalidates);
    counter(out, "ipis_elided", stats.ipis_elided);
    counter(out, "flushes_deferred", stats.flushes_deferred);
    counter(out, "deferred_flushes_applied",
            stats.deferred_flushes_applied);
    counter(out, "actions_merged", stats.actions_merged);
    counter(out, "range_invalidates", stats.range_invalidates);
    counter(out, "full_space_flushes", stats.full_space_flushes);
    counter(out, "reuse_elisions", stats.reuse_elisions);
    counter(out, "cross_node_ipis", stats.cross_node_ipis);
    counter(out, "forwarded_ipis", stats.forwarded_ipis);
    counter(out, "remote_faults", stats.remote_faults);
    counter(out, "local_faults", stats.local_faults);
    counter(out, "page_migrations", stats.page_migrations);
    counter(out, "faults_resolved", stats.faults_resolved);
    counter(out, "faults_failed", stats.faults_failed);
    counter(out, "cow_copies", stats.cow_copies);
    counter(out, "zero_fills", stats.zero_fills);
    counter(out, "pageouts", stats.pageouts);
    counter(out, "pageins", stats.pageins);
    counter(out, "free_frames", stats.free_frames, true);
    out += "  },\n";

    // Emitted only when devices exist, so device-less stats output
    // stays byte-identical to the pre-device schema.
    if (!stats.devices.empty()) {
        out += "  \"device_counters\": {\n";
        counter(out, "device_commands", stats.device_commands);
        counter(out, "device_sync_waits", stats.device_sync_waits);
        counter(out, "cross_node_device_commands",
                stats.cross_node_device_commands, true);
        out += "  },\n";
        out += "  \"devices\": [";
        for (std::size_t i = 0; i < stats.devices.size(); ++i) {
            const xpr::DeviceStats &d = stats.devices[i];
            out += i == 0 ? "\n" : ",\n";
            out += "    {\"dma_reads\": " + std::to_string(d.dma_reads);
            out += ", \"dma_writes\": " + std::to_string(d.dma_writes);
            out += ", \"writes_committed\": " +
                   std::to_string(d.writes_committed);
            out += ", \"dma_aborts\": " + std::to_string(d.dma_aborts);
            out += ", \"dma_faults\": " + std::to_string(d.dma_faults);
            out += ", \"iommu_walks\": " +
                   std::to_string(d.iommu_walks);
            out += ", \"drains\": " + std::to_string(d.drains);
            out += ", \"iotlb_hits\": " + std::to_string(d.iotlb_hits);
            out += ", \"iotlb_misses\": " +
                   std::to_string(d.iotlb_misses);
            out += ", \"iotlb_flushes\": " +
                   std::to_string(d.iotlb_flushes);
            out += ", \"iotlb_single_invalidates\": " +
                   std::to_string(d.iotlb_single_invalidates);
            out += "}";
        }
        out += "\n  ],\n";
    }

    out += "  \"cpus\": [";
    for (std::size_t i = 0; i < stats.cpus.size(); ++i) {
        const xpr::CpuStats &cpu = stats.cpus[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"tlb_hits\": " + std::to_string(cpu.tlb_hits);
        out += ", \"tlb_misses\": " + std::to_string(cpu.tlb_misses);
        out += ", \"tlb_writebacks\": " +
               std::to_string(cpu.tlb_writebacks);
        out += ", \"tlb_flushes\": " + std::to_string(cpu.tlb_flushes);
        out += ", \"tlb_single_invalidates\": " +
               std::to_string(cpu.tlb_single_invalidates);
        out += ", \"interrupts_taken\": " +
               std::to_string(cpu.interrupts_taken);
        out += ", \"faults_taken\": " + std::to_string(cpu.faults_taken);
        out += ", \"remote_mem_accesses\": " +
               std::to_string(cpu.remote_mem_accesses);
        out += "}";
    }
    out += stats.cpus.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

bool
writeStatsJson(const std::string &path, vm::Kernel &kernel,
               const StatsMeta &meta)
{
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file)
        return false;
    file << statsJson(kernel, meta);
    return static_cast<bool>(file);
}

} // namespace mach::obs
