#include "xpr/machine_stats.hh"

#include <cstdio>
#include <sstream>

#include "base/logging.hh"
#include "hw/tlb.hh"
#include "pmap/policy.hh"
#include "pmap/shootdown.hh"
#include "vm/kernel.hh"
#include "xpr/xpr.hh"

namespace mach::xpr
{

MachineStats
MachineStats::capture(vm::Kernel &kernel)
{
    kern::Machine &machine = kernel.machine();
    MachineStats stats;
    stats.cpus.resize(machine.ncpus());
    for (CpuId id = 0; id < machine.ncpus(); ++id) {
        kern::Cpu &cpu = machine.cpu(id);
        CpuStats &out = stats.cpus[id];
        out.tlb_hits = cpu.tlb().hits;
        out.tlb_misses = cpu.tlb().misses;
        out.tlb_writebacks = cpu.tlb().writebacks;
        out.tlb_flushes = cpu.tlb().flushes;
        out.tlb_single_invalidates = cpu.tlb().single_invalidates;
        out.interrupts_taken = cpu.interrupts_taken;
        out.faults_taken = cpu.faults_taken;
        out.remote_mem_accesses = cpu.remote_mem_accesses;
    }

    stats.devices.resize(kernel.deviceCount());
    for (unsigned i = 0; i < kernel.deviceCount(); ++i) {
        const dev::DmaDevice &device = kernel.device(i);
        DeviceStats &out = stats.devices[i];
        out.dma_reads = device.dma_reads;
        out.dma_writes = device.dma_writes;
        out.writes_committed = device.writes_committed;
        out.dma_aborts = device.dma_aborts;
        out.dma_faults = device.dma_faults;
        out.iommu_walks = device.iommu_walks;
        out.drains = device.drains;
        out.iotlb_hits = device.tlb().hits;
        out.iotlb_misses = device.tlb().misses;
        out.iotlb_flushes = device.tlb().flushes;
        out.iotlb_single_invalidates = device.tlb().single_invalidates;
    }

    const pmap::ShootdownController &shoot = kernel.pmaps().shoot();
    stats.device_commands = shoot.device_commands;
    stats.device_sync_waits = shoot.device_sync_waits;
    stats.cross_node_device_commands = shoot.cross_node_device_commands;
    stats.shootdowns_initiated = shoot.initiated;
    stats.delayed_waits = shoot.delayed_waits;
    stats.ipis_sent = shoot.interrupts_sent;
    stats.responder_passes = shoot.responder_passes;
    stats.idle_drains = shoot.idle_drains;
    stats.queue_overflows = shoot.queue_overflows;
    stats.remote_invalidates = shoot.remote_invalidates;
    const pmap::ShootdownPolicy &policy = shoot.policy();
    stats.ipis_elided = policy.ipis_elided;
    stats.flushes_deferred = policy.flushes_deferred;
    stats.deferred_flushes_applied = policy.deferred_flushes_applied;
    stats.actions_merged = policy.actions_merged;
    stats.range_invalidates = policy.range_invalidates;
    stats.full_space_flushes = policy.full_space_flushes;
    stats.reuse_elisions = policy.reuse_elisions;
    stats.cross_node_ipis = shoot.cross_node_ipis;
    stats.forwarded_ipis = shoot.forwarded_ipis;
    stats.remote_faults = kernel.remote_faults;
    stats.local_faults = kernel.local_faults;
    stats.page_migrations = kernel.page_migrations;

    stats.faults_resolved = kernel.faults_resolved;
    stats.faults_failed = kernel.faults_failed;
    stats.cow_copies = kernel.cow_copies;
    stats.zero_fills = kernel.zero_fills;
    stats.pageouts = kernel.pager().pageouts;
    stats.pageins = kernel.pager().pageins;

    stats.now_usec = machine.now() / kUsec;
    stats.free_frames = machine.mem().freeFrames();
    return stats;
}

MachineStats
MachineStats::since(const MachineStats &earlier) const
{
    MACH_ASSERT(cpus.size() == earlier.cpus.size());
    MachineStats diff = *this;
    for (std::size_t i = 0; i < cpus.size(); ++i) {
        CpuStats &out = diff.cpus[i];
        const CpuStats &then = earlier.cpus[i];
        out.tlb_hits -= then.tlb_hits;
        out.tlb_misses -= then.tlb_misses;
        out.tlb_writebacks -= then.tlb_writebacks;
        out.tlb_flushes -= then.tlb_flushes;
        out.tlb_single_invalidates -= then.tlb_single_invalidates;
        out.interrupts_taken -= then.interrupts_taken;
        out.faults_taken -= then.faults_taken;
        out.remote_mem_accesses -= then.remote_mem_accesses;
    }
    MACH_ASSERT(devices.size() == earlier.devices.size());
    for (std::size_t i = 0; i < devices.size(); ++i) {
        DeviceStats &out = diff.devices[i];
        const DeviceStats &then = earlier.devices[i];
        out.dma_reads -= then.dma_reads;
        out.dma_writes -= then.dma_writes;
        out.writes_committed -= then.writes_committed;
        out.dma_aborts -= then.dma_aborts;
        out.dma_faults -= then.dma_faults;
        out.iommu_walks -= then.iommu_walks;
        out.drains -= then.drains;
        out.iotlb_hits -= then.iotlb_hits;
        out.iotlb_misses -= then.iotlb_misses;
        out.iotlb_flushes -= then.iotlb_flushes;
        out.iotlb_single_invalidates -= then.iotlb_single_invalidates;
    }
    diff.device_commands -= earlier.device_commands;
    diff.device_sync_waits -= earlier.device_sync_waits;
    diff.cross_node_device_commands -=
        earlier.cross_node_device_commands;
    diff.shootdowns_initiated -= earlier.shootdowns_initiated;
    diff.delayed_waits -= earlier.delayed_waits;
    diff.ipis_sent -= earlier.ipis_sent;
    diff.responder_passes -= earlier.responder_passes;
    diff.idle_drains -= earlier.idle_drains;
    diff.queue_overflows -= earlier.queue_overflows;
    diff.remote_invalidates -= earlier.remote_invalidates;
    diff.ipis_elided -= earlier.ipis_elided;
    diff.flushes_deferred -= earlier.flushes_deferred;
    diff.deferred_flushes_applied -= earlier.deferred_flushes_applied;
    diff.actions_merged -= earlier.actions_merged;
    diff.range_invalidates -= earlier.range_invalidates;
    diff.full_space_flushes -= earlier.full_space_flushes;
    diff.reuse_elisions -= earlier.reuse_elisions;
    diff.cross_node_ipis -= earlier.cross_node_ipis;
    diff.forwarded_ipis -= earlier.forwarded_ipis;
    diff.remote_faults -= earlier.remote_faults;
    diff.local_faults -= earlier.local_faults;
    diff.page_migrations -= earlier.page_migrations;
    diff.faults_resolved -= earlier.faults_resolved;
    diff.faults_failed -= earlier.faults_failed;
    diff.cow_copies -= earlier.cow_copies;
    diff.zero_fills -= earlier.zero_fills;
    diff.pageouts -= earlier.pageouts;
    diff.pageins -= earlier.pageins;
    diff.now_usec -= earlier.now_usec;
    return diff;
}

CpuStats
MachineStats::totals() const
{
    CpuStats total;
    for (const CpuStats &cpu : cpus) {
        total.tlb_hits += cpu.tlb_hits;
        total.tlb_misses += cpu.tlb_misses;
        total.tlb_writebacks += cpu.tlb_writebacks;
        total.tlb_flushes += cpu.tlb_flushes;
        total.tlb_single_invalidates += cpu.tlb_single_invalidates;
        total.interrupts_taken += cpu.interrupts_taken;
        total.faults_taken += cpu.faults_taken;
        total.remote_mem_accesses += cpu.remote_mem_accesses;
    }
    return total;
}

std::string
MachineStats::report() const
{
    const CpuStats total = totals();
    char buf[1024];
    std::string out;

    std::snprintf(buf, sizeof(buf),
                  "machine stats @ %llu us (%zu cpus, %u free "
                  "frames)\n",
                  static_cast<unsigned long long>(now_usec),
                  cpus.size(), free_frames);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  tlb: %llu hits / %llu misses (%.1f%% hit), "
                  "%llu writebacks, %llu flushes, %llu invalidates\n",
                  static_cast<unsigned long long>(total.tlb_hits),
                  static_cast<unsigned long long>(total.tlb_misses),
                  total.hitRatio() * 100.0,
                  static_cast<unsigned long long>(total.tlb_writebacks),
                  static_cast<unsigned long long>(total.tlb_flushes),
                  static_cast<unsigned long long>(
                      total.tlb_single_invalidates));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  vm : %llu faults (%llu failed), %llu zero-fills, "
                  "%llu cow copies, %llu pageouts, %llu pageins\n",
                  static_cast<unsigned long long>(faults_resolved +
                                                  faults_failed),
                  static_cast<unsigned long long>(faults_failed),
                  static_cast<unsigned long long>(zero_fills),
                  static_cast<unsigned long long>(cow_copies),
                  static_cast<unsigned long long>(pageouts),
                  static_cast<unsigned long long>(pageins));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  tlb consistency: %llu shootdowns, %llu IPIs, "
                  "%llu responder passes, %llu idle drains, %llu "
                  "queue overflows, %llu remote invalidates, %llu "
                  "delayed waits\n",
                  static_cast<unsigned long long>(shootdowns_initiated),
                  static_cast<unsigned long long>(ipis_sent),
                  static_cast<unsigned long long>(responder_passes),
                  static_cast<unsigned long long>(idle_drains),
                  static_cast<unsigned long long>(queue_overflows),
                  static_cast<unsigned long long>(remote_invalidates),
                  static_cast<unsigned long long>(delayed_waits));
    out += buf;
    if (ipis_elided + flushes_deferred + actions_merged +
            range_invalidates + full_space_flushes + reuse_elisions >
        0) {
        std::snprintf(
            buf, sizeof(buf),
            "  policy: %llu IPIs elided, %llu flushes deferred "
            "(%llu applied), %llu actions merged, %llu range vs "
            "%llu full-space invalidates, %llu reuse elisions\n",
            static_cast<unsigned long long>(ipis_elided),
            static_cast<unsigned long long>(flushes_deferred),
            static_cast<unsigned long long>(deferred_flushes_applied),
            static_cast<unsigned long long>(actions_merged),
            static_cast<unsigned long long>(range_invalidates),
            static_cast<unsigned long long>(full_space_flushes),
            static_cast<unsigned long long>(reuse_elisions));
        out += buf;
    }
    if (!devices.empty()) {
        DeviceStats dev_total;
        for (const DeviceStats &device : devices) {
            dev_total.dma_reads += device.dma_reads;
            dev_total.dma_writes += device.dma_writes;
            dev_total.writes_committed += device.writes_committed;
            dev_total.dma_aborts += device.dma_aborts;
            dev_total.dma_faults += device.dma_faults;
            dev_total.iommu_walks += device.iommu_walks;
            dev_total.drains += device.drains;
            dev_total.iotlb_hits += device.iotlb_hits;
            dev_total.iotlb_misses += device.iotlb_misses;
        }
        std::snprintf(
            buf, sizeof(buf),
            "  dev: %zu devices, %llu reads, %llu writes (%llu "
            "committed, %llu aborted), %llu faults, %llu walks, "
            "%llu/%llu iotlb hits, %llu drains, %llu commands "
            "(%llu cross-node), %llu sync waits\n",
            devices.size(),
            static_cast<unsigned long long>(dev_total.dma_reads),
            static_cast<unsigned long long>(dev_total.dma_writes),
            static_cast<unsigned long long>(dev_total.writes_committed),
            static_cast<unsigned long long>(dev_total.dma_aborts),
            static_cast<unsigned long long>(dev_total.dma_faults),
            static_cast<unsigned long long>(dev_total.iommu_walks),
            static_cast<unsigned long long>(dev_total.iotlb_hits),
            static_cast<unsigned long long>(dev_total.iotlb_hits +
                                            dev_total.iotlb_misses),
            static_cast<unsigned long long>(dev_total.drains),
            static_cast<unsigned long long>(device_commands),
            static_cast<unsigned long long>(
                cross_node_device_commands),
            static_cast<unsigned long long>(device_sync_waits));
        out += buf;
    }
    if (cross_node_ipis + forwarded_ipis + remote_faults +
            local_faults + page_migrations + total.remote_mem_accesses >
        0) {
        const std::uint64_t faults = remote_faults + local_faults;
        std::snprintf(
            buf, sizeof(buf),
            "  numa: %llu cross-node IPIs, %llu forwarded IPIs, "
            "%llu remote accesses, %llu/%llu remote faults (%.1f%%), "
            "%llu migrations\n",
            static_cast<unsigned long long>(cross_node_ipis),
            static_cast<unsigned long long>(forwarded_ipis),
            static_cast<unsigned long long>(total.remote_mem_accesses),
            static_cast<unsigned long long>(remote_faults),
            static_cast<unsigned long long>(faults),
            faults ? 100.0 * static_cast<double>(remote_faults) /
                         static_cast<double>(faults)
                   : 0.0,
            static_cast<unsigned long long>(page_migrations));
        out += buf;
    }
    return out;
}

namespace
{

/** FNV-1a, fixed offsets/primes: stable across platforms/stdlibs. */
std::uint64_t
fnv1a(std::uint64_t hash, const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::uint64_t
fnv1aU64(std::uint64_t hash, std::uint64_t value)
{
    return fnv1a(hash, &value, sizeof(value));
}

} // namespace

std::uint64_t
runDigest(vm::Kernel &kernel)
{
    // Keep in lockstep with tests/determinism_test.cc's runDigest:
    // the golden digests there pin this exact formula.
    std::uint64_t hash = 0xcbf29ce484222325ull;
    std::ostringstream print;
    for (const Event &event : kernel.machine().xpr().events()) {
        print << static_cast<int>(event.kind) << ':' << event.cpu
              << ':' << event.timestamp << ':' << event.kernel_pmap
              << ':' << event.pages << ':' << event.procs << ':'
              << event.elapsed << '\n';
    }
    const std::string text = print.str();
    hash = fnv1a(hash, text.data(), text.size());
    hash = fnv1aU64(hash, kernel.machine().now());
    for (CpuId id = 0; id < kernel.machine().ncpus(); ++id) {
        const hw::Tlb &tlb = kernel.machine().cpu(id).tlb();
        hash = fnv1aU64(hash, tlb.hits);
        hash = fnv1aU64(hash, tlb.misses);
        hash = fnv1aU64(hash, tlb.writebacks);
        hash = fnv1aU64(hash, tlb.flushes);
        hash = fnv1aU64(hash, tlb.single_invalidates);
        hash = fnv1aU64(hash, tlb.full_flushes);
        hash = fnv1aU64(hash, tlb.validCount());
    }
    const pmap::ShootdownController &shoot = kernel.pmaps().shoot();
    hash = fnv1aU64(hash, shoot.initiated);
    hash = fnv1aU64(hash, shoot.delayed_waits);
    hash = fnv1aU64(hash, shoot.interrupts_sent);
    hash = fnv1aU64(hash, shoot.responder_passes);
    hash = fnv1aU64(hash, shoot.idle_drains);
    hash = fnv1aU64(hash, shoot.queue_overflows);
    hash = fnv1aU64(hash, shoot.remote_invalidates);
    return hash;
}

} // namespace mach::xpr
