#include "apps/workload.hh"

#include "base/logging.hh"
#include "dev/dma_device.hh"
#include "vm/task.hh"

namespace mach::apps
{

namespace
{

/**
 * Device-driver thread for DMA device @p index: owns a private buffer
 * task the device streams against, and periodically revokes/restores
 * write access to the stream's target page -- the remap cycle a real
 * driver performs when it recycles DMA buffers. Each revocation is a
 * shootdown whose responder set includes the device, so any workload
 * run with --devices exercises the device command / drain / sync
 * phases without the applications having to know devices exist.
 * Free-runs until the workload's requestStop().
 */
void
deviceDriver(vm::Kernel &kernel, unsigned index, kern::Thread &drv)
{
    const hw::MachineConfig &cfg = kernel.machine().cfg();
    dev::DmaDevice &device = kernel.device(index);
    vm::Task *task =
        kernel.createTask("dma" + std::to_string(index));
    // Half-capacity decoy sweep: steady state runs on IOTLB hits, so
    // the IOMMU walks that do happen are mostly refills after a
    // revocation invalidated the entries.
    const unsigned decoys = cfg.iotlb_entries / 2;
    VAddr base = 0;
    if (!kernel.vmAllocate(drv, *task, &base,
                           (1 + decoys) * kPageSize, true))
        return;
    kern::Thread *toucher = kernel.spawnThread(
        task, "dma" + std::to_string(index) + "-touch",
        [base, decoys](kern::Thread &self) {
            for (unsigned i = 0; i <= decoys; ++i)
                self.access(base + i * kPageSize, ProtWrite);
        });
    drv.join(*toucher);

    dev::DmaStream stream;
    stream.pmap = &task->pmap();
    stream.target = vaToVpn(base);
    stream.decoy_base = vaToVpn(base + kPageSize);
    stream.decoys = decoys;
    stream.gap = 200 * kUsec;
    device.startStream(stream);

    // The buffer-recycle cycle; stagger the phase per device so the
    // revocations of a multi-device machine do not land in lockstep.
    drv.sleep((1 + index) * 700 * kUsec);
    while (true) {
        if (!kernel.vmProtect(drv, *task, base, kPageSize, ProtRead))
            return;
        drv.sleep(500 * kUsec);
        if (!kernel.vmProtect(drv, *task, base, kPageSize,
                              ProtReadWrite))
            return;
        // Protection increases are repaired lazily by faults, and a
        // device cannot fault: a CPU touch re-arms the DMA target --
        // the CPU half of a real driver's recycle cycle.
        kern::Thread *fixer = kernel.spawnThread(
            task, "dma" + std::to_string(index) + "-fix",
            [base](kern::Thread &self) {
                self.access(base, ProtWrite);
            });
        drv.join(*fixer);
        drv.sleep(1500 * kUsec);
    }
}

} // namespace

WorkloadResult
Workload::execute(vm::Kernel &kernel)
{
    kern::Machine &machine = kernel.machine();
    kernel.start();

    // With --devices, each device gets its own buffer task, stream,
    // and driver thread. Spawned before the workload driver so event
    // ordering is deterministic; with devices == 0 nothing changes.
    for (unsigned i = 0; i < kernel.deviceCount(); ++i) {
        kernel.spawnThread(nullptr, "dma" + std::to_string(i) + "-drv",
                           [&kernel, i](kern::Thread &self) {
                               deviceDriver(kernel, i, self);
                           });
    }

    machine.xpr().reset();

    const Tick start = machine.now();
    kernel.spawnThread(nullptr, name() + "-driver",
                       [this, &kernel](kern::Thread &driver) {
                           run(kernel, driver);
                           kernel.machine().ctx().requestStop();
                       });
    machine.run();

    WorkloadResult result;
    result.virtual_runtime = machine.now() - start;
    result.analysis = xpr::analyze(machine.xpr());
    result.lazy_avoided = 0;
    for (const auto &task : kernel.tasks())
        result.lazy_avoided += task->pmap().shootdowns_avoided_lazy;
    result.lazy_avoided +=
        kernel.pmaps().kernelPmap().shootdowns_avoided_lazy;
    // analyze() above already warned if the xpr buffer overflowed; the
    // flag travels on result.analysis.overflowed for the driver.
    return result;
}

} // namespace mach::apps
