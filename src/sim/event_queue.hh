/**
 * @file
 * Deterministic, cancellable discrete-event queue.
 *
 * Events fire in (time, insertion-sequence) order, so two events scheduled
 * for the same tick fire in the order they were scheduled. This total
 * order is the root of the simulator's determinism.
 */

#ifndef MACH_SIM_EVENT_QUEUE_HH
#define MACH_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <map>

#include "base/types.hh"

namespace mach::sim
{

/** Opaque handle identifying a scheduled event, usable for cancellation. */
struct EventId
{
    Tick when = 0;
    std::uint64_t seq = 0;

    bool valid() const { return seq != 0; }

    bool
    operator<(const EventId &other) const
    {
        if (when != other.when)
            return when < other.when;
        return seq < other.seq;
    }
};

/** Time-ordered queue of callbacks. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p cb to fire at absolute time @p when. */
    EventId schedule(Tick when, Callback cb);

    /**
     * Remove a previously scheduled event. Cancelling an event that has
     * already fired (or was already cancelled) is a harmless no-op, which
     * simplifies callers that race wakeups against cancellations.
     */
    void cancel(EventId id);

    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }

    /** Time of the earliest pending event; panics if empty. */
    Tick nextTime() const;

    /**
     * Remove and return the earliest event's callback, storing its
     * scheduled time in @p when. Panics if empty.
     */
    Callback popFront(Tick *when);

    /** Total events ever scheduled (monotonic; used by micro benches). */
    std::uint64_t scheduledCount() const { return next_seq_ - 1; }

  private:
    std::map<EventId, Callback> events_;
    std::uint64_t next_seq_ = 1;
};

} // namespace mach::sim

#endif // MACH_SIM_EVENT_QUEUE_HH
