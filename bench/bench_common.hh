/**
 * @file
 * Shared helpers for the table-reproduction benchmark binaries.
 */

#ifndef MACH_BENCH_BENCH_COMMON_HH
#define MACH_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/agora.hh"
#include "apps/camelot.hh"
#include "apps/mach_build.hh"
#include "apps/parthenon.hh"
#include "apps/workload.hh"
#include "base/logging.hh"
#include "farm/farm.hh"
#include "vm/kernel.hh"

namespace mach::bench
{

/** One evaluation application run on a fresh kernel. */
struct AppRun
{
    std::string label;
    apps::WorkloadResult result;
    Tick runtime = 0;
};

/**
 * Workload scale factor from the MACH_BENCH_SCALE environment variable
 * (default 1). The default runs are time-compressed relative to the
 * paper's 7.5-60 minute applications; a larger scale multiplies the
 * work (jobs, transactions, successive runs) for event counts closer
 * to the paper's, at proportionally longer host time.
 */
inline unsigned
benchScale()
{
    const char *env = std::getenv("MACH_BENCH_SCALE");
    if (env == nullptr)
        return 1;
    const int value = std::atoi(env);
    return value >= 1 ? static_cast<unsigned>(value) : 1;
}

/** Factory for the four Section 5.2 applications by index 0..3. */
inline std::unique_ptr<apps::Workload>
makeApp(unsigned index)
{
    const unsigned scale = benchScale();
    switch (index) {
      case 0: {
        apps::MachBuild::Params params;
        params.jobs *= scale;
        return std::make_unique<apps::MachBuild>(params);
      }
      case 1: {
        apps::Parthenon::Params params;
        params.runs *= scale;
        return std::make_unique<apps::Parthenon>(params);
      }
      case 2: {
        apps::Agora::Params params;
        params.runs *= scale;
        params.regions *= scale;
        return std::make_unique<apps::Agora>(params);
      }
      case 3: {
        apps::Camelot::Params params;
        params.transactions *= scale;
        return std::make_unique<apps::Camelot>(params);
      }
    }
    fatal("makeApp: bad index %u", index);
}

inline const char *
appLabel(unsigned index)
{
    static const char *labels[] = {"Mach", "Parthenon", "Agora",
                                   "Camelot"};
    return labels[index];
}

/** Run application @p index on a fresh machine with @p config. */
inline AppRun
runApp(unsigned index, const hw::MachineConfig &config)
{
    vm::Kernel kernel(config);
    std::unique_ptr<apps::Workload> app = makeApp(index);
    AppRun run;
    run.label = appLabel(index);
    run.result = app->execute(kernel);
    run.runtime = run.result.virtual_runtime;
    return run;
}

/**
 * Run-farm width for the bench binaries, from MACH_BENCH_JOBS
 * (default 1: the bit-exact serial path). The sweeps below are one
 * independent machine per config, so any width produces the same
 * numbers -- farm width only changes the wall clock.
 */
inline unsigned
benchJobs()
{
    const char *env = std::getenv("MACH_BENCH_JOBS");
    if (env == nullptr)
        return 1;
    const int value = std::atoi(env);
    return value >= 1 ? static_cast<unsigned>(value) : 1;
}

/** Host hardware threads (1 when the runtime cannot tell). */
inline unsigned
hostCores()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n != 0 ? n : 1;
}

/**
 * Effective farm width for a bench that would like @p requested
 * workers. An explicit MACH_BENCH_JOBS always wins (the per-bench
 * farm opt-in/opt-out knob); otherwise the request is clamped to the
 * host's core count -- a farmed sweep is pure simulation with no
 * shared prefix to reuse, so oversubscribing cores only adds
 * context-switch thrash and measures as a slowdown (the bench_sweep
 * 0.90x regression on a 1-core host). A clamped width of 1 means
 * "farming cannot win here": benches should take their serial path
 * and say so.
 */
inline unsigned
farmWidth(unsigned requested)
{
    if (std::getenv("MACH_BENCH_JOBS") != nullptr)
        return benchJobs();
    return std::min(requested, hostCores());
}

/**
 * Run every measurement job concurrently on benchJobs() workers (or
 * @p jobs when nonzero) and return when all are done. Jobs must
 * write results into their own indexed slots and must not print --
 * collect first, then report serially so tables stay ordered.
 */
inline void
runFarmed(std::vector<std::function<void()>> jobs, unsigned jobs_override = 0)
{
    farm::runMany(std::move(jobs),
                  jobs_override != 0 ? jobs_override : benchJobs());
}

/** One config point of a farmed application sweep. */
struct SweepSpec
{
    unsigned app = 0; ///< makeApp index.
    hw::MachineConfig config;
};

/**
 * Run one fresh machine per spec, farmed across the bench width, and
 * return the AppRuns indexed like @p specs (never completion order).
 */
inline std::vector<AppRun>
runAppSweep(const std::vector<SweepSpec> &specs, unsigned jobs_override = 0)
{
    std::vector<AppRun> runs(specs.size());
    std::vector<std::function<void()>> jobs;
    jobs.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        jobs.push_back([&specs, &runs, i] {
            runs[i] = runApp(specs[i].app, specs[i].config);
        });
    runFarmed(std::move(jobs), jobs_override);
    return runs;
}

inline void
printRuntime(const AppRun &run)
{
    std::printf("  %-10s virtual runtime %6.1f s\n", run.label.c_str(),
                static_cast<double>(run.runtime) / kSec);
}

} // namespace mach::bench

#endif // MACH_BENCH_BENCH_COMMON_HH
