/**
 * @file
 * The `strategy` test tier: every shootdown-avoidance policy runs the
 * full checker scenario library under the stale-translation oracle,
 * the same way CI exercises the baseline protocol.
 *
 * Each (scenario, policy) pair re-runs the scenario's unperturbed
 * baseline trial with the policy swapped in (plus whatever TLB
 * features the policy requires -- the same rules
 * MachineConfig::validate() enforces). The trial must finish within
 * its liveness bound, hold the scenario's safety predicate, and draw
 * zero oracle violations. Scenario-specific coverage is NOT asserted
 * here: coverage targets the path the scenario was written to stress
 * under its own configuration, and a policy that elides IPIs or
 * defers flushes legitimately steers execution around it.
 *
 * A second group pins per-policy golden runDigests for the Parthenon
 * app, extending the determinism contract (NumaDeterminism,
 * StormDigest) to every policy: any change to a policy's decision
 * points must either leave these bit-identical or consciously
 * re-capture them.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "apps/parthenon.hh"
#include "base/perturb.hh"
#include "chk/explorer.hh"
#include "chk/scenario.hh"
#include "hw/machine_config.hh"
#include "pmap/policy.hh"
#include "vm/kernel.hh"
#include "xpr/machine_stats.hh"

namespace mach
{
namespace
{

/** The four avoidance policies beyond the 1989 baseline. */
constexpr hw::ShootdownPolicy kAvoidancePolicies[] = {
    hw::ShootdownPolicy::LazyAsid,
    hw::ShootdownPolicy::Batched,
    hw::ShootdownPolicy::RangeFlush,
    hw::ShootdownPolicy::ReuseElide,
};

/**
 * Retarget @p config at @p policy, adding the TLB features the policy
 * needs. Returns false when the combination is architecturally
 * incompatible -- the same conditions MachineConfig::validate()
 * rejects:
 *
 *  - the avoidance policies layer over the shootdown strategy, so
 *    delayed-flush configurations are out;
 *  - tlb_remote_invalidate bypasses the responder protocol the
 *    policies hook;
 *  - reuse-elide proves pages uncached via reference bits, which
 *    tlb_no_refmod_writeback machines never write back.
 */
bool
adaptConfigToPolicy(hw::MachineConfig &config,
                    hw::ShootdownPolicy policy)
{
    if (config.consistency_strategy ==
        hw::ConsistencyStrategy::DelayedFlush)
        return false;
    if (config.tlb_remote_invalidate)
        return false;
    if (policy == hw::ShootdownPolicy::ReuseElide &&
        config.tlb_no_refmod_writeback)
        return false;

    config.shootdown_policy = policy;
    if (policy == hw::ShootdownPolicy::LazyAsid)
        config.tlb_asid_tags = true;
    if (policy == hw::ShootdownPolicy::ReuseElide)
        config.tlb_software_reload = true;
    config.validate();
    return true;
}

std::vector<std::string>
scenarioNames()
{
    std::vector<std::string> names;
    for (const chk::Scenario &s : chk::builtinScenarios())
        names.push_back(s.name);
    return names;
}

class PolicyScenario
    : public ::testing::TestWithParam<
          std::tuple<std::string, hw::ShootdownPolicy>>
{
};

TEST_P(PolicyScenario, BaselineTrialStaysOracleClean)
{
    setLogQuiet(true);
    const std::vector<chk::Scenario> library = chk::builtinScenarios();
    const chk::Scenario *found =
        chk::findScenario(library, std::get<0>(GetParam()));
    ASSERT_NE(found, nullptr);

    chk::Scenario scenario = *found;
    const hw::ShootdownPolicy policy = std::get<1>(GetParam());
    if (!adaptConfigToPolicy(scenario.config, policy)) {
        GTEST_SKIP() << "scenario hardware is incompatible with "
                     << hw::shootdownPolicyName(policy);
    }

    const chk::Explorer explorer;
    const chk::TrialResult res =
        explorer.runTrial(scenario, SchedulePerturber{});

    EXPECT_TRUE(res.completed)
        << scenario.name << " under "
        << hw::shootdownPolicyName(policy)
        << " missed its liveness bound";
    EXPECT_TRUE(res.predicate_ok) << res.note;
    EXPECT_EQ(res.violation_count, 0u)
        << (res.violations.empty() ? res.note
                                   : res.violations.front());
}

INSTANTIATE_TEST_SUITE_P(
    Chk, PolicyScenario,
    ::testing::Combine(::testing::ValuesIn(scenarioNames()),
                       ::testing::ValuesIn(kAvoidancePolicies)),
    [](const ::testing::TestParamInfo<
        std::tuple<std::string, hw::ShootdownPolicy>> &info) {
        std::string name = std::get<0>(info.param);
        name += '_';
        name += hw::shootdownPolicyName(std::get<1>(info.param));
        std::replace(name.begin(), name.end(), '-', '_');
        return name;
    });

// ---------------------------------------------------------------------
// Per-policy Parthenon golden digests.
// ---------------------------------------------------------------------

/** Parthenon on the default Multimax shape under @p policy. */
std::uint64_t
parthenonPolicyDigest(hw::ShootdownPolicy policy)
{
    setLogQuiet(true);
    hw::MachineConfig config;
    config.seed = 0x9a27e70;
    const bool ok = adaptConfigToPolicy(config, policy);
    EXPECT_TRUE(ok); // The default config carries no conflicts.
    vm::Kernel kernel(config);
    apps::Parthenon::Params params;
    params.runs = 2;
    apps::Parthenon app(params);
    app.execute(kernel);
    EXPECT_GT(app.items_processed, 0u);
    EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
    return xpr::runDigest(kernel);
}

TEST(PolicyDeterminism, ParthenonDigestsMatchGolden)
{
    // Golden digests captured when the policy layer landed. The
    // policy counters themselves stay out of runDigest (so the
    // Baseline digest matches pre-policy goldens); these pin the
    // *timing* effect of each policy's decisions instead.
    const std::uint64_t base =
        parthenonPolicyDigest(hw::ShootdownPolicy::Baseline);
    const std::uint64_t lazy =
        parthenonPolicyDigest(hw::ShootdownPolicy::LazyAsid);
    const std::uint64_t batched =
        parthenonPolicyDigest(hw::ShootdownPolicy::Batched);
    const std::uint64_t range =
        parthenonPolicyDigest(hw::ShootdownPolicy::RangeFlush);
    const std::uint64_t reuse =
        parthenonPolicyDigest(hw::ShootdownPolicy::ReuseElide);

    EXPECT_EQ(base, 0xbd656fd606438366ull);
    EXPECT_EQ(lazy, 0x0431eefc07f42c44ull);
    EXPECT_EQ(batched, 0xbd656fd606438366ull);
    EXPECT_EQ(range, 0xbd656fd606438366ull);
    EXPECT_EQ(reuse, 0x00bb60ce0780898full);

    // Parthenon's lazy evaluation leaves so few kernel shootdowns
    // that batching and range selection never diverge from the
    // baseline protocol here -- the digests coincide by design (the
    // strategy_comparison bench is where those policies move the
    // needle). LazyAsid and ReuseElide change fill/flush behaviour
    // on every context switch and reuse, so they genuinely diverge.
    EXPECT_NE(lazy, base);
    EXPECT_NE(reuse, base);

    // Run-to-run: same policy, same digest.
    EXPECT_EQ(parthenonPolicyDigest(hw::ShootdownPolicy::LazyAsid),
              lazy);
    EXPECT_EQ(parthenonPolicyDigest(hw::ShootdownPolicy::Batched),
              batched);
}

} // namespace
} // namespace mach
