/**
 * @file
 * Schedule perturbations: the replayable input of the model checker.
 *
 * A SchedulePerturber is a finite list of delay directives applied to a
 * deterministic run:
 *
 *   - "event" directives stretch the firing time of the n-th event ever
 *     scheduled on the sim::EventQueue (n is the queue's insertion
 *     sequence number, which is itself deterministic), and
 *   - "bus" directives stretch the cost of the n-th hw::Bus memory
 *     access.
 *
 * Delays compose with the unperturbed schedule, so within one tick the
 * (time, seq) order contract is untouched; a delayed event simply fires
 * later, which is how the checker reorders same-window events, stretches
 * interrupt latencies, and postpones responder wakeups. Because both
 * counters are deterministic, a perturbation list is a complete,
 * replayable name for an interleaving: the same list on the same
 * configuration and seed reproduces the same run bit-for-bit
 * (tests/determinism_test.cc pins this with golden digests).
 *
 * The text form -- what chk::Explorer prints for a minimized failure and
 * what `machsim --schedule` accepts -- is a comma-separated list of
 * `e<seq>+<ticks>` and `b<access>+<ticks>` items, e.g.
 *
 *   e1204+48000,b77+9000
 *
 * meaning "delay scheduled event #1204 by 48000 ticks (48 us) and charge
 * bus access #77 an extra 9 us". format() emits items in sorted order so
 * the string is canonical.
 */

#ifndef MACH_BASE_PERTURB_HH
#define MACH_BASE_PERTURB_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/types.hh"

namespace mach
{

/** One delay directive of a perturbation schedule. */
struct PerturbItem
{
    /** False: delay a scheduled event. True: stretch a bus access. */
    bool bus = false;
    /** Event insertion sequence, or 1-based bus access number. */
    std::uint64_t index = 0;
    /** Extra ticks to add. */
    Tick extra = 0;

    bool
    operator==(const PerturbItem &other) const
    {
        return bus == other.bus && index == other.index &&
               extra == other.extra;
    }
};

/** A set of delay directives, consulted by EventQueue and Bus. */
class SchedulePerturber
{
  public:
    SchedulePerturber() = default;

    /** Delay the event whose insertion sequence is @p seq. Additive. */
    void delayEvent(std::uint64_t seq, Tick extra);

    /** Stretch the @p access-th (1-based) bus access. Additive. */
    void delayBusAccess(std::uint64_t access, Tick extra);

    void add(const PerturbItem &item);

    /** Extra delay for event @p seq (0 when unperturbed). */
    Tick
    eventDelay(std::uint64_t seq) const
    {
        const auto it = event_delays_.find(seq);
        return it == event_delays_.end() ? 0 : it->second;
    }

    /** Extra cost for bus access @p access (0 when unperturbed). */
    Tick
    busDelay(std::uint64_t access) const
    {
        const auto it = bus_delays_.find(access);
        return it == bus_delays_.end() ? 0 : it->second;
    }

    bool empty() const { return event_delays_.empty() && bus_delays_.empty(); }
    std::size_t size() const { return event_delays_.size() + bus_delays_.size(); }

    /** All directives, sorted (events before bus, then by index). */
    std::vector<PerturbItem> items() const;

    /** Rebuild a perturber from a directive list. */
    static SchedulePerturber fromItems(const std::vector<PerturbItem> &items);

    /** Canonical text form (see file comment). Empty set -> "". */
    std::string format() const;

    /**
     * Parse the text form. Returns false (and fills @p error when
     * non-null) on malformed input; @p out is untouched on failure.
     * The empty string parses to the empty perturbation.
     */
    static bool parse(const std::string &text, SchedulePerturber *out,
                      std::string *error = nullptr);

  private:
    std::unordered_map<std::uint64_t, Tick> event_delays_;
    std::unordered_map<std::uint64_t, Tick> bus_delays_;
};

} // namespace mach

#endif // MACH_BASE_PERTURB_HH
