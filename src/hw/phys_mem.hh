/**
 * @file
 * Simulated physical memory with a frame allocator.
 *
 * Frames are backed by host memory allocated lazily on first touch, so a
 * 64 MB simulated machine costs only what it actually uses. Page tables
 * live in this memory, which is what lets the TLB's reference/modify-bit
 * writeback genuinely race with pmap updates (Section 3).
 */

#ifndef MACH_HW_PHYS_MEM_HH
#define MACH_HW_PHYS_MEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "base/types.hh"

namespace mach::hw
{

/** Byte-addressable simulated physical memory plus frame free list. */
class PhysMem
{
  public:
    /** Create memory with @p frames 4 KB frames. Frame 0 is reserved. */
    explicit PhysMem(std::uint32_t frames);

    std::uint32_t totalFrames() const { return total_frames_; }
    std::uint32_t freeFrames() const;

    /**
     * Allocate a zeroed frame; panics when memory is exhausted (the
     * evaluation runs with adequate physical memory, per Section 5; the
     * pageout path frees frames before this can trigger).
     */
    Pfn allocFrame();

    /** Return a frame to the free list. */
    void freeFrame(Pfn pfn);

    /** True when @p pfn names an allocatable (non-reserved) frame. */
    bool validPfn(Pfn pfn) const;

    /** 32-bit aligned loads and stores. */
    std::uint32_t read32(PAddr addr) const;
    void write32(PAddr addr, std::uint32_t value);

    /** Byte access (used by vm_read/vm_write style copies). */
    std::uint8_t read8(PAddr addr) const;
    void write8(PAddr addr, std::uint8_t value);

    /** Copy a whole frame (used by copy-on-write resolution). */
    void copyFrame(Pfn dst, Pfn src);
    /** Zero-fill a whole frame. */
    void zeroFrame(Pfn pfn);

  private:
    using Frame = std::vector<std::uint8_t>;

    Frame &frameFor(PAddr addr);
    const Frame &frameFor(PAddr addr) const;

    std::uint32_t total_frames_;
    /** Lazily materialized frame contents; null until first touch. */
    mutable std::vector<std::unique_ptr<Frame>> frames_;
    /** LIFO free list of frame numbers. */
    std::vector<Pfn> free_list_;
};

} // namespace mach::hw

#endif // MACH_HW_PHYS_MEM_HH
