/**
 * @file
 * Run the paper's four evaluation applications (Section 5.2) back to
 * back and print a combined shootdown report -- a compact tour of
 * Tables 2, 3 and 4.
 *
 *   ./build/examples/evaluation_suite
 */

#include <cstdio>
#include <memory>

#include "apps/agora.hh"
#include "apps/camelot.hh"
#include "apps/mach_build.hh"
#include "apps/parthenon.hh"
#include "xpr/machine_stats.hh"
#include "vm/kernel.hh"

using namespace mach;

namespace
{

void
report(const char *label, const apps::WorkloadResult &result)
{
    const auto &k = result.analysis.kernel_initiator;
    const auto &u = result.analysis.user_initiator;
    const auto &r = result.analysis.responder;
    std::printf("%-10s  runtime %6.1fs | kernel shootdowns %5llu "
                "(mean %5.0fus) | user %5llu (mean %5.0fus) | "
                "responders %5llu (mean %4.0fus) | lazily avoided "
                "%llu\n",
                label,
                static_cast<double>(result.virtual_runtime) / kSec,
                static_cast<unsigned long long>(k.events),
                k.events ? k.time_usec.mean() : 0.0,
                static_cast<unsigned long long>(u.events),
                u.events ? u.time_usec.mean() : 0.0,
                static_cast<unsigned long long>(r.events),
                r.events ? r.time_usec.mean() : 0.0,
                static_cast<unsigned long long>(result.lazy_avoided));
}

} // namespace

int
main()
{
    setLogQuiet(true);
    std::printf("Evaluation applications on a simulated 16-processor "
                "Multimax\n\n");

    {
        hw::MachineConfig config;
        vm::Kernel kernel(config);
        apps::MachBuild app({.jobs = 24, .concurrency = 12});
        report("Mach", app.execute(kernel));
    }
    {
        hw::MachineConfig config;
        vm::Kernel kernel(config);
        apps::Parthenon app(apps::Parthenon::Params{.runs = 3});
        report("Parthenon", app.execute(kernel));
    }
    {
        hw::MachineConfig config;
        vm::Kernel kernel(config);
        apps::Agora app(apps::Agora::Params{});
        report("Agora", app.execute(kernel));
    }
    {
        hw::MachineConfig config;
        vm::Kernel kernel(config);
        apps::Camelot app({.transactions = 120});
        report("Camelot", app.execute(kernel));
        std::printf("\n%s",
                    xpr::MachineStats::capture(kernel).report().c_str());
    }

    std::printf("\nshapes to notice (Section 7): every application "
                "shoots the kernel pmap;\nonly Camelot shoots user "
                "pmaps; initiators pay more than responders;\nlazy "
                "evaluation silently removes the shootdowns for "
                "never-touched memory.\n");
    return 0;
}
