/**
 * @file
 * Configuration of the simulated multiprocessor.
 *
 * The default values model the paper's testbed: a 16-processor NS32332
 * Encore Multimax with NS32382 MMUs, a shared bus with write-through
 * caches, and a free-running microsecond clock. Timing constants are
 * calibrated (see bench/fig2_basic_cost) so that the Section 5.1 tester
 * reproduces Figure 2: a basic shootdown cost of ~430 us for the first
 * processor plus ~55 us per additional processor, with a bus-contention
 * knee once more than 12 processors are active.
 *
 * The feature flags at the bottom select the hardware-support options the
 * paper discusses in Section 9 and the policy toggles used by the
 * evaluation (lazy evaluation on/off for Table 1, instrumentation on/off
 * for Section 6.1).
 */

#ifndef MACH_HW_MACHINE_CONFIG_HH
#define MACH_HW_MACHINE_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "base/types.hh"

namespace mach::hw
{

/** Interrupt sources, lowest priority first. */
enum class Irq : std::uint8_t
{
    Shootdown = 0,  ///< TLB-shootdown inter-processor interrupt.
    Timer = 1,      ///< Periodic scheduler clock.
    Device = 2,     ///< Disk and other device completion interrupts.
};
constexpr unsigned kNumIrqs = 3;

/**
 * Interrupt priority levels. An interrupt is deliverable when its
 * priority exceeds the CPU's current level. SplHigh masks everything,
 * matching "both the initiator and responder should disable all
 * interrupts during a shootdown" (Section 4).
 */
enum Spl : std::uint8_t
{
    Spl0 = 0,       ///< Everything enabled.
    SplSoft = 1,    ///< Shootdown IPIs masked (baseline hardware).
    SplDevice = 2,  ///< Device + timer interrupts masked as well.
    SplHigh = 3,    ///< All interrupts masked.
};

/**
 * How TLB consistency is maintained (Section 3's candidate
 * techniques).
 */
enum class ConsistencyStrategy : std::uint8_t
{
    /** Technique 1: the Mach shootdown algorithm (the paper's choice). */
    Shootdown,
    /**
     * Technique 2: delay use of changed mappings until every buffer
     * has been flushed by code executed in response to timer
     * interrupts. Correct, but "the additional buffer flushes ... can
     * be expensive on some architectures", and every mapping change
     * waits out a timer period. Requires a TLB without ref/mod
     * writeback (as on the MIPS systems where this technique was
     * actually used), since nothing stalls remote processors during
     * the update.
     */
    DelayedFlush,
};

/**
 * Shootdown-avoidance policy layered over the Figure-1 algorithm
 * (docs/ALGORITHM.md, "Beyond 1989"). Baseline is the paper's eager
 * protocol; every other policy elides or defers work the 1989
 * algorithm would have done, and every one of them must keep the
 * stale-translation oracle clean across the full scenario library.
 */
enum class ShootdownPolicy : std::uint8_t
{
    /** The paper's Figure-1 algorithm, bit-identical to PR 1-7. */
    Baseline,
    /**
     * ASID-generation lazy invalidation: when the target CPU is not
     * currently running the pmap's address space (its entries survive
     * only under tlb_asid_tags), mark the space's tag generation stale
     * in that TLB instead of interrupting the CPU. The deferred flush
     * is consumed by the context-load hook the next time the space is
     * activated there. Requires tlb_asid_tags.
     */
    LazyAsid,
    /**
     * Batched/coalesced shootdowns: a target that already has its
     * action flag raised and is inside its responder loop (or has the
     * IPI still pending) within ipi_coalesce_window of the last IPI
     * will observe the new queue entry on the same pass, so the
     * initiator skips the redundant IPI and merges duplicate queue
     * ranges.
     */
    Batched,
    /**
     * Range invalidation vs full-space flush: between the per-entry
     * threshold (tlb_flush_threshold) and range_flush_crossover pages
     * the responder invalidates the exact range; beyond the crossover
     * it flushes only the target space's entries instead of the whole
     * buffer, preserving other spaces' working sets under ASID tags.
     */
    RangeFlush,
    /**
     * mmap-reuse flush elision (arXiv 2409.10946): skip the shootdown
     * entirely when every affected PTE is provably cached in no TLB --
     * valid but never referenced since its last fill, which this
     * simulator's fill path makes sound because every TLB fill sets
     * the reference bit at the fill instant. Requires ref/mod
     * writeback (not tlb_no_refmod_writeback).
     */
    ReuseElide,
};

/**
 * VM page-placement policy on NUMA shapes (ignored at numa_nodes == 1,
 * where every frame is node-local by construction).
 */
enum class PlacementPolicy : std::uint8_t
{
    /** Allocate the frame on the faulting CPU's node. */
    FirstTouch,
    /** Round-robin frames across nodes by virtual page number. */
    Interleave,
    /**
     * First-touch, plus migrate a page to the faulting node once it
     * has taken numa_migrate_threshold faults from remote nodes. The
     * migration itself revokes the mapping with a shootdown before the
     * frame copy -- the new stale-translation hazard the chk oracle
     * audits.
     */
    Migrate,
};

/** Full parameter set for one simulated machine. */
struct MachineConfig
{
    /** Number of processors. The Multimax under test had 16. */
    unsigned ncpus = 16;

    /** Physical memory in 4 KB frames (default 64 MB). */
    std::uint32_t phys_frames = 16384;

    /** Deterministic seed for all machine-level randomness. */
    std::uint64_t seed = 0x4d616368u; // "Mach"

    // ---- TLB geometry and costs -------------------------------------

    /** Entries per TLB. */
    unsigned tlb_entries = 64;

    /**
     * Ways per set. 0 (the default) keeps the fully-associative global
     * round-robin organization of the original Multimax model; any
     * other value must evenly divide tlb_entries and selects a
     * set-associative layout indexed by a hash of (space, vpn) with
     * round-robin replacement within each set. This changes only which
     * entries conflict, never the simulated lookup/flush costs.
     */
    unsigned tlb_associativity = 0;

    /**
     * Host-side L0 last-translation cache in front of the indexed TLB:
     * the most recent N (space, vpn) translations are served without
     * probing the index at all. Purely a host-speed device -- hits and
     * misses, simulated costs, and replacement decisions are identical
     * to the indexed probe, and the stale-translation oracle audits the
     * L0's servable translations exactly like TLB entries. 0 disables
     * (machsim --no-l0); at most 4 slots.
     */
    unsigned tlb_l0_entries = 4;

    /**
     * Host-side page-walk cache: PageTable::walk()/pteAddr() remember
     * which leaf table each valid root entry points at, skipping the
     * root-level memory read on the host. The walker is still charged
     * for both level reads in simulated time (WalkResult.memory_reads
     * is unchanged), so this is timing-neutral like tlb_l0_entries.
     */
    bool host_walk_cache = true;

    /**
     * Invalidation policy threshold (Section 4, omitted detail 1):
     * beyond this many pages it is cheaper to flush the whole buffer
     * than to invalidate individual entries.
     */
    unsigned tlb_flush_threshold = 4;

    /** Cost of a TLB hit lookup. */
    Tick tlb_lookup_cost = 150;
    /** Cost of invalidating one entry. */
    Tick tlb_invalidate_cost = 8 * kUsec;
    /** Cost of flushing the entire buffer. */
    Tick tlb_flush_cost = 20 * kUsec;
    /** Extra cost of a hardware reload (page-table walk), per level. */
    Tick tlb_reload_cost_per_level = 2 * kUsec;

    // ---- Memory and bus ---------------------------------------------

    /** Uncontended cost of one memory access. */
    Tick mem_access_cost = 600;
    /** Peak uniform jitter per access (cache hit/miss variation). */
    Tick mem_jitter = 300;

    /**
     * Bus congestion: once more than this many CPUs are actively using
     * the bus, each access pays a penalty per extra user. Previous
     * Multimax experiments put the knee at ~12 active processors
     * (Section 7.1).
     */
    unsigned bus_contention_threshold = 12;
    /** Additional cost per access per bus user beyond the threshold. */
    Tick bus_penalty_per_user = 6000;
    /**
     * Peak random jitter per access while contended; models the doubled
     * standard deviation the paper observed at 13-15 processors.
     */
    Tick bus_contended_jitter = 15000;

    // ---- Interrupt structure ----------------------------------------

    /** Initiator-side cost to send one directed IPI. */
    Tick ipi_send_cost = 42 * kUsec;
    /** Peak uniform jitter added per IPI send. */
    Tick ipi_send_jitter = 6 * kUsec;
    /** Wire latency from send until the target can notice the IPI. */
    Tick ipi_latency = 15 * kUsec;
    /** State save / dispatch overhead entering an interrupt handler. */
    Tick intr_dispatch_cost = 80 * kUsec;
    /** Peak uniform jitter of the dispatch (state-save variation). */
    Tick intr_dispatch_jitter = 16 * kUsec;
    /** Overhead returning from an interrupt handler. */
    Tick intr_return_cost = 12 * kUsec;

    /**
     * Initiator-side fixed overhead of starting a shootdown: building
     * the list, touching the (uncached) shootdown structures, saving
     * state. Calibrated against Figure 2's ~430 us intercept.
     */
    Tick shootdown_setup_cost = 266 * kUsec;

    /** Period of the scheduler timer interrupt (0 disables it). */
    Tick timer_period = 16 * kMsec;
    /** Time consumed by one timer interrupt service. */
    Tick timer_service_cost = 120 * kUsec;

    // ---- Kernel primitive costs -------------------------------------

    /** Acquiring / releasing an uncontended spin lock. */
    Tick lock_acquire_cost = 6 * kUsec;
    Tick lock_release_cost = 2 * kUsec;
    /** Busy-wait polling interval while spinning on a lock or flag. */
    Tick spin_quantum = 4 * kUsec;
    /** Context switch cost (state save/restore, excluding TLB flush). */
    Tick ctx_switch_cost = 150 * kUsec;
    /** Fixed overhead of a pmap operation (entry, checks). */
    Tick pmap_op_base_cost = 60 * kUsec;
    /** Cost of the lazy-evaluation validity check, per page examined. */
    Tick lazy_check_cost_per_page = 500;

    // ---- Machine-independent VM costs --------------------------------

    /** Fixed overhead of servicing a page fault (trap, map lookup). */
    Tick fault_base_cost = 250 * kUsec;
    /** Fixed overhead of a VM address-space operation. */
    Tick vm_op_base_cost = 150 * kUsec;
    /** Zero-filling a fresh page. */
    Tick zero_fill_cost = 900 * kUsec;
    /** Copying a page to resolve copy-on-write. */
    Tick page_copy_cost = 1800 * kUsec;
    /** Latency of a pagein from backing store. */
    Tick pagein_latency = 22 * kMsec;
    /** Latency of writing a dirty page to backing store. */
    Tick pageout_latency = 28 * kMsec;
    /** Pageout daemon wakes when free frames drop below this count. */
    std::uint32_t pageout_low_frames = 64;

    // ---- Instrumentation (Section 6) --------------------------------

    /** Record shootdown events into the xpr buffer. */
    bool xpr_enabled = true;
    /** Cost of gathering and storing one xpr event record. */
    Tick xpr_record_cost = 4 * kUsec;
    /** Number of CPUs on which responder events are recorded. */
    unsigned xpr_responder_cpus = 5;
    /** Capacity of the circular event buffer. */
    std::size_t xpr_capacity = 1u << 16;
    /**
     * Simulated cost charged per timeline-observability span (Section
     * 6.1's measurement-perturbation knob for the obs::Recorder). Zero
     * (default) keeps recording invisible to simulated time, so traced
     * and untraced runs of the same seed produce identical digests.
     */
    Tick obs_record_cost = 0;

    // ---- Section 9 hardware-support options -------------------------

    /**
     * Give the shootdown IPI priority above device interrupts, so that
     * code holding device interrupts masked still takes shootdowns.
     */
    bool high_priority_ipi = false;

    /** Send one multicast IPI to a set of CPUs at fixed cost. */
    bool multicast_ipi = false;
    /** Cost of loading the bit vector and triggering a multicast. */
    Tick multicast_send_cost = 22 * kUsec;

    /** Broadcast IPI to all other CPUs at fixed cost (over-interrupts). */
    bool broadcast_ipi = false;
    Tick broadcast_send_cost = 18 * kUsec;

    /**
     * TLB supports remote invalidation of entries by other processors
     * (MC88200 style): no responder involvement at all.
     */
    bool tlb_remote_invalidate = false;
    /** Cost for the initiator to invalidate one remote TLB's entries. */
    Tick remote_invalidate_cost = 10 * kUsec;

    /**
     * Software-reloaded TLB (MIPS style): reload checks whether the pmap
     * is being modified, so responders acknowledge and return instead of
     * stalling while the initiator updates the pmap.
     */
    bool tlb_software_reload = false;

    /**
     * TLB never writes reference/modify bits back to memory (RP3 style):
     * page faults detect modifications instead, so in-progress pmap
     * updates cannot be corrupted and responders need not stall.
     */
    bool tlb_no_refmod_writeback = false;

    /**
     * MMU access to the reference/modify bits is an interlocked
     * read-modify-write that checks mapping validity (MC88200 style;
     * the 80386 attempts this): instead of blindly rewriting the PTE
     * from the TLB's image, the hardware reads the current PTE, faults
     * if it no longer maps validly, and otherwise ORs in ref/mod.
     * This eliminates the page-table corruption hazard, so shootdown
     * interrupts can be postponed until after the pmap change
     * (Section 9, third TLB redesign bullet).
     */
    bool tlb_interlocked_refmod = false;

    /**
     * Tag TLB entries with an address-space identifier and do not flush
     * on context switch (MIPS style, Section 10): a pmap stays "in use"
     * on a processor until its entries are explicitly flushed.
     */
    bool tlb_asid_tags = false;

    /**
     * Model a VMP-style virtually-addressed cache instead of a TLB
     * (Section 9): translation state is embedded in a large cache
     * directory, and invalidating a page mapping requires "an
     * exhaustive search of the cache directory for [entries] in the
     * specified range, with a few optimizations" in software on every
     * processor that has the page mapped. Mechanically the directory
     * behaves like a large translation buffer (size tlb_entries, which
     * callers should raise to cache scale), but every consistency
     * action pays the directory-search cost below instead of a cheap
     * entry invalidate. Requires tlb_no_refmod_writeback (VMP's cache
     * is software-managed).
     */
    bool virtual_cache = false;
    /** Cost per directory line examined during an invalidation. */
    Tick vc_search_cost_per_line = 600;

    // ---- Policy toggles ----------------------------------------------

    /** TLB consistency technique (Section 3). */
    ConsistencyStrategy consistency_strategy =
        ConsistencyStrategy::Shootdown;

    /**
     * Section 8 restructuring for large machines: divide both the
     * processors and the kernel virtual address space into this many
     * pools. Pool-local kernel memory (kmem) is allocated from the
     * executing processor's pool slice, and kernel-pmap shootdowns on
     * a pool slice interrupt only that pool's processors. Soundness
     * relies on the restructured kernel's discipline that pool-local
     * memory is not shared between pools (threads using it stay
     * pool-affine), exactly as the paper proposes. 1 = the uniform
     * baseline.
     */
    unsigned kernel_pools = 1;

    /**
     * Shootdown-avoidance policy layered over Figure 1 (see the enum).
     * Baseline leaves every code path, counter, and digest input
     * bit-identical to the pre-policy simulator.
     */
    ShootdownPolicy shootdown_policy = ShootdownPolicy::Baseline;

    /**
     * Batched policy: an IPI to a target is elided only when the
     * target's last shootdown IPI was posted within this window and
     * the target provably has not finished its responder pass (the
     * action flag is still up and the pass is live or pending).
     */
    Tick ipi_coalesce_window = 400 * kUsec;

    /**
     * RangeFlush policy: more pages than this in one invalidation and
     * the responder flushes the whole target space instead of walking
     * the range. Must be >= tlb_flush_threshold to be meaningful.
     */
    unsigned range_flush_crossover = 16;

    /**
     * Lazy evaluation (Table 1): skip the shootdown when none of the
     * affected pages are mapped in the physical map.
     */
    bool lazy_evaluation = true;

    /**
     * Master switch for TLB consistency actions. Disabling it makes the
     * Section 5.1 tester detect genuine inconsistencies; exists only so
     * tests can prove the algorithm is load-bearing.
     */
    bool shootdown_enabled = true;

    /** Per-CPU consistency-action queue depth (overflow => full flush). */
    unsigned action_queue_size = 8;

    /**
     * TEST ONLY -- plant a protocol bug: responders skip the phase-2
     * stall on hardware that requires it, so a hardware reload (or a
     * ref/mod writeback) can race the initiator's pmap change exactly
     * as Section 3 warns. Exists so the model checker's golden test can
     * prove the stale-translation oracle actually detects broken
     * protocols (see docs/CHECKER.md); never set it outside tests.
     */
    bool chk_skip_responder_stall = false;

    /**
     * TEST ONLY -- plant an L0-cache bug: the host-side L0 translation
     * cache skips its invalidation maintenance, so flushes and entry
     * retirements leave it serving stale translations. Exists so tests
     * can prove the stale-translation oracle audits the L0 for real
     * (a missed invalidation is a checker failure, not a silent wrong
     * answer); never set it outside tests.
     */
    bool chk_skip_l0_invalidate = false;

    /**
     * TEST ONLY -- plant a lazy-ASID policy bug: the context-load hook
     * skips its stale-generation check, so a deferred flush marked
     * while the space was switched out is never consumed when the
     * space is next loaded -- the classic lazy-invalidation bug of
     * forgetting the generation bump on context load. The reactivated
     * CPU keeps serving pre-revocation translations. Exists for the
     * checker's broken-asid golden test; never set it outside tests.
     */
    bool chk_skip_asid_gen_check = false;

    // ---- NUMA topology (src/numa) ------------------------------------

    /**
     * Number of NUMA nodes. 1 (default) is the paper's single-bus
     * Multimax and leaves every other numa_* knob inert: the node-0
     * code paths are bit-identical to the pre-NUMA simulator (the
     * determinism-digest goldens pin this). With N > 1 the ncpus
     * processors are split into N contiguous blocks (cpu id /
     * (ncpus/N)), each block sharing a private bus and a contiguous
     * slice of physical memory, joined by a simulated interconnect.
     */
    unsigned numa_nodes = 1;

    /**
     * Uniform SLIT-style distance to every remote node (local distance
     * is fixed at 10, as in ACPI). A remote memory access or IPI pays
     * the local cost scaled by distance/10. Ignored when
     * numa_distance_spec is set.
     */
    unsigned numa_remote_distance = 25;

    /**
     * Optional full distance matrix, rows separated by ';', entries by
     * ','; e.g. "10,25;25,10". Must be numa_nodes x numa_nodes with a
     * diagonal of 10 and symmetric off-diagonal entries >= 10.
     */
    std::string numa_distance_spec;

    /** Page placement policy for user/pagein/zero-fill frames. */
    PlacementPolicy numa_placement = PlacementPolicy::FirstTouch;

    /**
     * Remote faults on one page before PlacementPolicy::Migrate moves
     * it to the faulting node.
     */
    unsigned numa_migrate_threshold = 4;

    /**
     * numaPTE-style per-node second-level page-table replicas: every
     * node walks (and writes ref/mod bits into) its own copy of each
     * pmap's page table, kept coherent by write fan-out under the pmap
     * lock plus the shootdown machinery. Replica divergence outside a
     * pmap operation is an oracle violation.
     */
    bool numa_pt_replicas = false;

    /**
     * TEST ONLY -- plant a replica-coherence bug: pmap updates write
     * the primary page table immediately but sync the per-node
     * replicas only after dropping the pmap lock, leaving a window
     * where a remote CPU's hardware reload re-caches the pre-change
     * PTE from its stale local replica. Schedule-dependent by design,
     * like chk_skip_responder_stall; never set it outside tests.
     */
    bool chk_defer_replica_sync = false;

    // ---- DMA devices and IOMMU (src/dev) -----------------------------

    /**
     * Number of DMA-capable devices (docs/DEVICES.md). 0 (default)
     * leaves the device subsystem entirely unbuilt: no responder ids,
     * no events, no RNG draws, so every existing golden digest is
     * bit-identical. Devices occupy responder ids [ncpus,
     * ncpus + devices) in the shared CpuSet id space and are placed
     * round-robin across NUMA nodes (device i on node i % numa_nodes).
     */
    unsigned devices = 0;

    /**
     * Entries per device IOTLB (the per-device translation cache in
     * front of the IOMMU page-table walker). Shares the hw::Tlb model
     * -- and therefore its generation-flush and audit machinery --
     * with the CPU TLBs, just sized separately.
     */
    unsigned iotlb_entries = 8;

    /** IOMMU walk cost per page-table level (the device's "reload"). */
    Tick iommu_walk_cost_per_level = 3 * kUsec;

    /** IOTLB probe cost preceding each DMA transfer. */
    Tick iotlb_lookup_cost = 300;

    /** Duration of one DMA transfer (translate -> data movement). */
    Tick dev_transfer_cost = 120 * kUsec;

    /**
     * Initiator-side cost of posting one invalidation command to a
     * device (the IOMMU command-queue write). Scaled by NUMA distance
     * when the device hangs off a remote node, like an IPI.
     */
    Tick dev_cmd_cost = 30 * kUsec;

    /**
     * Bound on how long a revoke can wait for a device's in-flight
     * DMA: a device that cannot finish its transfer within this many
     * ticks of the drain request aborts it instead (the ATS-style
     * invalidate-completion deadline). This is what keeps shootdown
     * latency bounded when devices join the responder set.
     */
    Tick dev_drain_bound = 60 * kUsec;

    /**
     * TEST ONLY -- plant an IOTLB bug: a device's drain acknowledges
     * the queued consistency actions without actually invalidating its
     * IOTLB entries, so a revoked translation keeps serving DMA. The
     * device-side twin of chk_skip_responder_stall; exists for the
     * checker's broken-iotlb golden test. Never set it outside tests.
     */
    bool chk_skip_iotlb_invalidate = false;

    /** Number of CPUs per node (ncpus / numa_nodes). */
    unsigned cpusPerNode() const
    {
        return ncpus / (numa_nodes ? numa_nodes : 1);
    }

    /** NUMA node a device hangs off (round-robin placement). */
    unsigned nodeOfDevice(unsigned dev) const
    {
        return dev % (numa_nodes ? numa_nodes : 1);
    }

    /**
     * Total responder ids: CPUs first, then devices. Every CpuSet in
     * the shootdown machinery is indexed by this combined space.
     */
    unsigned responderCount() const { return ncpus + devices; }

    /** Priority of the given interrupt source under this config. */
    Spl irqPriority(Irq irq) const;

    /** Validate invariants; calls fatal() on nonsense configurations. */
    void validate() const;
};

/** Stable CLI/report name of @p policy ("baseline", "lazy-asid", ...). */
const char *shootdownPolicyName(ShootdownPolicy policy);

/**
 * Parse a machsim --shootdown-policy value. Returns false on an
 * unknown name.
 */
bool parseShootdownPolicy(const std::string &name, ShootdownPolicy *out);

} // namespace mach::hw

#endif // MACH_HW_MACHINE_CONFIG_HH
