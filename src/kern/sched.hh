/**
 * @file
 * Per-CPU run queues with idle loops.
 *
 * The scheduler is deliberately simple -- threads are placed on the
 * least-loaded CPU (or a pinned one), run until they block, yield, or
 * exhaust a quantum, and idle CPUs park on an idle thread. What matters
 * for the reproduction is the idle-set behaviour of Section 4: idle
 * processors do not receive shootdown interrupts, and must check for
 * queued consistency actions and execute them before becoming active.
 * The idle-exit hook is where that check happens.
 */

#ifndef MACH_KERN_SCHED_HH
#define MACH_KERN_SCHED_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "base/types.hh"
#include "kern/thread.hh"

namespace mach::kern
{

class Machine;

/** The machine-wide scheduler. */
class Sched
{
  public:
    explicit Sched(Machine *machine);
    ~Sched();

    /** Scheduling quantum for round-robin timeslicing. */
    static constexpr Tick kQuantum = 50 * kMsec;

    /**
     * Bring up the idle threads. Idempotent: later calls (e.g. from a
     * second workload run on the same kernel) are no-ops.
     */
    void start();

    /**
     * Create and start a thread. @p pin >= 0 binds it to that CPU (the
     * Section 5.1 tester pins children to distinct processors so a
     * k-thread run shoots exactly k CPUs).
     */
    Thread *spawn(vm::Task *task, std::string name, Thread::Body body,
                  std::int64_t pin = -1);

    /** Make a blocked thread runnable again. */
    void wakeup(Thread &thread);

    /**
     * Called by the pmap system so leaving idle can drain queued
     * shootdown actions before the CPU rejoins the active set.
     */
    using IdleExitHook = std::function<void(Cpu &)>;
    void setIdleExitHook(IdleExitHook hook) { idle_exit_ = std::move(hook); }

    /** Number of threads that are Runnable or Running (excl. idle). */
    unsigned runnableCount() const;

    /** All threads ever spawned (kept for join/inspection). */
    const std::vector<std::unique_ptr<Thread>> &threads() const
    {
        return threads_;
    }

    // ---- Internal transitions (called from Thread) --------------------

    /** Current thread blocks; dispatch the next one. */
    void blockCurrent(Cpu &cpu);
    /** Current thread yields if something else is runnable. */
    void yieldCurrent(Cpu &cpu);
    /** Current thread is finished; dispatch the next one. */
    void exitCurrent(Cpu &cpu);

  private:
    friend class Thread;

    /** Pick a CPU for a newly runnable thread. */
    Cpu &placeThread(Thread &thread);
    /** Enqueue on a specific CPU and un-idle it if necessary. */
    void enqueue(Cpu &cpu, Thread &thread);
    /** Dispatch the next runnable thread (or idle) on @p cpu. */
    void dispatchNext(Cpu &cpu);
    /** Body of each per-CPU idle thread. */
    void idleLoop(Thread &self);
    /** Ensure the thread's fiber exists and resumes as Running. */
    void makeRunning(Cpu &cpu, Thread &thread);
    /** Park the calling thread's fiber until it is Running again. */
    void parkUntilRunning(Thread &thread);

    /** Address-space switch bookkeeping (pmap activate/deactivate). */
    void switchSpace(Cpu &cpu, Thread &from, Thread &to);

    Machine *machine_;
    std::vector<std::unique_ptr<Thread>> threads_;
    std::vector<std::deque<Thread *>> runq_;
    IdleExitHook idle_exit_;
    std::uint64_t spawn_count_ = 0;
    bool started_ = false;
};

} // namespace mach::kern

#endif // MACH_KERN_SCHED_HH
