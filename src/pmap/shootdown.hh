/**
 * @file
 * The Mach TLB shootdown algorithm (Section 4, Figure 1).
 *
 * The algorithm forcibly interrupts processors that may hold stale TLB
 * entries ("shooting" the entries out of remote TLBs) and runs in four
 * phases:
 *
 *   1. Initiator: queue consistency-action requests for every processor
 *      using the pmap, set their action-needed flags, send interrupts
 *      to the non-idle ones, and wait for responses.
 *   2. Responders: acknowledge by leaving the active set, then spin
 *      until the initiator's pmap changes are complete (the stall that
 *      hardware reload and ref/mod writeback make necessary).
 *   3. Initiator: perform the pmap changes, then unlock the pmap.
 *   4. Responders: perform the queued TLB invalidations, clear their
 *      action-needed flags, and rejoin the active set.
 *
 * Refinements implemented here, from the paper's list:
 *   - a responder that ceased using the pmap needs no synchronization
 *     (the wait condition is "active AND still using the pmap");
 *   - concurrent initiators cannot deadlock because every initiator
 *     leaves the active set and masks interrupts first;
 *   - responders mask further shootdown interrupts while servicing one,
 *     and one responder pass services all shootdowns in progress;
 *   - idle processors get queued actions but no interrupts, and drain
 *     their queues before leaving the idle set;
 *   - a bounded per-processor action queue whose overflow escalates to
 *     a full TLB flush;
 *   - no duplicate interrupt is sent to a processor that already has a
 *     shootdown interrupt pending;
 *   - per-entry invalidation below a threshold, full flush above it.
 *
 * Section 9 hardware options (multicast/broadcast IPIs, remote TLB
 * invalidation, software reload / no-writeback TLBs, high-priority
 * software interrupt) alter the corresponding steps and are selected by
 * MachineConfig flags.
 */

#ifndef MACH_PMAP_SHOOTDOWN_HH
#define MACH_PMAP_SHOOTDOWN_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "base/cpuset.hh"
#include "base/types.hh"
#include "hw/machine_config.hh"
#include "hw/tlb.hh"
#include "kern/lock.hh"

namespace mach::kern
{
class Cpu;
class Machine;
} // namespace mach::kern

namespace mach::pmap
{

class Pmap;
class PmapSystem;
class ShootdownPolicy;
class TlbResponder;

/** One queued TLB consistency action. */
struct ShootAction
{
    Pmap *pmap;
    Vpn start;
    Vpn end;
};

/** Per-processor shootdown state. */
struct CpuShootState
{
    CpuShootState() : action_lock("shoot-action", hw::SplHigh) {}

    /** Protects the queue (leaf lock, held briefly at SplHigh). */
    kern::SpinLock action_lock;
    std::vector<ShootAction> queue;
    /** Queue overflowed: responder must flush its entire TLB. */
    bool overflow = false;
    /** A TLB consistency action is needed on this processor. */
    bool action_needed = false;
    /**
     * This processor is inside its respond/idle-drain service loop.
     * Set before the loop's first action-needed check and cleared at
     * the instant of its final (false) check, so an initiator that
     * observes it set knows a future re-check will see any action it
     * just queued -- the invariant the Batched policy's IPI elision
     * rests on.
     */
    bool servicing = false;
    /** When the in-progress service pass began (coalescing window). */
    Tick service_entered = 0;
};

/** Machine-wide shootdown machinery. */
class ShootdownController
{
  public:
    explicit ShootdownController(PmapSystem &sys);
    ~ShootdownController();

    /**
     * Phases 1-2, run by the initiator while holding @p pmap's lock at
     * SplHigh with its active bit clear: queue actions, interrupt the
     * non-idle users of the pmap, and wait until every one of them has
     * either acknowledged (left the active set) or stopped using the
     * pmap. On return the initiator may safely change the pmap.
     *
     * @p mapped_pages is the number of VM pages involved (recorded in
     * the instrumentation, Section 6).
     */
    void shoot(kern::Cpu &self, Pmap &pmap, Vpn start, Vpn end,
               unsigned mapped_pages);

    /** Phases 2 and 4: the shootdown interrupt service routine. */
    void respond(kern::Cpu &cpu);

    /**
     * Two-phase distributed shootdown, forwarding side: post local IPIs
     * to the node-mates an initiator on another node left pending when
     * it interrupted only this node's delegate. Any processor of the
     * node may forward -- the delegate normally does, but a concurrent
     * responder (or a processor leaving the idle set) picks the set up
     * if the delegate is slow, so liveness never hinges on one CPU.
     */
    void drainForwards(kern::Cpu &cpu);

    /**
     * Drain queued actions on a processor leaving the idle set, before
     * it rejoins the active set (Section 4's idle-processor rule).
     */
    void idleExit(kern::Cpu &cpu);

    /** Per-CPU full-flush epoch snapshot for the delayed-flush wait. */
    using FlushSnapshot = std::vector<std::pair<CpuId, std::uint64_t>>;

    /**
     * Technique 2 (Section 3): block the calling thread until every
     * processor in @p snapshot has performed a whole-TLB flush since
     * the snapshot was taken (or stopped using / gone idle on
     * @p pmap). The flushes are driven by timer interrupts and the
     * idle loop, so this typically costs a good fraction of a timer
     * period -- the expense that made Mach choose shootdown instead.
     */
    void delayedFlushWait(kern::Thread &thread, Pmap &pmap,
                          const FlushSnapshot &snapshot,
                          unsigned mapped_pages);

    /** Take the epoch snapshot of every other processor using @p pmap. */
    FlushSnapshot snapshotFlushes(kern::Cpu &self, Pmap &pmap) const;

    /**
     * Apply the per-entry-vs-full-flush invalidation policy to one
     * CPU's own TLB, consuming that CPU's time.
     */
    void invalidateLocal(kern::Cpu &cpu, hw::SpaceId space, Vpn start,
                         Vpn end);

    CpuShootState &stateFor(CpuId id) { return *state_[id]; }

    /**
     * Enroll a non-CPU responder (device IOTLB) in the protocol. The
     * responder's id() must equal ncpus + (number already registered):
     * devices claim the tail of the CpuSet id space in registration
     * order, and each gets its own CpuShootState slot so queueAction /
     * purgePmap treat it exactly like a processor.
     */
    void registerResponder(TlbResponder *responder);

    /** Registered non-CPU responders, indexed by (id - ncpus). */
    const std::vector<TlbResponder *> &responders() const
    {
        return responders_;
    }

    /** The avoidance policy selected by MachineConfig. */
    ShootdownPolicy &policy() { return *policy_; }
    const ShootdownPolicy &policy() const { return *policy_; }

    /** True when this configuration requires responders to stall. */
    bool responderMustStall() const;

    /**
     * True when consistency actions must follow the pmap change
     * instead of preceding it: with remote invalidation (or postponed
     * shootdown interrupts on no-writeback TLBs) nothing stops a
     * hardware reload from re-caching a stale PTE during the update,
     * so stale entries can only be purged once the new PTEs are in
     * place. (With software reload, the reload itself stalls on the
     * locked pmap, so the pre-change order remains safe.)
     */
    bool invalidateAfterChange() const;


    /**
     * Remove queued actions referencing a pmap being destroyed,
     * escalating affected processors to a full flush so the semantics
     * stay conservative (no simulated time is consumed; destruction is
     * a host-level teardown).
     */
    void purgePmap(Pmap *pmap);

    // ---- Statistics --------------------------------------------------

    std::uint64_t initiated = 0;
    std::uint64_t delayed_waits = 0;
    std::uint64_t interrupts_sent = 0;
    std::uint64_t responder_passes = 0;
    std::uint64_t idle_drains = 0;
    std::uint64_t queue_overflows = 0;
    std::uint64_t remote_invalidates = 0;
    /** Initiator-to-delegate IPIs that crossed the interconnect. */
    std::uint64_t cross_node_ipis = 0;
    /** Local IPIs posted on a delegate's behalf (phase-two fan-out). */
    std::uint64_t forwarded_ipis = 0;
    /** Invalidate commands posted to device IOTLB responders. */
    std::uint64_t device_commands = 0;
    /** Initiator spins that had to wait out an in-flight DMA. */
    std::uint64_t device_sync_waits = 0;
    /** Device commands that crossed the NUMA interconnect. */
    std::uint64_t cross_node_device_commands = 0;

  private:
    /** Queue an action on @p target's queue (initiator side). */
    void queueAction(kern::Cpu &self, CpuId target, Pmap &pmap,
                     Vpn start, Vpn end);

    /** Process a processor's queued actions (phase 4 / idle exit). */
    void drainActions(kern::Cpu &cpu);

    PmapSystem &sys_;
    kern::Machine &machine_;
    std::vector<std::unique_ptr<CpuShootState>> state_;
    std::unique_ptr<ShootdownPolicy> policy_;
    std::vector<TlbResponder *> responders_;
    /**
     * Per-node sets of send-list members awaiting a locally forwarded
     * IPI (their queues and action-needed flags are already set; only
     * the interrupt is outstanding). Filled by remote initiators before
     * any IPI leaves, drained by drainForwards.
     */
    std::vector<CpuSet> forward_pending_;
};

} // namespace mach::pmap

#endif // MACH_PMAP_SHOOTDOWN_HH
