/**
 * @file
 * Run-farm knobs shared by the explorer, the benches, and machsim.
 */

#ifndef MACH_FARM_FARM_HH
#define MACH_FARM_FARM_HH

#include <cstdlib>

#include "farm/fork_pool.hh"
#include "farm/thread_pool.hh"

namespace mach::farm
{

/** How a campaign (probe batch, config sweep, seed batch) is run. */
struct FarmOptions
{
    /** Concurrent runs; 1 = the bit-exact serial path, no threads. */
    unsigned jobs = 1;
    /**
     * Allow fork-style prefix snapshots where the batch supports them
     * (probes sharing an unperturbed warmup prefix). Snapshots never
     * change results -- only whether the prefix is re-simulated.
     */
    bool snapshots = true;

    /**
     * Minimum shared-prefix length (in events) before a probe batch
     * is worth fork-snapshotting: below it the re-simulation skipped
     * per probe does not cover the fork/pipe overhead. 0 snapshots
     * unconditionally. Like snapshots, this is purely a host-speed
     * policy -- results are byte-identical at any floor.
     */
    std::uint64_t snapshot_floor = 4096;

    /**
     * Options from the environment: MACH_FARM_JOBS (width, default
     * @p fallback_jobs), MACH_FARM_SNAPSHOTS (0 disables), and
     * MACH_FARM_SNAPSHOT_FLOOR (prefix-events floor for snapshots).
     */
    static FarmOptions fromEnv(unsigned fallback_jobs = 1)
    {
        FarmOptions opt;
        opt.jobs = defaultJobs(fallback_jobs);
        if (const char *env = std::getenv("MACH_FARM_SNAPSHOTS"))
            opt.snapshots = env[0] != '0';
        if (const char *env =
                std::getenv("MACH_FARM_SNAPSHOT_FLOOR"))
            opt.snapshot_floor = std::strtoull(env, nullptr, 0);
        return opt;
    }
};

} // namespace mach::farm

#endif // MACH_FARM_FARM_HH
