/**
 * @file
 * Deterministic, cancellable discrete-event queue.
 *
 * Events fire in (time, insertion-sequence) order, so two events scheduled
 * for the same tick fire in the order they were scheduled. This total
 * order is the root of the simulator's determinism.
 *
 * The implementation is built for throughput on the simulator's hot
 * path (every sleep, wake, timer tick, and IPI is one event):
 *
 *   - same-tick events chain into a FIFO bucket (their arrival order IS
 *     their sequence order), and a binary min-heap of 16-byte items
 *     orders only the distinct pending ticks -- so the common case of
 *     many simultaneous events pays the O(log n) sift once per tick,
 *     not once per event, and popping within a tick is O(1);
 *   - an open-addressed tick -> bucket table finds an event's bucket in
 *     O(1), so scheduling into a tick that is already pending never
 *     touches the heap at all;
 *   - payloads live in a slab of recycled nodes (free-list), so neither
 *     scheduling nor cancelling allocates once the slab is warm;
 *   - cancel() is O(1): it releases the payload's resources immediately
 *     and leaves a tombstone in its bucket chain that is reclaimed when
 *     the chain drains (or compacted in bulk when tombstones outnumber
 *     live events);
 *   - fiber wakes -- the dominant event kind -- are stored as a raw
 *     (function pointer, context, token) triple, bypassing
 *     std::function entirely on the schedule *and* dispatch paths.
 *
 * None of this changes the order contract: buckets fire in tick order
 * (ticks are unique, one bucket each) and chains preserve insertion
 * order within a tick, which is exactly the (when, seq) total order the
 * original std::map implementation used. tests/determinism_test.cc
 * pins that contract with golden digests.
 */

#ifndef MACH_SIM_EVENT_QUEUE_HH
#define MACH_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "base/perturb.hh"
#include "base/types.hh"

namespace mach::sim
{

/** Opaque handle identifying a scheduled event, usable for cancellation. */
struct EventId
{
    Tick when = 0;
    std::uint64_t seq = 0;
    /** Slab slot the payload occupies (cancellation hint). */
    std::uint32_t slot = 0;

    bool valid() const { return seq != 0; }

    bool
    operator<(const EventId &other) const
    {
        if (when != other.when)
            return when < other.when;
        return seq < other.seq;
    }
};

/** Time-ordered queue of callbacks. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;
    /** Allocation-free payload: fn(ctx, token) at fire time. */
    using RawFn = void (*)(void *ctx, std::uint64_t token);

    /** Schedule @p cb to fire at absolute time @p when. */
    EventId schedule(Tick when, Callback cb);

    /**
     * Schedule an allocation-free event: at fire time @p fn is invoked
     * with (@p ctx, @p token). This is the fiber-wake fast path --
     * sim::Context passes itself and the fiber id, so the sleep/wake
     * cycle never touches std::function.
     */
    EventId scheduleRaw(Tick when, RawFn fn, void *ctx,
                        std::uint64_t token);

    /**
     * Remove a previously scheduled event. Cancelling an event that has
     * already fired (or was already cancelled) is a harmless no-op, which
     * simplifies callers that race wakeups against cancellations.
     */
    void cancel(EventId id);

    bool empty() const { return live_ == 0; }
    std::size_t size() const { return live_; }

    /** Time of the earliest pending event; panics if empty. */
    Tick nextTime() const;

    /**
     * Remove and return the earliest event's callback, storing its
     * scheduled time in @p when. Panics if empty, and panics on raw
     * events (only fireFront can dispatch those).
     */
    Callback popFront(Tick *when);

    /**
     * Remove and invoke the earliest event, returning its scheduled
     * time. Dispatches raw events directly. Panics if empty.
     */
    Tick fireFront();

    /**
     * Dispatch every live event pending at the earliest tick as one
     * batch -- the run loop's path. One front sweep and one heap
     * round trip cover the whole tick instead of one per event; order
     * within the tick is the bucket's FIFO chain, i.e. insertion-
     * sequence order, so the (time, seq) contract (and with it every
     * golden digest and perturbation replay) is untouched. Events an
     * event body schedules *for the current tick* join the same batch,
     * exactly as repeated fireFront() calls would dispatch them.
     *
     * Returns 0 without advancing @p *now when the queue is empty or
     * the front tick lies beyond @p until. Otherwise stores the
     * batch's tick into @p *now (asserting it is monotonic) before the
     * first dispatch and returns the count dispatched. Dispatch stops
     * after the current event once @p *stop reads true, mirroring the
     * per-event requestStop() check of the unbatched loop.
     */
    std::uint64_t fireTickBatch(Tick until, Tick *now,
                                const bool *stop);

    /** Total events ever scheduled (monotonic; used by micro benches). */
    std::uint64_t scheduledCount() const { return next_seq_ - 1; }

    /**
     * Install (or clear, with nullptr) a perturbation schedule. Each
     * schedule/scheduleRaw consults it by insertion sequence and adds
     * the directed extra delay to the event's firing time. Delays are
     * strictly additive, so `when >= now` is preserved and the (time,
     * seq) order contract is untouched -- the perturbed run is just a
     * different, equally deterministic schedule. The perturber must
     * outlive the queue or be cleared first; a null perturber (the
     * default) costs one predicted-taken branch per schedule.
     */
    void setPerturber(const SchedulePerturber *perturber)
    {
        perturber_ = perturber;
    }

    /** Slab slots currently on the free-list (white-box tests). */
    std::size_t freeNodeCount() const;

    /** Slab capacity ever allocated (white-box tests). */
    std::size_t slabSize() const { return slab_.size(); }

    /** Distinct pending ticks, i.e. the heap's size (white-box tests). */
    std::size_t pendingTickCount() const { return heap_.size(); }

  private:
    static constexpr std::uint32_t kNil = ~std::uint32_t{0};

    /**
     * The sequence word carries the slab slot in its low bits, so one
     * 64-bit compare orders same-tick events by insertion sequence and
     * one mask recovers the payload. Bounds the slab at 2^20 nodes
     * (pending-event high-water mark, not total events) and the
     * insertion counter at 2^44 events.
     */
    static constexpr unsigned kSlotBits = 20;
    static constexpr std::uint64_t kSlotMask =
        (std::uint64_t{1} << kSlotBits) - 1;
    /**
     * Node::seq sentinel for a cancelled node still linked into its
     * bucket chain. Real packed sequences are >= 1 << kSlotBits and
     * free slots are 0, so the value cannot collide with either.
     */
    static constexpr std::uint64_t kCancelledSeq = 1;

    /** Slab-resident payload; seq == 0 marks a free slot. */
    struct Node
    {
        std::uint64_t seq = 0; ///< Packed (sequence << kSlotBits | slot).
        RawFn raw_fn = nullptr;
        void *raw_ctx = nullptr;
        std::uint64_t raw_token = 0;
        Callback cb;
        /** Free-list link when free, same-tick FIFO link when pending. */
        std::uint32_t next = kNil;
    };

    /** FIFO of the events pending on one tick. */
    struct Bucket
    {
        std::uint32_t head = kNil;
        std::uint32_t tail = kNil;
        /** Free-list link (only meaningful while the bucket is free). */
        std::uint32_t next_free = kNil;
    };

    /** Heap item: one per distinct pending tick. Ticks are unique. */
    struct HeapItem
    {
        Tick when;
        std::uint32_t bucket;
    };

    /** One tick -> bucket mapping in the open-addressed table. */
    struct TickSlot
    {
        Tick when = 0;
        /** kNil = empty, kTombstone = erased, else a bucket index. */
        std::uint32_t bucket = kNil;
    };
    static constexpr std::uint32_t kTombstone = kNil - 1;

    std::uint32_t allocNode();
    void releaseNode(std::uint32_t slot);
    std::uint32_t allocBucket(Tick when);
    void releaseBucket(std::uint32_t index);
    /** Append a filled node to @p when's bucket, creating it if new. */
    EventId enqueue(Tick when, std::uint32_t slot);
    void siftUp(std::size_t i);
    void siftDown(std::size_t i);
    /**
     * Drop cancelled nodes off the front bucket's chain (and empty
     * buckets off the heap) until a live event leads; panics if none.
     */
    void sweepFront();
    /** Unlink the front event; sweepFront must have run. */
    std::uint32_t takeFront();
    /** Drop every tombstone and rebuild the heap (amortized, bulk). */
    void compact();

    // Tick -> bucket table (open addressing, linear probing).
    static std::uint64_t hashTick(Tick when);
    std::uint32_t tickLookup(Tick when) const;
    void tickInsert(Tick when, std::uint32_t bucket);
    void tickErase(Tick when);
    void tickRebuild(std::size_t capacity);

    std::vector<HeapItem> heap_;
    std::vector<Node> slab_;
    std::vector<Bucket> buckets_;
    std::vector<TickSlot> ticks_;
    std::uint32_t tick_mask_ = 0;
    /** Non-empty tick slots (mappings or tombstones); drives rebuilds. */
    std::uint32_t tick_used_ = 0;
    std::uint32_t free_head_ = kNil;
    std::uint32_t bucket_free_head_ = kNil;
    std::uint64_t next_seq_ = 1;
    const SchedulePerturber *perturber_ = nullptr;
    /** Scheduled, not yet fired or cancelled. */
    std::size_t live_ = 0;
    /** Cancelled nodes still linked into bucket chains. */
    std::size_t tombstones_ = 0;
};

} // namespace mach::sim

#endif // MACH_SIM_EVENT_QUEUE_HH
