/**
 * @file
 * Property-based tests, parameterized over RNG seeds and machine
 * shapes. The central invariant, checked after randomized operation
 * sequences on multi-processor machines:
 *
 *   once a mutating VM operation has returned, no TLB on the machine
 *   caches a translation that grants more than the current page
 *   tables do, and no reader ever observes data written through a
 *   mapping that was already revoked.
 */

#include <gtest/gtest.h>

#include "apps/consistency_tester.hh"
#include "pmap/shootdown.hh"
#include "vm/kernel.hh"

namespace mach
{
namespace
{

hw::MachineConfig
propConfig(std::uint64_t seed, unsigned ncpus = 8)
{
    setLogQuiet(true);
    hw::MachineConfig config;
    config.ncpus = ncpus;
    config.seed = seed;
    return config;
}

// ---------------------------------------------------------------------
// Randomized protect/read invariant.
// ---------------------------------------------------------------------

class RandomOpsProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomOpsProperty, NoWritesLandAfterRevocation)
{
    const std::uint64_t seed = GetParam();
    vm::Kernel kernel(propConfig(seed));
    kernel.start();
    bool finished = false;

    kernel.spawnThread(nullptr, "prop-driver", [&](kern::Thread &drv) {
        vm::Task *task = kernel.tasks().empty()
                             ? kernel.createTask("prop")
                             : kernel.tasks()[0].get();
        constexpr unsigned kWriters = 5;

        VAddr page = 0;
        // Shared host-side view of each counter page's writability.
        struct Slot
        {
            bool writable = true;
            bool stop = false;
        };
        std::vector<Slot> slots(kWriters);

        kern::Thread *main_thread = kernel.spawnThread(
            task, "prop-main", [&](kern::Thread &self) {
                Rng rng(seed * 31 + 7);
                ASSERT_TRUE(kernel.vmAllocate(
                    self, *task, &page, kWriters * kPageSize, true));

                std::vector<kern::Thread *> writers;
                for (unsigned w = 0; w < kWriters; ++w) {
                    writers.push_back(kernel.spawnThread(
                        task, "w" + std::to_string(w),
                        [&, w](kern::Thread &writer) {
                            const VAddr va = page + w * kPageSize;
                            std::uint32_t value = 0;
                            while (!slots[w].stop) {
                                const kern::AccessResult r =
                                    writer.access(va, ProtWrite);
                                if (r.ok) {
                                    kernel.machine().mem().write32(
                                        r.paddr, ++value);
                                } else {
                                    // Revoked: wait for permission.
                                    writer.sleep(3 * kMsec);
                                }
                                writer.cpu().advance(300 * kUsec);
                            }
                        },
                        static_cast<std::int64_t>(w % 4)));
                }

                // Randomly revoke and restore write access; while a
                // page is revoked its counter must be frozen.
                for (int round = 0; round < 12; ++round) {
                    const unsigned w = static_cast<unsigned>(
                        rng.below(kWriters));
                    const VAddr va = page + w * kPageSize;

                    slots[w].writable = false;
                    ASSERT_TRUE(kernel.vmProtect(self, *task, va,
                                                 kPageSize, ProtRead));
                    const kern::AccessResult r1 =
                        self.access(va, ProtRead);
                    ASSERT_TRUE(r1.ok);
                    const std::uint32_t snap =
                        kernel.machine().mem().read32(r1.paddr);

                    self.sleep(Tick(rng.range(5, 25)) * kMsec);

                    const kern::AccessResult r2 =
                        self.access(va, ProtRead);
                    ASSERT_TRUE(r2.ok);
                    const std::uint32_t later =
                        kernel.machine().mem().read32(r2.paddr);
                    ASSERT_EQ(later, snap)
                        << "counter " << w
                        << " advanced after write revocation "
                           "(seed "
                        << seed << ")";

                    ASSERT_TRUE(kernel.vmProtect(
                        self, *task, va, kPageSize, ProtReadWrite));
                    slots[w].writable = true;
                    self.sleep(Tick(rng.range(2, 10)) * kMsec);
                }

                for (auto &slot : slots)
                    slot.stop = true;
                for (kern::Thread *writer : writers)
                    self.join(*writer);
            });

        drv.join(*main_thread);
        finished = true;
        kernel.machine().ctx().requestStop();
    });

    kernel.machine().run();
    ASSERT_TRUE(finished);
    EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOpsProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));

// ---------------------------------------------------------------------
// Concurrent kernel + user shootdowns never deadlock.
// ---------------------------------------------------------------------

class ConcurrentShootProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ConcurrentShootProperty, KernelAndUserInitiatorsCoexist)
{
    const std::uint64_t seed = GetParam();
    vm::Kernel kernel(propConfig(seed, 8));
    kernel.start();
    bool finished = false;

    kernel.spawnThread(nullptr, "mix-driver", [&](kern::Thread &drv) {
        vm::Task *task = kernel.createTask("mixer");
        std::vector<kern::Thread *> threads;

        // User-pmap initiators: threads of one task protecting and
        // unprotecting touched pages.
        for (int i = 0; i < 3; ++i) {
            threads.push_back(kernel.spawnThread(
                task, "user-init" + std::to_string(i),
                [&kernel, task, seed, i](kern::Thread &self) {
                    Rng rng(seed + i);
                    VAddr va = 0;
                    ASSERT_TRUE(kernel.vmAllocate(
                        self, *task, &va, 4 * kPageSize, true));
                    for (int round = 0; round < 8; ++round) {
                        for (int p = 0; p < 4; ++p)
                            ASSERT_TRUE(self.store32(
                                va + p * kPageSize, round));
                        ASSERT_TRUE(kernel.vmProtect(
                            self, *task, va, 4 * kPageSize, ProtRead));
                        self.compute(Tick(rng.range(1, 5)) * kMsec);
                        ASSERT_TRUE(kernel.vmProtect(
                            self, *task, va, 4 * kPageSize,
                            ProtReadWrite));
                    }
                }));
        }

        // Kernel-pmap initiators: kernel threads churning kmem.
        for (int i = 0; i < 3; ++i) {
            threads.push_back(kernel.spawnThread(
                nullptr, "kern-init" + std::to_string(i),
                [&kernel, seed, i](kern::Thread &self) {
                    Rng rng(seed * 17 + i);
                    for (int round = 0; round < 8; ++round) {
                        const VAddr buf =
                            kernel.kmemAlloc(self, 2 * kPageSize);
                        ASSERT_NE(buf, 0u);
                        ASSERT_TRUE(self.store32(buf, round));
                        self.compute(Tick(rng.range(1, 4)) * kMsec);
                        kernel.kmemFree(self, buf, 2 * kPageSize);
                    }
                }));
        }

        for (kern::Thread *t : threads)
            drv.join(*t);
        finished = true;
        kernel.machine().ctx().requestStop();
    });

    // Bounded run: if the initiators deadlock (the two-initiator
    // "shooting at each other" hazard of Section 4), the driver never
    // finishes and this bound expires with finished == false.
    kernel.machine().run(kernel.machine().now() + 300 * kSec);
    ASSERT_TRUE(finished) << "deadlock between concurrent shootdowns "
                             "(seed "
                          << seed << ")";
    EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
    EXPECT_GT(kernel.pmaps().shoot().initiated, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrentShootProperty,
                         ::testing::Values(101, 202, 303, 404, 505,
                                           606));

// ---------------------------------------------------------------------
// The Section 5.1 tester across machine and thread-count shapes.
// ---------------------------------------------------------------------

struct TesterShape
{
    unsigned ncpus;
    unsigned children;
};

class TesterShapeProperty
    : public ::testing::TestWithParam<TesterShape>
{
};

TEST_P(TesterShapeProperty, ConsistentWithExactlyKProcessorsShot)
{
    const TesterShape shape = GetParam();
    vm::Kernel kernel(propConfig(shape.ncpus * 131 + shape.children,
                                 shape.ncpus));
    apps::ConsistencyTester tester(
        {.children = shape.children, .warmup = 15 * kMsec});
    const apps::WorkloadResult result = tester.execute(kernel);

    EXPECT_TRUE(tester.consistent());
    ASSERT_EQ(result.analysis.user_initiator.events, 1u);
    EXPECT_EQ(result.analysis.user_initiator.procs.max(),
              static_cast<double>(shape.children));
    EXPECT_TRUE(kernel.pmaps().auditTlbConsistency().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TesterShapeProperty,
    ::testing::Values(TesterShape{2, 1}, TesterShape{4, 2},
                      TesterShape{4, 3}, TesterShape{8, 5},
                      TesterShape{8, 7}, TesterShape{16, 10},
                      TesterShape{16, 15}, TesterShape{32, 24}));

// ---------------------------------------------------------------------
// The tester under every hardware option (the variants are correct,
// not just fast).
// ---------------------------------------------------------------------

enum class HwOption
{
    Baseline,
    Multicast,
    Broadcast,
    SoftwareReload,
    NoWriteback,
    InterlockedRefmod,
    VirtualCache,
    RemoteInvalidate,
    HighPriorityIpi,
    AsidTags,
};

class HwOptionProperty : public ::testing::TestWithParam<HwOption>
{
};

TEST_P(HwOptionProperty, TesterStaysConsistent)
{
    hw::MachineConfig config = propConfig(0xfeed);
    config.ncpus = 8;
    switch (GetParam()) {
      case HwOption::Baseline:
        break;
      case HwOption::Multicast:
        config.multicast_ipi = true;
        break;
      case HwOption::Broadcast:
        config.broadcast_ipi = true;
        break;
      case HwOption::SoftwareReload:
        config.tlb_software_reload = true;
        break;
      case HwOption::NoWriteback:
        config.tlb_no_refmod_writeback = true;
        break;
      case HwOption::InterlockedRefmod:
        config.tlb_interlocked_refmod = true;
        break;
      case HwOption::VirtualCache:
        config.virtual_cache = true;
        config.tlb_no_refmod_writeback = true;
        config.tlb_entries = 512;
        break;
      case HwOption::RemoteInvalidate:
        config.tlb_remote_invalidate = true;
        config.tlb_no_refmod_writeback = true;
        break;
      case HwOption::HighPriorityIpi:
        config.high_priority_ipi = true;
        break;
      case HwOption::AsidTags:
        config.tlb_asid_tags = true;
        break;
    }

    vm::Kernel kernel(config);
    apps::ConsistencyTester tester({.children = 6, .warmup = 20 * kMsec});
    tester.execute(kernel);
    EXPECT_TRUE(tester.consistent());
}

INSTANTIATE_TEST_SUITE_P(
    Options, HwOptionProperty,
    ::testing::Values(HwOption::Baseline, HwOption::Multicast,
                      HwOption::Broadcast, HwOption::SoftwareReload,
                      HwOption::NoWriteback,
                      HwOption::InterlockedRefmod,
                      HwOption::VirtualCache,
                      HwOption::RemoteInvalidate,
                      HwOption::HighPriorityIpi, HwOption::AsidTags));

} // namespace
} // namespace mach
