/**
 * @file
 * Machine-wide statistics collection and reporting.
 *
 * Gathers the counters scattered across the substrates (TLBs, faults,
 * interrupts, shootdown machinery, pager) into one structure that can
 * be diffed between two points in a run and pretty-printed -- the
 * "utility programs to read the collected data" side of Section 6,
 * generalized beyond shootdown events.
 */

#ifndef MACH_XPR_MACHINE_STATS_HH
#define MACH_XPR_MACHINE_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mach::vm
{
class Kernel;
} // namespace mach::vm

namespace mach::xpr
{

/** Per-processor counters. */
struct CpuStats
{
    std::uint64_t tlb_hits = 0;
    std::uint64_t tlb_misses = 0;
    std::uint64_t tlb_writebacks = 0;
    std::uint64_t tlb_flushes = 0;
    std::uint64_t tlb_single_invalidates = 0;
    std::uint64_t interrupts_taken = 0;
    std::uint64_t faults_taken = 0;
    std::uint64_t remote_mem_accesses = 0;

    double
    hitRatio() const
    {
        const std::uint64_t total = tlb_hits + tlb_misses;
        return total ? static_cast<double>(tlb_hits) / total : 0.0;
    }
};

/** Per-DMA-device counters (dev::DmaDevice + its IOTLB). */
struct DeviceStats
{
    std::uint64_t dma_reads = 0;
    std::uint64_t dma_writes = 0;
    std::uint64_t writes_committed = 0;
    std::uint64_t dma_aborts = 0;
    std::uint64_t dma_faults = 0;
    std::uint64_t iommu_walks = 0;
    std::uint64_t drains = 0;
    std::uint64_t iotlb_hits = 0;
    std::uint64_t iotlb_misses = 0;
    std::uint64_t iotlb_flushes = 0;
    std::uint64_t iotlb_single_invalidates = 0;
};

/** Snapshot of every counter of interest on a machine. */
struct MachineStats
{
    std::vector<CpuStats> cpus;

    // DMA devices (empty with devices == 0; kept out of runDigest so
    // device-less goldens are unaffected -- same discipline as the
    // policy and NUMA counters below).
    std::vector<DeviceStats> devices;
    std::uint64_t device_commands = 0;
    std::uint64_t device_sync_waits = 0;
    std::uint64_t cross_node_device_commands = 0;

    // Shootdown machinery.
    std::uint64_t shootdowns_initiated = 0;
    std::uint64_t delayed_waits = 0;
    std::uint64_t ipis_sent = 0;
    std::uint64_t responder_passes = 0;
    std::uint64_t idle_drains = 0;
    std::uint64_t queue_overflows = 0;
    std::uint64_t remote_invalidates = 0;

    // Shootdown-avoidance policy counters (all zero under the Baseline
    // policy; kept out of runDigest so pre-policy goldens are
    // unaffected -- each policy pins its own golden instead).
    std::uint64_t ipis_elided = 0;
    std::uint64_t flushes_deferred = 0;
    std::uint64_t deferred_flushes_applied = 0;
    std::uint64_t actions_merged = 0;
    std::uint64_t range_invalidates = 0;
    std::uint64_t full_space_flushes = 0;
    std::uint64_t reuse_elisions = 0;

    // NUMA interconnect (all zero on single-node machines; kept out of
    // runDigest so single-node goldens are unaffected).
    std::uint64_t cross_node_ipis = 0;
    std::uint64_t forwarded_ipis = 0;
    std::uint64_t remote_faults = 0;
    std::uint64_t local_faults = 0;
    std::uint64_t page_migrations = 0;

    // VM system.
    std::uint64_t faults_resolved = 0;
    std::uint64_t faults_failed = 0;
    std::uint64_t cow_copies = 0;
    std::uint64_t zero_fills = 0;
    std::uint64_t pageouts = 0;
    std::uint64_t pageins = 0;

    // Machine totals.
    std::uint64_t now_usec = 0;
    std::uint32_t free_frames = 0;

    /** Capture the current counters of @p kernel's machine. */
    static MachineStats capture(vm::Kernel &kernel);

    /** Counter-wise difference (this - earlier); clocks subtract too. */
    MachineStats since(const MachineStats &earlier) const;

    /** Machine-wide totals over all CPUs. */
    CpuStats totals() const;

    /** Multi-line human-readable report. */
    std::string report() const;
};

/**
 * FNV-1a digest over a finished run's observable order contract: the
 * xpr event stream, the final clock, every CPU's TLB counters, and
 * the shootdown controller's counters. Equal digests mean equal runs
 * bit-for-bit; `machsim --repeat` prints one per seed and the farm
 * tests compare them across jobs/snapshot modes. The formula matches
 * tests/determinism_test.cc's local copy, which pins golden values --
 * change neither without the other.
 */
std::uint64_t runDigest(vm::Kernel &kernel);

} // namespace mach::xpr

#endif // MACH_XPR_MACHINE_STATS_HH
