/**
 * @file
 * Sample statistics used to report results the way the paper does:
 * mean +/- standard deviation, median, 10th and 90th percentiles, and a
 * least-squares linear fit (used for the Figure 2 trend line).
 */

#ifndef MACH_BASE_STATS_HH
#define MACH_BASE_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace mach
{

/** Accumulates a sample of doubles and answers summary queries. */
class Sample
{
  public:
    /** Add one observation. */
    void add(double value);

    /** Number of observations so far. */
    std::size_t count() const { return values_.size(); }
    bool empty() const { return values_.empty(); }

    /** Sum of all observations. */
    double sum() const { return sum_; }

    /** Arithmetic mean; 0 for an empty sample. */
    double mean() const;

    /**
     * Sample standard deviation (n-1 denominator, as is conventional for
     * measured data); 0 for samples of fewer than two observations.
     */
    double stddev() const;

    /** Smallest / largest observation; 0 for an empty sample. */
    double min() const;
    double max() const;

    /**
     * The q-quantile (0 <= q <= 1) by linear interpolation between order
     * statistics; 0 for an empty sample.
     */
    double percentile(double q) const;

    /** Median, i.e. percentile(0.5). */
    double median() const { return percentile(0.5); }

    /**
     * Skewness indicator the paper uses in Section 7.3: the distribution
     * is "skewed towards high frequencies at low values" when the 90th
     * percentile is farther above the median than the 10th percentile is
     * below it.
     */
    bool skewedLow() const;

    /** Format as "mean+-stddev" with the given precision. */
    std::string meanStd(int precision = 0) const;

    /** Read-only access to the raw observations (unsorted). */
    const std::vector<double> &values() const { return values_; }

    /** Drop all observations. */
    void reset();

  private:
    /** Sort values_ into sorted_ on demand. */
    void ensureSorted() const;

    std::vector<double> values_;
    mutable std::vector<double> sorted_;
    mutable bool sorted_valid_ = false;
    double sum_ = 0.0;
};

/** Result of a least-squares straight-line fit y = intercept + slope*x. */
struct LinearFit
{
    double intercept = 0.0;
    double slope = 0.0;
    /** Coefficient of determination (r squared). */
    double r2 = 0.0;
};

/**
 * Least-squares fit over paired data. Requires at least two distinct x
 * values; panics otherwise.
 */
LinearFit leastSquares(const std::vector<double> &xs,
                       const std::vector<double> &ys);

} // namespace mach

#endif // MACH_BASE_STATS_HH
