/**
 * @file
 * One simulated processor.
 *
 * A Cpu does not own an execution context of its own; the fibers of the
 * threads scheduled on it (or of its idle loop) execute "on" it and
 * consume simulated time through it. Interrupts are dispatched on
 * whatever fiber is currently advancing time on the CPU, exactly as a
 * hardware interrupt runs on the interrupted stack.
 *
 * The public fields active / in the idle set mirror the processor sets
 * of the shootdown algorithm (Section 4): `active` means "actively
 * performing virtual-to-physical translations on any pmap".
 */

#ifndef MACH_KERN_CPU_HH
#define MACH_KERN_CPU_HH

#include <cstdint>
#include <optional>

#include "base/types.hh"
#include "hw/machine_config.hh"
#include "hw/tlb.hh"
#include "sim/context.hh"

namespace mach::pmap
{
class Pmap;
} // namespace mach::pmap

namespace mach::hw
{
class Bus;
} // namespace mach::hw

namespace mach::kern
{

class Machine;
class Thread;

/** Result of a simulated memory access through the MMU. */
struct AccessResult
{
    bool ok = false;    ///< False on an unrecoverable fault.
    PAddr paddr = 0;    ///< Valid when ok.
};

/** A simulated processor. */
class Cpu
{
  public:
    Cpu(Machine *machine, CpuId id);

    CpuId id() const { return id_; }
    Machine &machine() { return *machine_; }
    hw::Tlb &tlb() { return tlb_; }

    /** NUMA node this processor belongs to (0 on non-NUMA machines). */
    unsigned node() const { return node_; }
    /** This processor's node-local bus. */
    hw::Bus &bus();

    // ---- Shootdown-visible processor state --------------------------

    /** Actively performing virtual-to-physical translations. */
    bool active = true;
    /** Member of the idle processor set. */
    bool idle = false;
    /** Set by the timer interrupt to request a reschedule. */
    bool need_resched = false;

    /** The pmap of the task currently running here (null when none). */
    pmap::Pmap *cur_pmap = nullptr;
    /** Thread currently dispatched on this CPU (idle thread counts). */
    Thread *cur_thread = nullptr;
    /** This CPU's dedicated idle thread (set by the scheduler). */
    Thread *idle_thread = nullptr;

    // ---- Interrupt priority level ------------------------------------

    hw::Spl spl() const { return spl_; }

    /**
     * Set the interrupt priority level, returning the previous one.
     * Lowering the level polls for pending interrupts that the new
     * level permits, so deferred shootdowns are taken promptly --
     * "the interrupts will be acted upon before performing any memory
     * references that may use inconsistent TLB entries" (Section 4).
     */
    hw::Spl setSpl(hw::Spl level);

    /**
     * Dispatch any pending interrupts deliverable at the current level.
     * Called from advance boundaries and on level lowering.
     */
    void pollInterrupts();

    /**
     * Notification from the interrupt controller that a source was
     * posted; wakes the fiber currently sleeping on this CPU early if
     * the source is deliverable.
     */
    void kick();

    // ---- Time consumption (call only from the fiber running here) ----

    /**
     * Consume @p dt of simulated time, taking deliverable interrupts at
     * the earliest opportunity (their service time is extra).
     */
    void advance(Tick dt);

    /** Consume time with no interrupt polling (dispatch accounting). */
    void advanceNoPoll(Tick dt);

    /** One busy-wait poll: a bus-priced probe plus the spin quantum. */
    void spinOnce();

    /** Consume the cost of @p count memory accesses at current load. */
    void memAccess(unsigned count = 1);

    /**
     * Park in the idle loop: nap until kicked by an interrupt or woken
     * by the scheduler, then poll interrupts. Callers loop on their
     * own predicates (spurious wakeups are allowed).
     */
    void idleWait();

    /**
     * Unconditionally wake whatever fiber is sleeping on this CPU (used
     * by the scheduler when enqueueing work on an idle processor).
     */
    void wakeSleeper();

    // ---- MMU access path ---------------------------------------------

    /**
     * Perform a data access to virtual address @p va requiring @p want
     * rights: TLB probe, hardware (or software) reload on miss, page
     * fault upcall into the VM system when the translation is absent or
     * insufficient. Returns the physical address, or !ok when the VM
     * system reports an unrecoverable fault (e.g. a write to a page
     * that is now read-only -- what the Section 5.1 tester's child
     * threads die of).
     */
    AccessResult access(VAddr va, Prot want);

    /** Pick the pmap that translates @p va on this CPU. */
    pmap::Pmap *pmapFor(VAddr va);

    // ---- Statistics ----------------------------------------------------

    std::uint64_t interrupts_taken = 0;
    std::uint64_t faults_taken = 0;
    /** Translated accesses that resolved to a remote node's frame. */
    std::uint64_t remote_mem_accesses = 0;

    // ---- Scheduler hooks (used by Sched) -------------------------------

    sim::FiberId idle_fiber = 0;

  private:
    friend class Machine;

    /**
     * Sleep up to @p dt; returns early when kicked by a deliverable
     * interrupt posting. Spurious early wakeups are possible and are
     * handled by the callers' loops.
     */
    void preemptibleSleep(Tick dt);

    Machine *machine_;
    CpuId id_;
    unsigned node_;
    hw::Tlb tlb_;
    hw::Spl spl_ = hw::Spl0;
    bool in_poll_ = false;

    /** Fiber currently in preemptibleSleep on this CPU, if any. */
    sim::FiberId sleeping_fiber_ = 0;
    sim::EventId sleep_event_{};
};

} // namespace mach::kern

#endif // MACH_KERN_CPU_HH
